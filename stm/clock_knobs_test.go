package stm_test

import (
	"strings"
	"testing"

	"repro/stm"
)

// mustPanic runs f and returns the recovered panic message, failing the
// test if f returns normally.
func mustPanic(t *testing.T, what string, f func()) (msg string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s did not panic", what)
		}
		msg, _ = r.(string)
	}()
	f()
	return
}

// TestGV6RequiresExtension pins the fail-fast contract of the knob pair:
// GV6 without timestamp extension loses sequential progress, so both
// orders of reaching that combination must panic immediately — at
// configuration time, not as a mysterious solo-transaction abort later —
// and must leave the engine's configuration unchanged.
func TestGV6RequiresExtension(t *testing.T) {
	// Engine default: GV4 + extension. Restore no matter what.
	t.Cleanup(func() {
		stm.SetClockStrategy(stm.GV4)
		stm.SetTimestampExtension(true)
	})

	// Order 1: disable extension first, then ask for GV6.
	stm.SetTimestampExtension(false)
	msg := mustPanic(t, "SetClockStrategy(GV6) with extension off", func() {
		stm.SetClockStrategy(stm.GV6)
	})
	if msg != "" && !strings.Contains(msg, "extension") {
		t.Errorf("panic message %q does not name the missing extension", msg)
	}
	if got := stm.CurrentClockStrategy(); got != stm.GV4 {
		t.Errorf("failed SetClockStrategy changed the strategy to %v", got)
	}
	if stm.TimestampExtensionEnabled() {
		t.Error("failed SetClockStrategy re-enabled extension")
	}

	// Order 2: select GV6 (legal with extension on), then try to disable
	// extension underneath it.
	stm.SetTimestampExtension(true)
	stm.SetClockStrategy(stm.GV6)
	msg = mustPanic(t, "SetTimestampExtension(false) under GV6", func() {
		stm.SetTimestampExtension(false)
	})
	if msg != "" && !strings.Contains(msg, "GV6") {
		t.Errorf("panic message %q does not name GV6", msg)
	}
	if !stm.TimestampExtensionEnabled() {
		t.Error("failed SetTimestampExtension disabled extension anyway")
	}
	if got := stm.CurrentClockStrategy(); got != stm.GV6 {
		t.Errorf("strategy changed to %v during the failed toggle", got)
	}

	// The legal combinations still work, including leaving GV6.
	stm.SetClockStrategy(stm.GV4)
	stm.SetTimestampExtension(false)
	stm.SetTimestampExtension(true)
}

// TestSetClockStrategyUnknown pins the existing misuse panic.
func TestSetClockStrategyUnknown(t *testing.T) {
	mustPanic(t, "SetClockStrategy(42)", func() {
		stm.SetClockStrategy(stm.ClockStrategy(42))
	})
	if got := stm.CurrentClockStrategy(); got != stm.GV4 {
		t.Errorf("failed SetClockStrategy changed the strategy to %v", got)
	}
}
