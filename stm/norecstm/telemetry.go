package norecstm

import (
	"sync/atomic"

	"repro/internal/loghist"
	"repro/internal/telemetry"
)

// profiler is the installed contention sketch (nil = off). Abort sites
// feed it through noteConflict: with no sketch installed each site costs
// one atomic pointer load and a branch, and the sites only run on
// aborts, so the successful hot path is untouched either way.
var profiler atomic.Pointer[telemetry.Sketch]

// SetContentionProfiler installs (or, with nil, removes) the hot-Var
// contention sketch: every classified abort that can name the Var it
// conflicted on feeds the sketch with that Var's id, so Sketch.Top
// reports where the abort budget is going. Install/remove is safe
// concurrently with running transactions (atomic pointer swap).
func SetContentionProfiler(s *telemetry.Sketch) { profiler.Store(s) }

// ContentionProfiler returns the installed sketch, or nil.
func ContentionProfiler() *telemetry.Sketch { return profiler.Load() }

// noteConflict attributes an abort to v in the installed sketch; nil v
// (no single Var attributable) is a no-op.
func noteConflict(v varBase) {
	if s := profiler.Load(); s != nil && v != nil {
		s.Observe(telemetry.NamespaceNOrec | v.id())
	}
}

// Label names this Var in hot-Var contention reports (see
// SetContentionProfiler). Unlabeled Vars report as var-<id>.
func (v *Var[T]) Label(name string) { telemetry.SetLabel(telemetry.NamespaceNOrec|v.vid, name) }

// abortConflict classifies an abort at its site — one indexed Add on
// the descriptor's stat stripe plus the profiler hook — and unwinds the
// attempt via retrySignal. From the read path it reaches runAttempt's
// recover; from the commit CAS loop (where validate runs with the
// sequence lock not held) it reaches commit's own recover, which turns
// it into a failed commit. Either way the attempt loop still counts the
// abort itself, so every entry in Stats.Aborts carries exactly one
// conflict reason.
func (tx *Tx) abortConflict(reason int, v varBase) {
	tx.stat().reasons[reason].Add(1)
	noteConflict(v)
	panic(retrySignal{})
}

// latEvery gates commit-latency sampling: 0 = off, else the
// power-of-two sampling period whose mask (period-1) is compared
// against a descriptor-local sequence number, so the
// sampled-on cost per call is one atomic load, one local increment and
// a branch — and one time.Now pair per sampled call.
var latEvery atomic.Uint64

// commitLatency records sampled wall-clock µs from a call's first
// attempt to its successful commit; attemptsPerCommit records how many
// attempts that call burned (1 = first try). Both are engine-wide log2
// histograms; budget/ctx-aborted calls are not recorded.
var (
	commitLatency     loghist.Hist
	attemptsPerCommit loghist.Hist
)

// SetLatencySampling enables commit-latency and attempts-per-commit
// sampling for roughly 1 in every transaction calls (rounded up to a
// power of two; ≤ 0 disables, 1 samples every call). Engine-wide.
func SetLatencySampling(every int) {
	if every <= 0 {
		latEvery.Store(0)
		return
	}
	e := uint64(1)
	for e < uint64(every) {
		e <<= 1
	}
	latEvery.Store(e)
}

// LatencyHists returns the engine's sampled commit-latency (µs) and
// attempts-per-commit histograms for snapshotting; they accumulate for
// the life of the process, so renderers should diff snapshots.
func LatencyHists() (commitUS, attempts *loghist.Hist) {
	return &commitLatency, &attemptsPerCommit
}
