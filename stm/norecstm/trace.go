package norecstm

// Test-only history tracing, mirroring repro/stm's trace.go: when
// enabled, every attempt of an Atomically / AtomicallyRO call is
// recorded as one internal/tm.TxnRecord — certified reads (including
// the unlogged reads of the read-only fast path), buffered writes, and
// the commit/abort outcome — so a bounded concurrent workload yields an
// internal/tm.History the internal/check oracles (Opaque,
// StrictlySerializable) can verify. PR 8's scheduling harness drives
// all three native engines through adversarial schedules with this
// trace as the per-run witness; NOrec gained the hook for exactly that.
//
// The same limitations as the TL2 engine's hook apply: traced values
// must be int or uint64, enable/disable only with no transactions in
// flight, and tracing allocates freely — it measures correctness, never
// performance.

import (
	"fmt"
	"sync"

	"repro/internal/tm"
)

// traceOn gates the per-attempt trace hooks; toggled only by the
// test-only startTrace/stopTrace, with no transactions in flight.
var traceOn bool

// traceCur is the active collector (nil when tracing is off).
var traceCur *traceCollector

// traceCollector accumulates one tm.History across all traced
// transactions; a single mutex orders the shared sequence counter and
// the per-record appends.
type traceCollector struct {
	mu   sync.Mutex
	seq  int
	objs map[varBase]int
	hist tm.History
}

// traceTxn is the per-attempt trace state hung off Tx.trec.
type traceTxn struct {
	c   *traceCollector
	rec *tm.TxnRecord
}

// startTrace installs a fresh collector; test-only, via export_test.go.
func startTrace() {
	traceCur = &traceCollector{objs: make(map[varBase]int)}
	traceOn = true
}

// stopTrace disables tracing and returns the recorded history; test-only.
func stopTrace() *tm.History {
	traceOn = false
	c := traceCur
	traceCur = nil
	if c == nil {
		return &tm.History{}
	}
	return &c.hist
}

// objID maps a Var to a dense t-object index, assigned on first sight
// (c.mu held).
func (c *traceCollector) objID(v varBase) int {
	id, ok := c.objs[v]
	if !ok {
		id = len(c.objs)
		c.objs[v] = id
	}
	return id
}

// traceValue narrows a traced value to tm.Value.
func traceValue(val any) tm.Value {
	switch x := val.(type) {
	case int:
		return tm.Value(x)
	case uint64:
		return x
	default:
		panic(fmt.Sprintf("norecstm: trace mode supports int and uint64 Var values only, got %T", val))
	}
}

// traceBegin opens a TxnRecord for the current attempt. Called (behind
// traceOn) right after the attempt samples its sequence snapshot.
func (tx *Tx) traceBegin() {
	c := traceCur
	if c == nil {
		return
	}
	// Under the scheduling harness the Proc column is the harness worker
	// id, not the pooled descriptor's stats stripe: pool hand-out order
	// is nondeterministic, and replaying the same schedule twice must
	// yield byte-identical histories.
	proc := int(tx.shard)
	if tx.sync != nil && syncProc != nil {
		proc = syncProc()
	}
	c.mu.Lock()
	rec := &tm.TxnRecord{ID: len(c.hist.Txns), Proc: proc, StartSeq: c.seq, EndSeq: -1}
	c.seq++
	c.hist.Txns = append(c.hist.Txns, rec)
	c.mu.Unlock()
	tx.trec = &traceTxn{c: c, rec: rec}
}

// traceRead records a certified read (called at the certify point, on
// both the default and the RO path, including read-own-write hits).
func (tx *Tx) traceRead(v varBase, val any) {
	t := tx.trec
	t.c.mu.Lock()
	t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.c.seq, Kind: tm.OpRead, Obj: t.c.objID(v), Value: traceValue(val)})
	t.c.seq++
	t.c.mu.Unlock()
}

// traceWrite records a buffered write at invocation time.
func (tx *Tx) traceWrite(v varBase, val any) {
	t := tx.trec
	t.c.mu.Lock()
	t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.c.seq, Kind: tm.OpWrite, Obj: t.c.objID(v), Value: traceValue(val)})
	t.c.seq++
	t.c.mu.Unlock()
}

// traceEnd closes the attempt's record: committed attempts get a tryC
// response, everything else an abort. Called after the commit released
// the sequence lock (or the abort unwound).
func (tx *Tx) traceEnd(committed bool) {
	t := tx.trec
	if t == nil {
		return
	}
	tx.trec = nil
	t.c.mu.Lock()
	t.rec.EndSeq = t.c.seq
	if committed {
		t.rec.Status = tm.TxnCommitted
		t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.c.seq, Kind: tm.OpTryCommit, Obj: -1})
	} else {
		t.rec.Status = tm.TxnAborted
		t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.c.seq, Kind: tm.OpAbort, Obj: -1, Aborted: true})
	}
	t.c.seq++
	t.c.mu.Unlock()
}
