// Package norecstm is a native NOrec software transactional memory — the
// ownership-record-free counterpart of the TL2-based repro/stm package,
// mirroring its API (Var[T], Atomically, Retry). One global sequence lock
// orders all commits; reads are invisible and validated by value (snapshot
// identity) whenever the global sequence moves.
//
// It exists as the native-code half of the paper's ablation story: NOrec
// trades TL2's global *clock* for a global *lock*, removing per-variable
// version metadata entirely. Read-only transactions still scale (invisible
// reads), but writers serialize on a single word, and after every commit
// each live reader revalidates its whole read set — the Θ(m)-per-conflict
// cost that becomes Theorem 3's Ω(m²) under the Lemma-2 adversary. The
// sibling benchmarks compare the two engines on identical workloads.
// AtomicallyRO is the value-validation-free read-only fast path: reads
// certify an unmoved global sequence and log nothing, so a read-only
// transaction pays no revalidation scans at all (a moved sequence simply
// re-begins or retries the attempt).
//
// Vars from this package must not be mixed with repro/stm Vars inside one
// transaction; each engine has its own types, so the compiler enforces
// this.
package norecstm

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/syncpoint"
	"repro/stm/budget"
)

// seq is the global sequence lock: even = quiescent, odd = a writer is
// committing.
//
// There is deliberately no clock-strategy axis here (contrast
// stm.SetClockStrategy and mvstm.SetClockStrategy): GV7-style block
// allocation amortizes fetches of a *counter*, but NOrec's seq word is a
// *lock* — a committer must move it odd to exclude other writers and
// move it even again to release them, and readers certify against the
// exact current value, so every commit must perform its two RMWs on the
// shared word no matter how ticks were allocated. Batching is impossible
// by construction, which is NOrec's trade: no per-variable metadata, in
// exchange for a serialized commit window.
var seq atomic.Uint64

// box is an immutable value snapshot; pointer identity doubles as the
// "value" compared by NOrec's validation (boxes are never mutated).
type box struct{ val any }

type varBase interface {
	loadBox() *box
	storeBox(*box)
	id() uint64
}

// varIDs hands out Var identities for contention profiling. The id is
// inert metadata: NOrec's "no per-variable metadata" claim is about the
// runtime algorithm (no version word read or written on any path), and
// the id is touched only by abort-site telemetry, never by reads,
// writes, validation or commit.
var varIDs atomic.Uint64

// Var is a transactional variable holding a value of type T. Create with
// NewVar.
type Var[T any] struct {
	vid   uint64
	state atomic.Pointer[box]
}

// NewVar creates a transactional variable with the given initial value.
func NewVar[T any](initial T) *Var[T] {
	v := &Var[T]{vid: varIDs.Add(1)}
	v.state.Store(&box{val: initial})
	return v
}

func (v *Var[T]) loadBox() *box {
	b := v.state.Load()
	if b == nil {
		panic("norecstm: Var used before NewVar (the zero Var is not initialized)")
	}
	return b
}
func (v *Var[T]) storeBox(b *box) { v.state.Store(b) }
func (v *Var[T]) id() uint64      { return v.vid }

// Get reads the variable inside a transaction.
func (v *Var[T]) Get(tx *Tx) T { return tx.read(v).(T) }

// Set buffers a write inside a transaction.
func (v *Var[T]) Set(tx *Tx, val T) { tx.write(v, val) }

// Load reads the variable outside any transaction.
func (v *Var[T]) Load() T { return v.state.Load().val.(T) }

type retrySignal struct{}
type waitSignal struct{}

// writeSetMapThreshold is the write-set size beyond which Tx adds a map
// index for read-own-write lookup; below it a linear scan of the slice is
// faster than hashing and allocates nothing.
const writeSetMapThreshold = 24

// Tx is a NOrec transaction descriptor; valid only inside Atomically.
// Descriptors are pooled and their read/write sets recycled across
// attempts and calls, mirroring the TL2 engine: NOrec's point is exactly
// how lean per-transaction metadata can get.
type Tx struct {
	snap   uint64
	reads  []readEntry
	writes []writeEntry
	wmap   map[varBase]int // index into writes; non-nil past the threshold
	shard  uint32          // stats stripe; assigned once, survives reset
	// ro marks the read-only fast path (AtomicallyRO): reads are certified
	// against the sequence snapshot but never logged, so a moved sequence
	// cannot be revalidated by value — the attempt re-begins if it has
	// certified no read yet (roReads == 0) and aborts otherwise. Writes
	// inside an RO transaction panic.
	ro      bool
	roReads int
	// latSeq is the descriptor-local sampling sequence for the commit
	// latency histograms (see SetLatencySampling); it deliberately
	// survives reset so pooled descriptors keep striding through the
	// sample period.
	latSeq uint32
	// metered/budgetLeft/costs are the call's work-budget grant, sampled
	// once per call from the engine policy (see SetBudgetPolicy);
	// budgetExceeded records exhaustion on the non-panicking paths. The
	// grant survives reset: retries spend the same budget.
	metered        bool
	budgetExceeded bool
	budgetLeft     uint64
	costs          budget.Costs
	// trec is the test-only trace record of the current attempt (nil
	// outside tracing tests; see trace.go); sync the test-only scheduling
	// hook of the current call (nil outside harness tests; syncpoint.go).
	trec *traceTxn
	sync func(syncpoint.Point)
}

type readEntry struct {
	v varBase
	b *box
}

type writeEntry struct {
	v   varBase
	val any
}

var txPool = sync.Pool{New: func() any {
	return &Tx{shard: uint32(statSeq.Add(1))}
}}

// reset clears the read and write sets in place, keeping their backing
// arrays, and zeroes dropped entries so a pooled Tx pins no user data.
func (tx *Tx) reset() {
	clear(tx.reads)
	tx.reads = tx.reads[:0]
	clear(tx.writes)
	tx.writes = tx.writes[:0]
	tx.wmap = nil
	tx.roReads = 0
	tx.trec = nil
}

// release returns the descriptor to the pool, dropping oversized backing
// arrays so one large transaction does not pin memory forever.
func (tx *Tx) release() {
	tx.reset()
	if cap(tx.reads) > 4096 {
		tx.reads = nil
	}
	if cap(tx.writes) > 4096 {
		tx.writes = nil
	}
	txPool.Put(tx)
}

// findWrite locates v in the write set (read-own-write lookup).
func (tx *Tx) findWrite(v varBase) (int, bool) {
	if tx.wmap != nil {
		i, ok := tx.wmap[v]
		return i, ok
	}
	for i := range tx.writes {
		if tx.writes[i].v == v {
			return i, true
		}
	}
	return 0, false
}

func (tx *Tx) begin() {
	tx.syncAt(syncpoint.Begin)
	for {
		s := seq.Load()
		if s&1 == 0 {
			tx.snap = s
			return
		}
		if !tx.syncSpin() {
			runtime.Gosched()
		}
	}
}

// validate re-reads the whole read set by snapshot identity until the
// sequence is stable; it aborts the attempt if any read value changed.
// This is NOrec's native form of timestamp extension: the snapshot moves
// forward to the stable sequence whenever every read value is unchanged,
// and only a genuinely overwritten read aborts. Each completed scan is
// counted so the Θ(m)-per-conflict revalidation cost the paper's Theorem 3
// builds on is observable (ReadStats). reason classifies a failed scan
// for the abort taxonomy — the read path passes abortReadCertify, the
// commit CAS loop abortCommitValidation — and the overwritten entry's
// Var feeds the contention profiler.
func (tx *Tx) validate(reason int) {
	// The revalidation scan is engine work on the transaction's behalf:
	// one step per read entry, charged per completed pass. The charge may
	// panic budgetSignal — safe from the read path, and translated into a
	// failed commit by commit's recover (no lock is held there either).
	tx.charge(tx.costs.Step * uint64(len(tx.reads)))
	for {
		s := seq.Load()
		if s&1 == 1 {
			if !tx.syncSpin() {
				runtime.Gosched()
			}
			continue
		}
		ok := true
		var bad varBase
		for _, r := range tx.reads {
			if r.v.loadBox() != r.b {
				ok = false
				bad = r.v
				break
			}
		}
		if seq.Load() != s {
			continue // a commit raced the scan; redo it
		}
		tx.stat().revalidations.Add(1)
		if !ok {
			tx.abortConflict(reason, bad)
		}
		tx.snap = s
		return
	}
}

func (tx *Tx) read(v varBase) any {
	if tx.ro {
		return tx.readRO(v)
	}
	if tx.metered {
		tx.charge(tx.costs.Step)
	}
	if i, ok := tx.findWrite(v); ok {
		if tx.trec != nil {
			tx.traceRead(v, tx.writes[i].val)
		}
		return tx.writes[i].val
	}
	b := v.loadBox()
	for seq.Load() != tx.snap {
		tx.validate(abortReadCertify)
		b = v.loadBox()
	}
	if tx.trec != nil {
		tx.traceRead(v, b.val)
	}
	tx.syncAt(syncpoint.PostReadCertify)
	if tx.metered {
		tx.charge(tx.costs.Read)
	}
	tx.reads = append(tx.reads, readEntry{v: v, b: b})
	return b.val
}

// readRO is the value-validation-free read of the read-only fast path:
// load the snapshot, certify that the global sequence has not moved since
// the transaction's begin, and record nothing. A moved sequence cannot be
// revalidated (no read set), so the attempt re-begins from the newer
// stable sequence while it has certified no read yet — merely a later
// begin — and aborts otherwise (Atomically's retry replays it against the
// fresh sequence).
func (tx *Tx) readRO(v varBase) any {
	if tx.metered {
		tx.charge(tx.costs.Step + tx.costs.Read)
	}
	for {
		b := v.loadBox()
		s := seq.Load()
		if s == tx.snap {
			tx.roReads++
			if tx.trec != nil {
				tx.traceRead(v, b.val)
			}
			tx.syncAt(syncpoint.PostReadCertify)
			return b.val
		}
		if tx.roReads > 0 {
			// Certified reads exist but there is no read log to
			// revalidate: the snapshot cannot be extended, so the read
			// fails certification outright.
			tx.abortConflict(abortReadCertify, v)
		}
		if s&1 == 1 {
			// A writer is mid-commit; wait for a stable sequence.
			if !tx.syncSpin() {
				runtime.Gosched()
			}
			continue
		}
		tx.snap = s // no reads certified yet: adopt the newer snapshot
	}
}

func (tx *Tx) write(v varBase, val any) {
	if tx.ro {
		panic("norecstm: Set inside a read-only transaction (AtomicallyRO cannot write)")
	}
	if tx.metered {
		tx.charge(tx.costs.Step)
	}
	if tx.trec != nil {
		tx.traceWrite(v, val)
	}
	if i, ok := tx.findWrite(v); ok {
		tx.writes[i].val = val
		return
	}
	if tx.metered {
		tx.charge(tx.costs.Write)
	}
	if tx.wmap == nil && len(tx.writes) >= writeSetMapThreshold {
		tx.wmap = make(map[varBase]int, 2*writeSetMapThreshold)
		for j := range tx.writes {
			tx.wmap[tx.writes[j].v] = j
		}
	}
	if tx.wmap != nil {
		tx.wmap[v] = len(tx.writes)
	}
	tx.writes = append(tx.writes, writeEntry{v: v, val: val})
}

// Retry blocks the transaction until a variable it read changes. The
// read-only fast path records no read set to wait on, so Retry inside
// AtomicallyRO panics.
func (tx *Tx) Retry() {
	if tx.ro {
		panic("norecstm: Retry inside AtomicallyRO would sleep forever (the read-only fast path records no read set to wait on)")
	}
	if len(tx.reads) == 0 {
		panic("norecstm: Retry with an empty read set would sleep forever")
	}
	// Taxonomy: a parked wait is a user-requested re-run, not a conflict
	// (and not counted in Stats.Aborts).
	tx.stat().reasons[abortExplicitRetry].Add(1)
	panic(waitSignal{})
}

func (tx *Tx) commit() (ok bool) {
	if len(tx.writes) == 0 {
		return true // read-only: the last validation certified the snapshot
	}
	// validate() reports an invalidated read set by panicking the retry
	// signal; translate that into a failed commit so Atomically re-runs.
	// Its budget charge can likewise panic budgetSignal mid-commit (only
	// after a failed CAS, so no lock is held): same translation, and the
	// attempt loop turns the budgetExceeded flag into ErrOutOfBudget.
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case retrySignal, budgetSignal:
				ok = false
				return
			}
			panic(r)
		}
	}()
	tx.syncAt(syncpoint.PreLock)
	for !seq.CompareAndSwap(tx.snap, tx.snap+1) {
		// The sequence moved: revalidate, then retry from the refreshed
		// snapshot.
		tx.validate(abortCommitValidation)
	}
	// The CAS moved seq odd: this commit holds the global sequence lock.
	tx.syncAt(syncpoint.PostLock)
	tx.syncAt(syncpoint.PrePublish)
	for i := range tx.writes {
		tx.writes[i].v.storeBox(&box{val: tx.writes[i].val})
	}
	seq.Store(tx.snap + 2)
	return true
}

// Atomically runs fn inside a transaction, retrying on conflict until it
// commits; a non-nil error aborts without retrying.
func Atomically(fn func(tx *Tx) error) error {
	return atomically(nil, fn)
}

// AtomicallyCtx is Atomically with a cancellation point: the context is
// checked before every attempt and while blocked in Retry, and a done
// context surfaces as a clean abort (buffered writes discarded, pooled
// descriptor recycled) returning ctx.Err(). An attempt already past its
// check runs to completion, so a commit racing the cancellation may still
// land.
func AtomicallyCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return atomically(ctx, fn)
}

// atomically is the shared retry loop behind Atomically and
// AtomicallyCtx; a nil ctx costs one predictable branch per attempt.
func atomically(ctx context.Context, fn func(tx *Tx) error) error {
	admitted()
	tx := txPool.Get().(*Tx)
	tx.ro = false
	tx.sync = nil
	if syncOn {
		tx.sync = syncHook
	}
	tx.beginBudget()
	var latStart time.Time
	if p := latEvery.Load(); p != 0 {
		tx.latSeq++
		if uint64(tx.latSeq)&(p-1) == 0 {
			latStart = time.Now()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			// A panic escaping fn must not strand the pooled descriptor. No
			// engine lock can be held here: the sequence lock is taken only
			// inside commit, which runs no user code and never panics while
			// holding it.
			tx.release()
			panic(r)
		}
	}()
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				tx.release()
				return err
			}
		}
		tx.reset()
		tx.begin()
		if traceOn {
			tx.traceBegin()
		}
		err, ctl := runAttempt(tx, fn)
		switch ctl {
		case ctlOK:
			if err != nil {
				tx.traceEnd(false)
				tx.release()
				return err
			}
			if tx.commit() {
				tx.stat().commits.Add(1)
				if !latStart.IsZero() {
					commitLatency.Observe(uint64(time.Since(latStart).Microseconds()))
					attemptsPerCommit.Observe(uint64(attempt) + 1)
				}
				tx.traceEnd(true)
				tx.release()
				return nil
			}
			tx.stat().aborts.Add(1)
			tx.traceEnd(false)
			if tx.budgetExceeded {
				return tx.budgetAbort()
			}
		case ctlRetryNow:
			tx.stat().aborts.Add(1)
			tx.traceEnd(false)
		case ctlBudget:
			tx.stat().aborts.Add(1)
			tx.traceEnd(false)
			return tx.budgetAbort()
		case ctlRetryWait:
			tx.traceEnd(false)
			waitForChange(tx, ctx)
			continue // the wait already yielded; retry immediately
		}
		if !tx.chargeSoft(tx.costs.Retry) {
			return tx.budgetAbort()
		}
		backoff.Attempt(attempt)
	}
}

// AtomicallyRO runs fn as a read-only transaction, retrying until it
// commits; a non-nil error aborts without retrying, as with Atomically.
// It is NOrec's value-validation-free fast path: each read certifies only
// that the global sequence has not moved since begin, nothing is logged,
// and commit is a no-op — no read set, no revalidation scans. fn must not
// write (Set panics) and must not call Retry (there is no recorded read
// set to wait on).
func AtomicallyRO(fn func(tx *Tx) error) error {
	return atomicallyRO(nil, fn)
}

// AtomicallyROCtx is AtomicallyRO with a cancellation point, with the
// same semantics as AtomicallyCtx.
func AtomicallyROCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return atomicallyRO(ctx, fn)
}

// atomicallyRO is the shared retry loop behind AtomicallyRO and
// AtomicallyROCtx.
func atomicallyRO(ctx context.Context, fn func(tx *Tx) error) error {
	tx := txPool.Get().(*Tx)
	tx.ro = true
	tx.sync = nil
	if syncOn {
		tx.sync = syncHook
	}
	tx.beginBudget()
	var latStart time.Time
	if p := latEvery.Load(); p != 0 {
		tx.latSeq++
		if uint64(tx.latSeq)&(p-1) == 0 {
			latStart = time.Now()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			// As in atomically: recycle the descriptor under a user panic.
			tx.release()
			panic(r)
		}
	}()
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				tx.release()
				return err
			}
		}
		tx.reset()
		tx.begin()
		if traceOn {
			tx.traceBegin()
		}
		err, ctl := runAttempt(tx, fn)
		if ctl == ctlOK {
			// Nothing to commit: every read was certified against the
			// unmoved sequence when it was performed.
			if err != nil {
				tx.traceEnd(false)
				tx.release()
				return err
			}
			tx.stat().commits.Add(1)
			tx.stat().roCommits.Add(1)
			if !latStart.IsZero() {
				commitLatency.Observe(uint64(time.Since(latStart).Microseconds()))
				attemptsPerCommit.Observe(uint64(attempt) + 1)
			}
			tx.traceEnd(true)
			tx.release()
			return nil
		}
		// ctlRetryWait is impossible here (Retry panics on the RO path).
		tx.stat().aborts.Add(1)
		tx.traceEnd(false)
		if ctl == ctlBudget {
			return tx.budgetAbort()
		}
		if !tx.chargeSoft(tx.costs.Retry) {
			return tx.budgetAbort()
		}
		backoff.Attempt(attempt)
	}
}

type ctlKind int

const (
	ctlOK ctlKind = iota
	ctlRetryNow
	ctlRetryWait
	ctlBudget
)

func runAttempt(tx *Tx, fn func(tx *Tx) error) (err error, ctl ctlKind) {
	defer func() {
		switch r := recover(); r.(type) {
		case nil:
		case retrySignal:
			ctl = ctlRetryNow
		case waitSignal:
			ctl = ctlRetryWait
		case budgetSignal:
			ctl = ctlBudget
		default:
			panic(r)
		}
	}()
	return fn(tx), ctlOK
}

// waitForChange blocks until a variable in the read set changes by
// snapshot identity, or until ctx (if any) is done — the caller's loop
// turns that into a clean cancellation abort. The ctx poll is sampled
// every few spins so the common wake-by-write path stays a pure
// pointer-compare loop.
func waitForChange(tx *Tx, ctx context.Context) {
	for spins := 0; ; spins++ {
		for _, r := range tx.reads {
			if r.v.loadBox() != r.b {
				return
			}
		}
		if ctx != nil && spins&63 == 0 && ctx.Err() != nil {
			return
		}
		if !tx.syncSpin() {
			runtime.Gosched()
		}
	}
}
