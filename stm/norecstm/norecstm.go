// Package norecstm is a native NOrec software transactional memory — the
// ownership-record-free counterpart of the TL2-based repro/stm package,
// mirroring its API (Var[T], Atomically, Retry). One global sequence lock
// orders all commits; reads are invisible and validated by value (snapshot
// identity) whenever the global sequence moves.
//
// It exists as the native-code half of the paper's ablation story: NOrec
// trades TL2's global *clock* for a global *lock*, removing per-variable
// version metadata entirely. Read-only transactions still scale (invisible
// reads), but writers serialize on a single word, and after every commit
// each live reader revalidates its whole read set — the Θ(m)-per-conflict
// cost that becomes Theorem 3's Ω(m²) under the Lemma-2 adversary. The
// sibling benchmarks compare the two engines on identical workloads.
//
// Vars from this package must not be mixed with repro/stm Vars inside one
// transaction; each engine has its own types, so the compiler enforces
// this.
package norecstm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
)

// seq is the global sequence lock: even = quiescent, odd = a writer is
// committing.
var seq atomic.Uint64

// box is an immutable value snapshot; pointer identity doubles as the
// "value" compared by NOrec's validation (boxes are never mutated).
type box struct{ val any }

type varBase interface {
	loadBox() *box
	storeBox(*box)
}

// Var is a transactional variable holding a value of type T. Create with
// NewVar.
type Var[T any] struct {
	state atomic.Pointer[box]
}

// NewVar creates a transactional variable with the given initial value.
func NewVar[T any](initial T) *Var[T] {
	v := &Var[T]{}
	v.state.Store(&box{val: initial})
	return v
}

func (v *Var[T]) loadBox() *box {
	b := v.state.Load()
	if b == nil {
		panic("norecstm: Var used before NewVar (the zero Var is not initialized)")
	}
	return b
}
func (v *Var[T]) storeBox(b *box) { v.state.Store(b) }

// Get reads the variable inside a transaction.
func (v *Var[T]) Get(tx *Tx) T { return tx.read(v).(T) }

// Set buffers a write inside a transaction.
func (v *Var[T]) Set(tx *Tx, val T) { tx.write(v, val) }

// Load reads the variable outside any transaction.
func (v *Var[T]) Load() T { return v.state.Load().val.(T) }

type retrySignal struct{}
type waitSignal struct{}

// writeSetMapThreshold is the write-set size beyond which Tx adds a map
// index for read-own-write lookup; below it a linear scan of the slice is
// faster than hashing and allocates nothing.
const writeSetMapThreshold = 24

// Tx is a NOrec transaction descriptor; valid only inside Atomically.
// Descriptors are pooled and their read/write sets recycled across
// attempts and calls, mirroring the TL2 engine: NOrec's point is exactly
// how lean per-transaction metadata can get.
type Tx struct {
	snap   uint64
	reads  []readEntry
	writes []writeEntry
	wmap   map[varBase]int // index into writes; non-nil past the threshold
	shard  uint32          // stats stripe; assigned once, survives reset
}

type readEntry struct {
	v varBase
	b *box
}

type writeEntry struct {
	v   varBase
	val any
}

var txPool = sync.Pool{New: func() any {
	return &Tx{shard: uint32(statSeq.Add(1))}
}}

// reset clears the read and write sets in place, keeping their backing
// arrays, and zeroes dropped entries so a pooled Tx pins no user data.
func (tx *Tx) reset() {
	clear(tx.reads)
	tx.reads = tx.reads[:0]
	clear(tx.writes)
	tx.writes = tx.writes[:0]
	tx.wmap = nil
}

// release returns the descriptor to the pool, dropping oversized backing
// arrays so one large transaction does not pin memory forever.
func (tx *Tx) release() {
	tx.reset()
	if cap(tx.reads) > 4096 {
		tx.reads = nil
	}
	if cap(tx.writes) > 4096 {
		tx.writes = nil
	}
	txPool.Put(tx)
}

// findWrite locates v in the write set (read-own-write lookup).
func (tx *Tx) findWrite(v varBase) (int, bool) {
	if tx.wmap != nil {
		i, ok := tx.wmap[v]
		return i, ok
	}
	for i := range tx.writes {
		if tx.writes[i].v == v {
			return i, true
		}
	}
	return 0, false
}

func (tx *Tx) begin() {
	for {
		s := seq.Load()
		if s&1 == 0 {
			tx.snap = s
			return
		}
		runtime.Gosched()
	}
}

// validate re-reads the whole read set by snapshot identity until the
// sequence is stable; it aborts the attempt if any read value changed.
// This is NOrec's native form of timestamp extension: the snapshot moves
// forward to the stable sequence whenever every read value is unchanged,
// and only a genuinely overwritten read aborts. Each completed scan is
// counted so the Θ(m)-per-conflict revalidation cost the paper's Theorem 3
// builds on is observable (ReadStats).
func (tx *Tx) validate() {
	for {
		s := seq.Load()
		if s&1 == 1 {
			runtime.Gosched()
			continue
		}
		ok := true
		for _, r := range tx.reads {
			if r.v.loadBox() != r.b {
				ok = false
				break
			}
		}
		if seq.Load() != s {
			continue // a commit raced the scan; redo it
		}
		tx.stat().revalidations.Add(1)
		if !ok {
			panic(retrySignal{})
		}
		tx.snap = s
		return
	}
}

func (tx *Tx) read(v varBase) any {
	if i, ok := tx.findWrite(v); ok {
		return tx.writes[i].val
	}
	b := v.loadBox()
	for seq.Load() != tx.snap {
		tx.validate()
		b = v.loadBox()
	}
	tx.reads = append(tx.reads, readEntry{v: v, b: b})
	return b.val
}

func (tx *Tx) write(v varBase, val any) {
	if i, ok := tx.findWrite(v); ok {
		tx.writes[i].val = val
		return
	}
	if tx.wmap == nil && len(tx.writes) >= writeSetMapThreshold {
		tx.wmap = make(map[varBase]int, 2*writeSetMapThreshold)
		for j := range tx.writes {
			tx.wmap[tx.writes[j].v] = j
		}
	}
	if tx.wmap != nil {
		tx.wmap[v] = len(tx.writes)
	}
	tx.writes = append(tx.writes, writeEntry{v: v, val: val})
}

// Retry blocks the transaction until a variable it read changes.
func (tx *Tx) Retry() {
	if len(tx.reads) == 0 {
		panic("norecstm: Retry with an empty read set would sleep forever")
	}
	panic(waitSignal{})
}

func (tx *Tx) commit() (ok bool) {
	if len(tx.writes) == 0 {
		return true // read-only: the last validation certified the snapshot
	}
	// validate() reports an invalidated read set by panicking the retry
	// signal; translate that into a failed commit so Atomically re-runs.
	defer func() {
		if r := recover(); r != nil {
			if _, isRetry := r.(retrySignal); isRetry {
				ok = false
				return
			}
			panic(r)
		}
	}()
	for !seq.CompareAndSwap(tx.snap, tx.snap+1) {
		// The sequence moved: revalidate, then retry from the refreshed
		// snapshot.
		tx.validate()
	}
	for i := range tx.writes {
		tx.writes[i].v.storeBox(&box{val: tx.writes[i].val})
	}
	seq.Store(tx.snap + 2)
	return true
}

// Atomically runs fn inside a transaction, retrying on conflict until it
// commits; a non-nil error aborts without retrying.
func Atomically(fn func(tx *Tx) error) error {
	tx := txPool.Get().(*Tx)
	for attempt := 0; ; attempt++ {
		tx.reset()
		tx.begin()
		err, ctl := runAttempt(tx, fn)
		switch ctl {
		case ctlOK:
			if err != nil {
				tx.release()
				return err
			}
			if tx.commit() {
				tx.stat().commits.Add(1)
				tx.release()
				return nil
			}
			tx.stat().aborts.Add(1)
		case ctlRetryNow:
			tx.stat().aborts.Add(1)
		case ctlRetryWait:
			waitForChange(tx)
			continue // the wait already yielded; retry immediately
		}
		backoff.Attempt(attempt)
	}
}

type ctlKind int

const (
	ctlOK ctlKind = iota
	ctlRetryNow
	ctlRetryWait
)

func runAttempt(tx *Tx, fn func(tx *Tx) error) (err error, ctl ctlKind) {
	defer func() {
		switch r := recover(); r.(type) {
		case nil:
		case retrySignal:
			ctl = ctlRetryNow
		case waitSignal:
			ctl = ctlRetryWait
		default:
			panic(r)
		}
	}()
	return fn(tx), ctlOK
}

func waitForChange(tx *Tx) {
	for {
		for _, r := range tx.reads {
			if r.v.loadBox() != r.b {
				return
			}
		}
		runtime.Gosched()
	}
}
