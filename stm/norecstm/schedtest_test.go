package norecstm_test

// Hostile-schedule replay against the real NOrec engine, via the
// internal/schedtest harness (see stm/schedtest_test.go for the TL2
// counterpart and the instance-design notes). NOrec is the interesting
// engine for the harness's SpinWait protocol: its begin/validate/readRO
// paths spin on the global sequence lock, and under the harness the
// committer holding it is a parked worker — only the schedule can run
// it, so every spin iteration parks at syncpoint.SpinWait instead of
// yielding to the Go scheduler.

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/check"
	"repro/internal/sched"
	"repro/internal/schedtest"
	"repro/internal/syncpoint"
	"repro/internal/tm"
	"repro/stm/norecstm"
)

// verifyHistory asserts the two oracle properties on a recorded native
// history.
func verifyHistory(t *testing.T, h *tm.History) {
	t.Helper()
	if len(h.Txns) == 0 {
		t.Fatal("trace recorded no transactions")
	}
	if res := check.Opaque(h); !res.OK {
		t.Errorf("history is not opaque:\n%s", h)
	}
	if res := check.StrictlySerializable(h); !res.OK {
		t.Errorf("history is not strictly serializable:\n%s", h)
	}
}

// buildSchedInstance registers the standard three-transaction instance
// (see stm/schedtest_test.go: asymmetric so every schedule terminates)
// on a fresh harness over fresh Vars, and installs the hook and trace.
func buildSchedInstance() *schedtest.Harness {
	x := norecstm.NewVar(0)
	y := norecstm.NewVar(0)
	h := schedtest.New()
	h.Go(func() {
		_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
			y.Set(tx, x.Get(tx)+1)
			return nil
		})
	})
	h.Go(func() {
		_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
			x.Set(tx, x.Get(tx)+1)
			return nil
		})
	})
	h.Go(func() {
		_ = norecstm.AtomicallyRO(func(tx *norecstm.Tx) error {
			_ = x.Get(tx)
			_ = y.Get(tx)
			return nil
		})
	})
	h.SetStepLimit(20_000)
	norecstm.SetSyncHook(h.Hook(), h.Proc())
	norecstm.StartTrace()
	return h
}

func runSchedInstance(t *testing.T, pol sched.Policy) (*tm.History, *schedtest.Harness) {
	t.Helper()
	h := buildSchedInstance()
	defer norecstm.SetSyncHook(nil, nil)
	err := h.Run(pol)
	hist := norecstm.StopTrace()
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	if !norecstm.SeqQuiescent() {
		t.Fatal("sequence lock left held after the run")
	}
	return hist, h
}

// TestSchedRoundRobinOpacity replays the fair adversarial schedule
// against the real engine: maximal interleaving at every sync point —
// including the value-based revalidation a mid-schedule commit forces on
// its concurrent readers — with the oracle asserting opacity.
func TestSchedRoundRobinOpacity(t *testing.T) {
	hist, h := runSchedInstance(t, &sched.RoundRobin{})
	if len(h.Log()) == 0 {
		t.Fatal("harness recorded no parks — the sync hooks did not fire")
	}
	verifyHistory(t, hist)
}

// TestSchedScheduleDeterminism: the same schedule driven twice against
// the real engine yields byte-identical trace histories, and the pick
// schedule extracted from a run replays to the same history again.
func TestSchedScheduleDeterminism(t *testing.T) {
	hist1, run1 := runSchedInstance(t, &sched.RoundRobin{})
	hist2, run2 := runSchedInstance(t, &sched.RoundRobin{})
	if fmt.Sprint(run1.Log()) != fmt.Sprint(run2.Log()) {
		t.Fatalf("same policy, different schedules:\n%v\n%v", run1.Log(), run2.Log())
	}
	if hist1.String() != hist2.String() {
		t.Fatalf("same schedule, different histories:\n%s\nvs\n%s", hist1, hist2)
	}
	hist3, _ := runSchedInstance(t, sched.NewReplay(run1.Schedule()))
	if hist3.String() != hist1.String() {
		t.Fatalf("extracted schedule %v diverged on replay:\n%s\nvs\n%s", run1.Schedule(), hist3, hist1)
	}
}

// TestSchedExploreOpacity runs Explore's preemption-bounded enumeration
// against the real engine; every bounded schedule of the instance must
// yield an opaque history, and one explored schedule must replay to a
// byte-identical history.
func TestSchedExploreOpacity(t *testing.T) {
	defer norecstm.SetSyncHook(nil, nil)
	var schedules [][]int
	build := func() (sched.Runner, func() error) {
		h := buildSchedInstance()
		return h, func() error {
			hist := norecstm.StopTrace()
			if res := check.Opaque(hist); !res.OK {
				return fmt.Errorf("history not opaque:\n%s", hist)
			}
			schedules = append(schedules, h.Schedule())
			return nil
		}
	}
	res, err := sched.ExploreRunner(build, sched.ExploreOpts{MaxPreemptions: 1, MaxRuns: 64, StepLimit: 400})
	norecstm.SetSyncHook(nil, nil)
	norecstm.StopTrace()
	if err != nil {
		t.Fatalf("exploration found a violation: %v", err)
	}
	if res.Runs < 5 || len(schedules) < 2 {
		t.Fatalf("exploration barely branched (runs=%d, completed=%d) — the hooks are not creating decision points", res.Runs, len(schedules))
	}
	target := schedules[len(schedules)-1]
	h1, _ := runSchedInstance(t, sched.NewReplay(target))
	h2, _ := runSchedInstance(t, sched.NewReplay(target))
	if h1.String() != h2.String() {
		t.Fatalf("explored schedule %v diverged on replay:\n%s\nvs\n%s", target, h1, h2)
	}
	verifyHistory(t, h1)
}

// TestSchedCommitInvalidatesSnapshot pins NOrec's one schedule-sensitive
// behavior deterministically: a reader samples the sequence and certifies
// x, a writer then commits (bumping the global sequence), and the
// reader's next read must revalidate by value — the committed write to y
// forces an abort, and the retry reads the writer's pair.
func TestSchedCommitInvalidatesSnapshot(t *testing.T) {
	x := norecstm.NewVar(0)
	y := norecstm.NewVar(0)
	attempts := 0
	gotX, gotY := -1, -1
	h := schedtest.New()
	h.Go(func() {
		_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
			attempts++
			gotX = x.Get(tx)
			gotY = y.Get(tx)
			return nil
		})
	})
	h.Go(func() {
		_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
			x.Set(tx, 10)
			y.Set(tx, 10)
			return nil
		})
	})
	h.SetStepLimit(20_000)
	norecstm.SetSyncHook(h.Hook(), h.Proc())
	defer norecstm.SetSyncHook(nil, nil)
	norecstm.StartTrace()
	pol := &schedtest.PolicyFunc{Label: "commit-under-snapshot", PickFn: func(runnable []int, _ uint64) int {
		if h.Count(0, syncpoint.PostReadCertify) == 0 && slices.Contains(runnable, 0) {
			return 0
		}
		if slices.Contains(runnable, 1) {
			return 1
		}
		return runnable[0]
	}}
	err := h.Run(pol)
	norecstm.SetSyncHook(nil, nil) // before the checks below run transactions of their own
	hist := norecstm.StopTrace()
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	if gotX != 10 || gotY != 10 {
		t.Fatalf("reader got (x,y) = (%d,%d), want the committed (10,10) — a torn snapshot survived", gotX, gotY)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want ≥ 2 (the sequence bump must force a revalidation abort)", attempts)
	}
	verifyHistory(t, hist)
}
