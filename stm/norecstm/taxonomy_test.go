package norecstm_test

// Abort-taxonomy tests for the NOrec engine: the conflict classes this
// engine can produce (ReadCertify from execution-time revalidation and
// the RO fast path, CommitValidation from the sequence-CAS loop) must
// partition Stats.Aborts, Budget must mirror BudgetAborts, and the
// contention profiler must surface the hot Var.

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/stm/budget"
	"repro/stm/norecstm"
)

func hammer(t *testing.T, workers, iters int, vars ...*norecstm.Var[int]) norecstm.Stats {
	t.Helper()
	before := norecstm.ReadStats()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
					for _, v := range vars {
						v.Set(tx, v.Get(tx)+1)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return norecstm.ReadStats().Sub(before)
}

func TestAbortReasonsPartitionAborts(t *testing.T) {
	v := norecstm.NewVar(0)
	d := hammer(t, 8, 300, v)
	r := d.AbortReasons
	conflict := r.ReadCertify + r.CommitValidation + r.LockBusy + r.Extension
	if conflict != d.Aborts {
		t.Fatalf("conflict reasons %+v sum to %d, want Aborts = %d", r, conflict, d.Aborts)
	}
	if r.LockBusy != 0 || r.Extension != 0 {
		t.Fatalf("NOrec produced classes it cannot: %+v", r)
	}
	if r.Budget != 0 || r.ExplicitRetry != 0 {
		t.Fatalf("unmetered no-Retry workload counted Budget=%d ExplicitRetry=%d", r.Budget, r.ExplicitRetry)
	}
	if d.Aborts == 0 {
		t.Log("workload produced no aborts; partition check was vacuous")
	}
}

func TestAbortReasonBudgetMirrorsBudgetAborts(t *testing.T) {
	norecstm.SetBudgetPolicy(budget.Fixed{Limit: 3})
	t.Cleanup(func() { norecstm.SetBudgetPolicy(nil) })
	vars := make([]*norecstm.Var[int], 8)
	for i := range vars {
		vars[i] = norecstm.NewVar(0)
	}
	before := norecstm.ReadStats()
	refused := 0
	for i := 0; i < 50; i++ {
		err := norecstm.Atomically(func(tx *norecstm.Tx) error {
			for _, v := range vars {
				v.Set(tx, v.Get(tx)+1)
			}
			return nil
		})
		if errors.Is(err, norecstm.ErrOutOfBudget) {
			refused++
		}
	}
	d := norecstm.ReadStats().Sub(before)
	if refused == 0 {
		t.Fatal("limit-3 policy refused nothing")
	}
	if d.AbortReasons.Budget != d.BudgetAborts {
		t.Fatalf("Budget reason = %d, want BudgetAborts = %d", d.AbortReasons.Budget, d.BudgetAborts)
	}
}

func TestAbortReasonExplicitRetry(t *testing.T) {
	flag := norecstm.NewVar(false)
	before := norecstm.ReadStats()
	done := make(chan error, 1)
	// parked fires once the waiter has committed to calling Retry, which
	// counts ExplicitRetry before blocking — so the wake-up write below
	// cannot race the count away.
	parked := make(chan struct{}, 1)
	go func() {
		done <- norecstm.Atomically(func(tx *norecstm.Tx) error {
			if !flag.Get(tx) {
				select {
				case parked <- struct{}{}:
				default:
				}
				tx.Retry()
			}
			return nil
		})
	}()
	<-parked
	if err := norecstm.Atomically(func(tx *norecstm.Tx) error { flag.Set(tx, true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	d := norecstm.ReadStats().Sub(before)
	if d.AbortReasons.ExplicitRetry == 0 {
		t.Fatal("parked Retry not counted in ExplicitRetry")
	}
}

func TestContentionProfilerFindsHotVar(t *testing.T) {
	sk := telemetry.NewSketch(8, 1)
	norecstm.SetContentionProfiler(sk)
	t.Cleanup(func() { norecstm.SetContentionProfiler(nil) })
	hot := norecstm.NewVar(0)
	hot.Label("norec-hot")
	d := hammer(t, 8, 300, hot)
	if d.Aborts == 0 {
		t.Skip("no contention this run; nothing for the sketch to see")
	}
	for _, e := range sk.Top(8) {
		if e.Label == "norec-hot" {
			return
		}
	}
	t.Fatalf("hot Var missing from sketch top: %+v", sk.Top(8))
}

func TestLatencySampling(t *testing.T) {
	norecstm.SetLatencySampling(1)
	t.Cleanup(func() { norecstm.SetLatencySampling(0) })
	lat, att := norecstm.LatencyHists()
	c0, a0 := lat.Count(), att.Count()
	v := norecstm.NewVar(0)
	for i := 0; i < 10; i++ {
		if err := norecstm.Atomically(func(tx *norecstm.Tx) error { v.Set(tx, v.Get(tx)+1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if lat.Count()-c0 != 10 || att.Count()-a0 != 10 {
		t.Fatalf("sample-every-call recorded %d latencies / %d attempts, want 10 each",
			lat.Count()-c0, att.Count()-a0)
	}
}
