package norecstm_test

// Robustness coverage for the NOrec engine: budget exhaustion at each
// charge point (mid-read, inside commit's value-revalidation — the one
// NOrec-specific site, reached from the commit CAS loop — and on the
// retry charge), context-aware entry points, and panic-safety. Every
// abort path must leave the global sequence lock quiescent or the whole
// engine deadlocks, so each test asserts SeqQuiescent.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/stm/budget"
	"repro/stm/norecstm"
)

func withPolicy(t *testing.T, p budget.Policy) {
	t.Helper()
	norecstm.SetBudgetPolicy(p)
	t.Cleanup(func() { norecstm.SetBudgetPolicy(nil) })
}

func TestBudgetExhaustionMidRead(t *testing.T) {
	v1, v2 := norecstm.NewVar(1), norecstm.NewVar(2)
	// Unit costs: each fresh Get charges Step+Read = 2; limit 3 admits the
	// first and runs dry on the second's Read charge.
	withPolicy(t, budget.Fixed{Limit: 3})
	before := norecstm.ReadStats()
	reached := false
	err := norecstm.Atomically(func(tx *norecstm.Tx) error {
		_ = v1.Get(tx)
		_ = v2.Get(tx)
		reached = true
		return nil
	})
	if !errors.Is(err, norecstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if reached {
		t.Fatal("attempt continued past the exhausted charge")
	}
	if !norecstm.SeqQuiescent() {
		t.Fatal("sequence lock left held after budget abort")
	}
	d := norecstm.ReadStats().Sub(before)
	if d.BudgetAborts != 1 || d.Aborts != 1 || d.Commits != 0 {
		t.Fatalf("stats delta = %+v, want exactly one (budget) abort", d)
	}
}

// TestBudgetExhaustionInCommitRevalidation drives the meter dry inside
// commit's value-revalidation scan: a concurrent commit moves the global
// sequence between this transaction's read and its commit, so the commit
// CAS fails and revalidation runs — and its Step×|reads| charge is the
// last straw. The exhaustion signal crosses the commit boundary via the
// same translator that carries NOrec's retry signal.
func TestBudgetExhaustionInCommitRevalidation(t *testing.T) {
	v := norecstm.NewVar(1)
	u := norecstm.NewVar(0) // disjoint: moves seq without invalidating v
	w := norecstm.NewVar(0)
	// Step-only costs: Get = 1, Set = 1, revalidation = Step×|reads| = 1.
	// Limit 2 funds the attempt body exactly and dies in revalidation.
	withPolicy(t, budget.Fixed{Limit: 2, Costs: budget.Costs{Step: 1}})
	before := norecstm.ReadStats()
	err := norecstm.Atomically(func(tx *norecstm.Tx) error {
		_ = v.Get(tx)
		if err := norecstm.Atomically(func(in *norecstm.Tx) error {
			u.Set(in, u.Get(in)+1)
			return nil
		}); err != nil {
			t.Fatalf("nested commit failed: %v", err)
		}
		w.Set(tx, 5)
		return nil
	})
	if !errors.Is(err, norecstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if !norecstm.SeqQuiescent() {
		t.Fatal("sequence lock left held after budget abort in commit")
	}
	if got := w.Load(); got != 0 {
		t.Fatalf("buffered write leaked: w = %d", got)
	}
	d := norecstm.ReadStats().Sub(before)
	// The nested transaction contributes 1 commit; the metered outer one
	// must contribute exactly one budget abort and no commit.
	if d.BudgetAborts != 1 || d.Aborts != 1 || d.Commits != 1 {
		t.Fatalf("stats delta = %+v, want one budget abort and only the nested commit", d)
	}
}

func TestBudgetRetryChargeStopsConflictLoop(t *testing.T) {
	v := norecstm.NewVar(0)
	sink := norecstm.NewVar(0)
	// Only retries cost: each attempt's read of v is invalidated by the
	// nested commit (NOrec revalidates by value), so limit 3 funds attempts
	// 1..4 deterministically and refuses a fifth.
	withPolicy(t, budget.Fixed{Limit: 3, Costs: budget.Costs{Retry: 1}})
	attempts := 0
	err := norecstm.Atomically(func(tx *norecstm.Tx) error {
		attempts++
		cur := v.Get(tx)
		if err := norecstm.Atomically(func(in *norecstm.Tx) error {
			v.Set(in, v.Get(in)+1)
			return nil
		}); err != nil {
			t.Fatalf("nested commit failed: %v", err)
		}
		sink.Set(tx, cur)
		return nil
	})
	if !errors.Is(err, norecstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (limit 3 funds exactly 3 re-runs)", attempts)
	}
	if !norecstm.SeqQuiescent() {
		t.Fatal("sequence lock left held after retry-charge exhaustion")
	}
}

func TestBudgetExhaustionROPath(t *testing.T) {
	v1, v2 := norecstm.NewVar(1), norecstm.NewVar(2)
	withPolicy(t, budget.Fixed{Limit: 3})
	err := norecstm.AtomicallyRO(func(tx *norecstm.Tx) error {
		_ = v1.Get(tx)
		_ = v2.Get(tx)
		return nil
	})
	if !errors.Is(err, norecstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if !norecstm.SeqQuiescent() {
		t.Fatal("sequence lock left held after RO budget abort")
	}
}

func TestAtomicallyCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := norecstm.AtomicallyCtx(ctx, func(tx *norecstm.Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("user function ran under a pre-canceled context")
	}
	err = norecstm.AtomicallyROCtx(ctx, func(tx *norecstm.Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RO err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("RO user function ran under a pre-canceled context")
	}
}

func TestAtomicallyCtxCancelUnblocksRetry(t *testing.T) {
	v := norecstm.NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- norecstm.AtomicallyCtx(ctx, func(tx *norecstm.Tx) error {
			if v.Get(tx) == 0 {
				tx.Retry() // only cancellation can end this wait
			}
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock a parked Retry")
	}
	if !norecstm.SeqQuiescent() {
		t.Fatal("sequence lock left held after ctx cancellation")
	}
}

func TestUserPanicReleasesEverything(t *testing.T) {
	v, w := norecstm.NewVar(0), norecstm.NewVar(0)
	for i := 0; i < 64; i++ {
		func() {
			defer func() {
				if r := recover(); r != "user boom" {
					t.Fatalf("recover() = %v, want the user panic value", r)
				}
			}()
			_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
				_ = v.Get(tx)
				w.Set(tx, 42)
				panic("user boom")
			})
		}()
		if !norecstm.SeqQuiescent() {
			t.Fatalf("iteration %d: sequence lock left held across a user panic", i)
		}
		if got := w.Load(); got != 0 {
			t.Fatalf("iteration %d: buffered write leaked: w = %d", i, got)
		}
	}
	if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
		v.Set(tx, v.Get(tx)+1)
		w.Set(tx, 9)
		return nil
	}); err != nil {
		t.Fatalf("post-panic transaction failed: %v", err)
	}
	if v.Load() != 1 || w.Load() != 9 {
		t.Fatalf("post-panic commit wrong: v=%d w=%d", v.Load(), w.Load())
	}
}
