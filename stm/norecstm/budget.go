package norecstm

import (
	"sync/atomic"

	"repro/stm/budget"
)

// ErrOutOfBudget is returned by Atomically/AtomicallyRO when the
// transaction exhausts the work budget granted by the configured
// BudgetPolicy (see SetBudgetPolicy). It aliases budget.ErrOutOfBudget,
// so errors.Is matches metering aborts from any engine.
var ErrOutOfBudget = budget.ErrOutOfBudget

type policyBox struct{ p budget.Policy }
type admitBox struct{ a budget.Admitter }

var (
	budgetPolicy atomic.Pointer[policyBox]
	admission    atomic.Pointer[admitBox]
)

// SetBudgetPolicy installs the engine-wide metering policy; nil disables
// metering (the default). Grant is sampled once per call (retries spend
// the same grant); the engine charges Costs.Step per operation and per
// entry rescanned by a value-revalidation pass — NOrec's Θ(|read set|)
// conflict cost, which is exactly the resource a hostile long reader
// burns — Costs.Read/Costs.Write per read-/write-set entry, and
// Costs.Retry per aborted attempt. Exhaustion aborts with ErrOutOfBudget.
func SetBudgetPolicy(p budget.Policy) {
	if p == nil {
		budgetPolicy.Store(nil)
		return
	}
	budgetPolicy.Store(&policyBox{p: p})
}

// SetAdmission installs the engine-wide admission gate; nil disables it
// (the default). Admit is called once per update-transaction call, before
// the first attempt; read-only transactions are never gated.
func SetAdmission(a budget.Admitter) {
	if a == nil {
		admission.Store(nil)
		return
	}
	admission.Store(&admitBox{a: a})
}

func admitted() {
	if b := admission.Load(); b != nil {
		b.a.Admit()
	}
}

// budgetSignal aborts the current attempt when a hard charge exhausts the
// budget. It can surface inside commit (validate runs in the sequence-CAS
// loop), where commit's recover translates it into a failed commit — the
// engine holds no lock there, since validate only runs after a failed CAS.
type budgetSignal struct{}

// beginBudget samples the configured policy into the descriptor, once per
// call.
func (tx *Tx) beginBudget() {
	if b := budgetPolicy.Load(); b != nil {
		tx.metered = true
		tx.budgetLeft, tx.costs = b.p.Grant()
	} else {
		tx.metered = false
	}
	tx.budgetExceeded = false
}

// charge debits n work units, aborting the attempt via budgetSignal when
// the grant is exhausted.
func (tx *Tx) charge(n uint64) {
	if !tx.metered || n == 0 {
		return
	}
	if tx.budgetLeft < n {
		tx.budgetExceeded = true
		panic(budgetSignal{})
	}
	tx.budgetLeft -= n
}

// chargeSoft debits n work units, reporting exhaustion instead of
// panicking (the retry charge runs outside runAttempt's recover).
func (tx *Tx) chargeSoft(n uint64) bool {
	if !tx.metered || n == 0 {
		return true
	}
	if tx.budgetLeft < n {
		tx.budgetExceeded = true
		return false
	}
	tx.budgetLeft -= n
	return true
}

// budgetAbort finalizes a metering abort (the failed attempt is already
// counted in aborts by the caller).
func (tx *Tx) budgetAbort() error {
	tx.stat().budgetAborts.Add(1)
	// Taxonomy: the Budget class mirrors BudgetAborts exactly (see
	// Stats.AbortReasons), so the refusal is counted here — once per
	// exhausted call — not at the individual charge sites.
	tx.stat().reasons[abortBudget].Add(1)
	tx.release()
	return ErrOutOfBudget
}
