package norecstm

// Test-only exports for the budget and panic-safety tests.

// SeqQuiescent reports whether the global sequence lock is released (even
// value): every abort path must leave it so, or the engine deadlocks.
func SeqQuiescent() bool { return seq.Load()&1 == 0 }

// BudgetLeft reports the descriptor's remaining work-budget grant.
func BudgetLeft(tx *Tx) uint64 { return tx.budgetLeft }
