package norecstm

// Test-only exports for the budget, panic-safety, tracing and
// scheduling-harness tests.

import (
	"repro/internal/syncpoint"
	"repro/internal/tm"
)

// StartTrace enables history tracing (see trace.go). Call with no
// transactions in flight, before spawning workload goroutines.
func StartTrace() { startTrace() }

// StopTrace disables tracing and returns the recorded history. Call
// after joining every workload goroutine.
func StopTrace() *tm.History { return stopTrace() }

// SetSyncHook installs the scheduling-harness hook (see syncpoint.go):
// every transaction begun while it is set calls h at each engine sync
// point, and proc supplies the harness worker id traced as the history
// Proc. Install and remove (h = nil) only with no transactions in
// flight, and run no transactions outside the harness while it is set.
func SetSyncHook(h func(syncpoint.Point), proc func() int) { setSyncHook(h, proc) }

// SeqQuiescent reports whether the global sequence lock is released (even
// value): every abort path must leave it so, or the engine deadlocks.
func SeqQuiescent() bool { return seq.Load()&1 == 0 }

// BudgetLeft reports the descriptor's remaining work-budget grant.
func BudgetLeft(tx *Tx) uint64 { return tx.budgetLeft }
