package norecstm_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/stm/norecstm"
)

// TestROBasic: AtomicallyRO sees committed state and counts an RO commit.
func TestROBasic(t *testing.T) {
	a := norecstm.NewVar(3)
	b := norecstm.NewVar(4)
	before := norecstm.ReadStats()
	sum := 0
	if err := norecstm.AtomicallyRO(func(tx *norecstm.Tx) error {
		sum = a.Get(tx) + b.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Fatalf("sum = %d, want 7", sum)
	}
	d := norecstm.ReadStats().Sub(before)
	if d.ROCommits != 1 || d.Commits != 1 {
		t.Fatalf("stats delta = %+v, want 1 commit on the RO path", d)
	}
}

// TestROUserError: a non-nil error from fn aborts without retrying.
func TestROUserError(t *testing.T) {
	v := norecstm.NewVar(1)
	sentinel := errors.New("nope")
	if err := norecstm.AtomicallyRO(func(tx *norecstm.Tx) error {
		_ = v.Get(tx)
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

// TestROWritePanics: Set inside AtomicallyRO is a usage error.
func TestROWritePanics(t *testing.T) {
	v := norecstm.NewVar(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Set inside AtomicallyRO did not panic")
		}
	}()
	_ = norecstm.AtomicallyRO(func(tx *norecstm.Tx) error {
		v.Set(tx, 2)
		return nil
	})
}

// TestRORetryPanics: Retry inside AtomicallyRO is a usage error (no read
// set to wait on).
func TestRORetryPanics(t *testing.T) {
	v := norecstm.NewVar(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Retry inside AtomicallyRO did not panic")
		}
	}()
	_ = norecstm.AtomicallyRO(func(tx *norecstm.Tx) error {
		_ = v.Get(tx)
		tx.Retry()
		return nil
	})
}

// TestROSnapshotUnderWriters: concurrent RO transactions must observe
// write-atomic snapshots (the conserved-sum invariant) while writers move
// value between two Vars — and must pay zero revalidation scans doing so.
func TestROSnapshotUnderWriters(t *testing.T) {
	const total = 1000
	a := norecstm.NewVar(total)
	b := norecstm.NewVar(0)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
				x := a.Get(tx)
				a.Set(tx, x-1)
				b.Set(tx, b.Get(tx)+1)
				return nil
			})
			if i%100 == 99 {
				_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
					a.Set(tx, total)
					b.Set(tx, 0)
					return nil
				})
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				var sum int
				if err := norecstm.AtomicallyRO(func(tx *norecstm.Tx) error {
					sum = a.Get(tx) + b.Get(tx)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if sum != total {
					t.Errorf("RO snapshot sum = %d, want %d", sum, total)
					return
				}
			}
			stop.Store(true)
		}()
	}
	wg.Wait()
}
