package norecstm_test

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/stm/norecstm"
)

func TestBasicReadWrite(t *testing.T) {
	v := norecstm.NewVar(10)
	err := norecstm.Atomically(func(tx *norecstm.Tx) error {
		if got := v.Get(tx); got != 10 {
			t.Errorf("Get = %d, want 10", got)
		}
		v.Set(tx, 20)
		if got := v.Get(tx); got != 20 {
			t.Errorf("read-own-write = %d, want 20", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 20 {
		t.Fatalf("Load = %d, want 20", got)
	}
}

func TestUserErrorAborts(t *testing.T) {
	v := norecstm.NewVar(1)
	sentinel := errors.New("nope")
	err := norecstm.Atomically(func(tx *norecstm.Tx) error {
		v.Set(tx, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if v.Load() != 1 {
		t.Fatal("aborted write visible")
	}
}

// TestConcurrentCounter: the lost-update test that caught the TL2 engine's
// validation bug; NOrec must pass it too.
func TestConcurrentCounter(t *testing.T) {
	ctr := norecstm.NewVar(0)
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
					ctr.Set(tx, ctr.Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := ctr.Load(); got != workers*rounds {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*rounds)
	}
}

// TestBankInvariant: transfers conserve the total under concurrent audits.
func TestBankInvariant(t *testing.T) {
	const accounts, initial = 6, 500
	bank := make([]*norecstm.Var[int], accounts)
	for i := range bank {
		bank[i] = norecstm.NewVar(initial)
	}
	var auditors, transfers sync.WaitGroup
	stop := make(chan struct{})
	for a := 0; a < 2; a++ {
		auditors.Add(1)
		go func() {
			defer auditors.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum := 0
				if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
					sum = 0
					for _, v := range bank {
						sum += v.Get(tx)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if sum != accounts*initial {
					t.Errorf("torn audit: %d", sum)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		w := w
		transfers.Add(1)
		go func() {
			defer transfers.Done()
			rng := uint64(w)*2654435761 + 1
			next := func() int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int(rng>>33) % accounts
			}
			for i := 0; i < 300; i++ {
				from, to := next(), next()
				if from == to {
					continue
				}
				if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
					bank[from].Set(tx, bank[from].Get(tx)-1)
					bank[to].Set(tx, bank[to].Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	transfers.Wait()
	close(stop)
	auditors.Wait()
	total := 0
	for _, v := range bank {
		total += v.Load()
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d", total, accounts*initial)
	}
}

// TestRetryBlocksUntilChange exercises the Retry combinator.
func TestRetryBlocksUntilChange(t *testing.T) {
	ready := norecstm.NewVar(false)
	payload := norecstm.NewVar(0)
	got := make(chan int, 1)
	go func() {
		var v int
		_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
			if !ready.Get(tx) {
				tx.Retry()
			}
			v = payload.Get(tx)
			return nil
		})
		got <- v
	}()
	_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
		payload.Set(tx, 42)
		ready.Set(tx, true)
		return nil
	})
	if v := <-got; v != 42 {
		t.Fatalf("consumer got %d, want 42", v)
	}
}

// TestValueValidationToleratesSnapshotEquality: NOrec validates by
// snapshot identity, so a transaction survives commits that do not touch
// anything it read.
func TestValueValidationToleratesSnapshotEquality(t *testing.T) {
	a := norecstm.NewVar(1)
	b := norecstm.NewVar(2)
	done := make(chan struct{})
	started := make(chan struct{})
	doneWriting := make(chan struct{})
	var startOnce sync.Once
	go func() {
		defer close(done)
		_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
			v := a.Get(tx)
			startOnce.Do(func() { close(started) })
			// A disjoint writer commits here (b), bumping the sequence;
			// our next read must revalidate against a's unchanged snapshot
			// and pass.
			<-doneWriting
			_ = b.Get(tx)
			_ = v
			return nil
		})
	}()
	<-started
	_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
		b.Set(tx, 9)
		return nil
	})
	close(doneWriting)
	<-done
}

// TestAtomicSwapProperty mirrors the TL2 engine's property test.
func TestAtomicSwapProperty(t *testing.T) {
	prop := func(a, b int32, swaps uint8) bool {
		x, y := norecstm.NewVar(int64(a)), norecstm.NewVar(int64(b))
		for i := 0; i < int(swaps%16); i++ {
			if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
				vx, vy := x.Get(tx), y.Get(tx)
				x.Set(tx, vy)
				y.Set(tx, vx)
				return nil
			}); err != nil {
				return false
			}
		}
		gx, gy := x.Load(), y.Load()
		if swaps%16%2 == 0 {
			return gx == int64(a) && gy == int64(b)
		}
		return gx == int64(b) && gy == int64(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
