package norecstm

import "sync/atomic"

// Stats is a snapshot of the engine-wide transaction counters, mirroring
// repro/stm's Stats so the E8 harness can report both engines uniformly.
// Counters live on padded per-descriptor stripes so keeping them adds no
// shared contended word next to the sequence lock they help measure.
type Stats struct {
	// Commits counts committed transactions; Aborts counts failed
	// attempts, so the abort ratio is Aborts / (Commits + Aborts).
	Commits uint64
	Aborts  uint64
	// BudgetAborts counts transactions aborted with ErrOutOfBudget by the
	// configured BudgetPolicy — a subset of Aborts (each exhausted call
	// contributes exactly one).
	BudgetAborts uint64
	// ROCommits counts the subset of Commits that committed on the
	// read-only fast path (AtomicallyRO): no read log, no revalidation.
	ROCommits uint64
	// Revalidations counts completed read-set value-revalidation scans —
	// NOrec's extension analogue, triggered whenever the global sequence
	// moves under a live transaction. Each scan is Θ(|read set|).
	Revalidations uint64
	// AbortReasons classifies every abort at its site, mirroring
	// repro/stm's taxonomy shape-wise. NOrec can only produce a subset of
	// the classes: ReadCertify (a moved sequence killed an execution-time
	// revalidation, or the RO fast path hit a moved sequence past its
	// first certified read), CommitValidation (the commit-time
	// revalidation inside the sequence-CAS loop found an overwritten
	// read), Budget and ExplicitRetry. LockBusy and Extension stay zero:
	// a reader that meets the odd (locked) sequence spins rather than
	// aborting, and NOrec's extension analogue is the revalidation scan
	// itself, already split by call site into the two classes above.
	AbortReasons AbortReasons
}

// AbortReasons is the per-class abort breakdown, field-compatible with
// repro/stm's so the serving tier reports all engines uniformly. The
// conflict classes partition Stats.Aborts minus budget refusals; Budget
// equals Stats.BudgetAborts; ExplicitRetry counts user Retry signals
// (parked waits, which are not in Stats.Aborts).
type AbortReasons struct {
	ReadCertify      uint64
	CommitValidation uint64
	LockBusy         uint64
	Extension        uint64
	Budget           uint64
	ExplicitRetry    uint64
}

// Total sums every class.
func (r AbortReasons) Total() uint64 {
	return r.ReadCertify + r.CommitValidation + r.LockBusy + r.Extension + r.Budget + r.ExplicitRetry
}

// Sub returns the per-class deltas r - t.
func (r AbortReasons) Sub(t AbortReasons) AbortReasons {
	return AbortReasons{
		ReadCertify:      r.ReadCertify - t.ReadCertify,
		CommitValidation: r.CommitValidation - t.CommitValidation,
		LockBusy:         r.LockBusy - t.LockBusy,
		Extension:        r.Extension - t.Extension,
		Budget:           r.Budget - t.Budget,
		ExplicitRetry:    r.ExplicitRetry - t.ExplicitRetry,
	}
}

// Map returns the breakdown keyed by the stable snake_case names the
// serving tier and tmstat expose.
func (r AbortReasons) Map() map[string]uint64 {
	return map[string]uint64{
		"read_certify":      r.ReadCertify,
		"commit_validation": r.CommitValidation,
		"lock_busy":         r.LockBusy,
		"extension":         r.Extension,
		"budget":            r.Budget,
		"explicit_retry":    r.ExplicitRetry,
	}
}

// AbortRatio returns Aborts / (Commits + Aborts), or 0 for an empty
// snapshot.
func (s Stats) AbortRatio() float64 {
	if s.Commits+s.Aborts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits+s.Aborts)
}

// Sub returns the counter deltas s - t; use snapshots around a workload to
// measure just that workload.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Commits:       s.Commits - t.Commits,
		Aborts:        s.Aborts - t.Aborts,
		BudgetAborts:  s.BudgetAborts - t.BudgetAborts,
		ROCommits:     s.ROCommits - t.ROCommits,
		Revalidations: s.Revalidations - t.Revalidations,
		AbortReasons:  s.AbortReasons.Sub(t.AbortReasons),
	}
}

const statStripes = 16

// Abort-reason indices into a statShard's reasons array; the order
// matches the AbortReasons fields.
const (
	abortReadCertify = iota
	abortCommitValidation
	abortLockBusy
	abortExtension
	abortBudget
	abortExplicitRetry
	nAbortReasons
)

// statShard is one stripe of counters, padded so stripes do not
// false-share: 5 named counters plus 6 reason counters is 11 words,
// padded out to the 128-byte two-line target.
type statShard struct {
	commits       atomic.Uint64
	aborts        atomic.Uint64
	budgetAborts  atomic.Uint64
	roCommits     atomic.Uint64
	revalidations atomic.Uint64
	reasons       [nAbortReasons]atomic.Uint64
	_             [128 - 11*8]byte
}

var statShards [statStripes]statShard

// statSeq hands out stripe indices to new descriptors.
var statSeq atomic.Uint64

func (tx *Tx) stat() *statShard { return &statShards[tx.shard&(statStripes-1)] }

// ReadStats sums the stripes into one snapshot; safe to call concurrently
// with transactions (per-counter atomic, not a cross-counter cut).
func ReadStats() Stats {
	var s Stats
	for i := range statShards {
		sh := &statShards[i]
		s.Commits += sh.commits.Load()
		s.Aborts += sh.aborts.Load()
		s.BudgetAborts += sh.budgetAborts.Load()
		s.ROCommits += sh.roCommits.Load()
		s.Revalidations += sh.revalidations.Load()
		s.AbortReasons.ReadCertify += sh.reasons[abortReadCertify].Load()
		s.AbortReasons.CommitValidation += sh.reasons[abortCommitValidation].Load()
		s.AbortReasons.LockBusy += sh.reasons[abortLockBusy].Load()
		s.AbortReasons.Extension += sh.reasons[abortExtension].Load()
		s.AbortReasons.Budget += sh.reasons[abortBudget].Load()
		s.AbortReasons.ExplicitRetry += sh.reasons[abortExplicitRetry].Load()
	}
	return s
}
