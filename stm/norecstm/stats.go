package norecstm

import "sync/atomic"

// Stats is a snapshot of the engine-wide transaction counters, mirroring
// repro/stm's Stats so the E8 harness can report both engines uniformly.
// Counters live on padded per-descriptor stripes so keeping them adds no
// shared contended word next to the sequence lock they help measure.
type Stats struct {
	// Commits counts committed transactions; Aborts counts failed
	// attempts, so the abort ratio is Aborts / (Commits + Aborts).
	Commits uint64
	Aborts  uint64
	// BudgetAborts counts transactions aborted with ErrOutOfBudget by the
	// configured BudgetPolicy — a subset of Aborts (each exhausted call
	// contributes exactly one).
	BudgetAborts uint64
	// ROCommits counts the subset of Commits that committed on the
	// read-only fast path (AtomicallyRO): no read log, no revalidation.
	ROCommits uint64
	// Revalidations counts completed read-set value-revalidation scans —
	// NOrec's extension analogue, triggered whenever the global sequence
	// moves under a live transaction. Each scan is Θ(|read set|).
	Revalidations uint64
}

// AbortRatio returns Aborts / (Commits + Aborts), or 0 for an empty
// snapshot.
func (s Stats) AbortRatio() float64 {
	if s.Commits+s.Aborts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits+s.Aborts)
}

// Sub returns the counter deltas s - t; use snapshots around a workload to
// measure just that workload.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Commits:       s.Commits - t.Commits,
		Aborts:        s.Aborts - t.Aborts,
		BudgetAborts:  s.BudgetAborts - t.BudgetAborts,
		ROCommits:     s.ROCommits - t.ROCommits,
		Revalidations: s.Revalidations - t.Revalidations,
	}
}

const statStripes = 16

type statShard struct {
	commits       atomic.Uint64
	aborts        atomic.Uint64
	budgetAborts  atomic.Uint64
	roCommits     atomic.Uint64
	revalidations atomic.Uint64
	_             [128 - 5*8]byte
}

var statShards [statStripes]statShard

// statSeq hands out stripe indices to new descriptors.
var statSeq atomic.Uint64

func (tx *Tx) stat() *statShard { return &statShards[tx.shard&(statStripes-1)] }

// ReadStats sums the stripes into one snapshot; safe to call concurrently
// with transactions (per-counter atomic, not a cross-counter cut).
func ReadStats() Stats {
	var s Stats
	for i := range statShards {
		sh := &statShards[i]
		s.Commits += sh.commits.Load()
		s.Aborts += sh.aborts.Load()
		s.BudgetAborts += sh.budgetAborts.Load()
		s.ROCommits += sh.roCommits.Load()
		s.Revalidations += sh.revalidations.Load()
	}
	return s
}
