package stm_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/stm"
)

// TestExtensionConvertsStaleClockAbort pins the tentpole's central
// conversion: a transaction whose read version is merely stale — a
// concurrent commit bumped the clock and wrote a variable the transaction
// has NOT yet read — extends its timestamp and commits on the first
// attempt, where plain TL2 would abort and re-run.
func TestExtensionConvertsStaleClockAbort(t *testing.T) {
	x := stm.NewVar(10)
	y := stm.NewVar(20)
	before := stm.ReadStats()
	attempts := 0
	var once sync.Once
	if err := stm.Atomically(func(tx *stm.Tx) error {
		attempts++
		gotX := x.Get(tx)
		once.Do(func() {
			// A disjoint committer writes y mid-transaction: the clock
			// moves and y's version outruns our read version.
			if err := stm.Atomically(func(tx2 *stm.Tx) error {
				y.Set(tx2, 21)
				return nil
			}); err != nil {
				t.Error(err)
			}
		})
		gotY := y.Get(tx)
		if gotX != 10 || gotY != 21 {
			t.Errorf("read x=%d y=%d; want 10 and the committed 21", gotX, gotY)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Errorf("took %d attempts; extension should commit on the first", attempts)
	}
	if d := stm.ReadStats().Sub(before); d.Extensions == 0 {
		t.Error("no extension recorded; the stale read did not take the extension path")
	}
}

// TestExtensionRefusesMixedSnapshot is the opacity half of the contract:
// when the concurrent commit also overwrites a variable the transaction
// HAS read, the extension's revalidation must fail and the attempt must
// abort — the transaction never observes the old x with the new y.
func TestExtensionRefusesMixedSnapshot(t *testing.T) {
	const total = 100
	x := stm.NewVar(60)
	y := stm.NewVar(40)
	attempts := 0
	var once sync.Once
	if err := stm.Atomically(func(tx *stm.Tx) error {
		attempts++
		gotX := x.Get(tx)
		once.Do(func() {
			// Transfer 5 from x to y: overwrites the x we just read.
			if err := stm.Atomically(func(tx2 *stm.Tx) error {
				v := x.Get(tx2)
				x.Set(tx2, v-5)
				y.Set(tx2, y.Get(tx2)+5)
				return nil
			}); err != nil {
				t.Error(err)
			}
		})
		gotY := y.Get(tx)
		if gotX+gotY != total {
			t.Errorf("mixed snapshot observed: x=%d y=%d (sum %d, want %d)", gotX, gotY, gotX+gotY, total)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("took %d attempts; want exactly 2 (first aborts on the invalidated read, second sees the new state)", attempts)
	}
}

// TestExtensionKnob verifies SetTimestampExtension: with extension off the
// same stale-clock history aborts and re-runs (plain TL2 behaviour).
func TestExtensionKnob(t *testing.T) {
	stm.SetTimestampExtension(false)
	t.Cleanup(func() { stm.SetTimestampExtension(true) })
	x := stm.NewVar(1)
	y := stm.NewVar(2)
	attempts := 0
	var once sync.Once
	if err := stm.Atomically(func(tx *stm.Tx) error {
		attempts++
		_ = x.Get(tx)
		once.Do(func() {
			if err := stm.Atomically(func(tx2 *stm.Tx) error {
				y.Set(tx2, 3)
				return nil
			}); err != nil {
				t.Error(err)
			}
		})
		_ = y.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("took %d attempts with extension disabled; want 2 (stale-clock abort, then retry)", attempts)
	}
}

// TestOpacityUnderClockStrategies runs the conservation stress under every
// clock strategy, with a dedicated clock-churn goroutine committing
// disjoint writes so readers constantly face versions newer than their
// read timestamps (the regime where extension must either revalidate
// consistently or abort — run under -race). The auditors' invariant check
// would catch any mixed snapshot.
func TestOpacityUnderClockStrategies(t *testing.T) {
	for _, strat := range []stm.ClockStrategy{stm.GV1, stm.GV4, stm.GV6} {
		t.Run(fmt.Sprintf("strategy=%s", strat), func(t *testing.T) {
			stm.SetClockStrategy(strat)
			t.Cleanup(func() { stm.SetClockStrategy(stm.GV4) })
			const (
				accounts = 16
				initial  = 100
				workers  = 4
				rounds   = 200
			)
			vars := make([]*stm.Var[int], accounts)
			for i := range vars {
				vars[i] = stm.NewVar(initial)
			}
			churn := make([]*stm.Var[int], 8)
			for i := range churn {
				churn[i] = stm.NewVar(0)
			}
			stop := make(chan struct{})
			var churner sync.WaitGroup
			churner.Add(1)
			go func() {
				defer churner.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_ = stm.Atomically(func(tx *stm.Tx) error {
						v := churn[i%len(churn)]
						v.Set(tx, v.Get(tx)+1)
						return nil
					})
				}
			}()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := uint64(w)*2654435761 + 11
					next := func() int {
						rng = rng*6364136223846793005 + 1442695040888963407
						return int(rng>>33) % accounts
					}
					for i := 0; i < rounds; i++ {
						if i%5 == 0 {
							// Auditor: full-sweep read-only transaction.
							var sum int
							if err := stm.Atomically(func(tx *stm.Tx) error {
								sum = 0
								for _, v := range vars {
									sum += v.Get(tx)
								}
								return nil
							}); err != nil {
								t.Error(err)
								return
							}
							if sum != accounts*initial {
								t.Errorf("conservation violated under %s: sum=%d", strat, sum)
								return
							}
							continue
						}
						from, to := next(), next()
						if from == to {
							continue
						}
						if err := stm.Atomically(func(tx *stm.Tx) error {
							f := vars[from].Get(tx)
							vars[from].Set(tx, f-1)
							vars[to].Set(tx, vars[to].Get(tx)+1)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			churner.Wait()
			total := 0
			for _, v := range vars {
				total += v.Load()
			}
			if total != accounts*initial {
				t.Fatalf("final total under %s = %d, want %d", strat, total, accounts*initial)
			}
		})
	}
}
