package stm

// TicToc mode: the per-access-timestamp commit pipeline selected by
// SetClockStrategy(TicToc). There is no global clock; the 63-bit lock-word
// payload of every Var is reinterpreted as a (wts, rts) pair:
//
//	bit 63      lock flag (unchanged; tryLock/unlock pass the payload through)
//	bits 32..62 wts — write timestamp of the current version (31 bits)
//	bits 0..31  rts — highest timestamp any reader certified it at (32 bits)
//
// A version is valid over the closed interval [wts, rts]: it was installed
// at wts, and rts advances (by CAS, under no lock) as readers certify it at
// later timestamps. The rules mirror Yu et al.'s TicToc, adapted to this
// engine's certify-by-reload reads:
//
//   - A transaction maintains the running intersection [tx.rv, tx.ttHi] of
//     its reads' validity intervals; every value the user function has seen
//     is simultaneously valid at every point of that interval, so the
//     execution is always a consistent snapshot (opacity during execution,
//     not only at commit).
//   - A read whose version lies outside the intersection repairs it: a
//     too-low rts is CASed forward (ttAdvanceVar), and a too-high wts
//     raises the floor, which sweeps the logged read set advancing every
//     prior entry's rts (ttAdvancePriors) — O(|read set|) per floor raise,
//     the step cost TicToc pays for touching no shared clock word.
//   - Commit locks the write set in Var-id order, picks the serialization
//     point cts = max(floor, max over writes(rts+1)) — the smallest
//     timestamp above every certified read of the overwritten versions —
//     re-validates each logged read at cts (wts unchanged; rts ≥ cts,
//     advancing it if needed), and publishes each write as wts = rts = cts.
//
// Timestamp space is 31 bits (wts's field): after 2^31-1 commits the engine
// panics rather than wrap. That bounds a benchmarking/serving process at two
// billion update commits per run — documented in DESIGN.md.
//
// Real-time order is preserved where opacity needs it: if T1 committed
// before T2 began, T2's reads of anything T1 wrote see wts ≥ T1's cts (per-
// Var timestamps are monotone), and any conflict therefore orders T1 before
// T2; disjoint transactions commute. The tictoc opacity test drives
// adversarial interleavings through the trace hook and internal/check.

import (
	"repro/internal/syncpoint"
	"repro/internal/tm/lockword"
)

// ttRtsBits is the width of the rts field in the lock-word payload.
const ttRtsBits = 32

// ttRtsMask extracts rts from a payload.
const ttRtsMask = (uint64(1) << ttRtsBits) - 1

// ttMaxTs is the largest usable timestamp: wts has 63-32 = 31 bits.
const ttMaxTs = (uint64(1) << 31) - 1

// ttInitHi is the initial upper bound of a transaction's interval; rts
// values never exceed ttMaxTs (cts is range-checked), so this is +∞.
const ttInitHi = ttRtsMask

func ttWts(payload uint64) uint64 { return payload >> ttRtsBits }
func ttRts(payload uint64) uint64 { return payload & ttRtsMask }

// ttPack builds a payload; callers guarantee wts ≤ ttMaxTs and rts fits.
func ttPack(wts, rts uint64) uint64 { return wts<<ttRtsBits | rts }

// ttBegin resets the descriptor's interval for a new attempt. ttFloor
// carries the floor learned from a previous attempt's abort (see ttReadRO):
// starting there converts the abort class "prior unlogged read's rts below
// a new read's wts" into rts advances on the retry.
func (tx *Tx) ttBegin() {
	tx.rv = tx.ttFloor
	tx.ttHi = ttInitHi
}

// ttAdvanceVar CASes v's rts forward to target so the version's validity
// interval covers it. Safe without reading v's value: rts only asserts
// "this version is current through target", and any overwrite serializes
// after the advance (the writer's cts is computed from the locked payload,
// so it exceeds every previously published rts). Fails if v is locked or
// its wts changes mid-advance; the caller re-certifies.
func (tx *Tx) ttAdvanceVar(v varBase, target uint64) bool {
	for attempt := 0; attempt <= maxExtendAttempts; attempt++ {
		w := v.lockWord()
		if lockword.Locked(w) {
			return false
		}
		pl := lockword.Version(w)
		if ttRts(pl) >= target {
			return true
		}
		if v.casWord(w, ttPack(ttWts(pl), target)) {
			tx.stat().rtsAdvances.Add(1)
			return true
		}
	}
	return false
}

// ttAdvancePriors raises the transaction's interval to a new floor by
// advancing every logged read entry's rts to at least floor — the TicToc
// counterpart of timestamp extension, and the same O(|read set|) sweep,
// charged identically. An entry whose wts changed was genuinely
// overwritten: the sweep fails and the attempt aborts. On success the
// interval becomes [floor, min rts over entries] and every previously
// returned value is valid there.
func (tx *Tx) ttAdvancePriors(floor uint64) bool {
	tx.charge(tx.costs.Step * uint64(len(tx.reads)))
	hi := ttInitHi
	for i := range tx.reads {
		r := &tx.reads[i]
		wts := ttWts(r.ver)
		if !tx.ttAdvanceVar(r.v, floor) {
			tx.stat().extensionFailures.Add(1)
			return false
		}
		// Re-certify the entry: advance succeeded, but only the current
		// version's rts moved — it must still be the version we read.
		w := r.v.lockWord()
		pl := lockword.Version(w)
		if lockword.Locked(w) || ttWts(pl) != wts {
			tx.stat().extensionFailures.Add(1)
			return false
		}
		r.ver = pl
		if ttRts(pl) < hi {
			hi = ttRts(pl)
		}
	}
	tx.rv, tx.ttHi = floor, hi
	tx.stat().extensions.Add(1)
	return true
}

// ttRead is the TicToc read on the full pipeline: certify (word, value,
// re-load word), then fold the version's [wts, rts] interval into the
// transaction's running intersection, repairing rts (the Var's or the
// priors') when the intersection would go empty.
func (tx *Tx) ttRead(v varBase) any {
	if tx.metered {
		tx.charge(tx.costs.Step)
	}
	if i, ok := tx.findWrite(v); ok {
		if tx.trec != nil {
			tx.traceRead(v, tx.writes[i].val)
		}
		return tx.writes[i].val
	}
	for attempt := 0; ; attempt++ {
		w := v.lockWord()
		if lockword.Locked(w) {
			tx.abortConflict(abortLockBusy, v) // mid-commit elsewhere
		}
		pl := lockword.Version(w)
		b := v.loadBox()
		if v.lockWord() != w {
			if attempt >= maxExtendAttempts {
				tx.abortConflict(abortReadCertify, v)
			}
			continue
		}
		wts, rts := ttWts(pl), ttRts(pl)
		lo, hi := tx.rv, tx.ttHi
		if wts > lo {
			lo = wts
		}
		if rts < hi {
			hi = rts
		}
		if lo <= hi {
			if tx.trec != nil {
				tx.traceRead(v, b.val)
			}
			tx.syncAt(syncpoint.PostReadCertify)
			for i, n := len(tx.reads)-1, len(tx.reads)-readDedupWindow; i >= 0 && i >= n; i-- {
				if tx.reads[i].v == v {
					tx.rv, tx.ttHi = lo, hi
					return b.val
				}
			}
			if tx.metered {
				tx.charge(tx.costs.Read)
			}
			tx.reads = append(tx.reads, readEntry{v: v, ver: pl})
			tx.rv, tx.ttHi = lo, hi
			return b.val
		}
		if attempt >= maxExtendAttempts {
			tx.abortConflict(abortReadCertify, v)
		}
		// Empty intersection. Exactly one of the two repairs applies (rts ≥
		// wts and ttHi ≥ tx.rv rule out both at once).
		if wts > tx.ttHi {
			// This version was installed past our interval: raise the floor,
			// sweeping the prior entries' rts forward.
			if !tx.ttAdvancePriors(wts) {
				tx.abortConflict(abortExtension, v)
			}
		} else if !tx.ttAdvanceVar(v, tx.rv) {
			tx.abortConflict(abortReadCertify, v)
		}
	}
}

// ttReadRO is the TicToc read on the read-only fast path: the same
// interval intersection, but with no read log there is nothing to sweep
// when the floor rises — the attempt aborts and retries from the offending
// floor (tx.ttFloor), converting the conflict into plain rts advances on
// the retry. With zero certified reads the interval is simply re-seeded:
// a re-begin, exactly like the RO path's extension rule under the
// versioned strategies.
func (tx *Tx) ttReadRO(v varBase) any {
	if tx.metered {
		tx.charge(tx.costs.Step + tx.costs.Read)
	}
	for attempt := 0; ; attempt++ {
		w := v.lockWord()
		if lockword.Locked(w) {
			tx.abortConflict(abortLockBusy, v)
		}
		pl := lockword.Version(w)
		b := v.loadBox()
		if v.lockWord() != w {
			if attempt >= maxExtendAttempts {
				tx.abortConflict(abortReadCertify, v)
			}
			continue
		}
		wts, rts := ttWts(pl), ttRts(pl)
		lo, hi := tx.rv, tx.ttHi
		if wts > lo {
			lo = wts
		}
		if rts < hi {
			hi = rts
		}
		if lo <= hi {
			tx.rv, tx.ttHi = lo, hi
			tx.roReads++
			if tx.trec != nil {
				tx.traceRead(v, b.val)
			}
			tx.syncAt(syncpoint.PostReadCertify)
			return b.val
		}
		if attempt >= maxExtendAttempts {
			tx.abortConflict(abortReadCertify, v)
		}
		if wts > tx.ttHi {
			if tx.roReads > 0 {
				// Seed the retry's floor at the version that outran us, so the
				// replay advances stale rts values instead of re-aborting.
				tx.ttFloor = wts
				tx.abortConflict(abortReadCertify, v)
			}
			// No certified reads yet: adopting the version's own interval is
			// a re-begin, exactly like readRO's first-read extension.
			tx.rv, tx.ttHi = wts, rts
			tx.roReads++
			tx.stat().extensions.Add(1)
			if tx.trec != nil {
				tx.traceRead(v, b.val)
			}
			tx.syncAt(syncpoint.PostReadCertify)
			return b.val
		}
		if !tx.ttAdvanceVar(v, tx.rv) {
			tx.abortConflict(abortReadCertify, v)
		}
	}
}

// ttCommit is the TicToc commit: lock the write set in Var-id order, pick
// the serialization point by interval intersection, validate the read set
// at it, publish. It never touches a shared clock word — ClockIncrements
// stays 0 under TicToc no matter the mix.
func (tx *Tx) ttCommit() bool {
	if len(tx.writes) == 0 {
		// Read-only: the running intersection [rv, ttHi] is non-empty, so
		// every read is valid at rv — already a consistent serialization
		// point, with nothing to publish and nothing to advance.
		return true
	}
	if !tx.chargeSoft(tx.costs.Step * uint64(len(tx.reads))) {
		return false
	}
	tx.sortWrites()
	tx.syncAt(syncpoint.PreLock)
	locked := 0
	for i := range tx.writes {
		prev, ok := tx.writes[i].v.tryLock()
		if !ok {
			break
		}
		tx.writes[i].prev = prev
		locked++
	}
	releaseLocked := func(n int) {
		for i := 0; i < n; i++ {
			tx.writes[i].v.unlock(tx.writes[i].prev)
		}
	}
	if locked != len(tx.writes) {
		releaseLocked(locked)
		tx.noteAbort(abortLockBusy, tx.writes[locked].v)
		return false
	}
	tx.syncAt(syncpoint.PostLock)
	// Serialization point: above the floor of our own reads, and above
	// every certified read of the versions we overwrite (their rts, read
	// from the locked payloads, can no longer advance). Under TicToc the
	// cts selection is the clock stamp.
	tx.syncAt(syncpoint.PreClockStamp)
	cts := tx.rv
	for i := range tx.writes {
		if r := ttRts(tx.writes[i].prev) + 1; r > cts {
			cts = r
		}
	}
	if cts > ttMaxTs {
		releaseLocked(locked)
		panic("stm: TicToc timestamp space exhausted (2^31-1 commits); restart the process or use a versioned clock strategy")
	}
	// Validate each logged read at cts: its version must still be current
	// (wts unchanged) and valid through cts (rts ≥ cts, advancing if not).
	for i := range tx.reads {
		r := &tx.reads[i]
		if j, own := tx.searchWrite(r.v); own {
			// Read-write Var: our lock freezes it, so the recorded version is
			// current iff its wts matches the locked payload. Its old version
			// stays current until our write at cts > its rts, so the read
			// serializes at cts⁻ with no rts advance needed.
			if ttWts(tx.writes[j].prev) != ttWts(r.ver) {
				releaseLocked(locked)
				tx.noteAbort(abortCommitValidation, r.v)
				return false
			}
			continue
		}
		w := r.v.lockWord()
		pl := lockword.Version(w)
		if lockword.Locked(w) || ttWts(pl) != ttWts(r.ver) {
			releaseLocked(locked)
			tx.noteAbort(abortCommitValidation, r.v)
			return false
		}
		if ttRts(pl) < cts && !tx.ttAdvanceVar(r.v, cts) {
			releaseLocked(locked)
			tx.noteAbort(abortCommitValidation, r.v)
			return false
		}
	}
	tx.syncAt(syncpoint.PrePublish)
	newPl := ttPack(cts, cts)
	for i := range tx.writes {
		e := &tx.writes[i]
		e.v.storeBox(&box{val: e.val})
		e.v.unlock(newPl)
	}
	return true
}
