package stm_test

// Budget-exhaustion coverage for the TL2 engine: every charge point —
// mid-read, at the commit charge (no locks may leak), on the retry
// charge — aborts with ErrOutOfBudget, releases everything, and lands in
// the abort accounting exactly once. The test idioms mirror a VM gas
// meter's out-of-gas suite, including the recover-based panic-path
// variant.

import (
	"errors"
	"testing"

	"repro/stm"
	"repro/stm/budget"
)

// withPolicy installs a metering policy for the duration of the test.
func withPolicy(t *testing.T, p budget.Policy) {
	t.Helper()
	stm.SetBudgetPolicy(p)
	t.Cleanup(func() { stm.SetBudgetPolicy(nil) })
}

func TestBudgetExhaustionMidRead(t *testing.T) {
	v1, v2 := stm.NewVar(1), stm.NewVar(2)
	// Unit costs: each fresh Get charges Step+Read = 2. A limit of 3
	// admits the first read and runs dry on the second's Read charge.
	withPolicy(t, budget.Fixed{Limit: 3})
	before := stm.ReadStats()
	reached := false
	err := stm.Atomically(func(tx *stm.Tx) error {
		_ = v1.Get(tx)
		_ = v2.Get(tx)
		reached = true
		return nil
	})
	if !errors.Is(err, stm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if reached {
		t.Fatal("attempt continued past the exhausted charge")
	}
	d := stm.ReadStats().Sub(before)
	if d.BudgetAborts != 1 || d.Aborts != 1 || d.Commits != 0 {
		t.Fatalf("stats delta = %+v, want exactly one (budget) abort and no commit", d)
	}
}

func TestBudgetExhaustionAtCommitReleasesLocks(t *testing.T) {
	v1, v2 := stm.NewVar(1), stm.NewVar(2)
	w1, w2 := stm.NewVar(0), stm.NewVar(0)
	// Unit costs: 2 reads (4) + 2 writes (4) = 8 hard units; the commit
	// charge prices validation at Step×|reads| = 2 more. A limit of 9
	// survives the attempt body and runs dry at the commit charge point.
	withPolicy(t, budget.Fixed{Limit: 9})
	before := stm.ReadStats()
	err := stm.Atomically(func(tx *stm.Tx) error {
		_ = v1.Get(tx)
		_ = v2.Get(tx)
		w1.Set(tx, 10)
		w2.Set(tx, 20)
		return nil
	})
	if !errors.Is(err, stm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	for i, v := range []*stm.Var[int]{v1, v2, w1, w2} {
		if stm.VarLocked(v) {
			t.Fatalf("var %d left locked after budget abort in commit", i)
		}
	}
	if w1.Load() != 0 || w2.Load() != 0 {
		t.Fatalf("buffered writes leaked: w1=%d w2=%d", w1.Load(), w2.Load())
	}
	d := stm.ReadStats().Sub(before)
	if d.BudgetAborts != 1 || d.Aborts != 1 || d.Commits != 0 {
		t.Fatalf("stats delta = %+v, want exactly one (budget) abort and no commit", d)
	}
	// The same transaction commits once the meter is off.
	stm.SetBudgetPolicy(nil)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		_ = v1.Get(tx)
		_ = v2.Get(tx)
		w1.Set(tx, 10)
		w2.Set(tx, 20)
		return nil
	}); err != nil {
		t.Fatalf("unmetered re-run failed: %v", err)
	}
	if w1.Load() != 10 || w2.Load() != 20 {
		t.Fatal("unmetered re-run did not commit")
	}
}

func TestBudgetRetryChargeStopsConflictLoop(t *testing.T) {
	v := stm.NewVar(0)
	sink := stm.NewVar(0)
	// Only retries cost: 3 units admit attempts 1..4 and refuse to fund a
	// fifth, deterministically (each attempt's read of v is invalidated by
	// the nested commit below, so commit validation always fails).
	withPolicy(t, budget.Fixed{Limit: 3, Costs: budget.Costs{Retry: 1}})
	before := stm.ReadStats()
	attempts := 0
	err := stm.Atomically(func(tx *stm.Tx) error {
		attempts++
		cur := v.Get(tx)
		// A nested (independent) transaction commits a conflicting write,
		// invalidating the read above before this attempt can validate.
		if err := stm.Atomically(func(in *stm.Tx) error {
			v.Set(in, v.Get(in)+1)
			return nil
		}); err != nil {
			t.Fatalf("nested commit failed: %v", err)
		}
		sink.Set(tx, cur)
		return nil
	})
	if !errors.Is(err, stm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (limit 3 funds exactly 3 re-runs)", attempts)
	}
	if stm.VarLocked(v) || stm.VarLocked(sink) {
		t.Fatal("lock leaked by the aborting conflict loop")
	}
	d := stm.ReadStats().Sub(before)
	if d.BudgetAborts != 1 {
		t.Fatalf("BudgetAborts = %d, want 1", d.BudgetAborts)
	}
	if d.BudgetAborts > d.Aborts {
		t.Fatalf("accounting: BudgetAborts %d > Aborts %d", d.BudgetAborts, d.Aborts)
	}
}

func TestBudgetExhaustionROPath(t *testing.T) {
	v1, v2 := stm.NewVar(1), stm.NewVar(2)
	withPolicy(t, budget.Fixed{Limit: 3})
	before := stm.ReadStats()
	err := stm.AtomicallyRO(func(tx *stm.Tx) error {
		_ = v1.Get(tx)
		_ = v2.Get(tx)
		return nil
	})
	if !errors.Is(err, stm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	d := stm.ReadStats().Sub(before)
	if d.BudgetAborts != 1 || d.Aborts != 1 || d.Commits != 0 {
		t.Fatalf("stats delta = %+v, want exactly one (budget) abort", d)
	}
}

// TestBudgetSignalSurvivesUserRecover is the recover-based panic-path
// variant: user code that recovers and re-panics foreign values (the
// only recover discipline allowed across t-operations) must not swallow
// the exhaustion signal — Atomically still reports ErrOutOfBudget.
func TestBudgetSignalSurvivesUserRecover(t *testing.T) {
	v1, v2 := stm.NewVar(1), stm.NewVar(2)
	withPolicy(t, budget.Fixed{Limit: 3})
	err := stm.Atomically(func(tx *stm.Tx) error {
		defer func() {
			if r := recover(); r != nil {
				panic(r) // user cleanup: re-panic what it cannot handle
			}
		}()
		_ = v1.Get(tx)
		_ = v2.Get(tx)
		return nil
	})
	if !errors.Is(err, stm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget through the user recover", err)
	}
}

// TestBudgetAliasMatchesSharedSentinel: the engine alias and the shared
// budget package sentinel are one value, so cross-engine error handling
// can match either spelling.
func TestBudgetAliasMatchesSharedSentinel(t *testing.T) {
	if !errors.Is(stm.ErrOutOfBudget, budget.ErrOutOfBudget) {
		t.Fatal("stm.ErrOutOfBudget does not alias budget.ErrOutOfBudget")
	}
}

// TestBudgetGenerousGrantCommits: metering on, but a grant that covers
// the transaction: it must commit normally and count no budget abort.
func TestBudgetGenerousGrantCommits(t *testing.T) {
	v := stm.NewVar(0)
	withPolicy(t, budget.Fixed{Limit: 1 << 20})
	before := stm.ReadStats()
	for i := 0; i < 10; i++ {
		if err := stm.Atomically(func(tx *stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatalf("metered commit %d failed: %v", i, err)
		}
	}
	if got := v.Load(); got != 10 {
		t.Fatalf("v = %d, want 10", got)
	}
	d := stm.ReadStats().Sub(before)
	if d.BudgetAborts != 0 {
		t.Fatalf("BudgetAborts = %d on a generous grant", d.BudgetAborts)
	}
}
