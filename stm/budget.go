package stm

import (
	"sync/atomic"

	"repro/stm/budget"
)

// ErrOutOfBudget is returned by Atomically/AtomicallyRO when the
// transaction exhausts the work budget granted by the configured
// BudgetPolicy (see SetBudgetPolicy). The abort is clean: no locks are
// held, buffered writes are discarded, the pooled descriptor is recycled,
// and the attempt is counted in Stats.Aborts and Stats.BudgetAborts. It
// aliases budget.ErrOutOfBudget, so errors.Is matches metering aborts
// from any engine.
var ErrOutOfBudget = budget.ErrOutOfBudget

// policyBox and admitBox wrap the configured interfaces so they can be
// published with one atomic pointer: the unmetered hot path pays a single
// pointer load per Atomically call and nothing per operation.
type policyBox struct{ p budget.Policy }
type admitBox struct{ a budget.Admitter }

var (
	budgetPolicy atomic.Pointer[policyBox]
	admission    atomic.Pointer[admitBox]
)

// SetBudgetPolicy installs the engine-wide metering policy; nil disables
// metering (the default). The policy's Grant is sampled once per
// Atomically/AtomicallyRO call — retries spend the same grant — and the
// engine charges it per operation (Costs.Step), per read/write-set entry
// (Costs.Read, Costs.Write), per revalidated entry during timestamp
// extension and commit validation (Costs.Step each), and per aborted
// attempt before the re-run (Costs.Retry). Exhaustion aborts the
// transaction with ErrOutOfBudget. Like the other engine-wide knobs, it
// is meant to be set before concurrent use; in-flight transactions keep
// the grant they started with.
func SetBudgetPolicy(p budget.Policy) {
	if p == nil {
		budgetPolicy.Store(nil)
		return
	}
	budgetPolicy.Store(&policyBox{p: p})
}

// SetAdmission installs the engine-wide admission gate; nil disables it
// (the default). Admit is called once per update-transaction call, before
// the first attempt — read-only transactions are never gated, since they
// are not the load that collapses under contention. Pair it with
// budget.NewController fed by this engine's ReadStats for abort-ratio-
// driven throttling.
func SetAdmission(a budget.Admitter) {
	if a == nil {
		admission.Store(nil)
		return
	}
	admission.Store(&admitBox{a: a})
}

// admitted applies the configured admission gate (see SetAdmission).
func admitted() {
	if b := admission.Load(); b != nil {
		b.a.Admit()
	}
}

// budgetSignal aborts the current attempt when a hard charge exhausts the
// budget; the attempt loop translates it into ErrOutOfBudget. It is
// panicked only where the engine holds no locks (reads, writes,
// extension), mirroring retrySignal's discipline.
type budgetSignal struct{}

// beginBudget samples the configured policy into the descriptor, once per
// call: the per-charge fast path is then two branch-predictable tests on
// descriptor-local fields, with no atomics.
func (tx *Tx) beginBudget() {
	if b := budgetPolicy.Load(); b != nil {
		tx.metered = true
		tx.budgetLeft, tx.costs = b.p.Grant()
	} else {
		tx.metered = false
	}
	tx.budgetExceeded = false
}

// charge debits n work units, aborting the attempt via budgetSignal when
// the grant is exhausted. Callers must hold no engine locks.
func (tx *Tx) charge(n uint64) {
	if !tx.metered || n == 0 {
		return
	}
	if tx.budgetLeft < n {
		tx.budgetExceeded = true
		panic(budgetSignal{})
	}
	tx.budgetLeft -= n
}

// chargeSoft debits n work units, reporting exhaustion instead of
// panicking — for the commit path (which must release its locks through
// normal control flow) and the retry charge (which runs outside
// runAttempt's recover).
func (tx *Tx) chargeSoft(n uint64) bool {
	if !tx.metered || n == 0 {
		return true
	}
	if tx.budgetLeft < n {
		tx.budgetExceeded = true
		return false
	}
	tx.budgetLeft -= n
	return true
}

// budgetAbort finalizes a metering abort. The failed attempt itself has
// already been counted in aborts by the caller; this counts the budget
// subset, recycles the descriptor and returns the sentinel error.
func (tx *Tx) budgetAbort() error {
	tx.stat().budgetAborts.Add(1)
	// Taxonomy: the Budget class mirrors BudgetAborts exactly (see
	// Stats.AbortReasons), so the refusal is counted here — once per
	// exhausted call — not at the individual charge sites.
	tx.stat().reasons[abortBudget].Add(1)
	tx.release()
	return ErrOutOfBudget
}
