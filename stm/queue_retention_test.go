package stm_test

// Regression for the Queue slot-retention leak: Take/TryTake used to
// leave the taken payload in q.buf[h], keeping a pointer-typed element
// reachable through the slot's Var until the ring index wrapped around —
// on a quiet queue, forever. The fix zeroes the vacated slot, so a taken
// payload must become collectable as soon as the consumer drops it; these
// tests pin that with weak pointers across explicit GC cycles.

import (
	"runtime"
	"testing"
	"weak"

	"repro/stm"
)

type bigPayload struct {
	buf [1 << 16]byte
}

// putTakeDropped puts a fresh payload, removes it with take, discards the
// returned value, and hands back only a weak pointer to the payload — no
// strong reference survives the call frame.
func putTakeDropped(t *testing.T, q *stm.Queue[*bigPayload], take func(tx *stm.Tx)) weak.Pointer[bigPayload] {
	t.Helper()
	p := &bigPayload{}
	wp := weak.Make(p)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		q.Put(tx, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := stm.Atomically(func(tx *stm.Tx) error {
		take(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return wp
}

// assertCollected GCs until the weak pointer clears. The queue must be
// kept alive across the checks (runtime.KeepAlive at each call site):
// letting q itself die would free the retained slot with it and mask the
// leak the test exists to catch.
func assertCollected(t *testing.T, wp weak.Pointer[bigPayload]) {
	t.Helper()
	for i := 0; i < 5; i++ {
		runtime.GC()
		if wp.Value() == nil {
			return
		}
	}
	t.Fatal("taken payload is still reachable — the queue slot retained it")
}

func TestQueueTakeReleasesSlot(t *testing.T) {
	q := stm.NewQueue[*bigPayload](4)
	wp := putTakeDropped(t, q, func(tx *stm.Tx) {
		if got := q.Take(tx); got == nil {
			t.Error("Take returned nil payload")
		}
	})
	assertCollected(t, wp)
	runtime.KeepAlive(q)
}

func TestQueueTryTakeReleasesSlot(t *testing.T) {
	q := stm.NewQueue[*bigPayload](4)
	wp := putTakeDropped(t, q, func(tx *stm.Tx) {
		if got, ok := q.TryTake(tx); !ok || got == nil {
			t.Errorf("TryTake = (%v, %v), want a payload", got, ok)
		}
	})
	assertCollected(t, wp)
	runtime.KeepAlive(q)
}
