package stm

// Test-only scheduling hooks, the same shape as the trace hook in
// trace.go: a plain global bool plus a per-descriptor callback, so the
// production hot path pays one nil check per site and nothing else. The
// deterministic interleaving harness (internal/schedtest) installs a
// hook that parks the calling goroutine at each syncpoint.Point until a
// schedule grants it; see DESIGN.md, "Hostile-schedule replay".
//
// Like tracing, the hook is installed only via export_test.go
// (SetSyncHook), with no transactions in flight: syncOn is read without
// synchronization on the assumption that it only ever changes while the
// engine is quiescent. While a hook is installed, every new transaction
// on every goroutine picks it up — harness tests must be the only
// transaction source for the duration.

import "repro/internal/syncpoint"

// syncOn gates per-descriptor hook pickup; false in production, so the
// only cost when off is the tx.sync nil checks.
var syncOn bool

// syncHook is the installed callback (valid while syncOn).
var syncHook func(syncpoint.Point)

// syncProc reports the installed harness's current worker id, replacing
// the pooled descriptor's stats stripe as the trace Proc: sync.Pool
// hand-out order is nondeterministic, and schedule replays must produce
// byte-identical histories.
var syncProc func() int

// setSyncHook installs (or, with nil, removes) the scheduling hook and
// the worker-id source. Test-only; exported via export_test.go.
func setSyncHook(h func(syncpoint.Point), proc func() int) {
	syncHook, syncProc = h, proc
	syncOn = h != nil
}

// syncAt fires the descriptor's hook, if one was picked up at entry.
func (tx *Tx) syncAt(p syncpoint.Point) {
	if tx.sync != nil {
		tx.sync(p)
	}
}
