package stm

import "sync/atomic"

// Stats is a snapshot of the engine-wide transaction counters. Counters
// are maintained on padded per-descriptor stripes, so keeping them does
// not add a shared contended word to the commit path (which would defeat
// the point of the clock-strategy work they exist to measure).
type Stats struct {
	// Commits counts transactions that committed (including read-only).
	Commits uint64
	// ROCommits counts the subset of Commits that committed on the
	// read-only fast path: AtomicallyRO calls plus descriptors Atomically
	// promoted after an abort with an empty write set. These commits did
	// no read-set logging, no locking and no validation.
	ROCommits uint64
	// Aborts counts failed attempts: conflict aborts, stale-read aborts
	// and failed commits. Commits+Aborts is the total attempt count, so
	// the abort ratio is Aborts / (Commits + Aborts).
	Aborts uint64
	// BudgetAborts counts transactions aborted with ErrOutOfBudget by the
	// configured BudgetPolicy — a subset of Aborts (each exhausted call
	// contributes exactly one), so metering aborts are separable from
	// genuine conflicts when tuning a policy or feeding an admission
	// controller.
	BudgetAborts uint64
	// Extensions counts successful read-timestamp extensions: stale-clock
	// aborts converted into O(|read set|) revalidations.
	Extensions uint64
	// ExtensionFailures counts extension attempts that found an
	// invalidated read entry — genuine conflicts, which abort.
	ExtensionFailures uint64
	// ClockIncrements counts published global-clock increments;
	// ClockAdoptions counts GV4/GV6 commits that lost the increment race
	// and adopted the winner's tick instead of retrying. Their sum is at
	// most the number of update commits; the gap to that number (under
	// GV6) is commits that left the clock untouched entirely.
	ClockIncrements uint64
	ClockAdoptions  uint64
	// ClockBlockClaims counts GV7 block claims on the allocator word: the
	// number of shared-line RMWs the batched strategy actually performed.
	// Commits ÷ ClockBlockClaims approaches the block size K in steady
	// state — the amortization GV7 exists to buy.
	ClockBlockClaims uint64
	// RTSAdvances counts TicToc read-timestamp advances: CASes that raised
	// a Var's rts so a read interval intersection stayed non-empty (during
	// execution) or covered the commit timestamp (at commit). This is the
	// "readers write" cost TicToc trades for its clock-free read path.
	RTSAdvances uint64
	// AbortReasons classifies every abort at the site it happened, so an
	// abort-ratio spike can be attributed (lock-busy vs read certification
	// vs commit validation vs …) without re-running under a tracer.
	AbortReasons AbortReasons
}

// AbortReasons is the per-class abort breakdown shared (shape-wise) by
// all three native engines; classes an engine cannot produce stay zero.
// The conflict classes (everything but Budget and ExplicitRetry)
// partition Stats.Aborts minus budget refusals: each failed attempt
// increments exactly one of them at the site that killed it (see
// ExplicitRetry for the one demotion corner that lands there instead).
type AbortReasons struct {
	// ReadCertify: a read could not be certified — the raced re-load
	// bound was exceeded, or a stale version could not be covered on a
	// path with nothing to revalidate (the RO fast path past its first
	// read, a promotion demoted after certified-but-unlogged reads).
	ReadCertify uint64
	// CommitValidation: commit-time revalidation of the read set found
	// an entry overwritten (or persistently foreign-locked) — the
	// genuine write-after-read conflict class.
	CommitValidation uint64
	// LockBusy: the attempt died waiting on someone else's commit lock —
	// a read hit a locked word, or commit could not acquire its own
	// write locks.
	LockBusy uint64
	// Extension: a read-timestamp extension (or TicToc prior-entry
	// sweep) found an invalidated entry and the attempt aborted.
	Extension uint64
	// Budget: the configured BudgetPolicy refused the work — equal to
	// Stats.BudgetAborts. A refusal that lands on the retry charge of an
	// attempt already counted under a conflict class adds a second
	// reason to that single abort, so Total can slightly exceed
	// Stats.Aborts under metering.
	Budget uint64
	// ExplicitRetry counts Retry signals from user code: parked waits
	// (not in Stats.Aborts — the attempt sleeps instead of spinning),
	// OrElse branches that fell through to their alternative, and the
	// rare promoted-RO attempt a Retry demoted back to the full
	// pipeline (that one is in Stats.Aborts). A blocked-queue workload
	// shows up here, not in the conflict classes.
	ExplicitRetry uint64
}

// Total sums every class (see Budget and ExplicitRetry for the two
// classes that are not subsets of Stats.Aborts).
func (r AbortReasons) Total() uint64 {
	return r.ReadCertify + r.CommitValidation + r.LockBusy + r.Extension + r.Budget + r.ExplicitRetry
}

// Sub returns the per-class deltas r - t.
func (r AbortReasons) Sub(t AbortReasons) AbortReasons {
	return AbortReasons{
		ReadCertify:      r.ReadCertify - t.ReadCertify,
		CommitValidation: r.CommitValidation - t.CommitValidation,
		LockBusy:         r.LockBusy - t.LockBusy,
		Extension:        r.Extension - t.Extension,
		Budget:           r.Budget - t.Budget,
		ExplicitRetry:    r.ExplicitRetry - t.ExplicitRetry,
	}
}

// Map returns the breakdown keyed by the stable snake_case names the
// serving tier and tmstat expose.
func (r AbortReasons) Map() map[string]uint64 {
	return map[string]uint64{
		"read_certify":      r.ReadCertify,
		"commit_validation": r.CommitValidation,
		"lock_busy":         r.LockBusy,
		"extension":         r.Extension,
		"budget":            r.Budget,
		"explicit_retry":    r.ExplicitRetry,
	}
}

// AbortRatio returns Aborts / (Commits + Aborts), or 0 for an empty
// snapshot.
func (s Stats) AbortRatio() float64 {
	if s.Commits+s.Aborts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits+s.Aborts)
}

// Sub returns the counter deltas s - t; use snapshots around a workload to
// measure just that workload.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Commits:           s.Commits - t.Commits,
		ROCommits:         s.ROCommits - t.ROCommits,
		Aborts:            s.Aborts - t.Aborts,
		BudgetAborts:      s.BudgetAborts - t.BudgetAborts,
		Extensions:        s.Extensions - t.Extensions,
		ExtensionFailures: s.ExtensionFailures - t.ExtensionFailures,
		ClockIncrements:   s.ClockIncrements - t.ClockIncrements,
		ClockAdoptions:    s.ClockAdoptions - t.ClockAdoptions,
		ClockBlockClaims:  s.ClockBlockClaims - t.ClockBlockClaims,
		RTSAdvances:       s.RTSAdvances - t.RTSAdvances,
		AbortReasons:      s.AbortReasons.Sub(t.AbortReasons),
	}
}

// statStripes is the number of counter stripes; a power of two so stripe
// selection is a mask.
const statStripes = 16

// Abort-reason indices into a statShard's reasons array. The array keeps
// the per-class increment a single indexed Add on the descriptor's own
// stripe — same discipline as the named counters, no new shared words.
const (
	abortReadCertify = iota
	abortCommitValidation
	abortLockBusy
	abortExtension
	abortBudget
	abortExplicitRetry
	nAbortReasons
)

// statShard is one stripe of counters, padded out to its own cache lines
// so stripes do not false-share. The 10 named counters plus the 6 reason
// counters fill the 128-byte two-line target exactly.
type statShard struct {
	commits           atomic.Uint64
	roCommits         atomic.Uint64
	aborts            atomic.Uint64
	budgetAborts      atomic.Uint64
	extensions        atomic.Uint64
	extensionFailures atomic.Uint64
	clockIncrements   atomic.Uint64
	clockAdoptions    atomic.Uint64
	clockBlockClaims  atomic.Uint64
	rtsAdvances       atomic.Uint64
	reasons           [nAbortReasons]atomic.Uint64
	_                 [128 - 16*8]byte
}

var statShards [statStripes]statShard

// statSeq hands out stripe indices (and GV6 PRNG seeds) to new descriptors.
var statSeq atomic.Uint64

// stat returns the descriptor's counter stripe.
func (tx *Tx) stat() *statShard { return &statShards[tx.shard&(statStripes-1)] }

// ReadStats sums the stripes into one snapshot. It is safe to call
// concurrently with transactions; the snapshot is per-counter atomic (not
// a cross-counter consistent cut), which is what a monitoring read wants.
func ReadStats() Stats {
	var s Stats
	for i := range statShards {
		sh := &statShards[i]
		s.Commits += sh.commits.Load()
		s.ROCommits += sh.roCommits.Load()
		s.Aborts += sh.aborts.Load()
		s.BudgetAborts += sh.budgetAborts.Load()
		s.Extensions += sh.extensions.Load()
		s.ExtensionFailures += sh.extensionFailures.Load()
		s.ClockIncrements += sh.clockIncrements.Load()
		s.ClockAdoptions += sh.clockAdoptions.Load()
		s.ClockBlockClaims += sh.clockBlockClaims.Load()
		s.RTSAdvances += sh.rtsAdvances.Load()
		s.AbortReasons.ReadCertify += sh.reasons[abortReadCertify].Load()
		s.AbortReasons.CommitValidation += sh.reasons[abortCommitValidation].Load()
		s.AbortReasons.LockBusy += sh.reasons[abortLockBusy].Load()
		s.AbortReasons.Extension += sh.reasons[abortExtension].Load()
		s.AbortReasons.Budget += sh.reasons[abortBudget].Load()
		s.AbortReasons.ExplicitRetry += sh.reasons[abortExplicitRetry].Load()
	}
	return s
}
