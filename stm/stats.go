package stm

import "sync/atomic"

// Stats is a snapshot of the engine-wide transaction counters. Counters
// are maintained on padded per-descriptor stripes, so keeping them does
// not add a shared contended word to the commit path (which would defeat
// the point of the clock-strategy work they exist to measure).
type Stats struct {
	// Commits counts transactions that committed (including read-only).
	Commits uint64
	// ROCommits counts the subset of Commits that committed on the
	// read-only fast path: AtomicallyRO calls plus descriptors Atomically
	// promoted after an abort with an empty write set. These commits did
	// no read-set logging, no locking and no validation.
	ROCommits uint64
	// Aborts counts failed attempts: conflict aborts, stale-read aborts
	// and failed commits. Commits+Aborts is the total attempt count, so
	// the abort ratio is Aborts / (Commits + Aborts).
	Aborts uint64
	// BudgetAborts counts transactions aborted with ErrOutOfBudget by the
	// configured BudgetPolicy — a subset of Aborts (each exhausted call
	// contributes exactly one), so metering aborts are separable from
	// genuine conflicts when tuning a policy or feeding an admission
	// controller.
	BudgetAborts uint64
	// Extensions counts successful read-timestamp extensions: stale-clock
	// aborts converted into O(|read set|) revalidations.
	Extensions uint64
	// ExtensionFailures counts extension attempts that found an
	// invalidated read entry — genuine conflicts, which abort.
	ExtensionFailures uint64
	// ClockIncrements counts published global-clock increments;
	// ClockAdoptions counts GV4/GV6 commits that lost the increment race
	// and adopted the winner's tick instead of retrying. Their sum is at
	// most the number of update commits; the gap to that number (under
	// GV6) is commits that left the clock untouched entirely.
	ClockIncrements uint64
	ClockAdoptions  uint64
	// ClockBlockClaims counts GV7 block claims on the allocator word: the
	// number of shared-line RMWs the batched strategy actually performed.
	// Commits ÷ ClockBlockClaims approaches the block size K in steady
	// state — the amortization GV7 exists to buy.
	ClockBlockClaims uint64
	// RTSAdvances counts TicToc read-timestamp advances: CASes that raised
	// a Var's rts so a read interval intersection stayed non-empty (during
	// execution) or covered the commit timestamp (at commit). This is the
	// "readers write" cost TicToc trades for its clock-free read path.
	RTSAdvances uint64
}

// AbortRatio returns Aborts / (Commits + Aborts), or 0 for an empty
// snapshot.
func (s Stats) AbortRatio() float64 {
	if s.Commits+s.Aborts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits+s.Aborts)
}

// Sub returns the counter deltas s - t; use snapshots around a workload to
// measure just that workload.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Commits:           s.Commits - t.Commits,
		ROCommits:         s.ROCommits - t.ROCommits,
		Aborts:            s.Aborts - t.Aborts,
		BudgetAborts:      s.BudgetAborts - t.BudgetAborts,
		Extensions:        s.Extensions - t.Extensions,
		ExtensionFailures: s.ExtensionFailures - t.ExtensionFailures,
		ClockIncrements:   s.ClockIncrements - t.ClockIncrements,
		ClockAdoptions:    s.ClockAdoptions - t.ClockAdoptions,
		ClockBlockClaims:  s.ClockBlockClaims - t.ClockBlockClaims,
		RTSAdvances:       s.RTSAdvances - t.RTSAdvances,
	}
}

// statStripes is the number of counter stripes; a power of two so stripe
// selection is a mask.
const statStripes = 16

// statShard is one stripe of counters, padded out to its own cache lines
// so stripes do not false-share.
type statShard struct {
	commits           atomic.Uint64
	roCommits         atomic.Uint64
	aborts            atomic.Uint64
	budgetAborts      atomic.Uint64
	extensions        atomic.Uint64
	extensionFailures atomic.Uint64
	clockIncrements   atomic.Uint64
	clockAdoptions    atomic.Uint64
	clockBlockClaims  atomic.Uint64
	rtsAdvances       atomic.Uint64
	_                 [128 - 10*8]byte
}

var statShards [statStripes]statShard

// statSeq hands out stripe indices (and GV6 PRNG seeds) to new descriptors.
var statSeq atomic.Uint64

// stat returns the descriptor's counter stripe.
func (tx *Tx) stat() *statShard { return &statShards[tx.shard&(statStripes-1)] }

// ReadStats sums the stripes into one snapshot. It is safe to call
// concurrently with transactions; the snapshot is per-counter atomic (not
// a cross-counter consistent cut), which is what a monitoring read wants.
func ReadStats() Stats {
	var s Stats
	for i := range statShards {
		sh := &statShards[i]
		s.Commits += sh.commits.Load()
		s.ROCommits += sh.roCommits.Load()
		s.Aborts += sh.aborts.Load()
		s.BudgetAborts += sh.budgetAborts.Load()
		s.Extensions += sh.extensions.Load()
		s.ExtensionFailures += sh.extensionFailures.Load()
		s.ClockIncrements += sh.clockIncrements.Load()
		s.ClockAdoptions += sh.clockAdoptions.Load()
		s.ClockBlockClaims += sh.clockBlockClaims.Load()
		s.RTSAdvances += sh.rtsAdvances.Load()
	}
	return s
}
