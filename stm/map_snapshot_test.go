package stm_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/stm"
	"repro/stm/norecstm"
)

// TestMapSnapshotPaths covers the non-transactional fast paths: SnapshotGet
// and SnapshotRange see committed state, SnapshotLen agrees with the
// transactional Len at quiescence.
func TestMapSnapshotPaths(t *testing.T) {
	m := stm.NewMap[int](8)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := 0; i < 20; i++ {
			m.Put(tx, fmt.Sprintf("k%d", i), i)
		}
		m.Delete(tx, "k7")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.SnapshotLen(); got != 19 {
		t.Errorf("SnapshotLen = %d, want 19", got)
	}
	var txLen int
	if err := stm.Atomically(func(tx *stm.Tx) error {
		txLen = m.Len(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if txLen != 19 {
		t.Errorf("Len = %d, want 19", txLen)
	}
	if v, ok := m.SnapshotGet("k3"); !ok || v != 3 {
		t.Errorf("SnapshotGet(k3) = %d, %v; want 3, true", v, ok)
	}
	if _, ok := m.SnapshotGet("k7"); ok {
		t.Error("SnapshotGet(k7) found a deleted key")
	}
	seen := map[string]int{}
	m.SnapshotRange(func(k string, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 19 || seen["k3"] != 3 {
		t.Errorf("SnapshotRange saw %d entries (k3=%d), want 19 (k3=3)", len(seen), seen["k3"])
	}
	calls := 0
	m.SnapshotRange(func(string, int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("SnapshotRange ignored early stop: %d calls", calls)
	}
}

// TestMapDisjointPutsScale is the regression test for the single-size-Var
// serialization: concurrent writers inserting fully disjoint key sets land
// on distinct buckets AND distinct size stripes, so the striped counter
// must stay exact and the workload must not degrade into one conflict per
// insert (checked loosely via the engine's abort counter — the old shared
// counter made essentially every concurrent insert pair conflict).
func TestMapDisjointPutsScale(t *testing.T) {
	const (
		workers = 8
		perW    = 200
	)
	m := stm.NewMap[int](256)
	before := stm.ReadStats()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, key, i)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	d := stm.ReadStats().Sub(before)
	var n int
	if err := stm.Atomically(func(tx *stm.Tx) error {
		n = m.Len(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != workers*perW {
		t.Fatalf("Len = %d, want %d", n, workers*perW)
	}
	if sn := m.SnapshotLen(); sn != workers*perW {
		t.Fatalf("SnapshotLen = %d, want %d", sn, workers*perW)
	}
	// Loose ceiling: with striping + extension, disjoint inserts conflict
	// only on stripe collisions (16 stripes, 8 workers), not on every
	// insert. The pre-striping behaviour aborted on the same order as the
	// insert count; allow a quarter of that before calling it a regression.
	if limit := uint64(workers * perW / 4); d.Aborts > limit {
		t.Errorf("disjoint-key inserts aborted %d times (limit %d): size counter serialization is back", d.Aborts, limit)
	}
	t.Logf("disjoint puts: %d commits, %d aborts, %d extensions", d.Commits, d.Aborts, d.Extensions)
}

// TestNorecStats smoke-tests the NOrec engine counters: commits count,
// revalidations appear when the sequence moves under a live transaction.
func TestNorecStats(t *testing.T) {
	before := norecstm.ReadStats()
	v := norecstm.NewVar(0)
	w := norecstm.NewVar(0)
	for i := 0; i < 10; i++ {
		if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var once sync.Once
	if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
		_ = v.Get(tx)
		once.Do(func() {
			if err := norecstm.Atomically(func(tx2 *norecstm.Tx) error {
				w.Set(tx2, 1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		})
		_ = w.Get(tx) // sequence moved: forces a revalidation scan
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	d := norecstm.ReadStats().Sub(before)
	if d.Commits < 12 {
		t.Errorf("commits delta = %d, want ≥ 12", d.Commits)
	}
	if d.Revalidations == 0 {
		t.Error("no revalidation recorded despite a mid-transaction commit")
	}
	if got := d.AbortRatio(); got < 0 || got > 1 {
		t.Errorf("abort ratio %f out of range", got)
	}
}
