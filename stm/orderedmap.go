package stm

import (
	"math/bits"
	"sync/atomic"
)

// OrderedMap is a transactional ordered map: a skiplist of Vars keyed by
// string, iterated in lexicographic key order. It is the long-read-set
// stressor of the container family: a Range over k entries records O(k)
// read-set entries traversing pointer structure, which is exactly the
// regime where Theorem 3's validation cost — and the engine's timestamp
// extension — dominate, rather than the O(1) read sets of flat counters.
//
// Structure. Every node carries an immutable key, a Var holding the value
// (so point updates of a present key touch no links), and a tower of
// forward-pointer Vars. Pointers at different levels are distinct Vars, so
// transactions conflict only on the links they actually cross. The element
// count is striped across several Vars (indexed by key hash), as in Map,
// so inserts and deletes of disjoint keys do not collide on a shared
// counter.
//
// Tower heights are deterministic: height(key) is derived from the key's
// hash, not from a random source, so there is no math/rand (and no shared
// PRNG state) in the hot path, re-inserting a deleted key rebuilds an
// identical tower, and the structure is history-independent — its shape
// depends only on the key set, never on insertion order or on how many
// times the workload inserted and deleted. Heights follow the usual p=1/2
// geometric, so searches are O(log n) expected.
//
// All methods taking a *Tx must run inside Atomically and compose with any
// other transactional operations. The Snapshot* methods take no
// transaction and never abort.
type OrderedMap[V any] struct {
	// head[i] points to the first node whose tower reaches level i.
	head  [omMaxLevel]*Var[*omNode[V]]
	sizes []*Var[int]
	// height is an upper bound on the tallest tower ever linked (raised
	// before a tall node can be published, never lowered). Descents start
	// here instead of at omMaxLevel: for realistically sized maps that
	// saves ~10 reads of permanently-nil head links per operation — pure
	// read-set weight that commit validation and every timestamp-extension
	// revalidation would otherwise have to walk. The hint is deliberately
	// racy and non-transactional: starting the descent at any level ≥ the
	// tallest published tower is correct, and a stale-high hint after an
	// aborted insert merely re-reads a few nil heads.
	height atomic.Int32
	// labelPrefix, when set, makes Put label each new key's value Var
	// prefix+key in the contention profiler's registry (see
	// EnableKeyLabels); nil = off, costing inserts one pointer load.
	labelPrefix atomic.Pointer[string]
}

// omNode is one skiplist node. key is immutable; val is a Var, so
// replacing the value of a present key conflicts only with readers of that
// key, not with the links around it; next[i] for i below the tower height
// is the forward pointer at level i.
type omNode[V any] struct {
	key  string
	val  *Var[V]
	next []*Var[*omNode[V]]
}

// omMaxLevel caps tower heights; 2^omMaxLevel ≈ 1M entries keep the
// expected search depth logarithmic.
const omMaxLevel = 20

// omSizeStripes is the number of size-counter stripes (see Map).
const omSizeStripes = 16

// NewOrderedMap creates an empty transactional ordered map.
func NewOrderedMap[V any]() *OrderedMap[V] {
	m := &OrderedMap[V]{sizes: make([]*Var[int], omSizeStripes)}
	for i := range m.head {
		m.head[i] = NewVar[*omNode[V]](nil)
	}
	for i := range m.sizes {
		m.sizes[i] = NewVar(0)
	}
	m.height.Store(1)
	return m
}

// EnableKeyLabels makes every subsequent Put label the new key's value
// Var as prefix+key in the hot-Var registry, so contention profiles
// (SetContentionProfiler) report the map keys transactions fought over
// instead of anonymous Var ids. Keys inserted before the call stay
// unlabeled; enable at construction for full coverage. The off path
// costs inserts a single atomic pointer load.
func (m *OrderedMap[V]) EnableKeyLabels(prefix string) {
	m.labelPrefix.Store(&prefix)
}

// top returns the level count descents must cover: every published tower
// is at most this tall.
func (m *OrderedMap[V]) top() int { return int(m.height.Load()) }

// bumpHeight raises the descent bound to at least h. Called before the
// insert's links are even buffered, so the bound covers a tower strictly
// before commit can publish it.
func (m *OrderedMap[V]) bumpHeight(h int) {
	for {
		cur := m.height.Load()
		if int(cur) >= h || m.height.CompareAndSwap(cur, int32(h)) {
			return
		}
	}
}

// omHash is the same inline FNV-1a the Map uses (hashing must not
// allocate), widened to 64 bits and finalized with a splitmix64 round so
// the trailing bits towerHeight counts are well-mixed.
func omHash(key string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	return splitmix64(h)
}

// towerHeight derives the deterministic tower height from a key hash: one
// plus the number of trailing zero bits (geometric with p=1/2), capped at
// omMaxLevel.
func towerHeight(h uint64) int {
	t := 1 + bits.TrailingZeros64(h)
	if t > omMaxLevel {
		t = omMaxLevel
	}
	return t
}

// sizeStripeFor returns the size counter covering the given key hash.
func (m *OrderedMap[V]) sizeStripeFor(h uint64) *Var[int] {
	return m.sizes[h%uint64(len(m.sizes))]
}

// link returns node's pointer Var at level i, with node == nil standing
// for the head tower.
func (m *OrderedMap[V]) link(node *omNode[V], i int) *Var[*omNode[V]] {
	if node == nil {
		return m.head[i]
	}
	return node.next[i]
}

// findPreds walks the skiplist top-down inside tx, filling preds[i] with
// the pointer Var whose successor at level i is the first node with key ≥
// key. It returns that first level-0 node (nil if every key is smaller).
// The walk reads O(log n) expected Vars, all recorded in tx's read set, so
// a committed change to any crossed link aborts — or extends — the
// transaction like any other conflicting read. Descending a level is free:
// the predecessor node reached at level i has a tower of height > i, so
// its level i-1 pointer exists.
func (m *OrderedMap[V]) findPreds(tx *Tx, key string, preds *[omMaxLevel]*Var[*omNode[V]]) *omNode[V] {
	var pred *omNode[V] // nil = head
	var next *omNode[V]
	for i := m.top() - 1; i >= 0; i-- {
		p := m.link(pred, i)
		n := p.Get(tx)
		for n != nil && n.key < key {
			pred = n
			p = n.next[i]
			n = p.Get(tx)
		}
		preds[i] = p
		next = n
	}
	return next
}

// seek returns the first node with key ≥ key (nil if none); the cheap
// preds-free walk shared by Get, Floor-style lookups and Range.
func (m *OrderedMap[V]) seek(tx *Tx, key string) *omNode[V] {
	var pred *omNode[V]
	var next *omNode[V]
	for i := m.top() - 1; i >= 0; i-- {
		n := m.link(pred, i).Get(tx)
		for n != nil && n.key < key {
			pred = n
			n = n.next[i].Get(tx)
		}
		next = n
	}
	return next
}

// Get returns the value for key and whether it is present.
func (m *OrderedMap[V]) Get(tx *Tx, key string) (V, bool) {
	if n := m.seek(tx, key); n != nil && n.key == key {
		return n.val.Get(tx), true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present without reading its value — one
// fewer read-set entry than Get when the value is not needed.
func (m *OrderedMap[V]) Contains(tx *Tx, key string) bool {
	n := m.seek(tx, key)
	return n != nil && n.key == key
}

// Put inserts or replaces the value for key. Replacing writes only the
// node's value Var; inserting allocates the node (with its deterministic
// tower) and splices it under the transaction's links, all published
// atomically at commit.
func (m *OrderedMap[V]) Put(tx *Tx, key string, val V) {
	h := omHash(key)
	height := towerHeight(h)
	// Raise the descent bound first: findPreds must cover every level this
	// key's tower may link, and the bound must be in place before a commit
	// could publish the tower. (If the key turns out to be present, or the
	// transaction aborts, the stale-high bound is harmless.)
	m.bumpHeight(height)
	var preds [omMaxLevel]*Var[*omNode[V]]
	n := m.findPreds(tx, key, &preds)
	if n != nil && n.key == key {
		n.val.Set(tx, val)
		return
	}
	node := &omNode[V]{
		key:  key,
		val:  NewVar(val),
		next: make([]*Var[*omNode[V]], height),
	}
	if p := m.labelPrefix.Load(); p != nil {
		// Label even if this insert later aborts: a re-run creates a fresh
		// node (and relabels), and a stale registry entry for an
		// unpublished Var can never be observed by the sketch.
		node.val.Label(*p + key)
	}
	for i := 0; i < height; i++ {
		// The successor at level i is whatever preds[i] pointed to when we
		// read it; preds[i] is in the read set, so if a concurrent commit
		// moves it the transaction cannot commit with the stale link.
		node.next[i] = NewVar(preds[i].Get(tx))
		preds[i].Set(tx, node)
	}
	s := m.sizeStripeFor(h)
	s.Set(tx, s.Get(tx)+1)
}

// Delete removes key, reporting whether it was present. The node is
// unlinked at every level of its tower; concurrent readers either see it
// fully linked or fully gone.
func (m *OrderedMap[V]) Delete(tx *Tx, key string) bool {
	h := omHash(key)
	// Deterministic towers pay off here: the height this key's node has —
	// if present — is a pure function of the key, so the descent bound can
	// be raised to cover the whole tower before searching. Otherwise a
	// concurrently published tall node could be found by a walk that
	// started below its top, leaving preds unfilled at its upper levels.
	m.bumpHeight(towerHeight(h))
	var preds [omMaxLevel]*Var[*omNode[V]]
	n := m.findPreds(tx, key, &preds)
	if n == nil || n.key != key {
		return false
	}
	for i := range n.next {
		// preds[i] necessarily points at n for every level of n's tower:
		// the walk covered the full tower height and stops at the first
		// node with key ≥ key per level, and keys are unique.
		preds[i].Set(tx, n.next[i].Get(tx))
	}
	s := m.sizeStripeFor(h)
	s.Set(tx, s.Get(tx)-1)
	return true
}

// Min returns the smallest key and its value; ok is false on an empty map.
func (m *OrderedMap[V]) Min(tx *Tx) (key string, val V, ok bool) {
	if n := m.head[0].Get(tx); n != nil {
		return n.key, n.val.Get(tx), true
	}
	return "", val, false
}

// Max returns the largest key and its value; ok is false on an empty map.
// The walk descends the towers, so it is O(log n) expected, not O(n).
func (m *OrderedMap[V]) Max(tx *Tx) (key string, val V, ok bool) {
	var pred *omNode[V]
	for i := m.top() - 1; i >= 0; i-- {
		for n := m.link(pred, i).Get(tx); n != nil; n = m.link(pred, i).Get(tx) {
			pred = n
		}
	}
	if pred == nil {
		return "", val, false
	}
	return pred.key, pred.val.Get(tx), true
}

// Range calls f in ascending key order for every entry with from ≤ key <
// to, stopping early if f returns false. An empty to means "no upper
// bound". The scan reads every visited link and value inside the
// transaction, so it is a fully consistent ordered snapshot — and a
// long-read-set workload: k visited entries cost O(k) read-set entries to
// validate at commit.
func (m *OrderedMap[V]) Range(tx *Tx, from, to string, f func(key string, val V) bool) {
	for n := m.seek(tx, from); n != nil; n = n.next[0].Get(tx) {
		if to != "" && n.key >= to {
			return
		}
		if !f(n.key, n.val.Get(tx)) {
			return
		}
	}
}

// Len returns the number of entries as one consistent snapshot (the sum of
// the size stripes). Like Map.Len it conflicts with concurrent inserts and
// deletes; prefer SnapshotLen in read-mostly paths that can tolerate a
// non-transactional answer.
func (m *OrderedMap[V]) Len(tx *Tx) int {
	n := 0
	for _, s := range m.sizes {
		n += s.Get(tx)
	}
	return n
}

// Keys returns all keys in ascending order, as one consistent snapshot.
func (m *OrderedMap[V]) Keys(tx *Tx) []string {
	var out []string
	m.Range(tx, "", "", func(k string, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// SnapshotLen returns the entry count without running a transaction: one
// atomic load per stripe. Each stripe is individually consistent but the
// sum is not a single atomic cut. It never aborts, blocks, or conflicts
// with writers.
func (m *OrderedMap[V]) SnapshotLen() int {
	n := 0
	for _, s := range m.sizes {
		n += s.Load()
	}
	return n
}

// SnapshotGet returns the value for key without running a transaction. The
// traversal reads each link as a consistent single-Var snapshot; it never
// conflicts with writers.
func (m *OrderedMap[V]) SnapshotGet(key string) (V, bool) {
	var pred *omNode[V]
	var next *omNode[V]
	for i := m.top() - 1; i >= 0; i-- {
		n := m.snapLink(pred, i)
		for n != nil && n.key < key {
			pred = n
			n = n.next[i].Load()
		}
		next = n
	}
	if next != nil && next.key == key {
		return next.val.Load(), true
	}
	var zero V
	return zero, false
}

// snapLink is link for the non-transactional paths.
func (m *OrderedMap[V]) snapLink(node *omNode[V], i int) *omNode[V] {
	if node == nil {
		return m.head[i].Load()
	}
	return node.next[i].Load()
}

// SnapshotRange calls f in ascending key order for every entry with from ≤
// key < to (empty to = unbounded) without running a transaction, stopping
// early if f returns false. Every link and value load is individually
// consistent and keys are always delivered in strictly increasing order,
// but the iteration as a whole is not atomic: entries inserted or deleted
// mid-scan may or may not be seen (the usual contract of concurrent map
// iteration). Use Range inside a transaction when a fully consistent view
// is required.
func (m *OrderedMap[V]) SnapshotRange(from, to string, f func(key string, val V) bool) {
	var pred *omNode[V]
	var next *omNode[V]
	for i := m.top() - 1; i >= 0; i-- {
		n := m.snapLink(pred, i)
		for n != nil && n.key < from {
			pred = n
			n = n.next[i].Load()
		}
		next = n
	}
	for n := next; n != nil; n = n.next[0].Load() {
		if to != "" && n.key >= to {
			return
		}
		if !f(n.key, n.val.Load()) {
			return
		}
	}
}
