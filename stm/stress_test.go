package stm_test

import (
	"sync"
	"testing"

	"repro/stm"
)

// TestStressOverlappingTransfers hammers the commit path from many
// goroutines with overlapping read/write sets — narrow two-account
// transfers, wide all-accounts sweeps that cross the write-set promotion
// threshold, and read-only audits — while checking the conservation
// invariant throughout. Run with -race, it exercises the versioned-lock
// word protocol (CAS lock, validation, single-store release) and the
// pooled-descriptor recycling under real interleavings.
func TestStressOverlappingTransfers(t *testing.T) {
	const (
		accounts = 32
		initial  = 1000
		workers  = 8
		rounds   = 300
	)
	vars := make([]*stm.Var[int], accounts)
	for i := range vars {
		vars[i] = stm.NewVar(initial)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Auditors: read-only transactions over the full set must always see a
	// conserved total (opacity: no intermediate state observable).
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum int
				if err := stm.Atomically(func(tx *stm.Tx) error {
					sum = 0
					for _, v := range vars {
						sum += v.Get(tx)
					}
					return nil
				}); err != nil {
					t.Errorf("auditor: %v", err)
					return
				}
				if sum != accounts*initial {
					t.Errorf("conservation violated: sum = %d", sum)
					return
				}
			}
		}()
	}

	var transfers sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		transfers.Add(1)
		go func() {
			defer transfers.Done()
			rng := uint64(w)*2654435761 + 1
			next := func() int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int(rng>>33) % accounts
			}
			for i := 0; i < rounds; i++ {
				switch {
				case i%97 == 0:
					// Wide rebalance: reads and writes every account, so the
					// write set promotes from the sorted slice to the map
					// index mid-transaction — under full contention.
					if err := stm.Atomically(func(tx *stm.Tx) error {
						total := 0
						for _, v := range vars {
							total += v.Get(tx)
						}
						share := total / accounts
						rem := total - share*accounts
						for j, v := range vars {
							amt := share
							if j < rem {
								amt++
							}
							v.Set(tx, amt)
						}
						return nil
					}); err != nil {
						t.Errorf("rebalance: %v", err)
						return
					}
				case i%13 == 0:
					// Overlapping window transfer: read a 4-account window,
					// move one unit along it (read set ⊃ write set).
					base := next()
					if err := stm.Atomically(func(tx *stm.Tx) error {
						sum := 0
						for j := 0; j < 4; j++ {
							sum += vars[(base+j)%accounts].Get(tx)
						}
						_ = sum
						a, b := vars[base%accounts], vars[(base+3)%accounts]
						if a == b {
							return nil
						}
						a.Set(tx, a.Get(tx)-1)
						b.Set(tx, b.Get(tx)+1)
						return nil
					}); err != nil {
						t.Errorf("window transfer: %v", err)
						return
					}
				default:
					from, to := next(), next()
					if from == to {
						continue
					}
					if err := stm.Atomically(func(tx *stm.Tx) error {
						amt := 1 + i%7
						f := vars[from].Get(tx)
						vars[from].Set(tx, f-amt)
						vars[to].Set(tx, vars[to].Get(tx)+amt)
						return nil
					}); err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}
		}()
	}
	transfers.Wait()
	close(stop)
	wg.Wait()

	var total int
	for _, v := range vars {
		total += v.Load()
	}
	if total != accounts*initial {
		t.Fatalf("final total = %d, want %d", total, accounts*initial)
	}
}
