package stm

import (
	"sort"
	"testing"
)

// White-box tests for the write-set representation: the sorted-insert
// slice below writeSetMapThreshold, the map promotion above it, and the
// read-set duplicate suppression.

func TestWriteSetSortedInsertBelowThreshold(t *testing.T) {
	n := writeSetMapThreshold - 2
	vars := make([]*Var[int], n)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	// Write in a scrambled order; the slice must stay sorted by Var id with
	// no map allocated.
	err := Atomically(func(tx *Tx) error {
		for i := range vars {
			vars[(i*7+3)%n].Set(tx, (i*7+3)%n)
		}
		if tx.wmap != nil {
			t.Errorf("map index allocated for %d writes (threshold %d)", n, writeSetMapThreshold)
		}
		if len(tx.writes) != n {
			t.Errorf("write set has %d entries, want %d", len(tx.writes), n)
		}
		if !sort.SliceIsSorted(tx.writes, func(i, j int) bool {
			return tx.writes[i].v.id() < tx.writes[j].v.id()
		}) {
			t.Error("write set is not sorted by Var id")
		}
		// Read-own-write through the binary search.
		for i, v := range vars {
			if got := v.Get(tx); got != i {
				t.Errorf("read-own-write vars[%d] = %d, want %d", i, got, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vars {
		if got := v.Load(); got != i {
			t.Errorf("committed vars[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestWriteSetOverwriteInPlace(t *testing.T) {
	v := NewVar(0)
	w := NewVar(0)
	err := Atomically(func(tx *Tx) error {
		v.Set(tx, 1)
		w.Set(tx, 10)
		v.Set(tx, 2) // overwrite must not grow the write set
		if len(tx.writes) != 2 {
			t.Errorf("write set has %d entries after overwrite, want 2", len(tx.writes))
		}
		if got := v.Get(tx); got != 2 {
			t.Errorf("read-own-write after overwrite = %d, want 2", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 2 {
		t.Fatalf("committed %d, want 2", got)
	}
}

func TestWriteSetPromotionToMap(t *testing.T) {
	n := writeSetMapThreshold * 3
	vars := make([]*Var[int], n)
	for i := range vars {
		vars[i] = NewVar(-1)
	}
	err := Atomically(func(tx *Tx) error {
		for i, v := range vars {
			v.Set(tx, i)
			mapExpected := i+1 > writeSetMapThreshold
			if gotMap := tx.wmap != nil; gotMap != mapExpected {
				t.Errorf("after %d writes: map index present = %v, want %v", i+1, gotMap, mapExpected)
			}
		}
		// Read-own-write through the map, and overwrites update in place.
		for i, v := range vars {
			if got := v.Get(tx); got != i {
				t.Errorf("read-own-write vars[%d] = %d, want %d", i, got, i)
			}
		}
		vars[0].Set(tx, 12345)
		if len(tx.writes) != n {
			t.Errorf("write set has %d entries after post-promotion overwrite, want %d", len(tx.writes), n)
		}
		if got := vars[0].Get(tx); got != 12345 {
			t.Errorf("post-promotion overwrite read = %d, want 12345", got)
		}
		vars[0].Set(tx, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The commit sorts the promoted (unsorted-tail) write set and must
	// publish every value exactly once.
	for i, v := range vars {
		if got := v.Load(); got != i {
			t.Errorf("committed vars[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestReadSetSkipsRecentDuplicates(t *testing.T) {
	v := NewVar(7)
	err := Atomically(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			if got := v.Get(tx); got != 7 {
				t.Errorf("Get = %d, want 7", got)
			}
		}
		if len(tx.reads) != 1 {
			t.Errorf("read set has %d entries after 10 reads of one Var, want 1", len(tx.reads))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPooledTxIsCleanAcrossCalls(t *testing.T) {
	// A transaction that errors out (aborted writes) must not leak its
	// buffered writes into a later transaction that reuses the descriptor.
	v := NewVar(1)
	sentinel := Atomically(func(tx *Tx) error {
		v.Set(tx, 99)
		return errSentinel
	})
	if sentinel != errSentinel {
		t.Fatalf("err = %v, want sentinel", sentinel)
	}
	err := Atomically(func(tx *Tx) error {
		if len(tx.writes) != 0 || len(tx.reads) != 0 {
			t.Errorf("recycled Tx not clean: %d writes, %d reads", len(tx.writes), len(tx.reads))
		}
		if got := v.Get(tx); got != 1 {
			t.Errorf("Get = %d, want 1 (aborted write leaked)", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type sentinelErr struct{}

func (sentinelErr) Error() string { return "sentinel" }

var errSentinel = sentinelErr{}
