package stm_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/stm"
)

func TestOrderedMapBasics(t *testing.T) {
	m := stm.NewOrderedMap[int]()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(stm.Atomically(func(tx *stm.Tx) error {
		if _, ok := m.Get(tx, "a"); ok {
			t.Error("empty map returned a value")
		}
		if _, _, ok := m.Min(tx); ok {
			t.Error("Min on empty map reported a key")
		}
		if _, _, ok := m.Max(tx); ok {
			t.Error("Max on empty map reported a key")
		}
		m.Put(tx, "banana", 2)
		m.Put(tx, "apple", 1)
		m.Put(tx, "cherry", 3)
		m.Put(tx, "banana", 20) // replace
		if v, ok := m.Get(tx, "banana"); !ok || v != 20 {
			t.Errorf("Get(banana) = %d, %v; want 20, true", v, ok)
		}
		if !m.Contains(tx, "apple") || m.Contains(tx, "durian") {
			t.Error("Contains semantics wrong")
		}
		if n := m.Len(tx); n != 3 {
			t.Errorf("Len = %d, want 3", n)
		}
		if k, v, ok := m.Min(tx); !ok || k != "apple" || v != 1 {
			t.Errorf("Min = %q,%d,%v; want apple,1,true", k, v, ok)
		}
		if k, v, ok := m.Max(tx); !ok || k != "cherry" || v != 3 {
			t.Errorf("Max = %q,%d,%v; want cherry,3,true", k, v, ok)
		}
		if !m.Delete(tx, "banana") || m.Delete(tx, "banana") {
			t.Error("Delete semantics wrong")
		}
		if n := m.Len(tx); n != 2 {
			t.Errorf("Len after delete = %d, want 2", n)
		}
		keys := m.Keys(tx)
		if len(keys) != 2 || keys[0] != "apple" || keys[1] != "cherry" {
			t.Errorf("Keys = %v, want [apple cherry]", keys)
		}
		return nil
	}))
}

// TestOrderedMapOrdering inserts keys in adversarial order and checks both
// the transactional and the snapshot iteration deliver them sorted.
func TestOrderedMapOrdering(t *testing.T) {
	m := stm.NewOrderedMap[int]()
	const n = 200
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", (i*137)%n) // permuted insert order
	}
	for i, k := range keys {
		k := k
		if err := stm.Atomically(func(tx *stm.Tx) error {
			m.Put(tx, k, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	var got []string
	if err := stm.Atomically(func(tx *stm.Tx) error {
		got = m.Keys(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("Keys returned %d entries, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("Keys[%d] = %q, want %q", i, got[i], sorted[i])
		}
	}
	var snap []string
	m.SnapshotRange("", "", func(k string, _ int) bool {
		snap = append(snap, k)
		return true
	})
	if len(snap) != n || snap[0] != sorted[0] || snap[n-1] != sorted[n-1] {
		t.Fatalf("SnapshotRange returned %d entries [%q..%q], want %d [%q..%q]",
			len(snap), snap[0], snap[len(snap)-1], n, sorted[0], sorted[n-1])
	}
}

func TestOrderedMapRangeBounds(t *testing.T) {
	m := stm.NewOrderedMap[int]()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for _, k := range []string{"a", "b", "c", "d", "e"} {
			m.Put(tx, k, int(k[0]))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	collect := func(from, to string) []string {
		var out []string
		if err := stm.Atomically(func(tx *stm.Tx) error {
			out = out[:0]
			m.Range(tx, from, to, func(k string, _ int) bool {
				out = append(out, k)
				return true
			})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := []struct {
		from, to string
		want     string
	}{
		{"b", "d", "bc"},   // half-open: d excluded
		{"", "c", "ab"},    // from the start
		{"c", "", "cde"},   // empty to = unbounded
		{"", "", "abcde"},  // full scan
		{"bb", "dd", "cd"}, // bounds between keys
		{"f", "", ""},      // beyond the end
		{"d", "b", ""},     // inverted range is empty
	}
	for _, c := range cases {
		got := ""
		for _, k := range collect(c.from, c.to) {
			got += k
		}
		if got != c.want {
			t.Errorf("Range(%q,%q) = %q, want %q", c.from, c.to, got, c.want)
		}
	}
	// Early stop.
	count := 0
	if err := stm.Atomically(func(tx *stm.Tx) error {
		count = 0
		m.Range(tx, "", "", func(string, int) bool {
			count++
			return count < 2
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("Range ignored early stop: %d calls", count)
	}
}

// TestOrderedMapSnapshotPaths covers the non-transactional fast paths at
// quiescence: SnapshotGet/SnapshotLen/SnapshotRange agree with the
// transactional view.
func TestOrderedMapSnapshotPaths(t *testing.T) {
	m := stm.NewOrderedMap[int]()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := 0; i < 20; i++ {
			m.Put(tx, fmt.Sprintf("k%02d", i), i)
		}
		m.Delete(tx, "k07")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.SnapshotLen(); got != 19 {
		t.Errorf("SnapshotLen = %d, want 19", got)
	}
	if v, ok := m.SnapshotGet("k03"); !ok || v != 3 {
		t.Errorf("SnapshotGet(k03) = %d, %v; want 3, true", v, ok)
	}
	if _, ok := m.SnapshotGet("k07"); ok {
		t.Error("SnapshotGet(k07) found a deleted key")
	}
	var seen []string
	m.SnapshotRange("k05", "k10", func(k string, _ int) bool {
		seen = append(seen, k)
		return true
	})
	want := []string{"k05", "k06", "k08", "k09"}
	if len(seen) != len(want) {
		t.Fatalf("SnapshotRange(k05,k10) = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("SnapshotRange(k05,k10) = %v, want %v", seen, want)
		}
	}
	calls := 0
	m.SnapshotRange("", "", func(string, int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("SnapshotRange ignored early stop: %d calls", calls)
	}
}

// TestOrderedMapReinsert exercises the deterministic-tower path: deleting
// and re-inserting the same keys many times must leave the structure fully
// functional and the size exact (the tower for a key is always rebuilt
// identically, so the shape is history-independent).
func TestOrderedMapReinsert(t *testing.T) {
	m := stm.NewOrderedMap[int]()
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	for round := 0; round < 5; round++ {
		if err := stm.Atomically(func(tx *stm.Tx) error {
			for i, k := range keys {
				m.Put(tx, k, round*100+i)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := stm.Atomically(func(tx *stm.Tx) error {
			for _, k := range keys[:16] {
				if !m.Delete(tx, k) {
					t.Errorf("round %d: Delete(%s) missed", round, k)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := m.SnapshotLen(); got != 16 {
			t.Fatalf("round %d: SnapshotLen = %d, want 16", round, got)
		}
		if err := stm.Atomically(func(tx *stm.Tx) error {
			if k, _, ok := m.Min(tx); !ok || k != "key16" {
				t.Errorf("round %d: Min = %q, want key16", round, k)
			}
			// Re-insert the deleted half so every round starts identically.
			for i, k := range keys[:16] {
				m.Put(tx, k, i)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := m.SnapshotLen(); got != 32 {
			t.Fatalf("round %d: SnapshotLen after reinsert = %d, want 32", round, got)
		}
	}
}

// TestOrderedMapConservationStress is the -race stress of the acceptance
// criteria: workers transfer balance between ordered-map entries while
// auditors Range-sum the whole map transactionally — the sum must never
// drift — and snapshot readers check the ordered-iteration consistency
// contract (strictly increasing keys, committed values only).
func TestOrderedMapConservationStress(t *testing.T) {
	const (
		accounts = 24
		initial  = 100
		workers  = 4
		rounds   = 150
	)
	m := stm.NewOrderedMap[int]()
	keys := make([]string, accounts)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := range keys {
			keys[i] = fmt.Sprintf("acct%02d", i)
			m.Put(tx, keys[i], initial)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var snapReaders sync.WaitGroup
	for r := 0; r < 2; r++ {
		snapReaders.Add(1)
		go func() {
			defer snapReaders.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				last := ""
				m.SnapshotRange("", "", func(k string, v int) bool {
					if last != "" && k <= last {
						t.Errorf("snapshot iteration out of order: %q after %q", k, last)
						return false
					}
					last = k
					if v < 0 || v > accounts*initial {
						t.Errorf("snapshot read impossible balance %d at %q", v, k)
						return false
					}
					return true
				})
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 17
			next := func() int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int(rng>>33) % accounts
			}
			for i := 0; i < rounds; i++ {
				if i%5 == 0 {
					// Auditor: transactional ordered full scan.
					sum, n, last := 0, 0, ""
					if err := stm.Atomically(func(tx *stm.Tx) error {
						sum, n, last = 0, 0, ""
						m.Range(tx, "", "", func(k string, v int) bool {
							if last != "" && k <= last {
								t.Errorf("transactional iteration out of order: %q after %q", k, last)
							}
							last = k
							sum += v
							n++
							return true
						})
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
					if sum != accounts*initial || n != accounts {
						t.Errorf("conservation violated: sum=%d over %d entries", sum, n)
						return
					}
					continue
				}
				from, to := next(), next()
				if from == to {
					continue
				}
				if err := stm.Atomically(func(tx *stm.Tx) error {
					f, _ := m.Get(tx, keys[from])
					g, _ := m.Get(tx, keys[to])
					m.Put(tx, keys[from], f-1)
					m.Put(tx, keys[to], g+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapReaders.Wait()
	total := 0
	m.SnapshotRange("", "", func(_ string, v int) bool {
		total += v
		return true
	})
	if total != accounts*initial {
		t.Fatalf("final total = %d, want %d", total, accounts*initial)
	}
}

// TestOrderedMapStructuralChurn races inserts and deletes of interleaved
// key ranges against transactional range scans: scans must always see a
// sorted, duplicate-free window, the striped size must stay exact, and
// disjoint-key structural updates must commit (no livelock).
func TestOrderedMapStructuralChurn(t *testing.T) {
	const (
		workers = 4
		perW    = 120
	)
	m := stm.NewOrderedMap[int]()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("w%d-%04d", w, i)
				if err := stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, key, i)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 2 {
					// Delete a key inserted two steps ago: constant
					// structural churn at every level.
					old := fmt.Sprintf("w%d-%04d", w, i-2)
					if err := stm.Atomically(func(tx *stm.Tx) error {
						m.Delete(tx, old)
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
				if i%10 == 5 {
					if err := stm.Atomically(func(tx *stm.Tx) error {
						last, n := "", 0
						m.Range(tx, fmt.Sprintf("w%d-", w), fmt.Sprintf("w%d.", w), func(k string, _ int) bool {
							if last != "" && k <= last {
								t.Errorf("scan out of order: %q after %q", k, last)
							}
							last = k
							n++
							return n < 50
						})
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	wantLen := workers * (perW - perW/3)
	var gotLen int
	if err := stm.Atomically(func(tx *stm.Tx) error {
		gotLen = m.Len(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Cross-check the striped counter against an actual walk.
	walked := 0
	m.SnapshotRange("", "", func(string, int) bool {
		walked++
		return true
	})
	if gotLen != walked {
		t.Fatalf("striped Len = %d but the list holds %d entries", gotLen, walked)
	}
	if gotLen != wantLen {
		t.Fatalf("Len = %d, want %d", gotLen, wantLen)
	}
}
