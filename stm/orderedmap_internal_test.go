package stm

import (
	"fmt"
	"testing"
)

// TestTowerHeightDeterministic pins the no-math/rand contract of the
// skiplist: heights are a pure function of the key, within [1, omMaxLevel],
// and geometrically distributed enough that a real key population builds a
// usable skiplist (most keys at level 1, a vanishing tail of tall towers).
func TestTowerHeightDeterministic(t *testing.T) {
	counts := make([]int, omMaxLevel+1)
	const n = 4096
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		h1 := towerHeight(omHash(key))
		h2 := towerHeight(omHash(key))
		if h1 != h2 {
			t.Fatalf("height of %q not deterministic: %d vs %d", key, h1, h2)
		}
		if h1 < 1 || h1 > omMaxLevel {
			t.Fatalf("height of %q = %d outside [1,%d]", key, h1, omMaxLevel)
		}
		counts[h1]++
	}
	// p=1/2 geometric: about half the keys at height 1, a quarter at 2.
	if counts[1] < n/3 || counts[1] > 2*n/3 {
		t.Errorf("height-1 fraction %d/%d far from 1/2: hash mixing is broken", counts[1], n)
	}
	tall := 0
	for h := 6; h <= omMaxLevel; h++ {
		tall += counts[h]
	}
	if tall > n/8 {
		t.Errorf("%d/%d keys taller than 5 levels: hash mixing is broken", tall, n)
	}
}
