package stm_test

import (
	"errors"
	"testing"

	"repro/stm"
)

func TestOrElseFirstBranchWins(t *testing.T) {
	v := stm.NewVar(1)
	out := stm.NewVar("")
	err := stm.Atomically(func(tx *stm.Tx) error {
		return tx.OrElse(
			func(tx *stm.Tx) error {
				if v.Get(tx) == 0 {
					tx.Retry()
				}
				out.Set(tx, "first")
				return nil
			},
			func(tx *stm.Tx) error {
				out.Set(tx, "second")
				return nil
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Load(); got != "first" {
		t.Fatalf("out = %q, want first", got)
	}
}

func TestOrElseFallsThroughOnRetry(t *testing.T) {
	empty := stm.NewVar(0) // "queue" with nothing in it
	out := stm.NewVar("")
	scratch := stm.NewVar(0)
	err := stm.Atomically(func(tx *stm.Tx) error {
		return tx.OrElse(
			func(tx *stm.Tx) error {
				scratch.Set(tx, 99) // must be rolled back
				if empty.Get(tx) == 0 {
					tx.Retry()
				}
				out.Set(tx, "first")
				return nil
			},
			func(tx *stm.Tx) error {
				out.Set(tx, "second")
				return nil
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Load(); got != "second" {
		t.Fatalf("out = %q, want second", got)
	}
	if got := scratch.Load(); got != 0 {
		t.Fatalf("scratch = %d; the blocked branch's write leaked", got)
	}
}

func TestOrElseErrorDoesNotFallThrough(t *testing.T) {
	sentinel := errors.New("boom")
	ran2 := false
	err := stm.Atomically(func(tx *stm.Tx) error {
		return tx.OrElse(
			func(tx *stm.Tx) error { return sentinel },
			func(tx *stm.Tx) error { ran2 = true; return nil },
		)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ran2 {
		t.Fatal("second branch ran after a user error")
	}
}

// TestOrElseBothRetryBlocks: when both branches block, the transaction
// waits on the union of their read sets; a write to either side wakes it.
func TestOrElseBothRetryBlocks(t *testing.T) {
	left := stm.NewVar(0)
	right := stm.NewVar(0)
	got := make(chan string, 1)
	go func() {
		var which string
		_ = stm.Atomically(func(tx *stm.Tx) error {
			return tx.OrElse(
				func(tx *stm.Tx) error {
					if left.Get(tx) == 0 {
						tx.Retry()
					}
					which = "left"
					return nil
				},
				func(tx *stm.Tx) error {
					if right.Get(tx) == 0 {
						tx.Retry()
					}
					which = "right"
					return nil
				},
			)
		})
		got <- which
	}()
	// Waking via the *second* branch's variable proves the read set union
	// includes both branches.
	if err := stm.Atomically(func(tx *stm.Tx) error {
		right.Set(tx, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if which := <-got; which != "right" {
		t.Fatalf("woke via %q, want right", which)
	}
}

// TestOrElseTakeFromEitherQueue is the canonical use: take from whichever
// queue has data, preferring the first.
func TestOrElseTakeFromEitherQueue(t *testing.T) {
	q1 := stm.NewQueue[int](2)
	q2 := stm.NewQueue[int](2)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		q2.Put(tx, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := stm.Atomically(func(tx *stm.Tx) error {
		return tx.OrElse(
			func(tx *stm.Tx) error { got = q1.Take(tx); return nil },
			func(tx *stm.Tx) error { got = q2.Take(tx); return nil },
		)
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	// Nested OrElse composes too.
	if err := stm.Atomically(func(tx *stm.Tx) error {
		q1.Put(tx, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := stm.Atomically(func(tx *stm.Tx) error {
		return tx.OrElse(
			func(tx *stm.Tx) error {
				return tx.OrElse(
					func(tx *stm.Tx) error { got = q2.Take(tx); return nil }, // empty now
					func(tx *stm.Tx) error { got = q1.Take(tx); return nil },
				)
			},
			func(tx *stm.Tx) error { got = -1; return nil },
		)
	}); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("nested OrElse got %d, want 7", got)
	}
}

// TestOrElseRestoresOverwrittenBufferedWrite pins the rollback of a
// blocked branch that *overwrote* a write buffered before the branch: the
// pre-branch value, not the branch's, must survive and commit.
func TestOrElseRestoresOverwrittenBufferedWrite(t *testing.T) {
	v := stm.NewVar(0)
	gate := stm.NewVar(0)
	err := stm.Atomically(func(tx *stm.Tx) error {
		v.Set(tx, 1) // buffered before the branch
		return tx.OrElse(
			func(tx *stm.Tx) error {
				v.Set(tx, 99) // overwrites the buffered entry in place
				if gate.Get(tx) == 0 {
					tx.Retry()
				}
				return nil
			},
			func(tx *stm.Tx) error {
				if got := v.Get(tx); got != 1 {
					t.Errorf("second branch sees %d, want pre-branch 1", got)
				}
				return nil
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 1 {
		t.Fatalf("committed %d, want the restored pre-branch write 1", got)
	}
}

// TestOrElseOverPromotedWriteSet exercises the branch rollback after the
// write set has outgrown the sorted slice into the map index: the restore
// must bring back every buffered value, including overwritten ones.
func TestOrElseOverPromotedWriteSet(t *testing.T) {
	const n = 80 // comfortably past the slice→map promotion threshold
	vars := make([]*stm.Var[int], n)
	for i := range vars {
		vars[i] = stm.NewVar(0)
	}
	gate := stm.NewVar(0)
	err := stm.Atomically(func(tx *stm.Tx) error {
		for i, v := range vars {
			v.Set(tx, i+1)
		}
		return tx.OrElse(
			func(tx *stm.Tx) error {
				for _, v := range vars {
					v.Set(tx, -1) // clobber everything, then block
				}
				if gate.Get(tx) == 0 {
					tx.Retry()
				}
				return nil
			},
			func(tx *stm.Tx) error {
				for i, v := range vars {
					if got := v.Get(tx); got != i+1 {
						t.Errorf("vars[%d] = %d after rollback, want %d", i, got, i+1)
						break
					}
				}
				return nil
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vars {
		if got := v.Load(); got != i+1 {
			t.Fatalf("committed vars[%d] = %d, want %d", i, got, i+1)
		}
	}
}
