package stm_test

// Hostile-schedule replay against the real TL2 engine: the
// internal/schedtest harness parks worker goroutines at the engine's
// test-only sync points (stm/syncpoint.go) and releases exactly one at a
// time per a sched.Policy, so the adversarial schedules the simulator
// half model-checks — round-robin, explicit replays, Explore's
// preemption-bounded enumeration — drive real transactions, with the
// trace hook recording each run as an internal/tm.History and the
// internal/check oracles asserting opacity and strict serializability.
// Three of PR 8's four race-only pathologies live here (the fourth, the
// pinned-snapshot-vs-GC race, is mvstm's; see stm/mvstm).

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/check"
	"repro/internal/sched"
	"repro/internal/schedtest"
	"repro/internal/syncpoint"
	"repro/internal/tm"
	"repro/stm"
)

// buildSchedInstance registers the standard three-transaction instance —
// a dependent read-modify-write (x into y), a conflicting increment of x,
// and a read-only observer — on a fresh harness over fresh Vars, and
// installs the hook and trace. The conflict is deliberately asymmetric
// (only worker 1 writes x), so every schedule terminates: worker 1's
// first attempt always validates, and worker 0 can retry at most until
// worker 1 is done. A symmetric cycle would livelock under fair
// alternation — schedules are logical, so backoff cannot break the tie.
func buildSchedInstance() *schedtest.Harness {
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	h := schedtest.New()
	h.Go(func() {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			y.Set(tx, x.Get(tx)+1)
			return nil
		})
	})
	h.Go(func() {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			x.Set(tx, x.Get(tx)+1)
			return nil
		})
	})
	h.Go(func() {
		_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
			_ = x.Get(tx)
			_ = y.Get(tx)
			return nil
		})
	})
	// A diverged or starving schedule should fail fast as ErrStepLimit,
	// not burn real backoff sleeps for the default million steps.
	h.SetStepLimit(20_000)
	stm.SetSyncHook(h.Hook(), h.Proc())
	stm.StartTrace()
	return h
}

// runSchedInstance runs the standard instance under pol and returns the
// recorded history and the harness (for its park log and pick schedule).
func runSchedInstance(t *testing.T, pol sched.Policy) (*tm.History, *schedtest.Harness) {
	t.Helper()
	h := buildSchedInstance()
	defer stm.SetSyncHook(nil, nil)
	err := h.Run(pol)
	hist := stm.StopTrace()
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	return hist, h
}

// TestSchedRoundRobinOpacity replays the fair adversarial schedule
// against the real engine: maximal interleaving at every sync point, the
// oracle asserting opacity on the result.
func TestSchedRoundRobinOpacity(t *testing.T) {
	stm.SetClockStrategy(stm.GV4)
	hist, h := runSchedInstance(t, &sched.RoundRobin{})
	if len(h.Log()) == 0 {
		t.Fatal("harness recorded no parks — the sync hooks did not fire")
	}
	verifyHistory(t, hist)
}

// TestSchedScheduleDeterminism is the replay guarantee itself: the same
// schedule driven twice against the real engine yields byte-identical
// trace histories (worker ids as Proc, pool nondeterminism masked), and
// the schedule extracted from a run replays to the same history again.
func TestSchedScheduleDeterminism(t *testing.T) {
	stm.SetClockStrategy(stm.GV4)
	hist1, run1 := runSchedInstance(t, &sched.RoundRobin{})
	hist2, run2 := runSchedInstance(t, &sched.RoundRobin{})
	if fmt.Sprint(run1.Log()) != fmt.Sprint(run2.Log()) {
		t.Fatalf("same policy, different schedules:\n%v\n%v", run1.Log(), run2.Log())
	}
	if hist1.String() != hist2.String() {
		t.Fatalf("same schedule, different histories:\n%s\nvs\n%s", hist1, hist2)
	}
	// Replaying the extracted pick schedule reproduces it a third time.
	hist3, _ := runSchedInstance(t, sched.NewReplay(run1.Schedule()))
	if hist3.String() != hist1.String() {
		t.Fatalf("extracted schedule %v diverged on replay:\n%s\nvs\n%s", run1.Schedule(), hist3, hist1)
	}
}

// TestSchedExploreOpacity runs Explore's preemption-bounded enumeration
// against the real engine — every bounded schedule of the
// three-transaction instance must yield an opaque history — then replays one of the
// explored schedules twice and asserts byte-identical histories.
func TestSchedExploreOpacity(t *testing.T) {
	stm.SetClockStrategy(stm.GV4)
	defer stm.SetSyncHook(nil, nil)
	var schedules [][]int
	build := func() (sched.Runner, func() error) {
		h := buildSchedInstance()
		return h, func() error {
			hist := stm.StopTrace()
			if res := check.Opaque(hist); !res.OK {
				return fmt.Errorf("history not opaque:\n%s", hist)
			}
			schedules = append(schedules, h.Schedule())
			return nil
		}
	}
	// StepLimit prunes schedules that starve a retry loop; truncated runs
	// pay real backoff sleeps per step, so the limit is kept tight.
	res, err := sched.ExploreRunner(build, sched.ExploreOpts{MaxPreemptions: 1, MaxRuns: 64, StepLimit: 400})
	stm.SetSyncHook(nil, nil)
	stm.StopTrace()
	if err != nil {
		t.Fatalf("exploration found a violation: %v", err)
	}
	if res.Runs < 5 || len(schedules) < 2 {
		t.Fatalf("exploration barely branched (runs=%d, completed=%d) — the hooks are not creating decision points", res.Runs, len(schedules))
	}
	// The deepest explored schedule replays deterministically.
	target := schedules[len(schedules)-1]
	h1, _ := runSchedInstance(t, sched.NewReplay(target))
	h2, _ := runSchedInstance(t, sched.NewReplay(target))
	if h1.String() != h2.String() {
		t.Fatalf("explored schedule %v diverged on replay:\n%s\nvs\n%s", target, h1, h2)
	}
	verifyHistory(t, h1)
}

// TestSchedExtensionVsConcurrentCommit pins the first race-only
// pathology as a deterministic regression: a reader certifies x, a
// concurrent writer (a real second goroutine, unlike the nested-call
// orchestration in trace_opacity_test.go) commits y while the reader is
// parked, and the reader's now-stale read of y must extend — not abort —
// and still serialize after the writer.
func TestSchedExtensionVsConcurrentCommit(t *testing.T) {
	stm.SetClockStrategy(stm.GV4)
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	before := stm.ReadStats()
	attempts := 0
	gotY := -1
	h := schedtest.New()
	h.Go(func() {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			attempts++
			_ = x.Get(tx)
			gotY = y.Get(tx)
			return nil
		})
	})
	h.Go(func() {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			y.Set(tx, 7)
			return nil
		})
	})
	stm.SetSyncHook(h.Hook(), h.Proc())
	defer stm.SetSyncHook(nil, nil)
	stm.StartTrace()
	pol := &schedtest.PolicyFunc{Label: "park-reader-at-certify", PickFn: func(runnable []int, _ uint64) int {
		// Run the reader until it has certified its read of x, then the
		// writer to completion, then the reader again.
		if h.Count(0, syncpoint.PostReadCertify) == 0 && slices.Contains(runnable, 0) {
			return 0
		}
		if slices.Contains(runnable, 1) {
			return 1
		}
		return runnable[0]
	}}
	err := h.Run(pol)
	stm.SetSyncHook(nil, nil) // before the checks below run transactions of their own
	hist := stm.StopTrace()
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (extension must absorb the concurrent commit)", attempts)
	}
	if gotY != 7 {
		t.Fatalf("reader got y = %d, want the concurrently committed 7", gotY)
	}
	if d := stm.ReadStats().Sub(before); d.Extensions == 0 {
		t.Fatalf("stats delta %+v records no extension", d)
	}
	verifyHistory(t, hist)
}

// TestSchedGV7DrainVsStrategySwitch pins the second pathology: a worker
// commits once under GV7 (claiming a tick block), parks mid-commit at
// the clock stamp of its second transaction, and a concurrent worker
// switches the engine to GV4 and commits. The parked commit must stamp
// correctly under the new strategy and its cached block must drain, with
// the combined history opaque.
func TestSchedGV7DrainVsStrategySwitch(t *testing.T) {
	restore := stm.SetGV7BlockSizeForTest(2)
	defer restore()
	stm.SetClockStrategy(stm.GV7)
	defer stm.SetClockStrategy(stm.GV4)
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	before := stm.ReadStats()
	h := schedtest.New()
	h.Go(func() {
		_ = stm.Atomically(func(tx *stm.Tx) error { x.Set(tx, 1); return nil })
		_ = stm.Atomically(func(tx *stm.Tx) error { x.Set(tx, 2); return nil })
	})
	h.Go(func() {
		// Workers may run non-transactional code between grants: the
		// strategy switch races the parked GV7 commit by design.
		stm.SetClockStrategy(stm.GV4)
		_ = stm.Atomically(func(tx *stm.Tx) error { y.Set(tx, 3); return nil })
	})
	stm.SetSyncHook(h.Hook(), h.Proc())
	defer stm.SetSyncHook(nil, nil)
	stm.StartTrace()
	pol := &schedtest.PolicyFunc{Label: "switch-under-parked-stamp", PickFn: func(runnable []int, _ uint64) int {
		// Let the first worker commit once and park at its second
		// commit's clock stamp (write locks held), then run the switcher.
		if h.Count(0, syncpoint.PreClockStamp) < 2 && slices.Contains(runnable, 0) {
			return 0
		}
		if slices.Contains(runnable, 1) {
			return 1
		}
		return runnable[0]
	}}
	err := h.Run(pol)
	stm.SetSyncHook(nil, nil) // before the checks below run transactions of their own
	hist := stm.StopTrace()
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	if d := stm.ReadStats().Sub(before); d.ClockBlockClaims == 0 {
		t.Fatalf("stats delta %+v shows no GV7 block claim — the pathology precondition did not hold", d)
	}
	verifyHistory(t, hist)
	var gx, gy int
	if err := stm.Atomically(func(tx *stm.Tx) error {
		gx, gy = x.Get(tx), y.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if gx != 2 || gy != 3 {
		t.Fatalf("post-run state (x,y) = (%d,%d), want (2,3): a commit was lost across the switch", gx, gy)
	}
}

// TestSchedTicTocRTSRace pins the third pathology: under TicToc, a
// reader-writer certifies x at its old timestamp, a concurrent writer
// then overwrites both x and y, and the parked transaction's read of y
// cannot land in any validity interval — it must abort and replay
// against the new versions, never commit a mixed snapshot.
func TestSchedTicTocRTSRace(t *testing.T) {
	stm.SetClockStrategy(stm.TicToc)
	defer stm.SetClockStrategy(stm.GV4)
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	z := stm.NewVar(0)
	attempts := 0
	h := schedtest.New()
	h.Go(func() {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			attempts++
			a := x.Get(tx)
			b := y.Get(tx)
			z.Set(tx, a+b)
			return nil
		})
	})
	h.Go(func() {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			x.Set(tx, 10)
			y.Set(tx, 10)
			return nil
		})
	})
	stm.SetSyncHook(h.Hook(), h.Proc())
	defer stm.SetSyncHook(nil, nil)
	stm.StartTrace()
	pol := &schedtest.PolicyFunc{Label: "tictoc-straddle", PickFn: func(runnable []int, _ uint64) int {
		if h.Count(0, syncpoint.PostReadCertify) == 0 && slices.Contains(runnable, 0) {
			return 0
		}
		if slices.Contains(runnable, 1) {
			return 1
		}
		return runnable[0]
	}}
	err := h.Run(pol)
	stm.SetSyncHook(nil, nil) // before the checks below run transactions of their own
	hist := stm.StopTrace()
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	// Exactly three attempts, deterministically: the straddled attempt
	// aborts at the read of y (its interval cannot absorb the writer's
	// pair), the retry is promoted to the read-only fast path — it aborted
	// with reads but no buffered write — and demotes-and-restarts at
	// z.Set, and the third attempt commits on the full pipeline.
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (straddled abort, promotion demotion, commit)", attempts)
	}
	var gz int
	if err := stm.Atomically(func(tx *stm.Tx) error { gz = z.Get(tx); return nil }); err != nil {
		t.Fatal(err)
	}
	if gz != 20 {
		t.Fatalf("z = %d, want 20 (the replay must see the writer's pair)", gz)
	}
	verifyHistory(t, hist)
}

// TestSchedTicTocRetryNoSpuriousWakeup pins the Retry wakeup fix: a
// TicToc read-set entry logs the full (wts,rts) lock-word payload, so the
// sleeper's waitForChange probe must compare wts only. A foreign
// read-only reader's rts-advance CAS changes the payload without
// publishing a new value; waking on it would re-run the blocked
// transaction for nothing — a busy-retry pathology on read-hot Vars.
func TestSchedTicTocRetryNoSpuriousWakeup(t *testing.T) {
	stm.SetClockStrategy(stm.TicToc)
	defer stm.SetClockStrategy(stm.GV4)
	marker := stm.NewVar(0)
	flag := stm.NewVar(0)
	attempts := 0
	got := -1
	h := schedtest.New()
	h.Go(func() {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			attempts++
			v := flag.Get(tx)
			if v == 0 {
				tx.Retry()
			}
			got = v
			return nil
		})
	})
	h.Go(func() {
		// Commit the marker so its wts rises above flag's timestamps…
		_ = stm.Atomically(func(tx *stm.Tx) error {
			marker.Set(tx, 1)
			return nil
		})
		// …then take a read-only snapshot anchored at the marker: flag's
		// stale interval cannot absorb it, so the reader CASes flag's rts
		// forward — the foreign advance that used to wake the sleeper.
		_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
			_ = marker.Get(tx)
			_ = flag.Get(tx)
			return nil
		})
		// The legitimate wakeup: a committed write publishing a new wts.
		_ = stm.Atomically(func(tx *stm.Tx) error {
			flag.Set(tx, 1)
			return nil
		})
	})
	stm.SetSyncHook(h.Hook(), h.Proc())
	defer stm.SetSyncHook(nil, nil)
	before := stm.ReadStats()
	pol := &schedtest.PolicyFunc{Label: "tictoc-rts-wake", PickFn: func(runnable []int, _ uint64) int {
		switch {
		// Park the sleeper on flag first.
		case h.Count(0, syncpoint.SpinWait) == 0 && slices.Contains(runnable, 0):
			return 0
		// Drive the writer through the marker commit and the
		// rts-advancing snapshot, stopping at the Begin of its flag.Set.
		case h.Count(1, syncpoint.Begin) < 3 && slices.Contains(runnable, 1):
			return 1
		// Probe the sleeper repeatedly: with the fix every grant lands
		// straight back on SpinWait; the payload compare woke it here.
		case h.Count(0, syncpoint.SpinWait) < 6 && slices.Contains(runnable, 0):
			return 0
		case slices.Contains(runnable, 1):
			return 1
		default:
			return runnable[0]
		}
	}}
	err := h.Run(pol)
	stm.SetSyncHook(nil, nil) // before the stats read below
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	d := stm.ReadStats().Sub(before)
	if d.RTSAdvances == 0 {
		t.Fatal("the read-only snapshot never advanced flag's rts — the scenario lost its trigger")
	}
	// One parked attempt, one legitimate wakeup: the rts advance alone
	// must not have re-run the sleeper.
	if attempts != 2 {
		t.Fatalf("sleeper attempts = %d, want 2 (rts advance must not wake Retry)", attempts)
	}
	if got != 1 {
		t.Fatalf("sleeper observed flag = %d, want 1", got)
	}
	if n := h.Count(0, syncpoint.Begin); n != 2 {
		t.Fatalf("sleeper Begin parks = %d, want 2 (parked attempt + wakeup)", n)
	}
}
