package stm_test

// Abort-taxonomy tests: the per-class breakdown in Stats.AbortReasons
// must account for every abort exactly once — the conflict classes
// partition Stats.Aborts (minus budget refusals), Budget mirrors
// BudgetAborts, and ExplicitRetry counts user Retry signals. The
// contention-profiler hook is exercised alongside: a skewed workload
// must surface its hot Var in the sketch, labeled.

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/stm"
	"repro/stm/budget"
)

// hammer runs a contended read-modify-write workload over vars and
// returns the engine stats delta it produced.
func hammer(t *testing.T, workers, iters int, vars ...*stm.Var[int]) stm.Stats {
	t.Helper()
	before := stm.ReadStats()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := stm.Atomically(func(tx *stm.Tx) error {
					for _, v := range vars {
						v.Set(tx, v.Get(tx)+1)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return stm.ReadStats().Sub(before)
}

// checkPartition asserts the taxonomy partition invariant on a delta
// from a workload with no Retry calls and no budget policy: every abort
// carries exactly one conflict reason.
func checkPartition(t *testing.T, d stm.Stats) {
	t.Helper()
	r := d.AbortReasons
	conflict := r.ReadCertify + r.CommitValidation + r.LockBusy + r.Extension
	if conflict != d.Aborts {
		t.Fatalf("conflict reasons %+v sum to %d, want Aborts = %d", r, conflict, d.Aborts)
	}
	if r.Budget != 0 || r.ExplicitRetry != 0 {
		t.Fatalf("unmetered no-Retry workload counted Budget=%d ExplicitRetry=%d", r.Budget, r.ExplicitRetry)
	}
	if d.Aborts == 0 {
		t.Log("workload produced no aborts; partition check was vacuous")
	}
}

func TestAbortReasonsPartitionAborts(t *testing.T) {
	v := stm.NewVar(0)
	checkPartition(t, hammer(t, 8, 300, v))
}

func TestAbortReasonsPartitionAbortsTicToc(t *testing.T) {
	withTicToc(t)
	v := stm.NewVar(0)
	checkPartition(t, hammer(t, 8, 300, v))
}

func TestAbortReasonBudgetMirrorsBudgetAborts(t *testing.T) {
	stm.SetBudgetPolicy(budget.Fixed{Limit: 3})
	t.Cleanup(func() { stm.SetBudgetPolicy(nil) })
	vars := make([]*stm.Var[int], 8)
	for i := range vars {
		vars[i] = stm.NewVar(0)
	}
	before := stm.ReadStats()
	refused := 0
	for i := 0; i < 50; i++ {
		err := stm.Atomically(func(tx *stm.Tx) error {
			for _, v := range vars {
				v.Set(tx, v.Get(tx)+1)
			}
			return nil
		})
		if errors.Is(err, stm.ErrOutOfBudget) {
			refused++
		}
	}
	d := stm.ReadStats().Sub(before)
	if refused == 0 {
		t.Fatal("limit-3 policy refused nothing")
	}
	if d.AbortReasons.Budget != d.BudgetAborts {
		t.Fatalf("Budget reason = %d, want BudgetAborts = %d", d.AbortReasons.Budget, d.BudgetAborts)
	}
	if d.BudgetAborts != uint64(refused) {
		t.Fatalf("BudgetAborts = %d, want %d refusals", d.BudgetAborts, refused)
	}
}

func TestAbortReasonExplicitRetry(t *testing.T) {
	flag := stm.NewVar(false)
	before := stm.ReadStats()
	done := make(chan error, 1)
	// parked fires once the waiter has committed to calling Retry, which
	// counts ExplicitRetry before blocking — so the wake-up write below
	// cannot race the count away.
	parked := make(chan struct{}, 1)
	go func() {
		done <- stm.Atomically(func(tx *stm.Tx) error {
			if !flag.Get(tx) {
				select {
				case parked <- struct{}{}:
				default:
				}
				tx.Retry()
			}
			return nil
		})
	}()
	<-parked
	if err := stm.Atomically(func(tx *stm.Tx) error { flag.Set(tx, true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	d := stm.ReadStats().Sub(before)
	if d.AbortReasons.ExplicitRetry == 0 {
		t.Fatal("parked Retry not counted in ExplicitRetry")
	}
}

func TestContentionProfilerFindsHotVar(t *testing.T) {
	sk := telemetry.NewSketch(8, 1)
	stm.SetContentionProfiler(sk)
	t.Cleanup(func() { stm.SetContentionProfiler(nil) })
	hot := stm.NewVar(0)
	hot.Label("hot-counter")
	d := hammer(t, 8, 300, hot)
	if d.Aborts == 0 {
		t.Skip("no contention this run; nothing for the sketch to see")
	}
	for _, e := range sk.Top(8) {
		if e.Label == "hot-counter" {
			if e.Count == 0 {
				t.Fatal("hot Var present with zero count")
			}
			return
		}
	}
	t.Fatalf("hot Var missing from sketch top: %+v", sk.Top(8))
}

func TestLatencySampling(t *testing.T) {
	stm.SetLatencySampling(1)
	t.Cleanup(func() { stm.SetLatencySampling(0) })
	lat, att := stm.LatencyHists()
	c0, a0 := lat.Count(), att.Count()
	v := stm.NewVar(0)
	for i := 0; i < 10; i++ {
		if err := stm.Atomically(func(tx *stm.Tx) error { v.Set(tx, v.Get(tx)+1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if lat.Count()-c0 != 10 || att.Count()-a0 != 10 {
		t.Fatalf("sample-every-call recorded %d latencies / %d attempts, want 10 each",
			lat.Count()-c0, att.Count()-a0)
	}
	stm.SetLatencySampling(0)
	if err := stm.Atomically(func(tx *stm.Tx) error { v.Set(tx, v.Get(tx)+1); return nil }); err != nil {
		t.Fatal(err)
	}
	if lat.Count()-c0 != 10 {
		t.Fatal("disabled sampling still recorded")
	}
}
