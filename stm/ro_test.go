package stm_test

import (
	"errors"
	"testing"

	"repro/stm"
)

// TestAtomicallyROBasic: the RO fast path returns committed values, logs
// no read set, and counts its commit on the RO counter.
func TestAtomicallyROBasic(t *testing.T) {
	a := stm.NewVar(3)
	b := stm.NewVar(4)
	before := stm.ReadStats()
	sum := 0
	if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
		if !stm.IsRO(tx) || stm.IsPromoted(tx) {
			t.Error("AtomicallyRO descriptor not in explicit RO mode")
		}
		sum = a.Get(tx) + b.Get(tx)
		if stm.ReadSetLen(tx) != 0 {
			t.Errorf("RO path logged %d read-set entries, want 0", stm.ReadSetLen(tx))
		}
		if stm.ROCertifiedReads(tx) != 2 {
			t.Errorf("RO path certified %d reads, want 2", stm.ROCertifiedReads(tx))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Fatalf("sum = %d, want 7", sum)
	}
	d := stm.ReadStats().Sub(before)
	if d.Commits != 1 || d.ROCommits != 1 {
		t.Fatalf("stats delta = %+v, want exactly one RO commit", d)
	}
}

// TestAtomicallyROUserError: a non-nil error aborts without retrying.
func TestAtomicallyROUserError(t *testing.T) {
	v := stm.NewVar(1)
	sentinel := errors.New("nope")
	calls := 0
	if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
		calls++
		_ = v.Get(tx)
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1 (user errors must not retry)", calls)
	}
}

// TestAtomicallyROWritePanics: Set inside AtomicallyRO is a usage error.
func TestAtomicallyROWritePanics(t *testing.T) {
	v := stm.NewVar(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Set inside AtomicallyRO did not panic")
		}
	}()
	_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
		v.Set(tx, 2)
		return nil
	})
}

// TestAtomicallyRORetryPanics: Retry inside AtomicallyRO is a usage error
// (the RO path records no read set to wait on).
func TestAtomicallyRORetryPanics(t *testing.T) {
	v := stm.NewVar(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Retry inside AtomicallyRO did not panic")
		}
	}()
	_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
		_ = v.Get(tx)
		tx.Retry()
		return nil
	})
}

// conflictAbort forces the current attempt of a transaction that has read
// v to abort: a foreign commit overwrites v, so the attempt's re-read
// fails extension (the recorded entry is genuinely invalidated).
func conflictAbort[T any](tx *stm.Tx, v *stm.Var[T], newVal T) {
	if err := stm.Atomically(func(wtx *stm.Tx) error {
		v.Set(wtx, newVal)
		return nil
	}); err != nil {
		panic(err)
	}
	_ = v.Get(tx) // stale: extension revalidation fails, attempt aborts
}

// TestROPromotion: an Atomically attempt that aborts with an empty write
// set is retried on the RO fast path and commits there.
func TestROPromotion(t *testing.T) {
	a := stm.NewVar(0)
	b := stm.NewVar(10)
	before := stm.ReadStats()
	attempt := 0
	got := 0
	if err := stm.Atomically(func(tx *stm.Tx) error {
		attempt++
		if attempt == 1 {
			if stm.IsRO(tx) {
				t.Error("first attempt must run the full pipeline")
			}
			_ = a.Get(tx)
			conflictAbort(tx, a, 1)
			t.Error("unreachable: conflictAbort must abort the attempt")
		}
		if !stm.IsRO(tx) || !stm.IsPromoted(tx) {
			t.Error("retry of a read-only attempt was not promoted")
		}
		got = a.Get(tx) + b.Get(tx)
		if stm.ReadSetLen(tx) != 0 {
			t.Errorf("promoted attempt logged %d read-set entries, want 0", stm.ReadSetLen(tx))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempt != 2 || got != 11 {
		t.Fatalf("attempts = %d, got = %d; want 2 attempts and 11", attempt, got)
	}
	if d := stm.ReadStats().Sub(before); d.ROCommits == 0 {
		t.Fatalf("stats delta = %+v, want the promoted commit counted as RO", d)
	}
}

// TestRODemotionInPlace: a promoted attempt that writes before certifying
// any read demotes in place — no extra abort — and commits on the full
// pipeline.
func TestRODemotionInPlace(t *testing.T) {
	a := stm.NewVar(0)
	b := stm.NewVar(0)
	attempt := 0
	if err := stm.Atomically(func(tx *stm.Tx) error {
		attempt++
		if attempt == 1 {
			_ = a.Get(tx)
			conflictAbort(tx, a, 1)
		}
		if !stm.IsRO(tx) {
			t.Error("second attempt was not promoted")
		}
		b.Set(tx, 42) // no RO reads yet: demotes in place
		if stm.IsRO(tx) {
			t.Error("Set did not demote the promoted descriptor")
		}
		_ = a.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempt != 2 {
		t.Fatalf("attempts = %d, want 2 (in-place demotion must not abort)", attempt)
	}
	if b.Load() != 42 {
		t.Fatalf("b = %d, want 42", b.Load())
	}
}

// TestRODemotionRestart: a promoted attempt that writes after certifying
// reads must restart the attempt on the full pipeline (its RO reads were
// never logged and cannot be validated), and must not be promoted again.
func TestRODemotionRestart(t *testing.T) {
	a := stm.NewVar(0)
	b := stm.NewVar(0)
	attempt := 0
	if err := stm.Atomically(func(tx *stm.Tx) error {
		attempt++
		switch attempt {
		case 1:
			_ = a.Get(tx)
			conflictAbort(tx, a, 1)
		case 2:
			if !stm.IsRO(tx) {
				t.Error("second attempt was not promoted")
			}
			_ = a.Get(tx) // certified on the RO path, unlogged
			b.Set(tx, 7)  // must abort: the read above cannot be validated
			t.Error("unreachable: Set after an RO read must restart the attempt")
		default:
			if stm.IsRO(tx) {
				t.Error("demoted descriptor was promoted again")
			}
			b.Set(tx, a.Get(tx)+7)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempt != 3 {
		t.Fatalf("attempts = %d, want 3", attempt)
	}
	if b.Load() != 8 {
		t.Fatalf("b = %d, want 8 (a was 1 after the conflicting write)", b.Load())
	}
}

// TestROSnapshotConsistency: an RO transaction that straddles a foreign
// multi-Var commit must abort and replay rather than return a mixed
// snapshot.
func TestROSnapshotConsistency(t *testing.T) {
	a := stm.NewVar(0)
	b := stm.NewVar(0)
	attempt := 0
	var gotA, gotB int
	if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
		attempt++
		gotA = a.Get(tx)
		if attempt == 1 {
			// A foreign commit moves both Vars after our first read.
			if err := stm.Atomically(func(wtx *stm.Tx) error {
				a.Set(wtx, 1)
				b.Set(wtx, 1)
				return nil
			}); err != nil {
				return err
			}
		}
		gotB = b.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempt != 2 {
		t.Fatalf("attempts = %d, want 2 (the straddled attempt must abort)", attempt)
	}
	if gotA != 1 || gotB != 1 {
		t.Fatalf("snapshot = (%d,%d), want the post-commit (1,1)", gotA, gotB)
	}
}

// TestROUnderGV6: the RO path must preserve sequential progress under GV6,
// where committed versions run ahead of the clock: the first read's
// empty-read-set extension (after helpClock) absorbs the stale timestamp.
func TestROUnderGV6(t *testing.T) {
	stm.SetClockStrategy(stm.GV6)
	defer stm.SetClockStrategy(stm.GV4)
	vars := make([]*stm.Var[int], 8)
	for i := range vars {
		vars[i] = stm.NewVar(0)
	}
	// Sequential writer transactions: under GV6 most leave the clock
	// untouched, so some versions are ahead of it.
	for round := 1; round <= 20; round++ {
		for _, v := range vars {
			if err := stm.Atomically(func(tx *stm.Tx) error {
				v.Set(tx, round)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		sum := 0
		if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
			sum = 0
			for _, v := range vars {
				sum += v.Get(tx)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum != round*len(vars) {
			t.Fatalf("round %d: RO sum = %d, want %d", round, sum, round*len(vars))
		}
	}
}
