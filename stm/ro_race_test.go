package stm_test

// Race-detector stress for the read-only fast path: concurrent
// AtomicallyRO scans must observe write-atomic snapshots while writers
// churn the containers. The Makefile's race target and CI's race job run
// these under -race; the GV6 sub-tests exercise the fast path with
// committed versions running ahead of the clock (the regime where the RO
// path's only extension is the empty-read-set re-begin plus helpClock).

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/stm"
)

// runROMapStress: writers transfer units between Zipf-ish key pairs of an
// stm.Map (the total is conserved); RO readers sum every key in one
// AtomicallyRO transaction and must always see the exact total.
func runROMapStress(t *testing.T) {
	const (
		nkeys   = 32
		perKey  = 100
		readers = 4
		writers = 2
		roScans = 300
	)
	m := stm.NewMap[int](16)
	keys := make([]string, nkeys)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := range keys {
			keys[i] = fmt.Sprintf("acct%02d", i)
			m.Put(tx, keys[i], perKey)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	before := stm.ReadStats()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 1
			for !stop.Load() {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := keys[(rng>>20)%nkeys]
				to := keys[(rng>>40)%nkeys]
				if from == to {
					continue
				}
				if err := stm.Atomically(func(tx *stm.Tx) error {
					f, _ := m.Get(tx, from)
					g, _ := m.Get(tx, to)
					m.Put(tx, from, f-1)
					m.Put(tx, to, g+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer stop.Store(true)
			for i := 0; i < roScans; i++ {
				sum := 0
				if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
					sum = 0
					for _, k := range keys {
						v, present := m.Get(tx, k)
						if !present {
							return fmt.Errorf("key %s missing", k)
						}
						sum += v
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if sum != nkeys*perKey {
					t.Errorf("RO snapshot sum = %d, want %d", sum, nkeys*perKey)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d := stm.ReadStats().Sub(before); d.ROCommits == 0 {
		t.Fatalf("stats delta = %+v, want RO commits (the fast path must have run)", d)
	}
}

// runROOrderedMapStress: writers insert and delete paired keys ("a…"/"b…")
// of an stm.OrderedMap atomically; RO ordered scans must always see keys
// in strictly increasing order with the pairing intact — never half of an
// insert or delete.
func runROOrderedMapStress(t *testing.T) {
	const (
		npairs  = 24
		readers = 4
		writers = 2
		roScans = 300
	)
	m := stm.NewOrderedMap[int]()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := 0; i < npairs; i += 2 {
			m.Put(tx, fmt.Sprintf("a%02d", i), i)
			m.Put(tx, fmt.Sprintf("b%02d", i), i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(w)*48271 + 7
			for !stop.Load() {
				rng = rng*6364136223846793005 + 1442695040888963407
				i := int((rng >> 33) % npairs)
				ka, kb := fmt.Sprintf("a%02d", i), fmt.Sprintf("b%02d", i)
				if err := stm.Atomically(func(tx *stm.Tx) error {
					if m.Contains(tx, ka) {
						m.Delete(tx, ka)
						m.Delete(tx, kb)
					} else {
						m.Put(tx, ka, i)
						m.Put(tx, kb, i)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer stop.Store(true)
			for i := 0; i < roScans; i++ {
				var as, bs int
				prev := ""
				ok := true
				if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
					as, bs, prev, ok = 0, 0, "", true
					m.Range(tx, "", "", func(k string, _ int) bool {
						if prev != "" && k <= prev {
							ok = false
							return false
						}
						prev = k
						if strings.HasPrefix(k, "a") {
							as++
						} else {
							bs++
						}
						return true
					})
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if !ok {
					t.Error("RO scan delivered keys out of order")
					return
				}
				if as != bs {
					t.Errorf("RO scan saw %d a-keys but %d b-keys: a torn pair insert/delete", as, bs)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestROStressMap and TestROStressOrderedMap run the stress under the
// default GV4+extension pipeline and under GV6 (versions ahead of the
// clock), the two regimes the RO path must survive.
func TestROStressMap(t *testing.T) {
	for _, strat := range []stm.ClockStrategy{stm.GV4, stm.GV6} {
		t.Run(strat.String(), func(t *testing.T) {
			stm.SetClockStrategy(strat)
			defer stm.SetClockStrategy(stm.GV4)
			runROMapStress(t)
		})
	}
}

func TestROStressOrderedMap(t *testing.T) {
	for _, strat := range []stm.ClockStrategy{stm.GV4, stm.GV6} {
		t.Run(strat.String(), func(t *testing.T) {
			stm.SetClockStrategy(strat)
			defer stm.SetClockStrategy(stm.GV4)
			runROOrderedMapStress(t)
		})
	}
}
