package stm_test

// Differential fuzzing of the transactional containers: a fuzzed op
// sequence is applied both to the container (through real transactions,
// including batched multi-write transactions that cross the write-set
// slice→map promotion threshold, and AtomicallyRO readbacks) and to a
// plain map model, sequentially. Any divergence — values, presence, size,
// ordering — fails. The seed corpora cover the structural edges: bucket
// collision chains (few buckets), write-set promotion (>24 writes in one
// transaction), delete/reinsert of every key (the OrderedMap rebuilds
// deterministic towers), and the tallest/shortest towers of the keyspace.
//
// CI runs these as a smoke job (`go test -fuzz=Fuzz<Target>
// -fuzztime=10s`, see make fuzz-smoke); a plain `go test` replays just
// the seeds.

import (
	"fmt"
	"sort"
	"testing"

	"repro/stm"
)

// fuzzKeys is the shared fuzz keyspace: small enough that collisions,
// re-insertions and neighbouring skiplist towers happen constantly.
const fuzzKeyCount = 48

func fuzzKey(b byte) string { return fmt.Sprintf("k%02d", int(b)%fuzzKeyCount) }

// fuzzSeeds builds the shared seed corpus. Format: ops of 3 bytes each
// (kind, key, value).
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	// Insert every key, then delete every key: full churn, every tower
	// height in the keyspace built and torn down.
	var churn []byte
	for i := 0; i < fuzzKeyCount; i++ {
		churn = append(churn, 0, byte(i), byte(i))
	}
	for i := 0; i < fuzzKeyCount; i++ {
		churn = append(churn, 3, byte(i), 0)
	}
	seeds = append(seeds, churn)
	// One batched transaction of 32 puts: crosses the write-set promotion
	// threshold (24) inside a single commit, then point-reads everything.
	batch := []byte{6, 0, 32}
	for i := 0; i < fuzzKeyCount; i++ {
		batch = append(batch, 4, byte(i), 0)
	}
	seeds = append(seeds, batch)
	// Tallest- and shortest-tower keys of the keyspace: insert, delete,
	// re-insert (deterministic towers must rebuild identically), with
	// neighbours present.
	tallest, shortest := 0, 0
	for i := 1; i < fuzzKeyCount; i++ {
		if stm.KeyTowerHeight(fuzzKey(byte(i))) > stm.KeyTowerHeight(fuzzKey(byte(tallest))) {
			tallest = i
		}
		if stm.KeyTowerHeight(fuzzKey(byte(i))) < stm.KeyTowerHeight(fuzzKey(byte(shortest))) {
			shortest = i
		}
	}
	towers := []byte{6, 0, 48} // everything present
	for _, k := range []int{tallest, shortest} {
		towers = append(towers,
			3, byte(k), 0, // delete
			2, byte(k), 9, // contains/get while absent
			0, byte(k), 7, // re-insert
			5, 0, 0, // ordered window scan
		)
	}
	seeds = append(seeds, towers)
	// Mixed point ops with interleaved verification.
	seeds = append(seeds, []byte{
		0, 1, 10, 0, 2, 20, 4, 1, 0, 3, 1, 0, 4, 1, 0, 0, 1, 30,
		5, 0, 0, 3, 2, 0, 7, 0, 0, 6, 5, 30, 5, 2, 0,
	})
	return seeds
}

// FuzzMap drives a fuzzed op sequence against stm.Map and a plain map
// model. The 4-bucket map makes every bucket a long collision chain, so
// association-list edits (replace middle, delete head/tail) are constantly
// exercised.
func FuzzMap(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, ops []byte) {
		m := stm.NewMap[int](4)
		model := map[string]int{}
		for i := 0; i+2 < len(ops); i += 3 {
			kind, kb, val := ops[i]%8, ops[i+1], int(ops[i+2])
			k := fuzzKey(kb)
			switch kind {
			case 0, 1: // put
				if err := stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, val)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				model[k] = val
			case 2: // transactional get
				var got int
				var present bool
				if err := stm.Atomically(func(tx *stm.Tx) error {
					got, present = m.Get(tx, k)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				want, wantPresent := model[k]
				if present != wantPresent || (present && got != want) {
					t.Fatalf("Get(%s) = %d,%v; model %d,%v", k, got, present, want, wantPresent)
				}
			case 3: // delete
				var deleted bool
				if err := stm.Atomically(func(tx *stm.Tx) error {
					deleted = m.Delete(tx, k)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if _, wantPresent := model[k]; deleted != wantPresent {
					t.Fatalf("Delete(%s) = %v; model presence %v", k, deleted, wantPresent)
				}
				delete(model, k)
			case 4: // read-only get (the zero-validation fast path)
				var got int
				var present bool
				if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
					got, present = m.Get(tx, k)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				want, wantPresent := model[k]
				if present != wantPresent || (present && got != want) {
					t.Fatalf("RO Get(%s) = %d,%v; model %d,%v", k, got, present, want, wantPresent)
				}
			case 5: // size checks, transactional and snapshot
				var n int
				if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
					n = m.Len(tx)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if n != len(model) || m.SnapshotLen() != len(model) {
					t.Fatalf("Len = %d, SnapshotLen = %d; model %d", n, m.SnapshotLen(), len(model))
				}
			case 6: // batched puts in ONE transaction (write-set promotion)
				count := val%33 + 1
				if err := stm.Atomically(func(tx *stm.Tx) error {
					for j := 0; j < count; j++ {
						m.Put(tx, fuzzKey(kb+byte(j)), val+j)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < count; j++ {
					model[fuzzKey(kb+byte(j))] = val + j
				}
			case 7: // snapshot get
				got, present := m.SnapshotGet(k)
				want, wantPresent := model[k]
				if present != wantPresent || (present && got != want) {
					t.Fatalf("SnapshotGet(%s) = %d,%v; model %d,%v", k, got, present, want, wantPresent)
				}
			}
		}
		// Final full readback in one RO transaction.
		var keys []string
		if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
			keys = nil
			for k := range model {
				if got, present := m.Get(tx, k); !present || got != model[k] {
					return fmt.Errorf("final readback of %s: got %d,%v want %d", k, got, present, model[k])
				}
				keys = append(keys, k)
			}
			if n := m.Len(tx); n != len(model) {
				return fmt.Errorf("final Len = %d, model %d", n, len(model))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		_ = keys
	})
}

// FuzzOrderedMap drives a fuzzed op sequence against stm.OrderedMap and a
// plain map model with sorted-key comparison: the skiplist must agree with
// the model not just on membership but on order — Min, Max, Keys and every
// Range window.
func FuzzOrderedMap(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, ops []byte) {
		m := stm.NewOrderedMap[int]()
		model := map[string]int{}
		sortedKeys := func() []string {
			out := make([]string, 0, len(model))
			for k := range model {
				out = append(out, k)
			}
			sort.Strings(out)
			return out
		}
		for i := 0; i+2 < len(ops); i += 3 {
			kind, kb, val := ops[i]%8, ops[i+1], int(ops[i+2])
			k := fuzzKey(kb)
			switch kind {
			case 0, 1: // put
				if err := stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, val)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				model[k] = val
			case 2: // get + contains
				var got int
				var present, contains bool
				if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
					got, present = m.Get(tx, k)
					contains = m.Contains(tx, k)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				want, wantPresent := model[k]
				if present != wantPresent || contains != wantPresent || (present && got != want) {
					t.Fatalf("Get(%s) = %d,%v contains=%v; model %d,%v", k, got, present, contains, want, wantPresent)
				}
			case 3: // delete
				var deleted bool
				if err := stm.Atomically(func(tx *stm.Tx) error {
					deleted = m.Delete(tx, k)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if _, wantPresent := model[k]; deleted != wantPresent {
					t.Fatalf("Delete(%s) = %v; model presence %v", k, deleted, wantPresent)
				}
				delete(model, k)
			case 4: // min/max
				var minK, maxK string
				var minOK, maxOK bool
				if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
					minK, _, minOK = m.Min(tx)
					maxK, _, maxOK = m.Max(tx)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				keys := sortedKeys()
				if minOK != (len(keys) > 0) || maxOK != (len(keys) > 0) {
					t.Fatalf("Min/Max ok = %v/%v with %d model keys", minOK, maxOK, len(keys))
				}
				if len(keys) > 0 && (minK != keys[0] || maxK != keys[len(keys)-1]) {
					t.Fatalf("Min/Max = %s/%s; model %s/%s", minK, maxK, keys[0], keys[len(keys)-1])
				}
			case 5: // ordered range window vs the model
				from, to := fuzzKey(kb), fuzzKey(kb+byte(val)%16)
				if to < from {
					from, to = to, from
				}
				var got []string
				if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
					got = nil
					m.Range(tx, from, to, func(k string, v int) bool {
						if v != model[k] {
							t.Errorf("Range value for %s = %d, model %d", k, v, model[k])
						}
						got = append(got, k)
						return true
					})
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				var want []string
				for _, k := range sortedKeys() {
					if k >= from && k < to {
						want = append(want, k)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("Range[%s,%s) saw %v, model %v", from, to, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("Range[%s,%s) saw %v, model %v", from, to, got, want)
					}
				}
			case 6: // batched puts in one transaction (write-set promotion)
				count := val%33 + 1
				if err := stm.Atomically(func(tx *stm.Tx) error {
					for j := 0; j < count; j++ {
						m.Put(tx, fuzzKey(kb+byte(j)), val+j)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < count; j++ {
					model[fuzzKey(kb+byte(j))] = val + j
				}
			case 7: // snapshot paths
				got, present := m.SnapshotGet(k)
				want, wantPresent := model[k]
				if present != wantPresent || (present && got != want) {
					t.Fatalf("SnapshotGet(%s) = %d,%v; model %d,%v", k, got, present, want, wantPresent)
				}
				if m.SnapshotLen() != len(model) {
					t.Fatalf("SnapshotLen = %d, model %d", m.SnapshotLen(), len(model))
				}
			}
		}
		// Final: full ordered readback must equal the sorted model exactly.
		var got []string
		if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
			got = nil
			prev := ""
			m.Range(tx, "", "", func(k string, v int) bool {
				if prev != "" && k <= prev {
					t.Errorf("Range delivered %q after %q: not strictly increasing", k, prev)
				}
				prev = k
				if v != model[k] {
					t.Errorf("final value for %s = %d, model %d", k, v, model[k])
				}
				got = append(got, k)
				return true
			})
			if n := m.Len(tx); n != len(model) {
				t.Errorf("final Len = %d, model %d", n, len(model))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := sortedKeys()
		if len(got) != len(want) {
			t.Fatalf("final keys %v, model %v", got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("final keys %v, model %v", got, want)
			}
		}
	})
}
