// Package budget defines the work-metering vocabulary shared by the
// native STM engines (repro/stm, repro/stm/norecstm, repro/stm/mvstm):
// a Policy grants each transaction a budget of abstract work units, the
// engines charge the budget as the transaction consumes the resources the
// paper's complexity results bound — steps, read/write-set entries,
// retries, and (for the multi-version engine) retained version space —
// and a transaction that exhausts its grant aborts cleanly with
// ErrOutOfBudget instead of starving every other client.
//
// The design is the STM analogue of a VM gas meter: the engine is the
// interpreter, the transaction is the program, and the budget is its gas.
// On top of the meter, Controller implements abort-ratio-driven admission
// control: an AIMD token bucket that throttles transaction admission when
// the engine-wide abort ratio spikes, turning the contention cliff into a
// flat graceful-degradation curve.
//
// The package is deliberately dependency-free (engines import it, never
// the reverse) so all three engines share one error value and one cost
// vocabulary: errors.Is(err, budget.ErrOutOfBudget) identifies a metering
// abort from any engine.
package budget

import "errors"

// ErrOutOfBudget is returned by an engine's Atomically/AtomicallyRO when
// the transaction exhausts the budget its Policy granted. The abort is
// clean: locks released, buffered writes discarded, pooled descriptors
// recycled, epoch registrations dropped, and the attempt counted in the
// engine's abort statistics (Stats.BudgetAborts ⊆ Stats.Aborts).
//
// Each engine re-exports this value (e.g. stm.ErrOutOfBudget) so callers
// need not import this package; all aliases compare equal.
var ErrOutOfBudget = errors.New("stm: transaction exceeded its work budget")

// Costs prices each metered resource in abstract work units. A zero cost
// makes the resource free; the zero Costs value meters nothing (use
// UnitCosts for the natural uniform pricing).
type Costs struct {
	// Read is charged per read-set entry (per certified read on the
	// read-only paths, which log no entries).
	Read uint64
	// Write is charged per write-set entry.
	Write uint64
	// Step is charged per transactional operation and per unit of hidden
	// engine work on the transaction's behalf: each Get/Set, each entry
	// revalidated by a timestamp extension or value-validation scan, each
	// version walked by a multi-version snapshot read.
	Step uint64
	// Retry is charged per aborted attempt before the re-run, so a
	// transaction caught in a pathological conflict loop runs out of
	// budget instead of retrying forever.
	Retry uint64
	// Version is charged by the multi-version engine per version retained
	// in the chains a commit is about to publish — the space half of the
	// paper's time/space trade. Single-version engines ignore it.
	Version uint64
}

// UnitCosts prices every resource at one work unit: the budget limit then
// reads as "total operations + retained versions".
func UnitCosts() Costs {
	return Costs{Read: 1, Write: 1, Step: 1, Retry: 1, Version: 1}
}

// Policy grants budgets to transactions. Grant is called once per
// Atomically/AtomicallyRO call (not per attempt: retries spend the same
// grant, which is what makes the retry charge meaningful) and must be
// safe for concurrent use.
type Policy interface {
	Grant() (limit uint64, costs Costs)
}

// Fixed is the simplest Policy: every transaction gets the same limit at
// the same prices. A zero Costs field defaults to UnitCosts, so
// Fixed{Limit: 1000} is the common "at most 1000 operations" meter.
type Fixed struct {
	Limit uint64
	Costs Costs
}

// Grant implements Policy.
func (f Fixed) Grant() (uint64, Costs) {
	c := f.Costs
	if c == (Costs{}) {
		c = UnitCosts()
	}
	return f.Limit, c
}
