package budget

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestFixedGrantDefaultsToUnitCosts(t *testing.T) {
	limit, costs := Fixed{Limit: 42}.Grant()
	if limit != 42 {
		t.Fatalf("limit = %d, want 42", limit)
	}
	if costs != UnitCosts() {
		t.Fatalf("costs = %+v, want unit costs", costs)
	}
	custom := Costs{Read: 2, Step: 1}
	_, costs = Fixed{Limit: 7, Costs: custom}.Grant()
	if costs != custom {
		t.Fatalf("costs = %+v, want %+v", costs, custom)
	}
}

func TestControllerDisengagedIsFree(t *testing.T) {
	var commits atomic.Uint64
	c := NewController(func() (uint64, uint64) { return commits.Load(), 0 })
	c.MinSampleTotal = 1
	for i := 0; i < 1000; i++ {
		commits.Add(1)
		c.Admit()
	}
	if c.Engaged() {
		t.Fatal("controller engaged on an abort-free workload")
	}
}

func TestControllerEngagesOnAbortSpike(t *testing.T) {
	var commits, aborts atomic.Uint64
	c := NewController(func() (uint64, uint64) { return commits.Load(), aborts.Load() })
	c.SamplePeriod = 0 // sample every Admit: the test controls the window
	c.MinSampleTotal = 1
	c.MinRate = 100

	// A window that is almost all aborts must engage the bucket.
	commits.Add(10)
	aborts.Add(90)
	c.Admit()
	if !c.Engaged() {
		t.Fatal("controller did not engage at 90% abort ratio")
	}

	// While engaged, admissions are rate-limited: after draining the
	// burst, each Admit costs ~1/rate seconds. Halving pressure repeatedly
	// drives the rate to MinRate.
	for i := 0; i < 20; i++ {
		commits.Add(10)
		aborts.Add(90)
		c.Admit()
	}
	if got := c.Rate(); got != c.MinRate {
		t.Fatalf("rate = %v after sustained abort storm, want MinRate %v", got, c.MinRate)
	}

	start := time.Now()
	for i := 0; i < 5; i++ {
		commits.Add(10)
		aborts.Add(90)
		c.Admit()
	}
	// 5 admissions at 100/s with at most 1 token of stored burst should
	// take roughly 40ms; allow wide slack but reject "no throttling".
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 admissions at MinRate took only %v: bucket is not throttling", elapsed)
	}
}

func TestControllerRecoversAndDisengages(t *testing.T) {
	var commits, aborts atomic.Uint64
	c := NewController(func() (uint64, uint64) { return commits.Load(), aborts.Load() })
	c.SamplePeriod = 0
	c.MinSampleTotal = 1
	c.MinRate = 1000

	commits.Add(10)
	aborts.Add(90)
	c.Admit()
	if !c.Engaged() {
		t.Fatal("controller did not engage")
	}
	// Healthy windows: additive increase climbs back to MaxRate and
	// disengages (MaxRate/10 per window → at most 10 windows plus the
	// climb from wherever decrease left the rate).
	for i := 0; i < 30 && c.Engaged(); i++ {
		commits.Add(100)
		c.Admit()
	}
	if c.Engaged() {
		t.Fatal("controller never disengaged on an abort-free recovery")
	}
}

func TestControllerTryAdmitDisengaged(t *testing.T) {
	var commits atomic.Uint64
	c := NewController(func() (uint64, uint64) { return commits.Load(), 0 })
	c.MinSampleTotal = 1
	for i := 0; i < 1000; i++ {
		commits.Add(1)
		if !c.TryAdmit() {
			t.Fatal("TryAdmit refused on an abort-free workload")
		}
	}
	if c.Engaged() {
		t.Fatal("controller engaged on an abort-free workload")
	}
}

func TestControllerTryAdmitRefusesUnderStorm(t *testing.T) {
	var commits, aborts atomic.Uint64
	c := NewController(func() (uint64, uint64) { return commits.Load(), aborts.Load() })
	c.SamplePeriod = 0 // sample every call: the test controls the window
	c.MinSampleTotal = 1
	c.MinRate = 100

	commits.Add(10)
	aborts.Add(90)
	if !c.TryAdmit() {
		// The engaging call itself may or may not win the burst token;
		// either way the controller must now be engaged.
		t.Log("engaging TryAdmit refused (bucket empty)")
	}
	if !c.Engaged() {
		t.Fatal("controller did not engage at 90% abort ratio")
	}

	// Non-blocking under pressure: a tight refused loop must return
	// immediately rather than sleeping off debt like Admit does.
	start := time.Now()
	refused := 0
	for i := 0; i < 1000; i++ {
		commits.Add(10)
		aborts.Add(90)
		if !c.TryAdmit() {
			refused++
		}
	}
	if refused == 0 {
		t.Fatal("no refusals from an engaged bucket under a sustained abort storm")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("1000 TryAdmit calls took %v: refusals are blocking", elapsed)
	}
}

func TestRateLimiterFixedBucket(t *testing.T) {
	rl := NewRateLimiter(100)
	if !rl.Engaged() {
		t.Fatal("fixed-rate limiter must be permanently engaged")
	}
	if !rl.TryAdmit() {
		t.Fatal("first TryAdmit refused: the bucket should start with a burst")
	}
	// Drain the burst: a tight loop cannot be admitted 1000 times at
	// 100/s; almost everything must be refused.
	refused := 0
	for i := 0; i < 1000; i++ {
		if !rl.TryAdmit() {
			refused++
		}
	}
	if refused < 900 {
		t.Fatalf("only %d/1000 refusals from a drained 100/s bucket", refused)
	}
	// Refill: ~50ms at 100/s is ~5 tokens.
	time.Sleep(50 * time.Millisecond)
	if !rl.TryAdmit() {
		t.Fatal("TryAdmit refused after refill interval")
	}
	if rl.Engaged() == false || rl.Rate() != 100 {
		t.Fatalf("limiter drifted: engaged=%v rate=%v, want true/100", rl.Engaged(), rl.Rate())
	}
}
