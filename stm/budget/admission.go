package budget

import (
	"sync"
	"sync/atomic"
	"time"
)

// Admitter gates transaction admission. Engines call Admit once per
// update-transaction call (before the first attempt); implementations may
// block the caller to shed load. Admit must be safe for concurrent use.
type Admitter interface {
	Admit()
}

// Controller is an abort-ratio-driven admission controller: an AIMD token
// bucket that stays out of the way while the engine is healthy and
// throttles admission when the abort ratio spikes.
//
// It samples a cumulative (commits, aborts) counter pair — typically an
// engine's ReadStats, or a tenant-local pair — at most once per
// SamplePeriod and computes the abort ratio over the window since the
// previous sample. While the ratio stays at or below HighWater the
// controller is disengaged and Admit is a single atomic load. When the
// ratio exceeds HighWater the controller engages and halves its admission
// rate (multiplicative decrease, floored at MinRate); each healthy window
// at or below LowWater then adds MaxRate/10 back (additive increase), and
// reaching MaxRate disengages the bucket entirely.
//
// The zero Controller is not ready for use; create one with NewController.
type Controller struct {
	// HighWater engages throttling when the windowed abort ratio exceeds
	// it; LowWater lets the rate recover when the ratio falls back under.
	// The gap between them is deliberate hysteresis.
	HighWater float64
	LowWater  float64
	// MinRate and MaxRate bound the admission rate in transactions per
	// second while engaged.
	MinRate float64
	MaxRate float64
	// SamplePeriod rate-limits the stats sampling; MinSampleTotal is the
	// fewest attempts (commits+aborts) in a window worth reacting to —
	// smaller windows accumulate into the next sample instead.
	SamplePeriod   time.Duration
	MinSampleTotal uint64

	sample func() (commits, aborts uint64)

	engaged atomic.Bool
	calls   atomic.Uint64 // disengaged Admit counter: sample every 256th call
	mu      sync.Mutex
	rate    float64 // admissions per second while engaged
	tokens  float64 // may go negative: queued admission debt
	last    time.Time
	lastS   time.Time
	prevC   uint64
	prevA   uint64
}

// NewController returns a Controller with default thresholds, fed by
// sample, which must return cumulative (commits, aborts) counts — e.g.
//
//	budget.NewController(func() (uint64, uint64) {
//	    s := stm.ReadStats()
//	    return s.Commits, s.Aborts
//	})
func NewController(sample func() (commits, aborts uint64)) *Controller {
	return &Controller{
		HighWater:      0.5,
		LowWater:       0.2,
		MinRate:        500,
		MaxRate:        2e6,
		SamplePeriod:   time.Millisecond,
		MinSampleTotal: 32,
		sample:         sample,
		rate:           2e6,
	}
}

// Admit implements Admitter: it returns immediately while the controller
// is disengaged and otherwise takes one token from the bucket, sleeping
// off any debt. The disengaged fast path costs two uncontended atomics —
// no clock read, no lock: only every 256th call (still rate-limited by
// SamplePeriod) pays for a stats sample, so a healthy engine admitting
// millions of transactions a second re-checks its abort ratio within a
// few microseconds of load while the other calls sail through. With
// SamplePeriod == 0 (test mode) every call samples, so the admission
// tests can control the window exactly.
func (c *Controller) Admit() {
	if !c.engaged.Load() {
		if c.SamplePeriod > 0 && c.calls.Add(1)&255 != 0 {
			return
		}
		c.mu.Lock()
		c.sampleLocked(time.Now())
		engaged := c.engaged.Load()
		c.mu.Unlock()
		if !engaged {
			return
		}
	}
	c.take()
}

// TryAdmit is the non-blocking form of Admit: it reports whether the
// caller was admitted instead of sleeping off token debt. A disengaged
// controller admits everything; an engaged one admits only while the
// bucket holds a whole token, never borrowing against future refill.
// Serving tiers use this to turn overload into an immediate refusal
// (HTTP 429) rather than a queued wait.
func (c *Controller) TryAdmit() bool {
	if !c.engaged.Load() {
		if c.SamplePeriod > 0 && c.calls.Add(1)&255 != 0 {
			return true
		}
		c.mu.Lock()
		c.sampleLocked(time.Now())
		engaged := c.engaged.Load()
		c.mu.Unlock()
		if !engaged {
			return true
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.sampleLocked(now)
	if !c.engaged.Load() {
		return true
	}
	elapsed := now.Sub(c.last).Seconds()
	c.last = now
	burst := max(1, c.rate/100)
	c.tokens = min(burst, c.tokens+elapsed*c.rate)
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// NewRateLimiter returns a Controller reduced to a plain fixed-rate
// token bucket: permanently engaged at rate admissions per second, with
// no stats feedback to disengage it. It is the degenerate Controller a
// per-client limiter wants — Admit blocks to pace the caller, TryAdmit
// refuses instead.
func NewRateLimiter(rate float64) *Controller {
	if rate <= 0 {
		rate = 1
	}
	c := &Controller{
		HighWater: 1,
		LowWater:  0,
		MinRate:   rate,
		MaxRate:   rate,
		rate:      rate,
		tokens:    max(1, rate/100), // start with a full burst
		last:      time.Now(),
	}
	c.engaged.Store(true)
	return c
}

// Engaged reports whether the controller is currently throttling.
func (c *Controller) Engaged() bool { return c.engaged.Load() }

// Rate returns the current admission rate (meaningful while engaged).
func (c *Controller) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rate
}

// sampleLocked re-reads the counters at most once per SamplePeriod and
// applies the AIMD rule. Callers hold c.mu.
func (c *Controller) sampleLocked(now time.Time) {
	if c.sample == nil {
		// A fixed-rate limiter (NewRateLimiter) has no feedback loop: its
		// engagement and rate are permanent.
		return
	}
	if now.Sub(c.lastS) < c.SamplePeriod {
		return
	}
	commits, aborts := c.sample()
	dc, da := commits-c.prevC, aborts-c.prevA
	if dc+da < c.MinSampleTotal {
		// Too little traffic to judge; leave prev in place so the window
		// keeps accumulating, but do not resample before the next period.
		c.lastS = now
		return
	}
	c.prevC, c.prevA, c.lastS = commits, aborts, now
	ratio := float64(da) / float64(dc+da)
	switch {
	case ratio > c.HighWater:
		if !c.engaged.Load() {
			c.rate = c.MaxRate
			c.tokens = 0
			c.last = now
			c.engaged.Store(true)
		}
		c.rate = max(c.MinRate, c.rate/2)
	case c.engaged.Load() && ratio <= c.LowWater:
		c.rate += c.MaxRate / 10
		if c.rate >= c.MaxRate {
			c.rate = c.MaxRate
			c.engaged.Store(false)
		}
	}
}

// take removes one token, refilling by elapsed time first, and sleeps off
// the debt when the bucket is dry. Debt is reserved under the lock and
// slept off outside it, so concurrent waiters queue fairly instead of
// stampeding the refill.
func (c *Controller) take() {
	c.mu.Lock()
	now := time.Now()
	c.sampleLocked(now)
	if !c.engaged.Load() {
		c.mu.Unlock()
		return
	}
	elapsed := now.Sub(c.last).Seconds()
	c.last = now
	burst := max(1, c.rate/100) // at most ~10ms of stored admissions
	c.tokens = min(burst, c.tokens+elapsed*c.rate)
	c.tokens--
	var wait time.Duration
	if c.tokens < 0 {
		wait = time.Duration(-c.tokens / c.rate * float64(time.Second))
	}
	c.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}
