package stm_test

// Differential fuzzing of the metering layer: a fuzzed op sequence runs
// once under a fuzzed budget and once unmetered, against a plain-array
// model. Metering must never change semantics — only refuse: a metered
// commit must produce exactly the unmetered result, a refusal must leave
// every var untouched and unlocked and count exactly one BudgetAborts,
// and a grant provably larger than the sequence's worst-case cost must
// never be refused (no spurious ErrOutOfBudget).

import (
	"errors"
	"testing"

	"repro/stm"
	"repro/stm/budget"
)

func FuzzBudget(f *testing.F) {
	// Seeds: immediate refusal (zero grant), a grant that dies mid-read,
	// one that dies at the commit charge, and a generous one.
	f.Add([]byte{0, 1, 0x81, 2, 0x83, 4})
	f.Add([]byte{3, 0x80, 0x81, 0x82, 0x83, 0x84, 0x85})
	f.Add([]byte{9, 0x80, 0x81, 1, 2, 0x80, 3})
	f.Add([]byte{255, 0, 1, 2, 3, 4, 5, 6, 7, 0x80, 0x81, 0x82})
	// Exhaustion mid-commit on a promoted write set — the schedtest
	// counterexample shape (block exhaustion after the body succeeded): 26
	// writes cross writeSetMapThreshold and, with four logged reads, the
	// body's ~60 units fit a grant of 62 but the commit-time read-set
	// charge does not, so the refusal fires inside the commit.
	exhaustMidCommit := []byte{62}
	for i := 0; i < 26; i++ {
		exhaustMidCommit = append(exhaustMidCommit, byte(i)&0x7f)
	}
	exhaustMidCommit = append(exhaustMidCommit, 0x80, 0x81, 0x82, 0x83)
	f.Add(exhaustMidCommit)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		limit, ops := uint64(data[0]), data[1:]
		const nvars = 8
		vars := make([]*stm.Var[int], nvars)
		for i := range vars {
			vars[i] = stm.NewVar(0)
		}
		// The model result: op byte b targets var b%8; the high bit selects
		// read (sunk) vs write (a running counter, so every write is
		// distinguishable).
		var model [nvars]int
		for n, b := range ops {
			if b&0x80 == 0 {
				model[b%nvars] = n + 1
			}
		}
		run := func(tx *stm.Tx) error {
			for n, b := range ops {
				if b&0x80 == 0 {
					vars[b%nvars].Set(tx, n+1)
				} else {
					_ = vars[b%nvars].Get(tx)
				}
			}
			return nil
		}

		stm.SetBudgetPolicy(budget.Fixed{Limit: limit})
		before := stm.ReadStats()
		err := stm.Atomically(run)
		d := stm.ReadStats().Sub(before)
		stm.SetBudgetPolicy(nil)

		switch {
		case err == nil:
			if d.BudgetAborts != 0 {
				t.Fatalf("committed run counted %d budget aborts", d.BudgetAborts)
			}
			for i, v := range vars {
				if got := v.Load(); got != model[i] {
					t.Fatalf("metered commit diverged at var %d: %d, model %d", i, got, model[i])
				}
			}
		case errors.Is(err, stm.ErrOutOfBudget):
			if d.BudgetAborts != 1 || d.Commits != 0 {
				t.Fatalf("refusal stats = %+v, want exactly one budget abort", d)
			}
			for i, v := range vars {
				if got := v.Load(); got != 0 {
					t.Fatalf("refused run leaked a write: var %d = %d", i, got)
				}
				if stm.VarLocked(v) {
					t.Fatalf("refused run leaked the lock on var %d", i)
				}
			}
			// Solo, every charge is at most Step+Read or Step+Write (2 units)
			// per op plus the commit charge of Step×|reads| ≤ |ops|: a grant
			// of 3×|ops|+1 cannot legitimately run dry.
			if limit >= 3*uint64(len(ops))+1 {
				t.Fatalf("spurious refusal: limit %d vs %d ops", limit, len(ops))
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}

		// The unmetered replay on fresh vars must match the model exactly.
		for i := range vars {
			vars[i] = stm.NewVar(0)
		}
		if err := stm.Atomically(run); err != nil {
			t.Fatalf("unmetered run failed: %v", err)
		}
		for i, v := range vars {
			if got := v.Load(); got != model[i] {
				t.Fatalf("unmetered run diverged at var %d: %d, model %d", i, got, model[i])
			}
		}
	})
}
