package stm

// Queue is a bounded transactional FIFO queue. Put blocks (via Retry) while
// the queue is full, Take while it is empty — the composable blocking that
// conventional mutex-and-condvar code cannot express atomically alongside
// other state changes, and one of the paper's motivations for the TM
// programming model.
type Queue[T any] struct {
	buf   []*Var[T]
	head  *Var[int] // index of the oldest element
	count *Var[int]
}

// NewQueue creates a bounded queue with the given capacity (minimum 1).
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{
		buf:   make([]*Var[T], capacity),
		head:  NewVar(0),
		count: NewVar(0),
	}
	var zero T
	for i := range q.buf {
		q.buf[i] = NewVar(zero)
	}
	return q
}

// Cap returns the queue's fixed capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// wrap reduces an index in [0, 2*cap) into [0, cap) without the integer
// division a '%' would cost on the hot path.
func (q *Queue[T]) wrap(i int) int {
	if i >= len(q.buf) {
		return i - len(q.buf)
	}
	return i
}

// Len returns the current number of elements.
func (q *Queue[T]) Len(tx *Tx) int { return q.count.Get(tx) }

// Put appends v, blocking (transactionally) while the queue is full.
func (q *Queue[T]) Put(tx *Tx, v T) {
	n := q.count.Get(tx)
	if n == len(q.buf) {
		tx.Retry()
	}
	tail := q.wrap(q.head.Get(tx) + n)
	q.buf[tail].Set(tx, v)
	q.count.Set(tx, n+1)
}

// TryPut appends v if there is room, reporting success. It never blocks.
func (q *Queue[T]) TryPut(tx *Tx, v T) bool {
	n := q.count.Get(tx)
	if n == len(q.buf) {
		return false
	}
	tail := q.wrap(q.head.Get(tx) + n)
	q.buf[tail].Set(tx, v)
	q.count.Set(tx, n+1)
	return true
}

// Take removes and returns the oldest element, blocking (transactionally)
// while the queue is empty.
//
// The vacated slot is overwritten with the zero value, so a pointer-typed
// payload becomes collectable as soon as the consumer drops it — without
// the clear, the payload would stay reachable through the slot's Var until
// the ring wraps back around, a retention leak exactly as long as the
// queue is quiet. The clear costs one extra write-set entry per Take.
func (q *Queue[T]) Take(tx *Tx) T {
	n := q.count.Get(tx)
	if n == 0 {
		tx.Retry()
	}
	h := q.head.Get(tx)
	v := q.buf[h].Get(tx)
	var zero T
	q.buf[h].Set(tx, zero)
	q.head.Set(tx, q.wrap(h+1))
	q.count.Set(tx, n-1)
	return v
}

// TryTake removes the oldest element if any, reporting success. Like
// Take, it zeroes the vacated slot (one extra write-set entry) so the
// taken payload does not stay reachable through the ring.
func (q *Queue[T]) TryTake(tx *Tx) (T, bool) {
	n := q.count.Get(tx)
	if n == 0 {
		var zero T
		return zero, false
	}
	h := q.head.Get(tx)
	v := q.buf[h].Get(tx)
	var zero T
	q.buf[h].Set(tx, zero)
	q.head.Set(tx, q.wrap(h+1))
	q.count.Set(tx, n-1)
	return v, true
}
