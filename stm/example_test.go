package stm_test

import (
	"errors"
	"fmt"

	"repro/stm"
	"repro/stm/budget"
)

// ExampleAtomically is the quickstart: composable atomic transfers with
// automatic retry on conflict.
func ExampleAtomically() {
	alice := stm.NewVar(100)
	bob := stm.NewVar(0)

	// Move 30 from alice to bob. Either both writes land or neither;
	// conflicting transactions retry automatically.
	err := stm.Atomically(func(tx *stm.Tx) error {
		a := alice.Get(tx)
		if a < 30 {
			return fmt.Errorf("insufficient funds: %d", a)
		}
		alice.Set(tx, a-30)
		bob.Set(tx, bob.Get(tx)+30)
		return nil
	})

	fmt.Println(err, alice.Load(), bob.Load())
	// Output: <nil> 70 30
}

// ExampleAtomicallyRO shows the read-only fast path: a transaction that is
// read-only by construction runs with no read-set logging and no commit
// validation — a consistent multi-variable snapshot at exactly the cost of
// its reads. Writing (or calling Retry) inside AtomicallyRO panics; use
// Atomically for transactions that may write.
func ExampleAtomicallyRO() {
	price := stm.NewVar(25)
	quantity := stm.NewVar(4)

	var total int
	_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
		// Both reads come from one atomic snapshot: no concurrent update
		// can land between them.
		total = price.Get(tx) * quantity.Get(tx)
		return nil
	})

	fmt.Println(total)
	// Output: 100
}

// ExampleMap shows the transactional hash map: operations compose with any
// other transactional state, and the Snapshot* methods serve read-mostly
// paths without entering the engine.
func ExampleMap() {
	m := stm.NewMap[int](64)

	_ = stm.Atomically(func(tx *stm.Tx) error {
		m.Put(tx, "apples", 3)
		m.Put(tx, "pears", 5)
		m.Delete(tx, "apples")
		return nil
	})

	v, ok := m.SnapshotGet("pears") // non-transactional fast path
	fmt.Println(v, ok, m.SnapshotLen())
	// Output: 5 true 1
}

// ExampleOrderedMap_Range shows the ordered map's consistent range scan:
// keys arrive in lexicographic order, and the whole scan is one atomic
// snapshot.
func ExampleOrderedMap_Range() {
	m := stm.NewOrderedMap[int]()
	_ = stm.Atomically(func(tx *stm.Tx) error {
		m.Put(tx, "cherry", 3)
		m.Put(tx, "apple", 1)
		m.Put(tx, "banana", 2)
		m.Put(tx, "date", 4)
		return nil
	})

	// Scan the half-open interval [banana, date) transactionally.
	_ = stm.Atomically(func(tx *stm.Tx) error {
		m.Range(tx, "banana", "date", func(k string, v int) bool {
			fmt.Println(k, v)
			return true
		})
		return nil
	})
	// Output:
	// banana 2
	// cherry 3
}

// ExampleSetBudgetPolicy shows transaction metering: a BudgetPolicy
// grants every Atomically/AtomicallyRO call a budget of work units
// charged per read, write, step and retry, and a call whose grant runs
// dry is refused with ErrOutOfBudget — cleanly: no locks held, no
// writes published, the refusal counted in ReadStats().BudgetAborts.
// (budget.Controller and SetAdmission add abort-ratio-driven admission
// control on top; see the package docs.)
func ExampleSetBudgetPolicy() {
	table := make([]*stm.Var[int], 8)
	for i := range table {
		table[i] = stm.NewVar(i)
	}
	scan := func(out *int) func(*stm.Tx) error {
		return func(tx *stm.Tx) error {
			*out = 0
			for _, v := range table {
				*out += v.Get(tx)
			}
			return nil
		}
	}

	// A grant far below the cost of a full scan: the scan is refused,
	// not retried — the tenant pays for its own appetite.
	stm.SetBudgetPolicy(budget.Fixed{Limit: 4})
	var sum int
	err := stm.Atomically(scan(&sum))
	fmt.Println("refused:", errors.Is(err, stm.ErrOutOfBudget))

	// Metering off (the default): the same scan commits.
	stm.SetBudgetPolicy(nil)
	_ = stm.Atomically(scan(&sum))
	fmt.Println("sum:", sum)
	// Output:
	// refused: true
	// sum: 28
}

// ExampleSetClockStrategy shows the commit-pipeline knobs. Configure them
// once at program start, before using the engine concurrently; GV6
// requires timestamp extension (on by default), and the engine panics on
// the unsound combination rather than losing sequential progress at
// runtime.
func ExampleSetClockStrategy() {
	fmt.Println("default:", stm.CurrentClockStrategy(), stm.TimestampExtensionEnabled())

	stm.SetClockStrategy(stm.GV6) // legal: extension is on
	fmt.Println("selected:", stm.CurrentClockStrategy())

	stm.SetClockStrategy(stm.GV4) // restore the default
	// Output:
	// default: gv4 true
	// selected: gv6
}
