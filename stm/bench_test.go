package stm_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/stm"
)

// BenchmarkVarReadOnly measures invisible-read scaling of the native TL2
// engine: read-only transactions over a shared read-mostly working set.
func BenchmarkVarReadOnly(b *testing.B) {
	const n = 32
	vars := make([]*stm.Var[int], n)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				s := 0
				for _, v := range vars {
					s += v.Get(tx)
				}
				_ = s
				return nil
			})
		}
	})
}

// BenchmarkVarUncontended measures the single-threaded transaction
// round-trip (begin, read, write, commit).
func BenchmarkVarUncontended(b *testing.B) {
	v := stm.NewVar(0)
	for i := 0; i < b.N; i++ {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		})
	}
	if v.Load() != b.N {
		b.Fatal("lost updates")
	}
}

// BenchmarkMapMixed measures the transactional map under a parallel
// 90/10 read/write mix across many buckets.
func BenchmarkMapMixed(b *testing.B) {
	m := stm.NewMap[int](64)
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("key%d", i)
		_ = stm.Atomically(func(tx *stm.Tx) error {
			m.Put(tx, k, i)
			return nil
		})
	}
	var seq atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			k := fmt.Sprintf("key%d", (i*2654435761)%256)
			if i%10 == 0 {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, int(i))
					return nil
				})
			} else {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					_, _ = m.Get(tx, k)
					return nil
				})
			}
		}
	})
}

// BenchmarkQueueHandoff measures producer/consumer pairs over the blocking
// bounded queue.
func BenchmarkQueueHandoff(b *testing.B) {
	q := stm.NewQueue[int](64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				q.Take(tx)
				return nil
			})
		}
	}()
	for i := 0; i < b.N; i++ {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			q.Put(tx, i)
			return nil
		})
	}
	<-done
}
