package stm_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/stm"
)

// BenchmarkVarReadOnly measures invisible-read scaling of the native TL2
// engine: read-only transactions over a shared read-mostly working set.
// With pooled descriptors this must report zero allocs/op in steady state.
func BenchmarkVarReadOnly(b *testing.B) {
	const n = 32
	vars := make([]*stm.Var[int], n)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				s := 0
				for _, v := range vars {
					s += v.Get(tx)
				}
				_ = s
				return nil
			})
		}
	})
}

// BenchmarkROFastPath is the acceptance benchmark for the read-only fast
// path: the identical read-only workload (a 32-Var scan) on the default
// pipeline and on AtomicallyRO. Both must report 0 allocs/op; the RO path
// must be faster — it skips the write-set probe, the duplicate-suppression
// scan and the read-set append on every read, and certifies instead of
// validating at commit.
func BenchmarkROFastPath(b *testing.B) {
	const n = 32
	vars := make([]*stm.Var[int], n)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	scan := func(tx *stm.Tx) error {
		s := 0
		for _, v := range vars {
			s += v.Get(tx)
		}
		_ = s
		return nil
	}
	run := func(b *testing.B, atomically func(func(tx *stm.Tx) error) error) {
		before := stm.ReadStats()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_ = atomically(scan)
			}
		})
		d := stm.ReadStats().Sub(before)
		if d.Commits > 0 {
			b.ReportMetric(float64(d.ROCommits)/float64(d.Commits), "ro-commit-fraction")
		}
	}
	b.Run("path=default", func(b *testing.B) { run(b, stm.Atomically) })
	b.Run("path=ro", func(b *testing.B) { run(b, stm.AtomicallyRO) })
}

// BenchmarkVarUncontended measures the single-threaded transaction
// round-trip (begin, read, write, commit).
func BenchmarkVarUncontended(b *testing.B) {
	v := stm.NewVar(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		})
	}
	if v.Load() != b.N {
		b.Fatal("lost updates")
	}
}

// BenchmarkContentionSweep sweeps goroutine counts over a 90/10 read/write
// mix on a shared working set: the contention-scaling trajectory of the
// commit path (versioned-lock CAS, validation, backoff) at each level of
// parallelism.
func BenchmarkContentionSweep(b *testing.B) {
	const nvars = 64
	const readsPerTxn = 8
	for _, workers := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("goroutines=%d", workers), func(b *testing.B) {
			vars := make([]*stm.Var[int], nvars)
			for i := range vars {
				vars[i] = stm.NewVar(0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > uint64(b.N) {
							return
						}
						base := (i * 2654435761) % nvars
						if i%10 == 0 {
							// Read-modify-write transaction.
							_ = stm.Atomically(func(tx *stm.Tx) error {
								v := vars[base]
								v.Set(tx, v.Get(tx)+1)
								return nil
							})
						} else {
							// Read-only transaction over a sliding window.
							_ = stm.Atomically(func(tx *stm.Tx) error {
								s := 0
								for j := uint64(0); j < readsPerTxn; j++ {
									s += vars[(base+j)%nvars].Get(tx)
								}
								_ = s
								return nil
							})
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkVarContended is the stale-clock stress: transactions read a
// window of Vars with a scheduler yield after each read (modeling real
// in-transaction work, and forcing commit interleavings even on few
// cores), while a fraction of transactions write. Under the PR 1 pipeline
// (gv1, no extension) every commit that lands inside a reader's window
// aborts the reader if it touches any Var the reader will still read;
// with timestamp extension only invalidated reads abort. The sub-benchmark
// labels pin both configurations so the abort-ratio and throughput delta
// is recorded per run.
func BenchmarkVarContended(b *testing.B) {
	const (
		nvars      = 64
		readsPerTx = 8
	)
	run := func(b *testing.B, strat stm.ClockStrategy, ext bool) {
		// Enable-before-select: GV6/GV7 refuse selection while extension is
		// off, so the enabling knob always moves first.
		if ext {
			stm.SetTimestampExtension(true)
			stm.SetClockStrategy(strat)
		} else {
			stm.SetClockStrategy(strat)
			stm.SetTimestampExtension(ext)
		}
		defer stm.SetClockStrategy(stm.GV4)
		defer stm.SetTimestampExtension(true)
		// Vars are created after the strategy is selected — required for the
		// tictoc row, which reinterprets the lock-word payload as (wts, rts)
		// and must never see versioned payloads.
		vars := make([]*stm.Var[int], nvars)
		for i := range vars {
			vars[i] = stm.NewVar(0)
		}
		var seq atomic.Uint64
		before := stm.ReadStats()
		b.ReportAllocs()
		b.SetParallelism(4)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := seq.Add(1)
				base := (i * 2654435761) % nvars
				if i%8 == 0 {
					_ = stm.Atomically(func(tx *stm.Tx) error {
						v := vars[base]
						v.Set(tx, v.Get(tx)+1)
						return nil
					})
				} else {
					_ = stm.Atomically(func(tx *stm.Tx) error {
						s := 0
						for j := uint64(0); j < readsPerTx; j++ {
							s += vars[(base+j*7)%nvars].Get(tx)
							runtime.Gosched() // in-transaction work: commits land mid-window
						}
						_ = s
						return nil
					})
				}
			}
		})
		d := stm.ReadStats().Sub(before)
		b.ReportMetric(d.AbortRatio(), "abort-ratio")
		if d.Commits > 0 {
			b.ReportMetric(float64(d.Extensions)/float64(d.Commits), "extensions/txn")
		}
	}
	b.Run("pipeline=pr1-gv1-noext", func(b *testing.B) { run(b, stm.GV1, false) })
	b.Run("pipeline=gv4-ext", func(b *testing.B) { run(b, stm.GV4, true) })
	b.Run("pipeline=gv7-ext", func(b *testing.B) { run(b, stm.GV7, true) })
	b.Run("pipeline=tictoc", func(b *testing.B) { run(b, stm.TicToc, true) })
}

// BenchmarkLargeWriteSet measures commits whose write sets cross the
// slice→map promotion threshold: per-op cost of the map index, the one
// commit-time sort, and the bulk lock/publish/unlock sweep.
func BenchmarkLargeWriteSet(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("writes=%d", n), func(b *testing.B) {
			vars := make([]*stm.Var[int], n)
			for i := range vars {
				vars[i] = stm.NewVar(0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					for _, v := range vars {
						v.Set(tx, i)
					}
					return nil
				})
			}
		})
	}
}

// BenchmarkMapMixed measures the transactional map under a parallel
// 90/10 read/write mix across many buckets.
func BenchmarkMapMixed(b *testing.B) {
	m := stm.NewMap[int](64)
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("key%d", i)
		_ = stm.Atomically(func(tx *stm.Tx) error {
			m.Put(tx, k, i)
			return nil
		})
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%d", i)
	}
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			k := keys[(i*2654435761)%256]
			if i%10 == 0 {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, int(i))
					return nil
				})
			} else {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					_, _ = m.Get(tx, k)
					return nil
				})
			}
		}
	})
}

// BenchmarkMapDisjointPut is the regression benchmark for the striped size
// counter: parallel writers alternate insert/delete over fully disjoint
// key sets — every operation changes the map's size, so every operation
// goes through a size stripe — landing on distinct buckets and distinct
// stripes, so throughput must scale with GOMAXPROCS instead of
// serializing every size change on one shared size Var (the pre-striping
// behaviour made every concurrent Put/Delete pair conflict). The
// abort-ratio metric makes the serialization visible when it returns.
func BenchmarkMapDisjointPut(b *testing.B) {
	m := stm.NewMap[int](1024)
	var worker atomic.Uint64
	before := stm.ReadStats()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		keys := make([]string, 512)
		for i := range keys {
			keys[i] = fmt.Sprintf("w%d-%d", w, i)
		}
		for i := 0; pb.Next(); i++ {
			k := keys[(i/2)%len(keys)]
			if i%2 == 0 {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, i) // insert: the key is absent, so size changes
					return nil
				})
			} else {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					m.Delete(tx, k)
					return nil
				})
			}
		}
	})
	d := stm.ReadStats().Sub(before)
	b.ReportMetric(d.AbortRatio(), "abort-ratio")
}

// BenchmarkOrderedMapMixed is the native E9 ordered-index workload on the
// container itself: lookups and ordered range scans racing point updates
// on a transactional skiplist. Range scans build long read sets over
// pointer structure — the regime where timestamp extension pays — so the
// abort-ratio and extensions/txn metrics here move far more than on the
// flat-counter benchmarks.
func BenchmarkOrderedMapMixed(b *testing.B) {
	const nkeys = 512
	for _, scan := range []int{8, 64} {
		b.Run(fmt.Sprintf("scan=%d", scan), func(b *testing.B) {
			m := stm.NewOrderedMap[int]()
			keys := make([]string, nkeys)
			if err := stm.Atomically(func(tx *stm.Tx) error {
				for i := range keys {
					keys[i] = fmt.Sprintf("key%04d", i)
					m.Put(tx, keys[i], i)
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			var seq atomic.Uint64
			before := stm.ReadStats()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					base := (i * 2654435761) % nkeys
					switch {
					case i%10 == 0: // point update racing the scans
						_ = stm.Atomically(func(tx *stm.Tx) error {
							v, _ := m.Get(tx, keys[base])
							m.Put(tx, keys[base], v+1)
							return nil
						})
					case i%10 < 4: // ordered range scan: the long read set
						from := keys[base]
						_ = stm.Atomically(func(tx *stm.Tx) error {
							n, s := 0, 0
							m.Range(tx, from, "", func(_ string, v int) bool {
								s += v
								n++
								return n < scan
							})
							_ = s
							return nil
						})
					default: // point lookup
						_ = stm.Atomically(func(tx *stm.Tx) error {
							_, _ = m.Get(tx, keys[base])
							return nil
						})
					}
				}
			})
			d := stm.ReadStats().Sub(before)
			b.ReportMetric(d.AbortRatio(), "abort-ratio")
			if d.Commits > 0 {
				b.ReportMetric(float64(d.Extensions)/float64(d.Commits), "extensions/txn")
			}
		})
	}
}

// BenchmarkOrderedMapDisjointPut mirrors BenchmarkMapDisjointPut on the
// skiplist: parallel writers alternate insert/delete over disjoint key
// ranges. Unlike the hash map's independent buckets, neighbouring skiplist
// keys share links, so this also measures structural-conflict pressure.
func BenchmarkOrderedMapDisjointPut(b *testing.B) {
	m := stm.NewOrderedMap[int]()
	var worker atomic.Uint64
	before := stm.ReadStats()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		keys := make([]string, 256)
		for i := range keys {
			keys[i] = fmt.Sprintf("w%02d-%04d", w, i)
		}
		for i := 0; pb.Next(); i++ {
			k := keys[(i/2)%len(keys)]
			if i%2 == 0 {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, i)
					return nil
				})
			} else {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					m.Delete(tx, k)
					return nil
				})
			}
		}
	})
	d := stm.ReadStats().Sub(before)
	b.ReportMetric(d.AbortRatio(), "abort-ratio")
}

// BenchmarkOrderedMapSnapshotRange measures the non-transactional ordered
// scan against the transactional one: the snapshot path never enters the
// engine, so it must be allocation-free and abort-free no matter how hot
// the writers are.
func BenchmarkOrderedMapSnapshotRange(b *testing.B) {
	const nkeys = 1024
	m := stm.NewOrderedMap[int]()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := 0; i < nkeys; i++ {
			m.Put(tx, fmt.Sprintf("key%05d", i), i)
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := 0
			m.SnapshotRange("key00256", "key00512", func(string, int) bool {
				n++
				return true
			})
			if n != 256 {
				b.Fatalf("scan saw %d entries, want 256", n)
			}
		}
	})
}

// BenchmarkQueueHandoff measures producer/consumer pairs over the blocking
// bounded queue.
func BenchmarkQueueHandoff(b *testing.B) {
	q := stm.NewQueue[int](64)
	b.ReportAllocs()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				q.Take(tx)
				return nil
			})
		}
	}()
	for i := 0; i < b.N; i++ {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			q.Put(tx, i)
			return nil
		})
	}
	<-done
}
