package stm_test

// TicToc-mode tests: interval-intersection reads, rts advances (during
// execution and at commit), the clock-silence contract (ClockIncrements
// stays 0 under any mix), and opacity of adversarial rts-advance
// interleavings certified through the trace hook by internal/check.

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/stm"
)

func withTicToc(t *testing.T) {
	t.Helper()
	stm.SetClockStrategy(stm.TicToc)
	t.Cleanup(func() { stm.SetClockStrategy(stm.GV4) })
}

// TestTicTocCounter: concurrent read-modify-writes lose no update and
// publish strictly increasing per-Var write timestamps.
func TestTicTocCounter(t *testing.T) {
	withTicToc(t)
	ctr := stm.NewVar(0)
	const workers, perW = 8, 200
	before := stm.ReadStats()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := stm.Atomically(func(tx *stm.Tx) error {
					ctr.Set(tx, ctr.Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := ctr.Load(); got != workers*perW {
		t.Fatalf("lost updates under TicToc: %d, want %d", got, workers*perW)
	}
	wts, rts := stm.VarTS(ctr)
	if wts == 0 || rts < wts {
		t.Fatalf("counter timestamps corrupt: wts=%d rts=%d", wts, rts)
	}
	if d := stm.ReadStats().Sub(before); d.ClockIncrements != 0 {
		t.Errorf("TicToc write mix published %d clock increments; the mode must not touch the clock at all", d.ClockIncrements)
	}
}

// TestTicTocRtsAdvanceOnFloorRaise pins the deterministic execution-time
// sweep: a read whose wts exceeds the transaction's interval raises the
// floor and advances every prior entry's rts by CAS.
func TestTicTocRtsAdvanceOnFloorRaise(t *testing.T) {
	withTicToc(t)
	x := stm.NewVar(0) // will be written (wts rises)
	y := stm.NewVar(0) // will be read first (rts must be swept forward)

	if err := stm.Atomically(func(tx *stm.Tx) error {
		x.Set(tx, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	xw, _ := stm.VarTS(x)
	if xw == 0 {
		t.Fatal("write did not raise x's wts")
	}
	before := stm.ReadStats()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		if y.Get(tx) != 0 { // logs y at [0, 0]
			t.Error("y changed unexpectedly")
		}
		if x.Get(tx) != 1 { // wts(x) > 0 raises the floor, sweeping y's rts
			t.Error("x read did not see the committed write")
		}
		if lo, _ := stm.TTInterval(tx); lo < xw {
			t.Errorf("floor %d below x's wts %d after the read", lo, xw)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, yr := stm.VarTS(y); yr < xw {
		t.Errorf("y's rts %d was not advanced to the new floor %d", yr, xw)
	}
	if d := stm.ReadStats().Sub(before); d.RTSAdvances == 0 {
		t.Error("floor raise recorded no RTSAdvances")
	}
}

// TestTicTocRtsAdvanceAtCommit pins the commit-time advance: a read-write
// transaction whose serialization point exceeds a read entry's rts must
// CAS that rts forward before publishing.
func TestTicTocRtsAdvanceAtCommit(t *testing.T) {
	withTicToc(t)
	y := stm.NewVar(0)
	z := stm.NewVar(0)
	// Push z's rts up so a write to z forces cts = rts(z)+1 > rts(y).
	if err := stm.Atomically(func(tx *stm.Tx) error {
		z.Set(tx, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := stm.Atomically(func(tx *stm.Tx) error {
		_ = y.Get(tx) // y at [0, 0]
		z.Set(tx, z.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	zw, _ := stm.VarTS(z)
	_, yr := stm.VarTS(y)
	if yr < zw {
		t.Errorf("commit at cts=%d did not advance read entry y's rts (rts=%d)", zw, yr)
	}
	yw, _ := stm.VarTS(y)
	if yw != 0 {
		t.Errorf("y was never written but has wts=%d", yw)
	}
}

// TestTicTocReadPathClockSilent: a read-mostly mix (full and RO readers
// racing one writer) publishes zero clock increments — the acceptance
// contract for the per-access-timestamp mode.
func TestTicTocReadPathClockSilent(t *testing.T) {
	withTicToc(t)
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	before := stm.ReadStats()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				x.Set(tx, x.Get(tx)+1)
				y.Set(tx, y.Get(tx)+1)
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				if a, b := x.Get(tx), y.Get(tx); a != b {
					t.Errorf("reader saw x=%d y=%d", a, b)
				}
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
				if a, b := x.Get(tx), y.Get(tx); a != b {
					t.Errorf("RO reader saw x=%d y=%d", a, b)
				}
				return nil
			})
		}
	}()
	wg.Wait()
	if got := x.Load(); got != 100 {
		t.Fatalf("lost updates: x=%d, want 100", got)
	}
	d := stm.ReadStats().Sub(before)
	if d.ClockIncrements != 0 {
		t.Errorf("TicToc mix published %d clock increments", d.ClockIncrements)
	}
}

// TestTicTocOpacityRtsAdvance is the satellite opacity test: a bounded
// adversarial interleaving built to exercise rts advances on both paths —
// writers racing readers over two Vars with skewed timestamps — is traced
// through the native hook and certified by the internal/check oracles.
func TestTicTocOpacityRtsAdvance(t *testing.T) {
	withTicToc(t)
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	stm.StartTrace()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // writer: skews x's timestamps ahead of y's
		defer wg.Done()
		for i := 0; i < 3; i++ {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				x.Set(tx, x.Get(tx)+1)
				return nil
			})
		}
	}()
	go func() { // read x-then-y: floor raise sweeps y's rts
		defer wg.Done()
		for i := 0; i < 2; i++ {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				a := x.Get(tx)
				b := y.Get(tx)
				_ = a + b
				return nil
			})
		}
	}()
	go func() { // RO read y-then-x: interval abort + floor-seeded retry
		defer wg.Done()
		for i := 0; i < 2; i++ {
			_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
				b := y.Get(tx)
				a := x.Get(tx)
				_ = a + b
				return nil
			})
		}
	}()
	wg.Wait()
	h := stm.StopTrace()
	if len(h.Txns) == 0 {
		t.Fatal("trace recorded no transactions")
	}
	if res := check.Opaque(h); !res.OK {
		t.Errorf("TicToc history is not opaque:\n%s", h)
	}
	if res := check.StrictlySerializable(h); !res.OK {
		t.Errorf("TicToc history is not strictly serializable:\n%s", h)
	}
}
