package stm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tm/lockword"
)

// TestVersionHistoriesMonotone races concurrent committers through the
// clock CAS under each strategy and asserts the property GV4's soundness
// argument needs: per-Var version words never decrease, even when two
// commits share a tick (GV4 adoption) or run ahead of the clock (GV6,
// GV7 block ticks).
// Watcher goroutines poll the raw lock words concurrently with the
// commits; the final counter values prove no update was lost.
func TestVersionHistoriesMonotone(t *testing.T) {
	for _, strat := range []ClockStrategy{GV4, GV6, GV7} {
		t.Run(fmt.Sprintf("strategy=%s", strat), func(t *testing.T) {
			SetClockStrategy(strat)
			t.Cleanup(func() { SetClockStrategy(GV4) })
			const (
				nvars   = 4
				workers = 8
				perW    = 300
			)
			vars := make([]*Var[int], nvars)
			for i := range vars {
				vars[i] = NewVar(0)
			}
			stop := make(chan struct{})
			var watchers sync.WaitGroup
			for w := 0; w < 2; w++ {
				watchers.Add(1)
				go func() {
					defer watchers.Done()
					last := make([]uint64, nvars)
					for {
						select {
						case <-stop:
							return
						default:
						}
						for i, v := range vars {
							ver := lockword.Version(v.lw.Load())
							if ver < last[i] {
								t.Errorf("version of var %d decreased: %d → %d", i, last[i], ver)
								return
							}
							last[i] = ver
						}
					}
				}()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						v := vars[(w+i)%nvars]
						if err := Atomically(func(tx *Tx) error {
							v.Set(tx, v.Get(tx)+1)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			watchers.Wait()
			total := 0
			for _, v := range vars {
				total += v.Load()
			}
			if total != workers*perW {
				t.Fatalf("lost updates under %s: total=%d, want %d", strat, total, workers*perW)
			}
			// Under GV1/GV4 no published version may exceed the clock; GV6
			// and GV7 may run ahead transiently, but helpClock must have
			// kept the final state covered (the last commit's
			// reader-visible version is readable only once the clock
			// reaches it).
			if strat != GV6 && strat != GV7 {
				c := clock.Load()
				for i, v := range vars {
					if ver := lockword.Version(v.lw.Load()); ver > c {
						t.Errorf("var %d version %d exceeds clock %d under %s", i, ver, c, strat)
					}
				}
			}
		})
	}
}

// TestAdvanceClockQuiescence unit-checks the validation-skip contract of
// each strategy: GV1/GV4 may report quiescence only when the commit's
// write version proves no foreign commit intervened; GV6 never may.
func TestAdvanceClockQuiescence(t *testing.T) {
	tx := txPool.Get().(*Tx)
	defer tx.release()

	SetClockStrategy(GV1)
	t.Cleanup(func() { SetClockStrategy(GV4) })
	tx.rv = clock.Load()
	wv, q := tx.advanceClock()
	if wv != tx.rv+1 || !q {
		t.Errorf("GV1 solo: wv=%d q=%v, want rv+1=%d and quiescent", wv, q, tx.rv+1)
	}

	SetClockStrategy(GV4)
	tx.rv = clock.Load()
	wv, q = tx.advanceClock()
	if wv != tx.rv+1 || !q {
		t.Errorf("GV4 solo: wv=%d q=%v, want rv+1=%d and quiescent", wv, q, tx.rv+1)
	}
	// A stale rv must not report quiescence even when the CAS wins.
	tx.rv = clock.Load() - 1
	if _, q = tx.advanceClock(); q {
		t.Error("GV4 with stale rv reported quiescence; validation would be skipped unsoundly")
	}

	SetClockStrategy(GV6)
	for i := 0; i < 32; i++ {
		tx.rv = clock.Load()
		if _, q = tx.advanceClock(); q {
			t.Fatal("GV6 reported quiescence; unpublished increments make that proof unavailable")
		}
	}

	// GV7 stamps from a local block the clock knows nothing about, so the
	// quiescence proof is likewise unavailable — and every stamped tick
	// must still exceed the published clock at stamp time.
	SetClockStrategy(GV7)
	for i := 0; i < 32; i++ {
		tx.rv = clock.Load()
		wv, q := tx.advanceClock()
		if q {
			t.Fatal("GV7 reported quiescence; block ticks make that proof unavailable")
		}
		if c := clock.Load(); wv <= tx.rv || wv <= 0 || wv <= c && c == tx.rv {
			t.Fatalf("GV7 stamped wv=%d not above post-lock clock %d", wv, tx.rv)
		}
	}
	tx.drainBlock()
}

// TestHelpClock checks the reader-side clock bump used by GV6.
func TestHelpClock(t *testing.T) {
	target := clock.Load() + 5
	helpClock(target)
	if c := clock.Load(); c < target {
		t.Fatalf("clock %d below helped target %d", c, target)
	}
	helpClock(target - 3) // never moves backwards
	if c := clock.Load(); c < target {
		t.Fatalf("clock moved backwards to %d", c)
	}
}
