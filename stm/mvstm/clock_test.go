package mvstm_test

// Clock-strategy coverage for the multi-version engine: GV7 block
// allocation must preserve the snapshot invariant (a version committed
// after a pin is invisible to it), publish every commit before the
// Atomically call returns (strict serializability — pinned snapshots
// have no extension path), and actually amortize the allocator RMW.

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/stm/mvstm"
)

func withGV7(t *testing.T) {
	t.Helper()
	mvstm.SetClockStrategy(mvstm.GV7)
	t.Cleanup(func() { mvstm.SetClockStrategy(mvstm.GV4) })
}

func TestClockStrategyValidation(t *testing.T) {
	if got := mvstm.ClockStrategyInEffect(); got != mvstm.GV4 {
		t.Fatalf("default strategy = %v, want gv4", got)
	}
	if mvstm.GV7.String() != "gv7" || mvstm.GV4.String() != "gv4" {
		t.Fatalf("String(): gv4=%q gv7=%q", mvstm.GV4.String(), mvstm.GV7.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetClockStrategy(99) did not panic")
		}
	}()
	mvstm.SetClockStrategy(mvstm.ClockStrategy(99))
}

// TestGV7CommitVisibleImmediately is the strict-serializability
// requirement that forces mvstm's per-commit publication: once
// Atomically returns, a snapshot pinned afterwards must read the new
// version — GV7 may batch tick *allocation* but not publication.
func TestGV7CommitVisibleImmediately(t *testing.T) {
	withGV7(t)
	restore := mvstm.SetGV7BlockSizeForTest(8)
	defer restore()
	v := mvstm.NewVar(0)
	for i := 1; i <= 100; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		var got int
		if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			got = v.Get(tx)
			return nil
		}); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if got != i {
			t.Fatalf("snapshot after commit %d read %d (commit not published)", i, got)
		}
	}
}

// TestGV7SnapshotInvariantUnderRace drives transfers between two vars
// under GV7 while snapshot readers check the conserved sum — the
// invariant breaks if a block-stamped write version ever becomes visible
// to a snapshot pinned before the committer held its locks.
func TestGV7SnapshotInvariantUnderRace(t *testing.T) {
	withGV7(t)
	restore := mvstm.SetGV7BlockSizeForTest(4)
	defer restore()
	const total = 1000
	x, y := mvstm.NewVar(total), mvstm.NewVar(0)
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int) {
			defer writers.Done()
			for i := 0; !stop.Load(); i++ {
				_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
					amt := (seed+i)%7 - 3
					x.Set(tx, x.Get(tx)-amt)
					y.Set(tx, y.Get(tx)+amt)
					return nil
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 3000; i++ {
				var sum int
				if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
					sum = x.Get(tx) + y.Get(tx)
					return nil
				}); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				if sum != total {
					t.Errorf("snapshot sum = %d, want %d (torn GV7 snapshot)", sum, total)
					return
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	if got := x.Load() + y.Load(); got != total {
		t.Fatalf("final sum = %d, want %d", got, total)
	}
}

// TestGV7AmortizesAllocatorClaims: with block size K and a stable
// descriptor pool, the allocator is claimed roughly once per K commits,
// not once per commit.
func TestGV7AmortizesAllocatorClaims(t *testing.T) {
	withGV7(t)
	restore := mvstm.SetGV7BlockSizeForTest(64)
	defer restore()
	before := mvstm.ReadStats()
	v := mvstm.NewVar(0)
	const commits = 640
	for i := 0; i < commits; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	d := mvstm.ReadStats().Sub(before)
	if d.ClockBlockClaims == 0 {
		t.Fatal("GV7 made no block claims")
	}
	// Sequential single-descriptor commits claim ⌈commits/K⌉ blocks —
	// but the race detector makes sync.Pool drop ~1/4 of descriptor
	// Puts, and each replacement descriptor claims afresh, so the bound
	// only asserts claims ≪ one-per-commit (the amortization signal),
	// not the exact ratio.
	if limit := uint64(commits / 2); d.ClockBlockClaims > limit {
		t.Errorf("ClockBlockClaims = %d for %d commits (block size 64), want ≤ %d",
			d.ClockBlockClaims, commits, limit)
	}
}

// TestLeaveGV7PublishesAllocator: switching back to GV4 must help the
// published clock up to the allocation high-water mark, so no pooled
// descriptor's stale block can stamp a version the clock already passed.
func TestLeaveGV7PublishesAllocator(t *testing.T) {
	mvstm.SetClockStrategy(mvstm.GV7)
	v := mvstm.NewVar(0)
	for i := 0; i < 10; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mvstm.SetClockStrategy(mvstm.GV4)
	if c, a := mvstm.ClockForTest(), mvstm.ClockAllocForTest(); c < a {
		t.Fatalf("after leaving GV7: clock %d < clockAlloc %d (stale blocks live)", c, a)
	}
	// GV4 commits must keep working and stay visible.
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		v.Set(tx, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 42 {
		t.Fatalf("post-switch Load = %d, want 42", got)
	}
}
