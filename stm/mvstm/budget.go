package mvstm

import (
	"sync/atomic"

	"repro/stm/budget"
)

// ErrOutOfBudget is returned by Atomically/AtomicallyRO when the
// transaction exhausts the work budget granted by the configured
// BudgetPolicy (see SetBudgetPolicy). The abort is clean: no locks are
// held, the epoch registration is dropped (the GC floor moves on), and
// the pooled descriptor is recycled. It aliases budget.ErrOutOfBudget, so
// errors.Is matches metering aborts from any engine.
var ErrOutOfBudget = budget.ErrOutOfBudget

type policyBox struct{ p budget.Policy }
type admitBox struct{ a budget.Admitter }

var (
	budgetPolicy atomic.Pointer[policyBox]
	admission    atomic.Pointer[admitBox]
)

// SetBudgetPolicy installs the engine-wide metering policy; nil disables
// metering (the default). Grant is sampled once per call (retries spend
// the same grant); the engine charges Costs.Step per operation and per
// version walked by a snapshot read, Costs.Read/Costs.Write per
// read-/write-set entry, Costs.Retry per aborted attempt, and —
// distinctive to this engine — Costs.Version per version retained in the
// chains a commit is about to publish, so the space half of the paper's
// time/space trade is metered too: a transaction pinning an old snapshot
// pays for the chain growth it forces on every writer, and a giant write
// set pays for the versions it appends. Exhaustion aborts with
// ErrOutOfBudget; AtomicallyRO, whose snapshot reads otherwise never
// abort, is the one path a budget can abort.
func SetBudgetPolicy(p budget.Policy) {
	if p == nil {
		budgetPolicy.Store(nil)
		return
	}
	budgetPolicy.Store(&policyBox{p: p})
}

// SetAdmission installs the engine-wide admission gate; nil disables it
// (the default). Admit is called once per update-transaction call, before
// the first attempt; snapshot (read-only) transactions are never gated.
func SetAdmission(a budget.Admitter) {
	if a == nil {
		admission.Store(nil)
		return
	}
	admission.Store(&admitBox{a: a})
}

func admitted() {
	if b := admission.Load(); b != nil {
		b.a.Admit()
	}
}

// budgetSignal aborts the current attempt when a hard charge exhausts the
// budget; it is panicked only from the read/write paths, where no locks
// are held (the commit path uses the soft charge instead).
type budgetSignal struct{}

// beginBudget samples the configured policy into the descriptor, once per
// call.
func (tx *Tx) beginBudget() {
	if b := budgetPolicy.Load(); b != nil {
		tx.metered = true
		tx.budgetLeft, tx.costs = b.p.Grant()
	} else {
		tx.metered = false
	}
	tx.budgetExceeded = false
}

// charge debits n work units, aborting the attempt via budgetSignal when
// the grant is exhausted.
func (tx *Tx) charge(n uint64) {
	if !tx.metered || n == 0 {
		return
	}
	if tx.budgetLeft < n {
		tx.budgetExceeded = true
		panic(budgetSignal{})
	}
	tx.budgetLeft -= n
}

// chargeSoft debits n work units, reporting exhaustion instead of
// panicking (for the commit path and the retry charge).
func (tx *Tx) chargeSoft(n uint64) bool {
	if !tx.metered || n == 0 {
		return true
	}
	if tx.budgetLeft < n {
		tx.budgetExceeded = true
		return false
	}
	tx.budgetLeft -= n
	return true
}

// budgetAbort finalizes a metering abort: the failed attempt is already
// counted in aborts by the caller; finish flushes the batched snapshot
// stats, drops the epoch registration and recycles the descriptor.
func (tx *Tx) budgetAbort() error {
	tx.stat().budgetAborts.Add(1)
	// Taxonomy: the Budget class mirrors BudgetAborts exactly (see
	// Stats.AbortReasons), so the refusal is counted here — once per
	// exhausted call — not at the individual charge sites.
	tx.stat().reasons[abortBudget].Add(1)
	tx.finish()
	return ErrOutOfBudget
}
