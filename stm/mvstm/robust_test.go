package mvstm_test

// Robustness coverage for the multi-version engine: budget exhaustion at
// the mv-specific charge points (per-version chain-walk steps on the
// abort-free snapshot path — the only way that path can abort — and the
// retained-version space charge at commit), context-aware entry points,
// and panic safety. Every abort path must drop its epoch registration
// (ActivePins must return to zero) or the GC floor would be pinned down
// forever — the mv analogue of a leaked lock.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/stm/budget"
	"repro/stm/mvstm"
)

func withPolicy(t *testing.T, p budget.Policy) {
	t.Helper()
	mvstm.SetBudgetPolicy(p)
	t.Cleanup(func() { mvstm.SetBudgetPolicy(nil) })
}

func TestBudgetExhaustionMidScan(t *testing.T) {
	v1, v2 := mvstm.NewVar(1), mvstm.NewVar(2)
	// Unit costs: a fresh single-version read charges Read + Step×1 = 2.
	// Limit 3 admits the first read and runs dry on the second.
	withPolicy(t, budget.Fixed{Limit: 3})
	before := mvstm.ReadStats()
	reached := false
	err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		_ = v1.Get(tx)
		_ = v2.Get(tx)
		reached = true
		return nil
	})
	if !errors.Is(err, mvstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if reached {
		t.Fatal("snapshot attempt continued past the exhausted charge")
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d after budget abort, want 0 (leaked epoch registration)", n)
	}
	d := mvstm.ReadStats().Sub(before)
	if d.BudgetAborts != 1 || d.Commits != 0 || d.ROCommits != 0 {
		t.Fatalf("stats delta = %+v, want exactly one budget abort and no commit", d)
	}
}

// TestBudgetChainWalkCharge prices the walk itself: a pinned snapshot
// that must step over versions committed after it pinned pays Step per
// version examined, so a scanner stepping through write-hot vars runs
// dry in proportion to the history it touches — the exact mechanism that
// bounds a hostile unbounded scanner.
func TestBudgetChainWalkCharge(t *testing.T) {
	v := mvstm.NewVar(0)
	// Step-only costs: the charge for one read is Step×walked.
	withPolicy(t, budget.Fixed{Limit: 4, Costs: budget.Costs{Step: 1}})
	err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		// Commit 4 newer versions after this snapshot pinned; its read
		// must now walk past all of them (4 + the visible one = 5 > 4).
		for i := 0; i < 4; i++ {
			if err := mvstm.Atomically(func(in *mvstm.Tx) error {
				v.Set(in, v.Get(in)+1)
				return nil
			}); err != nil {
				t.Fatalf("nested commit failed: %v", err)
			}
		}
		_ = v.Get(tx)
		return nil
	})
	if !errors.Is(err, mvstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d after walk-charge abort, want 0", n)
	}
}

// TestBudgetVersionChargeAtCommit prices the space half of the trade:
// committing onto a long chain retains every version on it, and a
// Version cost makes the writer pay for that retention before it takes
// any lock — exhaustion must leave the var unlocked and the chain
// untouched.
func TestBudgetVersionChargeAtCommit(t *testing.T) {
	v := mvstm.NewVar(0)
	for i := 0; i < 5; i++ { // grow the chain to 6 versions, unmetered
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatalf("setup commit %d failed: %v", i, err)
		}
	}
	if got := mvstm.ChainLen(v); got != 6 {
		t.Fatalf("setup chain length = %d, want 6", got)
	}
	// Version-only costs: the commit would retain 7 versions; limit 6
	// runs dry at the pre-lock commit charge.
	withPolicy(t, budget.Fixed{Limit: 6, Costs: budget.Costs{Version: 1}})
	before := mvstm.ReadStats()
	err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		v.Set(tx, 100)
		return nil
	})
	if !errors.Is(err, mvstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if mvstm.VarLocked(v) {
		t.Fatal("var left locked after budget abort in commit")
	}
	if got := mvstm.ChainLen(v); got != 6 {
		t.Fatalf("chain length = %d after aborted commit, want 6 (no version published)", got)
	}
	if got := v.Load(); got != 5 {
		t.Fatalf("v = %d after aborted commit, want 5", got)
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d, want 0", n)
	}
	d := mvstm.ReadStats().Sub(before)
	if d.BudgetAborts != 1 || d.Commits != 0 {
		t.Fatalf("stats delta = %+v, want one budget abort and no commit", d)
	}
	// A raised limit funds the same commit: 7 retained versions cost 7.
	mvstm.SetBudgetPolicy(budget.Fixed{Limit: 7, Costs: budget.Costs{Version: 1}})
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		v.Set(tx, 100)
		return nil
	}); err != nil {
		t.Fatalf("funded commit failed: %v", err)
	}
	if got := v.Load(); got != 100 {
		t.Fatalf("v = %d, want 100", got)
	}
}

func TestBudgetRetryChargeStopsConflictLoop(t *testing.T) {
	v := mvstm.NewVar(0)
	sink := mvstm.NewVar(0)
	// Only retries cost: first-committer-wins validation fails every
	// attempt (the nested commit outruns it), so limit 3 funds attempts
	// 1..4 deterministically and refuses a fifth.
	withPolicy(t, budget.Fixed{Limit: 3, Costs: budget.Costs{Retry: 1}})
	attempts := 0
	err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		attempts++
		cur := v.Get(tx)
		if err := mvstm.Atomically(func(in *mvstm.Tx) error {
			v.Set(in, v.Get(in)+1)
			return nil
		}); err != nil {
			t.Fatalf("nested commit failed: %v", err)
		}
		sink.Set(tx, cur)
		return nil
	})
	if !errors.Is(err, mvstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (limit 3 funds exactly 3 re-runs)", attempts)
	}
	if mvstm.VarLocked(v) || mvstm.VarLocked(sink) {
		t.Fatal("lock leaked by the aborting conflict loop")
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d, want 0", n)
	}
}

func TestAtomicallyCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := mvstm.AtomicallyCtx(ctx, func(tx *mvstm.Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// AtomicallyROCtx runs its body exactly once, so cancellation is
	// checked before pinning: the body must not run at all.
	err = mvstm.AtomicallyROCtx(ctx, func(tx *mvstm.Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RO err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("user function ran under a pre-canceled context")
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d, want 0", n)
	}
}

func TestAtomicallyCtxCancelUnblocksRetry(t *testing.T) {
	v := mvstm.NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- mvstm.AtomicallyCtx(ctx, func(tx *mvstm.Tx) error {
			if v.Get(tx) == 0 {
				tx.Retry() // only cancellation can end this wait
			}
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock a parked Retry")
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d after canceled Retry wait, want 0", n)
	}
}

func TestUserPanicDropsEpochRegistration(t *testing.T) {
	v, w := mvstm.NewVar(0), mvstm.NewVar(0)
	for i := 0; i < 64; i++ {
		func() {
			defer func() {
				if r := recover(); r != "user boom" {
					t.Fatalf("recover() = %v, want the user panic value", r)
				}
			}()
			_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
				_ = v.Get(tx)
				w.Set(tx, 42)
				panic("user boom")
			})
		}()
		if n := mvstm.ActivePins(); n != 0 {
			t.Fatalf("iteration %d: ActivePins = %d across a user panic, want 0", i, n)
		}
		if mvstm.VarLocked(v) || mvstm.VarLocked(w) {
			t.Fatalf("iteration %d: lock leaked across a user panic", i)
		}
		if got := w.Load(); got != 0 {
			t.Fatalf("iteration %d: buffered write leaked: w = %d", i, got)
		}
	}
	// Panic on the snapshot path must unpin too.
	func() {
		defer func() {
			if r := recover(); r != "ro boom" {
				t.Fatalf("recover() = %v, want the user panic value", r)
			}
		}()
		_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			_ = v.Get(tx)
			panic("ro boom")
		})
	}()
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d after RO panic, want 0", n)
	}
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		v.Set(tx, v.Get(tx)+1)
		w.Set(tx, 9)
		return nil
	}); err != nil {
		t.Fatalf("post-panic transaction failed: %v", err)
	}
	if v.Load() != 1 || w.Load() != 9 {
		t.Fatalf("post-panic commit wrong: v=%d w=%d", v.Load(), w.Load())
	}
}
