package mvstm

import "repro/internal/tm"

// Test-only exports: the native history trace hook (see trace.go) and the
// chain internals the GC and fuzz tests assert on.

// StartTrace enables history tracing. Call with no transactions in
// flight, before spawning workload goroutines.
func StartTrace() { startTrace() }

// StopTrace disables tracing and returns the recorded history. Call after
// joining every workload goroutine.
func StopTrace() *tm.History { return stopTrace() }

// ChainLen reports the number of versions currently published on v's
// chain.
func ChainLen[T any](v *Var[T]) int { return v.loadChain().len() }

// ChainVersions reports the version timestamps on v's chain,
// newest-first (for asserting truncation boundaries).
func ChainVersions[T any](v *Var[T]) []uint64 {
	c := v.loadChain()
	out := make([]uint64, c.len())
	for i := range out {
		out[i] = c.index(i).ver
	}
	return out
}

// ReadSetLen reports how many read-set entries the descriptor has logged;
// the snapshot path must keep it at zero.
func ReadSetLen(tx *Tx) int { return len(tx.reads) }

// IsRO reports whether the descriptor is running on the snapshot path.
func IsRO(tx *Tx) bool { return tx.ro }

// PinnedRV reports the descriptor's pinned read timestamp.
func PinnedRV(tx *Tx) uint64 { return tx.rv }
