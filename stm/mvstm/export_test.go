package mvstm

import (
	"repro/internal/syncpoint"
	"repro/internal/tm"
	"repro/internal/tm/lockword"
)

// Test-only exports: the native history trace hook (see trace.go) and the
// chain internals the GC and fuzz tests assert on.

// StartTrace enables history tracing. Call with no transactions in
// flight, before spawning workload goroutines.
func StartTrace() { startTrace() }

// StopTrace disables tracing and returns the recorded history. Call after
// joining every workload goroutine.
func StopTrace() *tm.History { return stopTrace() }

// SetSyncHook installs the scheduling-harness hook (see syncpoint.go):
// every transaction begun while it is set calls h at each engine sync
// point, and proc supplies the harness worker id traced as the history
// Proc. Install and remove (h = nil) only with no transactions in
// flight, and run no transactions outside the harness while it is set.
func SetSyncHook(h func(syncpoint.Point), proc func() int) { setSyncHook(h, proc) }

// ChainLen reports the number of versions currently published on v's
// chain.
func ChainLen[T any](v *Var[T]) int {
	b := pinPeek()
	defer unpinPeek(b)
	return v.loadChain().len()
}

// ChainVersions reports the version timestamps on v's chain,
// newest-first (for asserting truncation boundaries).
func ChainVersions[T any](v *Var[T]) []uint64 {
	b := pinPeek()
	defer unpinPeek(b)
	c := v.loadChain()
	out := make([]uint64, c.len())
	for i := range out {
		out[i] = c.index(i).ver
	}
	return out
}

// ClockForTest reports the published clock; ClockAllocForTest the GV7
// allocation high-water mark.
func ClockForTest() uint64      { return clock.Load() }
func ClockAllocForTest() uint64 { return clockAlloc.Load() }

// SetGV7BlockSizeForTest overrides the GV7 block size, returning a
// restore func. Call while quiescent.
func SetGV7BlockSizeForTest(k uint64) func() {
	old := gv7BlockSize
	gv7BlockSize = k
	return func() { gv7BlockSize = old }
}

// RetiredLenForTest drives one transaction and reports the descriptor's
// retired-list length as observed inside it.
func RetiredLenForTest(tx *Tx) int { return len(tx.retired) }

// ReadSetLen reports how many read-set entries the descriptor has logged;
// the snapshot path must keep it at zero.
func ReadSetLen(tx *Tx) int { return len(tx.reads) }

// IsRO reports whether the descriptor is running on the snapshot path.
func IsRO(tx *Tx) bool { return tx.ro }

// PinnedRV reports the descriptor's pinned read timestamp.
func PinnedRV(tx *Tx) uint64 { return tx.rv }

// VarLocked reports whether v's versioned lock word currently has the
// lock bit set; the budget tests assert every abort path leaves it clear.
func VarLocked[T any](v *Var[T]) bool { return lockword.Locked(v.lw.Load()) }

// ActivePins counts epoch slots currently holding a registration (joining
// or pinned): with no transactions in flight it must be zero, or a
// dropped registration would hold the GC floor down forever.
func ActivePins() int {
	n := 0
	if sl := slotList.Load(); sl != nil {
		for _, s := range *sl {
			if s.ts.Load() != slotInactive {
				n++
			}
		}
	}
	return n
}
