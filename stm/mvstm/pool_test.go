package mvstm_test

// Version-chain recycling coverage: replaced chains must flow through
// the size-classed free lists once the epoch floor passes them
// (VersionsPooled grows), correctness must survive pooled storage being
// rewritten (snapshot and non-transactional reads race the recycler),
// and abort paths must recycle their never-published builds without
// double-Put (the -tags mempoolcheck CI lane arms that check).

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/stm/mvstm"
)

// TestVersionsPooledGrows drives enough single-writer churn that retire
// lists fill past the drain threshold and quiesce: recycling must
// actually happen, and with no reader pinned nothing blocks it
// indefinitely.
func TestVersionsPooledGrows(t *testing.T) {
	before := mvstm.ReadStats()
	v := mvstm.NewVar(0)
	// Each commit retires the replaced chain; the per-descriptor drain
	// runs once ≥16 entries accumulate. Under -race, sync.Pool drops ~1/4
	// of descriptor Puts, and a dropped descriptor loses its accumulated
	// retired list (to the GC — safe, but unpooled), so reaching the
	// drain threshold needs ~15 consecutive survivals (~1.3% per streak).
	// 6000 commits make ~20 expected drains; 400 made ~1, a coin flip.
	const commits = 6000
	for i := 0; i < commits; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	d := mvstm.ReadStats().Sub(before)
	if d.VersionsPooled == 0 {
		t.Fatalf("VersionsPooled = 0 after %d commits (chains never recycled): %+v",
			commits, d)
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d after quiescence, want 0", n)
	}
}

// TestPinnedReaderBlocksRecycling: a chain retired while an old snapshot
// is still registered must not be recycled until that snapshot finishes
// — the reader's values must stay intact however much churn follows.
func TestPinnedReaderBlocksRecycling(t *testing.T) {
	v := mvstm.NewVar(100)
	others := make([]*mvstm.Var[int], 8)
	for i := range others {
		others[i] = mvstm.NewVar(i)
	}
	err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		got := v.Get(tx)
		// Churn hard while pinned: every replaced chain's retire
		// timestamp exceeds this snapshot's rv, so none may be recycled
		// yet and the pinned floor version must survive.
		for i := 0; i < 200; i++ {
			if err := mvstm.Atomically(func(in *mvstm.Tx) error {
				v.Set(in, 1000+i)
				others[i%len(others)].Set(in, i)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if again := v.Get(tx); again != got {
			t.Fatalf("pinned snapshot re-read %d, first read %d", again, got)
		}
		if got != 100 {
			t.Fatalf("pinned snapshot read %d, want 100", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLoadRacesRecycler: non-transactional Load registers a momentary
// epoch pin, so the chain it dereferences cannot be rewritten by the
// recycler mid-read. Run under -race this is the regression test for
// the torn-interface-read hazard of unregistered peeks.
func TestLoadRacesRecycler(t *testing.T) {
	v := mvstm.NewVar(0)
	var stop atomic.Bool
	var writer, wg sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 1; !stop.Load(); i++ {
			_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
				v.Set(tx, i)
				return nil
			})
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for i := 0; i < 20000; i++ {
				got := v.Load()
				if got < last {
					t.Errorf("Load went backwards: %d after %d", got, last)
					return
				}
				last = got
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				_ = v.String()
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	writer.Wait()
}

// TestAbortedCommitRecyclesBuilds: every failed-commit path must return
// its never-published chain builds to the pool exactly once. Driven by
// forced validation failures; the mempoolcheck lane turns any double
// recycle into a panic here.
func TestAbortedCommitRecyclesBuilds(t *testing.T) {
	v := mvstm.NewVar(0)
	w := mvstm.NewVar(0)
	var entered sync.WaitGroup
	for i := 0; i < 50; i++ {
		first := true
		err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			got := v.Get(tx)
			if first {
				first = false
				// Invalidate the read before this attempt commits: its
				// build must be recycled and the retry must succeed.
				entered.Add(1)
				go func() {
					defer entered.Done()
					_ = mvstm.Atomically(func(in *mvstm.Tx) error {
						v.Set(in, v.Get(in)+1)
						return nil
					})
				}()
				entered.Wait()
			}
			w.Set(tx, got+1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d, want 0", n)
	}
}
