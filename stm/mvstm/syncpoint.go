package mvstm

// Test-only scheduling hooks, mirroring repro/stm's syncpoint.go: a
// plain global bool plus a per-descriptor callback, zero cost when off
// (one nil check per site). The deterministic interleaving harness
// (internal/schedtest) installs a hook that parks the calling goroutine
// at each syncpoint.Point until a schedule grants it.
//
// mvstm fires the full set: syncpoint.GCSweep marks the commit-side
// chain truncation consulting the epoch table (buildChain), the point
// the pinned-snapshot-vs-GC pathology interleaves against. The snapshot
// read's pre-pin-holder wait loop fires syncpoint.SpinWait each
// iteration instead of yielding to the Go scheduler: under the harness
// the lock holder is a parked worker, and only the schedule can run it.

import "repro/internal/syncpoint"

var syncOn bool
var syncHook func(syncpoint.Point)
var syncProc func() int

// setSyncHook installs (or, with nil, removes) the scheduling hook and
// the worker-id source. Test-only; exported via export_test.go.
func setSyncHook(h func(syncpoint.Point), proc func() int) {
	syncHook, syncProc = h, proc
	syncOn = h != nil
}

// syncAt fires the descriptor's hook, if one was picked up at entry.
func (tx *Tx) syncAt(p syncpoint.Point) {
	if tx.sync != nil {
		tx.sync(p)
	}
}

// syncSpin hands control back to the harness from a wait loop; it
// reports whether a hook is installed so callers can skip the
// runtime.Gosched / sleep that would otherwise pace the spin.
func (tx *Tx) syncSpin() bool {
	if tx.sync == nil {
		return false
	}
	tx.sync(syncpoint.SpinWait)
	return true
}
