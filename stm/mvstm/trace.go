package mvstm

// Test-only history tracing: the mvstm half of the native trace oracle
// introduced for the stm engine (see stm/trace.go, whose design this
// follows exactly). When enabled, every attempt of an Atomically /
// AtomicallyRO call is recorded as one internal/tm.TxnRecord — snapshot
// reads (which the engine itself never logs), buffered writes, and the
// commit/abort outcome — so a bounded concurrent workload yields an
// internal/tm.History the internal/check oracles (Opaque,
// StrictlySerializable) can verify and cmd/opacheck can consume as JSON.
// This is what the GC-truncation and pinned-snapshot opacity tests are
// built on: a long-pinned snapshot transaction reads values other
// transactions have long since overwritten, and the checkers confirm the
// history still serializes with the snapshot ordered at its pin point.
//
// The hook is wired into the hot paths behind a plain bool (traceOn) plus
// a per-descriptor nil check (tx.trec), both false/nil outside tests; the
// enabling functions are exported only to the package's own test binary
// via export_test.go. Enable/disable must happen with no transactions in
// flight. Sequencing matches stm/trace.go: StartSeq is drawn after the
// attempt pins its read timestamp, per-operation Seqs at each read/write,
// EndSeq after the commit published (or the abort unwound), so the seq
// order is a legal linearization and the derived real-time edges all
// happened. Traced values must be int or uint64; OrElse is unsupported.

import (
	"fmt"
	"sync"

	"repro/internal/tm"
)

// traceOn gates the per-attempt trace hooks; toggled only by the
// test-only startTrace/stopTrace, with no transactions in flight.
var traceOn bool

// traceCur is the active collector (nil when tracing is off).
var traceCur *traceCollector

// traceCollector accumulates one tm.History across all traced
// transactions; a single mutex orders the shared sequence counter and the
// per-record appends (tracing is test-only, contention is irrelevant).
type traceCollector struct {
	mu   sync.Mutex
	seq  int
	objs map[varBase]int
	hist tm.History
}

// traceTxn is the per-attempt trace state hung off Tx.trec.
type traceTxn struct {
	c   *traceCollector
	rec *tm.TxnRecord
}

// startTrace installs a fresh collector; test-only, via export_test.go.
func startTrace() {
	traceCur = &traceCollector{objs: make(map[varBase]int)}
	traceOn = true
}

// stopTrace disables tracing and returns the recorded history; test-only.
func stopTrace() *tm.History {
	traceOn = false
	c := traceCur
	traceCur = nil
	if c == nil {
		return &tm.History{}
	}
	return &c.hist
}

// objID maps a Var to a dense t-object index, assigned on first sight (c.mu held).
func (c *traceCollector) objID(v varBase) int {
	id, ok := c.objs[v]
	if !ok {
		id = len(c.objs)
		c.objs[v] = id
	}
	return id
}

// traceValue narrows a traced value to tm.Value. The trace oracle covers
// plain scalar workloads; anything else is a test-authoring error.
func traceValue(val any) tm.Value {
	switch x := val.(type) {
	case int:
		return tm.Value(x)
	case uint64:
		return x
	default:
		panic(fmt.Sprintf("mvstm: trace mode supports int and uint64 Var values only, got %T", val))
	}
}

// traceBegin opens a TxnRecord for the current attempt. Called (behind
// traceOn) right after the attempt pins its read timestamp.
func (tx *Tx) traceBegin() {
	c := traceCur
	if c == nil {
		return
	}
	c.mu.Lock()
	rec := &tm.TxnRecord{ID: len(c.hist.Txns), Proc: int(tx.shard), StartSeq: c.seq, EndSeq: -1}
	c.seq++
	c.hist.Txns = append(c.hist.Txns, rec)
	c.mu.Unlock()
	tx.trec = &traceTxn{c: c, rec: rec}
}

// traceRead records a snapshot read (called on both paths, including
// read-own-write hits on the update path).
func (tx *Tx) traceRead(v varBase, val any) {
	t := tx.trec
	t.c.mu.Lock()
	t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.c.seq, Kind: tm.OpRead, Obj: t.c.objID(v), Value: traceValue(val)})
	t.c.seq++
	t.c.mu.Unlock()
}

// traceWrite records a buffered write at invocation time (lazy buffering:
// the write takes effect only if the attempt commits, which the record's
// final status captures).
func (tx *Tx) traceWrite(v varBase, val any) {
	t := tx.trec
	t.c.mu.Lock()
	t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.c.seq, Kind: tm.OpWrite, Obj: t.c.objID(v), Value: traceValue(val)})
	t.c.seq++
	t.c.mu.Unlock()
}

// traceEnd closes the attempt's record: committed attempts get a tryC
// response, everything else an abort. Called after the commit published
// its versions (or the abort unwound), so EndSeq is inside the commit's
// real-time window.
func (tx *Tx) traceEnd(committed bool) {
	t := tx.trec
	if t == nil {
		return
	}
	tx.trec = nil
	t.c.mu.Lock()
	t.rec.EndSeq = t.c.seq
	if committed {
		t.rec.Status = tm.TxnCommitted
		t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.c.seq, Kind: tm.OpTryCommit, Obj: -1})
	} else {
		t.rec.Status = tm.TxnAborted
		t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.c.seq, Kind: tm.OpAbort, Obj: -1, Aborted: true})
	}
	t.c.seq++
	t.c.mu.Unlock()
}
