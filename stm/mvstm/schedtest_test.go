package mvstm_test

// Hostile-schedule replay against the real multi-version engine, via the
// internal/schedtest harness (see stm/schedtest_test.go for the TL2
// counterpart and the instance-design notes). mvstm is where the fourth
// race-only pathology of PR 8 lives: a pinned snapshot racing GC
// truncation, deterministic here because the GC sweep itself is a sync
// point (syncpoint.GCSweep fires just before a committing writer
// consults the minimum active read version).

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/check"
	"repro/internal/sched"
	"repro/internal/schedtest"
	"repro/internal/syncpoint"
	"repro/internal/tm"
	"repro/stm/mvstm"
)

// buildSchedInstance registers the standard three-transaction instance
// (see stm/schedtest_test.go: asymmetric so every schedule terminates)
// on a fresh harness over fresh Vars, and installs the hook and trace.
func buildSchedInstance() *schedtest.Harness {
	x := mvstm.NewVar(0)
	y := mvstm.NewVar(0)
	h := schedtest.New()
	h.Go(func() {
		_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
			y.Set(tx, x.Get(tx)+1)
			return nil
		})
	})
	h.Go(func() {
		_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
			x.Set(tx, x.Get(tx)+1)
			return nil
		})
	})
	h.Go(func() {
		_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			_ = x.Get(tx)
			_ = y.Get(tx)
			return nil
		})
	})
	h.SetStepLimit(20_000)
	mvstm.SetSyncHook(h.Hook(), h.Proc())
	mvstm.StartTrace()
	return h
}

func runSchedInstance(t *testing.T, pol sched.Policy) (*tm.History, *schedtest.Harness) {
	t.Helper()
	h := buildSchedInstance()
	defer mvstm.SetSyncHook(nil, nil)
	err := h.Run(pol)
	hist := mvstm.StopTrace()
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	return hist, h
}

// TestSchedRoundRobinOpacity replays the fair adversarial schedule
// against the real engine, the oracle asserting opacity on the result
// (verifyHistory lives in trace_opacity_test.go).
func TestSchedRoundRobinOpacity(t *testing.T) {
	hist, h := runSchedInstance(t, &sched.RoundRobin{})
	if len(h.Log()) == 0 {
		t.Fatal("harness recorded no parks — the sync hooks did not fire")
	}
	verifyHistory(t, hist)
}

// TestSchedScheduleDeterminism: the same schedule driven twice against
// the real engine yields byte-identical trace histories, and the pick
// schedule extracted from a run replays to the same history again.
func TestSchedScheduleDeterminism(t *testing.T) {
	hist1, run1 := runSchedInstance(t, &sched.RoundRobin{})
	hist2, run2 := runSchedInstance(t, &sched.RoundRobin{})
	if fmt.Sprint(run1.Log()) != fmt.Sprint(run2.Log()) {
		t.Fatalf("same policy, different schedules:\n%v\n%v", run1.Log(), run2.Log())
	}
	if hist1.String() != hist2.String() {
		t.Fatalf("same schedule, different histories:\n%s\nvs\n%s", hist1, hist2)
	}
	hist3, _ := runSchedInstance(t, sched.NewReplay(run1.Schedule()))
	if hist3.String() != hist1.String() {
		t.Fatalf("extracted schedule %v diverged on replay:\n%s\nvs\n%s", run1.Schedule(), hist3, hist1)
	}
}

// TestSchedExploreOpacity runs Explore's preemption-bounded enumeration
// against the real engine; every bounded schedule of the instance must
// yield an opaque history, and one explored schedule must replay to a
// byte-identical history.
func TestSchedExploreOpacity(t *testing.T) {
	defer mvstm.SetSyncHook(nil, nil)
	var schedules [][]int
	build := func() (sched.Runner, func() error) {
		h := buildSchedInstance()
		return h, func() error {
			hist := mvstm.StopTrace()
			if res := check.Opaque(hist); !res.OK {
				return fmt.Errorf("history not opaque:\n%s", hist)
			}
			schedules = append(schedules, h.Schedule())
			return nil
		}
	}
	res, err := sched.ExploreRunner(build, sched.ExploreOpts{MaxPreemptions: 1, MaxRuns: 64, StepLimit: 400})
	mvstm.SetSyncHook(nil, nil)
	mvstm.StopTrace()
	if err != nil {
		t.Fatalf("exploration found a violation: %v", err)
	}
	if res.Runs < 5 || len(schedules) < 2 {
		t.Fatalf("exploration barely branched (runs=%d, completed=%d) — the hooks are not creating decision points", res.Runs, len(schedules))
	}
	target := schedules[len(schedules)-1]
	h1, _ := runSchedInstance(t, sched.NewReplay(target))
	h2, _ := runSchedInstance(t, sched.NewReplay(target))
	if h1.String() != h2.String() {
		t.Fatalf("explored schedule %v diverged on replay:\n%s\nvs\n%s", target, h1, h2)
	}
	verifyHistory(t, h1)
}

// TestSchedPinnedSnapshotVsGCTruncation pins the fourth pathology: a
// read-only transaction pins its snapshot and certifies x, a writer then
// commits six generations of an invariant-preserving pair (x=i, y=-i)
// with the retention cranked down so its chain builds run GC sweeps
// while the reader is parked, and the reader's resumed read of y must
// come from its pinned snapshot — the sweep must retain the old
// versions the registered reader can still need, however far past the
// retention the chains grow.
func TestSchedPinnedSnapshotVsGCTruncation(t *testing.T) {
	mvstm.SetRetention(2)
	defer mvstm.SetRetention(mvstm.DefaultRetention)
	x := mvstm.NewVar(0)
	y := mvstm.NewVar(0)
	gotX, gotY := -1, -1
	h := schedtest.New()
	h.Go(func() {
		_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			gotX = x.Get(tx)
			gotY = y.Get(tx)
			return nil
		})
	})
	h.Go(func() {
		for i := 1; i <= 6; i++ {
			_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
				x.Set(tx, i)
				y.Set(tx, -i)
				return nil
			})
		}
	})
	h.SetStepLimit(20_000)
	mvstm.SetSyncHook(h.Hook(), h.Proc())
	defer mvstm.SetSyncHook(nil, nil)
	mvstm.StartTrace()
	pol := &schedtest.PolicyFunc{Label: "truncate-under-pin", PickFn: func(runnable []int, _ uint64) int {
		// Park the reader once it has pinned and certified x, run the
		// writer's six commits (GC sweeps included) to completion, then
		// resume the reader.
		if h.Count(0, syncpoint.PostReadCertify) == 0 && slices.Contains(runnable, 0) {
			return 0
		}
		if slices.Contains(runnable, 1) {
			return 1
		}
		return runnable[0]
	}}
	err := h.Run(pol)
	mvstm.SetSyncHook(nil, nil) // before the checks below run transactions of their own
	hist := mvstm.StopTrace()
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	if h.Count(1, syncpoint.GCSweep) == 0 {
		t.Fatal("no GC sweep ran under the pinned reader — the pathology precondition did not hold")
	}
	if gotX != 0 || gotY != 0 {
		t.Fatalf("pinned reader got (x,y) = (%d,%d), want the snapshot (0,0): GC truncated a pinned version", gotX, gotY)
	}
	if n := mvstm.ChainLen(x); n < 2 {
		t.Fatalf("x retains %d versions under an active pin, want at least the pinned and the newest", n)
	}
	verifyHistory(t, hist)
	var fx, fy int
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		fx, fy = x.Get(tx), y.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fx != 6 || fy != -6 {
		t.Fatalf("post-run state (x,y) = (%d,%d), want (6,-6)", fx, fy)
	}
}
