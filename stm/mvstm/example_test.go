package mvstm_test

import (
	"fmt"

	"repro/stm/mvstm"
)

// ExampleAtomically mirrors the stm quickstart on the multi-version
// engine: the update pipeline is the same TL2-style lock-validate-publish,
// except commits append versions instead of overwriting.
func ExampleAtomically() {
	alice := mvstm.NewVar(100)
	bob := mvstm.NewVar(0)

	err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		a := alice.Get(tx)
		alice.Set(tx, a-30)
		bob.Set(tx, bob.Get(tx)+30)
		return nil
	})

	fmt.Println(err, alice.Load(), bob.Load())
	// Output: <nil> 70 30
}

// ExampleAtomicallyRO shows the snapshot path — the reason this engine
// exists: the transaction pins its read timestamp once and every read
// walks the version chain to that snapshot, so it never aborts, logs a
// read set, or revalidates, no matter how hard writers churn (where
// stm.AtomicallyRO must certify every read and abort/replay on churn).
func ExampleAtomicallyRO() {
	price := mvstm.NewVar(25)
	quantity := mvstm.NewVar(4)

	var total int
	_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		// Both reads come from the pinned snapshot: a concurrent price
		// update lands as a newer version this transaction never sees.
		total = price.Get(tx) * quantity.Get(tx)
		return nil
	})

	fmt.Println(total)
	// Output: 100
}

// ExampleSetRetention bounds the space half of the trade: each chain
// keeps this many recent versions (plus anything an active snapshot still
// needs); committers reclaim the rest.
func ExampleSetRetention() {
	mvstm.SetRetention(4)
	defer mvstm.SetRetention(mvstm.DefaultRetention)

	v := mvstm.NewVar(0)
	for i := 1; i <= 100; i++ {
		_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		})
	}

	fmt.Println(v.Load(), mvstm.ReadStats().VersionsReclaimed > 0)
	// Output: 100 true
}
