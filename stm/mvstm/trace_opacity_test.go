package mvstm_test

// Native-history opacity tests for the multi-version engine: the
// test-only trace hook (mvstm/trace.go) records every attempt as an
// internal/tm.History and the internal/check oracles verify opacity and
// strict serializability — the same verification pass the stm engine got
// in PR 4, now covering snapshot reads, pinned old snapshots, and GC
// truncation. The serialization oracles do exhaustive search, so
// workloads here are deliberately bounded.

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/tm"
	"repro/stm/budget"
	"repro/stm/mvstm"
)

// verifyHistory asserts the two oracle properties on a recorded native
// history.
func verifyHistory(t *testing.T, h *tm.History) {
	t.Helper()
	if len(h.Txns) == 0 {
		t.Fatal("trace recorded no transactions")
	}
	if res := check.Opaque(h); !res.OK {
		t.Errorf("history is not opaque:\n%s", h)
	}
	if res := check.StrictlySerializable(h); !res.OK {
		t.Errorf("history is not strictly serializable:\n%s", h)
	}
}

// TestTraceOpacityConcurrentMixed: a bounded concurrent workload — one
// read-modify-write writer, one Atomically reader, one AtomicallyRO
// snapshot reader — must produce an opaque, strictly serializable
// history, aborted update attempts included. Run with -race.
func TestTraceOpacityConcurrentMixed(t *testing.T) {
	x := mvstm.NewVar(0)
	y := mvstm.NewVar(0)
	mvstm.StartTrace()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
				x.Set(tx, x.Get(tx)+1)
				y.Set(tx, y.Get(tx)+1)
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
				if x.Get(tx) != y.Get(tx) {
					t.Error("update-path reader saw x != y inside one snapshot")
				}
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
				if x.Get(tx) != y.Get(tx) {
					t.Error("snapshot reader saw x != y")
				}
				return nil
			})
		}
	}()
	wg.Wait()
	h := mvstm.StopTrace()
	verifyHistory(t, h)
}

// TestTraceOpacityPinnedSnapshot orchestrates the engine's defining
// interleaving deterministically: a snapshot transaction pins, reads x,
// then a writer commits to both x and y *inside the snapshot's window* —
// and the snapshot's later read of y still returns the pre-writer value
// (TL2's RO path would abort and replay here; the multi-version engine
// reads its version and runs once). The history must serialize with the
// snapshot before the writer despite finishing after it in real time.
func TestTraceOpacityPinnedSnapshot(t *testing.T) {
	x := mvstm.NewVar(0)
	y := mvstm.NewVar(0)
	mvstm.StartTrace()
	invocations := 0
	var gotX, gotY int
	if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		invocations++
		gotX = x.Get(tx)
		if err := mvstm.Atomically(func(wtx *mvstm.Tx) error {
			x.Set(wtx, 2)
			y.Set(wtx, 2)
			return nil
		}); err != nil {
			return err
		}
		gotY = y.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	h := mvstm.StopTrace()
	if invocations != 1 {
		t.Fatalf("snapshot ran %d times, want exactly 1", invocations)
	}
	if gotX != 0 || gotY != 0 {
		t.Fatalf("snapshot = (%d,%d), want (0,0) (the pre-writer versions)", gotX, gotY)
	}
	verifyHistory(t, h)
	// The committed snapshot transaction must be read-only in the record.
	ro := 0
	for _, rec := range h.Txns {
		if rec.Status == tm.TxnCommitted && rec.ReadOnly() {
			ro++
		}
	}
	if ro != 1 {
		t.Fatalf("history has %d committed read-only transactions, want 1:\n%s", ro, h)
	}
}

// TestTraceOpacityGCTruncation is the GC-truncation interleaving: a
// reader pins after a prefix of writes, more writes land and force
// truncation below the retention (reclaiming versions older than the
// reader's floor), and the reader's subsequent read still returns its
// floor version. The full history — truncating writers included — must
// stay opaque and strictly serializable.
func TestTraceOpacityGCTruncation(t *testing.T) {
	mvstm.SetRetention(2)
	defer mvstm.SetRetention(mvstm.DefaultRetention)
	x := mvstm.NewVar(0)
	mvstm.StartTrace()
	before := mvstm.ReadStats()
	// Prefix: three committed versions before the reader pins.
	for i := 1; i <= 3; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			x.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var first, last int
	if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		first = x.Get(tx)
		// Churn inside the snapshot's window: truncation reclaims versions
		// below the pinned floor but must keep the floor itself.
		for i := 4; i <= 9; i++ {
			if err := mvstm.Atomically(func(wtx *mvstm.Tx) error {
				x.Set(wtx, i)
				return nil
			}); err != nil {
				return err
			}
		}
		last = x.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	h := mvstm.StopTrace()
	if first != 3 || last != 3 {
		t.Fatalf("pinned snapshot read (%d,%d), want (3,3)", first, last)
	}
	if d := mvstm.ReadStats().Sub(before); d.VersionsReclaimed == 0 {
		t.Fatalf("no truncation happened inside the snapshot window: %+v", d)
	}
	if got := mvstm.ChainLen(x); got >= 10 {
		t.Fatalf("chain length = %d, want truncation below the full history", got)
	}
	verifyHistory(t, h)
}

// TestTraceOpacityBudgetAbort pins the metering soundness claim on the
// multi-version engine: refusing a snapshot scan mid-walk (the one abort
// the otherwise abort-free RO path has) must leave a history the opacity
// checker cannot tell from a validation abort — the refused attempt read
// only committed state and published nothing. The refusal lands between
// two invariant-preserving writer commits.
func TestTraceOpacityBudgetAbort(t *testing.T) {
	x := mvstm.NewVar(0)
	y := mvstm.NewVar(0)
	mvstm.StartTrace()
	writeBoth := func(v int) {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			x.Set(tx, v)
			y.Set(tx, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	writeBoth(1)
	// Unit costs: a head-hit snapshot read charges Read + Step×1 = 2, so
	// the first Get leaves 1 and the second refuses.
	mvstm.SetBudgetPolicy(budget.Fixed{Limit: 3})
	err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		_ = x.Get(tx)
		_ = y.Get(tx)
		t.Error("snapshot attempt survived an exhausted grant")
		return nil
	})
	mvstm.SetBudgetPolicy(nil)
	if !errors.Is(err, mvstm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	if n := mvstm.ActivePins(); n != 0 {
		t.Fatalf("ActivePins = %d after the traced refusal, want 0", n)
	}
	writeBoth(2)
	h := mvstm.StopTrace()
	verifyHistory(t, h)
	aborted := 0
	for _, rec := range h.Txns {
		if rec.Status != tm.TxnAborted {
			continue
		}
		aborted++
		reads := 0
		for _, op := range rec.Ops {
			if op.Kind == tm.OpRead {
				reads++
			}
		}
		// The read that fit the grant is in the record; the refused one
		// never completed its walk and must not be.
		if reads != 1 {
			t.Errorf("budget-aborted attempt recorded %d reads, want 1:\n%s", reads, h)
		}
	}
	if aborted != 1 {
		t.Fatalf("history has %d aborted attempts, want exactly the refusal:\n%s", aborted, h)
	}
}

// TestTraceHistoryJSONRoundTrip: the recorded mvstm history marshals to
// the JSON encoding cmd/opacheck consumes and survives the round trip.
func TestTraceHistoryJSONRoundTrip(t *testing.T) {
	x := mvstm.NewVar(0)
	mvstm.StartTrace()
	_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
		x.Set(tx, x.Get(tx)+1)
		return nil
	})
	_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		_ = x.Get(tx)
		return nil
	})
	h := mvstm.StopTrace()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back tm.History
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != h.String() {
		t.Fatalf("round trip changed the history:\n%s\nvs\n%s", h, &back)
	}
	verifyHistory(t, &back)
}
