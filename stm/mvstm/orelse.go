package mvstm

// OrElse composes two transactional alternatives: it runs f, and if f
// blocks via Retry, rolls back f's writes and runs g instead. If g also
// blocks, the whole transaction waits (on the union of both branches'
// read sets) and re-runs — the same combinator as stm.Tx.OrElse. Inside
// AtomicallyRO the branches cannot block (Retry panics there), so OrElse
// degenerates to running f.
//
// Only Retry falls through to g: a conflict abort restarts the entire
// enclosing transaction, and an error returned by f is returned
// immediately (with f's writes still buffered, exactly as if f's body had
// been inlined).
func (tx *Tx) OrElse(f, g func(*Tx) error) error {
	savedWrites, savedMap := tx.snapshotWrites()

	err, retried := tx.attemptBranch(f)
	if !retried {
		return err
	}
	// f blocked: discard its writes — including overwrites of entries that
	// were already buffered before the branch, which the snapshot preserves
	// by value. (f's reads stay in the read set, both for commit-time
	// validation and so a wake-up on anything f read re-runs the
	// transaction, as Retry semantics require.)
	tx.restoreWrites(savedWrites, savedMap)
	return g(tx)
}

// attemptBranch runs f, translating only the Retry signal into control
// flow; conflict aborts and foreign panics propagate.
func (tx *Tx) attemptBranch(f func(*Tx) error) (err error, retried bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(waitSignal); ok {
				retried = true
				return
			}
			panic(r)
		}
	}()
	return f(tx), false
}
