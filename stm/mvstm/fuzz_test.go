package mvstm_test

// Differential fuzzing of the multi-version engine: a fuzzed op sequence
// drives mvstm transactions and a mutex-guarded model map side by side.
// Beyond the value/presence agreement the container fuzzers check, this
// target exercises the engine's version machinery: chain overflow past
// the inline head, GC truncation at the retention boundary, and — via a
// channel-coordinated goroutine holding one AtomicallyRO open across
// driver ops — the reader-pinned-epoch vs writer race: the pinned
// snapshot must keep returning the model state captured at its pin, no
// matter how many versions writers push or the GC reclaims meanwhile.
//
// CI runs this as a smoke job (`go test -fuzz=FuzzMVStm -fuzztime=10s`,
// see make fuzz-smoke); a plain `go test` replays just the seeds.

import (
	"testing"

	"repro/stm/mvstm"
)

// fuzzVars is the full fuzzed keyspace — wide enough that the batched
// transaction op can buffer more than writeSetMapThreshold (24) distinct
// Vars in one commit, exercising the write-set map promotion and the
// commit-time re-sort. Point ops stay inside the first fuzzHot Vars so
// chains there churn constantly.
const (
	fuzzVars = 40
	fuzzHot  = 8
)

// fuzzRetention keeps the retention at the inline-head size so overflow
// and truncation both happen within a few ops.
const fuzzRetention = 3

// pinnedSnap holds one AtomicallyRO transaction open on its own
// goroutine, serving reads on demand; all channel hand-offs are
// synchronous, so the interleaving is deterministic.
type pinnedSnap struct {
	req  chan int
	resp chan int
	done chan struct{}
	// model is the model state captured when the snapshot pinned.
	model [fuzzVars]int
}

func openPinnedSnap(vars []*mvstm.Var[int], model *[fuzzVars]int) *pinnedSnap {
	p := &pinnedSnap{req: make(chan int), resp: make(chan int), done: make(chan struct{}), model: *model}
	ready := make(chan struct{})
	go func() {
		_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			close(ready)
			for i := range p.req {
				p.resp <- vars[i].Get(tx)
			}
			return nil
		})
		close(p.done)
	}()
	<-ready
	return p
}

func (p *pinnedSnap) read(i int) int {
	p.req <- i
	return <-p.resp
}

func (p *pinnedSnap) close() {
	close(p.req)
	<-p.done
}

func FuzzMVStm(f *testing.F) {
	// Seeds: ops of 3 bytes (kind, var, val).
	// Chain overflow: 12 single-write commits to one Var (past the inline
	// head and the retention), then a snapshot readback.
	var overflow []byte
	for i := 0; i < 12; i++ {
		overflow = append(overflow, 0, 0, byte(i))
	}
	overflow = append(overflow, 2, 0, 0)
	f.Add(overflow)
	// GC truncation at the retention boundary: enough commits to one Var to
	// cross the sweep trigger (twice the retention), interleaved with reads.
	var boundary []byte
	for i := 0; i <= 2*fuzzRetention; i++ {
		boundary = append(boundary, 0, 1, byte(10+i))
	}
	boundary = append(boundary, 2, 1, 0, 0, 1, 99, 2, 1, 0)
	f.Add(boundary)
	// Reader-pinned-epoch vs writer race: pin, churn one Var far past the
	// retention, read through the pin (must see the pre-pin state), write
	// other Vars, read again, unpin, verify the post-pin world.
	pinRace := []byte{0, 2, 5, 3, 0, 0}
	for i := 0; i < 10; i++ {
		pinRace = append(pinRace, 0, 2, byte(20+i))
	}
	pinRace = append(pinRace, 4, 2, 0, 0, 3, 7, 4, 3, 0, 5, 0, 0, 2, 2, 0)
	f.Add(pinRace)
	// Batched multi-Var transaction crossing the write-set promotion
	// threshold (24), plus RMWs and a full snapshot readback.
	f.Add([]byte{6, 0, 30, 1, 4, 9, 2, 3, 0, 7, 5, 0, 6, 2, 13, 2, 0, 0})
	// GC truncation inside a pin window — the schedtest counterexample
	// shape (TestSchedPinnedSnapshotVsGCTruncation): pin a snapshot over a
	// two-Var pair, then churn BOTH Vars past the sweep trigger (twice the
	// retention) so buildChain considers truncation while the pin is the
	// oldest active reader, read the pair through the pin mid-churn and
	// after, then unpin and verify the post-churn world.
	truncInWindow := []byte{0, 0, 1, 0, 1, 2, 3, 0, 0}
	for i := 0; i <= 2*fuzzRetention; i++ {
		truncInWindow = append(truncInWindow,
			0, 0, byte(30+i), 0, 1, byte(60+i), // write the pair
			4, 0, 0, 4, 1, 0) // pinned reads inside the window
	}
	truncInWindow = append(truncInWindow, 2, 0, 0, 5, 0, 0, 2, 0, 0)
	f.Add(truncInWindow)

	f.Fuzz(func(t *testing.T, ops []byte) {
		mvstm.SetRetention(fuzzRetention)
		defer mvstm.SetRetention(mvstm.DefaultRetention)
		vars := make([]*mvstm.Var[int], fuzzVars)
		for i := range vars {
			vars[i] = mvstm.NewVar(0)
		}
		var model [fuzzVars]int
		var pin *pinnedSnap
		defer func() {
			if pin != nil {
				pin.close()
			}
		}()
		for i := 0; i+2 < len(ops); i += 3 {
			kind, k, val := ops[i]%8, int(ops[i+1])%fuzzHot, int(ops[i+2])
			switch kind {
			case 0: // write
				if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
					vars[k].Set(tx, val)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				model[k] = val
			case 1: // read-modify-write
				if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
					vars[k].Set(tx, vars[k].Get(tx)+val)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				model[k] += val
			case 2: // snapshot readback of every Var
				var got [fuzzVars]int
				if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
					for j := range vars {
						got[j] = vars[j].Get(tx)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if got != model {
					t.Fatalf("snapshot readback %v, model %v", got, model)
				}
			case 3: // open the pinned snapshot (no-op if already open)
				if pin == nil {
					pin = openPinnedSnap(vars, &model)
				}
			case 4: // read through the pinned snapshot: pre-pin model state
				if pin != nil {
					if got := pin.read(k); got != pin.model[k] {
						t.Fatalf("pinned read var %d = %d, want the pin-time value %d", k, got, pin.model[k])
					}
				}
			case 5: // close the pinned snapshot
				if pin != nil {
					pin.close()
					pin = nil
				}
			case 6: // batched writes in ONE transaction, spread across the
				// full keyspace: count can exceed writeSetMapThreshold (24),
				// promoting the write set to its map index mid-commit.
				count := val%33 + 1
				if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
					for j := 0; j < count; j++ {
						vars[(k+j)%fuzzVars].Set(tx, val+j)
						// Update transactions read their own snapshot too.
						_ = vars[(k+j)%fuzzVars].Get(tx)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < count; j++ {
					model[(k+j)%fuzzVars] = val + j
				}
			case 7: // non-transactional Load: the newest committed value
				if got := vars[k].Load(); got != model[k] {
					t.Fatalf("Load(var %d) = %d, model %d", k, got, model[k])
				}
			}
		}
		if pin != nil {
			// The pinned snapshot must have survived everything since it
			// opened, GC truncation included.
			for j := 0; j < fuzzVars; j++ {
				if got := pin.read(j); got != pin.model[j] {
					t.Fatalf("final pinned read var %d = %d, want %d", j, got, pin.model[j])
				}
			}
			pin.close()
			pin = nil
		}
		// Final full readback in one snapshot transaction.
		var got [fuzzVars]int
		if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			for j := range vars {
				got[j] = vars[j].Get(tx)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != model {
			t.Fatalf("final readback %v, model %v", got, model)
		}
	})
}
