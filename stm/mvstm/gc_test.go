package mvstm_test

// GC and stat-accounting coverage: chains stay bounded by the retention
// under churn, the counters account versions appended/reclaimed and the
// chain-length high-water mark, and — the regression the epoch protocol
// exists for — a pinned old reader blocks truncation below its snapshot
// floor until it finishes, with no snapshot-too-old panic under the
// default retention.

import (
	"testing"

	"repro/stm/mvstm"
)

// pinnedReader opens an AtomicallyRO transaction on a dedicated goroutine
// and keeps it pinned until Close; Read serves snapshot reads inside the
// open transaction, synchronously.
type pinnedReader struct {
	req   chan *mvstm.Var[int]
	resp  chan int
	done  chan struct{}
	ready chan struct{}
}

func openPinnedReader() *pinnedReader {
	r := &pinnedReader{
		req:   make(chan *mvstm.Var[int]),
		resp:  make(chan int),
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	go func() {
		_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			close(r.ready)
			for v := range r.req {
				r.resp <- v.Get(tx)
			}
			return nil
		})
		close(r.done)
	}()
	<-r.ready
	return r
}

func (r *pinnedReader) Read(v *mvstm.Var[int]) int {
	r.req <- v
	return <-r.resp
}

func (r *pinnedReader) Close() {
	close(r.req)
	<-r.done
}

// TestChainBoundedByRetention: with no pinned readers, a churned Var's
// chain stays inside the hysteresis band (retention up to twice the
// retention), and the counters show the reclaimed versions.
func TestChainBoundedByRetention(t *testing.T) {
	const writes = 100
	v := mvstm.NewVar(0)
	before := mvstm.ReadStats()
	for i := 0; i < writes; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got, r := mvstm.ChainLen(v), mvstm.Retention(); got < r || got > 2*r {
		t.Fatalf("chain length = %d, want within the hysteresis band [%d,%d]", got, r, 2*r)
	}
	d := mvstm.ReadStats().Sub(before)
	if d.VersionsAppended < writes {
		t.Errorf("VersionsAppended = %d, want ≥ %d", d.VersionsAppended, writes)
	}
	if d.VersionsReclaimed == 0 || d.GCSweeps == 0 {
		t.Errorf("no GC activity recorded: %+v", d)
	}
	// Appended − reclaimed must cover what is still live on this chain.
	if live := d.VersionsAppended - d.VersionsReclaimed; live < uint64(mvstm.Retention()-1) {
		t.Errorf("reclaimed more than it appended: %+v", d)
	}
	if d.ChainHWM < uint64(mvstm.Retention()) {
		t.Errorf("ChainHWM = %d, want ≥ retention %d", d.ChainHWM, mvstm.Retention())
	}
	if v.Load() != writes {
		t.Fatalf("newest value = %d, want %d", v.Load(), writes)
	}
}

// TestPinnedReaderBlocksTruncation is the regression test of the epoch
// protocol: a reader pinned before a burst of writes keeps its floor
// version alive — the chain grows past the retention while it runs, the
// reader still reads its snapshot value (no snapshot-too-old panic), and
// the first commit after the reader retires reclaims the backlog.
func TestPinnedReaderBlocksTruncation(t *testing.T) {
	const writes = 50
	v := mvstm.NewVar(0)
	r := openPinnedReader()
	for i := 0; i < writes; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := mvstm.ChainLen(v); got < writes {
		t.Fatalf("chain length = %d while a reader is pinned, want ≥ %d (truncation must be blocked)", got, writes)
	}
	// The pinned snapshot predates every write: it must read the initial
	// value from the bottom of the grown chain.
	if got := r.Read(v); got != 0 {
		t.Fatalf("pinned reader saw %d, want the pre-pin snapshot value 0", got)
	}
	r.Close()
	before := mvstm.ReadStats()
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		v.Set(tx, -1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := mvstm.ChainLen(v), mvstm.Retention(); got != want {
		t.Fatalf("chain length = %d after the reader retired, want retention %d", got, want)
	}
	if d := mvstm.ReadStats().Sub(before); d.VersionsReclaimed < writes-uint64(2*mvstm.Retention()) {
		t.Fatalf("reclaimed %d versions after the reader retired, want ≥ %d", d.VersionsReclaimed, writes-uint64(2*mvstm.Retention()))
	}
}

// TestChainHWMTracksPinnedGrowth: the high-water mark records the growth a
// pinned reader forces, which is the E11 ablation's space signal.
func TestChainHWMTracksPinnedGrowth(t *testing.T) {
	const writes = 60
	v := mvstm.NewVar(0)
	r := openPinnedReader()
	for i := 0; i < writes; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	if hwm := mvstm.ReadStats().ChainHWM; hwm < writes {
		t.Fatalf("ChainHWM = %d, want ≥ %d (pinned growth must be visible)", hwm, writes)
	}
}

// TestTruncationKeepsReaderFloor pins a reader mid-history: versions
// older than the reader's floor are still reclaimed while it runs, the
// floor itself and everything newer stay, and the reader's snapshot is
// intact throughout.
func TestTruncationKeepsReaderFloor(t *testing.T) {
	v := mvstm.NewVar(0)
	for i := 1; i <= 5; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	r := openPinnedReader()
	defer r.Close()
	if got := r.Read(v); got != 5 {
		t.Fatalf("pinned reader sees %d, want 5", got)
	}
	for i := 6; i <= 40; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The chain may truncate below the retention boundary but never below
	// the reader's floor (the version holding 5).
	if got := r.Read(v); got != 5 {
		t.Fatalf("pinned reader's snapshot moved: got %d, want 5", got)
	}
	vers := mvstm.ChainVersions(v)
	if len(vers) > 40 {
		t.Fatalf("chain grew unboundedly above the floor: %d versions", len(vers))
	}
}

// TestSnapshotReadStats: the per-call batched read counters land in the
// stripes — reads served, walk steps, and the mean walk derived from them.
func TestSnapshotReadStats(t *testing.T) {
	v := mvstm.NewVar(0)
	before := mvstm.ReadStats()
	if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		for i := 0; i < 10; i++ {
			_ = v.Get(tx)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	d := mvstm.ReadStats().Sub(before)
	if d.SnapshotReads < 10 {
		t.Errorf("SnapshotReads = %d, want ≥ 10", d.SnapshotReads)
	}
	if d.WalkSteps < d.SnapshotReads {
		t.Errorf("WalkSteps = %d < SnapshotReads = %d", d.WalkSteps, d.SnapshotReads)
	}
	if d.ROCommits != 1 || d.Commits != 1 {
		t.Errorf("commit counters: %+v", d)
	}
	if d.MeanChainWalk() < 1 {
		t.Errorf("MeanChainWalk = %v, want ≥ 1", d.MeanChainWalk())
	}
}

// TestPanickedTransactionReleasesEpoch: a panic escaping a transaction
// (here the Set-inside-RO usage error) abandons the descriptor, but its
// epoch registration must be released — a leaked registration would
// silently pin the GC floor at that snapshot forever.
func TestPanickedTransactionReleasesEpoch(t *testing.T) {
	v := mvstm.NewVar(0)
	func() {
		defer func() { _ = recover() }()
		_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			v.Set(tx, 1) // usage error: panics out of the call
			return nil
		})
	}()
	func() {
		defer func() { _ = recover() }()
		_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
			panic("user bug")
		})
	}()
	for i := 0; i < 3*mvstm.Retention(); i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got, r := mvstm.ChainLen(v), mvstm.Retention(); got > 2*r {
		t.Fatalf("chain length = %d after panicked transactions, want ≤ %d (epoch registration leaked?)", got, 2*r)
	}
}

// TestSetRetentionValidation: the knob rejects values that could not keep
// the newest version.
func TestSetRetentionValidation(t *testing.T) {
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetRetention(%d) did not panic", n)
				}
			}()
			mvstm.SetRetention(n)
		}()
	}
	mvstm.SetRetention(5)
	if got := mvstm.Retention(); got != 5 {
		t.Fatalf("Retention() = %d, want 5", got)
	}
	mvstm.SetRetention(mvstm.DefaultRetention)
}

// TestRetentionBoundary exercises truncation exactly at the hysteresis
// edge: a chain one version short of the sweep trigger (twice the
// retention) is left alone, and the commit that reaches the trigger
// truncates back down to the retention.
func TestRetentionBoundary(t *testing.T) {
	mvstm.SetRetention(3)
	defer mvstm.SetRetention(mvstm.DefaultRetention)
	v := mvstm.NewVar(0)
	before := mvstm.ReadStats()
	for i := 1; i <= 5; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Five versions plus the initial one: exactly at the trigger (2×3),
	// reached by the push of the fifth write, so no sweep has fired yet.
	if got := mvstm.ChainLen(v); got != 6 {
		t.Fatalf("chain length = %d one short of the trigger, want 6", got)
	}
	if d := mvstm.ReadStats().Sub(before); d.VersionsReclaimed != 0 {
		t.Fatalf("reclaimed %d versions below the trigger, want 0", d.VersionsReclaimed)
	}
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		v.Set(tx, 6)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := mvstm.ChainLen(v), mvstm.Retention(); got != want {
		t.Fatalf("chain length = %d after the trigger commit, want retention %d", got, want)
	}
	if d := mvstm.ReadStats().Sub(before); d.VersionsReclaimed != 4 {
		t.Fatalf("trigger commit reclaimed %d versions, want 4", d.VersionsReclaimed)
	}
	if v.Load() != 6 {
		t.Fatalf("newest value = %d, want 6", v.Load())
	}
}
