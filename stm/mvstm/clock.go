package mvstm

// Commit-time clock strategies, mirroring the stm engine's GV4/GV7 axis
// (see stm/clock.go). The multi-version engine supports only the two:
//
//   - GV4 (default): pass-on-failure CAS — one shared-word RMW attempt
//     per update commit, the PR 5 pipeline.
//   - GV7: block allocation — a separate allocator word hands each
//     descriptor a block of K ticks in one CAS, and commits stamp write
//     versions from the cached block, so the *allocator* is touched once
//     per K commits. Unlike the stm engine, mvstm cannot leave the
//     published clock behind by a whole block: snapshot transactions pin
//     rv from the published clock and have no timestamp-extension
//     machinery (the snapshot path never revalidates — that is its whole
//     contract), and strict serializability requires a commit that has
//     returned to be visible to every later pin. Each commit therefore
//     publishes its own write version with helpClock after releasing its
//     locks — a pure load when a concurrent committer's later tick
//     already covers it, a CAS otherwise. GV7 here amortizes the
//     *allocation* RMW and converts the publication RMW into a load
//     under concurrent commit traffic; the lower-bound tie-in (why the
//     publication cannot be batched away like stm's) is DESIGN.md's
//     "Commit pipeline v3" section.
//
// GV1/GV6/TicToc do not transfer: GV1 is strictly worse than GV4 here,
// GV6's unpublished increments are exactly what pinned snapshots cannot
// absorb without extension, and TicToc has no total commit order to pin
// snapshots against (its serialization points are per-transaction
// interval intersections, not a shared counter).

import "sync/atomic"

// ClockStrategy selects how update commits draw write versions; see the
// package comment above and stm.ClockStrategy.
type ClockStrategy int

const (
	// GV4 is pass-on-failure: a losing increment CAS adopts the winner's
	// clock value.
	GV4 ClockStrategy = iota
	// GV7 is block allocation with per-commit publication.
	GV7
)

func (s ClockStrategy) String() string {
	switch s {
	case GV4:
		return "gv4"
	case GV7:
		return "gv7"
	}
	return "unknown"
}

// clockStrategy holds the engine-wide strategy (a ClockStrategy).
var clockStrategy atomic.Int32

// clockAlloc is GV7's allocation high-water mark: every tick ≤ it is
// claimed by some descriptor's block (or was drained back). Kept
// separate from the published clock so block claims do not move what
// snapshot pins read.
var clockAlloc atomic.Uint64

// gv7BlockSize is K, the ticks claimed per allocator CAS. Overridable in
// tests via SetGV7BlockSizeForTest.
var gv7BlockSize uint64 = 64

// SetClockStrategy selects the commit-time clock strategy (default GV4).
// Engine-wide and meant to be set while quiescent, like SetRetention.
// Leaving GV7 publishes the allocation high-water mark so every tick
// cached in a pooled descriptor's block becomes stale (≤ clock) and the
// next commit through that descriptor claims or increments freshly —
// no stale block can stamp a version the published clock has already
// passed out of order.
func SetClockStrategy(s ClockStrategy) {
	switch s {
	case GV4, GV7:
	default:
		panic("mvstm: unknown clock strategy (want GV4 or GV7)")
	}
	if ClockStrategy(clockStrategy.Load()) == GV7 && s != GV7 {
		helpClock(clockAlloc.Load())
	}
	clockStrategy.Store(int32(s))
}

// ClockStrategyInEffect reports the strategy in effect.
func ClockStrategyInEffect() ClockStrategy { return ClockStrategy(clockStrategy.Load()) }

// advanceClock produces the commit's write version. Must be called with
// every write lock held: both strategies guarantee the returned version
// exceeds a clock value loaded after the locks were acquired, so the
// published clock first reaches it while the locks are held — the
// invariant pinned snapshot reads rely on (see the package comment in
// mvstm.go).
//
// Under GV7 a cached tick is used only if it still exceeds the
// post-lock clock load; a block the published clock has caught up with
// (another committer helped the clock past it) is discarded and a fresh
// one claimed above both the allocator and the current clock.
func (tx *Tx) advanceClock() uint64 {
	if ClockStrategy(clockStrategy.Load()) == GV7 {
		c := clock.Load()
		if tx.blockNext <= tx.blockEnd && tx.blockNext > c {
			wv := tx.blockNext
			tx.blockNext++
			return wv
		}
		tx.claimBlock(c)
		wv := tx.blockNext
		tx.blockNext++
		return wv
	}
	old := clock.Load()
	if clock.CompareAndSwap(old, old+1) {
		return old + 1
	}
	return clock.Load()
}

// claimBlock claims a fresh block of gv7BlockSize ticks strictly above
// both the allocator high-water mark and c (a clock value the caller
// loaded while holding its write locks).
func (tx *Tx) claimBlock(c uint64) {
	k := gv7BlockSize
	for {
		hi := clockAlloc.Load()
		base := max(hi, c)
		if clockAlloc.CompareAndSwap(hi, base+k) {
			tx.blockNext, tx.blockEnd = base+1, base+k
			tx.stat().clockBlockClaims.Add(1)
			return
		}
	}
}

// drainBlock returns the descriptor's unused ticks to the allocator when
// its block is still the top one (a CAS from blockEnd down to the last
// stamped tick), abandoning them otherwise, and empties the block. Runs
// on descriptor recycle only when the engine has left GV7 — while GV7 is
// active, blocks deliberately persist across pool cycles; draining every
// release would cost the RMW back and undo the amortization.
func (tx *Tx) drainBlock() {
	if tx.blockEnd != 0 && tx.blockNext <= tx.blockEnd {
		clockAlloc.CompareAndSwap(tx.blockEnd, tx.blockNext-1)
	}
	tx.blockNext, tx.blockEnd = 1, 0
}

// helpClock advances the published clock to at least target. Under GV7
// every committer calls it with its write version after releasing its
// locks: a transaction that begins after the commit returned pins
// rv ≥ target and sees the new versions — strict serializability — and
// when a concurrent committer already published a later tick this is a
// single shared-mode load.
func helpClock(target uint64) {
	for {
		c := clock.Load()
		if c >= target {
			return
		}
		if clock.CompareAndSwap(c, target) {
			return
		}
	}
}
