package mvstm_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/stm/mvstm"
)

func TestBasicTransfer(t *testing.T) {
	alice := mvstm.NewVar(100)
	bob := mvstm.NewVar(0)
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		a := alice.Get(tx)
		alice.Set(tx, a-30)
		bob.Set(tx, bob.Get(tx)+30)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if a, b := alice.Load(), bob.Load(); a != 70 || b != 30 {
		t.Fatalf("after transfer: alice=%d bob=%d", a, b)
	}
}

func TestReadOwnWrite(t *testing.T) {
	v := mvstm.NewVar(1)
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		v.Set(tx, 5)
		if got := v.Get(tx); got != 5 {
			t.Fatalf("read-own-write = %d, want 5", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUserErrorAbortsWithoutRetry(t *testing.T) {
	v := mvstm.NewVar(0)
	sentinel := errors.New("nope")
	attempts := 0
	err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		attempts++
		v.Set(tx, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	if v.Load() != 0 {
		t.Fatalf("aborted write leaked: %d", v.Load())
	}
}

// TestFirstCommitterWins orchestrates the update-path conflict: a
// transaction reads x's snapshot, a nested writer bumps x, and the
// transaction's commit (which writes y from the now-stale read) must fail
// validation and retry.
func TestFirstCommitterWins(t *testing.T) {
	x := mvstm.NewVar(0)
	y := mvstm.NewVar(0)
	attempts := 0
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		attempts++
		v := x.Get(tx)
		if attempts == 1 {
			if err := mvstm.Atomically(func(wtx *mvstm.Tx) error {
				x.Set(wtx, 10)
				return nil
			}); err != nil {
				return err
			}
		}
		y.Set(tx, v+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (stale snapshot must fail commit validation)", attempts)
	}
	if got := y.Load(); got != 11 {
		t.Fatalf("y = %d, want 11 (retry must see the committed x)", got)
	}
}

// TestSnapshotRunsExactlyOnce is the engine's headline property: a
// snapshot transaction never aborts and never re-runs, no matter how hard
// writers churn the variables it reads.
func TestSnapshotRunsExactlyOnce(t *testing.T) {
	const vars = 16
	vs := make([]*mvstm.Var[int], vars)
	for i := range vs {
		vs[i] = mvstm.NewVar(0)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Bump every Var in one transaction: any consistent snapshot
				// sees all sixteen equal.
				_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
					for _, v := range vs {
						v.Set(tx, v.Get(tx)+1)
					}
					return nil
				})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		invocations := 0
		if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			invocations++
			if n := mvstm.ReadSetLen(tx); n != 0 {
				t.Fatalf("snapshot path logged %d reads", n)
			}
			first := vs[0].Get(tx)
			for j := range vs {
				if got := vs[j].Get(tx); got != first {
					t.Fatalf("torn snapshot: vs[%d]=%d, vs[0]=%d", j, got, first)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if invocations != 1 {
			t.Fatalf("snapshot transaction ran %d times, want exactly 1", invocations)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotConsistencyUnderRace keeps the x+y invariant under real
// parallelism (run with -race): writers move value between two Vars,
// snapshot readers must always see the conserved sum.
func TestSnapshotConsistencyUnderRace(t *testing.T) {
	const total = 1000
	x := mvstm.NewVar(total)
	y := mvstm.NewVar(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
					v := x.Get(tx)
					x.Set(tx, v-1)
					y.Set(tx, y.Get(tx)+1)
					return nil
				})
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
					if s := x.Get(tx) + y.Get(tx); s != total {
						t.Errorf("snapshot sum = %d, want %d", s, total)
					}
					return nil
				})
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
			if s := x.Get(tx) + y.Get(tx); s != total {
				t.Errorf("update-path snapshot sum = %d, want %d", s, total)
			}
			return nil
		})
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentCounter: the classic contended counter must not lose
// updates (commit validation + per-Var locks).
func TestConcurrentCounter(t *testing.T) {
	ctr := mvstm.NewVar(0)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
					ctr.Set(tx, ctr.Get(tx)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := ctr.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestLargeWriteSetPromotion crosses the slice→map write-set threshold in
// one transaction and reads everything back.
func TestLargeWriteSetPromotion(t *testing.T) {
	const n = 40
	vs := make([]*mvstm.Var[int], n)
	for i := range vs {
		vs[i] = mvstm.NewVar(0)
	}
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		for i, v := range vs {
			v.Set(tx, i)
		}
		for i, v := range vs {
			if got := v.Get(tx); got != i {
				t.Fatalf("read-own-write after promotion: vs[%d]=%d", i, got)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if got := v.Load(); got != i {
			t.Fatalf("vs[%d] = %d after commit", i, got)
		}
	}
}

func TestRetryWakesOnWrite(t *testing.T) {
	v := mvstm.NewVar(0)
	done := make(chan int)
	go func() {
		var got int
		_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
			got = v.Get(tx)
			if got == 0 {
				tx.Retry()
			}
			return nil
		})
		done <- got
	}()
	_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
		v.Set(tx, 7)
		return nil
	})
	if got := <-done; got != 7 {
		t.Fatalf("woken transaction read %d, want 7", got)
	}
}

func TestOrElseFallsThrough(t *testing.T) {
	empty := mvstm.NewVar(0)
	fallback := mvstm.NewVar(0)
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		return tx.OrElse(
			func(tx *mvstm.Tx) error {
				if empty.Get(tx) == 0 {
					tx.Retry()
				}
				empty.Set(tx, -1) // must be rolled back
				return nil
			},
			func(tx *mvstm.Tx) error {
				fallback.Set(tx, 1)
				return nil
			},
		)
	}); err != nil {
		t.Fatal(err)
	}
	if empty.Load() != 0 || fallback.Load() != 1 {
		t.Fatalf("OrElse state: empty=%d fallback=%d", empty.Load(), fallback.Load())
	}
}

func TestROPanicsOnSet(t *testing.T) {
	v := mvstm.NewVar(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Set inside AtomicallyRO did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "read-only") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		v.Set(tx, 1)
		return nil
	})
}

func TestROPanicsOnRetry(t *testing.T) {
	v := mvstm.NewVar(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Retry inside AtomicallyRO did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "sleep forever") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		_ = v.Get(tx)
		tx.Retry()
		return nil
	})
}

func TestZeroVarPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "NewVar") {
			t.Fatalf("zero Var panic = %v", r)
		}
	}()
	var v mvstm.Var[int]
	_ = v.Load()
}

func TestROReturnsUserError(t *testing.T) {
	v := mvstm.NewVar(1)
	sentinel := errors.New("ro-err")
	before := mvstm.ReadStats()
	if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		_ = v.Get(tx)
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if d := mvstm.ReadStats().Sub(before); d.ROCommits != 0 {
		t.Fatalf("errored snapshot counted as commit: %+v", d)
	}
}

func TestVarString(t *testing.T) {
	v := mvstm.NewVar(42)
	if s := v.String(); !strings.Contains(s, "42") {
		t.Fatalf("String() = %q", s)
	}
}

// TestMixedStress is the -race workhorse: writers, blocking consumers and
// snapshot auditors over shared state, with a conserved total.
func TestMixedStress(t *testing.T) {
	const accounts = 32
	const total = accounts * 100
	vs := make([]*mvstm.Var[int], accounts)
	for i := range vs {
		vs[i] = mvstm.NewVar(100)
	}
	var wg sync.WaitGroup
	var seq atomic.Uint64
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				n := seq.Add(1)
				from := vs[(n*2654435761)%accounts]
				to := vs[(n*40503+17)%accounts]
				if from == to {
					continue
				}
				_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
					f := from.Get(tx)
					from.Set(tx, f-1)
					to.Set(tx, to.Get(tx)+1)
					return nil
				})
			}
		}()
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
					s := 0
					for _, v := range vs {
						s += v.Get(tx)
					}
					if s != total {
						t.Errorf("audit sum = %d, want %d", s, total)
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	s := 0
	for _, v := range vs {
		s += v.Load()
	}
	if s != total {
		t.Fatalf("final sum = %d, want %d", s, total)
	}
}
