package mvstm

// Epoch-based version garbage collection. Every transaction registers its
// pinned read timestamp in a striped table of padded slots (one slot per
// pooled descriptor, handed out once and reused for the descriptor's
// lifetime); committers compute the minimum registered timestamp and
// truncate each written chain below it, keeping at least the configured
// retention of recent versions. The registration protocol is the
// simulated mvtm's, translated to native atomics:
//
//   - a transaction publishes the joining sentinel, then samples the
//     clock, then publishes rv+slotBias — so a sweep either observes the
//     sentinel (and skips truncation for that commit, conservatively) or
//     scanned the slot before the sentinel store, in which case the
//     joiner's clock sample happens after the sweeper sampled its own
//     read timestamp and the joiner's rv is at least the sweep's floor;
//   - the minimum over registered timestamps is monotone: registrations
//     only leave (raising the minimum) or join at the current clock,
//     which is at least every version ever committed — so a chain always
//     retains a version at or below any future sweep's floor.
//
// The slot registry only grows to the peak number of live descriptors:
// each pooled descriptor owns one slot for its lifetime, a descriptor
// collected after pool eviction returns its slot to a free list (via a
// runtime cleanup), and committers scan the registry without locks via
// an immutable slice snapshot.

import (
	"sync"
	"sync/atomic"
)

// Slot encoding: 0 = inactive, 1 = joining (rv not yet published; sweeps
// must be fully conservative), rv+slotBias = registered.
const (
	slotInactive = 0
	slotJoining  = 1
	slotBias     = 2
)

// epochSlot is one registration slot, padded to its own cache lines so
// pin/unpin traffic from different descriptors does not false-share.
type epochSlot struct {
	ts atomic.Uint64
	_  [120]byte
}

var (
	slotMu sync.Mutex
	// slotList is the immutable snapshot of all allocated slots; committers
	// load it once per sweep and scan without synchronization.
	slotList atomic.Pointer[[]*epochSlot]
	// slotFree holds slots whose descriptors were collected (sync.Pool
	// drops descriptors on GC cycles); reusing them keeps slotList bounded
	// by the peak number of live descriptors instead of growing with every
	// pool eviction over a long-lived process. Guarded by slotMu.
	slotFree []*epochSlot
)

// newEpochSlot hands out a slot for a new descriptor (off the hot path):
// a freed one if a previous descriptor was collected, else a fresh slot
// appended to the registry. The caller attaches freeEpochSlot as the
// descriptor's cleanup.
func newEpochSlot() *epochSlot {
	slotMu.Lock()
	defer slotMu.Unlock()
	if n := len(slotFree); n > 0 {
		s := slotFree[n-1]
		slotFree = slotFree[:n-1]
		return s
	}
	s := &epochSlot{}
	var ns []*epochSlot
	if old := slotList.Load(); old != nil {
		ns = append(ns, *old...)
	}
	ns = append(ns, s)
	slotList.Store(&ns)
	return s
}

// freeEpochSlot returns a collected descriptor's slot to the free list.
// The descriptor is only unreachable between calls, when its slot is
// deregistered, so the slot is inactive here.
func freeEpochSlot(s *epochSlot) {
	slotMu.Lock()
	slotFree = append(slotFree, s)
	slotMu.Unlock()
}

// minActiveRV returns the minimum registered read timestamp (at most rv,
// the calling committer's own registration), or ok=false if some
// transaction is mid-registration and the sweep must be skipped.
func minActiveRV(rv uint64) (minRV uint64, ok bool) {
	minRV = rv
	sl := slotList.Load()
	if sl == nil {
		return minRV, true
	}
	for _, s := range *sl {
		switch v := s.ts.Load(); v {
		case slotInactive:
		case slotJoining:
			return 0, false
		default:
			if r := v - slotBias; r < minRV {
				minRV = r
			}
		}
	}
	return minRV, true
}

// DefaultRetention is the number of recent versions each chain keeps
// regardless of reader activity (the SetRetention default).
const DefaultRetention = 8

// gcSlackFactor is the sweep-hysteresis multiplier: a committer truncates
// a chain only once it has grown to gcSlackFactor×retention versions, and
// then cuts it back to the retention. Chains therefore oscillate between
// retention and gcSlackFactor×retention (absent pinned old readers), and
// the sweep's chain copy amortizes over the growth instead of running on
// every commit.
const gcSlackFactor = 2

// retention is the engine-wide knob; see SetRetention.
var retention atomic.Int64

func init() {
	retention.Store(DefaultRetention)
}

// SetRetention sets how many recent versions every chain retains even
// when no reader needs them (default DefaultRetention). Larger values
// trade space for fewer sweeps and friendlier late-pinning readers;
// chains additionally keep every version a registered snapshot may still
// read, however old, so a long-running reader grows chains past the
// retention until it finishes, and the sweep hysteresis lets chains
// oscillate up to gcSlackFactor times the retention between truncations.
// n must be at least 1 (the newest version is the Var's value). Like the
// stm clock knobs, this is engine-wide and meant to be set once before
// concurrent use; it exists so E11 can ablate chain growth against GC.
func SetRetention(n int) {
	if n < 1 {
		panic("mvstm: retention must keep at least 1 version")
	}
	retention.Store(int64(n))
}

// Retention reports the retention in effect.
func Retention() int { return int(retention.Load()) }
