package mvstm_test

// Abort-taxonomy tests for the multi-version engine: snapshot reads
// cannot fail mid-attempt, so only LockBusy and CommitValidation can
// appear as conflict classes, and they must partition Stats.Aborts;
// Budget mirrors BudgetAborts; the contention profiler must surface the
// hot Var a writer pool fights over.

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/stm/budget"
	"repro/stm/mvstm"
)

func hammer(t *testing.T, workers, iters int, vars ...*mvstm.Var[int]) mvstm.Stats {
	t.Helper()
	before := mvstm.ReadStats()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
					for _, v := range vars {
						v.Set(tx, v.Get(tx)+1)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return mvstm.ReadStats().Sub(before)
}

func TestAbortReasonsPartitionAborts(t *testing.T) {
	v := mvstm.NewVar(0)
	d := hammer(t, 8, 300, v)
	r := d.AbortReasons
	conflict := r.ReadCertify + r.CommitValidation + r.LockBusy + r.Extension
	if conflict != d.Aborts {
		t.Fatalf("conflict reasons %+v sum to %d, want Aborts = %d", r, conflict, d.Aborts)
	}
	if r.ReadCertify != 0 || r.Extension != 0 {
		t.Fatalf("snapshot engine produced classes it cannot: %+v", r)
	}
	if r.Budget != 0 || r.ExplicitRetry != 0 {
		t.Fatalf("unmetered no-Retry workload counted Budget=%d ExplicitRetry=%d", r.Budget, r.ExplicitRetry)
	}
	if d.Aborts == 0 {
		t.Log("workload produced no aborts; partition check was vacuous")
	}
}

func TestAbortReasonBudgetMirrorsBudgetAborts(t *testing.T) {
	mvstm.SetBudgetPolicy(budget.Fixed{Limit: 3})
	t.Cleanup(func() { mvstm.SetBudgetPolicy(nil) })
	vars := make([]*mvstm.Var[int], 8)
	for i := range vars {
		vars[i] = mvstm.NewVar(0)
	}
	before := mvstm.ReadStats()
	refused := 0
	for i := 0; i < 50; i++ {
		err := mvstm.Atomically(func(tx *mvstm.Tx) error {
			for _, v := range vars {
				v.Set(tx, v.Get(tx)+1)
			}
			return nil
		})
		if errors.Is(err, mvstm.ErrOutOfBudget) {
			refused++
		}
	}
	d := mvstm.ReadStats().Sub(before)
	if refused == 0 {
		t.Fatal("limit-3 policy refused nothing")
	}
	if d.AbortReasons.Budget != d.BudgetAborts {
		t.Fatalf("Budget reason = %d, want BudgetAborts = %d", d.AbortReasons.Budget, d.BudgetAborts)
	}
}

func TestAbortReasonExplicitRetry(t *testing.T) {
	flag := mvstm.NewVar(false)
	before := mvstm.ReadStats()
	done := make(chan error, 1)
	// parked fires once the waiter has committed to calling Retry, which
	// counts ExplicitRetry before blocking — so the wake-up write below
	// cannot race the count away.
	parked := make(chan struct{}, 1)
	go func() {
		done <- mvstm.Atomically(func(tx *mvstm.Tx) error {
			if !flag.Get(tx) {
				select {
				case parked <- struct{}{}:
				default:
				}
				tx.Retry()
			}
			return nil
		})
	}()
	<-parked
	if err := mvstm.Atomically(func(tx *mvstm.Tx) error { flag.Set(tx, true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	d := mvstm.ReadStats().Sub(before)
	if d.AbortReasons.ExplicitRetry == 0 {
		t.Fatal("parked Retry not counted in ExplicitRetry")
	}
}

func TestContentionProfilerFindsHotVar(t *testing.T) {
	sk := telemetry.NewSketch(8, 1)
	mvstm.SetContentionProfiler(sk)
	t.Cleanup(func() { mvstm.SetContentionProfiler(nil) })
	hot := mvstm.NewVar(0)
	hot.Label("mv-hot")
	d := hammer(t, 8, 300, hot)
	if d.Aborts == 0 {
		t.Skip("no contention this run; nothing for the sketch to see")
	}
	for _, e := range sk.Top(8) {
		if e.Label == "mv-hot" {
			return
		}
	}
	t.Fatalf("hot Var missing from sketch top: %+v", sk.Top(8))
}

func TestLatencySampling(t *testing.T) {
	mvstm.SetLatencySampling(1)
	t.Cleanup(func() { mvstm.SetLatencySampling(0) })
	lat, att := mvstm.LatencyHists()
	c0, a0 := lat.Count(), att.Count()
	v := mvstm.NewVar(0)
	for i := 0; i < 10; i++ {
		if err := mvstm.Atomically(func(tx *mvstm.Tx) error { v.Set(tx, v.Get(tx)+1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error { _ = v.Get(tx); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if lat.Count()-c0 != 15 || att.Count()-a0 != 15 {
		t.Fatalf("sample-every-call recorded %d latencies / %d attempts, want 15 each",
			lat.Count()-c0, att.Count()-a0)
	}
}
