// Package mvstm is a native multi-version software transactional memory:
// the third engine of the repository's triangle (TL2 in repro/stm, NOrec
// in repro/stm/norecstm), and the native counterpart of the simulated
// internal/tm/mvtm. Where the single-version engines buy O(1)-step reads
// with a global clock and still pay certification (and, for long read
// sets, abort/replay under write churn), mvstm spends *space* instead:
// each Var keeps a small chain of committed versions, and a read-only
// transaction reads the snapshot at its start timestamp by walking each
// chain to the newest version no newer than that timestamp. Read-only
// transactions therefore never abort, never log a read set, and never
// revalidate — the paper's Theorem 3 trade-off (time vs. space) made
// concrete in wall-clock terms. The HTAP-shaped workload this engine
// exists for — long analytical scans racing a writer pool — is measured
// as experiment E11 (see DESIGN.md).
//
// # Version chains
//
// Each Var holds an immutable chain snapshot published through one atomic
// pointer: the newest few versions live in an inline array head (no
// pointer chase for the common newest-version read), older ones in an
// overflow slice. Writers commit exactly as in the TL2 engine — lock the
// write set in Var-id order, fetch a write version from the GV4
// pass-on-failure global clock, validate the read set — and then *append*
// a version instead of overwriting, publishing a new chain snapshot
// before releasing each Var's versioned lock word.
//
// A snapshot read needs no certifying re-load: the transaction pins its
// read timestamp rv once, and any version committed after the pin carries
// a write version strictly greater than rv (the write version is drawn
// from the clock after the committer acquired its locks, and the clock
// reaches it only afterwards — the same invariant the stm engine's
// opacity argument rests on). The only writer a read must wait out is one
// that acquired its locks before the pin and has not yet published — and
// the lock word says which that is: locking embeds the clock value at
// acquisition time, so a reader classifies a held lock with one load
// (embedded clock ≥ rv: the pending version is invisible, proceed;
// below rv: wait, with sleeps that hand the CPU to a preempted holder).
// Everything else is one lock-word load, one chain-pointer load, and a
// walk.
//
// # Epoch-based garbage collection
//
// Unbounded chains would make the space half of the trade infinite, so
// transactions register their read timestamps in a striped epoch table
// (one padded slot per pooled descriptor) and committers truncate each
// written chain below the oldest registered snapshot, keeping at least
// SetRetention's worth of recent versions. Registration publishes a
// joining sentinel *before* sampling the clock; a sweep that observes the
// sentinel skips truncation for that commit (counted in Stats.GCSkips),
// which closes the race where a reader pins a timestamp the sweep did not
// see. A pinned old reader therefore blocks truncation below its floor
// until it finishes — chains grow while it runs and are reclaimed by the
// next commit after it retires — and a snapshot read can never find its
// floor version truncated.
//
// Usage mirrors repro/stm:
//
//	acct := mvstm.NewVar(100)
//	err := mvstm.Atomically(func(tx *mvstm.Tx) error {
//	    acct.Set(tx, acct.Get(tx)-10)
//	    return nil
//	})
//	_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
//	    _ = acct.Get(tx) // snapshot read: never aborts, logs, or revalidates
//	    return nil
//	})
//
// Transactions retry automatically on conflict (update transactions
// only — AtomicallyRO runs exactly once). Get and Set abort the enclosing
// transaction by panicking with an internal signal that Atomically
// recovers; user code must not recover() across t-operations. Values
// stored in a Var must be treated as immutable once written.
package mvstm

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/mempool"
	"repro/internal/syncpoint"
	"repro/internal/tm/lockword"
	"repro/stm/budget"
)

// clock is the global version clock shared by all Vars (advanced by the
// strategy configured with SetClockStrategy; see clock.go).
var clock atomic.Uint64

// varIDs allocates the total order used to acquire commit locks
// deadlock-free.
var varIDs atomic.Uint64

// chainInline is the number of newest versions kept in the chain's inline
// array head; older versions overflow into a slice. Recent readers — the
// common case — find their version without touching the overflow.
const chainInline = 3

// version is one committed value with its commit timestamp.
type version struct {
	val any
	ver uint64
}

// chain is an immutable snapshot of a Var's version history: head holds
// the newest n versions (newest-first), tail the older ones oldest-first.
// Every array is written only at construction, and a chain owns its tail
// exclusively (pushes copy survivors instead of sharing the base's tail
// slice), so chains may be built optimistically outside the Var lock,
// walked by readers without any synchronization — and, once replaced and
// proven quiescent, recycled through chainPool without any other live
// chain referencing their storage.
type chain struct {
	head [chainInline]version
	n    int
	tail []version
}

// chainPool recycles chain nodes and their overflow slices through
// size-classed free lists, keyed by tail capacity — the allocation-free
// half of the E11 steady state. A chain may be Put only when provably
// unreachable: immediately for a never-published build, and after the
// epoch quiescence check in drainRetired for a published one. The reset
// hook empties the chain (versions zeroed, tail length 0), which both
// drops the user values pooled memory would otherwise pin and makes a
// use-after-Put read fail loudly — at() on an emptied chain finds no
// version and panics — instead of returning stale data.
var chainPool = mempool.NewClassPool(
	func(capacity int) *chain { return &chain{tail: make([]version, 0, capacity)} },
	func(c *chain) int { return cap(c.tail) },
	func(c *chain) {
		c.head = [chainInline]version{}
		c.n = 0
		clear(c.tail[:cap(c.tail)])
		c.tail = c.tail[:0]
	},
)

// len returns the number of versions in the chain.
func (c *chain) len() int { return c.n + len(c.tail) }

// at returns the newest version with ver ≤ rv and the number of versions
// examined, or ok=false if the chain holds no such version (possible only
// if truncation removed a registered reader's floor — an engine bug).
func (c *chain) at(rv uint64) (val any, walked int, ok bool) {
	for i := 0; i < c.n; i++ {
		walked++
		if c.head[i].ver <= rv {
			return c.head[i].val, walked, true
		}
	}
	for i := len(c.tail) - 1; i >= 0; i-- {
		walked++
		if c.tail[i].ver <= rv {
			return c.tail[i].val, walked, true
		}
	}
	return nil, walked, false
}

// index returns the i-th version in newest-first logical order.
func (c *chain) index(i int) version {
	if i < c.n {
		return c.head[i]
	}
	return c.tail[len(c.tail)-1-(i-c.n)]
}

// newChainFrom builds a pooled chain holding (val, ver) on top of the
// newest keep survivors of c, every survivor copied into storage the new
// chain owns exclusively. The copy is O(keep), but keep is capped by the
// GC sweep at gcSlackFactor×retention (plus whatever a pinned old reader
// holds, which grows the chain anyway), so it is a bounded cost that
// buys recyclability — the chain being replaced can be pooled without
// any live chain sharing its arrays.
func newChainFrom(c *chain, val any, ver uint64, keep int) *chain {
	total := keep + 1
	n := min(total, chainInline)
	nc := chainPool.Get(total - n)
	nc.n = n
	nc.head[0] = version{val: val, ver: ver}
	for i := 1; i < n; i++ {
		nc.head[i] = c.index(i - 1)
	}
	if tl := total - n; tl > 0 {
		nc.tail = nc.tail[:tl]
		for i := range nc.tail {
			// The tail is oldest-first: tail position i is logical index
			// total-1-i of the new chain, i.e. survivor total-2-i of c.
			nc.tail[i] = c.index(total - 2 - i)
		}
	}
	return nc
}

// push returns a new chain with (val, ver) prepended and every existing
// version carried over.
func (c *chain) push(val any, ver uint64) *chain {
	return newChainFrom(c, val, ver, c.len())
}

// pushTruncate builds the pushed chain with truncation applied in the
// same build: the new version plus the newest survivors of c, where the
// kept prefix preserves both the minRV floor (the newest version
// ≤ minRV — some registered reader's snapshot may need it) and at least
// retain recent versions.
func (c *chain) pushTruncate(val any, ver uint64, minRV uint64, retain int) (*chain, int) {
	l := c.len()
	floor := -1
	for i := 0; i < l; i++ {
		if c.index(i).ver <= minRV {
			floor = i
			break
		}
	}
	if floor < 0 {
		// No version ≤ minRV: unreachable while every Var is born at
		// version 0 and minRV is monotone, but never truncate on it.
		return c.push(val, ver), 0
	}
	// keep counts survivors of c; the new version rides on top (its ver
	// exceeds minRV — it exceeds the committer's own registered rv).
	keep := max(floor+1, retain-1)
	if keep >= l {
		return c.push(val, ver), 0
	}
	return newChainFrom(c, val, ver, keep), l - keep
}

// varBase is the type-erased interface Tx uses to manage heterogeneous
// Vars in one transaction.
type varBase interface {
	id() uint64
	lockWord() uint64
	tryLock() (prev uint64, ok bool)
	unlock(ver uint64)
	loadChain() *chain
	storeChain(*chain)
}

// Var is a transactional variable holding a value of type T and a chain
// of its committed versions. The zero Var is not ready for use; create
// Vars with NewVar.
type Var[T any] struct {
	vid uint64
	lw  atomic.Uint64 // versioned lock word (bit 63 lock, bits 0..62 newest version)
	ch  atomic.Pointer[chain]
}

// NewVar creates a transactional variable with the given initial value.
// The initial version carries timestamp 0, so it is visible to every
// snapshot (a Var shared with a transaction that pinned its timestamp
// before the Var existed reads the initial value).
func NewVar[T any](initial T) *Var[T] {
	v := &Var[T]{vid: varIDs.Add(1)}
	c := chainPool.Get(0)
	c.n = 1
	c.head[0] = version{val: initial, ver: 0}
	v.ch.Store(c)
	return v
}

func (v *Var[T]) id() uint64       { return v.vid }
func (v *Var[T]) lockWord() uint64 { return v.lw.Load() }

// tryLock sets the lock bit with the *current clock value* in the version
// bits — not the pre-lock version, which is returned for the failed-commit
// restore and for commit validation instead. Embedding the clock lets
// snapshot readers classify a held lock without waiting: the holder's
// write version will exceed the embedded clock (it is drawn from the
// clock after all locks are held), so a reader whose read timestamp is at
// most the embedded value knows the pending version is invisible to it
// and reads the published chain immediately. Only a lock taken before the
// reader pinned — embedded clock below rv — can publish a version the
// snapshot needs, and only that case waits.
func (v *Var[T]) tryLock() (uint64, bool) {
	w := v.lw.Load()
	if lockword.Locked(w) {
		return 0, false
	}
	if !v.lw.CompareAndSwap(w, lockword.Lock(lockword.Unlocked(clock.Load()))) {
		return 0, false
	}
	return lockword.Version(w), true
}

// unlock releases the word, publishing ver (the old version after a failed
// commit, the new write version after a successful one) in the same store.
func (v *Var[T]) unlock(ver uint64) { v.lw.Store(lockword.Unlocked(ver)) }

func (v *Var[T]) loadChain() *chain {
	c := v.ch.Load()
	if c == nil {
		panic("mvstm: Var used before NewVar (the zero Var is not initialized)")
	}
	return c
}
func (v *Var[T]) storeChain(c *chain) { v.ch.Store(c) }

// Get reads the variable inside a transaction: the snapshot value at the
// transaction's read timestamp. Inside Atomically the read is also logged
// for commit-time validation; inside AtomicallyRO it is not logged at all
// and can never abort.
func (v *Var[T]) Get(tx *Tx) T {
	return tx.read(v).(T)
}

// Set buffers a write to the variable inside a transaction; it becomes
// visible atomically at commit as a new version. Set panics inside
// AtomicallyRO.
func (v *Var[T]) Set(tx *Tx, val T) {
	tx.write(v, val)
}

// loadSlotBox wraps an epoch slot handed to non-transactional readers
// (Load, String). Those readers have no descriptor, but they still
// dereference a chain, so they must be visible to drainRetired — an
// unregistered dereference could race a recycler rewriting the chain's
// fields. The box exists to carry the AddCleanup that returns the slot
// when the pool drops the box.
type loadSlotBox struct{ s *epochSlot }

var loadSlotPool = sync.Pool{New: func() any {
	b := &loadSlotBox{s: newEpochSlot()}
	runtime.AddCleanup(b, freeEpochSlot, b.s)
	return b
}}

// pinPeek registers a momentary snapshot at the current clock so chains
// loaded until unpinPeek cannot be recycled mid-read. Same protocol as
// Tx.pin: the joining sentinel is published before the clock sample so a
// concurrent drain either skips (saw the sentinel) or sampled its floor
// before this reader's rv existed — in which case rv ≥ that floor's
// clock and the retire-time argument above applies.
func pinPeek() *loadSlotBox {
	b := loadSlotPool.Get().(*loadSlotBox)
	b.s.ts.Store(slotJoining)
	rv := clock.Load()
	b.s.ts.Store(rv + slotBias)
	return b
}

func unpinPeek(b *loadSlotBox) {
	b.s.ts.Store(slotInactive)
	loadSlotPool.Put(b)
}

// Load reads the variable outside any transaction: the newest published
// version. The momentary epoch registration keeps the chain out of the
// recycler while its newest version is read; no lock is taken and the
// read never waits.
func (v *Var[T]) Load() T {
	b := pinPeek()
	// Deferred so a panic (e.g. Load on a zero Var) cannot leak the
	// registration and pin the GC floor forever.
	defer unpinPeek(b)
	return v.loadChain().head[0].val.(T)
}

// waitSignal is panicked by Retry: the transaction re-runs only after one
// of the variables it read has changed. It is the engine's only control
// signal — snapshot reads cannot fail mid-transaction, so conflicts
// surface solely as a failed commit, never as a mid-attempt abort.
type waitSignal struct{}

// writeSetMapThreshold is the write-set size beyond which Tx switches from
// a sorted-insert slice to an auxiliary map index, as in the stm engine.
const writeSetMapThreshold = 24

// readDedupWindow bounds the backwards scan that suppresses duplicate
// read-set entries for recently re-read Vars.
const readDedupWindow = 8

// Tx is a transaction descriptor. It is valid only inside the function
// passed to Atomically/AtomicallyRO and must not escape or be shared
// between goroutines. Descriptors are pooled: read and write sets are
// recycled across attempts and calls, and each descriptor owns one padded
// epoch slot in the GC registry for its lifetime.
type Tx struct {
	rv     uint64
	reads  []readEntry
	writes []writeEntry
	// wmap indexes writes by Var past writeSetMapThreshold entries; below
	// that, writes is kept sorted by Var id and binary-searched.
	wmap map[varBase]int
	// shard picks the descriptor's stats stripe, assigned once so pooled
	// reuse keeps stripes spread out.
	shard uint32
	// latSeq is the descriptor-local sampling sequence for the commit
	// latency histograms (see SetLatencySampling); it deliberately
	// survives reset so pooled descriptors keep striding through the
	// sample period.
	latSeq uint32
	// slot is the descriptor's registration in the epoch table; pin/unpin
	// publish and clear the active read timestamp committers sweep against.
	slot *epochSlot
	// ro marks the snapshot (read-only) path: reads are served from the
	// chains at rv with no logging, Set and Retry are usage errors, and
	// the transaction can never abort.
	ro bool
	// pendingReads/pendingWalk accumulate snapshot-read stats locally and
	// are flushed to the stripe once per call (the snapshot path must not
	// pay an atomic add per read).
	pendingReads uint64
	pendingWalk  uint64
	// minRV/minState cache the sweep floor for one commit's chain builds:
	// 0 not computed, 1 usable, 2 sweep skipped (a joiner was observed).
	minRV    uint64
	minState int
	// metered/budgetLeft/costs are the call's work-budget grant, sampled
	// once per call from the engine policy (see SetBudgetPolicy);
	// budgetExceeded records exhaustion on the non-panicking paths. The
	// grant survives reset: retries spend the same budget.
	metered        bool
	budgetExceeded bool
	budgetLeft     uint64
	costs          budget.Costs
	// blockNext/blockEnd are the descriptor's GV7 tick block (see
	// clock.go): ticks blockNext..blockEnd are claimed but unstamped.
	// Blocks persist across pool cycles while GV7 is active.
	blockNext uint64
	blockEnd  uint64
	// retired holds chains this descriptor unlinked from their Vars,
	// awaiting epoch quiescence before recycling (see drainRetired).
	// Timestamps are non-decreasing: appended in commit order under a
	// monotone clock.
	retired []retiredChain
	// trec is the test-only trace record of the current attempt (nil
	// outside tracing tests; see trace.go). sync is the test-only
	// scheduling hook picked up at call entry (see syncpoint.go).
	trec *traceTxn
	sync func(syncpoint.Point)
}

// retiredChain is a chain unlinked from its Var, awaiting quiescence
// before recycling. ts is a published-clock sample taken after the
// unlinking store: any reader that could still hold the old chain
// pinned before the swap, and a pin's rv is the clock at pin time
// ≤ the clock after the swap = ts. Once every active registration
// exceeds ts, no reader can reach the chain and it may be pooled.
type retiredChain struct {
	c  *chain
	ts uint64
}

// retireDrainMin is the retired-list length below which finish does not
// bother scanning the epoch table (the scan amortizes over ≥ this many
// recycles). retireKeepMax caps the list: a reader pinned for a very
// long time blocks quiescence, and past the cap the oldest entries are
// dropped to the garbage collector instead — always safe, since the GC
// itself waits for the last reference.
const (
	retireDrainMin = 16
	retireKeepMax  = 1024
)

type readEntry struct {
	v   varBase
	ver uint64 // newest committed version at read time (waitForChange polls it)
}

type writeEntry struct {
	v    varBase
	val  any
	prev uint64 // pre-lock version, recorded while the commit holds the lock
	// base and nc are the optimistic chain build: the chain observed
	// before locking and the new chain derived from it (write version
	// stamped in under the lock). Building — and allocating — outside the
	// lock window keeps the window to a handful of atomics, so a writer
	// preempted mid-commit almost never strands a pre-pin reader.
	base      *chain
	nc        *chain
	reclaimed int
}

var txPool = sync.Pool{New: func() any {
	tx := &Tx{shard: uint32(statSeq.Add(1)), slot: newEpochSlot()}
	// sync.Pool drops descriptors on GC cycles; the cleanup recycles the
	// dropped descriptor's epoch slot so the slot registry stays bounded
	// by peak descriptor concurrency, not by pool-eviction history.
	runtime.AddCleanup(tx, freeEpochSlot, tx.slot)
	return tx
}}

// reset clears the read and write sets in place, keeping their backing
// arrays, and zeroes the dropped entries so a pooled Tx pins no user data.
func (tx *Tx) reset() {
	clear(tx.reads)
	tx.reads = tx.reads[:0]
	clear(tx.writes)
	tx.writes = tx.writes[:0]
	tx.wmap = nil
	tx.trec = nil
}

// pin registers the attempt's read timestamp in the epoch table and
// samples it. The joining sentinel is published before the clock is read:
// a sweeping committer that scans the slot either sees the sentinel (and
// skips truncation) or scanned before it, in which case this pin's clock
// load happens after the sweeper sampled its own (older) read timestamp,
// so rv is at least the sweep's floor and the snapshot is safe.
func (tx *Tx) pin() {
	tx.syncAt(syncpoint.Begin)
	tx.slot.ts.Store(slotJoining)
	tx.rv = clock.Load()
	tx.slot.ts.Store(tx.rv + slotBias)
}

// unpin deregisters the snapshot so committers may truncate past it.
func (tx *Tx) unpin() { tx.slot.ts.Store(slotInactive) }

// finish flushes the locally accumulated stats, deregisters the snapshot
// and returns the descriptor to the pool. Oversized backing arrays are
// dropped so one large transaction does not pin memory forever. The
// retired-chain drain runs here, strictly after unpin: during commit the
// descriptor's own registration (rv ≤ every retire timestamp it just
// recorded) would hold the quiescence floor down and the drain could
// never free anything.
func (tx *Tx) finish() {
	if tx.pendingReads != 0 {
		st := tx.stat()
		st.snapshotReads.Add(tx.pendingReads)
		st.walkSteps.Add(tx.pendingWalk)
		tx.pendingReads, tx.pendingWalk = 0, 0
	}
	tx.unpin()
	tx.drainRetired()
	if tx.blockEnd != 0 && ClockStrategyInEffect() != GV7 {
		tx.drainBlock()
	}
	tx.reset()
	if cap(tx.reads) > 4096 {
		tx.reads = nil
	}
	if cap(tx.writes) > 4096 {
		tx.writes = nil
	}
	txPool.Put(tx)
}

// drainRetired recycles the prefix of the retired list proven
// unreachable: entries whose timestamp is strictly below every active
// registration (ts < m means every pre-swap holder, rv ≤ ts, is gone;
// a reader pinned at rv > ts observed the clock after the retire sample
// and therefore loads the replacement chain). The list is time-ordered,
// so the scan stops at the first survivor. If a joiner makes the floor
// unknown, or a long-pinned reader keeps the list growing past
// retireKeepMax, the overflow is dropped to the garbage collector —
// correctness never depends on pooling.
func (tx *Tx) drainRetired() {
	if len(tx.retired) < retireDrainMin {
		return
	}
	if m, ok := minActiveRV(clock.Load()); ok {
		i := 0
		for i < len(tx.retired) && tx.retired[i].ts < m {
			i++
		}
		if i > 0 {
			st := tx.stat()
			for j := 0; j < i; j++ {
				st.pooled.Add(uint64(tx.retired[j].c.len()))
				chainPool.Put(tx.retired[j].c)
			}
			n := copy(tx.retired, tx.retired[i:])
			clear(tx.retired[n:])
			tx.retired = tx.retired[:n]
		}
	}
	if len(tx.retired) > retireKeepMax {
		drop := len(tx.retired) - retireKeepMax/2
		n := copy(tx.retired, tx.retired[drop:])
		clear(tx.retired[n:])
		tx.retired = tx.retired[:n]
	}
}

// searchWrite binary-searches the sorted write set for v, returning the
// insertion position and whether v is present.
func (tx *Tx) searchWrite(v varBase) (int, bool) {
	vid := v.id()
	lo, hi := 0, len(tx.writes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tx.writes[mid].v.id() < vid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(tx.writes) && tx.writes[lo].v == v
}

// findWrite locates v in the write set (read-own-write lookup).
func (tx *Tx) findWrite(v varBase) (int, bool) {
	if len(tx.writes) == 0 {
		return 0, false
	}
	if tx.wmap != nil {
		i, ok := tx.wmap[v]
		return i, ok
	}
	return tx.searchWrite(v)
}

func (tx *Tx) read(v varBase) any {
	if !tx.ro {
		if i, ok := tx.findWrite(v); ok {
			if tx.trec != nil {
				tx.traceRead(v, tx.writes[i].val)
			}
			return tx.writes[i].val
		}
	}
	val, newest := tx.readSnapshot(v)
	if tx.ro {
		return val
	}
	// Update transactions log the read for commit-time validation
	// (first-committer-wins: the snapshot value must still be the newest
	// at commit). Duplicate entries for recently re-read Vars are skipped;
	// the snapshot is stable within the transaction, so a re-read returns
	// the same version the recorded entry certifies.
	for i, n := len(tx.reads)-1, len(tx.reads)-readDedupWindow; i >= 0 && i >= n; i-- {
		if tx.reads[i].v == v {
			return val
		}
	}
	tx.reads = append(tx.reads, readEntry{v: v, ver: newest})
	return val
}

// readSnapshot serves a read from v's version chain at the pinned read
// timestamp. A held lock is waited out only when it was acquired before
// this transaction pinned (embedded clock < rv, see tryLock) — that
// holder may publish a version ≤ rv the snapshot needs. A lock acquired
// at clock ≥ rv will publish a version > rv, invisible to this snapshot,
// so the reader proceeds immediately: a writer preempted mid-commit can
// only stall scans that pinned before it locked, which keeps long scans
// effectively wait-free against the writer pool in steady state.
// Once the word is classified, one chain-pointer load suffices — all
// versions ≤ rv were published before the observed lock state (per-Var
// commits serialize on the lock), any version committed afterwards
// exceeds rv, and truncation never removes the registered floor — so
// there is no certifying re-load and no abort path.
func (tx *Tx) readSnapshot(v varBase) (any, uint64) {
	var w uint64
	for spins := 0; ; spins++ {
		w = v.lockWord()
		if !lockword.Locked(w) || lockword.Version(w) >= tx.rv {
			break
		}
		// A pre-pin lock holder: publication is imminent unless the holder
		// was preempted, so yield and then back off to real sleeps. Under
		// the scheduling harness the holder is a parked worker — hand
		// control to the schedule instead of spinning.
		if tx.syncSpin() {
			continue
		}
		if spins < 8 {
			runtime.Gosched()
		} else {
			d := time.Microsecond << uint(min(spins-8, 6))
			time.Sleep(d)
		}
	}
	val, walked, ok := v.loadChain().at(tx.rv)
	if !ok {
		panic("mvstm: snapshot too old (version chain truncated past a pinned read timestamp — this is an engine bug)")
	}
	tx.pendingReads++
	tx.pendingWalk += uint64(walked)
	// The chain walk is the time half of the space-for-time trade: one
	// step per version examined, plus the read itself. This is the charge
	// that stops an unbounded scanner — the one transaction shape the
	// abort-free snapshot path would otherwise let run forever.
	if tx.metered {
		tx.charge(tx.costs.Read + tx.costs.Step*uint64(walked))
	}
	if tx.trec != nil {
		tx.traceRead(v, val)
	}
	// The snapshot lookup is this engine's read-certification analogue:
	// the value is fixed once the chain walk returns, so the harness
	// point sits after it (a writer granted here commits versions the
	// pinned snapshot must — and does — ignore).
	tx.syncAt(syncpoint.PostReadCertify)
	return val, lockword.Version(w)
}

func (tx *Tx) write(v varBase, val any) {
	if tx.ro {
		panic("mvstm: Set inside a read-only transaction (AtomicallyRO cannot write)")
	}
	if tx.metered {
		tx.charge(tx.costs.Step)
	}
	if tx.trec != nil {
		tx.traceWrite(v, val)
	}
	if tx.wmap != nil {
		if i, ok := tx.wmap[v]; ok {
			tx.writes[i].val = val
			return
		}
		if tx.metered {
			tx.charge(tx.costs.Write)
		}
		tx.wmap[v] = len(tx.writes)
		tx.writes = append(tx.writes, writeEntry{v: v, val: val})
		return
	}
	i, found := tx.searchWrite(v)
	if found {
		tx.writes[i].val = val
		return
	}
	if tx.metered {
		tx.charge(tx.costs.Write)
	}
	if len(tx.writes) >= writeSetMapThreshold {
		tx.wmap = make(map[varBase]int, 2*writeSetMapThreshold)
		for j := range tx.writes {
			tx.wmap[tx.writes[j].v] = j
		}
		tx.wmap[v] = len(tx.writes)
		tx.writes = append(tx.writes, writeEntry{v: v, val: val})
		return
	}
	// Sorted insert keeps the slice in Var-id order, so commit locks in the
	// deadlock-free total order with no per-commit sort at all.
	tx.writes = append(tx.writes, writeEntry{})
	copy(tx.writes[i+1:], tx.writes[i:])
	tx.writes[i] = writeEntry{v: v, val: val}
}

// snapshotWrites captures the write set (values included) so OrElse can
// roll a blocked branch back, including overwrites of pre-branch writes.
func (tx *Tx) snapshotWrites() ([]writeEntry, map[varBase]int) {
	snap := append([]writeEntry(nil), tx.writes...)
	var msnap map[varBase]int
	if tx.wmap != nil {
		msnap = make(map[varBase]int, len(tx.wmap))
		for k, i := range tx.wmap {
			msnap[k] = i
		}
	}
	return snap, msnap
}

// restoreWrites reinstates a snapshot taken by snapshotWrites.
func (tx *Tx) restoreWrites(snap []writeEntry, msnap map[varBase]int) {
	clear(tx.writes)
	tx.writes = append(tx.writes[:0], snap...)
	tx.wmap = msnap
}

// Retry aborts the transaction and blocks the retry until at least one
// variable read so far changes. Calling Retry with an empty read set
// panics, since no write could ever wake the transaction; inside
// AtomicallyRO it panics too — the snapshot path records no read set to
// wait on (use Atomically for transactions that need Retry).
func (tx *Tx) Retry() {
	if tx.ro {
		panic("mvstm: Retry inside AtomicallyRO would sleep forever (the snapshot path records no read set to wait on)")
	}
	if len(tx.reads) == 0 {
		panic("mvstm: Retry with an empty read set would sleep forever")
	}
	// Taxonomy: a parked wait is a user-requested re-run, not a conflict
	// (and not counted in Stats.Aborts).
	tx.stat().reasons[abortExplicitRetry].Add(1)
	panic(waitSignal{})
}

// validateCommit checks, while the commit holds its write locks, that
// every read still returns its snapshot value: the Var's newest committed
// version must not exceed rv (any post-snapshot commit carries a greater
// one), and a foreign lock on a read Var is equally fatal — that writer
// has validated and will install a newer version, so letting both commits
// stand would admit write skew. An own-locked Var's word holds the
// embedded lock-time clock (see tryLock), not the committed version, so
// its check uses the pre-lock version saved in the write entry. On
// failure it returns the offending read's Var for contention
// attribution.
func (tx *Tx) validateCommit() (varBase, bool) {
	for i := range tx.reads {
		r := &tx.reads[i]
		w := r.v.lockWord()
		if !lockword.Locked(w) {
			if lockword.Version(w) > tx.rv {
				return r.v, false
			}
			continue
		}
		j, own := tx.searchWrite(r.v)
		if !own {
			return r.v, false
		}
		if tx.writes[j].prev > tx.rv {
			return r.v, false
		}
	}
	return nil, true
}

// recycleBuilds returns the attempt's never-published chain builds to
// the pool. Safe immediately — the chains were private to this
// descriptor (commit failed before, or instead of, publishing them).
// nc pointers are nilled so a later attempt's buildChains starts clean
// and no entry can be recycled twice.
func (tx *Tx) recycleBuilds() {
	for i := range tx.writes {
		if nc := tx.writes[i].nc; nc != nil {
			chainPool.Put(nc)
			tx.writes[i].nc = nil
		}
	}
}

// commit attempts to append the transaction's writes as new versions
// atomically, truncating chains past the GC floor as it goes.
func (tx *Tx) commit() bool {
	if len(tx.writes) == 0 {
		return true // snapshot reads validate nothing: read-only commits are free
	}
	if tx.wmap != nil {
		// Large write sets append unsorted past the promotion point; one
		// sort re-establishes the deadlock-free lock order.
		slices.SortFunc(tx.writes, func(a, b writeEntry) int {
			switch ai, bi := a.v.id(), b.v.id(); {
			case ai < bi:
				return -1
			case ai > bi:
				return 1
			default:
				return 0
			}
		})
		tx.wmap = nil
	}
	st := tx.stat()
	// Build every new chain optimistically before taking any lock: the
	// allocations, the sweep's survivor copy and the minActiveRV scan all
	// happen outside the lock window, which shrinks to lock → clock →
	// validate → stamp-and-publish. The write version is not known yet, so
	// the new head is stamped with it under the lock (the chain is private
	// until published); a chain that moved since the optimistic load is
	// rebuilt under the lock, which only happens under real per-Var write
	// contention.
	tx.buildChains(st)
	// Price the commit before any lock is taken: the validation scan (one
	// step per read entry) and — the space half of the trade — every
	// version retained in the chains about to be published. A transaction
	// whose writes land on chains held long by a pinned reader pays for
	// that retention and runs dry instead of growing them forever. The
	// charge must not panic once locks are held, so it is soft and
	// exhaustion surfaces as a failed commit; the attempt loop translates
	// budgetExceeded into ErrOutOfBudget. (The rare rebuild-under-lock
	// path below is not re-charged: the pre-lock estimate already priced
	// this commit's retention within one version per contended chain.)
	if tx.metered {
		retained := uint64(0)
		for i := range tx.writes {
			retained += uint64(tx.writes[i].nc.len())
		}
		if !tx.chargeSoft(tx.costs.Version*retained + tx.costs.Step*uint64(len(tx.reads))) {
			tx.recycleBuilds()
			return false
		}
	}
	tx.syncAt(syncpoint.PreLock)
	locked := 0
	for i := range tx.writes {
		prev, ok := tx.writes[i].v.tryLock()
		if !ok {
			break
		}
		tx.writes[i].prev = prev
		locked++
	}
	releaseLocked := func(n int) {
		for i := 0; i < n; i++ {
			tx.writes[i].v.unlock(tx.writes[i].prev)
		}
	}
	if locked != len(tx.writes) {
		releaseLocked(locked)
		tx.recycleBuilds()
		tx.noteAbort(abortLockBusy, tx.writes[locked].v)
		return false
	}
	tx.syncAt(syncpoint.PostLock)
	// The write version is fetched before validating (as in TL2 and the
	// simulated mvtm): any writer serialized after this point either fails
	// the ≤ rv check or is caught holding a lock. Both strategies draw a
	// version above a post-lock clock load (see clock.go).
	tx.syncAt(syncpoint.PreClockStamp)
	wv := tx.advanceClock()
	if bad, ok := tx.validateCommit(); !ok {
		releaseLocked(locked)
		tx.recycleBuilds()
		tx.noteAbort(abortCommitValidation, bad)
		return false
	}
	tx.syncAt(syncpoint.PrePublish)
	hwm := 0
	for i := range tx.writes {
		e := &tx.writes[i]
		if e.v.loadChain() != e.base {
			// A foreign commit landed between the optimistic build and our
			// lock; rebuild from the current chain (rare), recycling the
			// never-published first build.
			old := e.nc
			tx.buildChain(e, st)
			chainPool.Put(old)
		}
		e.nc.head[0].ver = wv // stamp before the publishing store below
		if e.reclaimed > 0 {
			st.gcSweeps.Add(1)
			st.reclaimed.Add(uint64(e.reclaimed))
		}
		if n := e.nc.len(); n > hwm {
			hwm = n
		}
		e.v.storeChain(e.nc) // publish before the unlock's release store
		e.v.unlock(wv)
	}
	// Retire the replaced chains: the timestamp is a clock sample taken
	// after every unlinking store above, so any reader still holding one
	// pinned before its swap and carries rv ≤ this value (see
	// retiredChain). drainRetired recycles them once every active
	// registration has moved strictly past it.
	rt := clock.Load()
	for i := range tx.writes {
		tx.retired = append(tx.retired, retiredChain{c: tx.writes[i].base, ts: rt})
	}
	if ClockStrategyInEffect() == GV7 {
		// Publish the write version now that the locks are released:
		// strict serializability demands that a transaction pinning after
		// this commit returns reads the new versions, and pinned snapshots
		// have no extension path to recover from an unpublished commit.
		// Under concurrent commit traffic a later tick is usually already
		// published and this is a single shared load.
		helpClock(wv)
	}
	st.appended.Add(uint64(len(tx.writes)))
	st.maxChain(uint64(hwm))
	return true
}

// buildChains prepares each write's new chain from the currently
// published one (see commit). Sweep hysteresis: chains are left to grow
// to gcSlackFactor×retention and then truncated back down in the same
// allocation as the push, so the sweep's survivor copy and the
// minActiveRV scan amortize over ~retention commits instead of taxing
// every one.
func (tx *Tx) buildChains(st *statShard) {
	tx.minState = 0
	for i := range tx.writes {
		tx.buildChain(&tx.writes[i], st)
	}
}

// buildChain prepares one write entry's chain. The new head version is a
// placeholder until commit stamps the write version in under the Var's
// lock. minRV computed here and used after the locks are taken is still
// sound: the registered minimum is monotone, so an early sample is merely
// more conservative.
func (tx *Tx) buildChain(e *writeEntry, st *statShard) {
	c := e.v.loadChain()
	e.base, e.reclaimed = c, 0
	if c.len() >= gcSlackFactor*int(retention.Load()) {
		if tx.minState == 0 {
			// The sweep is about to sample the epoch table: a reader
			// granted here and pinning now must either be seen by the
			// scan or make the sweep skip (the joining-sentinel race the
			// GC-truncation pathology test interleaves against).
			tx.syncAt(syncpoint.GCSweep)
			if m, ok := minActiveRV(tx.rv); ok {
				tx.minRV, tx.minState = m, 1
			} else {
				tx.minState = 2
				st.gcSkips.Add(1)
			}
		}
		if tx.minState == 1 {
			e.nc, e.reclaimed = c.pushTruncate(e.val, 0, tx.minRV, int(retention.Load()))
			return
		}
	}
	e.nc = c.push(e.val, 0)
}

// Atomically runs fn inside an update transaction, retrying until it
// commits. Reads observe the snapshot at the transaction's pinned read
// timestamp; commit validates that every read is still current
// (first-committer-wins) and appends new versions. Returning a non-nil
// error aborts the transaction (its writes are discarded) and returns
// that error to the caller without retrying.
//
// Transactions that are read-only by construction should call
// AtomicallyRO instead: the snapshot path skips read-set logging and
// commit validation entirely and can never abort.
func Atomically(fn func(tx *Tx) error) error {
	return atomically(nil, fn)
}

// AtomicallyCtx is Atomically with a cancellation point: the context is
// checked before every attempt and while blocked in Retry, and a done
// context surfaces as a clean abort — buffered writes discarded, the
// epoch registration dropped, the pooled descriptor recycled — returning
// ctx.Err(). An attempt already past its check runs to completion, so a
// commit racing the cancellation may still land.
func AtomicallyCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return atomically(ctx, fn)
}

// atomically is the shared retry loop behind Atomically and
// AtomicallyCtx; a nil ctx costs one predictable branch per attempt.
func atomically(ctx context.Context, fn func(tx *Tx) error) error {
	admitted()
	tx := txPool.Get().(*Tx)
	tx.ro = false
	tx.sync = nil
	if syncOn {
		tx.sync = syncHook
	}
	tx.beginBudget()
	var latStart time.Time
	if p := latEvery.Load(); p != 0 {
		tx.latSeq++
		if uint64(tx.latSeq)&(p-1) == 0 {
			latStart = time.Now()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			// A panic escaping fn must not strand the descriptor: finish
			// drops the epoch registration (the GC floor must not stay
			// pinned forever) and recycles the descriptor into the pool. No
			// engine locks can be held here — commit runs no user code and
			// never panics while holding its write locks.
			tx.finish()
			panic(r)
		}
	}()
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				tx.finish()
				return err
			}
		}
		tx.reset()
		tx.pin()
		if traceOn {
			tx.traceBegin()
		}
		err, ctl := runAttempt(tx, fn)
		if ctl == ctlRetryWait {
			tx.traceEnd(false)
			// Deregister the snapshot before blocking: a transaction asleep
			// in Retry must not hold the GC floor down.
			tx.unpin()
			waitForChange(tx, ctx)
			continue // the wait already yielded; retry immediately
		}
		if ctl == ctlBudget {
			tx.stat().aborts.Add(1)
			tx.traceEnd(false)
			return tx.budgetAbort()
		}
		if err != nil {
			tx.traceEnd(false)
			tx.finish()
			return err // user error: abort without retry
		}
		if tx.commit() {
			tx.stat().commits.Add(1)
			if !latStart.IsZero() {
				commitLatency.Observe(uint64(time.Since(latStart).Microseconds()))
				attemptsPerCommit.Observe(uint64(attempt) + 1)
			}
			tx.traceEnd(true)
			tx.finish()
			return nil
		}
		// The only conflict-abort source: commit validation or lock
		// acquisition failed (snapshot reads cannot fail mid-attempt).
		tx.stat().aborts.Add(1)
		tx.traceEnd(false)
		if tx.budgetExceeded {
			return tx.budgetAbort()
		}
		if !tx.chargeSoft(tx.costs.Retry) {
			return tx.budgetAbort()
		}
		backoff.Attempt(attempt)
	}
}

// AtomicallyRO runs fn as a snapshot (read-only) transaction: every read
// is served from the version chains at the transaction's pinned read
// timestamp, with no read-set logging, no validation, and no abort path —
// the transaction runs exactly once, which is the whole point of keeping
// versions (mv-permissiveness, the simulated mvtm's guarantee, at native
// speed). Returning a non-nil error returns it to the caller, as with
// Atomically.
//
// fn must not write: Set panics, and Retry panics since there is no
// recorded read set to wait on. Use Atomically for transactions that may
// write or need Retry.
func AtomicallyRO(fn func(tx *Tx) error) error {
	return atomicallyRO(nil, fn)
}

// AtomicallyROCtx is AtomicallyRO with a cancellation point: a context
// already done when the call starts returns ctx.Err() without running fn.
// The transaction itself still runs exactly once — snapshot reads never
// block on writers that started after the pin, so there is no retry loop
// to interrupt.
func AtomicallyROCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return atomicallyRO(ctx, fn)
}

// atomicallyRO is the shared single-run body behind AtomicallyRO and
// AtomicallyROCtx.
func atomicallyRO(ctx context.Context, fn func(tx *Tx) error) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	tx := txPool.Get().(*Tx)
	tx.ro = true
	tx.sync = nil
	if syncOn {
		tx.sync = syncHook
	}
	tx.beginBudget()
	var latStart time.Time
	if p := latEvery.Load(); p != 0 {
		tx.latSeq++
		if uint64(tx.latSeq)&(p-1) == 0 {
			latStart = time.Now()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			// As in atomically: a panic (including the Set/Retry usage
			// errors) must release the epoch registration and recycle the
			// descriptor.
			tx.finish()
			panic(r)
		}
	}()
	tx.reset()
	tx.pin()
	if traceOn {
		tx.traceBegin()
	}
	err, ctl := runAttempt(tx, fn)
	if ctl == ctlBudget {
		// The one abort the snapshot path has: the budget ran dry walking
		// chains. There is no retry — the grant is per call, and a re-run
		// would just run dry again.
		tx.stat().aborts.Add(1)
		tx.traceEnd(false)
		return tx.budgetAbort()
	}
	if ctl != ctlOK {
		// The snapshot path raises no other engine signals: reads cannot
		// conflict, and Set/Retry panic with usage errors before
		// signalling.
		panic("mvstm: internal: snapshot transaction raised an abort signal")
	}
	if err == nil {
		st := tx.stat()
		st.commits.Add(1)
		st.roCommits.Add(1)
		if !latStart.IsZero() {
			commitLatency.Observe(uint64(time.Since(latStart).Microseconds()))
			attemptsPerCommit.Observe(1)
		}
	}
	tx.traceEnd(err == nil)
	tx.finish()
	return err
}

type ctlKind int

const (
	ctlOK ctlKind = iota
	ctlRetryWait
	ctlBudget
)

// runAttempt executes one attempt of fn, translating the Retry and
// budget signals into control flow. Unknown panics propagate.
func runAttempt(tx *Tx, fn func(tx *Tx) error) (err error, ctl ctlKind) {
	defer func() {
		switch r := recover(); r.(type) {
		case nil:
		case waitSignal:
			ctl = ctlRetryWait
		case budgetSignal:
			ctl = ctlBudget
		default:
			panic(r)
		}
	}()
	return fn(tx), ctlOK
}

// waitForChange blocks until some variable in the transaction's read set
// has a version newer than the one read, or until ctx (if any) is done —
// the caller's loop turns that into a clean cancellation abort. Each
// probe is a single atomic load of the lock word, and the poll interval
// backs off exponentially so long waits cost almost nothing.
func waitForChange(tx *Tx, ctx context.Context) {
	for spins := 0; ; spins++ {
		for i := range tx.reads {
			r := &tx.reads[i]
			if lockword.Version(r.v.lockWord()) != r.ver {
				return
			}
		}
		if ctx != nil && ctx.Err() != nil {
			return
		}
		if tx.syncSpin() {
			continue
		}
		if spins < 4 {
			runtime.Gosched()
		} else {
			d := time.Microsecond << uint(min(spins-4, 10))
			if d > time.Millisecond {
				d = time.Millisecond
			}
			time.Sleep(d)
		}
	}
}

// Sanity check that Var implements varBase.
var _ varBase = (*Var[int])(nil)

// String implements fmt.Stringer for diagnostics: the newest published
// version and the chain length. Registered like Load — the chain must
// not be recycled while it is being formatted.
func (v *Var[T]) String() string {
	b := pinPeek()
	defer unpinPeek(b)
	c := v.loadChain()
	return fmt.Sprintf("Var(%v@v%d,chain=%d)", c.head[0].val, c.head[0].ver, c.len())
}
