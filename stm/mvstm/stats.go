package mvstm

import "sync/atomic"

// Stats is a snapshot of the engine-wide transaction counters. Counters
// are maintained on padded per-descriptor stripes, as in the stm engine;
// snapshot reads additionally batch their counts per call so the
// abort-free read path pays no atomic add per read.
type Stats struct {
	// Commits counts transactions that committed (including snapshot
	// transactions); ROCommits counts the AtomicallyRO subset, which by
	// construction equals the number of AtomicallyRO calls that returned
	// nil — snapshot transactions never abort.
	Commits   uint64
	ROCommits uint64
	// Aborts counts failed update attempts (lock conflicts and failed
	// commit validations) plus budget aborts. Commits+Aborts is the total
	// attempt count.
	Aborts uint64
	// BudgetAborts counts transactions aborted with ErrOutOfBudget by the
	// configured BudgetPolicy — a subset of Aborts (each exhausted call
	// contributes exactly one). Unlike conflict aborts it can include
	// snapshot (AtomicallyRO) transactions, whose chain walks are metered.
	BudgetAborts uint64
	// SnapshotReads counts reads served from version chains (both paths);
	// WalkSteps counts the versions examined serving them, so
	// WalkSteps/SnapshotReads is the mean chain walk — the time half of
	// the space-for-time trade.
	SnapshotReads uint64
	WalkSteps     uint64
	// VersionsAppended counts versions committed; VersionsReclaimed counts
	// versions truncated by the epoch GC. Their difference bounds the live
	// version count (up to the initial versions).
	VersionsAppended  uint64
	VersionsReclaimed uint64
	// VersionsPooled counts versions whose chain storage was recycled
	// through the size-classed free lists after epoch quiescence (see
	// drainRetired) — the steady-state allocation-free signal. It lags
	// VersionsReclaimed: reclaimed versions sit on retire lists until the
	// epoch floor passes them, and overflow past the retire cap is dropped
	// to the runtime GC instead of pooled.
	VersionsPooled uint64
	// ClockBlockClaims counts GV7 allocator claims — one fetch of
	// gv7BlockSize ticks each. Under GV4 it stays 0; under GV7,
	// Commits/ClockBlockClaims approaches the block size when the
	// descriptor pool is stable (the amortization working).
	ClockBlockClaims uint64
	// GCSweeps counts chain truncations — one per chain swept, so a
	// commit whose write set truncates k chains adds k (compare against
	// VersionsReclaimed, not Commits). GCSkips counts commits whose sweep
	// was abandoned conservatively because a transaction was observed
	// mid-registration.
	GCSweeps uint64
	GCSkips  uint64
	// ChainHWM is the high-water mark of any published chain's length — an
	// absolute engine-lifetime maximum, not a delta (Sub carries the newer
	// snapshot's value through). Bounded chains under churn are the GC's
	// acceptance signal; a pinned long reader shows up here as growth.
	ChainHWM uint64
	// AbortReasons classifies every abort at its site, mirroring
	// repro/stm's taxonomy shape-wise. Snapshot reads cannot fail
	// mid-attempt, so this engine produces only LockBusy (commit could
	// not acquire its write locks), CommitValidation (a validated read
	// was overwritten or foreign-locked), Budget and ExplicitRetry;
	// ReadCertify and Extension stay zero by construction.
	AbortReasons AbortReasons
}

// AbortReasons is the per-class abort breakdown, field-compatible with
// repro/stm's so the serving tier reports all engines uniformly. The
// conflict classes partition Stats.Aborts minus budget refusals; Budget
// equals Stats.BudgetAborts; ExplicitRetry counts user Retry signals
// (parked waits, which are not in Stats.Aborts).
type AbortReasons struct {
	ReadCertify      uint64
	CommitValidation uint64
	LockBusy         uint64
	Extension        uint64
	Budget           uint64
	ExplicitRetry    uint64
}

// Total sums every class.
func (r AbortReasons) Total() uint64 {
	return r.ReadCertify + r.CommitValidation + r.LockBusy + r.Extension + r.Budget + r.ExplicitRetry
}

// Sub returns the per-class deltas r - t.
func (r AbortReasons) Sub(t AbortReasons) AbortReasons {
	return AbortReasons{
		ReadCertify:      r.ReadCertify - t.ReadCertify,
		CommitValidation: r.CommitValidation - t.CommitValidation,
		LockBusy:         r.LockBusy - t.LockBusy,
		Extension:        r.Extension - t.Extension,
		Budget:           r.Budget - t.Budget,
		ExplicitRetry:    r.ExplicitRetry - t.ExplicitRetry,
	}
}

// Map returns the breakdown keyed by the stable snake_case names the
// serving tier and tmstat expose.
func (r AbortReasons) Map() map[string]uint64 {
	return map[string]uint64{
		"read_certify":      r.ReadCertify,
		"commit_validation": r.CommitValidation,
		"lock_busy":         r.LockBusy,
		"extension":         r.Extension,
		"budget":            r.Budget,
		"explicit_retry":    r.ExplicitRetry,
	}
}

// AbortRatio returns Aborts / (Commits + Aborts), or 0 for an empty
// snapshot.
func (s Stats) AbortRatio() float64 {
	if s.Commits+s.Aborts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits+s.Aborts)
}

// MeanChainWalk returns WalkSteps / SnapshotReads, or 0 for an empty
// snapshot.
func (s Stats) MeanChainWalk() float64 {
	if s.SnapshotReads == 0 {
		return 0
	}
	return float64(s.WalkSteps) / float64(s.SnapshotReads)
}

// Sub returns the counter deltas s - t (ChainHWM, an absolute high-water
// mark, is carried from s); use snapshots around a workload to measure
// just that workload.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Commits:           s.Commits - t.Commits,
		ROCommits:         s.ROCommits - t.ROCommits,
		Aborts:            s.Aborts - t.Aborts,
		BudgetAborts:      s.BudgetAborts - t.BudgetAborts,
		SnapshotReads:     s.SnapshotReads - t.SnapshotReads,
		WalkSteps:         s.WalkSteps - t.WalkSteps,
		VersionsAppended:  s.VersionsAppended - t.VersionsAppended,
		VersionsReclaimed: s.VersionsReclaimed - t.VersionsReclaimed,
		VersionsPooled:    s.VersionsPooled - t.VersionsPooled,
		ClockBlockClaims:  s.ClockBlockClaims - t.ClockBlockClaims,
		GCSweeps:          s.GCSweeps - t.GCSweeps,
		GCSkips:           s.GCSkips - t.GCSkips,
		ChainHWM:          s.ChainHWM,
		AbortReasons:      s.AbortReasons.Sub(t.AbortReasons),
	}
}

// statStripes is the number of counter stripes; a power of two so stripe
// selection is a mask.
const statStripes = 16

// Abort-reason indices into a statShard's reasons array; the order
// matches the AbortReasons fields.
const (
	abortReadCertify = iota
	abortCommitValidation
	abortLockBusy
	abortExtension
	abortBudget
	abortExplicitRetry
	nAbortReasons
)

// statShard is one stripe of counters, padded out to its own cache lines
// so stripes do not false-share: 13 named counters plus 6 reason
// counters is 19 words (152 bytes), padded to the next 128-byte
// multiple.
type statShard struct {
	commits          atomic.Uint64
	roCommits        atomic.Uint64
	aborts           atomic.Uint64
	budgetAborts     atomic.Uint64
	snapshotReads    atomic.Uint64
	walkSteps        atomic.Uint64
	appended         atomic.Uint64
	reclaimed        atomic.Uint64
	pooled           atomic.Uint64
	clockBlockClaims atomic.Uint64
	gcSweeps         atomic.Uint64
	gcSkips          atomic.Uint64
	chainHWM         atomic.Uint64
	reasons          [nAbortReasons]atomic.Uint64
	_                [256 - 19*8]byte
}

var statShards [statStripes]statShard

// statSeq hands out stripe indices to new descriptors.
var statSeq atomic.Uint64

// stat returns the descriptor's counter stripe.
func (tx *Tx) stat() *statShard { return &statShards[tx.shard&(statStripes-1)] }

// maxChain raises the stripe's chain-length high-water mark to n.
func (sh *statShard) maxChain(n uint64) {
	for {
		cur := sh.chainHWM.Load()
		if n <= cur || sh.chainHWM.CompareAndSwap(cur, n) {
			return
		}
	}
}

// ReadStats sums the stripes into one snapshot (ChainHWM takes the
// maximum). It is safe to call concurrently with transactions; the
// snapshot is per-counter atomic, not a cross-counter consistent cut.
func ReadStats() Stats {
	var s Stats
	for i := range statShards {
		sh := &statShards[i]
		s.Commits += sh.commits.Load()
		s.ROCommits += sh.roCommits.Load()
		s.Aborts += sh.aborts.Load()
		s.BudgetAborts += sh.budgetAborts.Load()
		s.SnapshotReads += sh.snapshotReads.Load()
		s.WalkSteps += sh.walkSteps.Load()
		s.VersionsAppended += sh.appended.Load()
		s.VersionsReclaimed += sh.reclaimed.Load()
		s.VersionsPooled += sh.pooled.Load()
		s.ClockBlockClaims += sh.clockBlockClaims.Load()
		s.GCSweeps += sh.gcSweeps.Load()
		s.GCSkips += sh.gcSkips.Load()
		if h := sh.chainHWM.Load(); h > s.ChainHWM {
			s.ChainHWM = h
		}
		s.AbortReasons.ReadCertify += sh.reasons[abortReadCertify].Load()
		s.AbortReasons.CommitValidation += sh.reasons[abortCommitValidation].Load()
		s.AbortReasons.LockBusy += sh.reasons[abortLockBusy].Load()
		s.AbortReasons.Extension += sh.reasons[abortExtension].Load()
		s.AbortReasons.Budget += sh.reasons[abortBudget].Load()
		s.AbortReasons.ExplicitRetry += sh.reasons[abortExplicitRetry].Load()
	}
	return s
}
