package stm_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/stm"
)

func TestBasicReadWrite(t *testing.T) {
	v := stm.NewVar(10)
	if got := v.Load(); got != 10 {
		t.Fatalf("initial Load = %d, want 10", got)
	}
	err := stm.Atomically(func(tx *stm.Tx) error {
		if got := v.Get(tx); got != 10 {
			t.Errorf("Get = %d, want 10", got)
		}
		v.Set(tx, 20)
		if got := v.Get(tx); got != 20 {
			t.Errorf("read-own-write = %d, want 20", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 20 {
		t.Fatalf("after commit Load = %d, want 20", got)
	}
}

func TestUserErrorAborts(t *testing.T) {
	v := stm.NewVar(1)
	sentinel := errors.New("nope")
	err := stm.Atomically(func(tx *stm.Tx) error {
		v.Set(tx, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := v.Load(); got != 1 {
		t.Fatalf("aborted write visible: %d", got)
	}
}

// TestBankInvariant is the classic STM demo: concurrent random transfers
// conserve the total balance, and no intermediate state is ever observable.
func TestBankInvariant(t *testing.T) {
	const accounts = 8
	const initial = 1000
	vars := make([]*stm.Var[int], accounts)
	for i := range vars {
		vars[i] = stm.NewVar(initial)
	}
	var auditors, transfers sync.WaitGroup
	stop := make(chan struct{})
	// Auditors continuously verify conservation inside transactions.
	for a := 0; a < 2; a++ {
		auditors.Add(1)
		go func() {
			defer auditors.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum int
				if err := stm.Atomically(func(tx *stm.Tx) error {
					sum = 0
					for _, v := range vars {
						sum += v.Get(tx)
					}
					return nil
				}); err != nil {
					t.Errorf("auditor: %v", err)
					return
				}
				if sum != accounts*initial {
					t.Errorf("conservation violated: sum = %d", sum)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		w := w
		transfers.Add(1)
		go func() {
			defer transfers.Done()
			rng := uint64(w)*2654435761 + 1
			next := func() int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int(rng>>33) % accounts
			}
			for i := 0; i < 500; i++ {
				from, to := next(), next()
				if from == to {
					continue
				}
				if err := stm.Atomically(func(tx *stm.Tx) error {
					amt := 1 + i%7
					f := vars[from].Get(tx)
					vars[from].Set(tx, f-amt)
					vars[to].Set(tx, vars[to].Get(tx)+amt)
					return nil
				}); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}()
	}
	transfers.Wait()
	close(stop)
	auditors.Wait()

	var total int
	for _, v := range vars {
		total += v.Load()
	}
	if total != accounts*initial {
		t.Fatalf("final total = %d, want %d", total, accounts*initial)
	}
}

// TestConcurrentCounter verifies no increment is lost under contention.
func TestConcurrentCounter(t *testing.T) {
	ctr := stm.NewVar(0)
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := stm.Atomically(func(tx *stm.Tx) error {
					ctr.Set(tx, ctr.Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := ctr.Load(); got != workers*rounds {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*rounds)
	}
}

// TestRetryBlocksUntilChange exercises the Retry combinator as a condition
// variable: a consumer waits for a producer's write.
func TestRetryBlocksUntilChange(t *testing.T) {
	ready := stm.NewVar(false)
	payload := stm.NewVar(0)
	got := make(chan int, 1)
	go func() {
		var v int
		_ = stm.Atomically(func(tx *stm.Tx) error {
			if !ready.Get(tx) {
				tx.Retry()
			}
			v = payload.Get(tx)
			return nil
		})
		got <- v
	}()
	_ = stm.Atomically(func(tx *stm.Tx) error {
		payload.Set(tx, 42)
		ready.Set(tx, true)
		return nil
	})
	if v := <-got; v != 42 {
		t.Fatalf("consumer got %d, want 42", v)
	}
}

// TestRetryEmptyReadSetPanics pins the misuse guard.
func TestRetryEmptyReadSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Retry with empty read set did not panic")
		}
	}()
	_ = stm.Atomically(func(tx *stm.Tx) error {
		tx.Retry()
		return nil
	})
}

// TestMultiTypeTransaction verifies heterogeneous Vars compose in one
// transaction.
func TestMultiTypeTransaction(t *testing.T) {
	name := stm.NewVar("alice")
	age := stm.NewVar(30)
	tags := stm.NewVar([]string{"a"})
	err := stm.Atomically(func(tx *stm.Tx) error {
		name.Set(tx, name.Get(tx)+"!")
		age.Set(tx, age.Get(tx)+1)
		tags.Set(tx, append(append([]string(nil), tags.Get(tx)...), "b"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if name.Load() != "alice!" || age.Load() != 31 || len(tags.Load()) != 2 {
		t.Fatalf("got %q %d %v", name.Load(), age.Load(), tags.Load())
	}
}

// TestAtomicSwapProperty property-checks two-variable atomicity: swapping
// pairs repeatedly preserves the multiset of values.
func TestAtomicSwapProperty(t *testing.T) {
	prop := func(a, b int32, swaps uint8) bool {
		x, y := stm.NewVar(int64(a)), stm.NewVar(int64(b))
		for i := 0; i < int(swaps%16); i++ {
			if err := stm.Atomically(func(tx *stm.Tx) error {
				vx, vy := x.Get(tx), y.Get(tx)
				x.Set(tx, vy)
				y.Set(tx, vx)
				return nil
			}); err != nil {
				return false
			}
		}
		gx, gy := x.Load(), y.Load()
		if swaps%16%2 == 0 {
			return gx == int64(a) && gy == int64(b)
		}
		return gx == int64(b) && gy == int64(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroVarPanicsUsefully pins the misuse guard: a zero Var (not created
// with NewVar) fails fast with a descriptive message instead of a nil
// dereference.
func TestZeroVarPanicsUsefully(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("zero Var did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "NewVar") {
			t.Fatalf("panic %v does not mention NewVar", r)
		}
	}()
	var v stm.Var[int]
	_ = stm.Atomically(func(tx *stm.Tx) error {
		_ = v.Get(tx)
		return nil
	})
}
