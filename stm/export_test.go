package stm

import (
	"repro/internal/tm"
	"repro/internal/tm/lockword"
)

// Test-only exports: the native history trace hook (see trace.go) and a
// few descriptor internals the RO fast-path tests assert on.

// StartTrace enables history tracing. Call with no transactions in
// flight, before spawning workload goroutines.
func StartTrace() { startTrace() }

// StopTrace disables tracing and returns the recorded history. Call after
// joining every workload goroutine.
func StopTrace() *tm.History { return stopTrace() }

// ReadSetLen reports how many read-set entries the descriptor has logged;
// the RO fast path must keep it at zero.
func ReadSetLen(tx *Tx) int { return len(tx.reads) }

// ROCertifiedReads reports how many reads the current attempt certified on
// the read-only fast path.
func ROCertifiedReads(tx *Tx) int { return tx.roReads }

// IsRO reports whether the descriptor is running on the read-only fast
// path (AtomicallyRO, or promoted by Atomically).
func IsRO(tx *Tx) bool { return tx.ro }

// IsPromoted reports whether the descriptor was promoted to the RO path by
// Atomically's empty-write-set guess (as opposed to AtomicallyRO).
func IsPromoted(tx *Tx) bool { return tx.promoted }

// KeyTowerHeight exposes the OrderedMap's deterministic tower height so
// the fuzz seeds can target tower-height edge cases (tallest/shortest
// keys of the fuzz keyspace).
func KeyTowerHeight(key string) int { return towerHeight(omHash(key)) }

// VarLocked reports whether v's versioned lock word currently has the
// lock bit set; the budget and panic-safety tests assert every abort path
// leaves it clear.
func VarLocked[T any](v *Var[T]) bool { return lockword.Locked(v.lw.Load()) }

// BudgetLeft reports the descriptor's remaining work-budget grant, for
// pinning down exactly where a charge lands.
func BudgetLeft(tx *Tx) uint64 { return tx.budgetLeft }
