package stm

import (
	"repro/internal/syncpoint"
	"repro/internal/tm"
	"repro/internal/tm/lockword"
)

// Test-only exports: the native history trace hook (see trace.go) and a
// few descriptor internals the RO fast-path tests assert on.

// StartTrace enables history tracing. Call with no transactions in
// flight, before spawning workload goroutines.
func StartTrace() { startTrace() }

// StopTrace disables tracing and returns the recorded history. Call after
// joining every workload goroutine.
func StopTrace() *tm.History { return stopTrace() }

// SetSyncHook installs the scheduling-harness hook (see syncpoint.go):
// every transaction begun while it is set calls h at each engine sync
// point, and proc supplies the harness worker id traced as the history
// Proc. Install and remove (h = nil) only with no transactions in
// flight, and run no transactions outside the harness while it is set.
func SetSyncHook(h func(syncpoint.Point), proc func() int) { setSyncHook(h, proc) }

// ReadSetLen reports how many read-set entries the descriptor has logged;
// the RO fast path must keep it at zero.
func ReadSetLen(tx *Tx) int { return len(tx.reads) }

// ROCertifiedReads reports how many reads the current attempt certified on
// the read-only fast path.
func ROCertifiedReads(tx *Tx) int { return tx.roReads }

// IsRO reports whether the descriptor is running on the read-only fast
// path (AtomicallyRO, or promoted by Atomically).
func IsRO(tx *Tx) bool { return tx.ro }

// IsPromoted reports whether the descriptor was promoted to the RO path by
// Atomically's empty-write-set guess (as opposed to AtomicallyRO).
func IsPromoted(tx *Tx) bool { return tx.promoted }

// KeyTowerHeight exposes the OrderedMap's deterministic tower height so
// the fuzz seeds can target tower-height edge cases (tallest/shortest
// keys of the fuzz keyspace).
func KeyTowerHeight(key string) int { return towerHeight(omHash(key)) }

// VarLocked reports whether v's versioned lock word currently has the
// lock bit set; the budget and panic-safety tests assert every abort path
// leaves it clear.
func VarLocked[T any](v *Var[T]) bool { return lockword.Locked(v.lw.Load()) }

// BudgetLeft reports the descriptor's remaining work-budget grant, for
// pinning down exactly where a charge lands.
func BudgetLeft(tx *Tx) uint64 { return tx.budgetLeft }

// SetGV7BlockSizeForTest overrides the GV7 block size K and returns a
// restore func. Call only while the engine is quiescent; the block-edge
// tests use tiny blocks to hit exhaustion and drain without K commits.
func SetGV7BlockSizeForTest(k uint64) (restore func()) {
	old := gv7BlockSize
	gv7BlockSize = k
	return func() { gv7BlockSize = old }
}

// GV7BlockForTest exposes the descriptor's cached tick block.
func GV7BlockForTest(tx *Tx) (next, end uint64) { return tx.blockNext, tx.blockEnd }

// ClockAllocForTest exposes GV7's allocation high-water mark.
func ClockAllocForTest() uint64 { return clockAlloc.Load() }

// ClockForTest exposes the published global clock.
func ClockForTest() uint64 { return clock.Load() }

// DrainBlockForTest exercises the descriptor-recycle drain path directly
// on a descriptor that holds a (possibly partially used) block.
func DrainBlockForTest(tx *Tx) { tx.drainBlock() }

// ClaimBlockForTest claims a fresh GV7 block for the descriptor as a
// post-lock clock load of c would.
func ClaimBlockForTest(tx *Tx, c uint64) { tx.claimBlock(c) }

// AdvanceClockForTest drives the commit-time clock advance directly (the
// caller owns no locks, so use only on quiescent engines).
func AdvanceClockForTest(tx *Tx) (wv uint64, quiescent bool) { return tx.advanceClock() }

// NewTxForTest hands out a pooled descriptor (and a release func) so the
// block-lifecycle tests can drive claim/drain without running commits.
func NewTxForTest() (*Tx, func()) {
	tx := txPool.Get().(*Tx)
	return tx, tx.release
}

// VarTS exposes a Var's TicToc (wts, rts) pair for the interval tests.
func VarTS[T any](v *Var[T]) (wts, rts uint64) {
	pl := lockword.Version(v.lw.Load())
	return ttWts(pl), ttRts(pl)
}

// TTInterval exposes the descriptor's running validity-interval
// intersection under TicToc.
func TTInterval(tx *Tx) (lo, hi uint64) { return tx.rv, tx.ttHi }
