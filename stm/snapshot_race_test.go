package stm_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/stm"
)

// TestMapSnapshotRangeBucketConsistency pins the Snapshot* contract under
// concurrency (run with -race): each bucket is read as one consistent
// snapshot. With a single bucket the whole SnapshotRange is therefore one
// atomic cut — while writers transfer value between keys transactionally,
// a concurrent snapshot sum must never see money in flight.
func TestMapSnapshotRangeBucketConsistency(t *testing.T) {
	const (
		nkeys   = 8
		initial = 100
		writers = 2
		rounds  = 400
	)
	m := stm.NewMap[int](1) // one bucket: SnapshotRange is a single load
	keys := make([]string, nkeys)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", i)
			m.Put(tx, keys[i], initial)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum, n := 0, 0
				m.SnapshotRange(func(_ string, v int) bool {
					sum += v
					n++
					return true
				})
				if sum != nkeys*initial || n != nkeys {
					t.Errorf("mixed snapshot: sum=%d over %d keys, want %d over %d",
						sum, n, nkeys*initial, nkeys)
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 3
			for i := 0; i < rounds; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := int(rng>>33) % nkeys
				to := (from + 1 + int(rng>>13)%(nkeys-1)) % nkeys
				if err := stm.Atomically(func(tx *stm.Tx) error {
					f, _ := m.Get(tx, keys[from])
					g, _ := m.Get(tx, keys[to])
					m.Put(tx, keys[from], f-1)
					m.Put(tx, keys[to], g+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
}

// TestMapSnapshotRangeUnderChurn races SnapshotRange against transactional
// Put/Delete across many buckets (run with -race). Cross-bucket atomicity
// is explicitly not promised, but the per-bucket contract still pins a
// lot: a key appears at most once per scan, deleted-state and value always
// come from some committed transaction (writers only ever commit value
// 2i, so an odd value would be a torn read), and SnapshotLen/SnapshotGet
// stay safe to call throughout.
func TestMapSnapshotRangeUnderChurn(t *testing.T) {
	const (
		nkeys   = 64
		writers = 4
		rounds  = 300
	)
	m := stm.NewMap[int](16)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			seen := make(map[string]bool, nkeys)
			for {
				select {
				case <-stop:
					return
				default:
				}
				clear(seen)
				m.SnapshotRange(func(k string, v int) bool {
					if seen[k] {
						t.Errorf("key %q appeared twice in one snapshot scan", k)
						return false
					}
					seen[k] = true
					if v%2 != 0 {
						t.Errorf("snapshot read uncommitted value %d at %q", v, k)
						return false
					}
					return true
				})
				_ = m.SnapshotLen()
				if v, ok := m.SnapshotGet(keys[0]); ok && v%2 != 0 {
					t.Errorf("SnapshotGet read uncommitted value %d", v)
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := keys[(w*rounds+i*7)%nkeys]
				if i%3 == 2 {
					if err := stm.Atomically(func(tx *stm.Tx) error {
						m.Delete(tx, k)
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, k, 2*i)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
}

// TestQueueTryOpsConcurrent covers the non-blocking queue paths under
// concurrency (run with -race): producers spin on TryPut, consumers on
// TryTake, every item is delivered exactly once, the occupancy never
// exceeds the capacity, and the per-producer FIFO order survives — each
// consumer's stream must contain every producer's items in increasing
// sequence order, because takes are totally ordered by the queue head.
func TestQueueTryOpsConcurrent(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 150
		capacity  = 4
	)
	q := stm.NewQueue[[2]int](capacity) // {producer, seq}
	var wg sync.WaitGroup
	streams := make([][][2]int, consumers)
	var taken sync.WaitGroup
	taken.Add(producers * perProd)
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var item [2]int
				var ok bool
				if err := stm.Atomically(func(tx *stm.Tx) error {
					if n := q.Len(tx); n < 0 || n > capacity {
						t.Errorf("queue Len %d outside [0,%d]", n, capacity)
					}
					item, ok = q.TryTake(tx)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if ok {
					streams[c] = append(streams[c], item)
					taken.Done()
					continue
				}
				select {
				case <-done:
					return
				default:
					runtime.Gosched() // empty queue: let the producers run
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for {
					var ok bool
					if err := stm.Atomically(func(tx *stm.Tx) error {
						ok = q.TryPut(tx, [2]int{p, i})
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
					if ok {
						break
					}
					runtime.Gosched() // full queue: let the consumers drain

				}
			}
		}()
	}
	taken.Wait()
	close(done)
	wg.Wait()
	seen := make(map[[2]int]bool)
	for c, stream := range streams {
		last := make([]int, producers)
		for i := range last {
			last[i] = -1
		}
		for _, item := range stream {
			if seen[item] {
				t.Fatalf("item %v delivered twice", item)
			}
			seen[item] = true
			if item[1] <= last[item[0]] {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d",
					c, item[0], item[1], last[item[0]])
			}
			last[item[0]] = item[1]
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("delivered %d items, want %d", len(seen), producers*perProd)
	}
}

// TestQueueBlockingWakeup covers Retry's wait path end to end (run with
// -race): a consumer blocks on an empty queue and is woken by a producer,
// and a producer blocks on a full queue and is woken by a consumer.
func TestQueueBlockingWakeup(t *testing.T) {
	q := stm.NewQueue[int](1)
	got := make(chan int, 1)
	go func() {
		var v int
		_ = stm.Atomically(func(tx *stm.Tx) error {
			v = q.Take(tx) // blocks: queue is empty
			return nil
		})
		got <- v
	}()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		q.Put(tx, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 42 {
		t.Fatalf("blocked Take woke with %d, want 42", v)
	}

	// Fill the queue, then block a Put behind it.
	if err := stm.Atomically(func(tx *stm.Tx) error {
		q.Put(tx, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	putDone := make(chan struct{})
	go func() {
		_ = stm.Atomically(func(tx *stm.Tx) error {
			q.Put(tx, 2) // blocks: queue is full
			return nil
		})
		close(putDone)
	}()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		if v := q.Take(tx); v != 1 {
			t.Errorf("Take = %d, want 1", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-putDone
	var final int
	if err := stm.Atomically(func(tx *stm.Tx) error {
		final = q.Take(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if final != 2 {
		t.Fatalf("drained %d, want the unblocked 2", final)
	}
}
