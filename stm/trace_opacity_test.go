package stm_test

// Native-history opacity tests: the test-only trace hook (stm/trace.go)
// records every transaction attempt of the native engine as an
// internal/tm.History — the same structure the simulator's tm.Record
// produces — and the internal/check oracles verify opacity and strict
// serializability on it. The serialization oracles do exhaustive search,
// so workloads here are deliberately bounded (a handful of transactions;
// aborted attempts count too). cmd/opacheck accepts the same histories as
// JSON.

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/tm"
	"repro/stm"
	"repro/stm/budget"
)

// verifyHistory asserts the two oracle properties on a recorded native
// history.
func verifyHistory(t *testing.T, h *tm.History) {
	t.Helper()
	if len(h.Txns) == 0 {
		t.Fatal("trace recorded no transactions")
	}
	if res := check.Opaque(h); !res.OK {
		t.Errorf("history is not opaque:\n%s", h)
	}
	if res := check.StrictlySerializable(h); !res.OK {
		t.Errorf("history is not strictly serializable:\n%s", h)
	}
}

// TestTraceOpacityConcurrentMixed: a bounded concurrent workload — one
// writer doing read-modify-writes, one Atomically reader (promotion
// candidate), one AtomicallyRO reader — must produce an opaque, strictly
// serializable history, aborted attempts included.
func TestTraceOpacityConcurrentMixed(t *testing.T) {
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	stm.StartTrace()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				x.Set(tx, x.Get(tx)+1)
				y.Set(tx, y.Get(tx)+1)
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				if x.Get(tx) > y.Get(tx) {
					t.Error("reader saw x > y inside one snapshot")
				}
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
				if x.Get(tx) != y.Get(tx) {
					t.Error("RO reader saw x != y inside one snapshot")
				}
				return nil
			})
		}
	}()
	wg.Wait()
	h := stm.StopTrace()
	verifyHistory(t, h)
}

// TestTraceOpacityExtensionInterleaving orchestrates the timestamp-
// extension interleaving deterministically: a reader samples its
// timestamp and reads x, a writer then commits to y, and the reader's
// subsequent read of y is stale — extension revalidates x and admits the
// new value. The recorded history must serialize (writer before reader).
func TestTraceOpacityExtensionInterleaving(t *testing.T) {
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	stm.StartTrace()
	before := stm.ReadStats()
	attempt := 0
	var gotY int
	if err := stm.Atomically(func(tx *stm.Tx) error {
		attempt++
		_ = x.Get(tx)
		if attempt == 1 {
			if err := stm.Atomically(func(wtx *stm.Tx) error {
				y.Set(wtx, 7)
				return nil
			}); err != nil {
				return err
			}
		}
		gotY = y.Get(tx) // stale on attempt 1: must extend, not abort
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	h := stm.StopTrace()
	if attempt != 1 {
		t.Fatalf("attempts = %d, want 1 (extension must absorb the stale read)", attempt)
	}
	if gotY != 7 {
		t.Fatalf("read y = %d, want 7", gotY)
	}
	if d := stm.ReadStats().Sub(before); d.Extensions == 0 {
		t.Fatalf("stats delta = %+v, want at least one extension", d)
	}
	verifyHistory(t, h)
}

// TestTraceOpacityROInterleaving orchestrates the RO fast path's
// abort/replay: the RO reader certifies x, a writer commits x and y
// together, and the reader's read of y is stale — with a certified read
// and no read set, the attempt must abort (an extension would certify a
// mixed snapshot) and the replay sees the new pair. The history — aborted
// attempt included — must be opaque. Run under GV4 and GV6.
func TestTraceOpacityROInterleaving(t *testing.T) {
	for _, strat := range []stm.ClockStrategy{stm.GV4, stm.GV6} {
		t.Run(strat.String(), func(t *testing.T) {
			stm.SetClockStrategy(strat)
			defer stm.SetClockStrategy(stm.GV4)
			x := stm.NewVar(0)
			y := stm.NewVar(0)
			stm.StartTrace()
			attempt := 0
			var gotX, gotY int
			if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
				attempt++
				gotX = x.Get(tx)
				if attempt == 1 {
					if err := stm.Atomically(func(wtx *stm.Tx) error {
						x.Set(wtx, 1)
						y.Set(wtx, 1)
						return nil
					}); err != nil {
						return err
					}
				}
				gotY = y.Get(tx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			h := stm.StopTrace()
			if attempt != 2 {
				t.Fatalf("attempts = %d, want 2 (the straddled RO attempt must abort)", attempt)
			}
			if gotX != 1 || gotY != 1 {
				t.Fatalf("snapshot = (%d,%d), want (1,1)", gotX, gotY)
			}
			verifyHistory(t, h)
			// The aborted attempt must appear in the history as a read-only
			// aborted transaction — that is what the opacity check bites on.
			aborted := 0
			for _, rec := range h.Txns {
				if rec.Status == tm.TxnAborted && rec.ReadOnly() {
					aborted++
				}
			}
			if aborted != 1 {
				t.Fatalf("history has %d aborted RO attempts, want 1:\n%s", aborted, h)
			}
		})
	}
}

// TestTraceOpacityPromotedDescriptor: the promotion path (full-pipeline
// attempt aborts, RO retry commits) yields an opaque history whose
// committed transaction is read-only.
func TestTraceOpacityPromotedDescriptor(t *testing.T) {
	x := stm.NewVar(0)
	stm.StartTrace()
	attempt := 0
	if err := stm.Atomically(func(tx *stm.Tx) error {
		attempt++
		v := x.Get(tx)
		if attempt == 1 {
			if err := stm.Atomically(func(wtx *stm.Tx) error {
				x.Set(wtx, v+1)
				return nil
			}); err != nil {
				return err
			}
			_ = x.Get(tx) // invalidated: aborts the attempt, promoting the retry
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	h := stm.StopTrace()
	if attempt != 2 {
		t.Fatalf("attempts = %d, want 2", attempt)
	}
	verifyHistory(t, h)
}

// TestTraceOpacityBudgetAbort pins the metering layer's soundness claim
// on the oracle itself: a budget abort must be indistinguishable from a
// validation abort to the opacity checker, because it fires before the
// transaction publishes anything. A metered scan is refused mid-read
// between two invariant-preserving writer commits, and the recorded
// history — budget-aborted attempt included — must be opaque and
// strictly serializable.
func TestTraceOpacityBudgetAbort(t *testing.T) {
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	stm.StartTrace()
	writeBoth := func(v int) {
		if err := stm.Atomically(func(tx *stm.Tx) error {
			x.Set(tx, v)
			y.Set(tx, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	writeBoth(1)
	// Unit costs: the first Get charges Step+Read = 2, the second refuses.
	stm.SetBudgetPolicy(budget.Fixed{Limit: 3})
	err := stm.Atomically(func(tx *stm.Tx) error {
		_ = x.Get(tx)
		_ = y.Get(tx)
		t.Error("attempt survived an exhausted grant")
		return nil
	})
	stm.SetBudgetPolicy(nil)
	if !errors.Is(err, stm.ErrOutOfBudget) {
		t.Fatalf("err = %v, want ErrOutOfBudget", err)
	}
	writeBoth(2)
	h := stm.StopTrace()
	verifyHistory(t, h)
	// The refusal must appear as an ordinary aborted transaction that
	// observed only committed state — that is what the checker verified.
	aborted := 0
	for _, rec := range h.Txns {
		if rec.Status != tm.TxnAborted {
			continue
		}
		aborted++
		reads := 0
		for _, op := range rec.Ops {
			if op.Kind == tm.OpRead {
				reads++
			}
		}
		// Both reads are in the record: the update path certifies a read
		// before charging its read-set entry, so the refusing charge lands
		// after the second read was certified consistent — exactly why the
		// checker can treat the refusal like any other abort.
		if reads != 2 {
			t.Errorf("budget-aborted attempt recorded %d reads, want 2:\n%s", reads, h)
		}
	}
	if aborted != 1 {
		t.Fatalf("history has %d aborted attempts, want exactly the refusal:\n%s", aborted, h)
	}
}

// tracePipelines is the clock-strategy table the trace-opacity tests
// sweep: every commit pipeline the engine ships must produce opaque
// histories under the same bounded concurrent workload. Knob ordering
// follows tmbench's setPipeline: the cross-knob guards refuse GV6/GV7
// while extension is off (and vice versa), so the enabling knob always
// moves first.
var tracePipelines = []struct {
	name  string
	strat stm.ClockStrategy
	ext   bool
}{
	{"gv1", stm.GV1, false},
	{"gv4+ext", stm.GV4, true},
	{"gv6+ext", stm.GV6, true},
	{"gv7+ext", stm.GV7, true},
	{"tictoc", stm.TicToc, true},
}

// setTracePipeline applies one pipeline variant and returns a restore
// func for the default (GV4 + extension).
func setTracePipeline(strat stm.ClockStrategy, ext bool) (restore func()) {
	if ext {
		stm.SetTimestampExtension(true)
		stm.SetClockStrategy(strat)
	} else {
		stm.SetClockStrategy(strat)
		stm.SetTimestampExtension(false)
	}
	return func() {
		stm.SetTimestampExtension(true)
		stm.SetClockStrategy(stm.GV4)
	}
}

// TestTraceOpacityAllPipelines runs the bounded mixed workload —
// invariant-preserving RMW writers, an Atomically reader, an RO-fast-path
// reader — under every commit pipeline and verifies the recorded history
// with both oracles. The Vars are created after the pipeline is selected,
// which is what makes the tictoc row safe: TicToc reinterprets the
// lock-word payload and must never see versioned payloads.
func TestTraceOpacityAllPipelines(t *testing.T) {
	for _, pl := range tracePipelines {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			restore := setTracePipeline(pl.strat, pl.ext)
			defer restore()
			x := stm.NewVar(0)
			y := stm.NewVar(0)
			stm.StartTrace()
			var wg sync.WaitGroup
			wg.Add(4)
			for w := 0; w < 2; w++ {
				go func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						_ = stm.Atomically(func(tx *stm.Tx) error {
							x.Set(tx, x.Get(tx)+1)
							y.Set(tx, y.Get(tx)+1)
							return nil
						})
					}
				}()
			}
			go func() {
				defer wg.Done()
				for i := 0; i < 2; i++ {
					_ = stm.Atomically(func(tx *stm.Tx) error {
						if x.Get(tx) != y.Get(tx) {
							t.Error("reader saw x != y inside one snapshot")
						}
						return nil
					})
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 2; i++ {
					_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
						if x.Get(tx) != y.Get(tx) {
							t.Error("RO reader saw x != y inside one snapshot")
						}
						return nil
					})
				}
			}()
			wg.Wait()
			h := stm.StopTrace()
			verifyHistory(t, h)
			// The invariant x == y must hold in the final committed state too.
			var fx, fy int
			if err := stm.Atomically(func(tx *stm.Tx) error {
				fx, fy = x.Get(tx), y.Get(tx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if fx != 6 || fy != 6 {
				t.Fatalf("final state = (%d,%d), want (6,6)", fx, fy)
			}
		})
	}
}

// TestTraceOrElseUnsupported pins the trace hook's documented OrElse
// limitation (stm/trace.go "Limitations"): writes are recorded at
// invocation time, so a branch that Retry-rolls-back leaves its buffered
// writes in the trace even though they never publish. The recorded
// history therefore contains a phantom write — which is exactly why
// traced workloads must not use OrElse, and why the oracle suites are
// built on plain Atomically bodies. If tracing ever learns to unwind
// rolled-back branches, this test should start failing and be updated
// deliberately.
func TestTraceOrElseUnsupported(t *testing.T) {
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	stm.StartTrace()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		return tx.OrElse(func(tx *stm.Tx) error {
			_ = x.Get(tx)
			x.Set(tx, 1) // rolled back when the branch retries...
			tx.Retry()
			return nil
		}, func(tx *stm.Tx) error {
			y.Set(tx, 2)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	h := stm.StopTrace()
	// The committed state has only g's write...
	var fx, fy int
	if err := stm.Atomically(func(tx *stm.Tx) error {
		fx, fy = x.Get(tx), y.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fx != 0 || fy != 2 {
		t.Fatalf("final state = (%d,%d), want (0,2): OrElse must roll back f's write", fx, fy)
	}
	// ...but the trace recorded both writes: f's rolled-back x write is a
	// phantom. Pin it so the limitation stays documented-and-true.
	if len(h.Txns) != 1 {
		t.Fatalf("trace has %d records, want 1:\n%s", len(h.Txns), h)
	}
	writes := 0
	for _, op := range h.Txns[0].Ops {
		if op.Kind == tm.OpWrite {
			writes++
		}
	}
	if writes != 2 {
		t.Fatalf("traced %d writes, want 2 (g's write plus f's phantom):\n%s", writes, h)
	}
}

// TestTraceHistoryJSONRoundTrip: the recorded native history marshals to
// the JSON encoding cmd/opacheck consumes and survives the round trip —
// the native trace and the simulator's recorder speak one format.
func TestTraceHistoryJSONRoundTrip(t *testing.T) {
	x := stm.NewVar(0)
	stm.StartTrace()
	_ = stm.Atomically(func(tx *stm.Tx) error {
		x.Set(tx, x.Get(tx)+1)
		return nil
	})
	_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
		_ = x.Get(tx)
		return nil
	})
	h := stm.StopTrace()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back tm.History
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != h.String() {
		t.Fatalf("round trip changed the history:\n%s\nvs\n%s", h, &back)
	}
	verifyHistory(t, &back)
}
