package stm_test

// Context-aware entry points and panic-safety regression coverage for the
// TL2 engine: AtomicallyCtx must observe cancellation before running user
// code, between attempts, and while parked in Retry; a panic out of user
// code must release every lock, discard buffered writes, recycle the
// pooled descriptor, and leave the engine fully usable.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/stm"
)

func TestAtomicallyCtxNilLikeBackground(t *testing.T) {
	v := stm.NewVar(0)
	if err := stm.AtomicallyCtx(context.Background(), func(tx *stm.Tx) error {
		v.Set(tx, 7)
		return nil
	}); err != nil {
		t.Fatalf("AtomicallyCtx(Background) = %v", err)
	}
	if got := v.Load(); got != 7 {
		t.Fatalf("v = %d, want 7", got)
	}
}

func TestAtomicallyCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := stm.AtomicallyCtx(ctx, func(tx *stm.Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("user function ran under a pre-canceled context")
	}

	err = stm.AtomicallyROCtx(ctx, func(tx *stm.Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RO err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("RO user function ran under a pre-canceled context")
	}
}

func TestAtomicallyCtxCancelUnblocksRetry(t *testing.T) {
	v := stm.NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- stm.AtomicallyCtx(ctx, func(tx *stm.Tx) error {
			if v.Get(tx) == 0 {
				tx.Retry() // no writer ever satisfies this: only cancel can
			}
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock a parked Retry")
	}
	if stm.VarLocked(v) {
		t.Fatal("lock leaked by the canceled transaction")
	}
}

func TestAtomicallyCtxDeadlineDuringConflicts(t *testing.T) {
	v := stm.NewVar(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := stm.AtomicallyCtx(ctx, func(tx *stm.Tx) error {
		cur := v.Get(tx)
		// Force a conflict every attempt so the transaction can never
		// commit; only the deadline ends it.
		if err := stm.Atomically(func(in *stm.Tx) error {
			v.Set(in, v.Get(in)+1)
			return nil
		}); err != nil {
			return err
		}
		v.Set(tx, cur+100)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if stm.VarLocked(v) {
		t.Fatal("lock leaked by the deadline-aborted transaction")
	}
}

func TestUserPanicReleasesEverything(t *testing.T) {
	v, w := stm.NewVar(0), stm.NewVar(0)
	// Iterate enough times to cycle the descriptor pool: a leaked (never
	// recycled) descriptor would surface as unbounded growth, a
	// double-recycled one as corrupt read/write sets on reuse.
	for i := 0; i < 64; i++ {
		func() {
			defer func() {
				if r := recover(); r != "user boom" {
					t.Fatalf("recover() = %v, want the user panic value", r)
				}
			}()
			_ = stm.Atomically(func(tx *stm.Tx) error {
				_ = v.Get(tx)
				w.Set(tx, 42)
				panic("user boom")
			})
		}()
		if stm.VarLocked(v) || stm.VarLocked(w) {
			t.Fatalf("iteration %d: lock leaked across a user panic", i)
		}
		if got := w.Load(); got != 0 {
			t.Fatalf("iteration %d: buffered write leaked: w = %d", i, got)
		}
	}
	// The engine stays fully usable on the same vars.
	if err := stm.Atomically(func(tx *stm.Tx) error {
		v.Set(tx, v.Get(tx)+1)
		w.Set(tx, 9)
		return nil
	}); err != nil {
		t.Fatalf("post-panic transaction failed: %v", err)
	}
	if v.Load() != 1 || w.Load() != 9 {
		t.Fatalf("post-panic commit wrong: v=%d w=%d", v.Load(), w.Load())
	}
}

func TestUserPanicOnROPath(t *testing.T) {
	v := stm.NewVar(3)
	func() {
		defer func() {
			if r := recover(); r != "ro boom" {
				t.Fatalf("recover() = %v, want the user panic value", r)
			}
		}()
		_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
			_ = v.Get(tx)
			panic("ro boom")
		})
	}()
	if err := stm.AtomicallyRO(func(tx *stm.Tx) error {
		if v.Get(tx) != 3 {
			t.Error("v changed under an RO panic")
		}
		return nil
	}); err != nil {
		t.Fatalf("post-panic RO transaction failed: %v", err)
	}
}
