package stm

import (
	"sync"
	"sync/atomic"
)

// ClockStrategy selects how update commits advance the global version
// clock. TL2's clock is the one word every update transaction touches — the
// deliberate weak-DAP violation the paper trades for O(1)-step reads — so
// how it is advanced decides how commits scale with core count.
//
// All strategies preserve the invariant the engine's opacity argument
// rests on: a Var's write version wv is computed from a clock value loaded
// *after* the committer acquired all its write locks, and wv is strictly
// greater than that loaded value. The clock therefore first reaches wv
// only after the committer holds its locks, so any transaction whose read
// version rv satisfies rv ≥ wv began after the locks were taken and can
// observe the committer's Vars only as locked (abort) or fully published —
// never a pre-write value it would wrongly certify.
type ClockStrategy int32

const (
	// GV1 is the original TL2 rule: every update commit performs an
	// unconditional fetch-and-increment. Simple, but at high commit rates
	// every committer serializes on the one cache line.
	GV1 ClockStrategy = iota

	// GV4 is pass-on-failure: a committer CASes clock → clock+1 and, when
	// the CAS loses, adopts the winner's (current) clock value as its own
	// write version instead of retrying. Two commits may share a tick;
	// that is sound because both hold their write locks while the shared
	// value is current, so each is validated against the other's locks
	// (see the invariant above, and DESIGN.md for the full argument). The
	// losing committer performs no second RMW on the clock, so the clock
	// line stops being a retry hot spot.
	GV4

	// GV6 is the sampled variant: only one in gv6SamplePeriod commits
	// increments the clock (GV4-style); the rest use clock+1 *without*
	// publishing the increment. Commits become nearly clock-silent, at
	// the price of extra revalidations: a version ahead of the clock is
	// unreadable until the clock catches up, so readers bump the clock
	// forward themselves (helpClock) and rely on timestamp extension.
	// Commits under GV6 always validate their read set — with unpublished
	// increments, an unchanged clock no longer proves quiescence.
	GV6

	// GV7 is the batched ("block") variant: one fetch on a separate
	// allocator word (clockAlloc) claims a block of gv7BlockSize ticks
	// cached in the transaction descriptor, and commits stamp write
	// versions from the local block — the shared line is touched once
	// every K commits per descriptor instead of once per commit. The
	// published clock is never advanced by a commit at all; as under GV6,
	// stamped versions run ahead of it and readers pull it forward
	// (helpClock) and extend. Soundness hinges on one extra per-commit
	// check: a cached tick is used as wv only if it is still strictly
	// greater than the published clock *loaded after the write locks were
	// acquired* (see advanceClock) — otherwise the block is stale and a
	// fresh one is claimed with a base above both the allocator and the
	// published clock, so the clock invariant above holds tick for tick.
	// GV7 commits can never skip validation, and GV7 (like GV6) requires
	// timestamp extension for sequential progress. A drain path
	// (drainBlock) returns a block's unused ticks to the allocator when a
	// descriptor is recycled off the GV7 regime, so versions stay dense
	// enough for sampling-style analyses.
	GV7

	// TicToc is the per-access-timestamp mode: there is no global clock
	// at all. Each Var's lock word carries a (wts, rts) pair — the write
	// timestamp of its current version and the highest timestamp any
	// reader has certified it at — and a transaction maintains the
	// intersection of its reads' [wts, rts] validity intervals, advancing
	// a Var's rts by bounded CAS when the intersection would go empty.
	// Commit picks the serialization point by interval intersection (see
	// ttCommit in tictoc.go). Reads and read-only commits touch no shared
	// word beyond the Vars themselves (strong DAP on the read path:
	// ClockIncrements stays 0), at the price TicToc pays everywhere:
	// readers may write (rts advances), and a rising write floor costs an
	// O(|read set|) advance sweep — the step/DAP trade-off the paper's
	// lower bounds quantify. TicToc reinterprets the 63-bit lock-word
	// payload as wts|rts, so it must be selected before any commit and
	// never mixed with the versioned strategies on live data.
	TicToc
)

// gv6SamplePeriod is the mean number of commits per published clock
// increment under GV6.
const gv6SamplePeriod = 8

// gv7BlockSize is K, the number of ticks one allocator fetch claims under
// GV7. A variable (not const) so tests can exercise block exhaustion and
// drain with small blocks; set only while the engine is quiescent.
var gv7BlockSize uint64 = 64

// clockAlloc is GV7's allocation high-water mark: the highest tick any
// block has claimed. It is a separate word from the published clock so
// that claiming a block (one CAS here per K commits) does not disturb
// readers sampling the clock. Invariant: clockAlloc ≥ clock whenever a
// GV7 block is outstanding; blocks are half-open ownership of
// (base, base+K] with base ≥ max(clockAlloc, clock) at claim time.
var clockAlloc atomic.Uint64

// clockStrategy is the engine-wide knob; see SetClockStrategy.
var clockStrategy atomic.Int32

// knobMu serializes the two configuration setters so the cross-knob guard
// (GV6 requires extension) is atomic: without it, two concurrent setters
// could each pass its check and together activate the combination the
// panics exist to reject. The hot path never takes it — commits and reads
// load the individual atomics.
var knobMu sync.Mutex

// extensionEnabled gates timestamp extension (see Tx.extend). On by
// default; the knob exists so benchmarks can ablate extension against the
// abort-on-stale behaviour of plain TL2.
var extensionEnabled atomic.Bool

func init() {
	clockStrategy.Store(int32(GV4))
	extensionEnabled.Store(true)
}

// SetClockStrategy selects the global-clock advance rule for all
// subsequent commits. The default is GV4.
//
// Concurrency caveats. The knob is engine-wide, and the intended use is
// one call at program start (or between benchmark phases), before the
// engine is used concurrently. Switching with transactions in flight is
// safe — every rule maintains the clock invariant above, and the published
// increment below closes the one cross-strategy hole: GV1/GV4 skip
// validation when the clock proves their window quiescent, a proof that
// assumes every commit advances the clock, which in-flight GV6 commits do
// not; bumping the clock before the new strategy becomes visible forces
// any commit that could have raced the switch out of every later
// quiescence window (the commit's unpublished write version is at most
// old-clock+1, which the bump publishes) — but a mid-run switch makes any
// concurrent measurement (ReadStats deltas, abort ratios) span two
// regimes, so treat runtime switching as a correctness guarantee, not a
// supported operating mode.
//
// GV6 and GV7 require timestamp extension: under both, versions run ahead
// of the clock, so without extension even a solo transaction from a
// quiescent state can abort — sequential progress would be lost, turning a
// performance knob into a semantic one. SetClockStrategy(GV6/GV7)
// therefore panics if SetTimestampExtension(false) is in effect, and
// SetTimestampExtension(false) panics while GV6 or GV7 is selected.
//
// TicToc is different in kind, not just in rule: it reinterprets the
// 63-bit lock-word payload as a (wts, rts) pair instead of a version, so
// it must be selected before the engine commits anything and must not be
// toggled against Vars that have committed under a versioned strategy
// (their payloads would be read as nonsense intervals). The runtime-switch
// guarantee documented above covers GV1/GV4/GV6/GV7 only.
func SetClockStrategy(s ClockStrategy) {
	knobMu.Lock()
	defer knobMu.Unlock()
	switch s {
	case GV1, GV4, GV6, GV7:
		if (s == GV6 || s == GV7) && !extensionEnabled.Load() {
			panic("stm: " + gvName(s) + " requires timestamp extension (call SetTimestampExtension(true) first): " +
				"without it a solo transaction from quiescence can abort on a version ahead of the clock")
		}
		if ClockStrategy(clockStrategy.Load()) == GV7 && s != GV7 {
			// Leaving GV7: descriptors parked in the pool may still cache
			// partially used blocks whose ticks were never published.
			// Publishing the allocation high-water mark retires every
			// outstanding block at once — any cached tick is now ≤ clock, so
			// the per-commit staleness check discards it (and release()
			// drains it), and no later GV1/GV4 quiescence proof can be
			// confused by a straggler stamping from an old block.
			helpClock(clockAlloc.Load())
		}
		if ClockStrategy(clockStrategy.Load()) != s {
			clock.Add(1)
		}
		clockStrategy.Store(int32(s))
	case TicToc:
		clockStrategy.Store(int32(s))
	default:
		panic("stm: unknown ClockStrategy")
	}
}

// CurrentClockStrategy returns the strategy in effect.
func CurrentClockStrategy() ClockStrategy { return ClockStrategy(clockStrategy.Load()) }

// SetTimestampExtension toggles read-timestamp extension (default on).
// With extension off, a read that observes a version newer than the
// transaction's read version aborts even when no read has actually been
// invalidated — plain TL2's stale-clock abort class.
//
// Like SetClockStrategy, the knob is engine-wide and meant to be set
// before concurrent use (its raison d'être is the benchmark ablation
// against plain TL2). Disabling extension under GV6 would forfeit
// sequential progress (see SetClockStrategy), so that combination panics.
func SetTimestampExtension(on bool) {
	knobMu.Lock()
	defer knobMu.Unlock()
	if s := ClockStrategy(clockStrategy.Load()); !on && (s == GV6 || s == GV7) {
		panic("stm: cannot disable timestamp extension while the " + gvName(s) + " clock strategy is selected: " +
			gvName(s) + " relies on extension for sequential progress (select GV1/GV4 first)")
	}
	extensionEnabled.Store(on)
}

// TimestampExtensionEnabled reports whether extension is in effect.
func TimestampExtensionEnabled() bool { return extensionEnabled.Load() }

// gvName is the uppercase constant name used in panic messages (String
// returns the lowercase benchmark-label form).
func gvName(s ClockStrategy) string {
	switch s {
	case GV6:
		return "GV6"
	case GV7:
		return "GV7"
	}
	return "GV" + s.String()[2:]
}

// String implements fmt.Stringer for benchmark labels.
func (s ClockStrategy) String() string {
	switch s {
	case GV1:
		return "gv1"
	case GV4:
		return "gv4"
	case GV6:
		return "gv6"
	case GV7:
		return "gv7"
	case TicToc:
		return "tictoc"
	}
	return "unknown"
}

// advanceClock produces the commit's write version under the current
// strategy. quiescent reports that the clock proves no foreign commit
// overlapped the window between the transaction's read-version sample and
// its lock acquisition, so read-set validation may be skipped: under GV1
// that is wv == rv+1; under GV4, winning the CAS from exactly rv. Under
// GV6 and GV7 the proof is unavailable (commits may leave the clock
// untouched), so quiescent is always false.
//
// advanceClock runs while the commit holds every write lock — GV7's
// soundness check (cached tick still above the published clock) depends
// on that ordering.
func (tx *Tx) advanceClock() (wv uint64, quiescent bool) {
	switch ClockStrategy(clockStrategy.Load()) {
	case GV7:
		// The staleness check and the claim both compare against a clock
		// value loaded after the locks were taken, so wv > that load and the
		// clock (monotone, advanced only toward stamped versions) first
		// reaches wv after this commit held its locks — the clock invariant.
		c := clock.Load()
		if tx.blockNext <= tx.blockEnd && tx.blockNext > c {
			wv = tx.blockNext
			tx.blockNext++
			return wv, false
		}
		// Block empty or stale (the published clock caught up with ticks we
		// never stamped — another block's versions were helped past ours).
		// Stale ticks are abandoned, not drained: the allocator has moved
		// past them, so the CAS drain cannot apply and the versions simply
		// go unused (the version space is 63 bits; sparseness is harmless).
		tx.claimBlock(c)
		wv = tx.blockNext
		tx.blockNext++
		return wv, false
	case GV4:
		old := clock.Load()
		if clock.CompareAndSwap(old, old+1) {
			tx.stat().clockIncrements.Add(1)
			return old + 1, old == tx.rv
		}
		// Pass on failure: adopt the winner's value. The re-load is ≥ old+1
		// and still > the post-lock load, preserving the clock invariant.
		tx.stat().clockAdoptions.Add(1)
		return clock.Load(), false
	case GV6:
		tx.rng = splitmix64(tx.rng)
		if tx.rng%gv6SamplePeriod == 0 {
			old := clock.Load()
			if clock.CompareAndSwap(old, old+1) {
				tx.stat().clockIncrements.Add(1)
				return old + 1, false
			}
			tx.stat().clockAdoptions.Add(1)
			return clock.Load(), false
		}
		// GV5-style: use clock+1 without publishing the increment. The
		// version runs ahead of the clock until a reader helps it forward.
		return clock.Load() + 1, false
	default: // GV1
		wv = clock.Add(1)
		tx.stat().clockIncrements.Add(1)
		return wv, wv == tx.rv+1
	}
}

// claimBlock claims a fresh GV7 block of gv7BlockSize ticks for the
// descriptor. c is the published clock loaded after the commit's locks
// were acquired; the block base is taken at or above both c and the
// allocation high-water mark, so every tick in the block is strictly
// greater than the post-lock clock load and no two blocks overlap.
func (tx *Tx) claimBlock(c uint64) {
	k := gv7BlockSize
	for {
		hi := clockAlloc.Load()
		base := hi
		if c > base {
			base = c
		}
		if clockAlloc.CompareAndSwap(hi, base+k) {
			tx.blockNext = base + 1
			tx.blockEnd = base + k
			tx.stat().clockBlockClaims.Add(1)
			return
		}
	}
}

// drainBlock returns the descriptor's unused GV7 ticks to the allocator,
// so a recycled descriptor does not strand up to K-1 versions of clock
// space. The return only applies when this block is still the top of the
// allocator (one CAS: blockEnd → blockNext-1); if later blocks have been
// claimed above it, the ticks are abandoned instead — version-space
// sparseness is harmless, overlap would not be. Either way the block is
// emptied. Called when a descriptor leaves the GV7 regime (see release);
// never on the per-commit path, which would re-serialize on the allocator
// word and forfeit the batching.
func (tx *Tx) drainBlock() {
	// blockEnd == 0 is the no-block state (a claimed block's end is ≥ 1);
	// the guard also keeps blockNext-1 from underflowing on a fresh Tx.
	if tx.blockEnd != 0 && tx.blockNext <= tx.blockEnd {
		clockAlloc.CompareAndSwap(tx.blockEnd, tx.blockNext-1)
	}
	tx.blockNext, tx.blockEnd = 1, 0
}

// helpClock advances the clock to at least ver. Under GV6 a committed
// version may run ahead of the clock (unpublished increments); a reader
// that encounters one bumps the clock forward so its extension — and every
// later transaction's read version — can cover the version. Under GV1/GV4
// versions never exceed the clock and the CAS never fires.
func helpClock(ver uint64) {
	for {
		c := clock.Load()
		if c >= ver {
			return
		}
		if clock.CompareAndSwap(c, ver) {
			return
		}
	}
}

// splitmix64 is the cheap per-descriptor PRNG used for GV6 sampling.
func splitmix64(s uint64) uint64 {
	s += 0x9e3779b97f4a7c15
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
