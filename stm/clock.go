package stm

import (
	"sync"
	"sync/atomic"
)

// ClockStrategy selects how update commits advance the global version
// clock. TL2's clock is the one word every update transaction touches — the
// deliberate weak-DAP violation the paper trades for O(1)-step reads — so
// how it is advanced decides how commits scale with core count.
//
// All strategies preserve the invariant the engine's opacity argument
// rests on: a Var's write version wv is computed from a clock value loaded
// *after* the committer acquired all its write locks, and wv is strictly
// greater than that loaded value. The clock therefore first reaches wv
// only after the committer holds its locks, so any transaction whose read
// version rv satisfies rv ≥ wv began after the locks were taken and can
// observe the committer's Vars only as locked (abort) or fully published —
// never a pre-write value it would wrongly certify.
type ClockStrategy int32

const (
	// GV1 is the original TL2 rule: every update commit performs an
	// unconditional fetch-and-increment. Simple, but at high commit rates
	// every committer serializes on the one cache line.
	GV1 ClockStrategy = iota

	// GV4 is pass-on-failure: a committer CASes clock → clock+1 and, when
	// the CAS loses, adopts the winner's (current) clock value as its own
	// write version instead of retrying. Two commits may share a tick;
	// that is sound because both hold their write locks while the shared
	// value is current, so each is validated against the other's locks
	// (see the invariant above, and DESIGN.md for the full argument). The
	// losing committer performs no second RMW on the clock, so the clock
	// line stops being a retry hot spot.
	GV4

	// GV6 is the sampled variant: only one in gv6SamplePeriod commits
	// increments the clock (GV4-style); the rest use clock+1 *without*
	// publishing the increment. Commits become nearly clock-silent, at
	// the price of extra revalidations: a version ahead of the clock is
	// unreadable until the clock catches up, so readers bump the clock
	// forward themselves (helpClock) and rely on timestamp extension.
	// Commits under GV6 always validate their read set — with unpublished
	// increments, an unchanged clock no longer proves quiescence.
	GV6
)

// gv6SamplePeriod is the mean number of commits per published clock
// increment under GV6.
const gv6SamplePeriod = 8

// clockStrategy is the engine-wide knob; see SetClockStrategy.
var clockStrategy atomic.Int32

// knobMu serializes the two configuration setters so the cross-knob guard
// (GV6 requires extension) is atomic: without it, two concurrent setters
// could each pass its check and together activate the combination the
// panics exist to reject. The hot path never takes it — commits and reads
// load the individual atomics.
var knobMu sync.Mutex

// extensionEnabled gates timestamp extension (see Tx.extend). On by
// default; the knob exists so benchmarks can ablate extension against the
// abort-on-stale behaviour of plain TL2.
var extensionEnabled atomic.Bool

func init() {
	clockStrategy.Store(int32(GV4))
	extensionEnabled.Store(true)
}

// SetClockStrategy selects the global-clock advance rule for all
// subsequent commits. The default is GV4.
//
// Concurrency caveats. The knob is engine-wide, and the intended use is
// one call at program start (or between benchmark phases), before the
// engine is used concurrently. Switching with transactions in flight is
// safe — every rule maintains the clock invariant above, and the published
// increment below closes the one cross-strategy hole: GV1/GV4 skip
// validation when the clock proves their window quiescent, a proof that
// assumes every commit advances the clock, which in-flight GV6 commits do
// not; bumping the clock before the new strategy becomes visible forces
// any commit that could have raced the switch out of every later
// quiescence window (the commit's unpublished write version is at most
// old-clock+1, which the bump publishes) — but a mid-run switch makes any
// concurrent measurement (ReadStats deltas, abort ratios) span two
// regimes, so treat runtime switching as a correctness guarantee, not a
// supported operating mode.
//
// GV6 requires timestamp extension: under GV6, versions run ahead of the
// clock, so without extension even a solo transaction from a quiescent
// state can abort — sequential progress would be lost, turning a
// performance knob into a semantic one. SetClockStrategy(GV6) therefore
// panics if SetTimestampExtension(false) is in effect, and
// SetTimestampExtension(false) panics while GV6 is selected.
func SetClockStrategy(s ClockStrategy) {
	knobMu.Lock()
	defer knobMu.Unlock()
	switch s {
	case GV1, GV4, GV6:
		if s == GV6 && !extensionEnabled.Load() {
			panic("stm: GV6 requires timestamp extension (call SetTimestampExtension(true) first): " +
				"without it a solo transaction from quiescence can abort on a version ahead of the clock")
		}
		if ClockStrategy(clockStrategy.Load()) != s {
			clock.Add(1)
		}
		clockStrategy.Store(int32(s))
	default:
		panic("stm: unknown ClockStrategy")
	}
}

// CurrentClockStrategy returns the strategy in effect.
func CurrentClockStrategy() ClockStrategy { return ClockStrategy(clockStrategy.Load()) }

// SetTimestampExtension toggles read-timestamp extension (default on).
// With extension off, a read that observes a version newer than the
// transaction's read version aborts even when no read has actually been
// invalidated — plain TL2's stale-clock abort class.
//
// Like SetClockStrategy, the knob is engine-wide and meant to be set
// before concurrent use (its raison d'être is the benchmark ablation
// against plain TL2). Disabling extension under GV6 would forfeit
// sequential progress (see SetClockStrategy), so that combination panics.
func SetTimestampExtension(on bool) {
	knobMu.Lock()
	defer knobMu.Unlock()
	if !on && ClockStrategy(clockStrategy.Load()) == GV6 {
		panic("stm: cannot disable timestamp extension while the GV6 clock strategy is selected: " +
			"GV6 relies on extension for sequential progress (select GV1/GV4 first)")
	}
	extensionEnabled.Store(on)
}

// TimestampExtensionEnabled reports whether extension is in effect.
func TimestampExtensionEnabled() bool { return extensionEnabled.Load() }

// String implements fmt.Stringer for benchmark labels.
func (s ClockStrategy) String() string {
	switch s {
	case GV1:
		return "gv1"
	case GV4:
		return "gv4"
	case GV6:
		return "gv6"
	}
	return "unknown"
}

// advanceClock produces the commit's write version under the current
// strategy. quiescent reports that the clock proves no foreign commit
// overlapped the window between the transaction's read-version sample and
// its lock acquisition, so read-set validation may be skipped: under GV1
// that is wv == rv+1; under GV4, winning the CAS from exactly rv. Under
// GV6 the proof is unavailable (commits may leave the clock untouched),
// so quiescent is always false.
func (tx *Tx) advanceClock() (wv uint64, quiescent bool) {
	switch ClockStrategy(clockStrategy.Load()) {
	case GV4:
		old := clock.Load()
		if clock.CompareAndSwap(old, old+1) {
			tx.stat().clockIncrements.Add(1)
			return old + 1, old == tx.rv
		}
		// Pass on failure: adopt the winner's value. The re-load is ≥ old+1
		// and still > the post-lock load, preserving the clock invariant.
		tx.stat().clockAdoptions.Add(1)
		return clock.Load(), false
	case GV6:
		tx.rng = splitmix64(tx.rng)
		if tx.rng%gv6SamplePeriod == 0 {
			old := clock.Load()
			if clock.CompareAndSwap(old, old+1) {
				tx.stat().clockIncrements.Add(1)
				return old + 1, false
			}
			tx.stat().clockAdoptions.Add(1)
			return clock.Load(), false
		}
		// GV5-style: use clock+1 without publishing the increment. The
		// version runs ahead of the clock until a reader helps it forward.
		return clock.Load() + 1, false
	default: // GV1
		wv = clock.Add(1)
		tx.stat().clockIncrements.Add(1)
		return wv, wv == tx.rv+1
	}
}

// helpClock advances the clock to at least ver. Under GV6 a committed
// version may run ahead of the clock (unpublished increments); a reader
// that encounters one bumps the clock forward so its extension — and every
// later transaction's read version — can cover the version. Under GV1/GV4
// versions never exceed the clock and the CAS never fires.
func helpClock(ver uint64) {
	for {
		c := clock.Load()
		if c >= ver {
			return
		}
		if clock.CompareAndSwap(c, ver) {
			return
		}
	}
}

// splitmix64 is the cheap per-descriptor PRNG used for GV6 sampling.
func splitmix64(s uint64) uint64 {
	s += 0x9e3779b97f4a7c15
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
