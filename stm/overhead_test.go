package stm_test

// The telemetry A/B overhead smoke: the observability layer's standing
// constraint is that hooks-off costs one predicate per site and
// sampled-on stays allocation-free, so installing a contention sketch
// and a sparse latency-sampling period must not move the uncontended
// transaction round-trip (BenchmarkVarUncontended's shape) by more than
// noise. Opt-in via TM_OVERHEAD_SMOKE because it is a microbenchmark
// comparison — meaningless under a loaded CI neighbor — and run by
// `make overhead-smoke`.

import (
	"os"
	"testing"

	"repro/internal/telemetry"
	"repro/stm"
)

func TestTelemetryOffOverhead(t *testing.T) {
	if os.Getenv("TM_OVERHEAD_SMOKE") == "" {
		t.Skip("set TM_OVERHEAD_SMOKE=1 (make overhead-smoke) to run the telemetry A/B microbenchmark")
	}
	if testing.Short() {
		t.Skip("microbenchmark; skipped in -short")
	}
	roundTrip := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			v := stm.NewVar(0)
			for i := 0; i < b.N; i++ {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				})
			}
		})
		return float64(r.NsPerOp())
	}
	// Sampled-on side: a sketch installed (the abort-site hook becomes an
	// atomic load + branch, though an uncontended run never aborts) and a
	// sparse latency-sampling period (one atomic load, one local
	// increment, one branch per call; time.Now only on sampled calls).
	enable := func() {
		stm.SetContentionProfiler(telemetry.NewSketch(telemetry.DefaultSketchK, 1024))
		stm.SetLatencySampling(1 << 20)
	}
	disable := func() {
		stm.SetContentionProfiler(nil)
		stm.SetLatencySampling(0)
	}
	defer disable()

	// Interleaved min-of-N on each side: on a shared host interference
	// inflates individual runs but almost never deflates them, so the
	// minimum is each side's least-interference sample (cmd/benchdiff's
	// min-vs-min argument), and interleaving keeps slow drift (thermal,
	// neighbors arriving) from loading one side only.
	off, on := 0.0, 0.0
	for i := 0; i < 6; i++ {
		disable()
		if ns := roundTrip(); off == 0 || ns < off {
			off = ns
		}
		enable()
		if ns := roundTrip(); on == 0 || ns < on {
			on = ns
		}
	}

	delta := (on - off) / off
	t.Logf("uncontended round-trip: off=%.1f ns/op sampled-on=%.1f ns/op delta=%+.2f%%", off, on, 100*delta)
	if delta > 0.03 {
		t.Errorf("sampled-on telemetry costs %.2f%% on the uncontended path, budget is 3%%", 100*delta)
	}
}
