// Package stm is a native (sync/atomic-based) software transactional memory
// for Go programs: the adoptable counterpart of the instrumented algorithms
// in internal/tm. It implements the TL2 protocol — a global version clock,
// per-variable versioned locks, invisible reads, lazy write buffering and
// commit-time locking — the same algorithm measured as the "tl2" series in
// the experiments, so its costs are exactly the ones the paper's Theorem 3
// trades against: O(1) steps per read, at the price of weak DAP (a global
// clock word shared by all update transactions).
//
// # Versioned lock word
//
// Each Var carries a single versioned write-lock word (one atomic.Uint64,
// the encoding shared with internal/tm/lockword): bit 63 is the lock flag,
// bits 0..62 hold the version of the last committed write. A transactional
// read is one load of the word (must be unlocked and no newer than the
// transaction's read version), one load of the value snapshot, and one
// re-load of the word to certify the pair — no separate lock flag, no
// version chased through the value pointer. Commit CASes the lock bit into
// the word (preserving the version), publishes the new snapshots, and
// releases each word with a single store of the new version with the lock
// bit clear, so lock release and version publication are one atomic write.
//
// The hot path is allocation-free in steady state: transaction descriptors
// are pooled and their read/write sets are recycled across attempts and
// calls, so a read-only transaction performs zero heap allocations.
//
// # Read-only fast path
//
// AtomicallyRO runs a transaction that is read-only by construction on
// TL2's zero-validation mode: reads are certified against the read
// timestamp but never logged, and commit is a no-op — no read set, no
// locking, no validation, so the transaction costs exactly its reads.
// Atomically also promotes a descriptor to the same fast path when a
// retried attempt aborted without buffering a write (and demotes it again
// if the guess was wrong). The trade is a weaker extension rule: with no
// read set to revalidate, a stale read aborts the attempt unless it is the
// first read (see readRO and DESIGN.md's opacity argument).
//
// # Clock strategies and timestamp extension
//
// How commits advance the global clock is selectable (SetClockStrategy):
// GV1 is TL2's unconditional fetch-and-increment, GV4 (the default) lets a
// losing increment adopt the winner's tick instead of retrying, and GV6
// samples increments so most commits leave the clock untouched. A read
// that observes a version newer than the transaction's read timestamp does
// not abort outright: it revalidates the read set and extends the
// timestamp to the current clock (timestamp extension), so only genuinely
// invalidated reads — real conflicts — abort. See DESIGN.md for the
// soundness arguments and ReadStats for the commit/abort/extension
// counters. Both knobs are engine-wide and meant to be set once, before
// concurrent use; GV6 requires extension, and the engine panics rather
// than accept the combination that would lose sequential progress (see
// SetClockStrategy).
//
// # Containers
//
// Transactional data structures compose with any other transactional
// state: Map (hash map, striped size counter), OrderedMap (skiplist with
// ordered Range scans — the long-read-set workload), and Queue (bounded
// blocking FIFO via Retry). Each also exposes non-transactional Snapshot*
// fast paths that never abort or conflict with writers.
//
// Usage:
//
//	acct := stm.NewVar(100)
//	err := stm.Atomically(func(tx *stm.Tx) error {
//	    v := acct.Get(tx)
//	    acct.Set(tx, v-10)
//	    return nil
//	})
//
// Transactions retry automatically on conflict. Get and Set abort the
// enclosing transaction by panicking with an internal signal that
// Atomically recovers; user code must not recover() across t-operations.
// Values stored in a Var must be treated as immutable once written.
package stm

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/syncpoint"
	"repro/internal/tm/lockword"
	"repro/stm/budget"
)

// clock is the global version clock shared by all Vars (TL2's GV).
var clock atomic.Uint64

// varIDs allocates the total order used to acquire commit locks
// deadlock-free.
var varIDs atomic.Uint64

// box is an immutable value snapshot of a Var. The version lives in the
// Var's lock word, not here, so a read needs no pointer chase to find it.
type box struct {
	val any
}

// varBase is the type-erased interface Tx uses to manage heterogeneous
// Vars in one transaction. casWord exists for TicToc's rts advances — the
// one place a reader mutates a lock word it does not hold.
type varBase interface {
	id() uint64
	lockWord() uint64
	casWord(old, new uint64) bool
	tryLock() (prev uint64, ok bool)
	unlock(ver uint64)
	loadBox() *box
	storeBox(*box)
}

// Var is a transactional variable holding a value of type T.
// The zero Var is not ready for use; create Vars with NewVar.
type Var[T any] struct {
	vid   uint64
	lw    atomic.Uint64 // versioned lock word (see package comment)
	state atomic.Pointer[box]
}

// NewVar creates a transactional variable with the given initial value.
func NewVar[T any](initial T) *Var[T] {
	v := &Var[T]{vid: varIDs.Add(1)}
	v.state.Store(&box{val: initial})
	return v
}

func (v *Var[T]) id() uint64       { return v.vid }
func (v *Var[T]) lockWord() uint64 { return v.lw.Load() }

// casWord CASes the raw lock word (TicToc rts advance).
func (v *Var[T]) casWord(old, new uint64) bool { return v.lw.CompareAndSwap(old, new) }

// tryLock sets the lock bit, preserving the version, and returns the
// pre-lock version so a failed commit can restore the word exactly.
func (v *Var[T]) tryLock() (uint64, bool) {
	w := v.lw.Load()
	if lockword.Locked(w) {
		return 0, false
	}
	if !v.lw.CompareAndSwap(w, lockword.Lock(w)) {
		return 0, false
	}
	return lockword.Version(w), true
}

// unlock releases the word, publishing ver (the old version after a failed
// commit, the new write version after a successful one) in the same store.
func (v *Var[T]) unlock(ver uint64) { v.lw.Store(lockword.Unlocked(ver)) }

func (v *Var[T]) loadBox() *box {
	b := v.state.Load()
	if b == nil {
		panic("stm: Var used before NewVar (the zero Var is not initialized)")
	}
	return b
}
func (v *Var[T]) storeBox(b *box) { v.state.Store(b) }

// Get reads the variable inside a transaction. On conflict it aborts the
// transaction (Atomically retries automatically).
func (v *Var[T]) Get(tx *Tx) T {
	return tx.read(v).(T)
}

// Set buffers a write to the variable inside a transaction; it becomes
// visible atomically at commit.
func (v *Var[T]) Set(tx *Tx, val T) {
	tx.write(v, val)
}

// Load reads the variable outside any transaction: a consistent single-
// variable snapshot (equivalent to a one-read transaction).
func (v *Var[T]) Load() T {
	return v.loadBox().val.(T)
}

// retrySignal aborts the current attempt; Atomically catches it.
type retrySignal struct{}

// waitSignal is panicked by Retry: the transaction re-runs only after one
// of the variables it read has changed.
type waitSignal struct{}

// writeSetMapThreshold is the write-set size beyond which Tx switches from
// a sorted-insert slice (cache-friendly, allocation-free once warm) to an
// auxiliary map index (O(1) read-own-write lookup for large transactions).
const writeSetMapThreshold = 24

// readDedupWindow bounds the backwards scan that suppresses duplicate
// read-set entries: re-reads of a recently read Var (the common loop shape)
// are skipped without paying O(read set) per Get.
const readDedupWindow = 8

// maxExtendAttempts bounds how many times one Get will extend its read
// timestamp before giving up and aborting: under a sustained commit storm
// on the same Var, re-running the transaction (with backoff) beats
// revalidating the read set forever.
const maxExtendAttempts = 3

// Tx is a transaction descriptor. It is valid only inside the function
// passed to Atomically and must not escape or be shared between goroutines.
// Descriptors are pooled: Atomically recycles the read and write sets
// across attempts and across calls, so steady-state transactions do not
// allocate.
type Tx struct {
	rv     uint64
	reads  []readEntry
	writes []writeEntry
	// wmap indexes writes by Var once the write set outgrows
	// writeSetMapThreshold; below that, writes is kept sorted by Var id and
	// searched by binary search. Nil while the slice is authoritative.
	wmap map[varBase]int
	// shard picks the descriptor's stats stripe; rng drives GV6 commit
	// sampling. Both are assigned once per descriptor and survive reset,
	// so pooled reuse keeps stripes and sampling phases spread out.
	shard uint32
	rng   uint64
	// ro marks the zero-validation read-only fast path (see AtomicallyRO):
	// reads are certified against rv but never logged, writes are either a
	// usage error (explicit AtomicallyRO) or demote the descriptor back to
	// the full pipeline (promoted == true). roReads counts the reads the
	// current RO attempt has certified — timestamp extension is sound on
	// the RO path only while it is zero, since there is no read set to
	// revalidate. demoted records that a promotion guess was wrong, so the
	// retry loop does not guess again within the same call.
	ro       bool
	promoted bool
	demoted  bool
	roReads  int
	// metered/budgetLeft/costs are the call's work-budget grant, sampled
	// once per Atomically call from the engine policy (see SetBudgetPolicy);
	// budgetExceeded records exhaustion discovered where the engine could
	// not panic (commit, retry charge). The grant survives reset: retries
	// spend the same budget.
	metered        bool
	budgetExceeded bool
	budgetLeft     uint64
	costs          budget.Costs
	// blockNext/blockEnd are the descriptor's cached GV7 tick block:
	// blockNext is the next unstamped tick, blockEnd the block's last tick
	// (inclusive); blockEnd == 0 means no block. The block survives reset
	// and pool recycling — that persistence is the amortization — and is
	// drained back to the allocator when the descriptor is released while
	// GV7 is no longer the strategy (see drainBlock).
	blockNext uint64
	blockEnd  uint64
	// tt caches "the TicToc pipeline is selected" for the duration of one
	// Atomically call; ttHi is the upper end of the TicToc validity-
	// interval intersection (rv doubles as the lower end / floor), and
	// ttFloor seeds a retry's floor after an RO-path interval abort. See
	// tictoc.go.
	tt      bool
	ttHi    uint64
	ttFloor uint64
	// latSeq drives commit-latency sampling (see SetLatencySampling):
	// a descriptor-local sequence compared against latEvery's mask, so sampling
	// adds no shared word. It survives reset and pool recycling, which
	// spreads sampling phase across pooled descriptors.
	latSeq uint32
	// trec is the test-only trace record of the current attempt (nil
	// outside tracing tests; see trace.go).
	trec *traceTxn
	// sync is the test-only scheduling hook of the current call (nil
	// outside harness tests; see syncpoint.go).
	sync func(syncpoint.Point)
}

type readEntry struct {
	v   varBase
	ver uint64
}

type writeEntry struct {
	v    varBase
	val  any
	prev uint64 // pre-lock version, recorded while the commit holds the lock
}

var txPool = sync.Pool{New: func() any {
	s := statSeq.Add(1)
	return &Tx{shard: uint32(s), rng: splitmix64(s)}
}}

// reset clears the read and write sets in place, keeping their backing
// arrays, and zeroes the dropped entries so a pooled Tx pins no user data.
func (tx *Tx) reset() {
	clear(tx.reads)
	tx.reads = tx.reads[:0]
	clear(tx.writes)
	tx.writes = tx.writes[:0]
	tx.wmap = nil // the slice is authoritative again below the threshold
	tx.roReads = 0
	tx.trec = nil
}

// release returns the descriptor to the pool. Oversized backing arrays are
// dropped so one large transaction does not pin memory forever.
func (tx *Tx) release() {
	tx.reset()
	if tx.blockEnd != 0 && ClockStrategy(clockStrategy.Load()) != GV7 {
		// The engine moved off GV7 while this descriptor cached a block:
		// return the unused ticks rather than strand them in the pool.
		tx.drainBlock()
	}
	if cap(tx.reads) > 4096 {
		tx.reads = nil
	}
	if cap(tx.writes) > 4096 {
		tx.writes = nil
	}
	txPool.Put(tx)
}

func (tx *Tx) abort() {
	panic(retrySignal{})
}

// searchWrite binary-searches the sorted write set for v, returning the
// insertion position and whether v is present.
func (tx *Tx) searchWrite(v varBase) (int, bool) {
	vid := v.id()
	lo, hi := 0, len(tx.writes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tx.writes[mid].v.id() < vid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(tx.writes) && tx.writes[lo].v == v
}

// findWrite locates v in the write set (read-own-write lookup).
func (tx *Tx) findWrite(v varBase) (int, bool) {
	if len(tx.writes) == 0 {
		return 0, false
	}
	if tx.wmap != nil {
		i, ok := tx.wmap[v]
		return i, ok
	}
	return tx.searchWrite(v)
}

func (tx *Tx) read(v varBase) any {
	if tx.ro {
		if tx.tt {
			return tx.ttReadRO(v)
		}
		return tx.readRO(v)
	}
	if tx.tt {
		return tx.ttRead(v)
	}
	if tx.metered {
		tx.charge(tx.costs.Step)
	}
	if i, ok := tx.findWrite(v); ok {
		if tx.trec != nil {
			tx.traceRead(v, tx.writes[i].val)
		}
		return tx.writes[i].val
	}
	for attempt := 0; ; attempt++ {
		w := v.lockWord()
		if !lockword.Locked(w) && lockword.Version(w) <= tx.rv {
			b := v.loadBox()
			if v.lockWord() != w {
				// A commit raced between the word load and the value load;
				// re-read (the new word is handled like any other state).
				if attempt >= maxExtendAttempts {
					tx.abortConflict(abortReadCertify, v)
				}
				continue
			}
			if tx.trec != nil {
				tx.traceRead(v, b.val)
			}
			tx.syncAt(syncpoint.PostReadCertify)
			// Skip duplicate read-set entries for recently read Vars.
			// Soundness: a re-read of an already-recorded Var either sees
			// the recorded version (≤ rv by the check above, and extension
			// never lowers rv) or a newer one, which extension admits only
			// after revalidating the recorded entry — so the recorded entry
			// stays accurate.
			for i, n := len(tx.reads)-1, len(tx.reads)-readDedupWindow; i >= 0 && i >= n; i-- {
				if tx.reads[i].v == v {
					return b.val
				}
			}
			if tx.metered {
				tx.charge(tx.costs.Read)
			}
			tx.reads = append(tx.reads, readEntry{v: v, ver: lockword.Version(w)})
			return b.val
		}
		if lockword.Locked(w) {
			tx.abortConflict(abortLockBusy, v) // mid-commit elsewhere; extension cannot see past a lock
		}
		if attempt >= maxExtendAttempts {
			tx.abortConflict(abortReadCertify, v)
		}
		// The Var committed past our read version — the stale-clock case
		// that plain TL2 aborts on. If no read has actually been
		// invalidated, extending the read timestamp is sufficient: help the
		// clock cover the version first (GV6 lets versions run ahead of the
		// clock), then revalidate and advance rv.
		helpClock(lockword.Version(w))
		if !tx.extend() {
			tx.abortConflict(abortExtension, v)
		}
	}
}

// readRO is the zero-validation read of the read-only fast path: one load
// of the lock word (must be unlocked, version ≤ rv), one load of the value
// snapshot, one re-load of the word to certify the pair — and nothing else.
// No read-set entry is recorded, so there is no duplicate-suppression scan,
// no append, and nothing for commit to validate. The price is a weaker
// extension rule: with no read set to revalidate, extending rv is sound
// only while the attempt has certified no read yet (it is then merely a
// re-begin at the current clock); after the first certified read a stale
// version aborts the attempt, and the retry — whose fresh rv covers the
// version thanks to helpClock below — replays it.
func (tx *Tx) readRO(v varBase) any {
	if tx.metered {
		tx.charge(tx.costs.Step + tx.costs.Read)
	}
	for attempt := 0; ; attempt++ {
		w := v.lockWord()
		if !lockword.Locked(w) && lockword.Version(w) <= tx.rv {
			b := v.loadBox()
			if v.lockWord() != w {
				if attempt >= maxExtendAttempts {
					tx.abortConflict(abortReadCertify, v)
				}
				continue
			}
			tx.roReads++
			if tx.trec != nil {
				tx.traceRead(v, b.val)
			}
			tx.syncAt(syncpoint.PostReadCertify)
			return b.val
		}
		if lockword.Locked(w) {
			tx.abortConflict(abortLockBusy, v) // mid-commit elsewhere; the RO path never waits it out
		}
		if attempt >= maxExtendAttempts {
			tx.abortConflict(abortReadCertify, v)
		}
		// Stale read version. Help the clock cover it first (under GV6
		// versions run ahead of the clock), so that even if this attempt
		// aborts, the retry's fresh rv can cover the version — the RO
		// path's sequential-progress obligation under GV6.
		helpClock(lockword.Version(w))
		if tx.roReads > 0 || !extensionEnabled.Load() {
			tx.abortConflict(abortReadCertify, v)
		}
		tx.rv = clock.Load()
		tx.stat().extensions.Add(1)
	}
}

// extend attempts a read-timestamp extension: sample the clock, then
// revalidate every read entry at its recorded version (unlocked, version
// unchanged). On success the entire read set is known consistent at the
// sampled instant, so rv advances to it — the transaction behaves exactly
// as if it had started then and re-executed every read. This converts the
// stale-clock abort class (dominant under high commit rates) into an
// O(|read set|) revalidation; a failure means some read was genuinely
// overwritten, which no protocol could survive.
func (tx *Tx) extend() bool {
	if !extensionEnabled.Load() {
		return false
	}
	// The revalidation scan is engine work on the transaction's behalf:
	// one step per read entry. extend runs lock-free, so a hard charge is
	// safe, and a transaction stuck extending forever runs dry.
	tx.charge(tx.costs.Step * uint64(len(tx.reads)))
	newRv := clock.Load()
	for i := range tx.reads {
		r := &tx.reads[i]
		w := r.v.lockWord()
		if lockword.Locked(w) || lockword.Version(w) != r.ver {
			tx.stat().extensionFailures.Add(1)
			return false
		}
	}
	tx.rv = newRv
	tx.stat().extensions.Add(1)
	return true
}

func (tx *Tx) write(v varBase, val any) {
	if tx.ro {
		if !tx.promoted {
			panic("stm: Set inside a read-only transaction (AtomicallyRO cannot write)")
		}
		// The promotion guess was wrong: this descriptor does write. Demote
		// back to the full pipeline for the rest of this call. Reads
		// certified on the RO path were never logged, so if any happened
		// the attempt cannot be validated at commit and must restart; with
		// none, demotion is free and the attempt continues in place.
		tx.ro, tx.promoted, tx.demoted = false, false, true
		if tx.roReads > 0 {
			// Certified-but-unlogged RO reads cannot be validated on the full
			// pipeline; the restart is a read-certification casualty.
			tx.abortConflict(abortReadCertify, v)
		}
	}
	if tx.metered {
		tx.charge(tx.costs.Step)
	}
	if tx.trec != nil {
		tx.traceWrite(v, val)
	}
	if tx.wmap != nil {
		if i, ok := tx.wmap[v]; ok {
			tx.writes[i].val = val
			return
		}
		if tx.metered {
			tx.charge(tx.costs.Write)
		}
		tx.wmap[v] = len(tx.writes)
		tx.writes = append(tx.writes, writeEntry{v: v, val: val})
		return
	}
	i, found := tx.searchWrite(v)
	if found {
		tx.writes[i].val = val
		return
	}
	if tx.metered {
		tx.charge(tx.costs.Write)
	}
	if len(tx.writes) >= writeSetMapThreshold {
		// Promote: index the existing entries, then append unsorted (the
		// commit re-establishes the lock order with one sort).
		tx.wmap = make(map[varBase]int, 2*writeSetMapThreshold)
		for j := range tx.writes {
			tx.wmap[tx.writes[j].v] = j
		}
		tx.wmap[v] = len(tx.writes)
		tx.writes = append(tx.writes, writeEntry{v: v, val: val})
		return
	}
	// Sorted insert keeps the slice in Var-id order, so commit locks in the
	// deadlock-free total order with no per-commit sort at all.
	tx.writes = append(tx.writes, writeEntry{})
	copy(tx.writes[i+1:], tx.writes[i:])
	tx.writes[i] = writeEntry{v: v, val: val}
}

// snapshotWrites captures the write set (values included) so OrElse can
// roll a blocked branch back, including overwrites of pre-branch writes.
func (tx *Tx) snapshotWrites() ([]writeEntry, map[varBase]int) {
	snap := append([]writeEntry(nil), tx.writes...)
	var msnap map[varBase]int
	if tx.wmap != nil {
		msnap = make(map[varBase]int, len(tx.wmap))
		for k, i := range tx.wmap {
			msnap[k] = i
		}
	}
	return snap, msnap
}

// restoreWrites reinstates a snapshot taken by snapshotWrites.
func (tx *Tx) restoreWrites(snap []writeEntry, msnap map[varBase]int) {
	clear(tx.writes)
	tx.writes = append(tx.writes[:0], snap...)
	tx.wmap = msnap
}

// Retry aborts the transaction and blocks the retry until at least one
// variable read so far changes (the classic STM retry combinator). Calling
// Retry with an empty read set panics, since no write could ever wake the
// transaction. The read-only fast path records no read set to wait on:
// inside AtomicallyRO, Retry panics; a promoted descriptor demotes itself
// and restarts the attempt on the full pipeline, where Retry can block.
func (tx *Tx) Retry() {
	if tx.ro {
		if tx.promoted {
			tx.ro, tx.promoted, tx.demoted = false, false, true
			tx.abortConflict(abortExplicitRetry, nil)
		}
		panic("stm: Retry inside AtomicallyRO would sleep forever (the read-only fast path records no read set to wait on)")
	}
	if len(tx.reads) == 0 {
		panic("stm: Retry with an empty read set would sleep forever")
	}
	// Taxonomy only: a parked Retry is not counted in Stats.Aborts (the
	// attempt loop waits instead of spinning), but operators still want
	// to see how much of the workload is blocking on state changes.
	tx.stat().reasons[abortExplicitRetry].Add(1)
	panic(waitSignal{})
}

// ownsLock reports whether v is one of the variables this commit locked
// (the write set is sorted by id when this runs).
func (tx *Tx) ownsLock(v varBase) bool {
	_, ok := tx.searchWrite(v)
	return ok
}

// validateCommit revalidates the read set while the commit holds its write
// locks — the commit-time form of timestamp extension: each entry is
// checked against its *recorded* version, never against the (possibly
// stale) read timestamp, so a commit whose reads are all still intact
// passes no matter how far the clock has moved. Every read entry is
// checked, including variables this commit also writes: our lock was taken
// only at commit, so a foreign commit may have slipped in between our read
// and our lock, and the lock word preserves the version under our own lock
// bit, so the version check covers that window for own-locked variables
// too. One bounded retry absorbs the transient case where a foreign
// committer holds a lock it is about to release with the version unchanged
// (its own commit failed); a version mismatch is a real conflict and fails
// immediately.
// It returns the read-set Var that failed (for contention attribution);
// nil on success.
func (tx *Tx) validateCommit() (varBase, bool) {
	for attempt := 0; ; attempt++ {
		var foreignLocked varBase
		for i := range tx.reads {
			r := &tx.reads[i]
			w := r.v.lockWord()
			if lockword.Version(w) != r.ver {
				return r.v, false
			}
			if lockword.Locked(w) && !tx.ownsLock(r.v) {
				foreignLocked = r.v
				break
			}
		}
		if foreignLocked == nil {
			return nil, true
		}
		if attempt >= 1 {
			return foreignLocked, false
		}
		runtime.Gosched()
	}
}

// commit attempts to make the transaction's writes visible atomically.
func (tx *Tx) commit() bool {
	if tx.tt {
		return tx.ttCommit()
	}
	if len(tx.writes) == 0 {
		return true // invisible reads: read-only transactions commit for free
	}
	// Price the commit-time validation scan before any lock is taken: the
	// charge must not panic (and must not succeed-then-strand) while write
	// locks are held, so exhaustion surfaces as a failed commit and the
	// attempt loop translates budgetExceeded into ErrOutOfBudget.
	if !tx.chargeSoft(tx.costs.Step * uint64(len(tx.reads))) {
		return false
	}
	tx.sortWrites()
	tx.syncAt(syncpoint.PreLock)
	locked := 0
	for i := range tx.writes {
		prev, ok := tx.writes[i].v.tryLock()
		if !ok {
			break
		}
		tx.writes[i].prev = prev
		locked++
	}
	releaseLocked := func(n int) {
		for i := 0; i < n; i++ {
			tx.writes[i].v.unlock(tx.writes[i].prev)
		}
	}
	if locked != len(tx.writes) {
		releaseLocked(locked)
		tx.noteAbort(abortLockBusy, tx.writes[locked].v)
		return false
	}
	tx.syncAt(syncpoint.PostLock)
	tx.syncAt(syncpoint.PreClockStamp)
	wv, quiescent := tx.advanceClock()
	if !quiescent {
		if bad, ok := tx.validateCommit(); !ok {
			releaseLocked(locked)
			tx.noteAbort(abortCommitValidation, bad)
			return false
		}
	}
	tx.syncAt(syncpoint.PrePublish)
	for i := range tx.writes {
		e := &tx.writes[i]
		e.v.storeBox(&box{val: e.val})
		e.v.unlock(wv) // lock release and version publication in one store
	}
	return true
}

// sortWrites re-establishes the deadlock-free Var-id lock order for large
// write sets that appended unsorted past the map-promotion point. (Small
// write sets are maintained sorted and skip this entirely.) Shared by the
// versioned and TicToc commits.
func (tx *Tx) sortWrites() {
	if tx.wmap == nil {
		return
	}
	slices.SortFunc(tx.writes, func(a, b writeEntry) int {
		switch ai, bi := a.v.id(), b.v.id(); {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	})
	tx.wmap = nil // indices are stale now; the attempt is over either way
}

// beginAttempt samples the attempt's starting timestamp state: the read
// version under the versioned strategies, the validity interval under
// TicToc.
func (tx *Tx) beginAttempt() {
	tx.syncAt(syncpoint.Begin)
	if tx.tt {
		tx.ttBegin()
		return
	}
	tx.rv = clock.Load()
}

// Atomically runs fn inside a transaction, retrying until it commits.
// Returning a non-nil error aborts the transaction (its writes are
// discarded) and returns that error to the caller without retrying.
//
// A retried attempt that aborted without buffering a write is promoted to
// the read-only fast path (see AtomicallyRO): the retry runs with no
// read-set logging and commits with no validation. If the guess turns out
// wrong — the promoted attempt calls Set — the descriptor demotes itself
// back to the full pipeline for the rest of the call (restarting the
// attempt only if it had already certified reads that were never logged).
// Transactions that are read-only by construction should call AtomicallyRO
// directly and skip both the first full-pipeline attempt and the guess.
func Atomically(fn func(tx *Tx) error) error {
	return atomically(nil, fn)
}

// AtomicallyCtx is Atomically with a cancellation point: the context is
// checked before every attempt and while blocked in Retry, and a done
// context surfaces as a clean abort — buffered writes discarded, no locks
// held, the pooled descriptor recycled — returning ctx.Err(). An attempt
// already past its check runs to completion, so a transaction that
// commits concurrently with cancellation may still commit; callers that
// need a hard guarantee must check the return value, exactly as with
// context-aware I/O.
func AtomicallyCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return atomically(ctx, fn)
}

// atomically is the shared retry loop behind Atomically and
// AtomicallyCtx; a nil ctx (the plain entry point) costs one predictable
// branch per attempt.
func atomically(ctx context.Context, fn func(tx *Tx) error) error {
	admitted()
	tx := txPool.Get().(*Tx)
	tx.ro, tx.promoted, tx.demoted = false, false, false
	tx.tt, tx.ttFloor = ClockStrategy(clockStrategy.Load()) == TicToc, 0
	tx.sync = nil
	if syncOn {
		tx.sync = syncHook
	}
	tx.beginBudget()
	// Commit-latency sampling (see SetLatencySampling): off = one atomic
	// load and a branch; a sampled call pays one time.Now pair.
	var latStart time.Time
	if p := latEvery.Load(); p != 0 {
		tx.latSeq++
		if uint64(tx.latSeq)&(p-1) == 0 {
			latStart = time.Now()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			// A panic escaping fn must not strand the pooled descriptor. No
			// engine locks are held while fn runs (commit never runs user
			// code), so recycling the descriptor is the whole cleanup.
			tx.release()
			panic(r)
		}
	}()
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				tx.release()
				return err
			}
		}
		tx.reset()
		tx.beginAttempt()
		if traceOn {
			tx.traceBegin()
		}
		err, ctl := runAttempt(tx, fn)
		switch ctl {
		case ctlOK:
			if err != nil {
				tx.traceEnd(false)
				tx.release()
				return err // user error: abort without retry
			}
			if tx.commit() {
				tx.stat().commits.Add(1)
				if tx.ro {
					tx.stat().roCommits.Add(1)
				}
				if !latStart.IsZero() {
					commitLatency.Observe(uint64(time.Since(latStart).Microseconds()))
					attemptsPerCommit.Observe(uint64(attempt) + 1)
				}
				tx.traceEnd(true)
				tx.release()
				return nil
			}
			tx.stat().aborts.Add(1)
			tx.traceEnd(false)
			if tx.budgetExceeded {
				return tx.budgetAbort()
			}
		case ctlRetryNow:
			tx.stat().aborts.Add(1)
			tx.traceEnd(false)
		case ctlBudget:
			tx.stat().aborts.Add(1)
			tx.traceEnd(false)
			return tx.budgetAbort()
		case ctlRetryWait:
			tx.traceEnd(false)
			waitForChange(tx, ctx)
			continue // the wait already yielded; retry immediately
		}
		if !tx.ro && !tx.demoted && len(tx.writes) == 0 && len(tx.reads) > 0 {
			// The aborted attempt looked read-only; guess that the retry is
			// too and run it on the fast path.
			tx.ro, tx.promoted = true, true
		}
		// The re-run is the resource a pathological conflict loop consumes;
		// charge it before backoff so a metered transaction runs dry instead
		// of retrying forever. (The failed attempt is already in aborts.)
		if !tx.chargeSoft(tx.costs.Retry) {
			return tx.budgetAbort()
		}
		backoff.Attempt(attempt)
	}
}

// AtomicallyRO runs fn as a read-only transaction, retrying until it
// commits; returning a non-nil error aborts and returns it, as with
// Atomically. The read-only fast path is TL2's zero-validation mode: each
// read is certified against the attempt's read timestamp (one lock-word
// load, one value load, one certifying re-load) and nothing is logged —
// no read set, no commit-time locking, no validation — so an RO
// transaction's cost is exactly its reads, allocation-free in steady
// state. See DESIGN.md for the opacity argument.
//
// fn must not write: Set panics, and Retry panics since there is no
// recorded read set to wait on. Use Atomically for transactions that may
// write or need Retry.
func AtomicallyRO(fn func(tx *Tx) error) error {
	return atomicallyRO(nil, fn)
}

// AtomicallyROCtx is AtomicallyRO with a cancellation point, with the
// same semantics as AtomicallyCtx: the context is checked before every
// attempt, and a done context returns ctx.Err() after a clean abort.
func AtomicallyROCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return atomicallyRO(ctx, fn)
}

// atomicallyRO is the shared retry loop behind AtomicallyRO and
// AtomicallyROCtx.
func atomicallyRO(ctx context.Context, fn func(tx *Tx) error) error {
	tx := txPool.Get().(*Tx)
	tx.ro, tx.promoted, tx.demoted = true, false, false
	tx.tt, tx.ttFloor = ClockStrategy(clockStrategy.Load()) == TicToc, 0
	tx.sync = nil
	if syncOn {
		tx.sync = syncHook
	}
	tx.beginBudget()
	var latStart time.Time
	if p := latEvery.Load(); p != 0 {
		tx.latSeq++
		if uint64(tx.latSeq)&(p-1) == 0 {
			latStart = time.Now()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			// As in atomically: recycle the descriptor under a user panic.
			tx.release()
			panic(r)
		}
	}()
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				tx.release()
				return err
			}
		}
		tx.reset()
		tx.beginAttempt()
		if traceOn {
			tx.traceBegin()
		}
		err, ctl := runAttempt(tx, fn)
		if ctl == ctlOK {
			// Nothing to commit: every read was certified against rv when it
			// was performed, so the attempt is already a consistent snapshot.
			if err != nil {
				tx.traceEnd(false)
				tx.release()
				return err // user error: abort without retry
			}
			tx.stat().commits.Add(1)
			tx.stat().roCommits.Add(1)
			if !latStart.IsZero() {
				commitLatency.Observe(uint64(time.Since(latStart).Microseconds()))
				attemptsPerCommit.Observe(uint64(attempt) + 1)
			}
			tx.traceEnd(true)
			tx.release()
			return nil
		}
		// ctlRetryWait is impossible here (Retry panics on the RO path).
		tx.stat().aborts.Add(1)
		tx.traceEnd(false)
		if ctl == ctlBudget {
			return tx.budgetAbort()
		}
		if !tx.chargeSoft(tx.costs.Retry) {
			return tx.budgetAbort()
		}
		backoff.Attempt(attempt)
	}
}

type ctlKind int

const (
	ctlOK ctlKind = iota
	ctlRetryNow
	ctlRetryWait
	ctlBudget
)

// runAttempt executes one attempt of fn, translating the panic-based abort
// signals into control flow. Unknown panics propagate.
func runAttempt(tx *Tx, fn func(tx *Tx) error) (err error, ctl ctlKind) {
	defer func() {
		switch r := recover(); r.(type) {
		case nil:
		case retrySignal:
			ctl = ctlRetryNow
		case waitSignal:
			ctl = ctlRetryWait
		case budgetSignal:
			ctl = ctlBudget
		default:
			panic(r)
		}
	}()
	return fn(tx), ctlOK
}

// waitForChange blocks until some variable in the transaction's read set
// has a version newer than the one read, or until ctx (if any) is done —
// the caller's loop turns that into a clean cancellation abort. Each
// probe is a single atomic load of the lock word (no pointer chase
// through the value snapshot), and the poll interval backs off
// exponentially so long waits cost almost nothing.
func waitForChange(tx *Tx, ctx context.Context) {
	for spins := 0; ; spins++ {
		for i := range tx.reads {
			r := &tx.reads[i]
			cur := lockword.Version(r.v.lockWord())
			if tx.tt {
				// A TicToc read entry logs the full (wts,rts) payload, but
				// only a wts change means a new committed value: foreign
				// readers advance rts by CAS without publishing anything,
				// and waking on that would re-run the sleeper for nothing.
				if ttWts(cur) != ttWts(r.ver) {
					return
				}
			} else if cur != r.ver {
				return
			}
		}
		if ctx != nil && ctx.Err() != nil {
			return
		}
		if tx.sync != nil {
			// Under the harness a sleeping worker would stall the whole
			// schedule: hand control back instead, so the policy can grant
			// the writer this wait is waiting for.
			tx.sync(syncpoint.SpinWait)
			continue
		}
		if spins < 4 {
			runtime.Gosched()
		} else {
			d := time.Microsecond << uint(min(spins-4, 10))
			if d > time.Millisecond {
				d = time.Millisecond
			}
			time.Sleep(d)
		}
	}
}

// Sanity check that Var implements varBase.
var _ varBase = (*Var[int])(nil)

// String implements fmt.Stringer for diagnostics. It certifies the
// value/version pair the same way a transactional read does, so it never
// prints a combination that did not exist. Under TicToc the certify
// compares wts only — the payload's rts half moves under foreign
// readers' advance CASes without the value changing, and insisting on a
// stable full payload would spin on a read-hot Var.
func (v *Var[T]) String() string {
	tt := ClockStrategy(clockStrategy.Load()) == TicToc
	for {
		w := v.lw.Load()
		b := v.loadBox()
		w2 := v.lw.Load()
		if !lockword.Locked(w) && !lockword.Locked(w2) {
			if tt {
				pl := lockword.Version(w)
				if ttWts(lockword.Version(w2)) == ttWts(pl) {
					return fmt.Sprintf("Var(%v@wts%d,rts%d)", b.val, ttWts(pl), ttRts(pl))
				}
			} else if w2 == w {
				return fmt.Sprintf("Var(%v@v%d)", b.val, lockword.Version(w))
			}
		}
		runtime.Gosched()
	}
}
