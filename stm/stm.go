// Package stm is a native (sync/atomic-based) software transactional memory
// for Go programs: the adoptable counterpart of the instrumented algorithms
// in internal/tm. It implements the TL2 protocol — a global version clock,
// per-variable versioned locks, invisible reads, lazy write buffering and
// commit-time locking — the same algorithm measured as the "tl2" series in
// the experiments, so its costs are exactly the ones the paper's Theorem 3
// trades against: O(1) steps per read, at the price of weak DAP (a global
// clock word shared by all update transactions).
//
// Usage:
//
//	acct := stm.NewVar(100)
//	err := stm.Atomically(func(tx *stm.Tx) error {
//	    v := acct.Get(tx)
//	    acct.Set(tx, v-10)
//	    return nil
//	})
//
// Transactions retry automatically on conflict. Get and Set abort the
// enclosing transaction by panicking with an internal signal that
// Atomically recovers; user code must not recover() across t-operations.
// Values stored in a Var must be treated as immutable once written.
package stm

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// clock is the global version clock shared by all Vars (TL2's GV).
var clock atomic.Uint64

// varIDs allocates the total order used to acquire commit locks
// deadlock-free.
var varIDs atomic.Uint64

// box is an immutable (value, version) snapshot of a Var.
type box struct {
	val any
	ver uint64
}

// varBase is the type-erased interface Tx uses to manage heterogeneous
// Vars in one transaction.
type varBase interface {
	id() uint64
	loadBox() *box
	casBox(old, new *box) bool
	tryLock() bool
	unlock()
	lockedByOther() bool
}

// Var is a transactional variable holding a value of type T.
// The zero Var is not ready for use; create Vars with NewVar.
type Var[T any] struct {
	vid   uint64
	state atomic.Pointer[box]
	lock  atomic.Bool
}

// NewVar creates a transactional variable with the given initial value.
func NewVar[T any](initial T) *Var[T] {
	v := &Var[T]{vid: varIDs.Add(1)}
	v.state.Store(&box{val: initial, ver: 0})
	return v
}

func (v *Var[T]) id() uint64 { return v.vid }

func (v *Var[T]) loadBox() *box {
	b := v.state.Load()
	if b == nil {
		panic("stm: Var used before NewVar (the zero Var is not initialized)")
	}
	return b
}
func (v *Var[T]) casBox(o, n *box) bool { return v.state.CompareAndSwap(o, n) }
func (v *Var[T]) tryLock() bool         { return v.lock.CompareAndSwap(false, true) }
func (v *Var[T]) unlock()               { v.lock.Store(false) }
func (v *Var[T]) lockedByOther() bool   { return v.lock.Load() }

// Get reads the variable inside a transaction. On conflict it aborts the
// transaction (Atomically retries automatically).
func (v *Var[T]) Get(tx *Tx) T {
	return tx.read(v).(T)
}

// Set buffers a write to the variable inside a transaction; it becomes
// visible atomically at commit.
func (v *Var[T]) Set(tx *Tx, val T) {
	tx.write(v, val)
}

// Load reads the variable outside any transaction: a consistent single-
// variable snapshot (equivalent to a one-read transaction).
func (v *Var[T]) Load() T {
	return v.state.Load().val.(T)
}

// retrySignal aborts the current attempt; Atomically catches it.
type retrySignal struct{}

// waitSignal is panicked by Retry: the transaction re-runs only after one
// of the variables it read has changed.
type waitSignal struct{}

// Tx is a transaction descriptor. It is valid only inside the function
// passed to Atomically and must not escape or be shared between goroutines.
type Tx struct {
	rv     uint64
	reads  []readEntry
	writes map[varBase]any
	order  []varBase
}

type readEntry struct {
	v   varBase
	ver uint64
}

func (tx *Tx) abort() {
	panic(retrySignal{})
}

func (tx *Tx) read(v varBase) any {
	if tx.writes != nil {
		if val, ok := tx.writes[v]; ok {
			return val
		}
	}
	if v.lockedByOther() {
		tx.abort()
	}
	b := v.loadBox()
	if b.ver > tx.rv {
		tx.abort()
	}
	tx.reads = append(tx.reads, readEntry{v: v, ver: b.ver})
	return b.val
}

func (tx *Tx) write(v varBase, val any) {
	if tx.writes == nil {
		tx.writes = make(map[varBase]any)
	}
	if _, ok := tx.writes[v]; !ok {
		tx.order = append(tx.order, v)
	}
	tx.writes[v] = val
}

// Retry aborts the transaction and blocks the retry until at least one
// variable read so far changes (the classic STM retry combinator). Calling
// Retry with an empty read set panics, since no write could ever wake the
// transaction.
func (tx *Tx) Retry() {
	if len(tx.reads) == 0 {
		panic("stm: Retry with an empty read set would sleep forever")
	}
	panic(waitSignal{})
}

// commit attempts to make the transaction's writes visible atomically.
func (tx *Tx) commit() bool {
	if len(tx.order) == 0 {
		return true // invisible reads: read-only transactions commit for free
	}
	locked := make([]varBase, 0, len(tx.order))
	release := func() {
		for _, v := range locked {
			v.unlock()
		}
	}
	vs := append([]varBase(nil), tx.order...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].id() < vs[j].id() })
	for _, v := range vs {
		if !v.tryLock() {
			release()
			return false
		}
		locked = append(locked, v)
	}
	wv := clock.Add(1)
	if wv != tx.rv+1 {
		// Validate every read entry — including variables we also write:
		// our lock was taken only now, so a foreign commit may have slipped
		// in between our read and our lock, and skipping "own" variables
		// here would silently lose that update.
		for _, r := range tx.reads {
			if r.v.lockedByOther() && !containsVar(locked, r.v) {
				release()
				return false
			}
			if r.v.loadBox().ver != r.ver {
				release()
				return false
			}
		}
	}
	for _, v := range vs {
		old := v.loadBox()
		v.casBox(old, &box{val: tx.writes[v], ver: wv})
	}
	release()
	return true
}

func containsVar(vs []varBase, v varBase) bool {
	for _, u := range vs {
		if u == v {
			return true
		}
	}
	return false
}

// Atomically runs fn inside a transaction, retrying until it commits.
// Returning a non-nil error aborts the transaction (its writes are
// discarded) and returns that error to the caller without retrying.
func Atomically(fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := &Tx{rv: clock.Load()}
		err, ctl := runAttempt(tx, fn)
		switch ctl {
		case ctlOK:
			if err != nil {
				return err // user error: abort without retry
			}
			if tx.commit() {
				return nil
			}
		case ctlRetryNow:
			// fall through to retry
		case ctlRetryWait:
			waitForChange(tx)
		}
		if attempt > 0 && attempt%64 == 0 {
			runtime.Gosched() // be polite under heavy contention
		}
	}
}

type ctlKind int

const (
	ctlOK ctlKind = iota
	ctlRetryNow
	ctlRetryWait
)

// runAttempt executes one attempt of fn, translating the panic-based abort
// signals into control flow. Unknown panics propagate.
func runAttempt(tx *Tx, fn func(tx *Tx) error) (err error, ctl ctlKind) {
	defer func() {
		switch r := recover(); r.(type) {
		case nil:
		case retrySignal:
			ctl = ctlRetryNow
		case waitSignal:
			ctl = ctlRetryWait
		default:
			panic(r)
		}
	}()
	return fn(tx), ctlOK
}

// waitForChange blocks (politely spinning) until some variable in the
// transaction's read set has a version newer than the one read.
func waitForChange(tx *Tx) {
	for {
		for _, r := range tx.reads {
			if r.v.loadBox().ver != r.ver || r.v.lockedByOther() {
				return
			}
		}
		runtime.Gosched()
	}
}

// Sanity check that Var implements varBase.
var _ varBase = (*Var[int])(nil)

// String implements fmt.Stringer for diagnostics.
func (v *Var[T]) String() string {
	b := v.state.Load()
	return fmt.Sprintf("Var(%v@v%d)", b.val, b.ver)
}
