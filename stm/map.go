package stm

// Map is a transactional string-keyed hash map: a fixed array of buckets,
// each a Var holding an immutable association list. Operations on
// different buckets never conflict, so the map scales the way the paper's
// disjoint-access-parallelism story says data structures should: disjoint
// keys (usually) commute.
//
// All methods taking a *Tx must run inside Atomically; they compose with
// any other transactional operations.
type Map[V any] struct {
	buckets []*Var[[]mapEntry[V]]
	size    *Var[int]
}

type mapEntry[V any] struct {
	key string
	val V
}

// NewMap creates a transactional map with the given number of buckets
// (rounded up to at least 1). More buckets mean fewer false conflicts.
func NewMap[V any](buckets int) *Map[V] {
	if buckets < 1 {
		buckets = 1
	}
	m := &Map[V]{
		buckets: make([]*Var[[]mapEntry[V]], buckets),
		size:    NewVar(0),
	}
	for i := range m.buckets {
		m.buckets[i] = NewVar[[]mapEntry[V]](nil)
	}
	return m
}

func (m *Map[V]) bucket(key string) *Var[[]mapEntry[V]] {
	// Inline FNV-1a over the string: hashing a key must not allocate (the
	// hash/fnv Hash32 interface and the []byte(key) conversion both would),
	// or bucket selection alone would break the engine's zero-alloc reads.
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime32
	}
	return m.buckets[h%uint32(len(m.buckets))]
}

// Get returns the value for key and whether it is present.
func (m *Map[V]) Get(tx *Tx, key string) (V, bool) {
	for _, e := range m.bucket(key).Get(tx) {
		if e.key == key {
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key.
func (m *Map[V]) Put(tx *Tx, key string, val V) {
	b := m.bucket(key)
	old := b.Get(tx)
	entries := make([]mapEntry[V], 0, len(old)+1)
	replaced := false
	for _, e := range old {
		if e.key == key {
			entries = append(entries, mapEntry[V]{key: key, val: val})
			replaced = true
		} else {
			entries = append(entries, e)
		}
	}
	if !replaced {
		entries = append(entries, mapEntry[V]{key: key, val: val})
		m.size.Set(tx, m.size.Get(tx)+1)
	}
	b.Set(tx, entries)
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(tx *Tx, key string) bool {
	b := m.bucket(key)
	old := b.Get(tx)
	entries := make([]mapEntry[V], 0, len(old))
	found := false
	for _, e := range old {
		if e.key == key {
			found = true
			continue
		}
		entries = append(entries, e)
	}
	if found {
		b.Set(tx, entries)
		m.size.Set(tx, m.size.Get(tx)-1)
	}
	return found
}

// Len returns the number of entries. Reading it inside a transaction
// serializes against every size-changing update; use sparingly in hot
// paths.
func (m *Map[V]) Len(tx *Tx) int { return m.size.Get(tx) }

// Keys returns all keys in unspecified order, as one consistent snapshot.
func (m *Map[V]) Keys(tx *Tx) []string {
	var out []string
	for _, b := range m.buckets {
		for _, e := range b.Get(tx) {
			out = append(out, e.key)
		}
	}
	return out
}
