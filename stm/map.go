package stm

// Map is a transactional string-keyed hash map: a fixed array of buckets,
// each a Var holding an immutable association list. Operations on
// different buckets never conflict, so the map scales the way the paper's
// disjoint-access-parallelism story says data structures should: disjoint
// keys (usually) commute.
//
// The element count is striped across several Vars (indexed by bucket), so
// inserts and deletes of disjoint keys do not collide on a shared counter
// either — a single size Var would serialize every size-changing update
// and silently undo the buckets' DAP. Len sums the stripes inside the
// transaction; SnapshotLen sums them outside any transaction.
//
// All methods taking a *Tx must run inside Atomically; they compose with
// any other transactional operations. The Snapshot* methods take no
// transaction and never abort.
type Map[V any] struct {
	buckets []*Var[[]mapEntry[V]]
	// sizes[i] counts the entries of the buckets with index ≡ i (mod
	// len(sizes)).
	sizes []*Var[int]
}

type mapEntry[V any] struct {
	key string
	val V
}

// mapSizeStripes is the default number of size-counter stripes (capped at
// the bucket count: more stripes than buckets cannot reduce conflicts).
const mapSizeStripes = 16

// NewMap creates a transactional map with the given number of buckets
// (rounded up to at least 1). More buckets mean fewer false conflicts.
func NewMap[V any](buckets int) *Map[V] {
	if buckets < 1 {
		buckets = 1
	}
	stripes := mapSizeStripes
	if buckets < stripes {
		stripes = buckets
	}
	m := &Map[V]{
		buckets: make([]*Var[[]mapEntry[V]], buckets),
		sizes:   make([]*Var[int], stripes),
	}
	for i := range m.buckets {
		m.buckets[i] = NewVar[[]mapEntry[V]](nil)
	}
	for i := range m.sizes {
		m.sizes[i] = NewVar(0)
	}
	return m
}

// bucketIndex hashes key to a bucket index. Inline FNV-1a over the string:
// hashing a key must not allocate (the hash/fnv Hash32 interface and the
// []byte(key) conversion both would), or bucket selection alone would
// break the engine's zero-alloc reads.
func (m *Map[V]) bucketIndex(key string) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime32
	}
	return h % uint32(len(m.buckets))
}

func (m *Map[V]) bucket(key string) *Var[[]mapEntry[V]] {
	return m.buckets[m.bucketIndex(key)]
}

// sizeStripe returns the size counter covering the given bucket.
func (m *Map[V]) sizeStripe(bucket uint32) *Var[int] {
	return m.sizes[bucket%uint32(len(m.sizes))]
}

// Get returns the value for key and whether it is present.
func (m *Map[V]) Get(tx *Tx, key string) (V, bool) {
	for _, e := range m.bucket(key).Get(tx) {
		if e.key == key {
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key.
func (m *Map[V]) Put(tx *Tx, key string, val V) {
	idx := m.bucketIndex(key)
	b := m.buckets[idx]
	old := b.Get(tx)
	entries := make([]mapEntry[V], 0, len(old)+1)
	replaced := false
	for _, e := range old {
		if e.key == key {
			entries = append(entries, mapEntry[V]{key: key, val: val})
			replaced = true
		} else {
			entries = append(entries, e)
		}
	}
	if !replaced {
		entries = append(entries, mapEntry[V]{key: key, val: val})
		s := m.sizeStripe(idx)
		s.Set(tx, s.Get(tx)+1)
	}
	b.Set(tx, entries)
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(tx *Tx, key string) bool {
	idx := m.bucketIndex(key)
	b := m.buckets[idx]
	old := b.Get(tx)
	entries := make([]mapEntry[V], 0, len(old))
	found := false
	for _, e := range old {
		if e.key == key {
			found = true
			continue
		}
		entries = append(entries, e)
	}
	if found {
		b.Set(tx, entries)
		s := m.sizeStripe(idx)
		s.Set(tx, s.Get(tx)-1)
	}
	return found
}

// Len returns the number of entries, as one consistent snapshot: the sum
// of the size stripes. A transactional Len still reads every stripe, so it
// conflicts with concurrent inserts and deletes (though no longer with all
// of them at once); prefer SnapshotLen in hot read-mostly paths that can
// tolerate a non-transactional answer.
func (m *Map[V]) Len(tx *Tx) int {
	n := 0
	for _, s := range m.sizes {
		n += s.Get(tx)
	}
	return n
}

// SnapshotLen returns the entry count without running a transaction: one
// atomic load per stripe. Each stripe is individually consistent but the
// sum is not a single atomic cut — concurrent updates may be partially
// included. It never aborts, blocks, or conflicts with writers; intended
// for monitoring, sizing decisions and read-mostly fast paths.
func (m *Map[V]) SnapshotLen() int {
	n := 0
	for _, s := range m.sizes {
		n += s.Load()
	}
	return n
}

// SnapshotGet returns the value for key without running a transaction: a
// single consistent load of the key's bucket. It is linearizable per key
// (equivalent to a one-read transaction) and never conflicts with writers.
func (m *Map[V]) SnapshotGet(key string) (V, bool) {
	for _, e := range m.bucket(key).Load() {
		if e.key == key {
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// SnapshotRange calls f for each entry without running a transaction,
// stopping early if f returns false. Each bucket is read as one consistent
// snapshot, but the iteration as a whole is not atomic: entries moved by
// concurrent updates may be seen twice or not at all (the usual contract
// of concurrent map iteration, sync.Map included). Use Keys inside a
// transaction when a fully consistent view is required.
func (m *Map[V]) SnapshotRange(f func(key string, val V) bool) {
	for _, b := range m.buckets {
		for _, e := range b.Load() {
			if !f(e.key, e.val) {
				return
			}
		}
	}
}

// Keys returns all keys in unspecified order, as one consistent snapshot.
func (m *Map[V]) Keys(tx *Tx) []string {
	var out []string
	for _, b := range m.buckets {
		for _, e := range b.Get(tx) {
			out = append(out, e.key)
		}
	}
	return out
}
