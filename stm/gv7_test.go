package stm_test

// GV7 block-clock edge cases: exhaustion mid-commit (a fresh block is
// claimed under the same locks), descriptor recycle draining a partially
// used block back to the allocator, and the amortization contract itself
// (commits per allocator RMW ≈ K). The monotonicity watcher lives with the
// other strategies in clock_internal_test.go.

import (
	"sync"
	"testing"

	"repro/stm"
)

// TestGV7BlockExhaustionMidCommit drives enough sequential update commits
// through one goroutine that its descriptor's block is exhausted and
// re-claimed several times, and checks both the amortization (block claims
// ≪ commits) and that no update or snapshot consistency is lost across the
// block boundaries.
func TestGV7BlockExhaustionMidCommit(t *testing.T) {
	restore := stm.SetGV7BlockSizeForTest(4)
	defer restore()
	stm.SetClockStrategy(stm.GV7)
	t.Cleanup(func() { stm.SetClockStrategy(stm.GV4) })

	const commits = 64
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	before := stm.ReadStats()
	for i := 0; i < commits; i++ {
		if err := stm.Atomically(func(tx *stm.Tx) error {
			x.Set(tx, x.Get(tx)+1)
			y.Set(tx, y.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := stm.Atomically(func(tx *stm.Tx) error {
		if x.Get(tx) != y.Get(tx) {
			t.Errorf("snapshot saw x=%d y=%d across block boundaries", x.Get(tx), y.Get(tx))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := x.Load(); got != commits {
		t.Fatalf("lost updates under GV7: x=%d, want %d", got, commits)
	}
	d := stm.ReadStats().Sub(before)
	// One goroutine reuses one pooled descriptor, so 64 commits at K=4
	// need ~16 claims; allow generous slack for pool scheduling but reject
	// a claim per commit (which would mean the block is not amortizing).
	if d.ClockBlockClaims == 0 {
		t.Fatal("GV7 ran without claiming any block")
	}
	if d.ClockBlockClaims > commits/2 {
		t.Errorf("GV7 claimed %d blocks for %d commits; blocks are not amortizing", d.ClockBlockClaims, commits)
	}
	if d.ClockIncrements != 0 {
		t.Errorf("GV7 commits published %d clock increments; the published clock is reader-advanced only", d.ClockIncrements)
	}
}

// TestGV7DrainPartialBlock exercises the recycle drain path directly: a
// descriptor that consumed part of its block returns the unused ticks to
// the allocator when it is still the top block, and abandons them (block
// emptied, allocator untouched) when a later block has been claimed above.
func TestGV7DrainPartialBlock(t *testing.T) {
	restore := stm.SetGV7BlockSizeForTest(8)
	defer restore()
	stm.SetClockStrategy(stm.GV7)
	t.Cleanup(func() { stm.SetClockStrategy(stm.GV4) })

	tx, release := stm.NewTxForTest()
	defer release()

	// Claim and consume 3 of 8 ticks.
	wv1, _ := stm.AdvanceClockForTest(tx) // claims
	stm.AdvanceClockForTest(tx)
	wv3, _ := stm.AdvanceClockForTest(tx)
	if wv3 != wv1+2 {
		t.Fatalf("block ticks not dense: first=%d third=%d", wv1, wv3)
	}
	next, end := stm.GV7BlockForTest(tx)
	if end-next+1 != 5 {
		t.Fatalf("expected 5 unused ticks, have next=%d end=%d", next, end)
	}
	if stm.ClockAllocForTest() != end {
		t.Fatalf("allocator %d is not at this block's end %d; test cannot drive the top-block case", stm.ClockAllocForTest(), end)
	}
	stm.DrainBlockForTest(tx)
	if got := stm.ClockAllocForTest(); got != wv3 {
		t.Errorf("drain did not return unused ticks: allocator=%d, want last-stamped=%d", got, wv3)
	}
	if n, e := stm.GV7BlockForTest(tx); e != 0 && n <= e {
		t.Errorf("drain left a non-empty block next=%d end=%d", n, e)
	}

	// Re-claim, then let a second descriptor claim above: the first
	// block's drain must fail the CAS and abandon, never corrupt.
	stm.AdvanceClockForTest(tx)
	tx2, release2 := stm.NewTxForTest()
	defer release2()
	stm.AdvanceClockForTest(tx2)
	hi := stm.ClockAllocForTest()
	stm.DrainBlockForTest(tx) // not the top block: abandons
	if got := stm.ClockAllocForTest(); got != hi {
		t.Errorf("drain of a non-top block moved the allocator %d → %d", hi, got)
	}
	stm.DrainBlockForTest(tx2)
}

// TestGV7DescriptorRecycleDrains checks the release-path drain: when the
// engine leaves GV7 while a pooled descriptor still caches a block, the
// next release returns the ticks (or abandons them) and empties the block,
// so no descriptor re-enters a later GV7 run with a stale block.
func TestGV7DescriptorRecycleDrains(t *testing.T) {
	restore := stm.SetGV7BlockSizeForTest(8)
	defer restore()
	stm.SetClockStrategy(stm.GV7)
	t.Cleanup(func() { stm.SetClockStrategy(stm.GV4) })

	tx, release := stm.NewTxForTest()
	stm.AdvanceClockForTest(tx) // descriptor now caches a part-used block

	// Leaving GV7 publishes the allocation high-water mark, so every
	// cached tick is ≤ clock and therefore unusable (stale) afterwards.
	stm.SetClockStrategy(stm.GV4)
	if c, a := stm.ClockForTest(), stm.ClockAllocForTest(); c < a {
		t.Fatalf("leaving GV7 left clock %d below allocator %d; stale blocks would stay live", c, a)
	}
	release() // drain happens here (strategy is no longer GV7)
	tx2, release2 := stm.NewTxForTest()
	defer release2()
	if n, e := stm.GV7BlockForTest(tx2); tx2 == tx && e != 0 && n <= e {
		t.Errorf("recycled descriptor still holds block next=%d end=%d", n, e)
	}
}

// TestGV7ConcurrentMixedConsistency races GV7 update commits against full
// and RO readers and checks every snapshot: the rv lag a reader absorbs is
// bounded by outstanding blocks, and extension must hide all of it.
func TestGV7ConcurrentMixedConsistency(t *testing.T) {
	restore := stm.SetGV7BlockSizeForTest(4)
	defer restore()
	stm.SetClockStrategy(stm.GV7)
	t.Cleanup(func() { stm.SetClockStrategy(stm.GV4) })

	x := stm.NewVar(0)
	y := stm.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					x.Set(tx, x.Get(tx)+1)
					y.Set(tx, y.Get(tx)+1)
					return nil
				})
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					if a, b := x.Get(tx), y.Get(tx); a != b {
						t.Errorf("reader saw x=%d y=%d", a, b)
					}
					return nil
				})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				_ = stm.AtomicallyRO(func(tx *stm.Tx) error {
					if a, b := x.Get(tx), y.Get(tx); a != b {
						t.Errorf("RO reader saw x=%d y=%d", a, b)
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := x.Load(); got != 800 {
		t.Fatalf("lost updates: x=%d, want 800", got)
	}
}
