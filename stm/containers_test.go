package stm_test

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/stm"
)

func TestMapBasics(t *testing.T) {
	m := stm.NewMap[int](8)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(stm.Atomically(func(tx *stm.Tx) error {
		if _, ok := m.Get(tx, "a"); ok {
			t.Error("empty map returned a value")
		}
		m.Put(tx, "a", 1)
		m.Put(tx, "b", 2)
		m.Put(tx, "a", 3) // replace
		if v, ok := m.Get(tx, "a"); !ok || v != 3 {
			t.Errorf("Get(a) = %d, %v; want 3, true", v, ok)
		}
		if m.Len(tx) != 2 {
			t.Errorf("Len = %d, want 2", m.Len(tx))
		}
		if !m.Delete(tx, "b") || m.Delete(tx, "b") {
			t.Error("Delete semantics wrong")
		}
		if m.Len(tx) != 1 {
			t.Errorf("Len after delete = %d, want 1", m.Len(tx))
		}
		return nil
	}))
	must(stm.Atomically(func(tx *stm.Tx) error {
		keys := m.Keys(tx)
		if len(keys) != 1 || keys[0] != "a" {
			t.Errorf("Keys = %v, want [a]", keys)
		}
		return nil
	}))
}

// TestMapAtomicRename moves a value between keys atomically under
// concurrent observers that must never see both or neither.
func TestMapAtomicRename(t *testing.T) {
	m := stm.NewMap[int](16)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		m.Put(tx, "old", 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var both, neither bool
			_ = stm.Atomically(func(tx *stm.Tx) error {
				_, hasOld := m.Get(tx, "old")
				_, hasNew := m.Get(tx, "new")
				both = hasOld && hasNew
				neither = !hasOld && !hasNew
				return nil
			})
			if both || neither {
				t.Errorf("rename torn: both=%v neither=%v", both, neither)
				return
			}
		}
	}()
	if err := stm.Atomically(func(tx *stm.Tx) error {
		v, ok := m.Get(tx, "old")
		if !ok {
			t.Error("old key missing")
		}
		m.Delete(tx, "old")
		m.Put(tx, "new", v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

// TestMapSizeInvariantProperty: Len always equals the number of distinct
// present keys, for arbitrary operation sequences.
func TestMapSizeInvariantProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		m := stm.NewMap[int](4)
		model := map[string]int{}
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%13)
			switch op % 3 {
			case 0, 1:
				if err := stm.Atomically(func(tx *stm.Tx) error {
					m.Put(tx, key, i)
					return nil
				}); err != nil {
					return false
				}
				model[key] = i
			case 2:
				var deleted bool
				if err := stm.Atomically(func(tx *stm.Tx) error {
					deleted = m.Delete(tx, key)
					return nil
				}); err != nil {
					return false
				}
				_, inModel := model[key]
				if deleted != inModel {
					return false
				}
				delete(model, key)
			}
		}
		ok := true
		if err := stm.Atomically(func(tx *stm.Tx) error {
			if m.Len(tx) != len(model) {
				ok = false
				return nil
			}
			for k, v := range model {
				got, present := m.Get(tx, k)
				if !present || got != v {
					ok = false
					return nil
				}
			}
			return nil
		}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := stm.NewQueue[int](4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := 1; i <= 4; i++ {
			q.Put(tx, i)
		}
		if q.TryPut(tx, 5) {
			t.Error("TryPut succeeded on a full queue")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := 1; i <= 4; i++ {
			if v := q.Take(tx); v != i {
				t.Errorf("Take = %d, want %d (FIFO)", v, i)
			}
		}
		if _, ok := q.TryTake(tx); ok {
			t.Error("TryTake succeeded on an empty queue")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueProducersConsumers runs a full producer/consumer pipeline over
// the blocking Put/Take path: every produced item is consumed exactly once.
func TestQueueProducersConsumers(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 100
	)
	q := stm.NewQueue[int](5)
	var wg sync.WaitGroup
	results := make(chan int, producers*perProd)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < producers*perProd/consumers; i++ {
				var v int
				if err := stm.Atomically(func(tx *stm.Tx) error {
					v = q.Take(tx)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				results <- v
			}
		}()
	}
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				item := p*perProd + i
				if err := stm.Atomically(func(tx *stm.Tx) error {
					q.Put(tx, item)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(results)
	seen := map[int]bool{}
	for v := range results {
		if seen[v] {
			t.Fatalf("item %d consumed twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProd {
		t.Fatalf("consumed %d items, want %d", len(seen), producers*perProd)
	}
}

// TestQueueComposesWithMap moves an item from a queue into a map in one
// transaction: either both effects happen or neither (compositionality,
// the paper's selling point for TM).
func TestQueueComposesWithMap(t *testing.T) {
	q := stm.NewQueue[string](2)
	m := stm.NewMap[bool](4)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		q.Put(tx, "job1")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := stm.Atomically(func(tx *stm.Tx) error {
		job := q.Take(tx)
		m.Put(tx, job, true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := stm.Atomically(func(tx *stm.Tx) error {
		if q.Len(tx) != 0 {
			t.Error("queue not drained")
		}
		if done, ok := m.Get(tx, "job1"); !ok || !done {
			t.Error("map not updated")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
