package server

import (
	"fmt"
	"sort"
	"sync"
)

// fnv32 is FNV-1a, the shard and bucket hash. Inlined rather than
// hash/fnv so the per-request path allocates nothing.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Router owns the shard set: N independent engine instances, each a
// Backend, plus one RWMutex per shard for cross-shard coordination.
//
// Requests confined to one shard never touch the mutexes — a single
// native transaction is atomic there, and a one-key read is a one-object
// read that no multi-key anomaly can be observed through. Only requests
// that TOUCH MORE THAN ONE SHARD coordinate: write batches take the
// exclusive lock and read-only batches/scans the shared lock on every
// participating shard, always in ascending shard-id order — the same
// ordering discipline as the engines' Var-id-ordered commit locking, and
// deadlock-free for the same reason. While a cross-shard write batch
// holds its exclusive locks, no multi-shard reader can start and no
// other multi-shard writer can interleave, so every observer that could
// tell the difference sees the batch entirely or not at all.
type Router struct {
	shards []Backend
	locks  []sync.RWMutex
}

// NewRouter builds n shards of the named engine ("stm" or "mvstm").
func NewRouter(n int, engine string) (*Router, error) {
	return NewRouterProfiled(n, engine, false)
}

// NewRouterProfiled is NewRouter with hot-Var labeling: when label is
// set, each shard registers human-readable names for its contention
// units (map keys for stm, buckets for mvstm) so an installed contention
// sketch (stm.SetContentionProfiler and siblings) reports them by name.
// Labeling costs stm inserts one atomic pointer load plus a registry
// store per new key; leave it off when not profiling.
func NewRouterProfiled(n int, engine string, label bool) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shards = %d, want >= 1", n)
	}
	var mk func(i int) Backend
	switch engine {
	case "stm":
		mk = func(int) Backend {
			if label {
				return newSTMBackendLabeled()
			}
			return NewSTMBackend()
		}
	case "mvstm":
		mk = func(i int) Backend {
			if label {
				return newMVSTMBackend(i)
			}
			return NewMVSTMBackend()
		}
	default:
		return nil, fmt.Errorf("unknown engine %q (want stm or mvstm)", engine)
	}
	r := &Router{
		shards: make([]Backend, n),
		locks:  make([]sync.RWMutex, n),
	}
	for i := range r.shards {
		r.shards[i] = mk(i)
	}
	return r, nil
}

// NumShards reports the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// ShardOfKey reports which of n hash-partitioned shards owns key.
// Exported so load generators (cmd/tmload's -affine mode) can build
// shard-confined batches without duplicating the partitioning hash.
func ShardOfKey(key string, n int) int {
	return int(fnv32(key) % uint32(n))
}

// ShardFor reports which shard owns key.
func (r *Router) ShardFor(key string) int {
	return ShardOfKey(key, len(r.shards))
}

// Get reads one key from its shard. Single-object: no coordination.
func (r *Router) Get(key string) (string, bool, error) {
	return r.shards[r.ShardFor(key)].Get(key)
}

// Stats returns the engine counters (engine-global, so shard 0 speaks
// for all) and the per-shard key counts.
func (r *Router) Stats() (Stats, []int) {
	lens := make([]int, len(r.shards))
	for i, s := range r.shards {
		n, _ := s.Len()
		lens[i] = n
	}
	return r.shards[0].Stats(), lens
}

// Scan merges the half-open range [from, to) across every shard (keys
// are hash-partitioned, so each shard may hold any part of the range).
// All shard read-locks are taken in id order before the first shard is
// read: a scan is the archetypal multi-shard reader and must not observe
// half of a concurrent cross-shard batch.
func (r *Router) Scan(from, to string, limit int) ([]KV, error) {
	for i := range r.locks {
		r.locks[i].RLock()
		defer r.locks[i].RUnlock()
	}
	var out []KV
	for _, s := range r.shards {
		kvs, err := s.Scan(from, to, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, kvs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// shardOps is one shard's slice of a batch, remembering where each op
// sat in the original request so results return in order.
type shardOps struct {
	shard int
	ops   []Op
	idx   []int
}

// Batch runs ops as one transactional request. Ops must already have
// passed ValidateOps. A batch confined to one shard is one native
// transaction; a cross-shard batch is two-phase locked in shard-id order
// (exclusive when the batch writes, shared when it only reads), with one
// native transaction per participating shard applied while all locks are
// held.
func (r *Router) Batch(ops []Op) ([]OpResult, error) {
	groups := map[int]*shardOps{}
	order := []int{}
	writes := false
	for i, op := range ops {
		s := r.ShardFor(op.Key)
		g, ok := groups[s]
		if !ok {
			g = &shardOps{shard: s}
			groups[s] = g
			order = append(order, s)
		}
		g.ops = append(g.ops, op)
		g.idx = append(g.idx, i)
		if op.Kind != "get" {
			writes = true
		}
	}
	if len(order) == 1 {
		// Single shard: the native transaction is the atomicity story.
		return r.shards[order[0]].Apply(ops)
	}
	sort.Ints(order)
	// Phase 1: acquire every participant's lock in ascending shard id.
	for _, s := range order {
		if writes {
			r.locks[s].Lock()
		} else {
			r.locks[s].RLock()
		}
	}
	// Phase 2: apply, then release everything. (Engine-level aborts —
	// only possible when an admission budget is installed — can leave a
	// prefix of shards committed; the redo-log roadmap item is the
	// durable fix, and the serving tier does not install budgets.)
	defer func() {
		for _, s := range order {
			if writes {
				r.locks[s].Unlock()
			} else {
				r.locks[s].RUnlock()
			}
		}
	}()
	res := make([]OpResult, len(ops))
	for _, s := range order {
		g := groups[s]
		sub, err := r.shards[s].Apply(g.ops)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		for j, oi := range g.idx {
			res[oi] = sub[j]
		}
	}
	return res, nil
}
