package server

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

func bothBackends(t *testing.T, f func(t *testing.T, b Backend)) {
	t.Run("stm", func(t *testing.T) { f(t, NewSTMBackend()) })
	t.Run("mvstm", func(t *testing.T) { f(t, NewMVSTMBackend()) })
}

func TestBackendOpSemantics(t *testing.T) {
	bothBackends(t, func(t *testing.T, b Backend) {
		res, err := b.Apply([]Op{
			{Kind: "get", Key: "a"},
			{Kind: "put", Key: "a", Value: "hello"},
			{Kind: "get", Key: "a"},
			{Kind: "add", Key: "n", Delta: 7},
			{Kind: "add", Key: "n", Delta: -2},
			{Kind: "add", Key: "a", Delta: 3}, // non-numeric reads as 0
			{Kind: "delete", Key: "a"},
			{Kind: "delete", Key: "a"},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []OpResult{
			{Key: "a", Found: false},
			{Key: "a", Found: true, Value: "hello"},
			{Key: "a", Found: true, Value: "hello"}, // read-your-writes inside one batch
			{Key: "n", Found: true, Value: "7"},
			{Key: "n", Found: true, Value: "5"},
			{Key: "a", Found: true, Value: "3"},
			{Key: "a", Found: true},
			{Key: "a", Found: false},
		}
		for i := range want {
			if res[i] != want[i] {
				t.Errorf("op %d = %+v, want %+v", i, res[i], want[i])
			}
		}
		if v, ok, _ := b.Get("n"); !ok || v != "5" {
			t.Fatalf("Get n = (%q, %v) after batch, want (5, true)", v, ok)
		}
		if n, _ := b.Len(); n != 1 {
			t.Fatalf("Len = %d, want 1 (only n survives)", n)
		}
	})
}

func TestBackendScanOrderAndLimit(t *testing.T) {
	bothBackends(t, func(t *testing.T, b Backend) {
		var ops []Op
		for i := 9; i >= 0; i-- { // inserted in reverse, scanned in order
			ops = append(ops, Op{Kind: "put", Key: fmt.Sprintf("k%d", i), Value: strconv.Itoa(i)})
		}
		if _, err := b.Apply(ops); err != nil {
			t.Fatal(err)
		}
		kvs, err := b.Scan("k2", "k7", 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != 5 {
			t.Fatalf("scan [k2,k7) = %d keys, want 5", len(kvs))
		}
		for i, kv := range kvs {
			if want := fmt.Sprintf("k%d", 2+i); kv.Key != want {
				t.Fatalf("scan[%d] = %q, want %q", i, kv.Key, want)
			}
		}
		if kvs, _ = b.Scan("", "", 3); len(kvs) != 3 || kvs[0].Key != "k0" {
			t.Fatalf("limited full scan = %d keys starting %q, want 3 from k0", len(kvs), kvs[0].Key)
		}
	})
}

// TestBackendApplyIsAtomic hammers one backend with conflicting add
// batches and concurrent snapshot reads; the engine's native transaction
// must keep the two counters' sum constant.
func TestBackendApplyIsAtomic(t *testing.T) {
	bothBackends(t, func(t *testing.T, b Backend) {
		if _, err := b.Apply([]Op{{Kind: "add", Key: "x", Delta: 100}, {Kind: "add", Key: "y", Delta: 100}}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if _, err := b.Apply([]Op{
						{Kind: "add", Key: "x", Delta: -1},
						{Kind: "add", Key: "y", Delta: 1},
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		res, err := b.Apply([]Op{{Kind: "get", Key: "x"}, {Kind: "get", Key: "y"}})
		if err != nil {
			t.Fatal(err)
		}
		x, _ := strconv.Atoi(res[0].Value)
		y, _ := strconv.Atoi(res[1].Value)
		if x+y != 200 {
			t.Fatalf("x+y = %d+%d = %d, want 200", x, y, x+y)
		}
		if x != 100-800 {
			t.Fatalf("x = %d, want %d (4 workers × 200 decrements)", x, 100-800)
		}
	})
}

func TestValidateOps(t *testing.T) {
	if err := ValidateOps(nil); err == nil {
		t.Error("empty batch validated")
	}
	if err := ValidateOps([]Op{{Kind: "frobnicate", Key: "k"}}); err == nil {
		t.Error("unknown kind validated")
	}
	if err := ValidateOps([]Op{{Kind: "get"}}); err == nil {
		t.Error("empty key validated")
	}
	if err := ValidateOps([]Op{{Kind: "get", Key: "a"}, {Kind: "add", Key: "b", Delta: -1}}); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
}

func TestRouterShardingIsStable(t *testing.T) {
	r, err := NewRouter(8, "stm")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%d", i)
		s := r.ShardFor(k)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardFor(%q) = %d, out of range", k, s)
		}
		if s != r.ShardFor(k) {
			t.Fatalf("ShardFor(%q) unstable", k)
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Fatalf("1000 keys hit only %d/8 shards", len(seen))
	}
}

func TestRouterRejectsBadConfig(t *testing.T) {
	if _, err := NewRouter(0, "stm"); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewRouter(2, "redis"); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestRouterBatchResultOrder: a cross-shard batch's results must come
// back in request order even though ops are regrouped per shard.
func TestRouterBatchResultOrder(t *testing.T) {
	r, err := NewRouter(4, "stm")
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for i := 0; i < 20; i++ {
		ops = append(ops, Op{Kind: "put", Key: fmt.Sprintf("rk%02d", i), Value: strconv.Itoa(i)})
	}
	if _, err := r.Batch(ops); err != nil {
		t.Fatal(err)
	}
	var gets []Op
	for i := 19; i >= 0; i-- {
		gets = append(gets, Op{Kind: "get", Key: fmt.Sprintf("rk%02d", i)})
	}
	res, err := r.Batch(gets)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range res {
		if want := strconv.Itoa(19 - i); rr.Value != want {
			t.Fatalf("result %d = %q, want %q (per-shard regrouping scrambled order)", i, rr.Value, want)
		}
	}
}
