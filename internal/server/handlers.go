package server

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// handleGet serves GET /get?key=K.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing key")
		return
	}
	v, ok, err := s.router.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "value": v, "found": ok})
}

// handlePut serves POST /put {"key": K, "value": V}.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Key   string `json:"key"`
		Value string `json:"value"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Key == "" {
		writeError(w, http.StatusBadRequest, "want JSON body {key, value} with non-empty key")
		return
	}
	if _, err := s.router.Batch([]Op{{Kind: "put", Key: req.Key, Value: req.Value}}); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleDelete serves POST /delete {"key": K}.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Key string `json:"key"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Key == "" {
		writeError(w, http.StatusBadRequest, "want JSON body {key} with non-empty key")
		return
	}
	res, err := s.router.Batch([]Op{{Kind: "delete", Key: req.Key}})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"found": res[0].Found})
}

// handleScan serves GET /scan?from=A&to=B&limit=N: the half-open ordered
// range [from, to), merged across shards; empty to means "to the end".
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	kvs, err := s.router.Scan(q.Get("from"), q.Get("to"), limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"kvs": kvs, "count": len(kvs)})
}

// handleBatch serves POST /batch {"ops": [{kind, key, value?, delta?}]}:
// every op in one transactional request, atomic across shards.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Ops []Op `json:"ops"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "want JSON body {ops: [...]}")
		return
	}
	if err := ValidateOps(req.Ops); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := s.router.Batch(req.Ops)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": res})
}

// handleStats serves GET /stats: engine counters (including the
// abort-reason taxonomy), shard sizes, the per-endpoint latency/error
// summary the metrics middleware collects, and — when profiling is on —
// the hottest contention units from the sketch.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	engine, lens := s.router.Stats()
	payload := map[string]any{
		"engine":     s.engine,
		"shards":     s.router.NumShards(),
		"shard_keys": lens,
		"counters":   engine,
		"endpoints":  s.metrics.snapshot(),
	}
	if s.sketch != nil {
		payload["hot_keys"] = s.sketch.Top(10)
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleHealthz serves GET /healthz for load balancers and smoke tests.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
