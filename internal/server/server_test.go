package server

// httptest-driven integration suite: the serving tier's three promises —
// conservation across concurrent transfer batches, cross-shard atomicity
// (no reader ever observes half a batch), and clean 429 refusals — each
// exercised over real HTTP against both engines.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
)

// testClient wraps an httptest server with the JSON plumbing the tests
// would otherwise repeat.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, cfg Config) *testClient {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return &testClient{t: t, srv: srv}
}

// do issues a request and decodes the JSON response into out (ignored
// when nil), returning the HTTP status.
func (c *testClient) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (c *testClient) batch(ops []Op) ([]OpResult, int) {
	c.t.Helper()
	var resp struct {
		Results []OpResult `json:"results"`
	}
	code := c.do("POST", "/batch", map[string]any{"ops": ops}, &resp)
	return resp.Results, code
}

// bothEngines runs f once per engine so every integration property is
// pinned on stm and mvstm alike.
func bothEngines(t *testing.T, f func(t *testing.T, engine string)) {
	for _, engine := range []string{"stm", "mvstm"} {
		t.Run(engine, func(t *testing.T) { f(t, engine) })
	}
}

func TestKVRoundTrip(t *testing.T) {
	bothEngines(t, func(t *testing.T, engine string) {
		c := newTestClient(t, Config{Shards: 4, Engine: engine})
		if code := c.do("POST", "/put", map[string]string{"key": "alpha", "value": "1"}, nil); code != http.StatusOK {
			t.Fatalf("put: status %d", code)
		}
		var got struct {
			Value string `json:"value"`
			Found bool   `json:"found"`
		}
		if code := c.do("GET", "/get?key=alpha", nil, &got); code != http.StatusOK {
			t.Fatalf("get: status %d", code)
		}
		if !got.Found || got.Value != "1" {
			t.Fatalf("get alpha = (%q, %v), want (1, true)", got.Value, got.Found)
		}
		var del struct {
			Found bool `json:"found"`
		}
		c.do("POST", "/delete", map[string]string{"key": "alpha"}, &del)
		if !del.Found {
			t.Fatal("delete did not find the key it just stored")
		}
		if c.do("GET", "/get?key=alpha", nil, &got); got.Found {
			t.Fatal("key survived delete")
		}
		if code := c.do("GET", "/get", nil, nil); code != http.StatusBadRequest {
			t.Fatalf("get without key: status %d, want 400", code)
		}
	})
}

func TestScanMergesShardsInOrder(t *testing.T) {
	bothEngines(t, func(t *testing.T, engine string) {
		c := newTestClient(t, Config{Shards: 4, Engine: engine})
		const n = 40
		var ops []Op
		for i := 0; i < n; i++ {
			ops = append(ops, Op{Kind: "put", Key: fmt.Sprintf("k%03d", i), Value: strconv.Itoa(i)})
		}
		if _, code := c.batch(ops); code != http.StatusOK {
			t.Fatalf("preload batch: status %d", code)
		}
		var scan struct {
			KVs   []KV `json:"kvs"`
			Count int  `json:"count"`
		}
		if code := c.do("GET", "/scan?from=k010&to=k030", nil, &scan); code != http.StatusOK {
			t.Fatalf("scan: status %d", code)
		}
		if scan.Count != 20 {
			t.Fatalf("scan [k010,k030) returned %d keys, want 20", scan.Count)
		}
		for i, kv := range scan.KVs {
			want := fmt.Sprintf("k%03d", 10+i)
			if kv.Key != want {
				t.Fatalf("scan result %d = %q, want %q (merged order broke)", i, kv.Key, want)
			}
		}
		// Limit applies after the merge, still in global order.
		if code := c.do("GET", "/scan?from=k000&limit=5", nil, &scan); code != http.StatusOK || scan.Count != 5 || scan.KVs[0].Key != "k000" {
			t.Fatalf("limited scan: status %d count %d first %q", code, scan.Count, scan.KVs[0].Key)
		}
	})
}

// crossShardKeys returns two keys that land on different shards, so the
// atomicity tests are guaranteed to exercise the 2PL path.
func crossShardKeys(t *testing.T, r *Router) (string, string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		a, b := fmt.Sprintf("acct%04d", i), fmt.Sprintf("acct%04d", i+1)
		if r.ShardFor(a) != r.ShardFor(b) {
			return a, b
		}
	}
	t.Fatal("no cross-shard key pair in 1000 tries")
	return "", ""
}

// TestBatchConservation: concurrent transfer batches move value between
// counters spread over every shard; any observed sum other than the
// initial total means a reader saw a half-applied batch or an update was
// lost.
func TestBatchConservation(t *testing.T) {
	bothEngines(t, func(t *testing.T, engine string) {
		s, err := New(Config{Shards: 4, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		c := &testClient{t: t, srv: srv}

		const (
			accounts = 8
			initial  = 1000
			workers  = 4
			transfer = 50
		)
		keys := make([]string, accounts)
		var init []Op
		for i := range keys {
			keys[i] = fmt.Sprintf("acct%d", i)
			init = append(init, Op{Kind: "add", Key: keys[i], Delta: initial})
		}
		if _, code := c.batch(init); code != http.StatusOK {
			t.Fatalf("initial funding: status %d", code)
		}
		readOps := make([]Op, accounts)
		for i, k := range keys {
			readOps[i] = Op{Kind: "get", Key: k}
		}
		sum := func(res []OpResult) int64 {
			var s int64
			for _, r := range res {
				n, _ := strconv.ParseInt(r.Value, 10, 64)
				s += n
			}
			return s
		}

		var writers, readers sync.WaitGroup
		stop := make(chan struct{})
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, code := c.batch(readOps)
				if code != http.StatusOK {
					t.Errorf("read batch: status %d", code)
					return
				}
				if got := sum(res); got != accounts*initial {
					t.Errorf("observed total %d, want %d — a reader saw a torn batch", got, accounts*initial)
					return
				}
			}
		}()
		for w := 0; w < workers; w++ {
			w := w
			writers.Add(1)
			go func() {
				defer writers.Done()
				for i := 0; i < transfer; i++ {
					from := keys[(w+i)%accounts]
					to := keys[(w+i+1+w%3)%accounts]
					if from == to {
						to = keys[(w+i+2)%accounts]
					}
					_, code := c.batch([]Op{
						{Kind: "add", Key: from, Delta: -5},
						{Kind: "add", Key: to, Delta: 5},
					})
					if code != http.StatusOK {
						t.Errorf("transfer batch: status %d", code)
						return
					}
				}
			}()
		}
		writers.Wait()
		close(stop)
		readers.Wait()

		res, code := c.batch(readOps)
		if code != http.StatusOK {
			t.Fatalf("final read: status %d", code)
		}
		if got := sum(res); got != accounts*initial {
			t.Fatalf("final total %d, want %d — an update was lost", got, accounts*initial)
		}
	})
}

// TestCrossShardAtomicity: a writer keeps both halves of a cross-shard
// pair equal, batch after batch; concurrent batch readers must never see
// the halves differ.
func TestCrossShardAtomicity(t *testing.T) {
	bothEngines(t, func(t *testing.T, engine string) {
		s, err := New(Config{Shards: 4, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		c := &testClient{t: t, srv: srv}
		ka, kb := crossShardKeys(t, s.Router())

		const rounds = 100
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done)
			for v := 0; v <= rounds; v++ {
				val := strconv.Itoa(v)
				if _, code := c.batch([]Op{
					{Kind: "put", Key: ka, Value: val},
					{Kind: "put", Key: kb, Value: val},
				}); code != http.StatusOK {
					t.Errorf("writer batch: status %d", code)
					return
				}
			}
		}()
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					res, code := c.batch([]Op{
						{Kind: "get", Key: ka},
						{Kind: "get", Key: kb},
					})
					if code != http.StatusOK {
						t.Errorf("reader batch: status %d", code)
						return
					}
					if res[0].Value != res[1].Value {
						t.Errorf("torn read: %s=%q %s=%q — observed half a cross-shard batch",
							ka, res[0].Value, kb, res[1].Value)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

// TestRateLimitRefusals: an over-limit burst must draw clean JSON 429s,
// and the client must be admitted again once the bucket refills.
func TestRateLimitRefusals(t *testing.T) {
	c := newTestClient(t, Config{Shards: 2, Engine: "stm", RatePerIP: 5})
	var refused, admitted int
	var lastErr struct {
		Error string `json:"error"`
	}
	for i := 0; i < 100; i++ {
		var out json.RawMessage
		code := c.do("GET", "/get?key=x", nil, &out)
		switch code {
		case http.StatusOK:
			admitted++
		case http.StatusTooManyRequests:
			refused++
			if err := json.Unmarshal(out, &lastErr); err != nil {
				t.Fatalf("429 body is not JSON: %v", err)
			}
		default:
			t.Fatalf("status %d, want 200 or 429", code)
		}
	}
	if admitted == 0 {
		t.Fatal("everything was refused: the bucket should admit an initial burst")
	}
	if refused == 0 {
		t.Fatal("nothing was refused: 100 rushed requests at 5/s must overflow the bucket")
	}
	if lastErr.Error == "" {
		t.Fatal("429 body carried no error field")
	}
}

func TestBatchValidation(t *testing.T) {
	c := newTestClient(t, Config{Shards: 2, Engine: "stm"})
	if _, code := c.batch([]Op{{Kind: "increment", Key: "x"}}); code != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d, want 400", code)
	}
	if _, code := c.batch(nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	if _, code := c.batch([]Op{{Kind: "put"}}); code != http.StatusBadRequest {
		t.Fatalf("empty key: status %d, want 400", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	c := newTestClient(t, Config{Shards: 3, Engine: "stm"})
	c.do("POST", "/put", map[string]string{"key": "a", "value": "1"}, nil)
	c.do("GET", "/get?key=a", nil, nil)
	var stats struct {
		Engine    string                   `json:"engine"`
		Shards    int                      `json:"shards"`
		ShardKeys []int                    `json:"shard_keys"`
		Counters  Stats                    `json:"counters"`
		Endpoints map[string]EndpointStats `json:"endpoints"`
	}
	if code := c.do("GET", "/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Engine != "stm" || stats.Shards != 3 || len(stats.ShardKeys) != 3 {
		t.Fatalf("stats header = %q/%d shards/%d lens", stats.Engine, stats.Shards, len(stats.ShardKeys))
	}
	if stats.Counters.Commits == 0 {
		t.Fatal("engine counters show zero commits after a put")
	}
	if ep := stats.Endpoints["get"]; ep.Count == 0 {
		t.Fatal("endpoint metrics did not count the get")
	}
	total := 0
	for _, n := range stats.ShardKeys {
		total += n
	}
	if total != 1 {
		t.Fatalf("shard key counts sum to %d, want 1", total)
	}
}

func TestRecoveryMiddleware(t *testing.T) {
	h := withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("500 body %q is not the JSON error shape", rec.Body.String())
	}
}
