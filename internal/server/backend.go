// Package server is the network-facing serving tier over the native
// engines: an HTTP/JSON key-value API (get/put/delete/scan and a
// multi-key transactional batch) backed by stm or mvstm containers,
// with the keyspace sharded across N independent engine instances.
//
// The package is layered the way the handlers read:
//
//	handlers (handlers.go)      — JSON in/out, one function per endpoint
//	middlewares (middleware.go) — per-IP rate limiting, panic recovery,
//	                              per-endpoint latency/error metrics
//	router (shards.go)          — key→shard hashing, cross-shard
//	                              two-phase locking in shard-id order
//	backend (backend_*.go)      — one engine instance per shard behind
//	                              the Backend interface
package server

import (
	"fmt"
	"strconv"
)

// KV is one key/value pair, as served and scanned.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Op is one operation inside a transactional batch.
//
// Kinds: "get" reads Key; "put" stores Value at Key; "delete" removes
// Key; "add" treats the value at Key as a decimal integer (missing or
// non-numeric reads as 0), adds Delta, and stores the sum — the
// conservation primitive that makes transfer-shaped batches expressible
// in a single request.
type Op struct {
	Kind  string `json:"kind"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
	Delta int64  `json:"delta,omitempty"`
}

// OpResult is the per-op outcome of a batch. Found reports presence for
// get/delete and is always true for put/add; Value carries the read
// value (get), the stored value (put), or the post-add sum (add).
type OpResult struct {
	Key   string `json:"key"`
	Found bool   `json:"found"`
	Value string `json:"value,omitempty"`
}

// Stats is the engine-counter snapshot served at /stats, unified across
// the engine packages. AbortReasons carries the per-class abort taxonomy
// under the engines' stable snake_case keys; the clock-strategy counters
// are populated where the engine maintains them (all by stm,
// ClockBlockClaims also by mvstm) and stay zero elsewhere.
type Stats struct {
	Commits      uint64            `json:"commits"`
	ROCommits    uint64            `json:"ro_commits"`
	Aborts       uint64            `json:"aborts"`
	BudgetAborts uint64            `json:"budget_aborts"`
	AbortReasons map[string]uint64 `json:"abort_reasons,omitempty"`

	Extensions       uint64 `json:"extensions,omitempty"`
	ClockIncrements  uint64 `json:"clock_increments,omitempty"`
	ClockAdoptions   uint64 `json:"clock_adoptions,omitempty"`
	ClockBlockClaims uint64 `json:"clock_block_claims,omitempty"`
	RTSAdvances      uint64 `json:"rts_advances,omitempty"`
}

// Backend is one shard's store: a single engine instance (stm or mvstm)
// holding a disjoint slice of the keyspace. Get and Scan run on the
// engine's read-only path; Apply runs every op in ONE native
// transaction, so a sub-batch routed to a shard is atomic there by
// construction — the router's job is only to make multi-shard batches
// atomic across instances.
type Backend interface {
	Get(key string) (value string, found bool, err error)
	Scan(from, to string, limit int) ([]KV, error)
	Apply(ops []Op) ([]OpResult, error)
	Len() (int, error)
	Stats() Stats
}

// ValidateOps rejects unknown op kinds and empty keys before any shard
// is touched: Apply itself never fails on op content, which is what
// keeps the shard-ordered commit loop in Router.Batch all-or-nothing.
func ValidateOps(ops []Op) error {
	if len(ops) == 0 {
		return fmt.Errorf("empty batch")
	}
	for i, op := range ops {
		switch op.Kind {
		case "get", "put", "delete", "add":
		default:
			return fmt.Errorf("op %d: unknown kind %q", i, op.Kind)
		}
		if op.Key == "" {
			return fmt.Errorf("op %d: empty key", i)
		}
	}
	return nil
}

// applyOps interprets a sub-batch against primitive accessors that the
// caller runs inside one engine transaction; both backends share it so
// the op semantics cannot drift between engines.
func applyOps(ops []Op, get func(string) (string, bool), put func(string, string), del func(string) bool) []OpResult {
	res := make([]OpResult, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case "get":
			v, ok := get(op.Key)
			res[i] = OpResult{Key: op.Key, Found: ok, Value: v}
		case "put":
			put(op.Key, op.Value)
			res[i] = OpResult{Key: op.Key, Found: true, Value: op.Value}
		case "delete":
			res[i] = OpResult{Key: op.Key, Found: del(op.Key)}
		case "add":
			cur, _ := get(op.Key)
			n, _ := strconv.ParseInt(cur, 10, 64) // missing/non-numeric reads as 0
			sum := strconv.FormatInt(n+op.Delta, 10)
			put(op.Key, sum)
			res[i] = OpResult{Key: op.Key, Found: true, Value: sum}
		}
	}
	return res
}
