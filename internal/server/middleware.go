package server

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/stm/budget"
)

// statusWriter captures the response code so the metrics middleware can
// count errors without the handlers reporting in-band.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withMetrics records per-endpoint latency and error counts into the
// set's histogram for name.
func withMetrics(m *metricsSet, name string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		m.observe(name, time.Since(start), sw.status >= 400)
	})
}

// withRecovery turns a handler panic into a 500 instead of killing the
// connection (and, under some servers, the process).
func withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// rateLimiter holds one fixed-rate token bucket per client IP, built on
// budget.NewRateLimiter — the same Controller type the engines use for
// admission control, in its degenerate fixed-rate form. TryAdmit keeps
// refusals non-blocking: an over-limit client gets an immediate 429, not
// a queued wait that would tie up a server goroutine.
type rateLimiter struct {
	rate float64
	mu   sync.Mutex
	per  map[string]*budget.Controller
}

func newRateLimiter(ratePerIP float64) *rateLimiter {
	return &rateLimiter{rate: ratePerIP, per: make(map[string]*budget.Controller)}
}

func (rl *rateLimiter) admit(remoteAddr string) bool {
	ip, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		ip = remoteAddr
	}
	rl.mu.Lock()
	c, ok := rl.per[ip]
	if !ok {
		c = budget.NewRateLimiter(rl.rate)
		rl.per[ip] = c
	}
	rl.mu.Unlock()
	return c.TryAdmit()
}

// withRateLimit refuses over-limit clients with 429. A nil limiter
// (rate <= 0 in the config) disables limiting.
func withRateLimit(rl *rateLimiter, next http.Handler) http.Handler {
	if rl == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !rl.admit(r.RemoteAddr) {
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// writeJSON and writeError are the only two response shapes the API has.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
