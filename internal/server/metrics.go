package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histogram is a lock-free log2 latency histogram: bucket i counts
// observations in [2^i, 2^(i+1)) microseconds. Coarse, but allocation-
// free on the request path and good enough for the percentile summary
// /stats serves.
type histogram struct {
	buckets [32]atomic.Uint64
	count   atomic.Uint64
	errs    atomic.Uint64
	sumUS   atomic.Uint64
}

func (h *histogram) observe(d time.Duration, isErr bool) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us) // 0µs → bucket 0, [2^i,2^(i+1))µs → bucket i+1
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	if isErr {
		h.errs.Add(1)
	}
}

// quantile returns the upper bound (µs) of the bucket holding the q-th
// observation — an overestimate by at most 2×, which is the resolution
// this histogram trades for zero allocation.
func (h *histogram) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 1
			}
			return 1 << uint(i)
		}
	}
	return 1 << uint(len(h.buckets)-1)
}

// EndpointStats is the JSON shape of one endpoint's counters in /stats.
type EndpointStats struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	MeanUS uint64 `json:"mean_us"`
	P50US  uint64 `json:"p50_us"`
	P99US  uint64 `json:"p99_us"`
}

func (h *histogram) snapshot() EndpointStats {
	n := h.count.Load()
	s := EndpointStats{
		Count:  n,
		Errors: h.errs.Load(),
		P50US:  h.quantile(0.50),
		P99US:  h.quantile(0.99),
	}
	if n > 0 {
		s.MeanUS = h.sumUS.Load() / n
	}
	return s
}

// metricsSet holds one histogram per endpoint, fixed at construction so
// the hot path is an index, not a map lookup under a lock.
type metricsSet struct {
	names []string
	hists []*histogram
	index map[string]int
}

func newMetricsSet(names ...string) *metricsSet {
	m := &metricsSet{index: make(map[string]int, len(names))}
	for _, n := range names {
		m.index[n] = len(m.hists)
		m.names = append(m.names, n)
		m.hists = append(m.hists, &histogram{})
	}
	return m
}

func (m *metricsSet) observe(name string, d time.Duration, isErr bool) {
	if i, ok := m.index[name]; ok {
		m.hists[i].observe(d, isErr)
	}
}

func (m *metricsSet) snapshot() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(m.names))
	for i, n := range m.names {
		out[n] = m.hists[i].snapshot()
	}
	return out
}
