package server

import (
	"time"

	"repro/internal/loghist"
)

// EndpointStats is the JSON shape of one endpoint's counters in /stats.
// Quantiles are bucket upper bounds from the shared log2 histogram — an
// overestimate by at most 2×, the resolution traded for an
// allocation-free request path.
type EndpointStats struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	MeanUS uint64 `json:"mean_us"`
	P50US  uint64 `json:"p50_us"`
	P95US  uint64 `json:"p95_us"`
	P99US  uint64 `json:"p99_us"`
}

// metricsSet holds one histogram per endpoint, fixed at construction so
// the hot path is an index, not a map lookup under a lock. The
// histograms are repro/internal/loghist — the same type the engines use
// for commit latency, so bucket semantics cannot drift between the
// serving tier's /metrics exposition and the engines'.
type metricsSet struct {
	names []string
	hists []*loghist.Hist
	index map[string]int
}

func newMetricsSet(names ...string) *metricsSet {
	m := &metricsSet{index: make(map[string]int, len(names))}
	for _, n := range names {
		m.index[n] = len(m.hists)
		m.names = append(m.names, n)
		m.hists = append(m.hists, &loghist.Hist{})
	}
	return m
}

func (m *metricsSet) observe(name string, d time.Duration, isErr bool) {
	if i, ok := m.index[name]; ok {
		m.hists[i].ObserveDuration(d, isErr)
	}
}

func (m *metricsSet) snapshot() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(m.names))
	for i, n := range m.names {
		s := m.hists[i].Snapshot()
		out[n] = EndpointStats{
			Count:  s.Count,
			Errors: s.Errors,
			MeanUS: s.Mean(),
			P50US:  s.Quantile(0.50),
			P95US:  s.Quantile(0.95),
			P99US:  s.Quantile(0.99),
		}
	}
	return out
}
