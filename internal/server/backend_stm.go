package server

import (
	"repro/stm"
)

// stmBackend serves a shard from an stm.OrderedMap. Point reads and
// scans use the map's snapshot fast paths (no transaction, no read-set);
// Apply runs the whole sub-batch in one stm.Atomically call, which the
// TL2 commit pipeline makes atomic and opaque.
type stmBackend struct {
	m *stm.OrderedMap[string]
}

// NewSTMBackend returns a shard backend over a fresh stm.OrderedMap.
func NewSTMBackend() Backend {
	return &stmBackend{m: stm.NewOrderedMap[string]()}
}

// newSTMBackendLabeled additionally labels every inserted key in the
// hot-Var registry (keys are hash-partitioned so no prefix is needed for
// uniqueness), making an installed contention sketch report the map keys
// transactions fought over instead of anonymous Var ids.
func newSTMBackendLabeled() Backend {
	m := stm.NewOrderedMap[string]()
	m.EnableKeyLabels("")
	return &stmBackend{m: m}
}

func (b *stmBackend) Get(key string) (string, bool, error) {
	v, ok := b.m.SnapshotGet(key)
	return v, ok, nil
}

func (b *stmBackend) Scan(from, to string, limit int) ([]KV, error) {
	var out []KV
	b.m.SnapshotRange(from, to, func(k, v string) bool {
		out = append(out, KV{Key: k, Value: v})
		return limit <= 0 || len(out) < limit
	})
	return out, nil
}

func (b *stmBackend) Apply(ops []Op) ([]OpResult, error) {
	var res []OpResult
	err := stm.Atomically(func(tx *stm.Tx) error {
		res = applyOps(ops,
			func(k string) (string, bool) { return b.m.Get(tx, k) },
			func(k, v string) { b.m.Put(tx, k, v) },
			func(k string) bool { return b.m.Delete(tx, k) },
		)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (b *stmBackend) Len() (int, error) {
	return b.m.SnapshotLen(), nil
}

func (b *stmBackend) Stats() Stats {
	s := stm.ReadStats()
	return Stats{
		Commits:          s.Commits,
		ROCommits:        s.ROCommits,
		Aborts:           s.Aborts,
		BudgetAborts:     s.BudgetAborts,
		AbortReasons:     s.AbortReasons.Map(),
		Extensions:       s.Extensions,
		ClockIncrements:  s.ClockIncrements,
		ClockAdoptions:   s.ClockAdoptions,
		ClockBlockClaims: s.ClockBlockClaims,
		RTSAdvances:      s.RTSAdvances,
	}
}
