package server

// Golden-format test for GET /metrics: the body must be valid Prometheus
// text exposition (version 0.0.4) — every sample preceded by HELP/TYPE
// for its family, label values escaped per the format rules, histogram
// buckets cumulative and monotone with a final +Inf equal to _count —
// and must carry the series the observability tier promises: per-reason
// abort counters, per-endpoint request histograms, and hot-key gauges.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// promSample is one parsed non-comment exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromLine parses `name{l="v",...} value` (labels optional),
// validating label-name syntax and that only \\ \" \n escapes appear.
func parsePromLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	i := 0
	for i < len(line) && (isMetricChar(line[i]) || line[i] == ':') {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("no metric name")
	}
	s.name = line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			j := i
			for j < len(line) && isMetricChar(line[j]) {
				j++
			}
			if j == i {
				return s, fmt.Errorf("empty label name at %d", i)
			}
			lname := line[i:j]
			if j+1 >= len(line) || line[j] != '=' || line[j+1] != '"' {
				return s, fmt.Errorf("label %s not followed by =\"", lname)
			}
			j += 2
			var val strings.Builder
			for {
				if j >= len(line) {
					return s, fmt.Errorf("unterminated label value for %s", lname)
				}
				c := line[j]
				if c == '"' {
					j++
					break
				}
				if c == '\n' {
					return s, fmt.Errorf("raw newline in label value for %s", lname)
				}
				if c == '\\' {
					if j+1 >= len(line) {
						return s, fmt.Errorf("dangling backslash in %s", lname)
					}
					switch line[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape \\%c in %s", line[j+1], lname)
					}
					j += 2
					continue
				}
				val.WriteByte(c)
				j++
			}
			s.labels[lname] = val.String()
			if j < len(line) && line[j] == ',' {
				i = j + 1
				continue
			}
			if j < len(line) && line[j] == '}' {
				i = j + 1
				break
			}
			return s, fmt.Errorf("expected , or } at %d", j)
		}
	}
	rest := strings.TrimSpace(line[i:])
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.value = v
	return s, nil
}

func isMetricChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// familyOf strips the histogram sample suffixes back to the family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// seriesKey identifies one histogram series independent of le.
func seriesKey(s promSample) string {
	parts := make([]string, 0, len(s.labels))
	for k, v := range s.labels {
		if k != "le" {
			parts = append(parts, k+"="+v)
		}
	}
	// Two labels max in this exposition; order is stable per line anyway.
	if len(parts) == 2 && parts[0] > parts[1] {
		parts[0], parts[1] = parts[1], parts[0]
	}
	return familyOf(s.name) + "|" + strings.Join(parts, ",")
}

func TestMetricsExposition(t *testing.T) {
	srv, err := New(Config{Shards: 2, Engine: "stm", ProfileK: 8, ProfileSample: 1, LatencySample: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"key":"k%02d","value":"v%d"}`, i, i)
		if resp, err := http.Post(ts.URL+"/put", "application/json", strings.NewReader(body)); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
		}
	}
	for _, path := range []string{"/get?key=k00", "/get", "/scan?from=a&to=z", "/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Force a hot-key series with every escapable character in its label:
	// the gauge renders straight from the sketch, so observing directly is
	// equivalent to an engine abort on a labeled Var.
	nastyID := telemetry.NamespaceSTM | (1<<59 - 1)
	telemetry.SetLabel(nastyID, "he\"llo\\wo\nrld")
	srv.Sketch().Observe(nastyID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition does not end with a newline")
	}
	if !strings.Contains(body, `key="he\"llo\\wo\nrld"`) {
		t.Fatal("hot-key label not escaped per exposition rules")
	}

	helped := map[string]bool{}
	typed := map[string]string{}
	samples := []promSample{}
	lastBucket := map[string]float64{} // seriesKey → cumulative count
	lastLE := map[string]float64{}     // seriesKey → le bound
	infBucket := map[string]float64{}
	countVal := map[string]float64{}
	for ln, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("line %d: HELP without docstring: %q", ln+1, line)
			}
			helped[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, f[3])
			}
			typed[f[2]] = f[3]
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			t.Fatalf("line %d: %v (%q)", ln+1, err, line)
		}
		fam := familyOf(s.name)
		if !helped[fam] || typed[fam] == "" {
			t.Fatalf("line %d: sample %s before HELP/TYPE for %s", ln+1, s.name, fam)
		}
		if strings.HasSuffix(s.name, "_bucket") {
			if typed[fam] != "histogram" {
				t.Fatalf("line %d: _bucket sample in non-histogram family %s", ln+1, fam)
			}
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("line %d: bucket without le label", ln+1)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("line %d: bad le %q", ln+1, le)
			}
			k := seriesKey(s)
			if prev, seen := lastLE[k]; seen && bound <= prev {
				t.Fatalf("line %d: le %v not increasing after %v in %s", ln+1, bound, prev, k)
			}
			if s.value < lastBucket[k] {
				t.Fatalf("line %d: bucket count %v below cumulative %v in %s", ln+1, s.value, lastBucket[k], k)
			}
			lastLE[k], lastBucket[k] = bound, s.value
			if le == "+Inf" {
				infBucket[k] = s.value
			}
		}
		if strings.HasSuffix(s.name, "_count") && typed[fam] == "histogram" {
			countVal[seriesKey(s)] = s.value
		}
		samples = append(samples, s)
	}
	for k, inf := range infBucket {
		if countVal[k] != inf {
			t.Fatalf("series %s: +Inf bucket %v != _count %v", k, inf, countVal[k])
		}
	}
	for k := range countVal {
		if _, ok := infBucket[k]; !ok {
			t.Fatalf("series %s: histogram without +Inf bucket", k)
		}
	}

	byReason := map[string]bool{}
	endpoints := map[string]float64{}
	for _, s := range samples {
		switch s.name {
		case "tm_aborts_by_reason_total":
			byReason[s.labels["reason"]] = true
		case "tm_http_requests_total":
			endpoints[s.labels["endpoint"]] = s.value
		}
	}
	for _, r := range []string{"read_certify", "commit_validation", "lock_busy", "extension", "budget", "explicit_retry"} {
		if !byReason[r] {
			t.Fatalf("abort taxonomy missing reason %q (got %v)", r, byReason)
		}
	}
	if endpoints["put"] < 20 || endpoints["get"] < 2 {
		t.Fatalf("endpoint request counters missing traffic: %v", endpoints)
	}
	// The bad /get (missing key) must have surfaced as an endpoint error.
	found := false
	for _, s := range samples {
		if s.name == "tm_http_request_errors_total" && s.labels["endpoint"] == "get" && s.value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("400 on /get not counted in tm_http_request_errors_total")
	}
}

func TestPromEscape(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := promEscape(in); got != want {
		t.Fatalf("promEscape(%q) = %q, want %q", in, got, want)
	}
	if got := promEscape("plain"); got != "plain" {
		t.Fatalf("promEscape(plain) = %q", got)
	}
}
