package server

import (
	"fmt"
	"sort"

	"repro/stm/mvstm"
)

// mvstmBackendBuckets is the hash-bucket count per shard. Buckets are
// copy-on-write sorted slices inside mvstm Vars, so writes republish a
// bucket as a new version and readers pin a snapshot — the multi-version
// engine's abort-free read path does the isolation work.
const mvstmBackendBuckets = 256

// mvstmBackend serves a shard from mvstm Vars. mvstm ships no container
// types, so the backend builds its own: a fixed array of buckets, each a
// sorted []KV behind one Var. Point reads use Var.Load (pinned peek, no
// transaction); scans read every bucket in one read-only snapshot
// transaction and merge; Apply copy-on-writes the touched buckets in one
// mvstm.Atomically call.
type mvstmBackend struct {
	buckets [mvstmBackendBuckets]*mvstm.Var[[]KV]
}

// NewMVSTMBackend returns a shard backend over fresh mvstm version chains.
func NewMVSTMBackend() Backend {
	return newMVSTMBackend(-1)
}

// newMVSTMBackend builds the bucket array; a non-negative shard index
// labels each bucket Var shard<i>.bucket<j> in the hot-Var registry —
// buckets are this backend's contention unit (copy-on-write slices), so
// hot-key reports name the bucket, not an individual key.
func newMVSTMBackend(shard int) Backend {
	b := &mvstmBackend{}
	for i := range b.buckets {
		b.buckets[i] = mvstm.NewVar[[]KV](nil)
		if shard >= 0 {
			b.buckets[i].Label(fmt.Sprintf("shard%d.bucket%d", shard, i))
		}
	}
	return b
}

func (b *mvstmBackend) bucketFor(key string) *mvstm.Var[[]KV] {
	return b.buckets[fnv32(key)%mvstmBackendBuckets]
}

// search locates key in a sorted bucket slice.
func search(kvs []KV, key string) (int, bool) {
	i := sort.Search(len(kvs), func(i int) bool { return kvs[i].Key >= key })
	return i, i < len(kvs) && kvs[i].Key == key
}

func (b *mvstmBackend) Get(key string) (string, bool, error) {
	kvs := b.bucketFor(key).Load()
	if i, ok := search(kvs, key); ok {
		return kvs[i].Value, true, nil
	}
	return "", false, nil
}

func (b *mvstmBackend) Scan(from, to string, limit int) ([]KV, error) {
	var out []KV
	err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		out = out[:0]
		for _, bk := range b.buckets {
			for _, kv := range bk.Get(tx) {
				if kv.Key >= from && (to == "" || kv.Key < to) {
					out = append(out, kv)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

func (b *mvstmBackend) Apply(ops []Op) ([]OpResult, error) {
	var res []OpResult
	err := mvstm.Atomically(func(tx *mvstm.Tx) error {
		res = applyOps(ops,
			func(k string) (string, bool) {
				kvs := b.bucketFor(k).Get(tx)
				if i, ok := search(kvs, k); ok {
					return kvs[i].Value, true
				}
				return "", false
			},
			func(k, v string) {
				bk := b.bucketFor(k)
				kvs := bk.Get(tx)
				i, ok := search(kvs, k)
				next := make([]KV, len(kvs), len(kvs)+1)
				copy(next, kvs)
				if ok {
					next[i] = KV{Key: k, Value: v}
				} else {
					next = append(next, KV{})
					copy(next[i+1:], next[i:])
					next[i] = KV{Key: k, Value: v}
				}
				bk.Set(tx, next)
			},
			func(k string) bool {
				bk := b.bucketFor(k)
				kvs := bk.Get(tx)
				i, ok := search(kvs, k)
				if !ok {
					return false
				}
				next := make([]KV, 0, len(kvs)-1)
				next = append(next, kvs[:i]...)
				next = append(next, kvs[i+1:]...)
				bk.Set(tx, next)
				return true
			},
		)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (b *mvstmBackend) Len() (int, error) {
	n := 0
	err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
		n = 0
		for _, bk := range b.buckets {
			n += len(bk.Get(tx))
		}
		return nil
	})
	return n, err
}

func (b *mvstmBackend) Stats() Stats {
	s := mvstm.ReadStats()
	return Stats{
		Commits:          s.Commits,
		ROCommits:        s.ROCommits,
		Aborts:           s.Aborts,
		BudgetAborts:     s.BudgetAborts,
		AbortReasons:     s.AbortReasons.Map(),
		ClockBlockClaims: s.ClockBlockClaims,
	}
}
