package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/loghist"
	"repro/stm"
	"repro/stm/mvstm"
)

// This file renders GET /metrics in the Prometheus text exposition
// format (version 0.0.4) with no client-library dependency: every series
// is already maintained by the engines' striped counters, the shared
// loghist histograms, and the contention sketch, so exposition is a
// read-and-format pass — no metric state lives here.

// promEscape escapes a label value per the exposition rules: backslash,
// double quote and newline; everything else passes through as raw UTF-8.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promHeader writes one family's HELP and TYPE lines.
func promHeader(b *strings.Builder, name, help, kind string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// promHistSeries writes one label set's cumulative buckets, sum and
// count for an already-headed histogram family. The +Inf bucket and
// _count are both the accumulated bucket total, which keeps the
// exposition internally consistent even though loghist snapshots are
// per-bucket atomic rather than a cross-bucket cut.
func promHistSeries(b *strings.Builder, name, labels string, s loghist.Snapshot) {
	var cum uint64
	for i := 0; i < loghist.NBuckets-1; i++ {
		cum += s.Buckets[i]
		fmt.Fprintf(b, "%s_bucket{%s,le=\"%d\"} %d\n", name, labels, loghist.BucketMax(i), cum)
	}
	cum += s.Buckets[loghist.NBuckets-1]
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(b, "%s_sum{%s} %d\n", name, labels, s.Sum)
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, cum)
}

// handleMetrics serves GET /metrics: engine counters and the
// abort-reason taxonomy, per-shard key gauges, hot-key contention gauges
// (when profiling is on), per-endpoint request histograms, and the
// engine's sampled commit-latency histograms (when sampling is on).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, lens := s.router.Stats()
	var b strings.Builder
	engineLabel := fmt.Sprintf("engine=\"%s\"", promEscape(s.engine))

	counter := func(name, help string, v uint64) {
		promHeader(&b, name, help, "counter")
		fmt.Fprintf(&b, "%s{%s} %d\n", name, engineLabel, v)
	}
	counter("tm_commits_total", "Committed transactions, including read-only commits.", st.Commits)
	counter("tm_ro_commits_total", "Commits on the engine's read-only fast path.", st.ROCommits)
	counter("tm_aborts_total", "Failed transaction attempts.", st.Aborts)
	counter("tm_budget_aborts_total", "Transactions refused by the admission budget (subset of aborts).", st.BudgetAborts)
	counter("tm_extensions_total", "Successful read-timestamp extensions (stm engine).", st.Extensions)
	counter("tm_clock_increments_total", "Published global-clock increments (stm engine).", st.ClockIncrements)
	counter("tm_clock_adoptions_total", "GV4/GV6 commits that adopted the race winner's tick (stm engine).", st.ClockAdoptions)
	counter("tm_clock_block_claims_total", "GV7 clock-block claims on the allocator word.", st.ClockBlockClaims)
	counter("tm_rts_advances_total", "TicToc read-timestamp advances (stm engine).", st.RTSAdvances)

	promHeader(&b, "tm_aborts_by_reason_total", "Aborts classified at the site that killed the attempt.", "counter")
	reasons := make([]string, 0, len(st.AbortReasons))
	for k := range st.AbortReasons {
		reasons = append(reasons, k)
	}
	sort.Strings(reasons)
	for _, k := range reasons {
		fmt.Fprintf(&b, "tm_aborts_by_reason_total{%s,reason=\"%s\"} %d\n", engineLabel, promEscape(k), st.AbortReasons[k])
	}

	promHeader(&b, "tm_shard_keys", "Keys resident per shard.", "gauge")
	for i, n := range lens {
		fmt.Fprintf(&b, "tm_shard_keys{shard=\"%d\"} %d\n", i, n)
	}

	if s.sketch != nil {
		promHeader(&b, "tm_hot_key_aborts", "Sketch estimate of aborts attributed to the hottest contention units; overestimates by at most admitted/K.", "gauge")
		for _, e := range s.sketch.Top(16) {
			key := e.Label
			if key == "" {
				key = fmt.Sprintf("var-%d", e.ID)
			}
			fmt.Fprintf(&b, "tm_hot_key_aborts{%s,key=\"%s\"} %d\n", engineLabel, promEscape(key), e.Count)
		}
	}

	promHeader(&b, "tm_http_requests_total", "HTTP requests served, by endpoint.", "counter")
	for i, name := range s.metrics.names {
		fmt.Fprintf(&b, "tm_http_requests_total{endpoint=\"%s\"} %d\n", promEscape(name), s.metrics.hists[i].Count())
	}
	promHeader(&b, "tm_http_request_errors_total", "HTTP requests that returned a 4xx/5xx status, by endpoint.", "counter")
	for i, name := range s.metrics.names {
		fmt.Fprintf(&b, "tm_http_request_errors_total{endpoint=\"%s\"} %d\n", promEscape(name), s.metrics.hists[i].Errors())
	}
	promHeader(&b, "tm_http_request_duration_us", "HTTP request latency in microseconds, by endpoint.", "histogram")
	for i, name := range s.metrics.names {
		promHistSeries(&b, "tm_http_request_duration_us", fmt.Sprintf("endpoint=\"%s\"", promEscape(name)), s.metrics.hists[i].Snapshot())
	}

	var lat, att *loghist.Hist
	switch s.engine {
	case "stm":
		lat, att = stm.LatencyHists()
	case "mvstm":
		lat, att = mvstm.LatencyHists()
	}
	if lat != nil {
		promHeader(&b, "tm_commit_latency_us", "Sampled wall-clock microseconds from first attempt to successful commit (see Config.LatencySample).", "histogram")
		promHistSeries(&b, "tm_commit_latency_us", engineLabel, lat.Snapshot())
		promHeader(&b, "tm_commit_attempts", "Sampled attempts burned per successful commit (1 = first try).", "histogram")
		promHistSeries(&b, "tm_commit_attempts", engineLabel, att.Snapshot())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
