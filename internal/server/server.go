package server

import (
	"net/http"

	"repro/internal/telemetry"
	"repro/stm"
	"repro/stm/mvstm"
)

// Config sizes a Server.
type Config struct {
	// Shards is the number of independent engine instances the keyspace
	// is hashed across (minimum 1).
	Shards int
	// Engine selects the per-shard backend: "stm" (TL2 OrderedMap) or
	// "mvstm" (multi-version buckets).
	Engine string
	// RatePerIP caps each client IP at this many requests per second via
	// a fixed-rate token bucket; 0 or negative disables limiting.
	RatePerIP float64
	// ProfileK, when positive, installs a hot-Var contention sketch with
	// this many slots into the selected engine and labels the shards'
	// contention units, so /stats and /metrics report the keys (stm) or
	// buckets (mvstm) transactions abort on. The engine hook is
	// process-global, like the engines' other telemetry knobs.
	ProfileK int
	// ProfileSample admits roughly 1 in this many aborts into the sketch
	// (rounded up to a power of two; <= 1 admits every abort). Only
	// meaningful with ProfileK > 0.
	ProfileSample int
	// LatencySample, when positive, enables the selected engine's
	// commit-latency and attempts-per-commit sampling for roughly 1 in
	// this many transactions (rounded up to a power of two; 1 = every
	// call). The histograms feed /metrics.
	LatencySample int
}

// Server wires router, middlewares, and handlers into one http.Handler.
type Server struct {
	router  *Router
	engine  string
	metrics *metricsSet
	sketch  *telemetry.Sketch
	handler http.Handler
}

// endpointNames is the fixed metrics vocabulary; the /stats payload has
// one entry per name.
var endpointNames = []string{"get", "put", "delete", "scan", "batch", "stats", "metrics"}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Engine == "" {
		cfg.Engine = "stm"
	}
	router, err := NewRouterProfiled(cfg.Shards, cfg.Engine, cfg.ProfileK > 0)
	if err != nil {
		return nil, err
	}
	s := &Server{
		router:  router,
		engine:  cfg.Engine,
		metrics: newMetricsSet(endpointNames...),
	}
	if cfg.ProfileK > 0 {
		s.sketch = telemetry.NewSketch(cfg.ProfileK, cfg.ProfileSample)
		switch cfg.Engine {
		case "stm":
			stm.SetContentionProfiler(s.sketch)
		case "mvstm":
			mvstm.SetContentionProfiler(s.sketch)
		}
	}
	if cfg.LatencySample > 0 {
		switch cfg.Engine {
		case "stm":
			stm.SetLatencySampling(cfg.LatencySample)
		case "mvstm":
			mvstm.SetLatencySampling(cfg.LatencySample)
		}
	}
	var rl *rateLimiter
	if cfg.RatePerIP > 0 {
		rl = newRateLimiter(cfg.RatePerIP)
	}
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, withMetrics(s.metrics, name, h))
	}
	route("GET /get", "get", s.handleGet)
	route("POST /put", "put", s.handlePut)
	route("POST /delete", "delete", s.handleDelete)
	route("GET /scan", "scan", s.handleScan)
	route("POST /batch", "batch", s.handleBatch)
	route("GET /stats", "stats", s.handleStats)
	route("GET /metrics", "metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Rate limiting sits outside the metrics wrapper on purpose: a 429
	// never reaches a handler, so it should not pollute endpoint latency;
	// recovery wraps everything.
	s.handler = withRecovery(withRateLimit(rl, mux))
	return s, nil
}

// Handler returns the fully-wrapped HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Router exposes the shard router for in-process callers (tmload's
// in-process mode and tests).
func (s *Server) Router() *Router { return s.router }

// Sketch returns the installed contention sketch, or nil when the server
// was built without profiling (Config.ProfileK == 0).
func (s *Server) Sketch() *telemetry.Sketch { return s.sketch }
