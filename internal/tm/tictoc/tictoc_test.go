package tictoc_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/tictoc"
	"repro/internal/tm/tmtest"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return tictoc.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestIntervalRepairOnLateRead drives the wts > hi repair path
// deterministically: a reader logs an old object, a writer moves a
// second object past the reader's interval, and the reader's next read
// must either extend the first object's window (commit) or abort — it
// must never return a torn pair.
func TestIntervalRepairOnLateRead(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tictoc.New(mem, 2)
	p0, p1 := mem.Proc(0), mem.Proc(1)
	for round := 0; round < 10; round++ {
		rx := tmi.Begin(p0)
		a, err := rx.Read(0)
		if err != nil {
			t.Fatalf("round %d: read(X0): %v", round, err)
		}
		// Writer bumps X1's interval past the reader's.
		if err := tm.Atomically(tmi, p1, func(w tm.Txn) error {
			v, err := w.Read(1)
			if err != nil {
				return err
			}
			return w.Write(1, v+1)
		}); err != nil {
			t.Fatalf("round %d: writer: %v", round, err)
		}
		b, err := rx.Read(1)
		if err != nil {
			continue // abort is a legal outcome; the pair must just never tear
		}
		if err := rx.Commit(); err != nil {
			continue
		}
		// Committed: the snapshot (a, b) must be consistent — X0 is never
		// written, X1 grows by 1 per writer commit.
		if a != 0 || b != uint64(round+1) {
			t.Fatalf("round %d: committed torn pair (X0=%d, X1=%d)", round, a, b)
		}
	}
}

// TestReadOnlyCommitIsFree pins TicToc's read-side trade as measured by
// the step accounting: a read-only transaction whose interval needs no
// extension commits with zero shared-memory operations, while an update
// transaction extends every read-only entry's window with a CAS.
func TestReadOnlyCommitIsFree(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := tictoc.New(mem, 4)
	p := mem.Proc(0)
	rx := tmi.Begin(p)
	for x := 0; x < 4; x++ {
		if _, err := rx.Read(x); err != nil {
			t.Fatal(err)
		}
	}
	before := p.Steps()
	if err := rx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := p.Steps() - before; n != 0 {
		t.Fatalf("read-only commit took %d steps, want 0", n)
	}
	// Update transaction: reads 3 objects, writes a 4th from quiescence.
	// Its commit must pay an extension CAS per read-only entry (visible
	// reads) on top of the lock/publish on the written object.
	ux := tmi.Begin(p)
	for x := 0; x < 3; x++ {
		if _, err := ux.Read(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := ux.Write(3, 9); err != nil {
		t.Fatal(err)
	}
	before = p.Steps()
	if err := ux.Commit(); err != nil {
		t.Fatal(err)
	}
	// Lock CAS + 3×(read+CAS) extensions + value write + meta publish,
	// plus the pre-lock meta read: at least 3 nontrivial primitives must
	// have landed on the read objects.
	if n := p.Steps() - before; n < 9 {
		t.Fatalf("update commit took %d steps; expected ≥ 9 (visible-read extensions missing)", n)
	}
}
