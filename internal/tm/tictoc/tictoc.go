// Package tictoc implements the TicToc OCC algorithm (Yu, Pavlo,
// Sanchez, Devadas, SIGMOD'16) on the simulated memory: data-driven
// timestamp management with NO global clock of any kind. Each object's
// metadata word carries a [wts, rts] validity interval — the value was
// committed at wts and is known unchanged through rts — and every
// transaction computes its own commit timestamp from the intervals it
// touched, as the intersection of its reads' validity windows.
//
// TicToc is the repository's "escape the clock differently" ablation:
// where TL2/GV7 amortizes the global-clock contention Theorem 3 prices
// (every update commit still touches the shared clock, violating weak
// DAP), TicToc is weakly disjoint-access-parallel — transactions on
// disjoint data touch disjoint base objects. The paper's bounds say this
// cannot be free, and it is not: the price is paid on the READ side.
// Reads are no longer invisible — a transaction that must extend a read
// object's validity window (rts < its commit timestamp) performs a CAS
// on that object's metadata, so read-mostly workloads pay O(read set)
// nontrivial primitives at commit where TL2 pays zero. The simulator's
// step/DAP accounting makes both sides of that trade measurable next to
// the clock-strategy sweep.
package tictoc

import (
	"sort"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/lockword"
)

// Metadata packing: the 63-bit lock-free payload (bit 63 is the lock
// bit, as everywhere in this repository) holds wts in bits 32..62 and
// rts in bits 0..31. rts is absolute, not a delta; the simulator's
// workloads stay far below either width.
const (
	rtsBits = 32
	rtsMask = (uint64(1) << rtsBits) - 1
)

func pack(wts, rts uint64) uint64 { return wts<<rtsBits | rts&rtsMask }

func unpack(w uint64) (wts, rts uint64) {
	p := lockword.Version(w) // strip the lock bit
	return p >> rtsBits, p & rtsMask
}

// TM is a TicToc instance. Create with New.
type TM struct {
	mem  *memory.Memory
	meta []*memory.Obj
	val  []*memory.Obj
}

var _ tm.TM = (*TM)(nil)

// New creates a TicToc instance over nobj t-objects initialized to 0,
// each with validity interval [0, 0].
func New(mem *memory.Memory, nobj int) *TM {
	return &TM{
		mem:  mem,
		meta: mem.AllocArray("tictoc.meta", nobj),
		val:  mem.AllocArray("tictoc.val", nobj),
	}
}

// Name implements tm.TM.
func (t *TM) Name() string { return "tictoc" }

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.meta) }

// Props implements tm.TM. The interesting bits against TL2: WeakDAP is
// true (no base object is shared by disjoint transactions — the whole
// point) and InvisibleReads is false (rts extension applies CAS to read
// objects' metadata; even a solo read-write transaction from quiescence
// extends the windows of its reads, so not even the weak form holds).
// Progressiveness is declared conservatively false: a bounded number of
// extension-CAS attempts stands in for the unbounded helping a
// progressive TM would need.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:                true,
		StrictSerializable:    true,
		WeakDAP:               true,
		InvisibleReads:        false,
		WeakInvisibleReads:    false,
		Progressive:           false,
		StronglyProgressive:   false,
		SequentialProgress:    true,
		MultiVersion:          false,
		UsesOnlyRWConditional: true,
		ICFLiveness:           true,
	}
}

// Begin implements tm.TM. There is no clock to sample: the transaction
// starts with the universal interval and narrows it read by read.
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p, hi: ^uint64(0)}
}

// rentry is one logged read: the object and the wts under which its
// value was loaded (the value is valid at any ts ≥ wts for as long as
// wts stays put — rts rereads go to the metadata word, never the log).
type rentry struct {
	x   int
	wts uint64
}

// Txn is a TicToc transaction.
type Txn struct {
	t *TM
	p *memory.Proc
	// [lo, hi] is the running intersection of the reads' validity
	// windows: lo the max wts loaded, hi the min rts known. Every logged
	// value is the committed state at any ts in the interval, which is
	// what makes reads opaque without any global certificate.
	lo, hi  uint64
	rset    []rentry
	wvals   map[int]tm.Value
	worder  []int
	aborted bool
	done    bool
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) abort() error {
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

// extendAttempts bounds every rts-extension CAS loop: TicToc does not
// claim progressiveness, so a window that keeps moving is an abort, not
// a helping obligation.
const extendAttempts = 3

// advanceRTS extends x's validity window to at least need, aborting the
// extension if x's wts moves (the logged value died) or a writer holds
// x locked. Returns ok=false when the caller must abort. This CAS on a
// READ object's metadata is the visible-read cost the package comment
// advertises.
func (tx *Txn) advanceRTS(x int, entryWts, need uint64) bool {
	for attempt := 0; attempt < extendAttempts; attempt++ {
		m := tx.p.Read(tx.t.meta[x])
		wts, rts := unpack(m)
		if lockword.Locked(m) || wts != entryWts {
			return false
		}
		if rts >= need {
			return true
		}
		if tx.p.CAS(tx.t.meta[x], m, pack(wts, need)) {
			return true
		}
	}
	return false
}

// Read implements tm.Txn.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.meta))
	if tx.done {
		return 0, tm.ErrAborted
	}
	if tx.wvals != nil {
		if v, ok := tx.wvals[x]; ok {
			return v, nil
		}
	}
	m1 := tx.p.Read(tx.t.meta[x])
	if lockword.Locked(m1) {
		return 0, tx.abort() // a writer is publishing; its wts is not yet decided
	}
	v := tx.p.Read(tx.t.val[x])
	m2 := tx.p.Read(tx.t.meta[x])
	if m1 != m2 {
		// The (wts, rts, value) triple must be read atomically; a moved
		// word means a concurrent publish or extension landed mid-read.
		// An extension-only move would be benign, but telling the cases
		// apart is not worth the code in the simulator: abort.
		return 0, tx.abort()
	}
	wts, rts := unpack(m1)
	if wts > tx.hi {
		// The new value postdates the interval: every prior read's window
		// must be extended to cover wts, or the snapshot is torn. Each
		// extension re-verifies the prior read's wts, so success proves
		// all logged values coexist at wts.
		for i := range tx.rset {
			if !tx.advanceRTS(tx.rset[i].x, tx.rset[i].wts, wts) {
				return 0, tx.abort()
			}
		}
		tx.hi = wts
	}
	if rts < tx.lo {
		// The new value's window ends before the interval: extend it
		// forward instead.
		if !tx.advanceRTS(x, wts, tx.lo) {
			return 0, tx.abort()
		}
		rts = tx.lo
	}
	tx.lo = max(tx.lo, wts)
	tx.hi = min(tx.hi, rts)
	tx.rset = append(tx.rset, rentry{x: x, wts: wts})
	return v, nil
}

// Write implements tm.Txn (lazy write buffering).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.meta))
	if tx.done {
		return tm.ErrAborted
	}
	if tx.wvals == nil {
		tx.wvals = make(map[int]tm.Value)
	}
	if _, ok := tx.wvals[x]; !ok {
		tx.worder = append(tx.worder, x)
	}
	tx.wvals[x] = v
	return nil
}

// Commit implements tm.Txn. A read-only transaction commits with no
// shared-memory operation at all — the maintained interval is the
// certificate, and its lo end the serialization point. An update
// transaction locks its write set in index order, derives its commit
// timestamp cts = max(lo, rts(w)+1 over locked objects), validates that
// every read is extendable to cts, and publishes every write with the
// collapsed interval [cts, cts].
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if len(tx.worder) == 0 {
		tx.done = true
		return nil
	}
	order := append([]int(nil), tx.worder...)
	sort.Ints(order)
	acquired := make([]uint64, 0, len(order))
	owned := make(map[int]uint64, len(order)) // object -> locked word's payload
	release := func() {
		for i, x := range order[:len(acquired)] {
			tx.p.Write(tx.t.meta[x], lockword.Unlocked(acquired[i]))
		}
	}
	cts := tx.lo
	for _, x := range order {
		m := tx.p.Read(tx.t.meta[x])
		if lockword.Locked(m) || !tx.p.CAS(tx.t.meta[x], m, lockword.Lock(m)) {
			release()
			return tx.abort()
		}
		acquired = append(acquired, lockword.Version(m))
		owned[x] = lockword.Version(m)
		_, rts := unpack(m)
		// The write must postdate every read of the previous value.
		cts = max(cts, rts+1)
	}
	for i := range tx.rset {
		r := &tx.rset[i]
		if p, mine := owned[r.x]; mine {
			// Read-write object: the lock pins its word, so the logged
			// value survives iff its wts is still the one beneath the
			// lock bit. The read serializes at cts⁻, just before this
			// transaction's own write replaces the value.
			if wts, _ := unpack(p); wts != r.wts {
				release()
				return tx.abort()
			}
			continue
		}
		// Read-only object: extend its window to cover cts. This is
		// where a read-mostly TicToc commit pays Ω(read set) CAS — the
		// visible-read half of the weak-DAP trade.
		if !tx.advanceRTS(r.x, r.wts, cts) {
			release()
			return tx.abort()
		}
	}
	for _, x := range order {
		tx.p.Write(tx.t.val[x], tx.wvals[x])
		tx.p.Write(tx.t.meta[x], pack(cts, cts)) // unlocked: bit 63 clear
	}
	tx.done = true
	return nil
}

// Abort implements tm.Txn. No cleanup is needed: Commit never returns
// with locks held.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.aborted = true
		tx.done = true
	}
}
