// Package tml implements TML — the Transactional Mutex Lock of
// Dalessandro, Dice, Scott, Shavit and Spear (and the degenerate endpoint
// of the NOrec lineage): one global sequence lock, in-place writes, and
// readers that abort on *any* concurrent commit, with no validation state
// at all.
//
// TML is the cheapest possible invisible-read TM: a solo t-read costs two
// steps (value + seqlock check) and an update transaction writes in place
// after one CAS. Its position in the paper's map: weak invisible reads and
// O(1) reads, bought by giving up progressiveness entirely — a reader
// aborts when a *disjoint* writer commits, which is exactly the spurious
// abort progressiveness forbids. It therefore bounds from below what any
// TM outside Theorem 3's class can pay.
package tml

import (
	"repro/internal/memory"
	"repro/internal/tm"
)

// TM is a TML instance. Create with New.
type TM struct {
	mem *memory.Memory
	glb *memory.Obj // global sequence lock: odd = writer active
	val []*memory.Obj
}

var _ tm.TM = (*TM)(nil)

// New creates a TML instance over nobj t-objects initialized to 0.
func New(mem *memory.Memory, nobj int) *TM {
	return &TM{mem: mem, glb: mem.Alloc("tml.glb"), val: mem.AllocArray("tml.val", nobj)}
}

// Name implements tm.TM.
func (t *TM) Name() string { return "tml" }

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.val) }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:                true,
		StrictSerializable:    true,
		WeakDAP:               false, // one global word
		InvisibleReads:        true,
		WeakInvisibleReads:    true,
		Progressive:           false, // readers abort on disjoint commits
		StronglyProgressive:   false,
		SequentialProgress:    true,
		ICFLiveness:           true,
		UsesOnlyRWConditional: true,
	}
}

// Txn is a TML transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	loc     uint64 // sequence observed at start (even)
	started bool
	writer  bool // we hold the sequence lock (loc is now odd)
	undo    []undoEntry
	aborted bool
	done    bool
}

type undoEntry struct {
	x   int
	old tm.Value
}

// Begin implements tm.TM.
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

func (tx *Txn) start() {
	if tx.started {
		return
	}
	for {
		s := tx.p.Read(tx.t.glb)
		if s&1 == 0 {
			tx.loc = s
			break
		}
		// A writer is in flight; wait for it (writers never block).
	}
	tx.started = true
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) abort() error {
	tx.rollback()
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

func (tx *Txn) rollback() {
	if !tx.writer {
		return
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.p.Write(tx.t.val[tx.undo[i].x], tx.undo[i].old)
	}
	tx.p.Write(tx.t.glb, tx.loc) // release: sequence back to even
	tx.writer = false
}

// Read implements tm.Txn: one value read plus one seqlock check; abort on
// any intervening commit (even a disjoint one — TML has no read set to
// validate against).
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.val))
	if tx.done {
		return 0, tm.ErrAborted
	}
	tx.start()
	v := tx.p.Read(tx.t.val[x])
	if tx.writer {
		return v, nil // we hold the lock: in-place state is ours
	}
	if tx.p.Read(tx.t.glb) != tx.loc {
		return 0, tx.abort()
	}
	return v, nil
}

// Write implements tm.Txn: the first write acquires the global sequence
// lock; subsequent writes go straight to memory (with an undo log for
// explicit aborts).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.val))
	if tx.done {
		return tm.ErrAborted
	}
	tx.start()
	if !tx.writer {
		if !tx.p.CAS(tx.t.glb, tx.loc, tx.loc+1) {
			return tx.abort() // someone committed since we started
		}
		tx.writer = true
	}
	tx.undo = append(tx.undo, undoEntry{x: x, old: tx.p.Read(tx.t.val[x])})
	tx.p.Write(tx.t.val[x], v)
	return nil
}

// Commit implements tm.Txn: writers bump the sequence to the next even
// value; readers are already certified by their last seqlock check.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if tx.writer {
		tx.p.Write(tx.t.glb, tx.loc+2)
		tx.writer = false
	}
	// Read-only transactions commit for free: every read was certified
	// against the same sequence value, so the snapshot serializes at the
	// moment the sequence was observed.
	tx.done = true
	return nil
}

// Abort implements tm.Txn, rolling back in-place writes.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.rollback()
		tx.aborted = true
		tx.done = true
	}
}
