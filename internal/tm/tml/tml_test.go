package tml_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/tml"
	"repro/internal/tm/tmtest"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return tml.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestTwoStepReads verifies TML's defining cheapness: every solo read
// costs exactly 2 steps (value + seqlock check), independent of read-set
// size — no validation state at all.
func TestTwoStepReads(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := tml.New(mem, 64)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	for i := 0; i < 64; i++ {
		sp := p.BeginSpan("read")
		if _, err := tx.Read(i); err != nil {
			t.Fatalf("read #%d: %v", i, err)
		}
		p.EndSpan()
		want := uint64(2)
		if i == 0 {
			want = 3 // + the initial sequence sample
		}
		if sp.Steps != want {
			t.Fatalf("read #%d took %d steps, want %d", i+1, sp.Steps, want)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestSpuriousAbortOnDisjointCommit documents why TML is not progressive:
// a reader aborts when a completely disjoint writer commits.
func TestSpuriousAbortOnDisjointCommit(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tml.New(mem, 4)
	reader, writer := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(reader)
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := tm.Atomically(tmi, writer, func(w tm.Txn) error { return w.Write(3, 1) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := tx.Read(1); err == nil {
		t.Fatal("TML read survived a concurrent (disjoint) commit; it has no read set to validate with")
	}
}

// TestWriterCASLoser verifies the write-acquisition race: a transaction
// that sampled the sequence before another writer committed loses the CAS
// and aborts (it cannot become the writer with a stale snapshot).
func TestWriterCASLoser(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tml.New(mem, 2)
	p0, p1 := mem.Proc(0), mem.Proc(1)
	loser := tmi.Begin(p0)
	if _, err := loser.Read(0); err != nil { // samples the sequence
		t.Fatalf("loser read: %v", err)
	}
	if err := tm.Atomically(tmi, p1, func(w tm.Txn) error { return w.Write(1, 2) }); err != nil {
		t.Fatalf("winner: %v", err)
	}
	if err := loser.Write(0, 1); err == nil {
		t.Fatal("stale writer acquired the sequence lock; CAS must fail")
	}
	// The winner's value persists and the loser wrote nothing.
	if err := tm.Atomically(tmi, p0, func(tx tm.Txn) error {
		v0, err := tx.Read(0)
		if err != nil {
			return err
		}
		v1, err := tx.Read(1)
		if err != nil {
			return err
		}
		if v0 != 0 || v1 != 2 {
			t.Errorf("X0=%d X1=%d, want 0, 2", v0, v1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestUndoRollback verifies in-place writes are undone on explicit Abort.
func TestUndoRollback(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := tml.New(mem, 2)
	p := mem.Proc(0)
	if err := tm.Atomically(tmi, p, func(tx tm.Txn) error { return tx.Write(0, 7) }); err != nil {
		t.Fatal(err)
	}
	tx := tmi.Begin(p)
	if err := tx.Write(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(1, 200); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tm.Atomically(tmi, p, func(tx tm.Txn) error {
		v0, err := tx.Read(0)
		if err != nil {
			return err
		}
		v1, err := tx.Read(1)
		if err != nil {
			return err
		}
		if v0 != 7 || v1 != 0 {
			t.Errorf("after rollback X0=%d X1=%d, want 7, 0", v0, v1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The sequence lock must have been released (an even value), or every
	// later transaction would spin forever.
	if err := tm.Atomically(tmi, p, func(tx tm.Txn) error { return tx.Write(0, 8) }); err != nil {
		t.Fatalf("lock leaked after abort: %v", err)
	}
}
