// Package tmtest is a reusable conformance suite run by every TM
// implementation's tests. It checks the paper's definitions — sequential
// semantics and TM-progress, opacity / strict serializability on recorded
// concurrent histories, progressiveness, and the single-item case of strong
// progressiveness — against the properties each TM declares in Props.
package tmtest

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
)

// Factory builds a fresh TM over nobj t-objects on mem.
type Factory func(mem *memory.Memory, nobj int) tm.TM

// Run executes the whole conformance suite against the factory.
func Run(t *testing.T, f Factory) {
	t.Run("SequentialSemantics", func(t *testing.T) { sequentialSemantics(t, f) })
	t.Run("ReadYourWrites", func(t *testing.T) { readYourWrites(t, f) })
	t.Run("AbortDiscardsWrites", func(t *testing.T) { abortDiscards(t, f) })
	t.Run("SequentialProgress", func(t *testing.T) { sequentialProgress(t, f) })
	t.Run("DeadTxnStaysDead", func(t *testing.T) { deadTxn(t, f) })
	t.Run("RepeatedReadStability", func(t *testing.T) { repeatedReads(t, f) })
	t.Run("WriteOnlyTransactions", func(t *testing.T) { writeOnly(t, f) })
	t.Run("ConcurrentSerializability", func(t *testing.T) { concurrentCorrectness(t, f) })
	t.Run("Progressiveness", func(t *testing.T) { progressiveness(t, f) })
	t.Run("StrongProgressivenessSingleItem", func(t *testing.T) { strongSingleItem(t, f) })
}

func mustCommit(t *testing.T, tmi tm.TM, p *memory.Proc, body func(tm.Txn) error) {
	t.Helper()
	if err := tm.Atomically(tmi, p, body); err != nil {
		t.Fatalf("transaction failed: %v", err)
	}
}

// sequentialSemantics: committed writes persist and are read back across
// transactions; distinct objects are independent.
func sequentialSemantics(t *testing.T, f Factory) {
	mem := memory.New(2, nil)
	tmi := f(mem, 8)
	p := mem.Proc(0)
	for x := 0; x < 8; x++ {
		x := x
		mustCommit(t, tmi, p, func(tx tm.Txn) error { return tx.Write(x, uint64(100+x)) })
	}
	mustCommit(t, tmi, p, func(tx tm.Txn) error {
		for x := 0; x < 8; x++ {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			if v != uint64(100+x) {
				t.Errorf("read(X%d) = %d, want %d", x, v, 100+x)
			}
		}
		return nil
	})
	// A second process must observe the same committed state.
	mustCommit(t, tmi, mem.Proc(1), func(tx tm.Txn) error {
		v, err := tx.Read(3)
		if err != nil {
			return err
		}
		if v != 103 {
			t.Errorf("proc 1 read(X3) = %d, want 103", v)
		}
		return nil
	})
}

// readYourWrites: a transaction observes its own pending writes, and
// read-write-read on the same object is consistent.
func readYourWrites(t *testing.T, f Factory) {
	mem := memory.New(1, nil)
	tmi := f(mem, 4)
	p := mem.Proc(0)
	mustCommit(t, tmi, p, func(tx tm.Txn) error {
		if v, err := tx.Read(0); err != nil || v != 0 {
			return fmt.Errorf("initial read = %d, %v; want 0, nil", v, err)
		}
		if err := tx.Write(0, 7); err != nil {
			return err
		}
		if v, err := tx.Read(0); err != nil || v != 7 {
			return fmt.Errorf("read-own-write = %d, %v; want 7, nil", v, err)
		}
		if err := tx.Write(0, 9); err != nil {
			return err
		}
		if v, err := tx.Read(0); err != nil || v != 9 {
			return fmt.Errorf("second read-own-write = %d, %v; want 9, nil", v, err)
		}
		return nil
	})
	mustCommit(t, tmi, p, func(tx tm.Txn) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		if v != 9 {
			t.Errorf("committed value = %d, want 9", v)
		}
		return nil
	})
}

// abortDiscards: an explicitly aborted transaction's writes are invisible.
func abortDiscards(t *testing.T, f Factory) {
	mem := memory.New(1, nil)
	tmi := f(mem, 2)
	p := mem.Proc(0)
	mustCommit(t, tmi, p, func(tx tm.Txn) error { return tx.Write(0, 5) })
	tx := tmi.Begin(p)
	if err := tx.Write(0, 99); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tx.Write(1, 99); err != nil {
		t.Fatalf("write: %v", err)
	}
	tx.Abort()
	if !tx.Aborted() {
		t.Error("Aborted() = false after Abort")
	}
	mustCommit(t, tmi, p, func(tx tm.Txn) error {
		v0, err := tx.Read(0)
		if err != nil {
			return err
		}
		v1, err := tx.Read(1)
		if err != nil {
			return err
		}
		if v0 != 5 || v1 != 0 {
			t.Errorf("after abort: X0=%d X1=%d, want 5, 0", v0, v1)
		}
		return nil
	})
}

// repeatedReads: two uninterrupted reads of the same t-object inside one
// transaction return the same value (a consequence of opacity: the
// transaction's view is a single serialization point).
func repeatedReads(t *testing.T, f Factory) {
	mem := memory.New(1, nil)
	tmi := f(mem, 2)
	p := mem.Proc(0)
	mustCommit(t, tmi, p, func(tx tm.Txn) error { return tx.Write(0, 31) })
	mustCommit(t, tmi, p, func(tx tm.Txn) error {
		v1, err := tx.Read(0)
		if err != nil {
			return err
		}
		v2, err := tx.Read(0)
		if err != nil {
			return err
		}
		if v1 != v2 {
			t.Errorf("repeated reads returned %d then %d", v1, v2)
		}
		// Interleave a read of another object and re-read again.
		if _, err := tx.Read(1); err != nil {
			return err
		}
		v3, err := tx.Read(0)
		if err != nil {
			return err
		}
		if v3 != v1 {
			t.Errorf("read after unrelated read returned %d, want %d", v3, v1)
		}
		return nil
	})
}

// writeOnly: transactions with empty read sets commit solo and install all
// their writes atomically.
func writeOnly(t *testing.T, f Factory) {
	mem := memory.New(1, nil)
	tmi := f(mem, 4)
	p := mem.Proc(0)
	committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
		for x := 0; x < 4; x++ {
			if err := tx.Write(x, uint64(50+x)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil || !committed {
		t.Fatalf("solo write-only txn: committed=%v err=%v", committed, err)
	}
	mustCommit(t, tmi, p, func(tx tm.Txn) error {
		for x := 0; x < 4; x++ {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			if v != uint64(50+x) {
				t.Errorf("X%d = %d, want %d", x, v, 50+x)
			}
		}
		return nil
	})
}

// sequentialProgress (minimal progressiveness): every transaction running
// step contention-free from a t-quiescent configuration commits.
func sequentialProgress(t *testing.T, f Factory) {
	mem := memory.New(1, nil)
	tmi := f(mem, 4)
	p := mem.Proc(0)
	for i := 0; i < 50; i++ {
		committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
			if _, err := tx.Read(i % 4); err != nil {
				return err
			}
			return tx.Write((i+1)%4, uint64(i))
		})
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if !committed {
			t.Fatalf("solo transaction %d aborted: sequential TM-progress violated", i)
		}
	}
}

// deadTxn: after an abort, every t-operation returns ErrAborted.
func deadTxn(t *testing.T, f Factory) {
	mem := memory.New(1, nil)
	tmi := f(mem, 2)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	if err := tx.Write(0, 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	tx.Abort()
	if _, err := tx.Read(0); !errors.Is(err, tm.ErrAborted) {
		t.Errorf("Read after abort: err = %v, want ErrAborted", err)
	}
	if err := tx.Write(1, 2); !errors.Is(err, tm.ErrAborted) {
		t.Errorf("Write after abort: err = %v, want ErrAborted", err)
	}
	if err := tx.Commit(); !errors.Is(err, tm.ErrAborted) {
		t.Errorf("Commit after abort: err = %v, want ErrAborted", err)
	}
}

// concurrentCorrectness: randomized concurrent executions recorded and
// verified against opacity (if declared) and strict serializability.
func concurrentCorrectness(t *testing.T, f Factory) {
	for seed := int64(1); seed <= 12; seed++ {
		mem := memory.New(3, nil)
		tmi := f(mem, 4)
		rec := tm.Record(tmi)
		runRandomWorkload(t, mem, rec, workloadCfg{txnsPerProc: 2, opsPerTxn: 3, writeRatio: 0.5, seed: seed})
		h := rec.History()
		if !check.StrictlySerializable(h).OK {
			t.Fatalf("seed %d: history not strictly serializable:\n%s", seed, h)
		}
		if tmi.Props().Opaque && !check.Opaque(h).OK {
			t.Fatalf("seed %d: history not opaque:\n%s", seed, h)
		}
	}
}

// progressiveness: if the TM declares itself progressive, no recorded abort
// may lack a concurrent conflicting transaction.
func progressiveness(t *testing.T, f Factory) {
	probe := f(memory.New(1, nil), 1)
	if !probe.Props().Progressive {
		t.Skip("TM does not claim progressiveness")
	}
	for seed := int64(1); seed <= 10; seed++ {
		mem := memory.New(4, nil)
		rec := tm.Record(f(mem, 3))
		runRandomWorkload(t, mem, rec, workloadCfg{txnsPerProc: 4, opsPerTxn: 3, writeRatio: 0.6, seed: seed})
		if v := check.Progressive(rec.History()); len(v) != 0 {
			t.Fatalf("seed %d: progressiveness violations %v in history:\n%s", seed, v, rec.History())
		}
	}
}

// strongSingleItem: all processes hammer the single t-object; in every
// all-conflicting group some transaction must commit if the TM claims
// strong progressiveness (Definition 1).
func strongSingleItem(t *testing.T, f Factory) {
	probe := f(memory.New(1, nil), 1)
	if !probe.Props().StronglyProgressive {
		t.Skip("TM does not claim strong progressiveness")
	}
	for seed := int64(1); seed <= 10; seed++ {
		mem := memory.New(4, nil)
		rec := tm.Record(f(mem, 1))
		runRandomWorkload(t, mem, rec, workloadCfg{txnsPerProc: 4, opsPerTxn: 2, writeRatio: 0.7, seed: seed})
		if v := check.StronglyProgressive(rec.History()); len(v) != 0 {
			t.Fatalf("seed %d: strong progressiveness violations %+v in history:\n%s", seed, v, rec.History())
		}
	}
}

type workloadCfg struct {
	txnsPerProc int
	opsPerTxn   int
	writeRatio  float64
	seed        int64
}

// runRandomWorkload drives every process of mem through single-attempt
// random transactions (aborts are recorded, not retried) under seeded
// random scheduling.
func runRandomWorkload(t *testing.T, mem *memory.Memory, rec *tm.Recorder, cfg workloadCfg) {
	t.Helper()
	nobj := rec.NumObjects()
	s := sched.New(mem)
	for i := 0; i < mem.NumProcs(); i++ {
		rng := newSplitMix(uint64(cfg.seed)*1315423911 + uint64(i+1))
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < cfg.txnsPerProc; n++ {
				tx := rec.Begin(p)
				alive := true
				for o := 0; o < cfg.opsPerTxn && alive; o++ {
					x := int(rng.next() % uint64(nobj))
					if float64(rng.next()%1000)/1000 < cfg.writeRatio {
						alive = tx.Write(x, rng.next()%100) == nil
					} else {
						_, err := tx.Read(x)
						alive = err == nil
					}
				}
				if alive {
					_ = tx.Commit()
				} else {
					tx.Abort()
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.seed)); err != nil {
		t.Fatalf("scheduler: %v", err)
	}
}

// splitMix is a tiny deterministic PRNG so the workload does not depend on
// math/rand internals across Go versions.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
