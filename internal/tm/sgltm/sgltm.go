// Package sgltm implements the single-global-lock TM: every transaction
// acquires one test-and-test-and-set lock at its first t-operation and
// holds it until commit or abort. No transaction ever aborts on conflict
// (transactions block instead), so the TM is trivially progressive and
// strongly progressive, and it is the everything-costs-O(1) baseline:
// reads take one step, commits take one step.
//
// Its position in the theorem's hypothesis space: sgltm is *blocking* (it
// does not provide interval-contention-free TM-liveness — an operation of
// one transaction cannot complete while another holds the lock) and its
// first t-read applies a nontrivial CAS even when running solo, violating
// weak invisible reads. Both escape hatches are exactly what Theorem 3
// predicts must be present in any TM that dodges the quadratic bound.
package sgltm

import (
	"repro/internal/memory"
	"repro/internal/tm"
)

// TM is a single-global-lock TM. Create with New.
type TM struct {
	mem  *memory.Memory
	lock *memory.Obj // 0 free, else 1+procID of the holder
	val  []*memory.Obj
}

var _ tm.TM = (*TM)(nil)

// New creates an sgltm instance over nobj t-objects initialized to 0.
func New(mem *memory.Memory, nobj int) *TM {
	return &TM{
		mem:  mem,
		lock: mem.Alloc("sgl.lock"),
		val:  mem.AllocArray("sgl.val", nobj),
	}
}

// Name implements tm.TM.
func (t *TM) Name() string { return "sgltm" }

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.val) }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:                true,
		StrictSerializable:    true,
		WeakDAP:               false,
		InvisibleReads:        false,
		WeakInvisibleReads:    false, // the lock CAS is a nontrivial event in a t-read
		Progressive:           true,  // vacuously: no aborts
		StronglyProgressive:   true,
		SequentialProgress:    true,
		UsesOnlyRWConditional: true,
	}
}

type undo struct {
	x   int
	old tm.Value
}

// Txn is an sgltm transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	holding bool
	undoLog []undo
	written map[int]bool
	aborted bool
	done    bool
}

// Begin implements tm.TM. The lock is acquired lazily at the first
// t-operation.
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) acquire() {
	if tx.holding {
		return
	}
	me := uint64(tx.p.ID()) + 1
	for {
		// Test-and-test-and-set: spin on the trivial read, CAS on free.
		if tx.p.Read(tx.t.lock) == 0 && tx.p.CAS(tx.t.lock, 0, me) {
			tx.holding = true
			return
		}
	}
}

func (tx *Txn) releaseLock() {
	if tx.holding {
		tx.p.Write(tx.t.lock, 0)
		tx.holding = false
	}
}

// Read implements tm.Txn. It never aborts.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.val))
	if tx.done {
		return 0, tm.ErrAborted
	}
	tx.acquire()
	return tx.p.Read(tx.t.val[x]), nil
}

// Write implements tm.Txn: in-place write under the global lock, with an
// undo log so explicit Abort can roll back.
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.val))
	if tx.done {
		return tm.ErrAborted
	}
	tx.acquire()
	if !tx.written[x] {
		if tx.written == nil {
			tx.written = make(map[int]bool)
		}
		tx.written[x] = true
		tx.undoLog = append(tx.undoLog, undo{x: x, old: tx.p.Read(tx.t.val[x])})
	}
	tx.p.Write(tx.t.val[x], v)
	return nil
}

// Commit implements tm.Txn. It always succeeds.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	tx.releaseLock()
	tx.done = true
	return nil
}

// Abort implements tm.Txn, rolling back in-place writes.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	for i := len(tx.undoLog) - 1; i >= 0; i-- {
		tx.p.Write(tx.t.val[tx.undoLog[i].x], tx.undoLog[i].old)
	}
	tx.releaseLock()
	tx.aborted = true
	tx.done = true
}
