package sgltm_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/sgltm"
	"repro/internal/tm/tmtest"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return sgltm.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestNeverAborts verifies sgltm's defining property: transactions block on
// conflict instead of aborting, so sequential workloads never observe A_k.
func TestNeverAborts(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := sgltm.New(mem, 4)
	p := mem.Proc(0)
	for i := 0; i < 100; i++ {
		committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
			if _, err := tx.Read(i % 4); err != nil {
				return err
			}
			return tx.Write((i+1)%4, uint64(i))
		})
		if err != nil || !committed {
			t.Fatalf("txn %d: committed=%v err=%v; sgltm must never abort", i, committed, err)
		}
	}
}

// TestConstantCostOperations verifies the O(1)-everything baseline shape:
// reads and commits take constant steps regardless of data-set size.
func TestConstantCostOperations(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := sgltm.New(mem, 64)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	for i := 0; i < 64; i++ {
		sp := p.BeginSpan("read")
		if _, err := tx.Read(i); err != nil {
			t.Fatalf("read: %v", err)
		}
		p.EndSpan()
		want := uint64(1)
		if i == 0 {
			want = 3 // lock acquisition: test, CAS, then the read
		}
		if sp.Steps != want {
			t.Fatalf("read #%d took %d steps, want %d", i+1, sp.Steps, want)
		}
	}
	sp := p.BeginSpan("tryC")
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	p.EndSpan()
	if sp.Steps != 1 {
		t.Fatalf("tryC took %d steps, want 1 (release)", sp.Steps)
	}
}

// TestUndoRollback verifies in-place writes are rolled back on Abort, in
// reverse order (later writes must not clobber restored earlier values).
func TestUndoRollback(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := sgltm.New(mem, 2)
	p := mem.Proc(0)
	if err := tm.Atomically(tmi, p, func(tx tm.Txn) error { return tx.Write(0, 10) }); err != nil {
		t.Fatalf("setup: %v", err)
	}
	tx := tmi.Begin(p)
	for _, v := range []uint64{20, 30, 40} {
		if err := tx.Write(0, v); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := tx.Write(1, 50); err != nil {
		t.Fatalf("write: %v", err)
	}
	tx.Abort()
	if err := tm.Atomically(tmi, p, func(tx tm.Txn) error {
		v0, err := tx.Read(0)
		if err != nil {
			return err
		}
		v1, err := tx.Read(1)
		if err != nil {
			return err
		}
		if v0 != 10 || v1 != 0 {
			t.Errorf("after rollback: X0=%d X1=%d, want 10, 0", v0, v1)
		}
		return nil
	}); err != nil {
		t.Fatalf("check txn: %v", err)
	}
}

// TestVisibleFirstRead documents why sgltm escapes Theorem 3: its first
// t-read applies a nontrivial primitive (the global lock CAS) even solo,
// violating weak invisible reads.
func TestVisibleFirstRead(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := sgltm.New(mem, 2)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	sp := p.BeginSpan("first-read")
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	p.EndSpan()
	if sp.Nontrivial == 0 {
		t.Fatal("first read applied no nontrivial primitive; expected the global-lock CAS")
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}
