// Package vrtm implements a progressive TM with *visible* reads: every
// t-read registers the reader in a per-object reader mask (a nontrivial
// fetch-and-add), and writers abort when they detect registered readers.
// Because a registered read can never be invalidated — any conflicting
// writer aborts instead — reads require no validation at all: a read-only
// transaction of m reads performs Θ(m) steps.
//
// vrtm is the invisible-reads ablation for Theorem 3: it is strict
// data-partitioned (weak DAP) and progressive, yet escapes the Ω(m²) step
// bound and the m−1 space bound precisely because it violates the
// weak-invisible-reads hypothesis (its t-reads apply nontrivial primitives
// even when running solo). The price the paper predicts is paid elsewhere:
// reader registration serializes readers on the reader mask, destroying
// read parallelism (measured in E1/E8), and strong progressiveness is lost
// (a reader and a writer racing on one item can both abort).
package vrtm

import (
	"sort"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/lockword"
)

// TM is a visible-reads progressive TM. Create with New.
type TM struct {
	mem   *memory.Memory
	rmask []*memory.Obj // bitmask of registered reader processes
	meta  []*memory.Obj // versioned write-lock word
	val   []*memory.Obj
}

var _ tm.TM = (*TM)(nil)

// New creates a vrtm instance over nobj t-objects initialized to 0.
func New(mem *memory.Memory, nobj int) *TM {
	return &TM{
		mem:   mem,
		rmask: mem.AllocArray("vrtm.rmask", nobj),
		meta:  mem.AllocArray("vrtm.meta", nobj),
		val:   mem.AllocArray("vrtm.val", nobj),
	}
}

// Name implements tm.TM.
func (t *TM) Name() string { return "vrtm" }

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.val) }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:                true,
		StrictSerializable:    true,
		WeakDAP:               true,
		InvisibleReads:        false,
		WeakInvisibleReads:    false, // reads are visible even when solo
		Progressive:           true,
		StronglyProgressive:   false, // reader/writer races can mutually abort
		SequentialProgress:    true,
		ICFLiveness:           true,
		UsesOnlyRWConditional: false, // fetch-and-add is not conditional
	}
}

// Txn is a vrtm transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	rset    []int
	wvals   map[int]tm.Value
	worder  []int
	aborted bool
	done    bool
}

// Begin implements tm.TM.
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) bit() uint64 { return uint64(1) << uint(tx.p.ID()) }

// deregister removes the transaction's reader bits. It runs on every
// completion path (commit, abort, explicit Abort).
func (tx *Txn) deregister() {
	for _, x := range tx.rset {
		tx.p.FetchAdd(tx.t.rmask[x], ^tx.bit()+1) // two's-complement subtract
	}
	tx.rset = nil
}

func (tx *Txn) abort() error {
	tx.deregister()
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

func (tx *Txn) inRset(x int) bool {
	for _, y := range tx.rset {
		if y == x {
			return true
		}
	}
	return false
}

// Read implements tm.Txn. The fetch-and-add registration makes the read
// visible; no validation ever follows.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.val))
	if tx.done {
		return 0, tm.ErrAborted
	}
	if tx.wvals != nil {
		if v, ok := tx.wvals[x]; ok {
			return v, nil
		}
	}
	if tx.inRset(x) {
		// Still registered, so the value cannot have changed.
		return tx.p.Read(tx.t.val[x]), nil
	}
	tx.p.FetchAdd(tx.t.rmask[x], tx.bit())
	m := tx.p.Read(tx.t.meta[x])
	if lockword.Locked(m) {
		// Undo this object's registration (x is not yet in rset), then
		// abort, which deregisters the rest.
		tx.p.FetchAdd(tx.t.rmask[x], ^tx.bit()+1)
		return 0, tx.abort()
	}
	v := tx.p.Read(tx.t.val[x])
	tx.rset = append(tx.rset, x)
	return v, nil
}

// Write implements tm.Txn (lazy write buffering).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.val))
	if tx.done {
		return tm.ErrAborted
	}
	if tx.wvals == nil {
		tx.wvals = make(map[int]tm.Value)
	}
	if _, ok := tx.wvals[x]; !ok {
		tx.worder = append(tx.worder, x)
	}
	tx.wvals[x] = v
	return nil
}

// Commit implements tm.Txn.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if len(tx.worder) == 0 {
		// Read-only: registered reads are stable by construction.
		tx.deregister()
		tx.done = true
		return nil
	}
	order := append([]int(nil), tx.worder...)
	sort.Ints(order)
	acquired := make([]uint64, 0, len(order))
	release := func() {
		for i, x := range order[:len(acquired)] {
			tx.p.Write(tx.t.meta[x], lockword.Unlocked(acquired[i]))
		}
	}
	for _, x := range order {
		m := tx.p.Read(tx.t.meta[x])
		if lockword.Locked(m) {
			release()
			return tx.abort()
		}
		if !tx.p.CAS(tx.t.meta[x], m, lockword.Lock(m)) {
			release()
			return tx.abort()
		}
		acquired = append(acquired, lockword.Version(m))
		// A registered foreign reader is a concurrent conflicting
		// transaction: progressive TMs may (and we do) abort.
		if tx.p.Read(tx.t.rmask[x])&^tx.bit() != 0 {
			release()
			return tx.abort()
		}
	}
	for i, x := range order {
		tx.p.Write(tx.t.val[x], tx.wvals[x])
		tx.p.Write(tx.t.meta[x], lockword.Unlocked(acquired[i]+1))
	}
	tx.deregister()
	tx.done = true
	return nil
}

// Abort implements tm.Txn.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.deregister()
		tx.aborted = true
		tx.done = true
	}
}
