package vrtm_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/tmtest"
	"repro/internal/tm/vrtm"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return vrtm.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestReadsAreVisible verifies that vrtm violates (weak) invisible reads by
// design: even a solo t-read applies a nontrivial primitive.
func TestReadsAreVisible(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := vrtm.New(mem, 4)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	sp := p.BeginSpan("read")
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	p.EndSpan()
	if sp.Nontrivial == 0 {
		t.Fatal("solo read applied no nontrivial primitive; vrtm reads must be visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestConstantStepReads verifies vrtm's escape from Theorem 3: reads never
// validate, costing O(1) steps each even with a large read set.
func TestConstantStepReads(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := vrtm.New(mem, 64)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	for i := 0; i < 64; i++ {
		sp := p.BeginSpan("read")
		if _, err := tx.Read(i); err != nil {
			t.Fatalf("read #%d: %v", i, err)
		}
		p.EndSpan()
		if sp.Steps != 3 { // register, check lock, read value
			t.Fatalf("read #%d took %d steps, want 3 (no validation)", i+1, sp.Steps)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestWriterAbortsOnRegisteredReader verifies the visibility contract: a
// writer that would invalidate a live reader's snapshot aborts instead.
func TestWriterAbortsOnRegisteredReader(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := vrtm.New(mem, 2)
	reader, writer := mem.Proc(0), mem.Proc(1)
	rtx := tmi.Begin(reader)
	if _, err := rtx.Read(0); err != nil {
		t.Fatalf("reader: %v", err)
	}
	committed, err := tm.Once(tmi, writer, func(w tm.Txn) error { return w.Write(0, 9) })
	if err != nil {
		t.Fatalf("writer: %v", err)
	}
	if committed {
		t.Fatal("writer committed over a registered reader; vrtm must abort it")
	}
	// The reader's snapshot is intact and it commits.
	if v, err := rtx.Read(0); err != nil || v != 0 {
		t.Fatalf("reader re-read = %d, %v; want 0, nil", v, err)
	}
	if err := rtx.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
	// After the reader deregisters, the writer succeeds.
	if err := tm.Atomically(tmi, writer, func(w tm.Txn) error { return w.Write(0, 9) }); err != nil {
		t.Fatalf("writer after deregistration: %v", err)
	}
}

// TestDeregistrationOnAllPaths verifies that commit, abort-on-conflict and
// explicit Abort all clear the reader mask (leaks would block writers
// forever).
func TestDeregistrationOnAllPaths(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := vrtm.New(mem, 2)
	p0, p1 := mem.Proc(0), mem.Proc(1)

	// Path 1: commit.
	if err := tm.Atomically(tmi, p0, func(tx tm.Txn) error { _, err := tx.Read(0); return err }); err != nil {
		t.Fatalf("read txn: %v", err)
	}
	// Path 2: explicit abort.
	tx := tmi.Begin(p0)
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	tx.Abort()
	// Path 3: abort on conflict (reader sees a locked object). Simulate by
	// racing a writer: a second reader transaction aborts after the writer
	// locks; either way masks must be clear at the end.
	if err := tm.Atomically(tmi, p1, func(w tm.Txn) error { return w.Write(0, 3) }); err != nil {
		t.Fatalf("writer should find no registered readers left: %v", err)
	}
}
