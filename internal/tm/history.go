package tm

import (
	"fmt"
	"sync"

	"repro/internal/memory"
)

// OpKind enumerates t-operation kinds in a recorded history.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpTryCommit
	OpAbort
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTryCommit:
		return "tryC"
	case OpAbort:
		return "abort"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// BaseAccess records one base-object access performed while executing a
// t-operation (captured through the memory observer hook).
type BaseAccess struct {
	Obj        uint64 // base-object address
	Nontrivial bool
}

// Op is one completed t-operation in a history: a matching
// invocation/response pair, with Seq giving the position of the response in
// the global history.
type Op struct {
	Seq     int
	Kind    OpKind
	Obj     int   // t-object, for OpRead/OpWrite
	Value   Value // value written (OpWrite) or returned (OpRead)
	Aborted bool  // the operation returned A_k

	// Accesses lists the base-object accesses the TM performed to execute
	// this t-operation, in order. The weak-DAP and invisible-reads
	// checkers consume it; it is empty for histories built by hand.
	Accesses []BaseAccess
}

// NontrivialEvents counts the nontrivial primitive applications within the
// operation.
func (op *Op) NontrivialEvents() int {
	n := 0
	for _, a := range op.Accesses {
		if a.Nontrivial {
			n++
		}
	}
	return n
}

// TxnStatus is the completion status of a transaction in a history.
type TxnStatus int

// Transaction statuses.
const (
	TxnLive TxnStatus = iota
	TxnCommitted
	TxnAborted
)

func (s TxnStatus) String() string {
	switch s {
	case TxnLive:
		return "live"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	}
	return fmt.Sprintf("TxnStatus(%d)", int(s))
}

// TxnRecord is the subhistory H|k of one transaction.
type TxnRecord struct {
	ID       int
	Proc     int
	Ops      []Op
	Status   TxnStatus
	StartSeq int // seq of first event
	EndSeq   int // seq of commit/abort response; -1 while live
}

// ReadSet returns the t-objects on which the transaction *invoked* reads,
// in first-invocation order. Per the paper's Section 2, an operation that
// returned A_k still contributes to the data set.
func (t *TxnRecord) ReadSet() []int { return t.dset(OpRead) }

// WriteSet returns the t-objects on which the transaction invoked writes
// (including aborted attempts), in first-invocation order.
func (t *TxnRecord) WriteSet() []int { return t.dset(OpWrite) }

func (t *TxnRecord) dset(kind OpKind) []int {
	var out []int
	seen := map[int]bool{}
	for _, op := range t.Ops {
		if op.Kind == kind && !seen[op.Obj] {
			seen[op.Obj] = true
			out = append(out, op.Obj)
		}
	}
	return out
}

// ReadOnly reports whether the transaction's write set is empty.
func (t *TxnRecord) ReadOnly() bool { return len(t.WriteSet()) == 0 }

// History is a recorded TM history: the sequence of t-operation events
// grouped by transaction, with enough ordering information to recover the
// real-time order (T_k precedes T_m iff EndSeq(T_k) < StartSeq(T_m)).
type History struct {
	Txns []*TxnRecord
}

// PrecedesRT reports whether a precedes b in the real-time order.
func (h *History) PrecedesRT(a, b *TxnRecord) bool {
	return a.EndSeq >= 0 && a.EndSeq < b.StartSeq
}

// Committed returns the committed transactions of the history.
func (h *History) Committed() []*TxnRecord {
	var out []*TxnRecord
	for _, t := range h.Txns {
		if t.Status == TxnCommitted {
			out = append(out, t)
		}
	}
	return out
}

// String renders the history compactly, one transaction per line.
func (h *History) String() string {
	s := ""
	for _, t := range h.Txns {
		s += fmt.Sprintf("T%d(p%d,%s):", t.ID, t.Proc, t.Status)
		for _, op := range t.Ops {
			switch op.Kind {
			case OpRead:
				if op.Aborted {
					s += fmt.Sprintf(" R(X%d)->A", op.Obj)
				} else {
					s += fmt.Sprintf(" R(X%d)->%d", op.Obj, op.Value)
				}
			case OpWrite:
				s += fmt.Sprintf(" W(X%d,%d)", op.Obj, op.Value)
			case OpTryCommit:
				if op.Aborted {
					s += " tryC->A"
				} else {
					s += " tryC->C"
				}
			case OpAbort:
				s += " abort"
			}
		}
		s += "\n"
	}
	return s
}

// Recorder wraps a TM and records the history of every transaction begun
// through it. It is safe under the cooperative scheduler (one process runs
// at a time) and under plain sequential use; a mutex guards the shared
// sequence counter regardless.
type Recorder struct {
	TM
	mu   sync.Mutex
	seq  int
	hist History
}

// Record wraps m in a Recorder.
func Record(m TM) *Recorder { return &Recorder{TM: m} }

// History returns the history recorded so far.
func (r *Recorder) History() *History { return &r.hist }

// Begin implements TM, recording the new transaction. When the inner
// transaction supports the read-only hint, the recorded wrapper does too
// (and forwards it), so DeclareReadOnly's "was the hint applied" contract
// survives recording; wrapping a TM without a fast path yields a wrapper
// without the interface.
func (r *Recorder) Begin(p *memory.Proc) Txn {
	inner := r.TM.Begin(p)
	r.mu.Lock()
	rec := &TxnRecord{ID: len(r.hist.Txns), Proc: p.ID(), StartSeq: r.seq, EndSeq: -1}
	r.seq++
	r.hist.Txns = append(r.hist.Txns, rec)
	r.mu.Unlock()
	rt := &recordedTxn{inner: inner, r: r, rec: rec, p: p}
	if _, ok := inner.(ReadOnlyHinter); ok {
		return &recordedROTxn{rt}
	}
	return rt
}

type recordedTxn struct {
	inner Txn
	r     *Recorder
	rec   *TxnRecord
	p     *memory.Proc
}

// observe runs fn with the memory observer capturing this operation's
// base-object accesses. The cooperative scheduler runs one process at a
// time, so the temporary observer cannot interleave with another
// transaction of the same process.
func (t *recordedTxn) observe(fn func()) []BaseAccess {
	var accs []BaseAccess
	t.p.SetObserver(func(o *memory.Obj, nontrivial bool) {
		accs = append(accs, BaseAccess{Obj: o.Addr(), Nontrivial: nontrivial})
	})
	defer t.p.SetObserver(nil)
	fn()
	return accs
}

func (t *recordedTxn) log(kind OpKind, obj int, v Value, aborted bool, accs []BaseAccess) {
	t.r.mu.Lock()
	t.rec.Ops = append(t.rec.Ops, Op{Seq: t.r.seq, Kind: kind, Obj: obj, Value: v, Aborted: aborted, Accesses: accs})
	if aborted || kind == OpTryCommit || kind == OpAbort {
		t.rec.EndSeq = t.r.seq
		if aborted || kind == OpAbort {
			t.rec.Status = TxnAborted
		} else {
			t.rec.Status = TxnCommitted
		}
	}
	t.r.seq++
	t.r.mu.Unlock()
}

func (t *recordedTxn) Read(x int) (Value, error) {
	var v Value
	var err error
	accs := t.observe(func() { v, err = t.inner.Read(x) })
	t.log(OpRead, x, v, err != nil, accs)
	return v, err
}

func (t *recordedTxn) Write(x int, v Value) error {
	var err error
	accs := t.observe(func() { err = t.inner.Write(x, v) })
	t.log(OpWrite, x, v, err != nil, accs)
	return err
}

func (t *recordedTxn) Commit() error {
	var err error
	accs := t.observe(func() { err = t.inner.Commit() })
	t.log(OpTryCommit, -1, 0, err != nil, accs)
	return err
}

func (t *recordedTxn) Abort() {
	accs := t.observe(func() { t.inner.Abort() })
	if t.rec.Status == TxnLive {
		t.log(OpAbort, -1, 0, true, accs)
	}
}

func (t *recordedTxn) Aborted() bool { return t.inner.Aborted() }

// recordedROTxn is the recorded wrapper for transactions whose TM
// supports the read-only hint: it forwards SetReadOnly so recorded
// histories cover RO-mode executions. The declaration itself is not an
// event in the paper's model, so it is not logged.
type recordedROTxn struct{ *recordedTxn }

func (t *recordedROTxn) SetReadOnly() { t.inner.(ReadOnlyHinter).SetReadOnly() }
