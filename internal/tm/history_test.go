package tm_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/irtm"
)

func TestRecorderBasics(t *testing.T) {
	mem := memory.New(2, nil)
	rec := tm.Record(irtm.New(mem, 3))
	p0, p1 := mem.Proc(0), mem.Proc(1)

	// T0: committed update.
	tx := rec.Begin(p0)
	if err := tx.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(1, 6); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// T1: committed read-only.
	tx = rec.Begin(p1)
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// T2: explicit abort.
	tx = rec.Begin(p0)
	if _, err := tx.Read(2); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	h := rec.History()
	if len(h.Txns) != 3 {
		t.Fatalf("recorded %d transactions, want 3", len(h.Txns))
	}
	t0, t1, t2 := h.Txns[0], h.Txns[1], h.Txns[2]

	if t0.Status != tm.TxnCommitted || t1.Status != tm.TxnCommitted || t2.Status != tm.TxnAborted {
		t.Fatalf("statuses = %v %v %v", t0.Status, t1.Status, t2.Status)
	}
	if got := t0.WriteSet(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("T0 write set = %v, want [0 1]", got)
	}
	if !t0.ReadOnly() == true && len(t0.ReadSet()) != 0 {
		t.Fatalf("T0 read set = %v, want empty", t0.ReadSet())
	}
	if !t1.ReadOnly() {
		t.Fatal("T1 must be read-only")
	}
	if !h.PrecedesRT(t0, t1) {
		t.Fatal("T0 must really-time-precede T1")
	}
	if h.PrecedesRT(t1, t0) {
		t.Fatal("RT order inverted")
	}
	if got := len(h.Committed()); got != 2 {
		t.Fatalf("Committed() = %d txns, want 2", got)
	}
	s := h.String()
	for _, want := range []string{"T0", "W(X0,5)", "tryC->C", "R(X0)->5", "abort"} {
		if !strings.Contains(s, want) {
			t.Errorf("history string missing %q:\n%s", want, s)
		}
	}
}

func TestRecorderTracksAbortedOps(t *testing.T) {
	mem := memory.New(2, nil)
	rec := tm.Record(irtm.New(mem, 2))
	p0, p1 := mem.Proc(0), mem.Proc(1)

	tx := rec.Begin(p0)
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	// Conflicting committed write forces the next read to abort.
	if err := tm.Atomically(rec, p1, func(w tm.Txn) error { return w.Write(0, 9) }); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(1); err == nil {
		t.Fatal("expected abort")
	}
	h := rec.History()
	rec0 := h.Txns[0]
	if rec0.Status != tm.TxnAborted {
		t.Fatalf("status = %v, want aborted", rec0.Status)
	}
	last := rec0.Ops[len(rec0.Ops)-1]
	if last.Kind != tm.OpRead || !last.Aborted {
		t.Fatalf("last op = %+v, want aborted read", last)
	}
	// Invoked reads join the read set even when they return A_k (the
	// paper's data-set definition counts invocations).
	if rs := rec0.ReadSet(); len(rs) != 2 || rs[0] != 0 || rs[1] != 1 {
		t.Fatalf("read set = %v, want [0 1]", rs)
	}
}

func TestOnceAndAtomically(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := irtm.New(mem, 1)
	p := mem.Proc(0)

	committed, err := tm.Once(tmi, p, func(tx tm.Txn) error { return tx.Write(0, 1) })
	if err != nil || !committed {
		t.Fatalf("Once = %v, %v; want true, nil", committed, err)
	}
	// Atomically surfaces non-abort user errors without retrying.
	calls := 0
	err = tm.Atomically(tmi, p, func(tx tm.Txn) error {
		calls++
		return errSentinel
	})
	if err != errSentinel || calls != 1 {
		t.Fatalf("Atomically err=%v calls=%d; want sentinel after 1 call", err, calls)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestOpKindStrings(t *testing.T) {
	for kind, want := range map[tm.OpKind]string{
		tm.OpRead: "read", tm.OpWrite: "write", tm.OpTryCommit: "tryC", tm.OpAbort: "abort",
	} {
		if kind.String() != want {
			t.Errorf("OpKind %d = %q, want %q", int(kind), kind.String(), want)
		}
	}
	for st, want := range map[tm.TxnStatus]string{
		tm.TxnLive: "live", tm.TxnCommitted: "committed", tm.TxnAborted: "aborted",
	} {
		if st.String() != want {
			t.Errorf("TxnStatus %d = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestPropsString(t *testing.T) {
	p := tm.Props{Opaque: true, WeakDAP: true, Progressive: true}
	s := p.String()
	for _, want := range []string{"opaque", "weak-dap", "progressive"} {
		if !strings.Contains(s, want) {
			t.Errorf("Props string %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "multi-version") {
		t.Errorf("Props string %q contains unset property", s)
	}
}

func TestCheckObjectIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	tm.CheckObjectIndex(5, 5)
}

func TestHistoryJSONRoundTrip(t *testing.T) {
	mem := memory.New(2, nil)
	rec := tm.Record(irtm.New(mem, 2))
	p := mem.Proc(0)
	if err := tm.Atomically(rec, p, func(tx tm.Txn) error {
		if _, err := tx.Read(0); err != nil {
			return err
		}
		return tx.Write(1, 5)
	}); err != nil {
		t.Fatal(err)
	}
	h := rec.History()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back tm.History
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Txns) != len(h.Txns) {
		t.Fatalf("round trip lost transactions: %d vs %d", len(back.Txns), len(h.Txns))
	}
	for i := range h.Txns {
		a, b := h.Txns[i], back.Txns[i]
		if a.Status != b.Status || a.StartSeq != b.StartSeq || a.EndSeq != b.EndSeq || len(a.Ops) != len(b.Ops) {
			t.Fatalf("txn %d differs after round trip:\n%+v\n%+v", i, a, b)
		}
	}
	if h.String() != back.String() {
		t.Fatal("round-tripped history renders differently")
	}
}
