package tl2_test

import (
	"fmt"
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/tl2"
	"repro/internal/tm/tmtest"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return tl2.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestConstantStepReads verifies TL2's escape from Theorem 3: solo reads
// cost O(1) steps each regardless of read-set size (3 steps after the
// first, which also samples the clock).
func TestConstantStepReads(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := tl2.New(mem, 64)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	for i := 0; i < 64; i++ {
		sp := p.BeginSpan(fmt.Sprintf("read#%d", i+1))
		if _, err := tx.Read(i); err != nil {
			t.Fatalf("read #%d: %v", i+1, err)
		}
		p.EndSpan()
		want := uint64(3)
		if i == 0 {
			want = 4 // + the lazy clock sample
		}
		if sp.Steps != want {
			t.Fatalf("read #%d took %d steps, want %d: TL2 reads must not validate incrementally", i+1, sp.Steps, want)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestGlobalClockContention demonstrates why TL2 is not weak DAP: two
// update transactions with disjoint data sets both apply primitives to the
// global clock base object.
func TestGlobalClockContention(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.New(mem, 4)
	spans := make([]*memory.Span, 2)
	for i, x := range []int{0, 3} {
		p := mem.Proc(i)
		sp := p.BeginSpan("txn")
		if err := tm.Atomically(tmi, p, func(tx tm.Txn) error { return tx.Write(x, 1) }); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		p.EndSpan()
		spans[i] = sp
	}
	shared := 0
	for id := uint64(1); id <= uint64(mem.NumObjs()); id++ {
		o := mem.ObjAt(id)
		if spans[0].Touched(o) && spans[1].Touched(o) {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("disjoint-access TL2 writers shared no base object; expected clock contention (¬weak DAP)")
	}
}

// TestStaleTimestampAbort shows TL2's progressiveness gap: a transaction
// may abort upon reading an object that was updated *before* any of its
// reads ever conflicted, merely because its clock sample is stale.
func TestStaleTimestampAbort(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.New(mem, 2)
	p0, p1 := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(p0)
	if _, err := tx.Read(0); err != nil { // samples rv
		t.Fatalf("read(X0): %v", err)
	}
	if err := tm.Atomically(tmi, p1, func(w tm.Txn) error { return w.Write(1, 5) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := tx.Read(1); err == nil {
		t.Fatal("read(X1) succeeded; TL2 must abort on version > rv")
	}
}

// TestReadOnlyCommitFree verifies that read-only TL2 transactions commit
// with zero steps in tryC (the clock certifies the snapshot).
func TestReadOnlyCommitFree(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := tl2.New(mem, 8)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	for x := 0; x < 8; x++ {
		if _, err := tx.Read(x); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	sp := p.BeginSpan("tryC")
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	p.EndSpan()
	if sp.Steps != 0 {
		t.Fatalf("read-only tryC took %d steps, want 0", sp.Steps)
	}
}
