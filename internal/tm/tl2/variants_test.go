package tl2_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/lockword"
	"repro/internal/tm/tl2"
	"repro/internal/tm/tmtest"
)

var variantSpecs = []string{"gv4", "gv6", "ext", "gv4+ext", "gv6+ext", "gv7", "gv7+ext"}

// TestVariantConformance runs the full TM conformance suite on every clock
// strategy × extension combination: the strategies change the clock
// protocol, not the semantics.
func TestVariantConformance(t *testing.T) {
	for _, spec := range variantSpecs {
		opts, err := tl2.ParseVariant(spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec, func(t *testing.T) {
			tmtest.Run(t, func(mem *memory.Memory, nobj int) tm.TM {
				return tl2.NewWithOptions(mem, nobj, opts)
			})
		})
	}
}

// TestParseVariant covers the spec parser, including rejection.
func TestParseVariant(t *testing.T) {
	opts, err := tl2.ParseVariant("gv6+ext")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Clock != tl2.GV6 || !opts.Extension {
		t.Fatalf("gv6+ext parsed to %+v", opts)
	}
	if _, err := tl2.ParseVariant("gv9"); err == nil {
		t.Fatal("gv9 accepted")
	}
	// gv7 forces extension like gv6: block-stamped versions run ahead of
	// the published clock.
	g7, err := tl2.ParseVariant("gv7")
	if err != nil {
		t.Fatal(err)
	}
	if got := tl2.NewWithOptions(memory.New(1, nil), 1, g7).Name(); got != "tl2:gv7+ext" {
		t.Fatalf("gv7 Name() = %q, want tl2:gv7+ext (extension forced)", got)
	}
	mem := memory.New(1, nil)
	if got := tl2.NewWithOptions(mem, 1, opts).Name(); got != "tl2:gv6+ext" {
		t.Fatalf("Name() = %q, want tl2:gv6+ext", got)
	}
	if got := tl2.New(memory.New(1, nil), 1).Name(); got != "tl2" {
		t.Fatalf("plain Name() = %q, want tl2", got)
	}
}

// TestExtensionSurvivesStaleTimestamp is TestStaleTimestampAbort's mirror:
// with timestamp extension the same history — a disjoint write committing
// between a reader's clock sample and its next read — commits instead of
// aborting, because the revalidation finds every recorded read intact.
func TestExtensionSurvivesStaleTimestamp(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.NewWithOptions(mem, 2, tl2.Options{Extension: true})
	p0, p1 := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(p0)
	v0, err := tx.Read(0) // samples rv
	if err != nil {
		t.Fatalf("read(X0): %v", err)
	}
	if err := tm.Atomically(tmi, p1, func(w tm.Txn) error { return w.Write(1, 5) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	v1, err := tx.Read(1)
	if err != nil {
		t.Fatalf("read(X1) aborted despite extension: %v", err)
	}
	if v0 != 0 || v1 != 5 {
		t.Fatalf("read %d, %d; want 0, 5", v0, v1)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestExtensionAbortsOnRealConflict pins the other half of the extension
// contract: when the committed write *does* overwrite a recorded read, the
// revalidation fails and the reader aborts — it never silently mixes the
// old and new snapshots.
func TestExtensionAbortsOnRealConflict(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.NewWithOptions(mem, 2, tl2.Options{Extension: true})
	p0, p1 := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(p0)
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read(X0): %v", err)
	}
	if err := tm.Atomically(tmi, p1, func(w tm.Txn) error {
		if err := w.Write(0, 7); err != nil {
			return err
		}
		return w.Write(1, 7)
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := tx.Read(1); err == nil {
		t.Fatal("read(X1) succeeded after X0 was overwritten; extension must abort on an invalidated read")
	}
}

// TestCommitExtensionSkipsOwnLocks regresses the commit-time extension
// against the transaction's own write locks: a read-write transaction that
// has already locked a read-also-written object must not treat that lock
// as a foreign conflict while extending past a merely-newer write-set
// version (the lock word preserves the version, so the exact-version check
// still covers the entry).
func TestCommitExtensionSkipsOwnLocks(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.NewWithOptions(mem, 2, tl2.Options{Extension: true})
	p0, p1 := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(p0)
	v, err := tx.Read(0) // object 0 is read AND written: commit locks it first
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(0, v+1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(1, 99); err != nil { // blind write to object 1
		t.Fatal(err)
	}
	// A foreign commit bumps object 1's version past tx's read timestamp.
	if err := tm.Atomically(tmi, p1, func(w tm.Txn) error { return w.Write(1, 5) }); err != nil {
		t.Fatal(err)
	}
	// Commit locks object 0 (own read lock held), then meets object 1's
	// newer version and must extend — revalidating the read set while its
	// own lock sits on object 0.
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit aborted: the extension treated the transaction's own lock as a conflict: %v", err)
	}
	var got0, got1 uint64
	if err := tm.Atomically(tmi, p0, func(r tm.Txn) error {
		var err error
		if got0, err = r.Read(0); err != nil {
			return err
		}
		got1, err = r.Read(1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got0 != 1 || got1 != 99 {
		t.Fatalf("committed state X0=%d X1=%d, want 1 and 99", got0, got1)
	}
}

// TestGV4SharedTickValidates drives two update transactions through a GV4
// commit race deterministically enough to check the invariant the
// pass-on-failure scheme rests on: whatever ticks commits end up sharing,
// per-object version words never decrease and committed state is always
// the last writer's.
func TestGV4SharedTickValidates(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.NewWithOptions(mem, 4, tl2.Options{Clock: tl2.GV4})
	last := make([]uint64, 4)
	for round := 0; round < 20; round++ {
		for pid := 0; pid < 2; pid++ {
			p := mem.Proc(pid)
			x := (round + pid) % 4
			if err := tm.Atomically(tmi, p, func(w tm.Txn) error {
				v, err := w.Read(x)
				if err != nil {
					return err
				}
				return w.Write(x, v+1)
			}); err != nil {
				t.Fatalf("round %d pid %d: %v", round, pid, err)
			}
			// The object's version word must be monotone across commits.
			id := uint64(2 + x) // clock is obj 1; meta array follows
			w := p.Read(mem.ObjAt(id))
			if ver := lockword.Version(w); ver < last[x] {
				t.Fatalf("version of X%d decreased: %d → %d", x, last[x], ver)
			} else {
				last[x] = ver
			}
		}
	}
	for x := 0; x < 4; x++ {
		p := mem.Proc(0)
		var got uint64
		if err := tm.Atomically(tmi, p, func(w tm.Txn) error {
			v, err := w.Read(x)
			got = v
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got != 10 {
			t.Fatalf("X%d = %d, want 10 increments", x, got)
		}
	}
}
