// Package tl2 implements Transactional Locking II (Dice, Shalev, Shavit,
// DISC'06) on the simulated memory: a global version clock plus per-object
// versioned write locks. Reads are invisible and cost O(1) steps each — no
// incremental revalidation — because the global clock certifies snapshots.
//
// TL2 is the key ablation for Theorem 3: it escapes the Ω(m²) bound by
// violating weak DAP (every update transaction performs a nontrivial
// primitive on the single global clock, so transactions with disjoint data
// sets contend on a base object). It also trades progressiveness away: a
// transaction may abort upon reading an object whose version exceeds its
// read timestamp even when the writer is not concurrent.
package tl2

import (
	"sort"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/lockword"
)

// TM is a TL2 instance. Create with New.
type TM struct {
	mem   *memory.Memory
	clock *memory.Obj
	meta  []*memory.Obj
	val   []*memory.Obj
}

var _ tm.TM = (*TM)(nil)

// New creates a TL2 instance over nobj t-objects initialized to 0.
func New(mem *memory.Memory, nobj int) *TM {
	return &TM{
		mem:   mem,
		clock: mem.Alloc("tl2.clock"),
		meta:  mem.AllocArray("tl2.meta", nobj),
		val:   mem.AllocArray("tl2.val", nobj),
	}
}

// Name implements tm.TM.
func (t *TM) Name() string { return "tl2" }

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.meta) }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:                true,
		StrictSerializable:    true,
		WeakDAP:               false, // the global clock is shared by all
		InvisibleReads:        true,
		WeakInvisibleReads:    true,
		Progressive:           false, // stale read timestamps abort without concurrency
		StronglyProgressive:   false,
		SequentialProgress:    true,
		ICFLiveness:           true,
		UsesOnlyRWConditional: true,
	}
}

// Txn is a TL2 transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	rv      uint64 // read timestamp
	started bool
	rset    []int
	rvers   []uint64
	wvals   map[int]tm.Value
	worder  []int
	aborted bool
	done    bool
}

// Begin implements tm.TM. The read timestamp is sampled lazily at the first
// t-operation so that Begin itself takes no steps (matching the model,
// where transactions consist only of t-operations).
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

func (tx *Txn) start() {
	if !tx.started {
		tx.rv = tx.p.Read(tx.t.clock)
		tx.started = true
	}
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) abort() error {
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

// Read implements tm.Txn.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.meta))
	if tx.done {
		return 0, tm.ErrAborted
	}
	tx.start()
	if tx.wvals != nil {
		if v, ok := tx.wvals[x]; ok {
			return v, nil
		}
	}
	m1 := tx.p.Read(tx.t.meta[x])
	if lockword.Locked(m1) || lockword.Version(m1) > tx.rv {
		return 0, tx.abort()
	}
	v := tx.p.Read(tx.t.val[x])
	m2 := tx.p.Read(tx.t.meta[x])
	if m1 != m2 {
		return 0, tx.abort()
	}
	tx.rset = append(tx.rset, x)
	tx.rvers = append(tx.rvers, lockword.Version(m1))
	return v, nil
}

// Write implements tm.Txn (lazy write buffering).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.meta))
	if tx.done {
		return tm.ErrAborted
	}
	tx.start()
	if tx.wvals == nil {
		tx.wvals = make(map[int]tm.Value)
	}
	if _, ok := tx.wvals[x]; !ok {
		tx.worder = append(tx.worder, x)
	}
	tx.wvals[x] = v
	return nil
}

// Commit implements tm.Txn.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if len(tx.worder) == 0 {
		tx.done = true // read-only TL2 transactions commit without steps
		return nil
	}
	order := append([]int(nil), tx.worder...)
	sort.Ints(order)
	acquired := make([]uint64, 0, len(order))
	release := func() {
		for i, x := range order[:len(acquired)] {
			tx.p.Write(tx.t.meta[x], lockword.Unlocked(acquired[i]))
		}
	}
	for _, x := range order {
		m := tx.p.Read(tx.t.meta[x])
		if lockword.Locked(m) || lockword.Version(m) > tx.rv {
			release()
			return tx.abort()
		}
		if !tx.p.CAS(tx.t.meta[x], m, lockword.Lock(m)) {
			release()
			return tx.abort()
		}
		acquired = append(acquired, lockword.Version(m))
	}
	wv := tx.p.FetchAdd(tx.t.clock, 1) + 1
	if wv != tx.rv+1 {
		// Someone else advanced the clock: validate the read set.
		for i, x := range tx.rset {
			if _, mine := tx.wvals[x]; mine {
				continue
			}
			m := tx.p.Read(tx.t.meta[x])
			if lockword.Locked(m) || lockword.Version(m) != tx.rvers[i] {
				release()
				return tx.abort()
			}
		}
	}
	for _, x := range order {
		tx.p.Write(tx.t.val[x], tx.wvals[x])
		tx.p.Write(tx.t.meta[x], lockword.Unlocked(wv))
	}
	tx.done = true
	return nil
}

// Abort implements tm.Txn.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.aborted = true
		tx.done = true
	}
}
