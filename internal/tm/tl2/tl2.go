// Package tl2 implements Transactional Locking II (Dice, Shalev, Shavit,
// DISC'06) on the simulated memory: a global version clock plus per-object
// versioned write locks. Reads are invisible and cost O(1) steps each — no
// incremental revalidation — because the global clock certifies snapshots.
//
// TL2 is the key ablation for Theorem 3: it escapes the Ω(m²) bound by
// violating weak DAP (every update transaction performs a nontrivial
// primitive on the single global clock, so transactions with disjoint data
// sets contend on a base object). It also trades progressiveness away: a
// transaction may abort upon reading an object whose version exceeds its
// read timestamp even when the writer is not concurrent.
package tl2

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/lockword"
)

// ClockStrategy selects how update commits advance the global version
// clock — the same ablation axis as the native repro/stm engine, so the
// simulated abort-ratio sweeps (E5) and the native throughput benchmarks
// (E8) measure one design space.
type ClockStrategy int

const (
	// GV1 is TL2's unconditional fetch-and-increment.
	GV1 ClockStrategy = iota
	// GV4 is pass-on-failure: a losing increment CAS adopts the winner's
	// clock value as its write version instead of retrying.
	GV4
	// GV6 samples increments: one commit in GV6SamplePeriod publishes an
	// increment; the rest use clock+1 without publishing, and readers that
	// meet a version ahead of the clock bump the clock forward themselves.
	GV6
	// GV7 batches allocation: one CAS on a separate allocator word claims
	// a block of GV7BlockSize ticks, and commits stamp write versions from
	// the block without touching the published clock at all — the
	// fetch-and-increment's cost is paid once per block instead of once
	// per commit. Like GV6 the published clock lags committed versions, so
	// readers help the clock forward and extension is mandatory.
	GV7
)

func (s ClockStrategy) String() string {
	switch s {
	case GV1:
		return "gv1"
	case GV4:
		return "gv4"
	case GV6:
		return "gv6"
	case GV7:
		return "gv7"
	}
	return "unknown"
}

// Options configures a TL2 variant.
type Options struct {
	// Clock selects the commit-time clock-advance rule (default GV1, the
	// behaviour of plain "tl2").
	Clock ClockStrategy
	// Extension enables read-timestamp extension: a read that observes a
	// version newer than the transaction's read timestamp revalidates the
	// read set and extends the timestamp instead of aborting, so only
	// genuinely invalidated reads abort.
	Extension bool
	// GV6SamplePeriod is the number of commits per published increment
	// under GV6 (default 4; the simulator's workloads are small).
	GV6SamplePeriod int
	// GV7BlockSize is the number of ticks per allocator claim under GV7
	// (default 4; the simulator's workloads are small).
	GV7BlockSize int
}

// ParseVariant parses a "+"-separated option spec — e.g. "gv4", "ext",
// "gv6+ext" — as used in the registry's "tl2:<spec>" names.
func ParseVariant(spec string) (Options, error) {
	var o Options
	for _, part := range strings.Split(spec, "+") {
		switch part {
		case "gv1":
			o.Clock = GV1
		case "gv4":
			o.Clock = GV4
		case "gv6":
			o.Clock = GV6
		case "gv7":
			o.Clock = GV7
		case "ext":
			o.Extension = true
		default:
			return o, fmt.Errorf("tl2: unknown variant option %q in %q (want gv1, gv4, gv6, gv7, ext)", part, spec)
		}
	}
	return o, nil
}

// TM is a TL2 instance. Create with New.
type TM struct {
	mem   *memory.Memory
	clock *memory.Obj
	meta  []*memory.Obj
	val   []*memory.Obj
	opts  Options
	// commitSeq drives GV6's deterministic increment sampling (the
	// simulator's scheduler serializes all steps, so plain increment is
	// race-free).
	commitSeq int
	// clockAlloc is GV7's allocator word; blockNext/blockEnd are the
	// instance's current tick block (TM-level plain fields: schedule
	// points are the shared-memory operations, so the bookkeeping between
	// them is race-free — an instance-wide block is the simulator's
	// analogue of the native engine's per-descriptor cache).
	clockAlloc *memory.Obj
	blockNext  uint64
	blockEnd   uint64
}

var _ tm.TM = (*TM)(nil)

// New creates a TL2 instance over nobj t-objects initialized to 0.
func New(mem *memory.Memory, nobj int) *TM {
	return NewWithOptions(mem, nobj, Options{})
}

// NewWithOptions creates a TL2 variant over nobj t-objects initialized
// to 0.
func NewWithOptions(mem *memory.Memory, nobj int, opts Options) *TM {
	if opts.GV6SamplePeriod <= 0 {
		opts.GV6SamplePeriod = 4
	}
	if opts.GV7BlockSize <= 0 {
		opts.GV7BlockSize = 4
	}
	if opts.Clock == GV6 || opts.Clock == GV7 {
		// GV6 and GV7 require extension: unpublished increments (GV6) and
		// block-stamped versions (GV7) leave committed versions ahead of
		// the clock, so without extension even a solo transaction from
		// quiescence can abort on a stale timestamp — sequential progress
		// would be lost, not just performance.
		opts.Extension = true
	}
	t := &TM{
		mem:   mem,
		clock: mem.Alloc("tl2.clock"),
		meta:  mem.AllocArray("tl2.meta", nobj),
		val:   mem.AllocArray("tl2.val", nobj),
		opts:  opts,
	}
	if opts.Clock == GV7 {
		t.clockAlloc = mem.Alloc("tl2.clockAlloc")
		// Canonical empty block: blockNext > blockEnd. The zero value
		// (0, 0) would fail that test and stamp wv=0 — every object's
		// initial version — making the first commit invisible to
		// validation.
		t.blockNext, t.blockEnd = 1, 0
	}
	return t
}

// Name implements tm.TM; variants name themselves "tl2:gv4+ext"-style so
// experiment tables distinguish them.
func (t *TM) Name() string {
	var parts []string
	if t.opts.Clock != GV1 {
		parts = append(parts, t.opts.Clock.String())
	}
	if t.opts.Extension {
		parts = append(parts, "ext")
	}
	if len(parts) == 0 {
		return "tl2"
	}
	return "tl2:" + strings.Join(parts, "+")
}

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.meta) }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:             true,
		StrictSerializable: true,
		WeakDAP:            false, // the global clock is shared by all
		InvisibleReads:     true,
		WeakInvisibleReads: true,
		// Declared conservatively for all variants: plain TL2 aborts on a
		// stale read timestamp without concurrency. With Extension those
		// aborts become revalidations and only overwritten reads (real
		// conflicts with concurrent writers) abort, but the claim is left
		// unasserted here; the experiments measure it (E1 adversary:
		// tl2:ext commits in one attempt at Theorem-3 validation cost).
		Progressive:           false,
		StronglyProgressive:   false,
		SequentialProgress:    true,
		ICFLiveness:           true,
		UsesOnlyRWConditional: true,
	}
}

// Txn is a TL2 transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	rv      uint64 // read timestamp
	started bool
	rset    []int
	rvers   []uint64
	wvals   map[int]tm.Value
	worder  []int
	aborted bool
	done    bool
	// ro marks TL2's zero-validation read-only mode (tm.ReadOnlyHinter):
	// reads are certified against rv but never logged, so there is no
	// read set to revalidate — timestamp extension degenerates to the
	// empty-read-set re-begin, sound only while roReads is zero. Writes
	// inside a declared read-only transaction panic.
	ro      bool
	roReads int
}

var _ tm.ReadOnlyHinter = (*Txn)(nil)

// SetReadOnly implements tm.ReadOnlyHinter: the transaction runs on the
// zero-logging read-only fast path. Must be called before the first
// t-operation.
func (tx *Txn) SetReadOnly() {
	if tx.started {
		panic("tl2: SetReadOnly after the first t-operation")
	}
	tx.ro = true
}

// Begin implements tm.TM. The read timestamp is sampled lazily at the first
// t-operation so that Begin itself takes no steps (matching the model,
// where transactions consist only of t-operations).
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

func (tx *Txn) start() {
	if !tx.started {
		tx.rv = tx.p.Read(tx.t.clock)
		tx.started = true
	}
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) abort() error {
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

// Read implements tm.Txn.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.meta))
	if tx.done {
		return 0, tm.ErrAborted
	}
	tx.start()
	if tx.wvals != nil {
		if v, ok := tx.wvals[x]; ok {
			return v, nil
		}
	}
	m1 := tx.p.Read(tx.t.meta[x])
	for attempt := 0; lockword.Locked(m1) || lockword.Version(m1) > tx.rv; attempt++ {
		if !lockword.Locked(m1) {
			// Keep the retry loop live under GV6: a version may run ahead
			// of the clock, so the clock must be bumped to cover it even
			// when this attempt aborts.
			tx.helpClock(lockword.Version(m1))
		}
		// In read-only mode there is no read set to revalidate, so
		// extension is sound only before the first certified read (it is
		// then a re-begin at the current clock); later stale reads abort,
		// and the retry's fresh timestamp covers the helped clock.
		if lockword.Locked(m1) || attempt >= 2 || !tx.t.opts.Extension ||
			(tx.ro && tx.roReads > 0) || !tx.extend(nil) {
			return 0, tx.abort()
		}
		m1 = tx.p.Read(tx.t.meta[x])
	}
	v := tx.p.Read(tx.t.val[x])
	m2 := tx.p.Read(tx.t.meta[x])
	if m1 != m2 {
		return 0, tx.abort()
	}
	if tx.ro {
		// Zero-validation read-only mode: the read is certified, nothing
		// is logged, and the (empty-write-set) commit validates nothing.
		tx.roReads++
		return v, nil
	}
	tx.rset = append(tx.rset, x)
	tx.rvers = append(tx.rvers, lockword.Version(m1))
	return v, nil
}

// helpClock advances the global clock to at least ver (needed under GV6,
// where commits may publish versions ahead of the clock).
func (tx *Txn) helpClock(ver uint64) {
	for {
		c := tx.p.Read(tx.t.clock)
		if c >= ver {
			return
		}
		if tx.p.CAS(tx.t.clock, c, ver) {
			return
		}
	}
}

// extend attempts a read-timestamp extension: sample the clock, revalidate
// every read entry at its recorded version, and on success advance rv to
// the sample — converting a stale-clock abort into an O(|read set|)
// revalidation, the same trade Theorem 3 prices for the invisible-read
// progressive TM. owned names the objects whose write locks THIS
// transaction has already acquired (commit-time extension runs while
// locking); only those locks are excused — the lock word preserves the
// version under the lock bit, so the exact-version comparison still
// covers them. Any other lock, including a foreign lock on an object this
// transaction merely intends to write, is a conflict: excusing it would
// let rv extend past a concurrent writer's publication and commit a lost
// update.
func (tx *Txn) extend(owned map[int]bool) bool {
	newRv := tx.p.Read(tx.t.clock)
	for i, x := range tx.rset {
		m := tx.p.Read(tx.t.meta[x])
		if (lockword.Locked(m) && !owned[x]) || lockword.Version(m) != tx.rvers[i] {
			return false
		}
	}
	tx.rv = newRv
	return true
}

// Write implements tm.Txn (lazy write buffering).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.meta))
	if tx.ro {
		panic("tl2: write inside a transaction declared read-only (SetReadOnly)")
	}
	if tx.done {
		return tm.ErrAborted
	}
	tx.start()
	if tx.wvals == nil {
		tx.wvals = make(map[int]tm.Value)
	}
	if _, ok := tx.wvals[x]; !ok {
		tx.worder = append(tx.worder, x)
	}
	tx.wvals[x] = v
	return nil
}

// Commit implements tm.Txn.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if len(tx.worder) == 0 {
		tx.done = true // read-only TL2 transactions commit without steps
		return nil
	}
	order := append([]int(nil), tx.worder...)
	sort.Ints(order)
	acquired := make([]uint64, 0, len(order))
	owned := make(map[int]bool, len(order))
	release := func() {
		for i, x := range order[:len(acquired)] {
			tx.p.Write(tx.t.meta[x], lockword.Unlocked(acquired[i]))
		}
	}
	for _, x := range order {
		m := tx.p.Read(tx.t.meta[x])
		if lockword.Version(m) > tx.rv && !lockword.Locked(m) && tx.t.opts.Extension {
			// One extension attempt before declaring failure: a write-set
			// variable whose version merely outran the read timestamp is
			// not a conflict if every read is still intact.
			tx.helpClock(lockword.Version(m))
			if tx.extend(owned) {
				m = tx.p.Read(tx.t.meta[x])
			}
		}
		if lockword.Locked(m) || lockword.Version(m) > tx.rv {
			release()
			return tx.abort()
		}
		if !tx.p.CAS(tx.t.meta[x], m, lockword.Lock(m)) {
			release()
			return tx.abort()
		}
		acquired = append(acquired, lockword.Version(m))
		owned[x] = true
	}
	wv, quiescent := tx.advanceClock()
	if !quiescent {
		// The clock cannot prove quiescence: validate the read set against
		// the recorded versions (exact match — the commit-time form of
		// extension, indifferent to how far the clock has moved).
		for i, x := range tx.rset {
			if _, mine := tx.wvals[x]; mine {
				continue
			}
			m := tx.p.Read(tx.t.meta[x])
			if lockword.Locked(m) || lockword.Version(m) != tx.rvers[i] {
				release()
				return tx.abort()
			}
		}
	}
	for _, x := range order {
		tx.p.Write(tx.t.val[x], tx.wvals[x])
		tx.p.Write(tx.t.meta[x], lockword.Unlocked(wv))
	}
	tx.done = true
	return nil
}

// advanceClock produces the commit's write version under the configured
// strategy. quiescent reports that the clock proves no foreign commit
// overlapped the transaction's read window, so read-set validation may be
// skipped (GV1: the increment returned rv+1; GV4: the CAS won from exactly
// rv; GV6: never — commits may leave the clock untouched, so an unchanged
// clock proves nothing).
func (tx *Txn) advanceClock() (wv uint64, quiescent bool) {
	switch tx.t.opts.Clock {
	case GV4:
		c := tx.p.Read(tx.t.clock)
		if tx.p.CAS(tx.t.clock, c, c+1) {
			return c + 1, c == tx.rv
		}
		return tx.p.Read(tx.t.clock), false // pass on failure: adopt the winner's tick
	case GV6:
		tx.t.commitSeq++
		if tx.t.commitSeq%tx.t.opts.GV6SamplePeriod == 0 {
			c := tx.p.Read(tx.t.clock)
			if tx.p.CAS(tx.t.clock, c, c+1) {
				return c + 1, false
			}
			return tx.p.Read(tx.t.clock), false
		}
		return tx.p.Read(tx.t.clock) + 1, false // unpublished increment
	case GV7:
		t := tx.t
		if t.blockNext > t.blockEnd {
			// Claim a fresh block strictly above both the allocator mark
			// and the published clock: the stamped version then always
			// exceeds any clock value a reader could have sampled, which
			// is the invariant extension recovers snapshots with. This CAS
			// is GV7's only shared-word RMW — one per GV7BlockSize commits.
			k := uint64(t.opts.GV7BlockSize)
			for {
				hi := tx.p.Read(t.clockAlloc)
				base := max(hi, tx.p.Read(t.clock))
				if tx.p.CAS(t.clockAlloc, hi, base+k) {
					t.blockNext, t.blockEnd = base+1, base+k
					break
				}
			}
		}
		wv = t.blockNext
		t.blockNext++
		// Never quiescent: the published clock deliberately lags the
		// stamped versions, so an unmoved clock proves nothing.
		return wv, false
	default:
		wv = tx.p.FetchAdd(tx.t.clock, 1) + 1
		return wv, wv == tx.rv+1
	}
}

// Abort implements tm.Txn.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.aborted = true
		tx.done = true
	}
}
