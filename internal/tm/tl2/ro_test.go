package tl2_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/sgltm"
	"repro/internal/tm/tl2"
)

// TestReadOnlyModeBasics: a declared read-only transaction reads committed
// state and commits without validation; the hint is only legal before the
// first t-operation, and writes inside it panic.
func TestReadOnlyModeBasics(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.New(mem, 4)
	w := mem.Proc(0)
	if err := tm.Atomically(tmi, w, func(tx tm.Txn) error { return tx.Write(1, 42) }); err != nil {
		t.Fatal(err)
	}
	r := mem.Proc(1)
	tx := tmi.Begin(r)
	if !tm.DeclareReadOnly(tx) {
		t.Fatal("tl2 transactions must support the read-only hint")
	}
	if v, err := tx.Read(1); err != nil || v != 42 {
		t.Fatalf("RO read = %d, %v; want 42, nil", v, err)
	}
	if v, err := tx.Read(0); err != nil || v != 0 {
		t.Fatalf("RO read = %d, %v; want 0, nil", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("RO commit: %v", err)
	}

	tx = tmi.Begin(r)
	tm.DeclareReadOnly(tx)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Write inside a declared read-only transaction did not panic")
			}
		}()
		_ = tx.Write(0, 1)
	}()

	tx = tmi.Begin(r)
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetReadOnly after the first t-operation did not panic")
			}
		}()
		tm.DeclareReadOnly(tx)
	}()
	tx.Abort()
}

// TestReadOnlyModeGV6SoloExtension: under GV6 a committed version may run
// ahead of the clock, so a solo RO transaction's first read needs the
// empty-read-set extension (a re-begin) to commit — the sequential-
// progress case the RO mode must not lose.
func TestReadOnlyModeGV6SoloExtension(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.NewWithOptions(mem, 4, tl2.Options{Clock: tl2.GV6, GV6SamplePeriod: 1 << 30})
	w := mem.Proc(0)
	// The huge sample period makes every commit leave the clock untouched:
	// object 2's version is now ahead of the clock.
	if err := tm.Atomically(tmi, w, func(tx tm.Txn) error { return tx.Write(2, 7) }); err != nil {
		t.Fatal(err)
	}
	r := mem.Proc(1)
	tx := tmi.Begin(r)
	tm.DeclareReadOnly(tx)
	if v, err := tx.Read(2); err != nil || v != 7 {
		t.Fatalf("solo RO read under GV6 = %d, %v; want 7, nil (empty-read-set extension)", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("RO commit: %v", err)
	}
}

// TestReadOnlyModeStaleAbortsAfterFirstRead: once an RO transaction has
// certified a read, a later stale read must abort (there is no read set to
// revalidate), and the retry with a fresh timestamp succeeds.
func TestReadOnlyModeStaleAbortsAfterFirstRead(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tl2.NewWithOptions(mem, 4, tl2.Options{Extension: true})
	r, w := mem.Proc(0), mem.Proc(1)

	tx := tmi.Begin(r)
	tm.DeclareReadOnly(tx)
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	// A foreign commit moves object 1 past the reader's timestamp.
	if err := tm.Atomically(tmi, w, func(tx tm.Txn) error { return tx.Write(1, 5) }); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(1); err == nil {
		t.Fatal("stale RO read after a certified read must abort, not extend")
	}
	tx.Abort()

	tx = tmi.Begin(r)
	tm.DeclareReadOnly(tx)
	if v, err := tx.Read(1); err != nil || v != 5 {
		t.Fatalf("retry read = %d, %v; want 5, nil", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderForwardsReadOnlyHint: histories recorded through tm.Record
// still reach the RO fast path, and the recorded history is well-formed.
func TestRecorderForwardsReadOnlyHint(t *testing.T) {
	mem := memory.New(1, nil)
	rec := tm.Record(tl2.New(mem, 2))
	p := mem.Proc(0)
	tx := rec.Begin(p)
	tm.DeclareReadOnly(tx)
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	h := rec.History()
	if len(h.Txns) != 1 || h.Txns[0].Status != tm.TxnCommitted || !h.Txns[0].ReadOnly() {
		t.Fatalf("recorded history malformed: %s", h)
	}

	// The contract survives recording in the negative direction too: a
	// recorded TM without an RO fast path must not report the hint applied.
	mem2 := memory.New(1, nil)
	recPlain := tm.Record(sgltm.New(mem2, 2))
	txPlain := recPlain.Begin(mem2.Proc(0))
	if tm.DeclareReadOnly(txPlain) {
		t.Fatal("DeclareReadOnly reported true for a recorded TM with no RO fast path")
	}
	txPlain.Abort()
}
