// Package lockword encodes the versioned write-lock word used by the
// lock-based TM implementations: bit 63 is the lock flag, bits 0..62 hold a
// monotonically increasing version number. One word per t-object keeps the
// algorithms strict data-partitioned, hence weak DAP.
package lockword

// Bit is the lock flag.
const Bit = uint64(1) << 63

// VersionMask extracts the version from a lock word.
const VersionMask = Bit - 1

// Locked reports whether the word's lock flag is set.
func Locked(w uint64) bool { return w&Bit != 0 }

// Version returns the version stored in the word.
func Version(w uint64) uint64 { return w & VersionMask }

// Lock returns the word with the lock flag set over version v.
func Lock(v uint64) uint64 { return v | Bit }

// Unlocked returns the word with the lock flag clear over version v.
func Unlocked(v uint64) uint64 { return v & VersionMask }
