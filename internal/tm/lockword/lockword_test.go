package lockword_test

import (
	"testing"
	"testing/quick"

	"repro/internal/tm/lockword"
)

func TestEncoding(t *testing.T) {
	if lockword.Locked(lockword.Unlocked(5)) {
		t.Error("Unlocked(5) reports locked")
	}
	if !lockword.Locked(lockword.Lock(5)) {
		t.Error("Lock(5) reports unlocked")
	}
	if v := lockword.Version(lockword.Lock(5)); v != 5 {
		t.Errorf("Version(Lock(5)) = %d, want 5", v)
	}
	if v := lockword.Version(lockword.Unlocked(5)); v != 5 {
		t.Errorf("Version(Unlocked(5)) = %d, want 5", v)
	}
}

// TestRoundTripProperty: the lock bit and version are independent for every
// version value in the 63-bit domain.
func TestRoundTripProperty(t *testing.T) {
	prop := func(raw uint64) bool {
		v := raw & lockword.VersionMask
		return lockword.Version(lockword.Lock(v)) == v &&
			lockword.Version(lockword.Unlocked(v)) == v &&
			lockword.Locked(lockword.Lock(v)) &&
			!lockword.Locked(lockword.Unlocked(v))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
