// Package tm defines the transactional-memory interface of the paper's
// model — t-objects, t-operations read_k(X), write_k(X,v) and tryC_k — along
// with the vocabulary the theorems are stated in: histories, real-time
// order, conflicts, and the TM property lattice (opacity, strict
// serializability, DAP, invisible reads, progressiveness).
//
// Concrete TM algorithms live in subpackages (irtm, tl2, norec, vrtm,
// sgltm, mvtm); all of them implement their t-operations purely by applying
// primitives to base objects of a *memory.Memory, so every theorem-relevant
// quantity (steps, distinct base objects, RMRs) is measured, not estimated.
package tm

import (
	"errors"
	"fmt"

	"repro/internal/memory"
)

// ErrAborted is returned by t-operations of an aborted transaction (the
// paper's special response A_k). A transaction that has observed ErrAborted
// is dead: all further operations return ErrAborted.
var ErrAborted = errors.New("tm: transaction aborted")

// Value is the domain V of t-object values.
type Value = uint64

// TM is a transactional memory implementation over a fixed set of t-objects
// indexed 0..NumObjects()-1.
type TM interface {
	// Name identifies the algorithm (e.g. "irtm", "tl2").
	Name() string
	// NumObjects returns the number of t-objects.
	NumObjects() int
	// Begin starts a new transaction executed by process p. Processes
	// issue transactions sequentially: a process must not Begin a new
	// transaction before the previous one committed or aborted.
	Begin(p *memory.Proc) Txn
	// Props declares which TM classes of the paper the algorithm belongs
	// to; experiments use it to interpret measurements.
	Props() Props
}

// Txn is a live transaction. All methods except Aborted must be called from
// the owning process only.
type Txn interface {
	// Read performs read_k(X) for t-object x, returning its value or
	// ErrAborted.
	Read(x int) (Value, error)
	// Write performs write_k(X, v), returning nil or ErrAborted.
	Write(x int, v Value) error
	// Commit performs tryC_k. It returns nil if the transaction committed
	// (C_k) and ErrAborted if it aborted (A_k).
	Commit() error
	// Abort aborts the transaction explicitly, releasing any resources.
	// It is idempotent and legal after ErrAborted.
	Abort()
	// Aborted reports whether the transaction has aborted.
	Aborted() bool
}

// ReadOnlyHinter is an optional Txn extension: a transaction declared
// read-only before its first t-operation may run on a TM's zero-logging
// read-only fast path (for TL2: no read-set recording, and timestamp
// extension restricted to the empty-read-set re-begin). Writing inside a
// declared read-only transaction is a usage error and panics. TMs without
// a fast path simply do not implement the interface; use DeclareReadOnly
// to apply the hint opportunistically.
type ReadOnlyHinter interface {
	// SetReadOnly declares the transaction read-only. Must be called
	// before the first t-operation.
	SetReadOnly()
}

// DeclareReadOnly declares tx read-only when its TM supports the hint and
// reports whether the hint was applied. Call it immediately after Begin.
func DeclareReadOnly(tx Txn) bool {
	if h, ok := tx.(ReadOnlyHinter); ok {
		h.SetReadOnly()
		return true
	}
	return false
}

// Props records membership in the paper's TM classes (Sections 2–3).
type Props struct {
	Opaque                bool // every transaction sees a consistent view
	StrictSerializable    bool // committed transactions are
	WeakDAP               bool // disjoint-access transactions do not contend
	InvisibleReads        bool // t-reads never apply nontrivial primitives
	WeakInvisibleReads    bool // ... at least when not concurrent with others
	Progressive           bool // aborts only on concurrent conflict
	StronglyProgressive   bool // and single-item conflict groups have a winner
	SequentialProgress    bool // solo transactions from quiescence commit
	MultiVersion          bool // read-only transactions read snapshots
	UsesOnlyRWConditional bool // read, write and conditional primitives only
	ICFLiveness           bool // interval-contention-free TM-liveness: an
	// operation invoked after a quiescent configuration completes in a
	// step contention-free extension (blocking TMs like sgltm lack this)
}

// String summarizes the set bits, for experiment table headers.
func (pr Props) String() string {
	s := ""
	add := func(b bool, tag string) {
		if b {
			if s != "" {
				s += ","
			}
			s += tag
		}
	}
	add(pr.Opaque, "opaque")
	add(pr.StrictSerializable, "strict-ser")
	add(pr.WeakDAP, "weak-dap")
	add(pr.InvisibleReads, "inv-reads")
	add(pr.WeakInvisibleReads, "weak-inv-reads")
	add(pr.Progressive, "progressive")
	add(pr.StronglyProgressive, "strongly-progressive")
	add(pr.MultiVersion, "multi-version")
	return s
}

// Atomically runs body inside transactions of m on process p, retrying on
// abort until a transaction commits. body may return ErrAborted (or call
// any t-operation that does) to trigger a retry; any other error aborts the
// transaction and is returned to the caller.
func Atomically(m TM, p *memory.Proc, body func(Txn) error) error {
	for {
		tx := m.Begin(p)
		err := body(tx)
		if err == nil {
			err = tx.Commit()
		}
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrAborted):
			tx.Abort()
			continue
		default:
			tx.Abort()
			return err
		}
	}
}

// Once runs body in a single transaction attempt and reports whether it
// committed. It is the building block for experiments that must observe
// aborts rather than hide them.
func Once(m TM, p *memory.Proc, body func(Txn) error) (committed bool, err error) {
	tx := m.Begin(p)
	if err := body(tx); err != nil {
		tx.Abort()
		if errors.Is(err, ErrAborted) {
			return false, nil
		}
		return false, err
	}
	if err := tx.Commit(); err != nil {
		if errors.Is(err, ErrAborted) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// CheckObjectIndex panics if x is out of range for a TM with n t-objects.
// TM implementations share it so misuse fails identically everywhere.
func CheckObjectIndex(x, n int) {
	if x < 0 || x >= n {
		panic(fmt.Sprintf("tm: t-object index %d out of range [0,%d)", x, n))
	}
}
