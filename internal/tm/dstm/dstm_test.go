package dstm_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/dstm"
	"repro/internal/tm/tmtest"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return dstm.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestInvisibleReads verifies DSTM's invisible-read variant: t-reads apply
// no nontrivial primitive.
func TestInvisibleReads(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := dstm.New(mem, 8)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	sp := p.BeginSpan("reads")
	for x := 0; x < 8; x++ {
		if _, err := tx.Read(x); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	p.EndSpan()
	if sp.Nontrivial != 0 {
		t.Fatalf("reads applied %d nontrivial primitives, want 0", sp.Nontrivial)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestIncrementalValidationGrowth verifies the Theorem 3 shape: read #i
// revalidates the i−1 previous entries, so per-read steps grow linearly.
func TestIncrementalValidationGrowth(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := dstm.New(mem, 32)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	var prev uint64
	for i := 1; i <= 32; i++ {
		sp := p.BeginSpan("read")
		if _, err := tx.Read(i - 1); err != nil {
			t.Fatalf("read #%d: %v", i, err)
		}
		p.EndSpan()
		if i > 2 && sp.Steps <= prev-1 {
			t.Fatalf("read #%d took %d steps, not growing over previous %d: validation missing", i, sp.Steps, prev)
		}
		prev = sp.Steps
	}
	if prev < 31 {
		t.Fatalf("last read took %d steps; expected ≥ m−1 validation accesses", prev)
	}
}

// TestAggressiveAbort verifies DSTM's contention manager: a writer opening
// an object owned by an active transaction aborts that owner and proceeds.
func TestAggressiveAbort(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := dstm.New(mem, 1)
	p0, p1 := mem.Proc(0), mem.Proc(1)

	victim := tmi.Begin(p0)
	if err := victim.Write(0, 11); err != nil {
		t.Fatalf("victim write: %v", err)
	}
	// Attacker opens the same object: victim must get aborted, attacker
	// proceeds and commits.
	if err := tm.Atomically(tmi, p1, func(w tm.Txn) error { return w.Write(0, 22) }); err != nil {
		t.Fatalf("attacker: %v", err)
	}
	if err := victim.Commit(); err == nil {
		t.Fatal("aborted victim committed")
	}
	var got uint64
	if err := tm.Atomically(tmi, p0, func(tx tm.Txn) error {
		v, err := tx.Read(0)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 22 {
		t.Fatalf("value = %d, want the attacker's 22", got)
	}
}

// TestOldValueVisibleWhileOwnerActive verifies the locator semantics: while
// a writer is active, readers see the old committed value (and writers'
// buffered value is invisible).
func TestOldValueVisibleWhileOwnerActive(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := dstm.New(mem, 1)
	p0, p1 := mem.Proc(0), mem.Proc(1)
	if err := tm.Atomically(tmi, p0, func(tx tm.Txn) error { return tx.Write(0, 5) }); err != nil {
		t.Fatal(err)
	}
	writer := tmi.Begin(p0)
	if err := writer.Write(0, 99); err != nil {
		t.Fatalf("writer: %v", err)
	}
	reader := tmi.Begin(p1)
	v, err := reader.Read(0)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if v != 5 {
		t.Fatalf("reader saw %d while the writer is active, want old value 5", v)
	}
	// Note: the reader's snapshot pins the owner's status; whichever of the
	// two finishes first wins, the other aborts. Let the writer commit.
	if err := writer.Commit(); err != nil {
		t.Fatalf("writer commit: %v", err)
	}
	if err := reader.Commit(); err == nil {
		t.Fatal("reader committed although its certified status changed under it")
	}
}

// TestLocatorAllocation verifies each acquisition installs a fresh locator.
func TestLocatorAllocation(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := dstm.New(mem, 2)
	p := mem.Proc(0)
	before := tmi.Locators()
	for i := 0; i < 5; i++ {
		if err := tm.Atomically(tmi, p, func(tx tm.Txn) error { return tx.Write(i%2, uint64(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	if got := tmi.Locators() - before; got != 5 {
		t.Fatalf("allocated %d locators for 5 single-object writers, want 5", got)
	}
}
