// Package dstm implements DSTM (Herlihy, Luchangco, Moir, Scherer,
// PODC'03) — the paper's reference [16] and the system Section 6 names as
// a matching upper bound for Theorem 3. Each t-object holds a pointer to
// an immutable *locator* (owner transaction, old value, new value); the
// current value is a function of the owner's status word. Writers install
// a fresh locator with a single CAS and become owners; commit is one CAS
// on the owner's status; conflicting writers abort the current owner
// (aggressive contention management), making the TM obstruction-free
// rather than lock-based.
//
// Reads are invisible and incrementally validated: every t-read re-checks
// that each previously read object's locator pointer and owner status are
// unchanged, so a read-only transaction of m reads performs Θ(m²) steps —
// DSTM sits squarely inside Theorem 3's hypothesis class (opaque, weak
// DAP, invisible reads, progressive) and pays exactly the bound.
//
// Locators and transaction descriptors are allocated from the simulated
// arena (three resp. one base objects), so every indirection is accounted.
package dstm

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/tm"
)

// Transaction status values stored in descriptor base objects.
const (
	stActive    = 0
	stCommitted = 1
	stAborted   = 2
)

// TM is a DSTM instance. Create with New.
type TM struct {
	mem  *memory.Memory
	ptr  []*memory.Obj // per t-object: address of the current locator
	locs int           // locator allocation counter (diagnostics)
}

var _ tm.TM = (*TM)(nil)

// locator is a view over three consecutive arena objects.
type locator struct {
	owner, oldv, newv *memory.Obj
}

// New creates a DSTM instance over nobj t-objects initialized to 0.
func New(mem *memory.Memory, nobj int) *TM {
	t := &TM{mem: mem, ptr: mem.AllocArray("dstm.ptr", nobj)}
	for x := 0; x < nobj; x++ {
		loc := t.alloc()
		// Initial locators have no owner (owner address 0), meaning the
		// committed value lives in newv (zero). Installed at construction
		// time, outside any process.
		mem.Poke(t.ptr[x], loc.owner.Addr())
	}
	return t
}

func (t *TM) alloc() locator {
	i := t.locs
	t.locs++
	return locator{
		owner: t.mem.Alloc(fmt.Sprintf("dstm.loc%d.owner", i)),
		oldv:  t.mem.Alloc(fmt.Sprintf("dstm.loc%d.oldv", i)),
		newv:  t.mem.Alloc(fmt.Sprintf("dstm.loc%d.newv", i)),
	}
}

func (t *TM) locatorAt(addr uint64) locator {
	return locator{
		owner: t.mem.ObjAt(addr),
		oldv:  t.mem.ObjAt(addr + 1),
		newv:  t.mem.ObjAt(addr + 2),
	}
}

// Name implements tm.TM.
func (t *TM) Name() string { return "dstm" }

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.ptr) }

// Locators returns the number of locators ever allocated.
func (t *TM) Locators() int { return t.locs }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:              true,
		StrictSerializable:  true,
		WeakDAP:             true, // locators and descriptors are per object/txn
		InvisibleReads:      true,
		WeakInvisibleReads:  true,
		Progressive:         true,  // every abort traces to a concurrent conflict
		StronglyProgressive: false, // duelling writers can mutually abort
		SequentialProgress:  true,
		ICFLiveness:         true,
		// CAS-only synchronization, but obstruction-free rather than
		// lock-based; still within Theorem 3's hypotheses.
		UsesOnlyRWConditional: true,
	}
}

type rentry struct {
	x       int
	locAddr uint64
	status  uint64 // owner status observed at first read (stCommitted if no owner)
}

// Txn is a DSTM transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	status  *memory.Obj // this transaction's descriptor (0 = active)
	rset    []rentry
	wlocs   map[int]locator
	aborted bool
	done    bool
}

// Begin implements tm.TM.
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

// desc lazily allocates the transaction descriptor (initial value 0 =
// active costs no steps).
func (tx *Txn) desc() *memory.Obj {
	if tx.status == nil {
		tx.status = tx.t.mem.Alloc("dstm.txn")
	}
	return tx.status
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) abort() error {
	if tx.status != nil {
		tx.p.CAS(tx.status, stActive, stAborted)
	}
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

// currentValue resolves the committed value of a locator and the status
// snapshot that certifies it.
func (tx *Txn) currentValue(loc locator) (val tm.Value, status uint64) {
	ownerAddr := tx.p.Read(loc.owner)
	if ownerAddr == 0 {
		return tx.p.Read(loc.newv), stCommitted
	}
	st := tx.p.Read(tx.t.mem.ObjAt(ownerAddr))
	if st == stCommitted {
		return tx.p.Read(loc.newv), st
	}
	return tx.p.Read(loc.oldv), st // active or aborted: old value rules
}

// validate re-checks every read entry: the object's locator pointer and
// its owner's status must be unchanged since the first read. This is the
// incremental validation Theorem 3 proves unavoidable.
func (tx *Txn) validate() bool {
	for _, e := range tx.rset {
		if tx.p.Read(tx.t.ptr[e.x]) != e.locAddr {
			return false
		}
		loc := tx.t.locatorAt(e.locAddr)
		ownerAddr := tx.p.Read(loc.owner)
		st := uint64(stCommitted)
		if ownerAddr != 0 {
			st = tx.p.Read(tx.t.mem.ObjAt(ownerAddr))
		}
		if st != e.status {
			return false
		}
	}
	return true
}

// Read implements tm.Txn.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.ptr))
	if tx.done {
		return 0, tm.ErrAborted
	}
	if loc, mine := tx.wlocs[x]; mine {
		return tx.p.Read(loc.newv), nil // we own x: pending value
	}
	locAddr := tx.p.Read(tx.t.ptr[x])
	loc := tx.t.locatorAt(locAddr)
	v, st := tx.currentValue(loc)
	if !tx.validate() {
		return 0, tx.abort()
	}
	for i, e := range tx.rset {
		if e.x == x {
			// Re-read: keep the original entry if the certificate matches,
			// otherwise the snapshot moved and we must abort.
			if e.locAddr == locAddr && e.status == st {
				return v, nil
			}
			_ = i
			return 0, tx.abort()
		}
	}
	tx.rset = append(tx.rset, rentry{x: x, locAddr: locAddr, status: st})
	return v, nil
}

// Write implements tm.Txn: open the object for writing by installing a
// fresh locator owned by this transaction (eager acquisition, lazy value).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.ptr))
	if tx.done {
		return tm.ErrAborted
	}
	if loc, mine := tx.wlocs[x]; mine {
		tx.p.Write(loc.newv, v) // already own x: update in place
		return nil
	}
	locAddr := tx.p.Read(tx.t.ptr[x])
	loc := tx.t.locatorAt(locAddr)
	ownerAddr := tx.p.Read(loc.owner)
	st := uint64(stCommitted)
	if ownerAddr != 0 {
		owner := tx.t.mem.ObjAt(ownerAddr)
		st = tx.p.Read(owner)
		if st == stActive {
			// Aggressive contention management: abort the current owner.
			tx.p.CAS(owner, stActive, stAborted)
			st = tx.p.Read(owner)
			if st == stActive {
				return tx.abort() // unreachable with CAS semantics; defensive
			}
		}
	}
	var cur tm.Value
	if st == stCommitted {
		cur = tx.p.Read(loc.newv)
	} else {
		cur = tx.p.Read(loc.oldv)
	}
	// If we read x earlier, the value we are about to bury in oldv must
	// still be the one we read; otherwise our snapshot is stale.
	if !tx.validate() {
		return tx.abort()
	}
	newLoc := tx.t.alloc()
	tx.p.Write(newLoc.owner, tx.desc().Addr())
	tx.p.Write(newLoc.oldv, cur)
	tx.p.Write(newLoc.newv, v)
	if !tx.p.CAS(tx.t.ptr[x], locAddr, newLoc.owner.Addr()) {
		return tx.abort() // a concurrent writer beat us to the install
	}
	// Re-certify any read entry for x against our own locator: our status
	// stays active until tryC, so later validations remain stable.
	for i, e := range tx.rset {
		if e.x == x {
			tx.rset[i] = rentry{x: x, locAddr: newLoc.owner.Addr(), status: stActive}
		}
	}
	if tx.wlocs == nil {
		tx.wlocs = make(map[int]locator)
	}
	tx.wlocs[x] = newLoc
	return nil
}

// Commit implements tm.Txn: validate the read set one last time, then
// atomically flip the descriptor from active to committed. Every owned
// locator's newv becomes the committed value in that instant.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if !tx.validate() {
		return tx.abort()
	}
	if len(tx.wlocs) == 0 {
		tx.done = true
		return nil
	}
	if !tx.p.CAS(tx.desc(), stActive, stCommitted) {
		// A conflicting writer aborted us first.
		tx.aborted = true
		tx.done = true
		return tm.ErrAborted
	}
	tx.done = true
	return nil
}

// Abort implements tm.Txn.
func (tx *Txn) Abort() {
	if !tx.done {
		_ = tx.abort()
	}
}
