package norec_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/norec"
	"repro/internal/tm/tmtest"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return norec.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestWeakInvisibleReads verifies NOrec's weak invisible reads: a
// transaction not concurrent with any other applies no nontrivial
// primitive in its t-reads.
func TestWeakInvisibleReads(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := norec.New(mem, 16)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	sp := p.BeginSpan("reads")
	for x := 0; x < 16; x++ {
		if _, err := tx.Read(x); err != nil {
			t.Fatalf("read(X%d): %v", x, err)
		}
	}
	p.EndSpan()
	if sp.Nontrivial != 0 {
		t.Fatalf("solo reads applied %d nontrivial primitives, want 0 (weak invisible reads)", sp.Nontrivial)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestSoloConstantReads verifies that step-contention-free NOrec reads cost
// O(1) steps (one value read plus the seqlock check; +1 on the first read
// for the snapshot).
func TestSoloConstantReads(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := norec.New(mem, 32)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	for i := 0; i < 32; i++ {
		sp := p.BeginSpan("read")
		if _, err := tx.Read(i); err != nil {
			t.Fatalf("read #%d: %v", i, err)
		}
		p.EndSpan()
		want := uint64(2)
		if i == 0 {
			want = 3 // + the snapshot sample
		}
		if sp.Steps != want {
			t.Fatalf("solo read #%d took %d steps, want %d", i+1, sp.Steps, want)
		}
	}
}

// TestRevalidationCost verifies the quadratic path: after a concurrent
// commit, the next read revalidates the whole read set by value — the
// measured step count must grow with |rset|.
func TestRevalidationCost(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := norec.New(mem, 64)
	reader, writer := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(reader)
	for i := 0; i < 32; i++ {
		if _, err := tx.Read(i); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	// Commit a disjoint write: bumps the sequence number but changes no
	// value the reader saw.
	if err := tm.Atomically(tmi, writer, func(w tm.Txn) error { return w.Write(40, 1) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	sp := reader.BeginSpan("read-with-revalidation")
	if _, err := tx.Read(33); err != nil {
		t.Fatalf("read after disjoint commit aborted: %v (value validation must pass)", err)
	}
	reader.EndSpan()
	if sp.Steps < 32 {
		t.Fatalf("post-commit read took %d steps; expected ≥ 32 (full read-set revalidation)", sp.Steps)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestValueBasedValidationSurvivesABA verifies NOrec's signature behaviour:
// a write that restores the previously read value does not abort the
// reader (value-based, not version-based, validation).
func TestValueBasedValidationSurvivesABA(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := norec.New(mem, 2)
	reader, writer := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(reader)
	v0, err := tx.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Writer changes X0 and then changes it back.
	for _, v := range []uint64{77, v0} {
		if err := tm.Atomically(tmi, writer, func(w tm.Txn) error { return w.Write(0, v) }); err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	if _, err := tx.Read(1); err != nil {
		t.Fatalf("read after ABA aborted: %v (value validation must tolerate ABA)", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after ABA: %v", err)
	}
}

// TestChangedValueAborts is the complement: a lasting change to a read
// value aborts the reader at its next validation point.
func TestChangedValueAborts(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := norec.New(mem, 2)
	reader, writer := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(reader)
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := tm.Atomically(tmi, writer, func(w tm.Txn) error { return w.Write(0, 123) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := tx.Read(1); err == nil {
		t.Fatal("read succeeded although a read value changed; NOrec must abort")
	}
}
