// Package norec implements NOrec (Dalessandro, Spear, Scott, PPoPP'10) on
// the simulated memory: a single global sequence lock and value-based
// validation, with no per-object metadata ("no ownership records").
//
// NOrec's role in the reproduction is twofold. First, it is strongly
// progressive and strictly serializable while accessing a single t-object
// with read/write/CAS only, so it is a valid substrate M for the mutex
// construction L(M) of Section 5. Second, it is the other ablation shape
// for Theorem 3: solo (step-contention-free) read-only transactions pay
// O(1) per read — NOrec has *weak* invisible reads but is maximally
// non-DAP, every commit contending on the global seqlock — while under the
// Lemma-2 adversary each concurrent writer forces a full value-based
// revalidation, reproducing the quadratic blow-up.
package norec

import (
	"repro/internal/memory"
	"repro/internal/tm"
)

// TM is a NOrec instance. Create with New.
type TM struct {
	mem *memory.Memory
	seq *memory.Obj // even: unlocked; odd: write commit in flight
	val []*memory.Obj
}

var _ tm.TM = (*TM)(nil)

// New creates a NOrec instance over nobj t-objects initialized to 0.
func New(mem *memory.Memory, nobj int) *TM {
	return &TM{
		mem: mem,
		seq: mem.Alloc("norec.seq"),
		val: mem.AllocArray("norec.val", nobj),
	}
}

// Name implements tm.TM.
func (t *TM) Name() string { return "norec" }

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.val) }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:                true,
		StrictSerializable:    true,
		WeakDAP:               false, // single global seqlock
		InvisibleReads:        true,  // t-reads apply only trivial primitives
		WeakInvisibleReads:    true,
		Progressive:           true, // value-based validation fails only on real change
		StronglyProgressive:   true, // the seqlock CAS has a winner
		SequentialProgress:    true,
		ICFLiveness:           true,
		UsesOnlyRWConditional: true,
	}
}

// Txn is a NOrec transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	snap    uint64
	started bool
	rset    []int
	rvals   []tm.Value
	wvals   map[int]tm.Value
	worder  []int
	aborted bool
	done    bool
}

// Begin implements tm.TM.
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

func (tx *Txn) start() error {
	if tx.started {
		return nil
	}
	// Wait for an even (unlocked) sequence number. A writer holds the
	// sequence lock only for the finite duration of its write-back, so the
	// wait terminates; aborting here instead would not be progressive (the
	// in-flight writer need not conflict with our data set).
	for {
		s := tx.p.Read(tx.t.seq)
		if s&1 == 0 {
			tx.snap = s
			break
		}
	}
	tx.started = true
	return nil
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) abort() error {
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

// validate re-reads the whole read set by value after the global sequence
// number moved, re-sampling until a stable even sequence is observed. This
// is NOrec's quadratic path: each concurrent commit costs O(|rset|).
func (tx *Txn) validate() error {
	for {
		s := tx.p.Read(tx.t.seq)
		if s&1 == 1 {
			continue // writer mid-commit: wait for it to finish
		}
		ok := true
		for i, x := range tx.rset {
			if tx.p.Read(tx.t.val[x]) != tx.rvals[i] {
				ok = false
				break
			}
		}
		if tx.p.Read(tx.t.seq) != s {
			continue // concurrent commit: the scan may be torn, redo it
		}
		if !ok {
			return tx.abort() // stable snapshot with a changed value: conflict
		}
		tx.snap = s
		return nil
	}
}

// Read implements tm.Txn.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.val))
	if tx.done {
		return 0, tm.ErrAborted
	}
	if err := tx.start(); err != nil {
		return 0, err
	}
	if tx.wvals != nil {
		if v, ok := tx.wvals[x]; ok {
			return v, nil
		}
	}
	v := tx.p.Read(tx.t.val[x])
	for tx.p.Read(tx.t.seq) != tx.snap {
		if err := tx.validate(); err != nil {
			return 0, err
		}
		v = tx.p.Read(tx.t.val[x])
	}
	tx.rset = append(tx.rset, x)
	tx.rvals = append(tx.rvals, v)
	return v, nil
}

// Write implements tm.Txn (lazy write buffering).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.val))
	if tx.done {
		return tm.ErrAborted
	}
	if err := tx.start(); err != nil {
		return err
	}
	if tx.wvals == nil {
		tx.wvals = make(map[int]tm.Value)
	}
	if _, ok := tx.wvals[x]; !ok {
		tx.worder = append(tx.worder, x)
	}
	tx.wvals[x] = v
	return nil
}

// Commit implements tm.Txn.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if !tx.started || len(tx.worder) == 0 {
		tx.done = true
		return nil
	}
	for !tx.p.CAS(tx.t.seq, tx.snap, tx.snap+1) {
		// The clock moved: revalidate (value-based), then retry the CAS
		// with the refreshed snapshot. Aborts only when a value actually
		// changed, so at least one of any set of single-item contenders
		// commits (strong progressiveness).
		if err := tx.validate(); err != nil {
			return err
		}
	}
	for _, x := range tx.worder {
		tx.p.Write(tx.t.val[x], tx.wvals[x])
	}
	tx.p.Write(tx.t.seq, tx.snap+2)
	tx.done = true
	return nil
}

// Abort implements tm.Txn.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.aborted = true
		tx.done = true
	}
}
