package irtm_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/irtm"
	"repro/internal/tm/tmtest"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return irtm.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestInvisibleReads verifies the strong invisible-reads property: t-reads
// of a read-only transaction apply no nontrivial primitive, ever.
func TestInvisibleReads(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := irtm.New(mem, 16)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	for x := 0; x < 16; x++ {
		sp := p.BeginSpan("read")
		if _, err := tx.Read(x); err != nil {
			t.Fatalf("read(X%d): %v", x, err)
		}
		p.EndSpan()
		if sp.Nontrivial != 0 {
			t.Fatalf("read(X%d) applied %d nontrivial primitives; invisible reads forbid any", x, sp.Nontrivial)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestIncrementalValidationSteps verifies the exact per-read step counts of
// the Section 6 matching upper bound: read #i costs 3 + (i-1) steps solo.
func TestIncrementalValidationSteps(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := irtm.New(mem, 32)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	for i := 1; i <= 32; i++ {
		sp := p.BeginSpan(fmt.Sprintf("read#%d", i))
		if _, err := tx.Read(i - 1); err != nil {
			t.Fatalf("read #%d: %v", i, err)
		}
		p.EndSpan()
		want := uint64(3 + i - 1)
		if sp.Steps != want {
			t.Fatalf("read #%d took %d steps, want %d (incremental validation)", i, sp.Steps, want)
		}
	}
}

// TestStrictDataPartitioning verifies the weak-DAP witness: transactions
// with disjoint data sets touch disjoint base objects (Lemma 1's premise).
func TestStrictDataPartitioning(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := irtm.New(mem, 8)
	spans := make([]*memory.Span, 2)
	for i, objs := range [][]int{{0, 1, 2}, {5, 6, 7}} {
		p := mem.Proc(i)
		sp := p.BeginSpan("txn")
		err := tm.Atomically(tmi, p, func(tx tm.Txn) error {
			for _, x := range objs {
				if _, err := tx.Read(x); err != nil {
					return err
				}
				if err := tx.Write(x, 1); err != nil {
					return err
				}
			}
			return nil
		})
		p.EndSpan()
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		spans[i] = sp
	}
	for id := uint64(1); id <= uint64(mem.NumObjs()); id++ {
		o := mem.ObjAt(id)
		if spans[0].Touched(o) && spans[1].Touched(o) {
			t.Errorf("disjoint-access transactions both touched base object %s", o.Name())
		}
	}
}

// TestConflictAbort verifies progressiveness mechanics: a reader aborts iff
// a concurrent writer actually invalidated or locked what it read.
func TestConflictAbort(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := irtm.New(mem, 2)
	reader, writer := mem.Proc(0), mem.Proc(1)

	tx := tmi.Begin(reader)
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	// A concurrent committed write to an unrelated object must not abort us.
	if err := tm.Atomically(tmi, writer, func(w tm.Txn) error { return w.Write(1, 9) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := tx.Read(1); err != nil {
		t.Fatalf("read(X1) after disjoint write: %v (spurious abort)", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	// A concurrent committed write to a read object must abort the next
	// read (validation catches the version change).
	tx = tmi.Begin(reader)
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := tm.Atomically(tmi, writer, func(w tm.Txn) error { return w.Write(0, 7) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := tx.Read(1); err == nil {
		t.Fatal("read(X1) succeeded although X0 changed under us; opacity requires abort")
	}
}

// TestWriteConflictProperty property-checks with testing/quick that two
// sequentially committed writers always leave the last value, for arbitrary
// object indices and values.
func TestWriteConflictProperty(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := irtm.New(mem, 8)
	prop := func(x uint8, a, b uint32) bool {
		obj := int(x % 8)
		if err := tm.Atomically(tmi, mem.Proc(0), func(tx tm.Txn) error {
			return tx.Write(obj, uint64(a))
		}); err != nil {
			return false
		}
		if err := tm.Atomically(tmi, mem.Proc(1), func(tx tm.Txn) error {
			return tx.Write(obj, uint64(b))
		}); err != nil {
			return false
		}
		var got uint64
		if err := tm.Atomically(tmi, mem.Proc(0), func(tx tm.Txn) error {
			v, err := tx.Read(obj)
			got = v
			return err
		}); err != nil {
			return false
		}
		return got == uint64(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
