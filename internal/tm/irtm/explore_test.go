package irtm_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tm/irtm"
)

// TestExhaustiveOpacity model-checks irtm's opacity over *every* schedule
// with at most two preemptions for a two-process, two-object workload in
// which both transactions read both objects and write one. Every recorded
// history — including aborting interleavings — must be opaque and
// strictly serializable.
func TestExhaustiveOpacity(t *testing.T) {
	build := func() (*sched.Scheduler, func() error) {
		mem := memory.New(2, nil)
		rec := tm.Record(irtm.New(mem, 2))
		s := sched.New(mem)
		for i := 0; i < 2; i++ {
			i := i
			s.Go(i, func(p *memory.Proc) {
				tx := rec.Begin(p)
				ok := true
				for x := 0; x < 2 && ok; x++ {
					_, err := tx.Read(x)
					ok = err == nil
				}
				if ok {
					ok = tx.Write(i, uint64(i)+10) == nil
				}
				if ok {
					_ = tx.Commit()
				} else {
					tx.Abort()
				}
			})
		}
		return s, func() error {
			h := rec.History()
			if !check.Opaque(h).OK {
				return fmt.Errorf("history not opaque:\n%s", h)
			}
			if !check.StrictlySerializable(h).OK {
				return fmt.Errorf("history not strictly serializable:\n%s", h)
			}
			if v := check.Progressive(h); len(v) != 0 {
				return fmt.Errorf("progressiveness violations %v in:\n%s", v, h)
			}
			return nil
		}
	}
	res, err := sched.Explore(build, sched.ExploreOpts{MaxPreemptions: 2, MaxRuns: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Logf("bounded space not exhausted within %d runs", res.Runs)
	}
	if res.Runs < 50 {
		t.Fatalf("only %d runs; exploration did not branch", res.Runs)
	}
	t.Logf("%d runs (%d truncated), exhausted=%v", res.Runs, res.Truncated, res.Exhausted)
}
