// Package irtm implements the paper's central object of study: a
// progressive, opaque TM with (strong) invisible reads that is strict
// data-partitioned — the strongest form of disjoint-access parallelism —
// and therefore weak DAP. It is the matching upper bound of Section 6
// ([19]/DSTM-style): every t-read incrementally revalidates the entire read
// set, so a read-only transaction with read set of size m performs exactly
// m(m−1)/2 validation steps plus Θ(m) snapshot steps, witnessing that
// Theorem 3's Ω(m²) bound is tight.
//
// Representation: two base objects per t-object X — meta(X), a versioned
// write-lock word (see package lockword), and val(X), the current value.
// No other shared state exists, so transactions on disjoint data sets
// access disjoint base objects.
//
// Algorithm:
//
//	read(X):  m1 := meta(X); abort if locked
//	          v := val(X); m2 := meta(X); abort if m1 ≠ m2
//	          revalidate every previously read Y: meta(Y) must still equal
//	          the version recorded at first read (abort otherwise)
//	write(X): buffered locally (lazy versioned locking)
//	tryC:     CAS-acquire meta(X) for every X in the write set (abort on
//	          any conflict), validate the read set once more, install
//	          values, release locks with version+1
//
// Every abort is caused by an observably concurrent conflicting
// transaction (a held lock or a changed version), so the TM is progressive;
// on a single contended item the CAS winner commits, so it is strongly
// progressive.
package irtm

import (
	"sort"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/lockword"
)

// TM is the progressive invisible-read TM. Create with New.
type TM struct {
	mem  *memory.Memory
	meta []*memory.Obj
	val  []*memory.Obj
}

var _ tm.TM = (*TM)(nil)

// New creates an irtm instance over nobj t-objects, all initialized to 0,
// allocating its base objects from mem.
func New(mem *memory.Memory, nobj int) *TM {
	return &TM{
		mem:  mem,
		meta: mem.AllocArray("irtm.meta", nobj),
		val:  mem.AllocArray("irtm.val", nobj),
	}
}

// Name implements tm.TM.
func (t *TM) Name() string { return "irtm" }

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.meta) }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:                true,
		StrictSerializable:    true,
		WeakDAP:               true,
		InvisibleReads:        true,
		WeakInvisibleReads:    true,
		Progressive:           true,
		StronglyProgressive:   true,
		SequentialProgress:    true,
		ICFLiveness:           true,
		UsesOnlyRWConditional: true,
	}
}

type rentry struct {
	x   int
	ver uint64
}

// Txn is an irtm transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	rset    []rentry
	wvals   map[int]tm.Value
	worder  []int
	aborted bool
	done    bool
}

// Begin implements tm.TM.
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) abort() error {
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

// Read implements tm.Txn.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.meta))
	if tx.done {
		return 0, tm.ErrAborted
	}
	if tx.wvals != nil {
		if v, ok := tx.wvals[x]; ok {
			return v, nil
		}
	}
	for _, e := range tx.rset {
		if e.x == x {
			// Re-read of an already-read object: return the snapshot value
			// without new base-object accesses is not possible since we do
			// not buffer values; re-read and verify the version instead.
			m := tx.p.Read(tx.t.meta[x])
			if m != e.ver {
				return 0, tx.abort()
			}
			v := tx.p.Read(tx.t.val[x])
			return v, nil
		}
	}
	m1 := tx.p.Read(tx.t.meta[x])
	if lockword.Locked(m1) {
		return 0, tx.abort()
	}
	v := tx.p.Read(tx.t.val[x])
	m2 := tx.p.Read(tx.t.meta[x])
	if m1 != m2 {
		return 0, tx.abort()
	}
	// Incremental validation: the step-complexity heart of Theorem 3(1).
	for _, e := range tx.rset {
		if tx.p.Read(tx.t.meta[e.x]) != e.ver {
			return 0, tx.abort()
		}
	}
	tx.rset = append(tx.rset, rentry{x: x, ver: m1})
	return v, nil
}

// Write implements tm.Txn. Writes are buffered and installed at commit
// (lazy versioned locking).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.meta))
	if tx.done {
		return tm.ErrAborted
	}
	if tx.wvals == nil {
		tx.wvals = make(map[int]tm.Value)
	}
	if _, ok := tx.wvals[x]; !ok {
		tx.worder = append(tx.worder, x)
	}
	tx.wvals[x] = v
	return nil
}

// Commit implements tm.Txn.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if len(tx.worder) == 0 {
		// Read-only: every read was validated against the whole read set
		// when it was performed, so the snapshot is already consistent.
		tx.done = true
		return nil
	}
	order := append([]int(nil), tx.worder...)
	sort.Ints(order)
	acquired := make([]uint64, 0, len(order)) // versions under our locks
	release := func() {
		for i, x := range order[:len(acquired)] {
			tx.p.Write(tx.t.meta[x], lockword.Unlocked(acquired[i]))
		}
	}
	for _, x := range order {
		m := tx.p.Read(tx.t.meta[x])
		if lockword.Locked(m) {
			release()
			return tx.abort()
		}
		if ver, ok := tx.readVersion(x); ok && ver != m {
			release()
			return tx.abort()
		}
		if !tx.p.CAS(tx.t.meta[x], m, lockword.Lock(m)) {
			release()
			return tx.abort()
		}
		acquired = append(acquired, lockword.Version(m))
	}
	// Final read-set validation (objects not covered by our own locks).
	for _, e := range tx.rset {
		if _, mine := tx.wvals[e.x]; mine {
			continue
		}
		if tx.p.Read(tx.t.meta[e.x]) != e.ver {
			release()
			return tx.abort()
		}
	}
	for i, x := range order {
		tx.p.Write(tx.t.val[x], tx.wvals[x])
		tx.p.Write(tx.t.meta[x], lockword.Unlocked(acquired[i]+1))
	}
	tx.done = true
	return nil
}

func (tx *Txn) readVersion(x int) (uint64, bool) {
	for _, e := range tx.rset {
		if e.x == x {
			return e.ver, true
		}
	}
	return 0, false
}

// Abort implements tm.Txn.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.aborted = true
		tx.done = true
	}
}
