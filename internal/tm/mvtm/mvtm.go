// Package mvtm implements a multi-version TM in the spirit of Perelman,
// Fan and Keidar (PODC'10), the paper's reference [22]: committed writes
// append immutable version nodes, and a read-only transaction reads the
// snapshot at its start timestamp by walking each object's version chain.
// Read-only transactions therefore never validate and never abort —
// mv-permissiveness — at the cost of a global version clock (not weak DAP)
// and unbounded space.
//
// mvtm is the "maintaining multiple versions" escape hatch discussed in
// the paper's related work: it sidesteps the Ω(m²) validation bound by
// giving up weak DAP, and its space consumption makes the time/space
// trade-off of Section 4 concrete (measured in E1/E2 alongside the
// single-version TMs).
//
// Version nodes are allocated from the simulated memory as triples of base
// objects (ver, val, next), so chain walks are accounted like any other
// steps.
package mvtm

import (
	"fmt"
	"sort"

	"repro/internal/memory"
	"repro/internal/tm"
)

// TM is a multi-version TM instance. Create with New (unbounded versions)
// or NewWithGC (bounded by the oldest active snapshot, at the price of
// visible readers).
type TM struct {
	mem   *memory.Memory
	clock *memory.Obj
	lock  []*memory.Obj // per-object writer lock: 0 free, 1+proc holder
	head  []*memory.Obj // address of newest version node
	nodes int           // allocation counter for diagnostics

	// gc enables version garbage collection: every transaction registers
	// its snapshot timestamp in active[pid] (rv+1; 0 = inactive), and
	// committing writers truncate each written object's chain below the
	// oldest registered snapshot. Registration is a nontrivial primitive
	// inside the first t-operation, so the GC variant gives up (weak)
	// invisible reads — the paper's time/space trade-off surfacing a third
	// time: bounded multi-version space requires visible readers.
	gc     bool
	active []*memory.Obj
}

var _ tm.TM = (*TM)(nil)

// node field offsets relative to the node's first base object.
type node struct {
	ver, val, next *memory.Obj
}

// New creates an mvtm instance over nobj t-objects, each with an initial
// version-0 node holding value 0.
func New(mem *memory.Memory, nobj int) *TM {
	t := &TM{
		mem:   mem,
		clock: mem.Alloc("mvtm.clock"),
		lock:  mem.AllocArray("mvtm.lock", nobj),
		head:  mem.AllocArray("mvtm.head", nobj),
	}
	for x := 0; x < nobj; x++ {
		n := t.alloc()
		// Initial versions are installed at construction time, outside any
		// process, so set them directly.
		mem.Poke(t.head[x], n.ver.Addr())
	}
	return t
}

// NewWithGC creates the garbage-collecting variant: live version chains
// stay bounded by the oldest active snapshot, and transactions register
// their snapshots visibly (see the gc field comment).
func NewWithGC(mem *memory.Memory, nobj int) *TM {
	t := New(mem, nobj)
	t.gc = true
	t.active = make([]*memory.Obj, mem.NumProcs())
	for i := range t.active {
		t.active[i] = mem.AllocAt(fmt.Sprintf("mvtm.active[%d]", i), i)
	}
	return t
}

// LiveVersions counts the version nodes still reachable from the object
// heads (walked without charging steps; diagnostic only). Without GC this
// equals Versions(); with GC it stays bounded by the active snapshots.
func (t *TM) LiveVersions() int {
	live := 0
	for _, h := range t.head {
		addr := t.mem.Peek(h)
		for addr != 0 {
			live++
			addr = t.mem.Peek(t.nodeAt(addr).next)
		}
	}
	return live
}

func (t *TM) alloc() node {
	i := t.nodes
	t.nodes++
	return node{
		ver:  t.mem.Alloc(fmt.Sprintf("mvtm.node%d.ver", i)),
		val:  t.mem.Alloc(fmt.Sprintf("mvtm.node%d.val", i)),
		next: t.mem.Alloc(fmt.Sprintf("mvtm.node%d.next", i)),
	}
}

// nodeAt reinterprets the address of a node's first base object. Nodes are
// allocated as three consecutive arena slots, so the val and next words are
// the two following objects.
func (t *TM) nodeAt(addr uint64) node {
	ver := t.mem.ObjAt(addr)
	return node{ver: ver, val: t.mem.ObjAt(addr + 1), next: t.mem.ObjAt(addr + 2)}
}

// Name implements tm.TM.
func (t *TM) Name() string {
	if t.gc {
		return "mvtm-gc"
	}
	return "mvtm"
}

// NumObjects implements tm.TM.
func (t *TM) NumObjects() int { return len(t.head) }

// Versions returns the total number of version nodes ever allocated — the
// space cost that buys O(m) read-only transactions.
func (t *TM) Versions() int { return t.nodes }

// Props implements tm.TM.
func (t *TM) Props() tm.Props {
	return tm.Props{
		Opaque:             true,
		StrictSerializable: true,
		WeakDAP:            false, // global clock
		// The GC variant registers snapshots with a nontrivial write inside
		// the first t-operation: its reads are visible.
		InvisibleReads:        !t.gc,
		WeakInvisibleReads:    !t.gc,
		Progressive:           true,
		StronglyProgressive:   false, // two writers may mutually abort across items
		SequentialProgress:    true,
		ICFLiveness:           true,
		MultiVersion:          true,
		UsesOnlyRWConditional: true,
	}
}

// Txn is an mvtm transaction.
type Txn struct {
	t       *TM
	p       *memory.Proc
	rv      uint64
	started bool
	rset    []int
	wvals   map[int]tm.Value
	worder  []int
	aborted bool
	done    bool
}

// Begin implements tm.TM.
func (t *TM) Begin(p *memory.Proc) tm.Txn {
	return &Txn{t: t, p: p}
}

// Active-slot encoding for the GC variant: 0 = inactive, 1 = joining (rv
// not yet known; sweepers must be fully conservative), rv+2 = registered.
const (
	slotInactive = 0
	slotJoining  = 1
)

func (tx *Txn) start() {
	if !tx.started {
		if tx.t.gc {
			// Announce the join *before* sampling the clock: a sweeper
			// that misses the final registration either sees the joining
			// sentinel (and keeps everything) or ran entirely before it,
			// in which case our snapshot is at least as new as the
			// sweeper's freshly installed versions.
			tx.p.Write(tx.t.active[tx.p.ID()], slotJoining)
		}
		tx.rv = tx.p.Read(tx.t.clock)
		if tx.t.gc {
			tx.p.Write(tx.t.active[tx.p.ID()], tx.rv+2)
		}
		tx.started = true
	}
}

// retire deregisters the transaction's snapshot on every completion path.
func (tx *Txn) retire() {
	if tx.t.gc && tx.started {
		tx.p.Write(tx.t.active[tx.p.ID()], slotInactive)
	}
}

// sweep truncates each written object's version chain below the oldest
// active snapshot: the newest node with ver ≤ minRV stays (it is some
// reader's floor), everything older becomes unreachable. Runs while the
// object locks are still held, so readers (who sample heads only when the
// lock is free) never race a truncation of their own floor.
func (tx *Txn) sweep(order []int) {
	minRV := tx.rv // we are registered, so the minimum is at most our rv
	for j := range tx.t.active {
		s := tx.p.Read(tx.t.active[j])
		switch s {
		case slotInactive:
		case slotJoining:
			return // someone is mid-join: be fully conservative, skip GC
		default:
			if rv := s - 2; rv < minRV {
				minRV = rv
			}
		}
	}
	for _, x := range order {
		addr := tx.p.Read(tx.t.head[x])
		for addr != 0 {
			n := tx.t.nodeAt(addr)
			if tx.p.Read(n.ver) <= minRV {
				if tx.p.Read(n.next) != 0 {
					tx.p.Write(n.next, 0)
				}
				break
			}
			addr = tx.p.Read(n.next)
		}
	}
}

// Aborted implements tm.Txn.
func (tx *Txn) Aborted() bool { return tx.aborted }

func (tx *Txn) abort() error {
	tx.retire()
	tx.aborted = true
	tx.done = true
	return tm.ErrAborted
}

// Read implements tm.Txn: walk x's version chain to the newest version with
// ver ≤ rv. No validation, no aborts for read-only transactions.
func (tx *Txn) Read(x int) (tm.Value, error) {
	tm.CheckObjectIndex(x, len(tx.t.head))
	if tx.done {
		return 0, tm.ErrAborted
	}
	tx.start()
	if tx.wvals != nil {
		if v, ok := tx.wvals[x]; ok {
			return v, nil
		}
	}
	// Wait out any in-flight writer on x. A writer fetches its write
	// version and installs nodes while holding lock[x]; sampling head only
	// when the lock is free guarantees that either all of a committed
	// writer's nodes are visible or its write version exceeds rv, keeping
	// snapshots consistent. Writers never block, so the wait is finite.
	for tx.p.Read(tx.t.lock[x]) != 0 {
	}
	addr := tx.p.Read(tx.t.head[x])
	for addr != 0 {
		n := tx.t.nodeAt(addr)
		if tx.p.Read(n.ver) <= tx.rv {
			v := tx.p.Read(n.val)
			tx.rset = append(tx.rset, x)
			return v, nil
		}
		addr = tx.p.Read(n.next)
	}
	panic("mvtm: version chain exhausted (initial version missing)")
}

// Write implements tm.Txn (lazy write buffering).
func (tx *Txn) Write(x int, v tm.Value) error {
	tm.CheckObjectIndex(x, len(tx.t.head))
	if tx.done {
		return tm.ErrAborted
	}
	tx.start()
	if tx.wvals == nil {
		tx.wvals = make(map[int]tm.Value)
	}
	if _, ok := tx.wvals[x]; !ok {
		tx.worder = append(tx.worder, x)
	}
	tx.wvals[x] = v
	return nil
}

// Commit implements tm.Txn. Read-only transactions commit unconditionally;
// update transactions lock their write sets, validate that their read
// snapshots are still current, and append new versions at a fresh
// timestamp.
func (tx *Txn) Commit() error {
	if tx.done {
		return tm.ErrAborted
	}
	if len(tx.worder) == 0 {
		tx.retire()
		tx.done = true
		return nil
	}
	me := uint64(tx.p.ID()) + 1
	order := append([]int(nil), tx.worder...)
	sort.Ints(order)
	locked := 0
	release := func() {
		for _, x := range order[:locked] {
			tx.p.Write(tx.t.lock[x], 0)
		}
	}
	for _, x := range order {
		if !tx.p.CAS(tx.t.lock[x], 0, me) {
			release()
			return tx.abort()
		}
		locked++
	}
	// Fetch the write version *before* validating (as TL2 does): any writer
	// serialized after us then fails our ver≤rv check or is caught by the
	// lock check, so no third transaction can observe our write set without
	// our read set's versions, ruling out serialization cycles.
	wv := tx.p.FetchAdd(tx.t.clock, 1) + 1
	// Validate: each read object's newest version must still be ≤ rv,
	// otherwise a concurrent conflicting writer committed since we read.
	// A foreign lock on a read object is equally fatal: that writer has
	// already validated and will install a newer version, so letting both
	// of us commit would admit write skew between our read and its write.
	for _, x := range tx.rset {
		if l := tx.p.Read(tx.t.lock[x]); l != 0 && l != me {
			release()
			return tx.abort()
		}
		n := tx.t.nodeAt(tx.p.Read(tx.t.head[x]))
		if tx.p.Read(n.ver) > tx.rv {
			release()
			return tx.abort()
		}
	}
	for _, x := range order {
		n := tx.t.alloc()
		old := tx.p.Read(tx.t.head[x])
		tx.p.Write(n.ver, wv)
		tx.p.Write(n.val, tx.wvals[x])
		tx.p.Write(n.next, old)
		tx.p.Write(tx.t.head[x], n.ver.Addr())
	}
	if tx.t.gc {
		tx.sweep(order)
	}
	release()
	tx.retire()
	tx.done = true
	return nil
}

// Abort implements tm.Txn.
func (tx *Txn) Abort() {
	if !tx.done {
		tx.retire()
		tx.aborted = true
		tx.done = true
	}
}
