package mvtm_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/mvtm"
	"repro/internal/tm/tmtest"
)

func factory(mem *memory.Memory, nobj int) tm.TM { return mvtm.New(mem, nobj) }

func TestConformance(t *testing.T) { tmtest.Run(t, factory) }

// TestReadOnlyNeverAborts verifies mv-permissiveness: a read-only
// transaction commits even when every object it reads is overwritten
// mid-transaction.
func TestReadOnlyNeverAborts(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := mvtm.New(mem, 8)
	reader, writer := mem.Proc(0), mem.Proc(1)
	// Populate with known values at version 1.
	for x := 0; x < 8; x++ {
		x := x
		if err := tm.Atomically(tmi, writer, func(tx tm.Txn) error { return tx.Write(x, uint64(x+1)) }); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	tx := tmi.Begin(reader)
	for x := 0; x < 8; x++ {
		// Overwrite X_x (and everything read before it) just before the read.
		if err := tm.Atomically(tmi, writer, func(w tm.Txn) error { return w.Write(x, 999) }); err != nil {
			t.Fatalf("writer: %v", err)
		}
		v, err := tx.Read(x)
		if err != nil {
			t.Fatalf("read-only transaction aborted at X%d: %v (mv-permissiveness violated)", x, err)
		}
		if x > 0 && v != uint64(x+1) {
			t.Fatalf("read(X%d) = %d, want snapshot value %d", x, v, x+1)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
}

// TestSnapshotConsistency verifies that a reader never observes half of a
// committed multi-object update.
func TestSnapshotConsistency(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := mvtm.New(mem, 2)
	reader, writer := mem.Proc(0), mem.Proc(1)
	// Invariant: X0 == X1 after every committed writer transaction.
	for i := 1; i <= 5; i++ {
		i := i
		rtx := tmi.Begin(reader)
		v0, err := rtx.Read(0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := tm.Atomically(tmi, writer, func(w tm.Txn) error {
			if err := w.Write(0, uint64(i)); err != nil {
				return err
			}
			return w.Write(1, uint64(i))
		}); err != nil {
			t.Fatalf("writer: %v", err)
		}
		v1, err := rtx.Read(1)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if v0 != v1 {
			t.Fatalf("iteration %d: snapshot tore the invariant X0==X1: read %d and %d", i, v0, v1)
		}
		if err := rtx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
}

// TestUpdateValidation verifies that update transactions still validate:
// reading then writing across a conflicting commit must abort.
func TestUpdateValidation(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := mvtm.New(mem, 2)
	p0, p1 := mem.Proc(0), mem.Proc(1)
	tx := tmi.Begin(p0)
	if _, err := tx.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := tx.Write(1, 7); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tm.Atomically(tmi, p1, func(w tm.Txn) error { return w.Write(0, 5) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("update transaction committed over an invalidated read; must abort")
	}
}

// TestVersionAccumulation verifies the space cost that buys O(m) reads:
// every committed write allocates a version node.
func TestVersionAccumulation(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := mvtm.New(mem, 1)
	p := mem.Proc(0)
	before := tmi.Versions()
	const writes = 10
	for i := 0; i < writes; i++ {
		if err := tm.Atomically(tmi, p, func(tx tm.Txn) error { return tx.Write(0, uint64(i)) }); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := tmi.Versions() - before; got != writes {
		t.Fatalf("allocated %d version nodes for %d writes, want %d", got, writes, writes)
	}
}

func gcFactory(mem *memory.Memory, nobj int) tm.TM { return mvtm.NewWithGC(mem, nobj) }

func TestConformanceGC(t *testing.T) { tmtest.Run(t, gcFactory) }

// TestGCBoundsLiveVersions verifies the point of the GC variant: with no
// long-lived readers, repeated writes keep the live chain length bounded,
// while the plain variant grows without bound.
func TestGCBoundsLiveVersions(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := mvtm.NewWithGC(mem, 1)
	p := mem.Proc(0)
	const writes = 50
	for i := 0; i < writes; i++ {
		if err := tm.Atomically(tmi, p, func(tx tm.Txn) error { return tx.Write(0, uint64(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	if got := tmi.Versions(); got < writes {
		t.Fatalf("allocated %d versions, want ≥ %d", got, writes)
	}
	if live := tmi.LiveVersions(); live > 3 {
		t.Fatalf("live chain holds %d versions after GC, want ≤ 3", live)
	}
	// Control: the plain variant keeps everything.
	mem2 := memory.New(1, nil)
	plain := mvtm.New(mem2, 1)
	p2 := mem2.Proc(0)
	for i := 0; i < writes; i++ {
		if err := tm.Atomically(plain, p2, func(tx tm.Txn) error { return tx.Write(0, uint64(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	if live := plain.LiveVersions(); live != writes+1 {
		t.Fatalf("plain variant live versions = %d, want %d", live, writes+1)
	}
}

// TestGCPreservesActiveSnapshots: a long-running reader pins its snapshot;
// concurrent writers and their sweeps must never truncate the version the
// reader is entitled to.
func TestGCPreservesActiveSnapshots(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := mvtm.NewWithGC(mem, 2)
	reader, writer := mem.Proc(0), mem.Proc(1)
	// Install known values at version 1.
	if err := tm.Atomically(tmi, writer, func(tx tm.Txn) error {
		if err := tx.Write(0, 100); err != nil {
			return err
		}
		return tx.Write(1, 200)
	}); err != nil {
		t.Fatal(err)
	}
	rtx := tmi.Begin(reader)
	if v, err := rtx.Read(0); err != nil || v != 100 {
		t.Fatalf("read(X0) = %d, %v; want 100", v, err)
	}
	// Many committed writes (each triggering a sweep) while the reader is
	// registered.
	for i := 0; i < 20; i++ {
		if err := tm.Atomically(tmi, writer, func(tx tm.Txn) error {
			if err := tx.Write(0, uint64(1000+i)); err != nil {
				return err
			}
			return tx.Write(1, uint64(2000+i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The reader's snapshot must still be intact.
	if v, err := rtx.Read(1); err != nil || v != 200 {
		t.Fatalf("pinned snapshot read(X1) = %d, %v; want 200", v, err)
	}
	if err := rtx.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
	// Once the reader retires, subsequent writes can collapse the chains.
	for i := 0; i < 3; i++ {
		if err := tm.Atomically(tmi, writer, func(tx tm.Txn) error {
			if err := tx.Write(0, uint64(i)); err != nil {
				return err
			}
			return tx.Write(1, uint64(i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if live := tmi.LiveVersions(); live > 6 {
		t.Fatalf("chains hold %d versions after the reader retired, want ≤ 6", live)
	}
}

// TestGCReadsAreVisible documents the cost: the GC variant's first
// t-operation applies nontrivial registration writes, so it loses (weak)
// invisible reads — the space bound is bought with visibility, the paper's
// trade yet again.
func TestGCReadsAreVisible(t *testing.T) {
	mem := memory.New(1, nil)
	tmi := mvtm.NewWithGC(mem, 2)
	p := mem.Proc(0)
	tx := tmi.Begin(p)
	sp := p.BeginSpan("first-read")
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	p.EndSpan()
	if sp.Nontrivial == 0 {
		t.Fatal("GC variant's first read applied no nontrivial primitive; registration missing")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
