package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/tmreg"
)

// invisibleReadTMs are the algorithms inside (or near) the hypothesis class
// of Lemma 2 / Claim 4: weak invisible reads and ICF liveness, so the
// proofs' executions exist for them.
func invisibleReadTMs() []string { return []string{"irtm", "norec", "mvtm", "dstm", "tml"} }

// TestLemma2WeakDAPReadsNewValue reproduces Figure 1: in π^{i−1}·ρ^i·α_i a
// weak-DAP strictly serializable TM must either return the new value nv
// from read_φ(X_i) — it cannot distinguish the execution from
// ρ^i·π^{i−1}·α_i — or, if it is also progressive, possibly abort; it must
// never return the initial value.
func TestLemma2WeakDAPReadsNewValue(t *testing.T) {
	for _, name := range []string{"irtm", "vrtm", "dstm"} { // the weak-DAP TMs
		name := name
		t.Run(name, func(t *testing.T) {
			for i := 1; i <= 8; i++ {
				res, err := core.Lemma2(name, i)
				if err != nil {
					t.Fatalf("i=%d: %v", i, err)
				}
				if res.Aborted {
					t.Fatalf("i=%d: read_φ(X_%d) aborted; the writer is no longer concurrent, so a progressive TM must not abort", i, i)
				}
				if res.ReadValue != core.NewValue {
					t.Fatalf("i=%d: read_φ(X_%d) = %d, want nv=%d (Lemma 2)", i, i, res.ReadValue, core.NewValue)
				}
			}
		})
	}
}

// TestLemma2NonDAPEscapes documents the ablation: TMs that are not weak DAP
// can legally behave differently in the same schedule (mvtm returns the old
// snapshot value; tl2 aborts on its stale timestamp).
func TestLemma2NonDAPEscapes(t *testing.T) {
	res, err := core.Lemma2("mvtm", 3)
	if err != nil {
		t.Fatalf("mvtm: %v", err)
	}
	if res.Aborted {
		t.Fatal("mvtm read-only transactions never abort")
	}
	if res.ReadValue != 0 {
		// rv was sampled before ρ^i committed, so the snapshot must be old.
		t.Fatalf("mvtm read = %d, want the snapshot value 0", res.ReadValue)
	}
	res, err = core.Lemma2("tl2", 3)
	if err != nil {
		t.Fatalf("tl2: %v", err)
	}
	if !res.Aborted {
		t.Fatalf("tl2 read = %d; expected an abort on version > rv", res.ReadValue)
	}
	// NOrec is not weak DAP either, but its value-based validation happens
	// to deliver the new value, matching the weak-DAP behaviour.
	res, err = core.Lemma2("norec", 3)
	if err != nil {
		t.Fatalf("norec: %v", err)
	}
	if res.Aborted || res.ReadValue != core.NewValue {
		t.Fatalf("norec: aborted=%v value=%d; want the new value", res.Aborted, res.ReadValue)
	}
}

// TestLemma2RejectsBlockingTM verifies the construction refuses TMs without
// ICF liveness instead of hanging.
func TestLemma2RejectsBlockingTM(t *testing.T) {
	_, err := core.Lemma2("sgltm", 3)
	if err == nil || !strings.Contains(err.Error(), "ICF") {
		t.Fatalf("err = %v, want ICF-liveness rejection", err)
	}
	if _, err := core.Claim4("sgltm", 3, 1); err == nil {
		t.Fatal("Claim4 accepted a blocking TM")
	}
}

// TestClaim4NeverNewValue verifies Claim 4 on every invisible-read TM: in
// π^{i−1}·β^ℓ·ρ^i·α^i_j, read_φ(X_i) returns the initial value or aborts —
// returning nv would make the committed-write serialization illegal.
func TestClaim4NeverNewValue(t *testing.T) {
	for _, name := range invisibleReadTMs() {
		name := name
		t.Run(name, func(t *testing.T) {
			for i := 2; i <= 6; i++ {
				for l := 1; l < i; l++ {
					out, err := core.Claim4(name, i, l)
					if err != nil {
						t.Fatalf("i=%d ℓ=%d: %v", i, l, err)
					}
					if out == core.ReadNew {
						t.Fatalf("i=%d ℓ=%d: read_φ(X_%d) returned nv, violating Claim 4", i, l, i)
					}
				}
			}
		})
	}
}

// TestClaim4TL2 runs Claim 4 against TL2 as well: its timestamp mechanism
// also forbids the new value (the serialization argument is the same even
// though TL2 is outside the weak-DAP class).
func TestClaim4TL2(t *testing.T) {
	for i := 2; i <= 5; i++ {
		for l := 1; l < i; l++ {
			out, err := core.Claim4("tl2", i, l)
			if err != nil {
				t.Fatalf("i=%d ℓ=%d: %v", i, l, err)
			}
			if out == core.ReadNew {
				t.Fatalf("i=%d ℓ=%d: TL2 returned nv", i, l)
			}
		}
	}
}

// TestClaim4VisibleReadsBlockWriter documents why vrtm is outside the
// hypothesis class: the β^ℓ writer conflicts with T_φ's *visible* read
// registration and aborts, so the Claim 4 execution does not exist.
func TestClaim4VisibleReadsBlockWriter(t *testing.T) {
	_, err := core.Claim4("vrtm", 3, 1)
	if err == nil || !strings.Contains(err.Error(), "invisible reads") {
		t.Fatalf("err = %v; expected the β writer to abort against visible reads", err)
	}
}

// TestTheorem3Prediction pins the closed forms used by the experiment
// tables.
func TestTheorem3Prediction(t *testing.T) {
	steps, objs := core.Theorem3Prediction(10)
	if steps != 45 || objs != 9 {
		t.Fatalf("Theorem3Prediction(10) = %d, %d; want 45, 9", steps, objs)
	}
}

// TestLemma2MatchesDirectDrive cross-checks the construction against a
// hand-rolled copy of the same schedule, guarding the harness itself.
func TestLemma2MatchesDirectDrive(t *testing.T) {
	mem := memory.New(2, nil)
	tmi := tmreg.MustNew("irtm", mem, 3)
	reader, writer := mem.Proc(0), mem.Proc(1)
	tphi := tmi.Begin(reader)
	for x := 0; x < 2; x++ {
		if _, err := tphi.Read(x); err != nil {
			t.Fatalf("π read: %v", err)
		}
	}
	w := tmi.Begin(writer)
	if err := w.Write(2, uint64(core.NewValue)); err != nil {
		t.Fatalf("ρ write: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("ρ commit: %v", err)
	}
	v, err := tphi.Read(2)
	if err != nil {
		t.Fatalf("α read: %v", err)
	}
	if v != core.NewValue {
		t.Fatalf("α read = %d, want %d", v, core.NewValue)
	}
	res, err := core.Lemma2("irtm", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted || res.ReadValue != core.NewValue {
		t.Fatalf("harness result %+v disagrees with direct drive", res)
	}
}
