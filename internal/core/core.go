// Package core encodes the paper's primary contribution — the lower-bound
// arguments of Sections 4 and 5 — as executable constructions. The paper's
// proofs build specific executions (Figure 1: π^{i−1}·ρ^i·α_i and its
// variants with an extra writer β^ℓ) and argue about what any TM in the
// hypothesis class must do in them; this package builds exactly those
// executions against a concrete TM and reports what the TM did, so the
// tests and experiments can compare measured behaviour with the proofs'
// predictions.
package core

import (
	"errors"
	"fmt"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// NewValue is the value nv written by the proofs' writer transactions
// (distinct from the initial value 0).
const NewValue tm.Value = 7777

// Lemma2Result reports what happened in the execution π^{i−1}·ρ^i·α_i of
// Lemma 2: the reader T_φ performs i−1 step contention-free reads, a writer
// T_i then writes nv to X_i and commits, and T_φ performs its i-th read.
type Lemma2Result struct {
	I          int
	ReadValue  tm.Value // value returned by read_φ(X_i), if it returned
	Aborted    bool     // read_φ(X_i) returned A_φ
	PriorReads []tm.Value
}

// Lemma2 constructs the Lemma 2 execution for the named TM with read-set
// prefix length i (1-based: the transaction's i-th read is the measured
// one). Lemma 2 proves that every strictly serializable weak-DAP TM with
// sequential TM-progress *has* this execution with read_φ(X_i) → nv; a TM
// outside the class may abort or return the old value instead, which the
// result records.
func Lemma2(name string, i int) (Lemma2Result, error) {
	if i < 1 {
		return Lemma2Result{}, fmt.Errorf("core: Lemma2 needs i ≥ 1, got %d", i)
	}
	mem := memory.New(2, nil)
	tmi, err := tmreg.New(name, mem, i)
	if err != nil {
		return Lemma2Result{}, err
	}
	if !tmi.Props().ICFLiveness {
		return Lemma2Result{}, fmt.Errorf("core: %s lacks ICF TM-liveness; the Lemma 2 execution does not exist for it", name)
	}
	reader, writer := mem.Proc(0), mem.Proc(1)
	res := Lemma2Result{I: i}

	// π^{i−1}: complete step contention-free execution of T_φ's first i−1
	// reads, from the initial (quiescent) configuration.
	tphi := tmi.Begin(reader)
	for x := 0; x < i-1; x++ {
		v, err := tphi.Read(x)
		if err != nil {
			return res, fmt.Errorf("core: π^{i−1} read_φ(X_%d) aborted; sequential TM-progress violated", x+1)
		}
		res.PriorReads = append(res.PriorReads, v)
	}

	// ρ^i: T_i writes nv to X_i and commits, step contention-free.
	committed, err := tm.Once(tmi, writer, func(w tm.Txn) error {
		return w.Write(i-1, NewValue)
	})
	if err != nil {
		return res, err
	}
	if !committed {
		return res, errors.New("core: ρ^i writer aborted; weak invisible reads + sequential progress require it to commit")
	}

	// α_i: T_φ's i-th read.
	v, err := tphi.Read(i - 1)
	if err != nil {
		res.Aborted = true
		tphi.Abort()
		return res, nil
	}
	res.ReadValue = v
	tphi.Abort() // the lemma only concerns the read; complete T_φ
	return res, nil
}

// Claim4Outcome classifies the response of read_φ(X_i) in the executions
// E^i_{jℓ} of Claim 4.
type Claim4Outcome int

// Claim 4 outcomes: the claim proves the read returns the initial value v
// or A_φ — never nv.
const (
	ReadInitial Claim4Outcome = iota // α^i_1: read_φ(X_i) → v
	ReadAborted                      // α^i_2: read_φ(X_i) → A_φ
	ReadNew                          // forbidden by Claim 4
)

func (o Claim4Outcome) String() string {
	switch o {
	case ReadInitial:
		return "initial-value"
	case ReadAborted:
		return "aborted"
	case ReadNew:
		return "NEW-VALUE (violates Claim 4)"
	}
	return fmt.Sprintf("Claim4Outcome(%d)", int(o))
}

// Claim4 constructs E^i_{jℓ} = π^{i−1} · β^ℓ · ρ^i · α^i_j for the named
// TM: T_φ reads X_1..X_{i−1}; T_ℓ writes nv to X_ℓ (one of the objects
// already read) and commits; T_i writes nv to X_i and commits; then T_φ
// performs read_φ(X_i). Claim 4 proves the read cannot return nv for X_i:
// serializing T_φ after T_i would make read_φ(X_ℓ) = v illegal. ℓ is
// 1-based and must satisfy 1 ≤ ℓ ≤ i−1.
func Claim4(name string, i, l int) (Claim4Outcome, error) {
	if i < 2 || l < 1 || l > i-1 {
		return 0, fmt.Errorf("core: Claim4 needs i ≥ 2 and 1 ≤ ℓ ≤ i−1; got i=%d ℓ=%d", i, l)
	}
	mem := memory.New(3, nil)
	tmi, err := tmreg.New(name, mem, i)
	if err != nil {
		return 0, err
	}
	if !tmi.Props().ICFLiveness {
		return 0, fmt.Errorf("core: %s lacks ICF TM-liveness; the Claim 4 executions do not exist for it", name)
	}
	reader := mem.Proc(0)

	// π^{i−1}.
	tphi := tmi.Begin(reader)
	for x := 0; x < i-1; x++ {
		if _, err := tphi.Read(x); err != nil {
			return 0, fmt.Errorf("core: π^{i−1} read_φ(X_%d) aborted", x+1)
		}
	}
	// β^ℓ: T_ℓ writes X_ℓ and commits (weak invisible reads let it run as
	// if T_φ's reads never happened).
	if committed, err := tm.Once(tmi, mem.Proc(1), func(w tm.Txn) error {
		return w.Write(l-1, NewValue)
	}); err != nil {
		return 0, err
	} else if !committed {
		return 0, fmt.Errorf("core: β^%d writer aborted; weak invisible reads require it to commit", l)
	}
	// ρ^i: T_i writes X_i and commits (disjoint from T_ℓ).
	if committed, err := tm.Once(tmi, mem.Proc(2), func(w tm.Txn) error {
		return w.Write(i-1, NewValue)
	}); err != nil {
		return 0, err
	} else if !committed {
		return 0, fmt.Errorf("core: ρ^%d writer aborted; disjoint data sets require it to commit", i)
	}
	// α^i_j: the response classifies the execution as E^i_{1ℓ} or E^i_{2ℓ}.
	v, err := tphi.Read(i - 1)
	tphi.Abort()
	if err != nil {
		return ReadAborted, nil
	}
	if v == NewValue {
		return ReadNew, nil
	}
	return ReadInitial, nil
}

// Theorem3Prediction returns the step lower bound m(m−1)/2 the theorem
// proves for an opaque weak-DAP weak-invisible-read TM with read sets of
// size m, and the space bound m−1 of part (2).
func Theorem3Prediction(m int) (steps uint64, distinctObjs int) {
	mm := uint64(m)
	return mm * (mm - 1) / 2, m - 1
}
