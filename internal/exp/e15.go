package exp

// E15 is the producer/consumer pipeline scenario: a bounded FIFO queue
// modeled on the t-object array, producers pushing a fixed quota of items
// and consumers draining them. It is the coordination shape the E-series
// lacks: E5–E14 transactions are independent workloads racing over shared
// data, while here the transactions ARE the coordination — a producer's
// commit is the only thing that unblocks a consumer, and queue-full
// backpressure the only thing that stops a producer. The simulator's Txn
// API has no Retry, so blocked parties poll: a producer finding the queue
// full (or a consumer finding it empty) commits a read-only probe and
// tries again — with randomized exponential spacing (expBackoff, the E5
// idiom), because an unpaced probe stream is itself a conflict source
// under visible-read TMs — and the Full/EmptyPolls columns price that
// polling per TM.
// The native counterpart is BenchmarkE15Pipeline over stm.Queue, where
// Retry replaces polling with composable blocking — the comparison the
// paper's STM-programming-model argument wants.
//
// Object layout: 0 = head index, 1 = element count, 2..2+Cap-1 = slots,
// 2+Cap = consumed total, 3+Cap = consumed checksum.

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// E15Row is one TM's pipeline measurement.
type E15Row struct {
	TM           string
	Producers    int
	Consumers    int
	Produced     int
	Consumed     int
	FullPolls    int // producer attempts that found the queue full
	EmptyPolls   int // consumer attempts that found the queue empty
	Aborts       int
	StepsPerItem float64
	Space        int
}

// E15Config parameterizes the pipeline scenario.
type E15Config struct {
	Producers        int
	Consumers        int
	ItemsPerProducer int
	QueueCap         int
	Seed             int64
}

// DefaultE15Config is the configuration used by tmbench and the tests: a
// queue much smaller than the item flow, so both backpressure (full
// polls) and starvation (empty polls) occur on every run.
func DefaultE15Config() E15Config {
	return E15Config{
		Producers:        4,
		Consumers:        4,
		ItemsPerProducer: 12,
		QueueCap:         3,
		Seed:             42,
	}
}

var (
	errE15Full  = fmt.Errorf("e15: queue full")
	errE15Empty = fmt.Errorf("e15: queue empty")
	errE15Done  = fmt.Errorf("e15: pipeline drained")
)

// RunE15 runs the pipeline scenario for one TM and cross-checks the
// result: every produced item must be consumed exactly once (count and
// checksum), or the run errors.
func RunE15(name string, cfg E15Config) (E15Row, error) {
	procs := cfg.Producers + cfg.Consumers
	objects := cfg.QueueCap + 4
	target := uint64(cfg.Producers) * uint64(cfg.ItemsPerProducer)
	const (
		objHead  = 0
		objCount = 1
		objSlot0 = 2
	)
	objTotal := objSlot0 + cfg.QueueCap
	objSum := objTotal + 1
	mem := memory.New(procs, nil)
	tmi, err := tmreg.New(name, mem, objects)
	if err != nil {
		return E15Row{}, err
	}
	var produced, consumed, fullPolls, emptyPolls, aborts int
	var producedSum uint64
	// Backoff scratch, one object per process (the E5 idiom). Polling
	// needs it as much as abort-retry does: under a visible-read TM a
	// consumer's empty-probe read of the count object is itself a
	// conflict, and unpaced probes abort every producer mid-put forever.
	scratch := make([]*memory.Obj, procs)
	for i := range scratch {
		scratch[i] = mem.AllocAt(fmt.Sprintf("backoff[%d]", i), i)
	}
	s := sched.New(mem)
	for i := 0; i < cfg.Producers; i++ {
		i := i
		rng := newSplitMix(uint64(cfg.Seed)*69621 + uint64(i+1))
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < cfg.ItemsPerProducer; n++ {
				v := rng.next()%1000 + 1
				put := func(tx tm.Txn) error {
					cnt, err := tx.Read(objCount)
					if err != nil {
						return err
					}
					if int(cnt) == cfg.QueueCap {
						return errE15Full
					}
					head, err := tx.Read(objHead)
					if err != nil {
						return err
					}
					slot := objSlot0 + (int(head)+int(cnt))%cfg.QueueCap
					if err := tx.Write(slot, v); err != nil {
						return err
					}
					return tx.Write(objCount, cnt+1)
				}
				for consecutive := 0; ; {
					committed, err := tm.Once(tmi, p, put)
					if err == errE15Full {
						fullPolls++ // backpressure: probe again later
						consecutive++
						expBackoff(p, scratch[i], rng, consecutive)
						continue
					}
					if err != nil {
						panic(err)
					}
					if committed {
						produced++
						producedSum += v
						break
					}
					aborts++
					consecutive++
					expBackoff(p, scratch[i], rng, consecutive)
				}
			}
		})
	}
	for i := 0; i < cfg.Consumers; i++ {
		i := i
		rng := newSplitMix(uint64(cfg.Seed)*28411 + uint64(cfg.Producers+i+1))
		s.Go(cfg.Producers+i, func(p *memory.Proc) {
			consecutive := 0
			for {
				take := func(tx tm.Txn) error {
					total, err := tx.Read(objTotal)
					if err != nil {
						return err
					}
					if total == target {
						return errE15Done
					}
					cnt, err := tx.Read(objCount)
					if err != nil {
						return err
					}
					if cnt == 0 {
						return errE15Empty
					}
					head, err := tx.Read(objHead)
					if err != nil {
						return err
					}
					v, err := tx.Read(objSlot0 + int(head)%cfg.QueueCap)
					if err != nil {
						return err
					}
					if err := tx.Write(objHead, (head+1)%uint64(cfg.QueueCap)); err != nil {
						return err
					}
					if err := tx.Write(objCount, cnt-1); err != nil {
						return err
					}
					if err := tx.Write(objTotal, total+1); err != nil {
						return err
					}
					sum, err := tx.Read(objSum)
					if err != nil {
						return err
					}
					return tx.Write(objSum, sum+v)
				}
				committed, err := tm.Once(tmi, p, take)
				if err == errE15Done {
					return
				}
				if err == errE15Empty {
					emptyPolls++ // starvation: probe again later
					consecutive++
					expBackoff(p, scratch[cfg.Producers+i], rng, consecutive)
					continue
				}
				if err != nil {
					panic(err)
				}
				if committed {
					consumed++
					consecutive = 0
					continue
				}
				aborts++
				consecutive++
				expBackoff(p, scratch[cfg.Producers+i], rng, consecutive)
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
		return E15Row{}, fmt.Errorf("exp: e15 %s: %w", name, err)
	}
	var steps uint64
	for i := 0; i < procs; i++ {
		steps += mem.Proc(i).Steps()
	}
	row := E15Row{
		TM: name, Producers: cfg.Producers, Consumers: cfg.Consumers,
		Produced: produced, Consumed: consumed,
		FullPolls: fullPolls, EmptyPolls: emptyPolls, Aborts: aborts,
		Space: mem.NumObjs(),
	}
	if mv, ok := tmi.(interface {
		LiveVersions() int
		Versions() int
	}); ok {
		row.Space = mem.NumObjs() - 3*mv.Versions() + 3*mv.LiveVersions()
	}
	if consumed > 0 {
		row.StepsPerItem = float64(steps) / float64(consumed)
	}
	// Every item flows through exactly once: counts and checksum agree.
	if produced != int(target) || consumed != int(target) {
		return E15Row{}, fmt.Errorf("exp: e15 %s: produced %d, consumed %d, want %d each", name, produced, consumed, target)
	}
	var finalSum uint64
	s.Go(0, func(p *memory.Proc) {
		for {
			committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
				v, err := tx.Read(objSum)
				if err != nil {
					return err
				}
				finalSum = v
				return nil
			})
			if err != nil {
				panic(err)
			}
			if committed {
				break
			}
		}
	})
	if err := s.Run(sched.NewRandom(cfg.Seed + 1)); err != nil {
		return E15Row{}, fmt.Errorf("exp: e15 %s verification: %w", name, err)
	}
	if finalSum != producedSum {
		return E15Row{}, fmt.Errorf("exp: e15 %s: consumed checksum %d, want %d — an item was lost or duplicated", name, finalSum, producedSum)
	}
	return row, nil
}
