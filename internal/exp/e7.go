package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// E7Row summarizes a randomized concurrent run of one TM against the
// paper's progress and correctness definitions: how many transactions
// committed/aborted, and how many violations each checker found. For a TM
// whose Props claim a property, the corresponding violation count must be
// zero; ablations are *expected* to show non-zero counts for the properties
// they give up.
type E7Row struct {
	TM                 string
	Procs              int
	TxnsPerProc        int
	Objects            int
	Seed               int64
	Committed, Aborted int
	ProgressViolations int
	StrongViolations   int
	OpacityChecked     bool // exhaustive check is run only on small histories
	Opaque             bool
	StrictSerializable bool
}

// E7Config parameterizes the randomized workload.
type E7Config struct {
	Procs        int
	TxnsPerProc  int
	Objects      int
	OpsPerTxn    int
	WriteRatio   float64 // probability an op is a write
	Seed         int64
	CheckOpacity bool // run the exhaustive serialization search (small runs only)
}

// RunE7 executes the randomized workload under seeded random scheduling,
// records the history, and applies every checker from internal/check.
func RunE7(name string, cfg E7Config) (E7Row, error) {
	mem := memory.New(cfg.Procs, nil)
	base, err := tmreg.New(name, mem, cfg.Objects)
	if err != nil {
		return E7Row{}, err
	}
	rec := tm.Record(base)
	s := sched.New(mem)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		s.Go(i, func(p *memory.Proc) {
			for t := 0; t < cfg.TxnsPerProc; t++ {
				tx := rec.Begin(p)
				dead := false
				for o := 0; o < cfg.OpsPerTxn; o++ {
					x := rng.Intn(cfg.Objects)
					if rng.Float64() < cfg.WriteRatio {
						if tx.Write(x, uint64(rng.Intn(1000))) != nil {
							dead = true
							break
						}
					} else if _, err := tx.Read(x); err != nil {
						dead = true
						break
					}
				}
				if dead {
					tx.Abort()
					continue
				}
				_ = tx.Commit() // abort is a legitimate outcome here
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
		return E7Row{}, fmt.Errorf("exp: e7 %s: %w", name, err)
	}
	h := rec.History()
	row := E7Row{
		TM: name, Procs: cfg.Procs, TxnsPerProc: cfg.TxnsPerProc,
		Objects: cfg.Objects, Seed: cfg.Seed,
	}
	for _, t := range h.Txns {
		switch t.Status {
		case tm.TxnCommitted:
			row.Committed++
		case tm.TxnAborted:
			row.Aborted++
		}
	}
	row.ProgressViolations = len(check.Progressive(h))
	row.StrongViolations = len(check.StronglyProgressive(h))
	if cfg.CheckOpacity {
		row.OpacityChecked = true
		row.Opaque = check.Opaque(h).OK
		row.StrictSerializable = check.StrictlySerializable(h).OK
	}
	return row, nil
}
