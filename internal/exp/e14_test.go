package exp_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/tmreg"
)

// TestE14AllTMs runs the clustering scenario on every registered TM:
// the commit quota is fixed (every assignment and recenter retries until
// it commits), and RunE14's built-in verification pass cross-checks the
// centroid counts against the committed assignments.
func TestE14AllTMs(t *testing.T) {
	cfg := exp.E14Config{
		Procs: 4, Centroids: 3, PointsPerProc: 8, RecenterEvery: 4, Seed: 7,
	}
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.RunE14(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assignments := cfg.Procs * cfg.PointsPerProc
			recenters := cfg.Procs * (cfg.PointsPerProc / cfg.RecenterEvery)
			if row.Commits != assignments+recenters {
				t.Errorf("commits = %d, want %d assignments + %d recenters", row.Commits, assignments, recenters)
			}
			if row.Recenters != recenters {
				t.Errorf("recenters = %d, want %d", row.Recenters, recenters)
			}
			if row.StepsPerTxn <= 0 {
				t.Errorf("steps not recorded: %+v", row)
			}
		})
	}
}

// TestE14ContentionScalesWithCentroids: fewer centroids concentrate the
// same assignment stream on fewer accumulators, so the single-centroid
// run must abort at least as often as a spread-out one on an optimistic
// TM. (Equality is possible on tiny configs; the test guards direction.)
func TestE14ContentionScalesWithCentroids(t *testing.T) {
	base := exp.E14Config{Procs: 4, PointsPerProc: 16, RecenterEvery: 0, Seed: 13}
	narrow, wide := base, base
	narrow.Centroids = 1
	wide.Centroids = 8
	rn, err := exp.RunE14("tl2", narrow)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := exp.RunE14("tl2", wide)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Aborts < rw.Aborts {
		t.Errorf("1-centroid run aborted %d < 8-centroid run's %d", rn.Aborts, rw.Aborts)
	}
}
