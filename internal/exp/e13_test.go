package exp_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/tmreg"
)

// TestE13AllTMs runs the routing scenario on every registered TM: each
// route resolves exactly one way (committed, replanned out, or refused),
// and RunE13's built-in verification pass already cross-checks that the
// committed routes hold disjoint cells.
func TestE13AllTMs(t *testing.T) {
	cfg := exp.E13Config{
		Procs: 4, GridW: 12, GridH: 12, RoutesPerProc: 4, MaxReplans: 6, Seed: 7,
	}
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.RunE13(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			quota := cfg.Procs * cfg.RoutesPerProc
			if got := row.Routed + row.Replanned + row.Refused; got != quota {
				t.Errorf("routes resolved %d ways (routed %d, replanned %d, refused %d), want %d",
					got, row.Routed, row.Replanned, row.Refused, quota)
			}
			if row.Refused != 0 {
				t.Errorf("%d routes refused with no budget", row.Refused)
			}
			if row.Routed == 0 {
				t.Error("no route committed on an empty grid")
			}
			if row.ClaimedCells < row.Routed {
				t.Errorf("%d routes claimed only %d cells", row.Routed, row.ClaimedCells)
			}
		})
	}
}

// TestE13MeteredRefusesLongRoutes: with a step grant far below a typical
// path's read+write cost, metered routing must refuse routes — the
// write-heavy counterpart of E12's refused scans.
func TestE13MeteredRefusesLongRoutes(t *testing.T) {
	cfg := exp.E13Config{
		Procs: 4, GridW: 12, GridH: 12, RoutesPerProc: 4, MaxReplans: 6,
		StepBudget: 4, Seed: 7,
	}
	row, err := exp.RunE13("tl2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Metered {
		t.Error("row not marked metered")
	}
	if row.Refused == 0 {
		t.Errorf("no route refused under a %d-step grant: %+v", cfg.StepBudget, row)
	}
}
