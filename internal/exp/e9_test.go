package exp_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/tmreg"
)

// TestE9Scenarios runs the scenario suite on every registered TM: every
// process completes its quota in both scenarios, the blocking TM never
// aborts, and the long-read-set scans cost more steps per transaction than
// E5's flat four-op mix would predict (the workload exists to stress
// validation, so it must actually read more).
func TestE9Scenarios(t *testing.T) {
	cfg := exp.E9Config{
		Procs: 4, TxnsPerProc: 4, Objects: 16, ScanLen: 8, Probes: 3,
		WriteRatio: 0.3, Seed: 7,
	}
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			rows, err := exp.RunE9(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(exp.E9Scenarios()) {
				t.Fatalf("got %d rows, want one per scenario (%d)", len(rows), len(exp.E9Scenarios()))
			}
			for _, r := range rows {
				if r.Commits != cfg.Procs*cfg.TxnsPerProc {
					t.Errorf("%s: %d commits, want %d", r.Scenario, r.Commits, cfg.Procs*cfg.TxnsPerProc)
				}
				if r.StepsPerTxn <= 0 {
					t.Errorf("%s: no steps recorded", r.Scenario)
				}
				if name == "sgltm" && r.Aborts != 0 {
					t.Errorf("%s: blocking TM aborted %d times", r.Scenario, r.Aborts)
				}
			}
		})
	}
}

// TestE9ClockVariants runs the suite over the TL2 clock-strategy/extension
// variants — the registry names the E9 table sweeps alongside the plain
// TMs. Extension variants must complete the same quota; on the scan-heavy
// scenario the extension variant must not abort more than plain TL2 (the
// stale-clock abort class is converted into revalidation, never added to).
func TestE9ClockVariants(t *testing.T) {
	cfg := exp.E9Config{
		Procs: 4, TxnsPerProc: 4, Objects: 16, ScanLen: 8, Probes: 3,
		WriteRatio: 0.3, Seed: 11,
	}
	aborts := map[string]int{}
	for _, name := range tmreg.ClockVariants() {
		rows, err := exp.RunE9(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rows {
			if r.Commits != cfg.Procs*cfg.TxnsPerProc {
				t.Errorf("%s/%s: %d commits, want %d", name, r.Scenario, r.Commits, cfg.Procs*cfg.TxnsPerProc)
			}
			if r.Scenario == "index-scan" {
				aborts[name] = r.Aborts
			}
		}
	}
	if aborts["tl2:ext"] > aborts["tl2"] {
		t.Errorf("extension increased index-scan aborts: tl2=%d tl2:ext=%d", aborts["tl2"], aborts["tl2:ext"])
	}
}
