package exp

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// E5Row is one cell of the contention-sweep ablation (experiment E5): a
// fixed randomized workload executed to completion on one TM, reporting
// how many transaction attempts aborted and how many steps each committed
// transaction cost. Reading the table across TMs shows the design
// trade-offs the paper formalizes: invisible-read validation (irtm, dstm)
// pays steps; global-clock TMs (tl2, tml) pay spurious aborts; visible
// reads (vrtm) pay writer aborts; blocking (sgltm) pays no aborts but
// serializes everything; multi-versioning (mvtm) pays space.
type E5Row struct {
	TM          string
	Procs       int
	WriteRatio  float64
	Commits     int
	Aborts      int
	AbortRatio  float64
	TotalSteps  uint64
	StepsPerTxn float64 // steps per committed transaction
	Space       int     // base objects allocated (multi-version TMs grow)
}

// E5Config parameterizes the sweep workload.
type E5Config struct {
	Procs       int
	TxnsPerProc int // committed transactions each process must complete
	Objects     int
	OpsPerTxn   int
	WriteRatios []float64
	Seed        int64

	// Backoff enables exponential randomized backoff between retries: after
	// the a-th consecutive abort a process spins on a private base object
	// for up to 2^min(a,8) steps before retrying. This is the classic
	// contention-management fix for the livelock-prone aggressive policies
	// (visible in dstm's numbers without it), and the spins are real
	// accounted steps, so the table shows what the remedy costs.
	Backoff bool
}

// DefaultE5Config is the sweep used by benchmarks and tmbench.
func DefaultE5Config() E5Config {
	return E5Config{
		Procs:       8,
		TxnsPerProc: 20,
		Objects:     16,
		OpsPerTxn:   4,
		WriteRatios: []float64{0.0, 0.2, 0.5, 0.9},
		Seed:        42,
	}
}

// RunE5 runs the sweep for one TM. Every process retries each transaction
// until it commits (unlike E7, which records single attempts), so Commits
// is fixed by the config and Aborts measures wasted attempts.
func RunE5(name string, cfg E5Config) ([]E5Row, error) {
	var rows []E5Row
	for _, wr := range cfg.WriteRatios {
		mem := memory.New(cfg.Procs, nil)
		tmi, err := tmreg.New(name, mem, cfg.Objects)
		if err != nil {
			return nil, err
		}
		commits, aborts := 0, 0
		scratch := make([]*memory.Obj, cfg.Procs)
		for i := range scratch {
			scratch[i] = mem.AllocAt(fmt.Sprintf("backoff[%d]", i), i)
		}
		s := sched.New(mem)
		for i := 0; i < cfg.Procs; i++ {
			i := i
			rng := newSplitMix(uint64(cfg.Seed)*912367 + uint64(i+1))
			s.Go(i, func(p *memory.Proc) {
				for n := 0; n < cfg.TxnsPerProc; n++ {
					// Pre-draw the operation mix so retries replay the same
					// transaction (as a real retry loop would).
					ops := make([]wlOp, cfg.OpsPerTxn)
					for o := range ops {
						ops[o] = wlOp{
							x:     int(rng.next() % uint64(cfg.Objects)),
							write: float64(rng.next()%1000)/1000 < wr,
							v:     rng.next() % 1000,
						}
					}
					consecutive := 0
					for {
						committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
							for _, op := range ops {
								if op.write {
									if err := tx.Write(op.x, op.v); err != nil {
										return err
									}
								} else if _, err := tx.Read(op.x); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							panic(err)
						}
						if committed {
							commits++
							break
						}
						aborts++
						consecutive++
						if cfg.Backoff {
							shift := consecutive
							if shift > 8 {
								shift = 8
							}
							spins := int(rng.next() % (uint64(1) << uint(shift)))
							for b := 0; b < spins; b++ {
								p.Read(scratch[i]) // local, accounted backoff step
							}
						}
					}
				}
			})
		}
		if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
			return nil, fmt.Errorf("exp: e5 %s wr=%.1f: %w", name, wr, err)
		}
		row := E5Row{
			TM: name, Procs: cfg.Procs, WriteRatio: wr,
			Commits: commits, Aborts: aborts,
			TotalSteps: mem.TotalSteps(),
			Space:      mem.NumObjs(),
		}
		type versioned interface {
			LiveVersions() int
			Versions() int
		}
		if mv, ok := tmi.(versioned); ok {
			// Multi-version TMs report *live* space: allocated arena slots
			// never shrink, but GC bounds what stays reachable.
			row.Space = mem.NumObjs() - 3*mv.Versions() + 3*mv.LiveVersions()
		}
		if commits+aborts > 0 {
			row.AbortRatio = float64(aborts) / float64(commits+aborts)
		}
		if commits > 0 {
			row.StepsPerTxn = float64(mem.TotalSteps()) / float64(commits)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type wlOp struct {
	x     int
	write bool
	v     uint64
}

// splitMix is the same tiny PRNG used by the conformance suite, duplicated
// here so exp does not import a test-only package.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// expBackoff spins a randomized, exponentially growing number of local
// reads on the caller's scratch object after the consecutive-th failed
// attempt — the inline backoff from RunE5's ablation, shared by the
// high-contention scenarios (E13, E14) where an aggressive contention
// manager would otherwise mutually abort forever. The spins are real
// accounted steps, so backed-off runs pay for their waiting.
func expBackoff(p *memory.Proc, scratch *memory.Obj, rng *splitMix, consecutive int) {
	shift := consecutive
	if shift > 8 {
		shift = 8
	}
	spins := int(rng.next() % (uint64(1) << uint(shift)))
	for b := 0; b < spins; b++ {
		p.Read(scratch)
	}
}
