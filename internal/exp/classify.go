package exp

import (
	"repro/internal/check"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// ClassRow is one row of the TM taxonomy table: each algorithm's measured
// membership in the paper's TM classes, next to what it declares. This is
// the reproduction of the paper's implicit "where does each TM sit in the
// hypothesis space" map (Sections 2–3 and the related-work discussion).
type ClassRow struct {
	TM       string
	Declared tm.Props

	// Measured verdicts (true = the property held in every probe run).
	WeakDAP            bool
	InvisibleReads     bool
	WeakInvisibleReads bool
	Progressive        bool
	StrongSingleItem   bool
	Opaque             bool
}

// Classify probes one TM with targeted workloads and reports measured
// class membership. Probes are small and seeded, so the verdicts are
// reproducible; a measured "true" is evidence, not proof (these are
// finite tests of universally quantified properties), but a measured
// "false" is a definitive counterexample.
func Classify(name string, seeds int) (ClassRow, error) {
	row := ClassRow{
		TM:                 name,
		Declared:           tmreg.MustNew(name, memory.New(1, nil), 1).Props(),
		WeakDAP:            true,
		InvisibleReads:     true,
		WeakInvisibleReads: true,
		Progressive:        true,
		StrongSingleItem:   true,
		Opaque:             true,
	}
	// Probe 1: solo read-only transaction → weak invisible reads. Two
	// sequential update transactions first stagger the objects' commit
	// timestamps: timestamp-interval TMs (TicToc) read invisibly from
	// quiescence, where every validity window is [0,0], but must extend a
	// window in place — a CAS during a t-read — once a solo reader crosses
	// objects committed at different times. Reading from quiescence alone
	// would under-measure exactly the class this probe classifies.
	{
		mem := memory.New(1, nil)
		rec := tm.Record(tmreg.MustNew(name, mem, 4))
		p := mem.Proc(0)
		for i := 0; i < 2; i++ {
			if err := tm.Atomically(rec, p, func(w tm.Txn) error {
				v, err := w.Read(0)
				if err != nil {
					return err
				}
				return w.Write(0, v+1)
			}); err != nil {
				return row, err
			}
		}
		tx := rec.Begin(p)
		for x := 0; x < 4; x++ {
			if _, err := tx.Read(x); err != nil {
				return row, err
			}
		}
		if err := tx.Commit(); err != nil {
			return row, err
		}
		h := rec.History()
		if len(check.WeakInvisibleReads(h)) > 0 {
			row.WeakInvisibleReads = false
		}
		if len(check.InvisibleReads(h)) > 0 {
			row.InvisibleReads = false
		}
	}

	// Probe 2: concurrent disjoint writers → weak DAP; concurrent
	// read-only transactions → strong invisible reads; random contention →
	// progressiveness, strong progressiveness, opacity.
	for seed := int64(1); seed <= int64(seeds); seed++ {
		h, err := runDisjointProbe(name, seed)
		if err != nil {
			return row, err
		}
		if len(check.WeakDAP(h)) > 0 {
			row.WeakDAP = false
		}
		if len(check.InvisibleReads(h)) > 0 {
			row.InvisibleReads = false
		}

		h2, err := runContentionProbe(name, seed)
		if err != nil {
			return row, err
		}
		if len(check.Progressive(h2)) > 0 {
			row.Progressive = false
		}
		if len(check.StronglyProgressive(h2)) > 0 {
			row.StrongSingleItem = false
		}
		if !check.Opaque(h2).OK {
			row.Opaque = false
		}
	}
	return row, nil
}

// runDisjointProbe: two processes, disjoint data sets, one reader process —
// the workload in which weak-DAP and invisible-read violations surface.
func runDisjointProbe(name string, seed int64) (*tm.History, error) {
	mem := memory.New(3, nil)
	rec := tm.Record(tmreg.MustNew(name, mem, 8))
	s := sched.New(mem)
	for i := 0; i < 2; i++ {
		lo := i * 6
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < 2; n++ {
				_ = tm.Atomically(rec, p, func(tx tm.Txn) error {
					if _, err := tx.Read(lo); err != nil {
						return err
					}
					return tx.Write(lo+1, uint64(n))
				})
			}
		})
	}
	s.Go(2, func(p *memory.Proc) { // read-only over a third disjoint region
		for n := 0; n < 2; n++ {
			tx := rec.Begin(p)
			ok := true
			for _, x := range []int{3, 4} {
				if _, err := tx.Read(x); err != nil {
					ok = false
					break
				}
			}
			if ok {
				_ = tx.Commit()
			} else {
				tx.Abort()
			}
		}
	})
	if err := s.Run(sched.NewRandom(seed)); err != nil {
		return nil, err
	}
	return rec.History(), nil
}

// runContentionProbe: everyone hammers one item (single attempts) — the
// workload for progressiveness, Definition 1 and opacity checking.
func runContentionProbe(name string, seed int64) (*tm.History, error) {
	mem := memory.New(3, nil)
	rec := tm.Record(tmreg.MustNew(name, mem, 2))
	s := sched.New(mem)
	for i := 0; i < 3; i++ {
		i := i
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < 2; n++ {
				tx := rec.Begin(p)
				ok := true
				if v, err := tx.Read(0); err != nil {
					ok = false
				} else if i%2 == 0 {
					ok = tx.Write(0, v+1) == nil
				}
				if ok {
					_ = tx.Commit()
				} else {
					tx.Abort()
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(seed)); err != nil {
		return nil, err
	}
	return rec.History(), nil
}
