package exp

// E14 is the clustering scenario, the STAMP kmeans shape: a stream of
// points assigned to a small number of centroids, each assignment a tiny
// read-modify-write on the point's centroid accumulator (sum and count),
// with a periodic "recenter" pass reading every accumulator and
// publishing the new means. The contention profile inverts E13's:
// transactions are as small as the E5 counter's, but K accumulators
// shared by every process make the conflict probability a config knob
// (K small → nearly every pair of concurrent assignments collides), and
// the recenter pass is a full-width reader racing them — the shape where
// contention management, not validation cost, dominates. The native
// counterpart is BenchmarkE14Clustering (repro/stm and repro/stm/norecstm
// over centroid Var pairs).
//
// Object layout: centroid c owns three objects — sum (3c), count (3c+1),
// mean (3c+2, written by recenter passes only).

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// E14Row is one TM's clustering measurement.
type E14Row struct {
	TM          string
	Procs       int
	Centroids   int
	Commits     int
	Aborts      int
	AbortRatio  float64
	Recenters   int
	StepsPerTxn float64
	Space       int
}

// E14Config parameterizes the clustering scenario.
type E14Config struct {
	Procs         int
	Centroids     int // K; Objects = 3K
	PointsPerProc int // assignments each process must commit
	RecenterEvery int // a recenter pass after every n assignments (0 = never)
	Seed          int64
}

// DefaultE14Config is the configuration used by tmbench and the tests:
// four centroids shared by six processes put most concurrent assignment
// pairs in conflict. Six is deliberate: under dstm's attacker-wins
// contention management the full-width recenter read set is invalidated
// by every assignment commit, and at eight processes the quiet window a
// recenter needs never opens — the run exceeds the scheduler step limit
// instead of terminating with a big abort count. Six keeps every
// registered TM terminating while the abort column still blows up
// (dstm: ~7000 aborts for ~100 commits).
func DefaultE14Config() E14Config {
	return E14Config{
		Procs:         6,
		Centroids:     4,
		PointsPerProc: 16,
		RecenterEvery: 8,
		Seed:          42,
	}
}

// RunE14 runs the clustering scenario for one TM. Every process retries
// each assignment until it commits (quota-retry, as in E5/E9–E13), so
// Commits is fixed by the config and Aborts measures contention waste.
func RunE14(name string, cfg E14Config) (E14Row, error) {
	objects := 3 * cfg.Centroids
	mem := memory.New(cfg.Procs, nil)
	tmi, err := tmreg.New(name, mem, objects)
	if err != nil {
		return E14Row{}, err
	}
	var commits, aborts, recenters int
	// Backoff scratch, one object per process (the E5 idiom): with K
	// accumulators shared by every process, an aggressive contention
	// manager mutually aborts concurrent assignments forever without
	// spacing out the retries.
	scratch := make([]*memory.Obj, cfg.Procs)
	for i := range scratch {
		scratch[i] = mem.AllocAt(fmt.Sprintf("backoff[%d]", i), i)
	}
	s := sched.New(mem)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		rng := newSplitMix(uint64(cfg.Seed)*48271 + uint64(i+1))
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < cfg.PointsPerProc; n++ {
				// The point's value and its centroid assignment; the modulo
				// stands in for nearest-centroid, preserving what matters
				// (every process hits every accumulator).
				v := rng.next()%1000 + 1
				c := int(v) % cfg.Centroids
				assign := func(tx tm.Txn) error {
					sum, err := tx.Read(3 * c)
					if err != nil {
						return err
					}
					cnt, err := tx.Read(3*c + 1)
					if err != nil {
						return err
					}
					if err := tx.Write(3*c, sum+v); err != nil {
						return err
					}
					return tx.Write(3*c+1, cnt+1)
				}
				for consecutive := 0; ; {
					committed, err := tm.Once(tmi, p, assign)
					if err != nil {
						panic(err)
					}
					if committed {
						commits++
						break
					}
					aborts++
					consecutive++
					expBackoff(p, scratch[i], rng, consecutive)
				}
				if cfg.RecenterEvery > 0 && (n+1)%cfg.RecenterEvery == 0 {
					recenter := func(tx tm.Txn) error {
						for k := 0; k < cfg.Centroids; k++ {
							sum, err := tx.Read(3 * k)
							if err != nil {
								return err
							}
							cnt, err := tx.Read(3*k + 1)
							if err != nil {
								return err
							}
							mean := uint64(0)
							if cnt > 0 {
								mean = sum / cnt
							}
							if err := tx.Write(3*k+2, mean); err != nil {
								return err
							}
						}
						return nil
					}
					for consecutive := 0; ; {
						committed, err := tm.Once(tmi, p, recenter)
						if err != nil {
							panic(err)
						}
						if committed {
							commits++
							recenters++
							break
						}
						aborts++
						consecutive++
						expBackoff(p, scratch[i], rng, consecutive)
					}
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
		return E14Row{}, fmt.Errorf("exp: e14 %s: %w", name, err)
	}
	var steps uint64
	for i := 0; i < cfg.Procs; i++ {
		steps += mem.Proc(i).Steps()
	}
	row := E14Row{
		TM: name, Procs: cfg.Procs, Centroids: cfg.Centroids,
		Commits: commits, Aborts: aborts, Recenters: recenters,
		Space: mem.NumObjs(),
	}
	if mv, ok := tmi.(interface {
		LiveVersions() int
		Versions() int
	}); ok {
		row.Space = mem.NumObjs() - 3*mv.Versions() + 3*mv.LiveVersions()
	}
	if commits > 0 {
		row.AbortRatio = float64(aborts) / float64(commits+aborts)
		row.StepsPerTxn = float64(steps) / float64(commits)
	}
	// Verification pass: the total assignment count across centroids must
	// equal the points committed — a lost RMW under contention would show
	// up here.
	var totalCnt uint64
	s.Go(0, func(p *memory.Proc) {
		for {
			committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
				totalCnt = 0
				for k := 0; k < cfg.Centroids; k++ {
					cnt, err := tx.Read(3*k + 1)
					if err != nil {
						return err
					}
					totalCnt += cnt
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			if committed {
				break
			}
		}
	})
	if err := s.Run(sched.NewRandom(cfg.Seed + 1)); err != nil {
		return E14Row{}, fmt.Errorf("exp: e14 %s verification: %w", name, err)
	}
	if want := uint64(cfg.Procs) * uint64(cfg.PointsPerProc); totalCnt != want {
		return E14Row{}, fmt.Errorf("exp: e14 %s: %d assignments recorded, want %d — an update was lost", name, totalCnt, want)
	}
	return row, nil
}
