package exp

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// E11 is the long-scan / HTAP scenario: analytical read transactions —
// long ordered scans over a contiguous window and multi-key aggregates —
// racing a pool of point writers. It is the workload class where every
// single-version TM is structurally wrong: an invisible-read scan must
// certify each read against a moving clock (paying the Theorem-3
// validation steps, or an abort and a full replay on the RO fast path),
// while a multi-version TM pins a snapshot and walks version chains — no
// validation, no read-side aborts, at the price of the space the chains
// occupy. The table makes the paper's time/space trade legible in one
// row pair: compare tl2's ReadAborts and StepsPerTxn against mvtm's
// zeros, then compare their Space columns; mvtm (no GC) against mvtm-gc
// shows what the epoch GC buys back. The native counterpart is
// BenchmarkE11NativeScan (repro/stm vs repro/stm/mvstm on identical
// workloads).
type E11Row struct {
	TM         string
	ROHint     bool // read transactions were declared read-only (and the TM applied it)
	Procs      int
	Commits    int
	Aborts     int
	ReadAborts int // aborted attempts of read-only (scan/aggregate) transactions
	AbortRatio float64
	// StepsPerTxn is the mean steps per committed transaction; ScanSteps
	// is the same for committed scan transactions only (attributed by the
	// per-transaction span), the quantity Theorem 3 bounds from below for
	// single-version invisible-read TMs.
	StepsPerTxn float64
	ScanSteps   float64
	// Space counts live base objects as in E5: for multi-version TMs the
	// dead version nodes are subtracted, so mvtm vs mvtm-gc shows chain
	// growth vs GC truncation.
	Space int
}

// E11Config parameterizes the long-scan scenario.
type E11Config struct {
	Procs       int
	TxnsPerProc int     // committed transactions each process must complete
	Objects     int     // t-objects (the scanned table)
	ScanLen     int     // contiguous objects per long scan
	AggKeys     int     // keys read by a multi-key aggregate
	WriteRatio  float64 // fraction of transactions that are point RMWs
	ScanRatio   float64 // fraction of *read* transactions that are long scans
	DeclareRO   bool    // declare read transactions via tm.ReadOnlyHinter
	Seed        int64
}

// DefaultE11Config is the configuration used by benchmarks and tmbench:
// scans cover half the table, so a scan outlives several writer commits,
// and the writer pool is heavy enough that the mvtm vs mvtm-gc space
// delta (unbounded chains vs epoch truncation) is visible in the table.
func DefaultE11Config() E11Config {
	return E11Config{
		Procs:       8,
		TxnsPerProc: 16,
		Objects:     48,
		ScanLen:     24,
		AggKeys:     4,
		WriteRatio:  0.5,
		ScanRatio:   0.5,
		DeclareRO:   true,
		Seed:        42,
	}
}

// RunE11 runs the long-scan scenario for one TM. As in E5/E9/E10, every
// process retries each transaction until it commits, so Commits is fixed
// by the config; Aborts measures wasted attempts and ReadAborts the
// subset wasted on read-only transactions — zero for the multi-version
// TMs, which is the point of keeping versions.
func RunE11(name string, cfg E11Config) (E11Row, error) {
	mem := memory.New(cfg.Procs, nil)
	tmi, err := tmreg.New(name, mem, cfg.Objects)
	if err != nil {
		return E11Row{}, err
	}
	commits, aborts, readAborts := 0, 0, 0
	scanCommits, scanSteps := 0, uint64(0)
	hintApplied := false
	s := sched.New(mem)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		rng := newSplitMix(uint64(cfg.Seed)*48271 + uint64(i+1))
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < cfg.TxnsPerProc; n++ {
				// Pre-draw the transaction so retries replay it exactly.
				body, readOnly, isScan := drawE11Txn(cfg, rng)
				for {
					var span *memory.Span
					if isScan {
						span = p.BeginSpan(fmt.Sprintf("e11.scan[%d.%d]", i, n))
					}
					committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
						if readOnly && cfg.DeclareRO && tm.DeclareReadOnly(tx) {
							hintApplied = true
						}
						return body(tx)
					})
					if span != nil {
						p.EndSpan()
					}
					if err != nil {
						panic(err)
					}
					if committed {
						commits++
						if isScan {
							scanCommits++
							scanSteps += span.Steps
						}
						break
					}
					aborts++
					if readOnly {
						readAborts++
					}
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
		return E11Row{}, fmt.Errorf("exp: e11 %s: %w", name, err)
	}
	row := E11Row{
		TM: name, ROHint: hintApplied, Procs: cfg.Procs,
		Commits: commits, Aborts: aborts, ReadAborts: readAborts,
		Space: mem.NumObjs(),
	}
	if mv, ok := tmi.(interface {
		LiveVersions() int
		Versions() int
	}); ok {
		// As in E5: count only the live version nodes (3 base objects each),
		// so the GC ablation is visible in the Space column.
		row.Space = mem.NumObjs() - 3*mv.Versions() + 3*mv.LiveVersions()
	}
	if commits+aborts > 0 {
		row.AbortRatio = float64(aborts) / float64(commits+aborts)
	}
	if commits > 0 {
		row.StepsPerTxn = float64(mem.TotalSteps()) / float64(commits)
	}
	if scanCommits > 0 {
		row.ScanSteps = float64(scanSteps) / float64(scanCommits)
	}
	return row, nil
}

// drawE11Txn draws one transaction from rng: a point RMW (writer pool), a
// long ordered scan, or a multi-key aggregate. The returned closure
// touches only pre-drawn indices, so re-running it after an abort replays
// the same transaction.
func drawE11Txn(cfg E11Config, rng *splitMix) (body func(tm.Txn) error, readOnly, isScan bool) {
	roll := float64(rng.next()%1000) / 1000
	switch {
	case roll < cfg.WriteRatio:
		// Writer pool: point RMW on a uniform key.
		x := int(rng.next() % uint64(cfg.Objects))
		delta := rng.next() % 100
		return func(tx tm.Txn) error {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			return tx.Write(x, v+delta)
		}, false, false
	case roll < cfg.WriteRatio+(1-cfg.WriteRatio)*cfg.ScanRatio:
		// Long ordered scan: a contiguous window of ScanLen objects — the
		// analytical read whose validation cost Theorem 3 bounds.
		start := int(rng.next() % uint64(cfg.Objects))
		length := cfg.ScanLen
		return func(tx tm.Txn) error {
			var sum uint64
			for j := 0; j < length; j++ {
				v, err := tx.Read((start + j) % cfg.Objects)
				if err != nil {
					return err
				}
				sum += v
			}
			_ = sum
			return nil
		}, true, true
	default:
		// Multi-key aggregate: AggKeys scattered reads in one snapshot.
		keys := make([]int, cfg.AggKeys)
		for j := range keys {
			keys[j] = int(rng.next() % uint64(cfg.Objects))
		}
		return func(tx tm.Txn) error {
			var sum uint64
			for _, x := range keys {
				v, err := tx.Read(x)
				if err != nil {
					return err
				}
				sum += v
			}
			_ = sum
			return nil
		}, true, false
	}
}
