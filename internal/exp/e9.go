package exp

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// E9 is the STAMP-style scenario suite: mixed workloads whose read sets are
// long and structured, unlike the flat counters and transfers of E5/E7.
// Two scenarios are modeled on the simulator's t-object array (the native
// counterparts run on stm.OrderedMap / stm.Map — see BenchmarkE9* and
// DESIGN.md's E9 row):
//
//   - "index-scan": an ordered index under a read-mostly mix. Most
//     transactions scan a contiguous run of ScanLen t-objects (the
//     simulator's stand-in for an ordered Range over a skiplist: a long,
//     ordered, pointer-chasing read set), the rest do a point
//     read-modify-write racing the scans. Invisible-read TMs pay Theorem
//     3's incremental-validation cost on every scan; the clock-strategy/
//     extension variants show whether a mid-scan commit aborts the scan or
//     merely revalidates it.
//
//   - "reservation": the STAMP vacation shape, a multi-key read-modify-
//     write across two tables. The object space is split into customers
//     (first half) and resources (second half); a transaction reads a
//     customer, probes K resources for availability, then books one —
//     writing both tables — or cancels, reading both. Mid-size read sets
//     with two-table write sets: the conflict pattern neither a counter
//     nor a single map exercises.
type E9Row struct {
	TM          string
	Scenario    string
	Procs       int
	Commits     int
	Aborts      int
	AbortRatio  float64
	TotalSteps  uint64
	StepsPerTxn float64
}

// E9Config parameterizes the scenario suite.
type E9Config struct {
	Procs       int
	TxnsPerProc int // committed transactions each process must complete
	Objects     int // t-objects per scenario (the reservation tables split it)
	ScanLen     int // contiguous objects per index scan
	Probes      int // resources probed per reservation
	WriteRatio  float64
	Seed        int64
}

// DefaultE9Config is the suite used by benchmarks and tmbench.
func DefaultE9Config() E9Config {
	return E9Config{
		Procs:       8,
		TxnsPerProc: 12,
		Objects:     32,
		ScanLen:     8,
		Probes:      4,
		WriteRatio:  0.25,
		Seed:        42,
	}
}

// E9Scenarios lists the scenario names in table order.
func E9Scenarios() []string { return []string{"index-scan", "reservation"} }

// RunE9 runs every scenario of the suite for one TM. Like E5, every
// process retries each transaction until it commits, so Commits is fixed
// by the config and Aborts measures wasted attempts.
func RunE9(name string, cfg E9Config) ([]E9Row, error) {
	var rows []E9Row
	for _, scenario := range E9Scenarios() {
		row, err := runE9Scenario(name, scenario, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runE9Scenario executes one scenario to completion on one TM under seeded
// random scheduling.
func runE9Scenario(name, scenario string, cfg E9Config) (E9Row, error) {
	mem := memory.New(cfg.Procs, nil)
	tmi, err := tmreg.New(name, mem, cfg.Objects)
	if err != nil {
		return E9Row{}, err
	}
	commits, aborts := 0, 0
	s := sched.New(mem)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		rng := newSplitMix(uint64(cfg.Seed)*48271 + uint64(i+1))
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < cfg.TxnsPerProc; n++ {
				// Pre-draw the transaction so retries replay it exactly.
				body := drawE9Txn(scenario, cfg, rng)
				for {
					committed, err := tm.Once(tmi, p, body)
					if err != nil {
						panic(err)
					}
					if committed {
						commits++
						break
					}
					aborts++
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
		return E9Row{}, fmt.Errorf("exp: e9 %s/%s: %w", name, scenario, err)
	}
	row := E9Row{
		TM: name, Scenario: scenario, Procs: cfg.Procs,
		Commits: commits, Aborts: aborts,
		TotalSteps: mem.TotalSteps(),
	}
	if commits+aborts > 0 {
		row.AbortRatio = float64(aborts) / float64(commits+aborts)
	}
	if commits > 0 {
		row.StepsPerTxn = float64(mem.TotalSteps()) / float64(commits)
	}
	return row, nil
}

// drawE9Txn draws one transaction body for the scenario from rng. The
// returned closure touches only pre-drawn indices, so re-running it after
// an abort replays the same transaction, as a real retry loop would.
func drawE9Txn(scenario string, cfg E9Config, rng *splitMix) func(tm.Txn) error {
	switch scenario {
	case "index-scan":
		if float64(rng.next()%1000)/1000 < cfg.WriteRatio {
			// Point update racing the scans.
			x := int(rng.next() % uint64(cfg.Objects))
			delta := rng.next() % 100
			return func(tx tm.Txn) error {
				v, err := tx.Read(x)
				if err != nil {
					return err
				}
				return tx.Write(x, v+delta)
			}
		}
		// Ordered scan of a contiguous window: the long read set.
		start := int(rng.next() % uint64(cfg.Objects))
		length := cfg.ScanLen
		return func(tx tm.Txn) error {
			var sum uint64
			for j := 0; j < length; j++ {
				v, err := tx.Read((start + j) % cfg.Objects)
				if err != nil {
					return err
				}
				sum += v
			}
			_ = sum
			return nil
		}
	case "reservation":
		half := cfg.Objects / 2
		customer := int(rng.next() % uint64(half))
		probes := make([]int, cfg.Probes)
		for j := range probes {
			probes[j] = half + int(rng.next()%uint64(half))
		}
		cancel := rng.next()%10 == 0
		return func(tx tm.Txn) error {
			bal, err := tx.Read(customer)
			if err != nil {
				return err
			}
			// Probe the resources in index order (the ordered-map idiom),
			// remembering the best available one.
			best, bestAvail := -1, uint64(0)
			for _, r := range probes {
				avail, err := tx.Read(r)
				if err != nil {
					return err
				}
				if best == -1 || avail > bestAvail {
					best, bestAvail = r, avail
				}
			}
			if cancel {
				return nil // read-only audit of both tables
			}
			// Book: write both tables in one atomic step.
			if err := tx.Write(best, bestAvail+1); err != nil {
				return err
			}
			return tx.Write(customer, bal+1)
		}
	default:
		panic("exp: unknown e9 scenario " + scenario)
	}
}
