package exp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/memory"
	"repro/internal/tm"
)

// FormatHistory renders a recorded history as a step-level timeline: one
// line per t-operation, with the transaction, the response, and the base
// objects the TM touched to implement it (resolved to their diagnostic
// names through mem). It is the microscope behind cmd/tmtrace.
func FormatHistory(w io.Writer, mem *memory.Memory, h *tm.History) {
	type line struct {
		seq  int
		text string
	}
	var lines []line
	for _, t := range h.Txns {
		for _, op := range t.Ops {
			var desc string
			switch op.Kind {
			case tm.OpRead:
				if op.Aborted {
					desc = fmt.Sprintf("read(X%d) -> ABORT", op.Obj)
				} else {
					desc = fmt.Sprintf("read(X%d) -> %d", op.Obj, op.Value)
				}
			case tm.OpWrite:
				if op.Aborted {
					desc = fmt.Sprintf("write(X%d,%d) -> ABORT", op.Obj, op.Value)
				} else {
					desc = fmt.Sprintf("write(X%d,%d) -> ok", op.Obj, op.Value)
				}
			case tm.OpTryCommit:
				if op.Aborted {
					desc = "tryC -> ABORT"
				} else {
					desc = "tryC -> COMMIT"
				}
			case tm.OpAbort:
				desc = "abort"
			}
			lines = append(lines, line{
				seq:  op.Seq,
				text: fmt.Sprintf("%4d  p%-2d T%-3d %-24s %s", op.Seq, t.Proc, t.ID, desc, formatAccesses(mem, op.Accesses)),
			})
		}
	}
	// Ops were appended per transaction; emit them in global seq order.
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j].seq < lines[j-1].seq; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	fmt.Fprintln(w, " seq  proc txn  operation                base-object accesses (:w = nontrivial)")
	fmt.Fprintln(w, strings.Repeat("-", 100))
	for _, l := range lines {
		fmt.Fprintln(w, l.text)
	}
}

// formatAccesses compacts an access list: consecutive accesses to the same
// object collapse with a repeat count; nontrivial accesses are marked :w.
func formatAccesses(mem *memory.Memory, accs []tm.BaseAccess) string {
	if len(accs) == 0 {
		return "(none)"
	}
	var parts []string
	i := 0
	for i < len(accs) {
		j := i
		for j < len(accs) && accs[j].Obj == accs[i].Obj && accs[j].Nontrivial == accs[i].Nontrivial {
			j++
		}
		name := fmt.Sprintf("obj#%d", accs[i].Obj)
		if o := mem.ObjAt(accs[i].Obj); o != nil {
			name = o.Name()
		}
		suffix := ""
		if accs[i].Nontrivial {
			suffix = ":w"
		}
		if j-i > 1 {
			parts = append(parts, fmt.Sprintf("%s%s×%d", name, suffix, j-i))
		} else {
			parts = append(parts, name+suffix)
		}
		i = j
	}
	if len(parts) > 8 {
		parts = append(parts[:8], fmt.Sprintf("… +%d more", len(parts)-8))
	}
	return strings.Join(parts, " ")
}
