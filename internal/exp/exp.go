// Package exp is the experiment harness: it drives the workloads of the
// per-experiment index in DESIGN.md (E1..E11), producing the rows that
// the benchmarks, the tmbench CLI and EXPERIMENTS.md report. Each
// experiment reproduces one artifact of the paper — see the function
// comments.
package exp

import (
	"errors"
	"fmt"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// ErrBlockingTM is returned when an experiment's adversary cannot be run
// against a blocking TM (no interval-contention-free liveness): the
// adversary's writer would spin forever against the reader's lock in a
// sequential fragment.
var ErrBlockingTM = errors.New("exp: TM blocks the Lemma-2 adversary (no ICF liveness)")

// blocking reports whether the named TM lacks ICF TM-liveness (its
// transactions block on contention, so the adversary's writer would spin
// forever inside a step contention-free fragment).
func blocking(name string) bool {
	probe, err := tmreg.New(name, memory.New(1, nil), 1)
	if err != nil {
		return false // let the caller surface the unknown-name error
	}
	return !probe.Props().ICFLiveness
}

// E1Row is one measurement of experiment E1 (Theorem 3(1)): the step
// complexity of a read-only transaction of M reads, either solo or against
// the Lemma-2 adversary that commits a write to X_i immediately before
// read_φ(X_i).
type E1Row struct {
	TM            string
	M             int
	Adversary     bool
	Attempts      int    // transaction attempts until commit (1 = no abort)
	TotalSteps    uint64 // all steps by the reader process, across attempts
	LastReadSteps uint64 // steps of the final, successful read_φ(X_m)
	FreshReads    int    // adversary runs: reads that returned the new value
}

// RunE1 measures the reader's step complexity for each read-set size in ms.
// With adversary=false it runs π^m solo from a quiescent configuration;
// with adversary=true it interleaves the Lemma-2 writer before every read.
func RunE1(name string, ms []int, adversary bool) ([]E1Row, error) {
	if adversary && blocking(name) {
		return nil, fmt.Errorf("%w: %s", ErrBlockingTM, name)
	}
	var rows []E1Row
	for _, m := range ms {
		mem := memory.New(2, nil)
		tmi, err := tmreg.New(name, mem, m)
		if err != nil {
			return nil, err
		}
		reader, writer := mem.Proc(0), mem.Proc(1)
		attempts, fresh, lastRead, err := lemma2Drive(tmi, reader, writer, m, adversary)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E1Row{
			TM: name, M: m, Adversary: adversary,
			Attempts:      attempts,
			TotalSteps:    reader.Steps(),
			LastReadSteps: lastRead.Steps,
			FreshReads:    fresh,
		})
	}
	return rows, nil
}

// lemma2Drive runs the read-only transaction T_φ over objects 0..m-1,
// retrying on abort, with the adversary (when enabled) committing
// write(X_i, i+1000) via a separate process immediately before each
// read_φ(X_i). It returns the attempt count and the span of the final
// successful read.
func lemma2Drive(tmi tm.TM, reader, writer *memory.Proc, m int, adversary bool) (int, int, *memory.Span, error) {
	attempts := 0
	written := make([]bool, m)
	for {
		attempts++
		if attempts > 100*m+100 {
			return 0, 0, nil, fmt.Errorf("exp: reader did not commit after %d attempts", attempts-1)
		}
		tx := tmi.Begin(reader)
		ok := true
		fresh := 0
		var last *memory.Span
		for i := 0; i < m && ok; i++ {
			if adversary && !written[i] {
				// ρ^i: a committed writer transaction on X_i, step
				// contention-free. Written once per object: the Lemma-2
				// execution has exactly one writer per item.
				if err := tm.Atomically(tmi, writer, func(w tm.Txn) error {
					return w.Write(i, uint64(i)+1000)
				}); err != nil {
					return 0, 0, nil, err
				}
				written[i] = true
			}
			sp := reader.BeginSpan(fmt.Sprintf("read#%d", i+1))
			v, err := tx.Read(i)
			reader.EndSpan()
			if err != nil {
				tx.Abort()
				ok = false
				break
			}
			want := uint64(i) + 1000
			switch {
			case adversary && v == want:
				// Weak-DAP TMs cannot distinguish π^{i−1}·ρ^i from
				// ρ^i·π^{i−1} (Lemma 2), so they must return the new value.
				fresh++
			case adversary && v == 0:
				// A TM that is not weak DAP (e.g. a snapshot-reading
				// multi-version TM) may legally serialize T_φ before the
				// writers and return the old value.
			case !adversary && v == 0:
			default:
				return 0, 0, nil, fmt.Errorf("exp: read_φ(X_%d) = %d, want 0 or %d", i, v, want)
			}
			last = sp
		}
		if !ok {
			continue
		}
		reader.BeginSpan("tryC")
		err := tx.Commit()
		reader.EndSpan()
		if err != nil {
			tx.Abort()
			continue
		}
		return attempts, fresh, last, nil
	}
}

// E2Row is one measurement of experiment E2 (Theorem 3(2)): the number of
// distinct base objects accessed during the m-th (final) t-read plus
// tryCommit. The theorem's bound is m-1.
type E2Row struct {
	TM           string
	M            int
	Adversary    bool
	DistinctObjs int
	Bound        int // m-1, for the table
}

// RunE2 measures the space complexity of the last read + tryCommit.
func RunE2(name string, ms []int, adversary bool) ([]E2Row, error) {
	if adversary && blocking(name) {
		return nil, fmt.Errorf("%w: %s", ErrBlockingTM, name)
	}
	var rows []E2Row
	for _, m := range ms {
		mem := memory.New(2, nil)
		tmi, err := tmreg.New(name, mem, m)
		if err != nil {
			return nil, err
		}
		reader, writer := mem.Proc(0), mem.Proc(1)
		distinct, err := e2Drive(tmi, reader, writer, m, adversary)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E2Row{TM: name, M: m, Adversary: adversary, DistinctObjs: distinct, Bound: m - 1})
	}
	return rows, nil
}

// e2Drive performs π^{m-1} (reads of X_1..X_{m-1}), then — with the
// adversary — ρ^m (a committed write to X_m), then measures the distinct
// base objects touched by read_φ(X_m) and tryC_φ together, retrying the
// whole transaction if it aborts.
func e2Drive(tmi tm.TM, reader, writer *memory.Proc, m int, adversary bool) (int, error) {
	for attempt := 0; attempt < 100*m+100; attempt++ {
		tx := tmi.Begin(reader)
		ok := true
		for i := 0; i < m-1; i++ {
			if _, err := tx.Read(i); err != nil {
				tx.Abort()
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if adversary && attempt == 0 {
			if err := tm.Atomically(tmi, writer, func(w tm.Txn) error {
				return w.Write(m-1, 4242)
			}); err != nil {
				return 0, err
			}
		}
		sp := reader.BeginSpan("lastread+tryC")
		_, err := tx.Read(m - 1)
		if err == nil {
			err = tx.Commit()
		}
		reader.EndSpan()
		if err != nil {
			tx.Abort()
			continue
		}
		return sp.DistinctObjects(), nil
	}
	return 0, fmt.Errorf("exp: e2 reader did not commit")
}

// E6Row compares irtm's measured solo read-only step count to the closed
// form m(m-1)/2 + 3m of the Section 6 matching upper bound.
type E6Row struct {
	M        int
	Measured uint64
	Formula  uint64
}

// RunE6 verifies the tightness claim of Section 6 exactly.
func RunE6(ms []int) ([]E6Row, error) {
	rows, err := RunE1("irtm", ms, false)
	if err != nil {
		return nil, err
	}
	out := make([]E6Row, len(rows))
	for i, r := range rows {
		m := uint64(r.M)
		out[i] = E6Row{M: r.M, Measured: r.TotalSteps, Formula: m*(m-1)/2 + 3*m}
	}
	return out, nil
}
