package exp_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/tmreg"
)

// TestE11AllTMs runs the long-scan/HTAP scenario on every registered TM:
// every process completes its quota, and the multi-version TMs complete
// it with zero read-side aborts — the property the scenario exists to
// demonstrate (the blocking sgltm trivially shares it).
func TestE11AllTMs(t *testing.T) {
	cfg := exp.E11Config{
		Procs: 4, TxnsPerProc: 4, Objects: 16, ScanLen: 8, AggKeys: 3,
		WriteRatio: 0.3, ScanRatio: 0.5, DeclareRO: true, Seed: 7,
	}
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.RunE11(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if row.Commits != cfg.Procs*cfg.TxnsPerProc {
				t.Errorf("%d commits, want %d", row.Commits, cfg.Procs*cfg.TxnsPerProc)
			}
			if row.StepsPerTxn <= 0 || row.ScanSteps <= 0 {
				t.Errorf("steps not recorded: %+v", row)
			}
			switch name {
			case "mvtm", "mvtm-gc":
				if row.ReadAborts != 0 {
					t.Errorf("multi-version TM aborted %d read transactions", row.ReadAborts)
				}
			case "sgltm":
				if row.Aborts != 0 {
					t.Errorf("blocking TM aborted %d times", row.Aborts)
				}
			}
			if row.ReadAborts > row.Aborts {
				t.Errorf("ReadAborts %d > Aborts %d", row.ReadAborts, row.Aborts)
			}
		})
	}
}

// TestE11GCBoundsSpace: on the same workload, the GC'd multi-version TM
// must finish with no more live space than the unbounded one — the chain
// growth the epoch GC exists to reclaim.
func TestE11GCBoundsSpace(t *testing.T) {
	// Version-heavy variant: enough writer commits that the unbounded
	// chains clearly outgrow the GC'd ones (the GC variant also pays one
	// registration object per process, which a tiny workload would not
	// amortize).
	cfg := exp.DefaultE11Config()
	cfg.TxnsPerProc, cfg.WriteRatio = 24, 0.6
	nogc, err := exp.RunE11("mvtm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := exp.RunE11("mvtm-gc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Space > nogc.Space {
		t.Errorf("mvtm-gc live space %d > mvtm %d", gc.Space, nogc.Space)
	}
	if nogc.ReadAborts != 0 || gc.ReadAborts != 0 {
		t.Errorf("multi-version read aborts: nogc=%d gc=%d", nogc.ReadAborts, gc.ReadAborts)
	}
}

// TestE11ROAblation: the TL2 clock variants complete the quota with and
// without the read-only declaration — the single-version baselines the
// E11 table compares the multi-version rows against.
func TestE11ROAblation(t *testing.T) {
	cfg := exp.E11Config{
		Procs: 4, TxnsPerProc: 4, Objects: 16, ScanLen: 8, AggKeys: 3,
		WriteRatio: 0.3, ScanRatio: 0.5, Seed: 11,
	}
	for _, name := range tmreg.ClockVariants() {
		for _, declare := range []bool{false, true} {
			c := cfg
			c.DeclareRO = declare
			row, err := exp.RunE11(name, c)
			if err != nil {
				t.Fatalf("%s ro=%v: %v", name, declare, err)
			}
			if row.Commits != cfg.Procs*cfg.TxnsPerProc {
				t.Errorf("%s ro=%v: %d commits, want %d", name, declare, row.Commits, cfg.Procs*cfg.TxnsPerProc)
			}
			if declare && !row.ROHint {
				t.Errorf("%s: RO declaration not applied", name)
			}
		}
	}
}
