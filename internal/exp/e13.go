package exp

// E13 is the graph-routing scenario, the STAMP labyrinth shape: routers
// claim paths through a shared grid by reading a long speculative run of
// cells and then writing every one of them — transactions whose write
// sets are as large as their read sets, unlike anything in E5–E12 (point
// RMWs, scans with tiny write sets). Two behaviors are under test:
//
//   - Write-set scaling. A route over k cells buffers k writes and locks
//     k objects at commit; on the native engines this is the write-set
//     promotion path (sorted slice → map past the threshold), and on the
//     simulator it is the largest wv/tryC footprint the E-series
//     produces.
//
//   - Budget charging on write-heavy work. E12's hostile scans are
//     read-only; a metered router is charged for reads AND buffered
//     writes, so StepBudget below a route's unavoidable step count must
//     refuse the route (ErrOutOfBudget), which the E13 table's metered
//     rows demonstrate.
//
// Routing conflicts are real: two routers whose paths cross must
// serialize, and the loser either aborts (optimistic TMs) and replays, or
// finds the cell occupied on replay and replans a different pair. The
// native counterpart is BenchmarkE13GraphRouting (repro/stm and
// repro/stm/mvstm over a Var grid).

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
	"repro/stm/budget"
)

// E13Row is one TM's routing measurement.
type E13Row struct {
	TM      string
	Metered bool
	Procs   int
	// Routed counts committed routes; Replanned counts routes abandoned
	// because a cell on the path was already claimed (the router redraws a
	// new pair, STAMP-labyrinth style); Refused counts metered attempts
	// charged out mid-route.
	Routed       int
	Replanned    int
	Refused      int
	Aborts       int
	ClaimedCells int // total cells written by committed routes
	StepsPerTxn  float64
	Space        int
}

// E13Config parameterizes the routing scenario.
type E13Config struct {
	Procs         int
	GridW, GridH  int    // the grid; Objects = GridW*GridH cells
	RoutesPerProc int    // routes each router must resolve (commit or replan out)
	MaxReplans    int    // pair redraws before a route counts as Replanned
	StepBudget    uint64 // per-attempt step grant; 0 = unmetered
	Seed          int64
}

// DefaultE13Config is the configuration used by tmbench and the tests:
// paths average half a grid side each way, so write sets run an order of
// magnitude past the point-RMW scenarios'.
func DefaultE13Config() E13Config {
	return E13Config{
		Procs:         8,
		GridW:         16,
		GridH:         16,
		RoutesPerProc: 6,
		MaxReplans:    8,
		Seed:          42,
	}
}

// e13Path returns the L-shaped cell path from (sx,sy) to (dx,dy): along
// the row first, then the column — the deterministic stand-in for
// labyrinth's breadth-first expansion, preserving what matters here (path
// length scales with grid distance, and crossing paths share cells).
func e13Path(w int, sx, sy, dx, dy int) []int {
	var cells []int
	step := func(a, b int) int {
		if a < b {
			return 1
		}
		return -1
	}
	x, y := sx, sy
	cells = append(cells, y*w+x)
	for x != dx {
		x += step(x, dx)
		cells = append(cells, y*w+x)
	}
	for y != dy {
		y += step(y, dy)
		cells = append(cells, y*w+x)
	}
	return cells
}

// errE13Occupied aborts a routing attempt from inside the transaction
// body when a path cell is already claimed: the route must be replanned,
// not retried.
var errE13Occupied = fmt.Errorf("e13: path cell occupied")

// RunE13 runs the routing scenario for one TM. Each router resolves
// RoutesPerProc routes: draw a pair, read the path, and either claim
// every cell (write its router id) or — if a cell is taken — redraw, up
// to MaxReplans times. Conflict aborts replay the same pair (quota-retry,
// as in E5/E9–E12); metered attempts that exceed the grant are refused
// and the route abandoned, as in E12.
func RunE13(name string, cfg E13Config) (E13Row, error) {
	objects := cfg.GridW * cfg.GridH
	mem := memory.New(cfg.Procs, nil)
	tmi, err := tmreg.New(name, mem, objects)
	if err != nil {
		return E13Row{}, err
	}
	var routed, replanned, refused, aborts, claimed int
	// Backoff scratch, one object per router (the E5 idiom): long crossing
	// routes under an aggressive contention manager can mutually abort
	// forever without spacing out the retries.
	scratch := make([]*memory.Obj, cfg.Procs)
	for i := range scratch {
		scratch[i] = mem.AllocAt(fmt.Sprintf("backoff[%d]", i), i)
	}
	s := sched.New(mem)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		rng := newSplitMix(uint64(cfg.Seed)*69621 + uint64(i+1))
		s.Go(i, func(p *memory.Proc) {
			id := uint64(i + 1) // 0 marks a free cell
			for n := 0; n < cfg.RoutesPerProc; n++ {
			draw:
				for attempt := 0; ; attempt++ {
					if attempt > cfg.MaxReplans {
						replanned++
						break
					}
					sx, sy := int(rng.next()%uint64(cfg.GridW)), int(rng.next()%uint64(cfg.GridH))
					dx, dy := int(rng.next()%uint64(cfg.GridW)), int(rng.next()%uint64(cfg.GridH))
					path := e13Path(cfg.GridW, sx, sy, dx, dy)
					route := func(tx tm.Txn) error {
						begun := p.Steps()
						for _, c := range path {
							v, err := tx.Read(c)
							if err != nil {
								return err
							}
							if v != 0 {
								return errE13Occupied
							}
							if cfg.StepBudget > 0 && p.Steps()-begun > cfg.StepBudget {
								return budget.ErrOutOfBudget
							}
						}
						for _, c := range path {
							if err := tx.Write(c, id); err != nil {
								return err
							}
							if cfg.StepBudget > 0 && p.Steps()-begun > cfg.StepBudget {
								return budget.ErrOutOfBudget
							}
						}
						return nil
					}
					for consecutive := 0; ; {
						committed, err := tm.Once(tmi, p, route)
						switch err {
						case nil:
						case errE13Occupied:
							continue draw // redraw a new pair
						case budget.ErrOutOfBudget:
							refused++
							break draw // charged out: route abandoned, not retried
						default:
							panic(err)
						}
						if committed {
							routed++
							claimed += len(path)
							break draw
						}
						aborts++ // conflict: replay the same pair
						consecutive++
						expBackoff(p, scratch[i], rng, consecutive)
					}
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
		return E13Row{}, fmt.Errorf("exp: e13 %s: %w", name, err)
	}
	var steps uint64
	for i := 0; i < cfg.Procs; i++ {
		steps += mem.Proc(i).Steps()
	}
	row := E13Row{
		TM: name, Metered: cfg.StepBudget > 0, Procs: cfg.Procs,
		Routed: routed, Replanned: replanned, Refused: refused,
		Aborts: aborts, ClaimedCells: claimed,
		Space: mem.NumObjs(),
	}
	if mv, ok := tmi.(interface {
		LiveVersions() int
		Versions() int
	}); ok {
		row.Space = mem.NumObjs() - 3*mv.Versions() + 3*mv.LiveVersions()
	}
	if routed > 0 {
		row.StepsPerTxn = float64(steps) / float64(routed)
	}
	// Verification pass: committed routes hold disjoint cells, abandoned
	// ones hold none — so the occupied-cell count must equal the cells the
	// committed routes claimed.
	occupied := 0
	s.Go(0, func(p *memory.Proc) {
		for {
			committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
				occupied = 0
				for c := 0; c < objects; c++ {
					v, err := tx.Read(c)
					if err != nil {
						return err
					}
					if v != 0 {
						occupied++
					}
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			if committed {
				break
			}
		}
	})
	if err := s.Run(sched.NewRandom(cfg.Seed + 1)); err != nil {
		return E13Row{}, fmt.Errorf("exp: e13 %s verification: %w", name, err)
	}
	if occupied != claimed {
		return E13Row{}, fmt.Errorf("exp: e13 %s: %d occupied cells, want the %d claimed by committed routes", name, occupied, claimed)
	}
	return row, nil
}
