package exp_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

func memNew() *memory.Memory { return memory.New(2, nil) }

var e1Sizes = []int{4, 8, 16, 32}

// TestE1SoloShapes pins the solo (π^m) step complexity of every TM to the
// shape the paper predicts: quadratic for the invisible-read validating TM,
// linear for every ablation.
func TestE1SoloShapes(t *testing.T) {
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			rows, err := exp.RunE1(name, e1Sizes, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.Attempts != 1 {
					t.Fatalf("m=%d: solo run took %d attempts, want 1", r.M, r.Attempts)
				}
				m := uint64(r.M)
				quad := m*(m-1)/2 + 3*m
				switch name {
				case "irtm":
					if r.TotalSteps != quad {
						t.Errorf("m=%d: irtm steps %d, want exactly %d", r.M, r.TotalSteps, quad)
					}
				case "dstm":
					// DSTM validates locator pointer + owner status per
					// entry: quadratic with a different constant.
					if r.TotalSteps < m*(m-1) {
						t.Errorf("m=%d: dstm steps %d below its m(m-1) validation floor", r.M, r.TotalSteps)
					}
				default:
					// Every ablation must be o(m²): allow a generous linear
					// envelope (the cheapest quadratic term at m=32 is 496).
					if r.TotalSteps > 8*m+8 {
						t.Errorf("m=%d: %s steps %d exceed the linear envelope %d", r.M, name, r.TotalSteps, 8*m+8)
					}
				}
			}
		})
	}
}

// TestE1AdversaryShapes pins the Lemma-2-adversary behaviour: the
// weak-DAP invisible-read TMs pay Θ(m²) total reader steps (irtm by
// validation, norec by revalidation, tl2 by abort-and-restart), while the
// TMs that violate an assumption stay linear (vrtm via visible reads, mvtm
// via multi-versioning).
func TestE1AdversaryShapes(t *testing.T) {
	for _, name := range []string{"irtm", "tl2", "norec", "vrtm", "mvtm", "dstm", "tml"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rows, err := exp.RunE1(name, e1Sizes, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				m := uint64(r.M)
				switch name {
				case "irtm":
					if r.Attempts != 1 {
						t.Errorf("m=%d: irtm aborted under a disjoint-object adversary (%d attempts)", r.M, r.Attempts)
					}
					if r.TotalSteps < m*(m-1)/2 {
						t.Errorf("m=%d: irtm steps %d below the Theorem 3 bound %d", r.M, r.TotalSteps, m*(m-1)/2)
					}
					if r.FreshReads != r.M {
						t.Errorf("m=%d: irtm returned %d fresh reads, want %d (Lemma 2)", r.M, r.FreshReads, r.M)
					}
				case "norec":
					if r.TotalSteps < m*(m-1)/2 {
						t.Errorf("m=%d: norec steps %d below quadratic revalidation %d", r.M, r.TotalSteps, m*(m-1)/2)
					}
				case "tl2":
					if r.Attempts < r.M/2 {
						t.Errorf("m=%d: tl2 committed in %d attempts; expected ~m abort-restarts", r.M, r.Attempts)
					}
					if r.TotalSteps < m*(m-1)/2 {
						t.Errorf("m=%d: tl2 total steps %d; restarts should still cost Ω(m²)", r.M, r.TotalSteps)
					}
				case "vrtm":
					if r.Attempts != 1 || r.TotalSteps > 8*m {
						t.Errorf("m=%d: vrtm attempts=%d steps=%d; visible reads must stay linear", r.M, r.Attempts, r.TotalSteps)
					}
				case "mvtm":
					if r.Attempts != 1 || r.TotalSteps > 12*m {
						t.Errorf("m=%d: mvtm attempts=%d steps=%d; snapshots must stay linear", r.M, r.Attempts, r.TotalSteps)
					}
				case "dstm":
					if r.Attempts != 1 {
						t.Errorf("m=%d: dstm aborted under a disjoint-object adversary (%d attempts)", r.M, r.Attempts)
					}
					if r.TotalSteps < m*(m-1) {
						t.Errorf("m=%d: dstm steps %d below its validation floor", r.M, r.TotalSteps)
					}
					if r.FreshReads != r.M {
						t.Errorf("m=%d: dstm returned %d fresh reads, want %d (weak DAP)", r.M, r.FreshReads, r.M)
					}
				case "tml":
					if r.Attempts < r.M/2 {
						t.Errorf("m=%d: tml committed in %d attempts; every adversary commit must abort the reader", r.M, r.Attempts)
					}
				}
			}
		})
	}
}

// TestE1RejectsBlockingAdversary ensures the harness refuses to hang on
// blocking TMs.
func TestE1RejectsBlockingAdversary(t *testing.T) {
	if _, err := exp.RunE1("sgltm", []int{4}, true); !errors.Is(err, exp.ErrBlockingTM) {
		t.Fatalf("err = %v, want ErrBlockingTM", err)
	}
	if _, err := exp.RunE2("sgltm", []int{4}, true); !errors.Is(err, exp.ErrBlockingTM) {
		t.Fatalf("E2 err = %v, want ErrBlockingTM", err)
	}
	// Solo runs are fine.
	if _, err := exp.RunE1("sgltm", []int{4}, false); err != nil {
		t.Fatalf("solo sgltm: %v", err)
	}
}

// TestE2SpaceShapes pins Theorem 3(2): the invisible-read weak-DAP TM
// touches ≥ m−1 distinct base objects in its last read + tryC, while TL2
// touches O(1).
func TestE2SpaceShapes(t *testing.T) {
	for _, adversary := range []bool{false, true} {
		rows, err := exp.RunE2("irtm", e1Sizes, adversary)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.DistinctObjs < r.Bound {
				t.Errorf("adversary=%v m=%d: irtm touched %d distinct base objects, below the m-1=%d bound",
					adversary, r.M, r.DistinctObjs, r.Bound)
			}
		}
	}
	rows, err := exp.RunE2("tl2", e1Sizes, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DistinctObjs > 4 {
			t.Errorf("m=%d: tl2 touched %d distinct objects; expected O(1)", r.M, r.DistinctObjs)
		}
	}
}

// TestE3MutexRMRShapes smoke-tests the RMR experiment: mutual exclusion
// holds, RMRs are counted, and the local-spin queue lock (MCS) beats the
// global-spin TAS lock under write-back CC.
func TestE3MutexRMRShapes(t *testing.T) {
	ns := []int{2, 4, 8}
	perAcq := map[string]float64{}
	for _, lock := range []string{"tas", "mcs", "lm:irtm"} {
		rows, err := exp.RunE3(lock, "cc-wb", ns, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Violations != 0 {
				t.Fatalf("%s n=%d: %d mutual-exclusion violations", lock, r.N, r.Violations)
			}
			if r.TotalRMRs == 0 {
				t.Fatalf("%s n=%d: no RMRs recorded", lock, r.N)
			}
		}
		perAcq[lock] = rows[len(rows)-1].PerAcq
	}
	if perAcq["mcs"] >= perAcq["tas"] {
		t.Errorf("MCS per-acquisition RMRs (%.2f) should undercut TAS (%.2f) at n=8 under CC-WB",
			perAcq["mcs"], perAcq["tas"])
	}
}

// TestE3DSMLocalSpin verifies the DSM story: MCS (local-spin qnode) incurs
// bounded RMRs per acquisition while CLH (spins on the predecessor's
// remote node) does not stay O(1) as n grows.
func TestE3DSMLocalSpin(t *testing.T) {
	mcs, err := exp.RunE3("mcs", "dsm", []int{8}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mcs[0].PerAcq > 16 {
		t.Errorf("MCS per-acquisition DSM RMRs %.2f; expected O(1) local spin", mcs[0].PerAcq)
	}
	clh, err := exp.RunE3("clh", "dsm", []int{8}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if clh[0].PerAcq <= mcs[0].PerAcq {
		t.Errorf("CLH DSM per-acquisition %.2f should exceed MCS %.2f (remote spinning)", clh[0].PerAcq, mcs[0].PerAcq)
	}
}

// TestE4HandoffOverheadConstant verifies Theorem 7's measured form: the
// hand-off RMRs of L(M) per acquisition stay bounded as n grows, in every
// cache model.
func TestE4HandoffOverheadConstant(t *testing.T) {
	for _, model := range []string{"cc-wt", "cc-wb", "dsm"} {
		rows, err := exp.RunE4("lm:irtm", model, []int{2, 4, 8, 16}, 3, 11)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.HandoffPerAcq > 16 {
				t.Errorf("%s n=%d: hand-off RMRs per acquisition %.2f; Theorem 7 promises O(1)",
					model, r.N, r.HandoffPerAcq)
			}
		}
	}
}

// TestE6Tightness verifies the exact closed form of the matching upper
// bound.
func TestE6Tightness(t *testing.T) {
	rows, err := exp.RunE6([]int{2, 4, 8, 16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Measured != r.Formula {
			t.Errorf("m=%d: measured %d ≠ formula %d", r.M, r.Measured, r.Formula)
		}
	}
}

// TestE7ProgressChecks runs the randomized progress experiment on every TM
// and checks each TM's declared properties against the recorded history.
func TestE7ProgressChecks(t *testing.T) {
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.RunE7(name, exp.E7Config{
				Procs: 3, TxnsPerProc: 3, Objects: 3, OpsPerTxn: 3,
				WriteRatio: 0.5, Seed: 99, CheckOpacity: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if row.Committed == 0 {
				t.Error("no transaction committed")
			}
			if !row.StrictSerializable {
				t.Error("history not strictly serializable")
			}
			props := mustProps(t, name)
			if props.Opaque && !row.Opaque {
				t.Error("TM claims opacity but the history is not opaque")
			}
			if props.Progressive && row.ProgressViolations != 0 {
				t.Errorf("TM claims progressiveness; %d violations", row.ProgressViolations)
			}
			if props.StronglyProgressive && row.StrongViolations != 0 {
				t.Errorf("TM claims strong progressiveness; %d violations", row.StrongViolations)
			}
		})
	}
}

func mustProps(t *testing.T, name string) (p struct {
	Opaque, Progressive, StronglyProgressive bool
}) {
	t.Helper()
	tmi, err := tmreg.New(name, memNew(), 1)
	if err != nil {
		t.Fatal(err)
	}
	pr := tmi.Props()
	p.Opaque, p.Progressive, p.StronglyProgressive = pr.Opaque, pr.Progressive, pr.StronglyProgressive
	return p
}

// TestTableRendering covers the table printer.
func TestTableRendering(t *testing.T) {
	tb := exp.Table{Title: "demo", Header: []string{"a", "long-header"}}
	tb.Add(1, 2.5)
	tb.Add("xyz", "w")
	var sb strings.Builder
	tb.Print(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "long-header", "2.50", "xyz"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestNewLockUnknown exercises registry error paths.
func TestNewLockUnknown(t *testing.T) {
	if _, err := exp.NewLock("nope", memNew()); err == nil {
		t.Error("unknown lock accepted")
	}
	if _, err := exp.NewLock("lm:nope", memNew()); err == nil {
		t.Error("unknown lm substrate accepted")
	}
	if _, err := exp.RunE3("tas", "nope", []int{2}, 1, 1); err == nil {
		t.Error("unknown cache model accepted")
	}
	if _, err := exp.RunE4("tas", "cc-wt", []int{2}, 1, 1); err == nil {
		t.Error("E4 accepted a non-lm lock")
	}
}

// TestE5Sweep verifies the shape of the contention-sweep ablation: every
// process completes its quota; read-only workloads abort nowhere except
// under TML-style spurious aborts; the blocking TM aborts never; abort
// counts grow with the write ratio for optimistic TMs.
func TestE5Sweep(t *testing.T) {
	cfg := exp.E5Config{
		Procs: 4, TxnsPerProc: 5, Objects: 8, OpsPerTxn: 3,
		WriteRatios: []float64{0.0, 0.5}, Seed: 7,
	}
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			rows, err := exp.RunE5(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.Commits != cfg.Procs*cfg.TxnsPerProc {
					t.Fatalf("wr=%.1f: %d commits, want %d", r.WriteRatio, r.Commits, cfg.Procs*cfg.TxnsPerProc)
				}
			}
			if rows[0].Aborts != 0 {
				t.Errorf("read-only workload aborted %d times on %s", rows[0].Aborts, name)
			}
			if name == "sgltm" && rows[1].Aborts != 0 {
				t.Errorf("blocking TM aborted %d times", rows[1].Aborts)
			}
		})
	}
}

// TestE3NewBaselines covers the register-only locks in the RMR experiment:
// bakery is Θ(n) per acquisition while the tournament tree is Θ(log n) in
// CC — their ratio must grow with n.
func TestE3NewBaselines(t *testing.T) {
	ns := []int{4, 16}
	get := func(lock string) []float64 {
		rows, err := exp.RunE3(lock, "cc-wb", ns, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(rows))
		for i, r := range rows {
			if r.Violations != 0 {
				t.Fatalf("%s n=%d: mutual exclusion violated", lock, r.N)
			}
			out[i] = r.PerAcq
		}
		return out
	}
	bak := get("bakery")
	tour := get("tournament")
	if bak[1] <= tour[1] {
		t.Errorf("bakery per-acq RMRs (%.2f) should exceed tournament (%.2f) at n=16", bak[1], tour[1])
	}
	ratioBak := bak[1] / bak[0]
	ratioTour := tour[1] / tour[0]
	if ratioBak <= ratioTour {
		t.Errorf("bakery should scale worse than tournament: growth %.2f vs %.2f", ratioBak, ratioTour)
	}
}

// TestClassifyMatchesDeclaredProps runs the measured-classification probes
// for every TM and requires agreement with the declared Props on the
// columns where a measured "false" is a definitive counterexample.
func TestClassifyMatchesDeclaredProps(t *testing.T) {
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.Classify(name, 6)
			if err != nil {
				t.Fatal(err)
			}
			d := row.Declared
			if d.WeakDAP && !row.WeakDAP {
				t.Error("declares weak DAP, measured counterexample")
			}
			if !d.WeakDAP && row.WeakDAP {
				t.Error("declares ¬weak-DAP but no counterexample was measured by the probe")
			}
			if d.WeakInvisibleReads != row.WeakInvisibleReads {
				t.Errorf("weak invisible reads: declared %v, measured %v", d.WeakInvisibleReads, row.WeakInvisibleReads)
			}
			if d.InvisibleReads && !row.InvisibleReads {
				t.Error("declares invisible reads, measured counterexample")
			}
			if d.Progressive && !row.Progressive {
				t.Error("declares progressiveness, measured counterexample")
			}
			if d.StronglyProgressive && !row.StrongSingleItem {
				t.Error("declares strong progressiveness, measured counterexample")
			}
			if d.Opaque && !row.Opaque {
				t.Error("declares opacity, measured counterexample")
			}
		})
	}
}

// TestE5BackoffTamesAggressiveCM verifies the contention-management
// ablation: exponential backoff collapses dstm's mutual-abort storms (the
// known livelock-proneness of aggressive obstruction-free policies) by at
// least an order of magnitude on the contended sweep point.
func TestE5BackoffTamesAggressiveCM(t *testing.T) {
	base := exp.E5Config{
		Procs: 6, TxnsPerProc: 10, Objects: 8, OpsPerTxn: 3,
		WriteRatios: []float64{0.5}, Seed: 13,
	}
	noBackoff, err := exp.RunE5("dstm", base)
	if err != nil {
		t.Fatal(err)
	}
	withCfg := base
	withCfg.Backoff = true
	withBackoff, err := exp.RunE5("dstm", withCfg)
	if err != nil {
		t.Fatal(err)
	}
	a0, a1 := noBackoff[0].Aborts, withBackoff[0].Aborts
	if a1*4 > a0 {
		t.Errorf("backoff reduced dstm aborts only from %d to %d; expected ≥4×", a0, a1)
	}
	t.Logf("dstm aborts at wr=0.5: %d without backoff, %d with", a0, a1)
}

// TestFormatHistory smoke-tests the timeline renderer on a recorded
// conflict: it must show the operations, the responses, and the
// nontrivial-access markers.
func TestFormatHistory(t *testing.T) {
	mem := memory.New(2, nil)
	rec := tm.Record(tmreg.MustNew("irtm", mem, 2))
	p0, p1 := mem.Proc(0), mem.Proc(1)
	tx := rec.Begin(p0)
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := tm.Atomically(rec, p1, func(w tm.Txn) error { return w.Write(0, 9) }); err != nil {
		t.Fatal(err)
	}
	_, _ = tx.Read(1) // aborts: version change invalidates the snapshot
	tx.Abort()

	var sb strings.Builder
	exp.FormatHistory(&sb, mem, rec.History())
	out := sb.String()
	for _, want := range []string{"tryC -> COMMIT", "read(X0) -> 0", "irtm.meta[0]", ":w", "read(X1) -> ABORT"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}
