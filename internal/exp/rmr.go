package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/memory"
	"repro/internal/mutex"
	"repro/internal/sched"
	"repro/internal/tmreg"
)

// LockNames returns the mutex algorithms available to the RMR experiments:
// the classic baselines plus L(M) over every strongly progressive TM.
func LockNames() []string {
	names := []string{"tas", "ttas", "ticket", "anderson", "mcs", "clh", "bakery", "tournament", "llsc"}
	for _, t := range []string{"irtm", "norec", "sgltm"} {
		names = append(names, "lm:"+t)
	}
	sort.Strings(names)
	return names
}

// NewLock builds the named mutual-exclusion object over mem. Names are
// those of LockNames; "lm:<tm>" builds Algorithm 1 over the named TM with a
// single t-object.
func NewLock(name string, mem *memory.Memory) (mutex.Lock, error) {
	if tmName, ok := strings.CutPrefix(name, "lm:"); ok {
		tmi, err := tmreg.New(tmName, mem, 1)
		if err != nil {
			return nil, err
		}
		return mutex.NewLM(mem, tmi), nil
	}
	switch name {
	case "tas":
		return mutex.NewTAS(mem), nil
	case "ttas":
		return mutex.NewTTAS(mem), nil
	case "ticket":
		return mutex.NewTicket(mem), nil
	case "anderson":
		return mutex.NewAnderson(mem), nil
	case "mcs":
		return mutex.NewMCS(mem), nil
	case "clh":
		return mutex.NewCLH(mem), nil
	case "bakery":
		return mutex.NewBakery(mem), nil
	case "tournament":
		return mutex.NewTournament(mem), nil
	case "llsc":
		return mutex.NewLLSC(mem), nil
	}
	return nil, fmt.Errorf("exp: unknown lock %q (known: %v)", name, LockNames())
}

// E3Row is one measurement of experiment E3 (Theorem 9): total RMRs when n
// processes each acquire the critical section k times, under one cache
// model. NLogN is the reference series n·log2(n)·k the lower bound is
// stated against.
type E3Row struct {
	Lock       string
	Model      string
	N, K       int
	TotalRMRs  uint64
	PerAcq     float64
	TotalSteps uint64
	NLogN      float64
	Violations int // mutual-exclusion violations observed (must be 0)
}

// RunE3 runs the contended-acquisition workload for each n in ns under the
// named cache model and seeded random scheduling.
func RunE3(lockName, modelName string, ns []int, k int, seed int64) ([]E3Row, error) {
	model := memory.ModelByName(modelName)
	if model == nil {
		return nil, fmt.Errorf("exp: unknown cache model %q", modelName)
	}
	var rows []E3Row
	for _, n := range ns {
		res, err := runMutexWorkload(lockName, model, n, k, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E3Row{
			Lock: lockName, Model: modelName, N: n, K: k,
			TotalRMRs:  res.totalRMRs,
			PerAcq:     float64(res.totalRMRs) / float64(n*k),
			TotalSteps: res.totalSteps,
			NLogN:      float64(n*k) * math.Log2(float64(maxInt(n, 2))),
			Violations: res.violations,
		})
	}
	return rows, nil
}

// E4Row is one measurement of experiment E4 (Theorem 7): how L(M)'s RMR
// cost splits between the substrate TM's t-operations and the Entry/Exit
// hand-off code. The theorem claims the hand-off part is O(1) per
// acquisition.
type E4Row struct {
	Lock          string
	Model         string
	N, K          int
	TMRMRs        uint64  // RMRs inside M
	HandoffRMRs   uint64  // RMRs outside M (Entry/Exit bookkeeping + spin)
	HandoffPerAcq float64 // the quantity Theorem 7 bounds by O(1)
}

// RunE4 measures the TM-vs-hand-off RMR split of an lm:* lock.
func RunE4(lockName, modelName string, ns []int, k int, seed int64) ([]E4Row, error) {
	if !strings.HasPrefix(lockName, "lm:") {
		return nil, fmt.Errorf("exp: E4 applies to lm:* locks, got %q", lockName)
	}
	model := memory.ModelByName(modelName)
	if model == nil {
		return nil, fmt.Errorf("exp: unknown cache model %q", modelName)
	}
	var rows []E4Row
	for _, n := range ns {
		res, err := runMutexWorkload(lockName, model, n, k, seed)
		if err != nil {
			return nil, err
		}
		if res.violations != 0 {
			return nil, fmt.Errorf("exp: %s violated mutual exclusion %d times", lockName, res.violations)
		}
		lm := res.lock.(*mutex.LM)
		var tmRMRs uint64
		for i := 0; i < n; i++ {
			tmRMRs += lm.TMRMRs(i)
		}
		rows = append(rows, E4Row{
			Lock: lockName, Model: modelName, N: n, K: k,
			TMRMRs:        tmRMRs,
			HandoffRMRs:   res.totalRMRs - tmRMRs,
			HandoffPerAcq: float64(res.totalRMRs-tmRMRs) / float64(n*k),
		})
	}
	return rows, nil
}

type mutexResult struct {
	lock       mutex.Lock
	totalRMRs  uint64
	totalSteps uint64
	violations int
}

// runMutexWorkload has every one of n processes acquire and release the
// lock k times under seeded random scheduling, checking mutual exclusion
// inside the critical section (the scratch-object accesses inside the CS
// give the scheduler interleaving points that would expose violations).
func runMutexWorkload(lockName string, model memory.Model, n, k int, seed int64) (mutexResult, error) {
	mem := memory.New(n, model)
	lock, err := NewLock(lockName, mem)
	if err != nil {
		return mutexResult{}, err
	}
	scratch := mem.Alloc("cs.scratch")
	inCS := 0
	violations := 0
	s := sched.New(mem)
	for i := 0; i < n; i++ {
		s.Go(i, func(p *memory.Proc) {
			for j := 0; j < k; j++ {
				lock.Enter(p)
				inCS++
				if inCS > 1 {
					violations++
				}
				p.Write(scratch, uint64(p.ID())) // interleaving point inside CS
				if got := p.Read(scratch); got != uint64(p.ID()) {
					violations++ // another process ran inside our CS
				}
				inCS--
				lock.Exit(p)
			}
		})
	}
	if err := s.Run(sched.NewRandom(seed)); err != nil {
		return mutexResult{}, fmt.Errorf("exp: %s n=%d: %w", lockName, n, err)
	}
	return mutexResult{
		lock:       lock,
		totalRMRs:  mem.TotalRMRs(),
		totalSteps: mem.TotalSteps(),
		violations: violations,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
