package exp_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/tmreg"
)

// TestE10AllTMs runs the read-mostly serving scenario on every registered
// TM: every process completes its quota, and the RO hint is reported
// applied exactly for the TL2 family (the only TMs with a zero-validation
// read-only mode).
func TestE10AllTMs(t *testing.T) {
	cfg := exp.E10Config{
		Procs: 4, TxnsPerProc: 4, Objects: 16, GetKeys: 3, ScanLen: 6,
		ZipfS: 1.1, WriteRatio: 0.25, ScanRatio: 0.25, DeclareRO: true, Seed: 7,
	}
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.RunE10(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if row.Commits != cfg.Procs*cfg.TxnsPerProc {
				t.Errorf("%d commits, want %d", row.Commits, cfg.Procs*cfg.TxnsPerProc)
			}
			if row.StepsPerTxn <= 0 {
				t.Error("no steps recorded")
			}
			if wantRO := name == "tl2"; row.ROHint != wantRO {
				t.Errorf("ROHint = %v, want %v", row.ROHint, wantRO)
			}
			if name == "sgltm" && row.Aborts != 0 {
				t.Errorf("blocking TM aborted %d times", row.Aborts)
			}
		})
	}
}

// TestE10ROAblation sweeps the TL2 clock variants with and without the
// read-only declaration. Both configurations must complete the quota —
// including under GV6, where the RO mode's only extension is the
// empty-read-set re-begin and sequential progress rides on helpClock.
func TestE10ROAblation(t *testing.T) {
	cfg := exp.E10Config{
		Procs: 4, TxnsPerProc: 4, Objects: 16, GetKeys: 3, ScanLen: 6,
		ZipfS: 1.1, WriteRatio: 0.25, ScanRatio: 0.25, Seed: 11,
	}
	for _, name := range tmreg.ClockVariants() {
		for _, declare := range []bool{false, true} {
			c := cfg
			c.DeclareRO = declare
			row, err := exp.RunE10(name, c)
			if err != nil {
				t.Fatalf("%s ro=%v: %v", name, declare, err)
			}
			if row.Commits != cfg.Procs*cfg.TxnsPerProc {
				t.Errorf("%s ro=%v: %d commits, want %d", name, declare, row.Commits, cfg.Procs*cfg.TxnsPerProc)
			}
			if row.ROHint != declare {
				t.Errorf("%s: ROHint = %v, want %v", name, row.ROHint, declare)
			}
		}
	}
}
