package exp_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/tmreg"
)

// TestE12AllTMs runs the hostile-tenant scenario, metered, on every
// registered TM: the victims always complete their quota, and — because
// the step grant is below a full scan's unavoidable step count — every
// hostile scan is refused (budget-aborted), none commits.
func TestE12AllTMs(t *testing.T) {
	cfg := exp.E12Config{
		Procs: 4, Hostiles: 1, TxnsPerProc: 4, HostileTxns: 4,
		Objects: 16, StepBudget: 8, Seed: 7,
	}
	victims := (cfg.Procs - cfg.Hostiles) * cfg.TxnsPerProc
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.RunE12(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !row.Metered {
				t.Error("row not marked metered")
			}
			if row.VictimCommits != victims {
				t.Errorf("%d victim commits, want %d", row.VictimCommits, victims)
			}
			if row.HostileBudgetAborts != cfg.Hostiles*cfg.HostileTxns {
				t.Errorf("%d hostile scans refused, want all %d (budget %d < scan length %d)",
					row.HostileBudgetAborts, cfg.Hostiles*cfg.HostileTxns, cfg.StepBudget, cfg.Objects)
			}
			if row.HostileCommits != 0 {
				t.Errorf("%d hostile scans committed under an insufficient grant", row.HostileCommits)
			}
			if row.VictimStepsPerTxn <= 0 {
				t.Errorf("victim steps not recorded: %+v", row)
			}
		})
	}
}

// TestE12UnmeteredHostilesComplete: with no budget the hostile tenants
// get everything they ask for — every scan eventually commits (the
// quota-retry discipline of E5/E9–E11) and nothing is refused.
func TestE12UnmeteredHostilesComplete(t *testing.T) {
	cfg := exp.E12Config{
		Procs: 4, Hostiles: 1, TxnsPerProc: 4, HostileTxns: 4,
		Objects: 16, StepBudget: 0, Seed: 7,
	}
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.RunE12(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if row.Metered {
				t.Error("row marked metered with StepBudget 0")
			}
			if row.HostileCommits != cfg.Hostiles*cfg.HostileTxns {
				t.Errorf("%d hostile commits, want %d", row.HostileCommits, cfg.Hostiles*cfg.HostileTxns)
			}
			if row.HostileBudgetAborts != 0 {
				t.Errorf("%d refusals with no budget", row.HostileBudgetAborts)
			}
			if row.VictimCommits != (cfg.Procs-cfg.Hostiles)*cfg.TxnsPerProc {
				t.Errorf("victim commits %d", row.VictimCommits)
			}
		})
	}
}

// TestE12MeteringShedsHostileLoad: metering must strictly reduce the
// steps the hostile tenants manage to burn — the resource the budget
// exists to cap. (Victim step cost is reported in the table but not
// asserted here: on optimistic TMs invisible-read scans cost victims
// nothing directly, so the victim delta is a property of the blocking
// rows, not a universal one.)
func TestE12MeteringShedsHostileLoad(t *testing.T) {
	base := exp.E12Config{
		Procs: 4, Hostiles: 2, TxnsPerProc: 8, HostileTxns: 8,
		Objects: 24, Seed: 13,
	}
	for _, name := range []string{"tl2", "sgltm"} {
		unmetered := base
		metered := base
		metered.StepBudget = 8
		free, err := exp.RunE12(name, unmetered)
		if err != nil {
			t.Fatal(err)
		}
		capped, err := exp.RunE12(name, metered)
		if err != nil {
			t.Fatal(err)
		}
		if capped.HostileSteps >= free.HostileSteps {
			t.Errorf("%s: hostile steps %d metered >= %d unmetered", name, capped.HostileSteps, free.HostileSteps)
		}
	}
}
