package exp

// E12 is the hostile-tenant scenario: a pool of well-behaved point
// writers (the victims) shares a TM with tenants that issue unbounded
// full-table scans. Without metering, a hostile scan is free to occupy
// the TM for as many steps as the table is long — and on a blocking TM
// it does so while holding the global lock, starving every victim.
// Metering models the library's work budgets at the harness level: a
// hostile attempt is charged per simulated step and refused
// (budget-aborted, not retried) once it exceeds its grant, which is
// exactly the contract repro/stm's BudgetPolicy enforces natively
// (ErrOutOfBudget). The interesting columns are the victims' cost per
// committed transaction and the hostiles' outcome split: with a budget
// below the scan length, every hostile scan is refused and the victims'
// step bill collapses back toward the no-scanner baseline. The native
// counterpart is BenchmarkE12HostileTenant (repro/stm and
// repro/stm/mvstm under a real BudgetPolicy and admission controller).

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
	"repro/stm/budget"
)

// E12Row is one TM's hostile-tenant measurement.
type E12Row struct {
	TM       string
	Metered  bool // a step budget was enforced on hostile tenants
	Procs    int
	Hostiles int
	// Victim columns: commits is fixed by the config (every victim retries
	// until it commits); aborts and steps/txn measure what the hostile
	// tenants cost them.
	VictimCommits     int
	VictimAborts      int
	VictimStepsPerTxn float64
	// Hostile columns: unmetered hostiles retry scans to completion;
	// metered hostiles get one attempt per scan and are refused
	// (BudgetAborts) when the grant runs out mid-scan.
	HostileCommits      int
	HostileAborts       int
	HostileBudgetAborts int
	HostileSteps        uint64
	Space               int
}

// E12Config parameterizes the hostile-tenant scenario.
type E12Config struct {
	Procs       int // total processes; the first Hostiles of them are hostile
	Hostiles    int
	TxnsPerProc int    // committed point RMWs each victim must complete
	HostileTxns int    // scans each hostile tenant issues
	Objects     int    // table size; a hostile scan reads all of it
	StepBudget  uint64 // per-attempt step grant for hostile scans; 0 = unmetered
	Seed        int64
}

// DefaultE12Config is the configuration used by tmbench and the tests:
// the budget is set to half a scan's unavoidable step count, so under
// metering every hostile scan is refused partway — the hostile tenants
// are priced out while the victims run to completion.
func DefaultE12Config() E12Config {
	return E12Config{
		Procs:       8,
		Hostiles:    2,
		TxnsPerProc: 16,
		HostileTxns: 8,
		Objects:     32,
		StepBudget:  16,
		Seed:        42,
	}
}

// RunE12 runs the hostile-tenant scenario for one TM. Victims retry each
// point RMW until it commits, so VictimCommits is fixed by the config.
// Hostile behavior depends on metering: with StepBudget == 0 each scan
// retries until it commits (the tenant gets everything it asks for);
// with StepBudget > 0 each scan gets a single attempt charged per
// simulated step, is aborted the moment the grant is exceeded, and is
// not retried — the admission-control half of the native design, where a
// refused tenant's retry would be throttled rather than replayed for
// free.
func RunE12(name string, cfg E12Config) (E12Row, error) {
	if cfg.Hostiles > cfg.Procs {
		return E12Row{}, fmt.Errorf("exp: e12: Hostiles %d > Procs %d", cfg.Hostiles, cfg.Procs)
	}
	mem := memory.New(cfg.Procs, nil)
	tmi, err := tmreg.New(name, mem, cfg.Objects)
	if err != nil {
		return E12Row{}, err
	}
	var (
		victimCommits, victimAborts               int
		hostileCommits, hostileAborts, hostileRef int
		victimSteps                               uint64
	)
	s := sched.New(mem)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		hostile := i < cfg.Hostiles
		rng := newSplitMix(uint64(cfg.Seed)*69621 + uint64(i+1))
		s.Go(i, func(p *memory.Proc) {
			if hostile {
				for n := 0; n < cfg.HostileTxns; n++ {
					start := int(rng.next() % uint64(cfg.Objects))
					scan := func(tx tm.Txn) error {
						begun := p.Steps()
						var sum uint64
						for j := 0; j < cfg.Objects; j++ {
							v, err := tx.Read((start + j) % cfg.Objects)
							if err != nil {
								return err
							}
							sum += v
							if cfg.StepBudget > 0 && p.Steps()-begun > cfg.StepBudget {
								return budget.ErrOutOfBudget
							}
						}
						_ = sum
						return nil
					}
					for {
						committed, err := tm.Once(tmi, p, scan)
						if err == budget.ErrOutOfBudget {
							hostileRef++ // refused: charged out, not retried
							break
						}
						if err != nil {
							panic(err)
						}
						if committed {
							hostileCommits++
							break
						}
						hostileAborts++
					}
				}
				return
			}
			for n := 0; n < cfg.TxnsPerProc; n++ {
				x := int(rng.next() % uint64(cfg.Objects))
				delta := rng.next() % 100
				for {
					committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
						v, err := tx.Read(x)
						if err != nil {
							return err
						}
						return tx.Write(x, v+delta)
					})
					if err != nil {
						panic(err)
					}
					if committed {
						victimCommits++
						break
					}
					victimAborts++
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
		return E12Row{}, fmt.Errorf("exp: e12 %s: %w", name, err)
	}
	var hostileSteps uint64
	for i := 0; i < cfg.Procs; i++ {
		if i < cfg.Hostiles {
			hostileSteps += mem.Proc(i).Steps()
		} else {
			victimSteps += mem.Proc(i).Steps()
		}
	}
	row := E12Row{
		TM: name, Metered: cfg.StepBudget > 0,
		Procs: cfg.Procs, Hostiles: cfg.Hostiles,
		VictimCommits: victimCommits, VictimAborts: victimAborts,
		HostileCommits: hostileCommits, HostileAborts: hostileAborts,
		HostileBudgetAborts: hostileRef, HostileSteps: hostileSteps,
		Space: mem.NumObjs(),
	}
	if mv, ok := tmi.(interface {
		LiveVersions() int
		Versions() int
	}); ok {
		row.Space = mem.NumObjs() - 3*mv.Versions() + 3*mv.LiveVersions()
	}
	if victimCommits > 0 {
		row.VictimStepsPerTxn = float64(victimSteps) / float64(victimCommits)
	}
	return row, nil
}
