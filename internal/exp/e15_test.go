package exp_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/tmreg"
)

// TestE15AllTMs runs the pipeline scenario on every registered TM.
// RunE15 cross-checks flow conservation internally (every produced item
// consumed exactly once, by count and checksum), so the test asserts the
// row's shape: full quota through the pipe, and real backpressure and
// starvation polling given a queue smaller than the flow.
func TestE15AllTMs(t *testing.T) {
	cfg := exp.E15Config{
		Producers: 3, Consumers: 3, ItemsPerProducer: 8, QueueCap: 2, Seed: 7,
	}
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			row, err := exp.RunE15(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := cfg.Producers * cfg.ItemsPerProducer
			if row.Produced != want || row.Consumed != want {
				t.Errorf("produced %d, consumed %d, want %d each", row.Produced, row.Consumed, want)
			}
			// Polling counts depend on each TM's serialization order (a
			// coarse-lock TM can happen to keep the queue non-empty for
			// every consumer probe), so backpressure is asserted only in
			// the targeted test below, not per TM here.
			if row.StepsPerItem <= 0 {
				t.Errorf("steps not recorded: %+v", row)
			}
		})
	}
}

// TestE15BackpressureNeedsSmallQueue: with the queue as large as the
// whole flow, producers never block; with a tiny queue they must.
func TestE15BackpressureNeedsSmallQueue(t *testing.T) {
	small := exp.E15Config{Producers: 3, Consumers: 1, ItemsPerProducer: 8, QueueCap: 1, Seed: 13}
	big := small
	big.QueueCap = small.Producers * small.ItemsPerProducer
	rs, err := exp.RunE15("tl2", small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := exp.RunE15("tl2", big)
	if err != nil {
		t.Fatal(err)
	}
	if rs.FullPolls == 0 {
		t.Errorf("no full polls with a 1-slot queue: %+v", rs)
	}
	if rb.FullPolls != 0 {
		t.Errorf("%d full polls with an unbounded-for-this-flow queue", rb.FullPolls)
	}
}
