package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal fixed-width table renderer for experiment output; the
// tmbench CLI and EXPERIMENTS.md use the same rows the benchmarks report.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row, stringifying each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print renders the table to w.
func (t *Table) Print(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
