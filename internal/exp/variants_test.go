package exp_test

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/tmreg"
)

// TestE1ExtensionConvertsAbortsToValidation pins the tentpole trade-off on
// the Lemma-2 adversary: plain TL2 abort-and-restarts ~m times (stale
// clock), while TL2 with timestamp extension commits in ONE attempt — the
// stale-clock aborts become incremental revalidations, and the reader pays
// exactly the Theorem-3 shape (Ω(m²) total steps) that the paper proves
// unavoidable for invisible-read TMs that keep this progress.
func TestE1ExtensionConvertsAbortsToValidation(t *testing.T) {
	sizes := []int{4, 8, 16, 32}
	rows, err := exp.RunE1("tl2:ext", sizes, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		m := uint64(r.M)
		if r.Attempts != 1 {
			t.Errorf("m=%d: tl2:ext took %d attempts under the adversary, want 1 (extension, not abort)", r.M, r.Attempts)
		}
		if r.FreshReads != r.M {
			t.Errorf("m=%d: %d fresh reads, want %d (Lemma 2 forces the new values)", r.M, r.FreshReads, r.M)
		}
		if r.TotalSteps < m*(m-1)/2 {
			t.Errorf("m=%d: tl2:ext steps %d below the Theorem-3 revalidation floor %d", r.M, r.TotalSteps, m*(m-1)/2)
		}
	}
}

// TestE5ClockVariants runs the abort-ratio sweep over the clock-strategy
// axis: every variant completes the quota, and on the read-only column no
// variant aborts at all (extension or not, there is nothing to conflict
// with).
func TestE5ClockVariants(t *testing.T) {
	cfg := exp.E5Config{
		Procs: 4, TxnsPerProc: 5, Objects: 8, OpsPerTxn: 3,
		WriteRatios: []float64{0.0, 0.5}, Seed: 7,
	}
	for _, name := range tmreg.ClockVariants() {
		name := name
		t.Run(name, func(t *testing.T) {
			rows, err := exp.RunE5(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.Commits != cfg.Procs*cfg.TxnsPerProc {
					t.Fatalf("wr=%.1f: %d commits, want %d", r.WriteRatio, r.Commits, cfg.Procs*cfg.TxnsPerProc)
				}
			}
			if rows[0].Aborts != 0 {
				t.Errorf("read-only workload aborted %d times on %s", rows[0].Aborts, name)
			}
		})
	}
}
