package exp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// E10 is the read-mostly serving scenario: the workload shape of a
// production read-path (a cache/index tier answering point lookups and
// small ordered scans) with a small writer pool churning underneath. It is
// the experiment the read-only fast path exists for — the paper's
// progressive-TM cost bounds are dominated by what readers pay, and a
// serving tier is almost all readers:
//
//   - Hot-key gets: most transactions read a handful of Zipf-distributed
//     keys (a few hot keys absorb most traffic, the classic serving skew).
//   - Ordered scans: a minority of read transactions scan a contiguous
//     window of ScanLen t-objects (the simulator's stand-in for an ordered
//     Range over stm.OrderedMap).
//   - Writers: a WriteRatio fraction do a Zipf-keyed point
//     read-modify-write, so the hot keys the readers love are exactly the
//     ones that move.
//
// With DeclareRO set, read transactions are declared read-only via
// tm.ReadOnlyHinter, so TMs with a zero-validation RO mode (TL2 and its
// clock variants) run them with no read-set logging and extension
// restricted to the empty-read-set re-begin. The ablation against the
// undeclared rows isolates what the RO mode trades: under tl2:ext a
// mid-scan commit costs an O(|read set|) revalidation, under RO mode it
// costs an abort and a replay. The native counterparts (BenchmarkE10* at
// the repository root, BenchmarkROFastPath in stm) measure the same shape
// for wall-clock time and allocations, where the RO path's missing
// read-set bookkeeping actually shows up.
type E10Row struct {
	TM          string
	ROHint      bool // read transactions were declared read-only (and the TM applied it)
	Procs       int
	Commits     int
	Aborts      int
	AbortRatio  float64
	TotalSteps  uint64
	StepsPerTxn float64
}

// E10Config parameterizes the read-mostly serving scenario.
type E10Config struct {
	Procs       int
	TxnsPerProc int     // committed transactions each process must complete
	Objects     int     // t-objects (keys)
	GetKeys     int     // keys read by a hot-key get transaction
	ScanLen     int     // contiguous objects per ordered scan
	ZipfS       float64 // Zipf skew of the hot-key distribution (> 1)
	WriteRatio  float64 // fraction of transactions that are point RMWs
	ScanRatio   float64 // fraction of *read* transactions that are scans
	DeclareRO   bool    // declare read transactions via tm.ReadOnlyHinter
	Seed        int64
}

// DefaultE10Config is the configuration used by benchmarks and tmbench.
func DefaultE10Config() E10Config {
	return E10Config{
		Procs:       8,
		TxnsPerProc: 12,
		Objects:     32,
		GetKeys:     3,
		ScanLen:     8,
		ZipfS:       1.1,
		WriteRatio:  0.1,
		ScanRatio:   0.25,
		DeclareRO:   true,
		Seed:        42,
	}
}

// zipfTable is a precomputed Zipf CDF over [0, n) for inverse-transform
// sampling with the harness's deterministic splitMix rng.
type zipfTable []float64

func newZipfTable(n int, s float64) zipfTable {
	cdf := make(zipfTable, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// sample draws a Zipf-distributed index from rng by inverse transform.
func (z zipfTable) sample(rng *splitMix) int {
	u := float64(rng.next()>>11) / (1 << 53)
	return min(sort.SearchFloat64s(z, u), len(z)-1)
}

// RunE10 runs the read-mostly serving scenario for one TM. As in E5/E9,
// every process retries each transaction until it commits, so Commits is
// fixed by the config and Aborts measures wasted attempts. The returned
// row's ROHint reports whether the read-only declaration was both
// requested and actually applied by the TM.
func RunE10(name string, cfg E10Config) (E10Row, error) {
	mem := memory.New(cfg.Procs, nil)
	tmi, err := tmreg.New(name, mem, cfg.Objects)
	if err != nil {
		return E10Row{}, err
	}
	zipf := newZipfTable(cfg.Objects, cfg.ZipfS)
	commits, aborts := 0, 0
	hintApplied := false
	s := sched.New(mem)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		rng := newSplitMix(uint64(cfg.Seed)*69621 + uint64(i+1))
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < cfg.TxnsPerProc; n++ {
				// Pre-draw the transaction so retries replay it exactly.
				body, readOnly := drawE10Txn(cfg, rng, zipf)
				for {
					committed, err := tm.Once(tmi, p, func(tx tm.Txn) error {
						if readOnly && cfg.DeclareRO && tm.DeclareReadOnly(tx) {
							hintApplied = true
						}
						return body(tx)
					})
					if err != nil {
						panic(err)
					}
					if committed {
						commits++
						break
					}
					aborts++
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(cfg.Seed)); err != nil {
		return E10Row{}, fmt.Errorf("exp: e10 %s: %w", name, err)
	}
	row := E10Row{
		TM: name, ROHint: hintApplied, Procs: cfg.Procs,
		Commits: commits, Aborts: aborts,
		TotalSteps: mem.TotalSteps(),
	}
	if commits+aborts > 0 {
		row.AbortRatio = float64(aborts) / float64(commits+aborts)
	}
	if commits > 0 {
		row.StepsPerTxn = float64(mem.TotalSteps()) / float64(commits)
	}
	return row, nil
}

// drawE10Txn draws one serving transaction from rng: a Zipf point RMW
// (writer pool), an ordered scan, or a hot-key multi-get. The returned
// closure touches only pre-drawn indices, so re-running it after an abort
// replays the same transaction.
func drawE10Txn(cfg E10Config, rng *splitMix, zipf zipfTable) (body func(tm.Txn) error, readOnly bool) {
	roll := float64(rng.next()%1000) / 1000
	switch {
	case roll < cfg.WriteRatio:
		// Writer pool: point RMW on a hot key.
		x := zipf.sample(rng)
		delta := rng.next() % 100
		return func(tx tm.Txn) error {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			return tx.Write(x, v+delta)
		}, false
	case roll < cfg.WriteRatio+(1-cfg.WriteRatio)*cfg.ScanRatio:
		// Ordered scan of a contiguous window starting at a hot key.
		start := zipf.sample(rng)
		length := cfg.ScanLen
		return func(tx tm.Txn) error {
			var sum uint64
			for j := 0; j < length; j++ {
				v, err := tx.Read((start + j) % cfg.Objects)
				if err != nil {
					return err
				}
				sum += v
			}
			_ = sum
			return nil
		}, true
	default:
		// Hot-key multi-get: the dominant serving transaction.
		keys := make([]int, cfg.GetKeys)
		for j := range keys {
			keys[j] = zipf.sample(rng)
		}
		return func(tx tm.Txn) error {
			var sum uint64
			for _, x := range keys {
				v, err := tx.Read(x)
				if err != nil {
					return err
				}
				sum += v
			}
			_ = sum
			return nil
		}, true
	}
}
