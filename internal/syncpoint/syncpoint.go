// Package syncpoint names the engine-side scheduling decision points the
// deterministic interleaving harness (internal/schedtest) parks worker
// goroutines at. It is a leaf package — just the enum — so the native
// engines can reference the point names from their test-only hooks
// without pulling the simulator scheduler into their import graphs.
//
// The six named points are the places a TL2-family commit pipeline makes
// a decision another transaction can observe or invalidate (see
// DESIGN.md, "Hostile-schedule replay"): certifying a read, entering and
// leaving lock acquisition, stamping the commit timestamp, publishing,
// and entering a GC sweep. Begin and SpinWait are harness plumbing:
// Begin orders the read-version/snapshot sample against other workers'
// commits, and SpinWait hands control back to the harness from loops
// that would otherwise spin forever waiting on a parked peer.
package syncpoint

// Point identifies one engine sync point.
type Point uint8

const (
	// Begin fires at the top of every attempt, before the attempt samples
	// its read version (stm), snapshot pin (mvstm) or sequence snapshot
	// (norecstm). Parking here lets a schedule order transaction starts
	// against other workers' commits.
	Begin Point = iota
	// PostReadCertify fires after a transactional read certified its
	// word/value/word triple (the value is final for this read).
	PostReadCertify
	// PreLock fires in commit after the write set is ordered, before the
	// first lock acquisition.
	PreLock
	// PostLock fires once the commit holds its entire write set's locks.
	PostLock
	// PreClockStamp fires immediately before the commit takes its write
	// version: the global-clock advance (stm versioned strategies), the
	// commit-timestamp selection (TicToc), or the clock bump (mvstm).
	// NOrec has no clock; this point never fires there.
	PreClockStamp
	// PrePublish fires after validation passes, immediately before the
	// first value store of the publish loop.
	PrePublish
	// GCSweep fires at mvstm's GC-sweep entry, before the sweep samples
	// the minimum active snapshot it will truncate version chains to.
	// The single-version engines never fire it.
	GCSweep
	// SpinWait fires on each iteration of an engine wait loop (NOrec's
	// commit-in-progress spins, mvstm's pre-pin lock-holder wait, stm's
	// Retry poll). The harness treats the worker as still runnable: a
	// schedule must eventually grant the worker it is waiting on.
	SpinWait
)

// String returns the point's name for schedule dumps and test failures.
func (p Point) String() string {
	switch p {
	case Begin:
		return "begin"
	case PostReadCertify:
		return "post-read-certify"
	case PreLock:
		return "pre-lock"
	case PostLock:
		return "post-lock"
	case PreClockStamp:
		return "pre-clock-stamp"
	case PrePublish:
		return "pre-publish"
	case GCSweep:
		return "gc-sweep"
	case SpinWait:
		return "spin-wait"
	default:
		return "unknown"
	}
}
