package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestExactUnderK: with at most K distinct ids and no sampling, a
// sequentially fed sketch counts exactly.
func TestExactUnderK(t *testing.T) {
	s := NewSketch(4, 0)
	feed := []uint64{1, 2, 1, 3, 1, 2, 4, 1}
	for _, id := range feed {
		s.Observe(id)
	}
	want := map[uint64]uint64{1: 4, 2: 2, 3: 1, 4: 1}
	top := s.Top(0)
	if len(top) != len(want) {
		t.Fatalf("Top returned %d entries, want %d: %+v", len(top), len(want), top)
	}
	for _, e := range top {
		if e.Count != want[e.ID] {
			t.Fatalf("id %d: count %d, want %d", e.ID, e.Count, want[e.ID])
		}
	}
	if top[0].ID != 1 || top[0].Count != 4 {
		t.Fatalf("Top[0] = %+v, want id 1 count 4", top[0])
	}
}

// TestHeavyHitterSurvives: a heavy hitter keeps its slot (and its count
// stays an overestimate of the truth) despite a long tail of distinct
// ids contending for the K slots.
func TestHeavyHitterSurvives(t *testing.T) {
	// The space-saving guarantee needs the hot id's frequency above
	// N/(K+1): here hot is half of N = 4000 observations, well past
	// 4000/9, while 2000 distinct tail ids churn the other 7 slots.
	const hot, hotCount, tail = 7, 2000, 2000
	s := NewSketch(8, 0)
	for i := 0; i < hotCount; i++ {
		s.Observe(hot)
		s.Observe(uint64(1000 + i%tail))
	}
	var got *Entry
	for _, e := range s.Top(0) {
		if e.ID == hot {
			e := e
			got = &e
		}
	}
	if got == nil {
		t.Fatalf("heavy hitter evicted from sketch: %+v", s.Top(8))
	}
	if got.Count < hotCount {
		t.Fatalf("space-saving count %d underestimates true count %d", got.Count, hotCount)
	}
}

// TestZeroIDIgnored: id 0 is the empty-slot sentinel and must never
// occupy a slot.
func TestZeroIDIgnored(t *testing.T) {
	s := NewSketch(4, 0)
	s.Observe(0)
	if top := s.Top(0); len(top) != 0 {
		t.Fatalf("Observe(0) occupied a slot: %+v", top)
	}
}

// TestSampling: with 1-in-8 sampling, admitted counts land near
// total/8 — the striped counters admit deterministically per stripe, so
// a single-id feed admits exactly 1 in 8.
func TestSampling(t *testing.T) {
	s := NewSketch(4, 8)
	const n = 800
	for i := 0; i < n; i++ {
		s.Observe(42)
	}
	top := s.Top(1)
	if len(top) != 1 || top[0].ID != 42 {
		t.Fatalf("Top = %+v, want the single sampled id", top)
	}
	if got := top[0].Count; got != n/8 {
		t.Fatalf("sampled count = %d, want exactly %d (single-stripe feed)", got, n/8)
	}
}

// TestLabels: registry round-trip and Top label resolution.
func TestLabels(t *testing.T) {
	id := NamespaceSTM | 12345
	SetLabel(id, "user000000042")
	if got := LabelOf(id); got != "user000000042" {
		t.Fatalf("LabelOf = %q", got)
	}
	if got := LabelOf(id + 1); got != "" {
		t.Fatalf("unlabeled id resolved to %q", got)
	}
	s := NewSketch(2, 0)
	s.Observe(id)
	if top := s.Top(1); top[0].Label != "user000000042" {
		t.Fatalf("Top label = %q", top[0].Label)
	}
}

// TestConcurrentObserve: the lock-free claim under race — no panics,
// and a sole hot id's count stays within the observation total.
func TestConcurrentObserve(t *testing.T) {
	s := NewSketch(8, 0)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(1)                        // hot id every iteration
				s.Observe(uint64(2 + (w*per+i)%64)) // churning tail
			}
		}(w)
	}
	wg.Wait()
	var hot uint64
	for _, e := range s.Top(0) {
		if e.ID == 1 {
			hot = e.Count
		}
	}
	if hot == 0 {
		t.Fatalf("hot id evicted under concurrency: %+v", s.Top(8))
	}
	if hot > 2*workers*per {
		t.Fatalf("hot count %d wildly exceeds %d observations", hot, 2*workers*per)
	}
}

// TestKClamp: degenerate constructor arguments still yield a working
// sketch.
func TestKClamp(t *testing.T) {
	s := NewSketch(-1, -1)
	if s.K() != 1 {
		t.Fatalf("K = %d, want 1", s.K())
	}
	s.Observe(9)
	s.Observe(9)
	if top := s.Top(0); len(top) != 1 || top[0].Count != 2 {
		t.Fatalf("Top = %+v", top)
	}
}

// FuzzSketch checks the two space-saving properties against an exact
// model: counts never underestimate (sequential feed), and with ≤ K
// distinct ids they are exact.
func FuzzSketch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 1})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 4
		s := NewSketch(k, 0)
		exact := map[uint64]uint64{}
		for _, b := range data {
			id := uint64(b % 16) // small id space so eviction is exercised
			s.Observe(id)
			if id != 0 {
				exact[id]++
			}
		}
		top := s.Top(0)
		counts := map[uint64]uint64{}
		for _, e := range top {
			if e.ID == 0 {
				t.Fatalf("sentinel id in Top: %+v", top)
			}
			counts[e.ID] = e.Count
		}
		for id, n := range counts {
			if n < exact[id] {
				t.Fatalf("id %d: sketch %d underestimates exact %d (feed %v)", id, n, exact[id], data)
			}
		}
		if len(exact) <= k {
			for id, n := range exact {
				if counts[id] != n {
					t.Fatalf("≤K distinct ids but id %d counted %d, want exact %d (feed %v)", id, counts[id], n, data)
				}
			}
		}
	})
}

// ExampleSketch documents the intended profiling flow.
func ExampleSketch() {
	s := NewSketch(8, 0)
	SetLabel(101, "accounts/alice")
	for i := 0; i < 3; i++ {
		s.Observe(101)
	}
	s.Observe(202)
	for _, e := range s.Top(2) {
		name := e.Label
		if name == "" {
			name = fmt.Sprintf("var-%d", e.ID)
		}
		fmt.Printf("%s %d\n", name, e.Count)
	}
	// Output:
	// accounts/alice 3
	// var-202 1
}
