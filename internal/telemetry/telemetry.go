// Package telemetry holds the engine-side observability plumbing shared
// by the three native engines: a lock-free top-K "space-saving" sketch
// that attributes aborts to the Vars they conflicted on, and a process-
// wide label registry mapping Var ids to human-readable names (the
// OrderedMap key, a container name) so hot-Var reports can name keys
// instead of pointer identities.
//
// The sketch is fed from engine abort sites through a nil-check hook
// (see stm.SetContentionProfiler and its siblings): with no sketch
// installed the cost at each site is one atomic pointer load and a
// branch, and with one installed the observe path allocates nothing —
// a striped sampling counter, a bounded scan of K padded slots, and at
// most two CASes. Races between concurrent observers can drop or
// slightly inflate individual increments; the sketch is a profiler, not
// an accounting ledger, and the space-saving bound below is stated for
// the quiescent reading.
//
// Accuracy: with K slots and N admitted observations, a sequentially
// fed sketch overestimates any id's count by at most N/K, and any id
// whose true frequency exceeds N/(K+1) occupies a slot. Sampling
// 1-in-S scales both by S.
//
// Var ids are namespaced per engine (high bits, see NamespaceSTM and
// siblings) so one registry and one sketch can serve several engines
// without aliasing their independent id counters.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Engine id namespaces, ORed into Var ids by each engine's telemetry
// hooks. Engine id counters are sequential and never approach 2^60, so
// the tag bits are always clear in the raw id.
const (
	NamespaceSTM    uint64 = 1 << 60
	NamespaceNOrec  uint64 = 2 << 60
	NamespaceMVSTM  uint64 = 3 << 60
	namespaceMask   uint64 = 7 << 60
	DefaultSketchK         = 64
	DefaultSampling        = 1 // every admitted abort; abort paths are off the fast path
)

// labels is the process-wide id → name registry. Written once per
// labeled Var (container inserts), read when rendering reports — a
// sync.Map's exact strong suit.
var labels sync.Map // uint64 → string

// SetLabel names a Var id for hot-Var reports. Relabeling overwrites.
func SetLabel(id uint64, label string) { labels.Store(id, label) }

// LabelOf returns the registered label for id, or "".
func LabelOf(id uint64) string {
	if v, ok := labels.Load(id); ok {
		return v.(string)
	}
	return ""
}

// slot is one sketch counter, padded so concurrent increments on
// neighboring slots do not false-share.
type slot struct {
	id atomic.Uint64 // 0 = empty
	n  atomic.Uint64
	_  [112]byte
}

// sampStripes is the number of sampling-counter stripes; a power of two
// so stripe selection is a mask. Striping keeps the sampling gate from
// becoming the shared contended word the stat stripes exist to avoid.
const sampStripes = 8

type sampStripe struct {
	n atomic.Uint64
	_ [120]byte
}

// Sketch is a lock-free top-K space-saving sketch over uint64 ids.
type Sketch struct {
	mask  uint64 // sampling mask: admit when counter&mask == 0; 0 = admit all
	slots []slot
	samp  [sampStripes]sampStripe
}

// NewSketch returns a sketch with k counters admitting roughly 1 in
// sampleEvery observations (rounded up to a power of two; ≤ 1 means
// every observation). k is clamped to [1, 4096].
func NewSketch(k, sampleEvery int) *Sketch {
	if k < 1 {
		k = 1
	}
	if k > 4096 {
		k = 4096
	}
	var mask uint64
	if sampleEvery > 1 {
		e := uint64(1)
		for e < uint64(sampleEvery) {
			e <<= 1
		}
		mask = e - 1
	}
	return &Sketch{mask: mask, slots: make([]slot, k)}
}

// Observe records one occurrence of id (0 is reserved and ignored).
// Allocation-free; safe for concurrent use.
func (s *Sketch) Observe(id uint64) {
	if id == 0 {
		return
	}
	if s.mask != 0 {
		if s.samp[id&(sampStripes-1)].n.Add(1)&s.mask != 0 {
			return
		}
	}
	minIdx, minN := -1, ^uint64(0)
	emptyIdx := -1
	for i := range s.slots {
		sl := &s.slots[i]
		switch got := sl.id.Load(); got {
		case id:
			sl.n.Add(1)
			return
		case 0:
			if emptyIdx < 0 {
				emptyIdx = i
			}
		default:
			if n := sl.n.Load(); n < minN {
				minN, minIdx = n, i
			}
		}
	}
	if emptyIdx >= 0 {
		sl := &s.slots[emptyIdx]
		if sl.id.CompareAndSwap(0, id) || sl.id.Load() == id {
			sl.n.Add(1)
			return
		}
	}
	if minIdx < 0 {
		return // every candidate slot was lost to a racing claim; drop
	}
	// Space-saving replacement: evict the minimum and inherit its count,
	// so the new id's count is an overestimate by at most the evicted
	// minimum — the bound in the package comment.
	sl := &s.slots[minIdx]
	old := sl.id.Load()
	if old != 0 && old != id && sl.id.CompareAndSwap(old, id) {
		sl.n.Add(1)
	}
	// A lost replacement race drops this observation; acceptable for a
	// sampled profile.
}

// Entry is one row of a Top report.
type Entry struct {
	ID    uint64 `json:"id"`
	Label string `json:"label,omitempty"`
	Count uint64 `json:"count"`
}

// Top returns up to n occupied slots ordered by descending count, with
// labels resolved from the registry ("" when unlabeled).
func (s *Sketch) Top(n int) []Entry {
	out := make([]Entry, 0, len(s.slots))
	for i := range s.slots {
		sl := &s.slots[i]
		id := sl.id.Load()
		if id == 0 {
			continue
		}
		out = append(out, Entry{ID: id, Label: LabelOf(id), Count: sl.n.Load()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// K returns the sketch's slot count.
func (s *Sketch) K() int { return len(s.slots) }
