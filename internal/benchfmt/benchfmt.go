// Package benchfmt parses `go test -bench` text output into the
// benchmark-baseline structure committed as BENCH_PRn.json, and compares
// two baselines. It is shared by cmd/benchjson (baseline recording) and
// cmd/benchdiff (the CI delta report); standard library only, so both run
// in a hermetic container.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metric aggregates one unit (ns/op, abort-ratio, allocs/op, ...) across
// the repeated runs of a benchmark.
type Metric struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Bench is one benchmark's aggregate across its -count runs.
type Bench struct {
	Runs    int               `json:"runs"`
	Iters   int64             `json:"iters_total"`
	Metrics map[string]Metric `json:"metrics"`
}

// Baseline is the file layout of BENCH_PRn.json.
type Baseline struct {
	Label      string           `json:"label"`
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPU        string           `json:"cpu,omitempty"`
	Command    string           `json:"command,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

type sample struct {
	iters   int64
	metrics map[string]float64
}

// Parse reads `go test -bench` output and aggregates the benchmark lines.
// Benchmark names are prefixed with their package ("repro/stm.BenchmarkX")
// so one stream may carry several packages without collisions.
func Parse(r io.Reader) (*Baseline, error) {
	base := &Baseline{Benchmarks: map[string]Bench{}}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			base.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if pkg != "" {
			name = pkg + "." + name
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a benchmark that printed something non-standard
		}
		s := sample{iters: iters, metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q on line %q", fields[i], line)
			}
			s.metrics[fields[i+1]] = v
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines found")
	}
	for name, ss := range samples {
		b := Bench{Runs: len(ss), Metrics: map[string]Metric{}}
		units := map[string][]float64{}
		for _, s := range ss {
			b.Iters += s.iters
			for u, v := range s.metrics {
				units[u] = append(units[u], v)
			}
		}
		for u, vs := range units {
			sort.Float64s(vs)
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			b.Metrics[u] = Metric{Mean: sum / float64(len(vs)), Min: vs[0], Max: vs[len(vs)-1]}
		}
		base.Benchmarks[name] = b
	}
	return base, nil
}

// Load reads a Baseline from JSON, or — when the input is raw `go test
// -bench` text — parses and aggregates it, so callers accept either form.
func Load(data []byte) (*Baseline, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, err
		}
		if b.Benchmarks == nil {
			return nil, fmt.Errorf("benchfmt: JSON baseline has no benchmarks")
		}
		return &b, nil
	}
	return Parse(strings.NewReader(string(data)))
}

// DiffRow is one benchmark's comparison on one metric.
type DiffRow struct {
	Name     string
	Unit     string
	Old, New float64
	// Delta is (new-old)/old; NaN when old == 0.
	Delta float64
	// OldMin/NewMin carry the per-side minima over -count runs. On a
	// shared machine scheduler interference inflates individual runs but
	// almost never deflates them, so the minimum is each side's
	// least-interference sample and min-vs-min is the noise-robust basis
	// for a regression gate (means stay the reporting statistic).
	// OldMax completes the baseline's recorded spread: (OldMax-OldMin)/
	// OldMin is how much this cell wanders within a single recording era,
	// which a gate can use as the cell's own noise-calibrated tolerance.
	OldMin, NewMin, OldMax float64
}

// Diff compares the units of every benchmark present in both baselines,
// sorted by name then unit. Benchmarks present on only one side are
// skipped (the report is advisory; renames should not fail CI).
func Diff(oldB, newB *Baseline, units []string) []DiffRow {
	want := map[string]bool{}
	for _, u := range units {
		want[u] = true
	}
	var rows []DiffRow
	for name, ob := range oldB.Benchmarks {
		nb, ok := newB.Benchmarks[name]
		if !ok {
			continue
		}
		for unit, om := range ob.Metrics {
			if len(units) > 0 && !want[unit] {
				continue
			}
			nm, ok := nb.Metrics[unit]
			if !ok {
				continue
			}
			d := DiffRow{Name: name, Unit: unit, Old: om.Mean, New: nm.Mean, OldMin: om.Min, NewMin: nm.Min, OldMax: om.Max}
			if om.Mean != 0 {
				d.Delta = (nm.Mean - om.Mean) / om.Mean
			} else if nm.Mean != 0 {
				d.Delta = math.Inf(1)
			}
			rows = append(rows, d)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return rows[i].Unit < rows[j].Unit
	})
	return rows
}
