package benchfmt_test

import (
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

const benchOut = `goos: linux
goarch: amd64
pkg: repro/stm
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkVarContended/pipeline=gv4-ext-4   300000   1000 ns/op   0.0020 abort-ratio   3 B/op   0 allocs/op
BenchmarkVarContended/pipeline=gv4-ext-4   310000   1100 ns/op   0.0040 abort-ratio   3 B/op   0 allocs/op
PASS
pkg: repro
BenchmarkE8NativeCounter-4   500000   200 ns/op   23 B/op   1 allocs/op
ok   repro 1.0s
`

func TestParseAggregates(t *testing.T) {
	b, err := benchfmt.Parse(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	if b.GOOS != "linux" || b.GOARCH != "amd64" || !strings.Contains(b.CPU, "Xeon") {
		t.Errorf("meta not captured: %+v", b)
	}
	v, ok := b.Benchmarks["repro/stm.BenchmarkVarContended/pipeline=gv4-ext-4"]
	if !ok {
		t.Fatalf("missing aggregated benchmark; have %v", keys(b))
	}
	if v.Runs != 2 || v.Iters != 610000 {
		t.Errorf("runs=%d iters=%d, want 2 and 610000", v.Runs, v.Iters)
	}
	ns := v.Metrics["ns/op"]
	if ns.Mean != 1050 || ns.Min != 1000 || ns.Max != 1100 {
		t.Errorf("ns/op aggregate = %+v", ns)
	}
	if ar := v.Metrics["abort-ratio"]; ar.Mean != 0.003 {
		t.Errorf("abort-ratio mean = %v, want 0.003", ar.Mean)
	}
	if _, ok := b.Benchmarks["repro.BenchmarkE8NativeCounter-4"]; !ok {
		t.Errorf("second package's benchmark missing; have %v", keys(b))
	}
}

func TestLoadAcceptsBothForms(t *testing.T) {
	raw, err := benchfmt.Load([]byte(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	j := `{"label":"PR2","benchmarks":{"x":{"runs":1,"iters_total":10,"metrics":{"ns/op":{"mean":5,"min":5,"max":5}}}}}`
	fromJSON, err := benchfmt.Load([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.Label != "PR2" || len(raw.Benchmarks) != 2 {
		t.Errorf("Load mismatch: json label %q, raw benchmarks %d", fromJSON.Label, len(raw.Benchmarks))
	}
	if _, err := benchfmt.Load([]byte("{}")); err == nil {
		t.Error("empty JSON accepted")
	}
}

func TestDiff(t *testing.T) {
	oldB, _ := benchfmt.Load([]byte(benchOut))
	newOut := strings.ReplaceAll(benchOut, "1000 ns/op", "900 ns/op")
	newOut = strings.ReplaceAll(newOut, "1100 ns/op", "900 ns/op")
	newB, _ := benchfmt.Load([]byte(newOut))
	rows := benchfmt.Diff(oldB, newB, []string{"ns/op"})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (one per benchmark, ns/op only)", len(rows))
	}
	for _, r := range rows {
		if r.Unit != "ns/op" {
			t.Errorf("unit filter leaked: %+v", r)
		}
	}
	// The contended benchmark improved 1050 → 900.
	var found bool
	for _, r := range rows {
		if strings.Contains(r.Name, "VarContended") {
			found = true
			if r.Delta > -0.1 || r.Delta < -0.2 {
				t.Errorf("delta = %v, want ≈ -0.142", r.Delta)
			}
		}
	}
	if !found {
		t.Error("VarContended row missing")
	}
}

func keys(b *benchfmt.Baseline) []string {
	var out []string
	for k := range b.Benchmarks {
		out = append(out, k)
	}
	return out
}
