package mutex

import "repro/internal/memory"

// LLSC is a test-and-set lock built from load-linked/store-conditional —
// the other conditional primitive the paper's Theorem 9 admits. Its RMR
// behaviour matches TAS (global spinning); its purpose in the suite is to
// exercise the LL/SC primitive pair in a full algorithm.
type LLSC struct {
	lock *memory.Obj
}

// NewLLSC allocates an LL/SC-based lock.
func NewLLSC(mem *memory.Memory) *LLSC {
	return &LLSC{lock: mem.Alloc("llsc.lock")}
}

// Name implements Lock.
func (*LLSC) Name() string { return "llsc" }

// Enter implements Lock.
func (l *LLSC) Enter(p *memory.Proc) {
	for {
		if p.LL(l.lock) == 0 && p.SC(l.lock, uint64(p.ID())+1) {
			return
		}
	}
}

// Exit implements Lock.
func (l *LLSC) Exit(p *memory.Proc) { p.Write(l.lock, 0) }
