package mutex

import (
	"errors"
	"fmt"

	"repro/internal/memory"
	"repro/internal/tm"
)

// LM is the paper's Algorithm 1: a deadlock-free, finite-exit mutual
// exclusion object built from a strictly serializable, strongly progressive
// TM M that accesses a single t-object X. Each process alternates between
// two identities [p_i, face_i]; the TM atomically enqueues the caller on X
// (read the previous holder, write our identity, commit), and the hand-off
// uses per-pair spin registers Lock[p_i][p_j] that are local to p_i under
// DSM, giving O(1) RMRs per acquisition outside M.
//
// Note on line 30 of the paper's pseudocode: as printed, p_i spins *while*
// Lock[p_i][prev] is unlocked — but p_i itself wrote `locked` to that
// register three lines earlier, so the wait would exit immediately and
// mutual exclusion would fail. We implement the evident intent (spin until
// the predecessor writes `unlocked`); the package tests model-check mutual
// exclusion and deadlock-freedom over many seeded schedules.
type LM struct {
	m    tm.TM
	n    int
	done [][2]*memory.Obj // Done[p_i][face]
	succ [][2]*memory.Obj // Succ[p_i][face]: successor pid+1, 0 = ⊥
	lock [][]*memory.Obj  // Lock[p_i][p_j], local (DSM home) to p_i
	face []int            // per-process current face (process-local state)

	// tmSteps/tmRMRs accumulate the cost incurred inside M's t-operations,
	// so experiment E4 can split L(M)'s cost into "TM" and "hand-off"
	// parts and verify Theorem 7's O(1)-overhead claim.
	tmSteps, tmRMRs []uint64
}

// NewLM builds L(M) over mem. M must manage at least one t-object;
// t-object 0 plays the role of X. NewLM panics if m declares itself
// non-strongly-progressive or not strictly serializable, since Algorithm 1
// is only correct for that TM class.
func NewLM(mem *memory.Memory, m tm.TM) *LM {
	props := m.Props()
	if !props.StronglyProgressive || !props.StrictSerializable {
		panic(fmt.Sprintf("mutex: L(M) requires a strictly serializable, strongly progressive TM; %s is %v", m.Name(), props))
	}
	if m.NumObjects() < 1 {
		panic("mutex: L(M) requires a TM with at least one t-object")
	}
	n := mem.NumProcs()
	l := &LM{
		m:       m,
		n:       n,
		done:    make([][2]*memory.Obj, n),
		succ:    make([][2]*memory.Obj, n),
		lock:    make([][]*memory.Obj, n),
		face:    make([]int, n),
		tmSteps: make([]uint64, n),
		tmRMRs:  make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		for f := 0; f < 2; f++ {
			l.done[i][f] = mem.AllocAt(fmt.Sprintf("lm.done[%d][%d]", i, f), i)
			l.succ[i][f] = mem.AllocAt(fmt.Sprintf("lm.succ[%d][%d]", i, f), i)
		}
		l.lock[i] = make([]*memory.Obj, n)
		for j := 0; j < n; j++ {
			if j != i {
				l.lock[i][j] = mem.AllocAt(fmt.Sprintf("lm.lock[%d][%d]", i, j), i)
			}
		}
	}
	return l
}

// Name implements Lock.
func (l *LM) Name() string { return "lm(" + l.m.Name() + ")" }

// TM returns the underlying transactional memory M.
func (l *LM) TM() tm.TM { return l.m }

// TMSteps returns the cumulative steps process i spent inside M.
func (l *LM) TMSteps(i int) uint64 { return l.tmSteps[i] }

// TMRMRs returns the cumulative RMRs process i incurred inside M.
func (l *LM) TMRMRs(i int) uint64 { return l.tmRMRs[i] }

// identity encodes [p_i, face_i] as a non-⊥ t-object value.
func identity(pid, face int) tm.Value { return tm.Value(1 + 2*pid + face) }

func decodeIdentity(v tm.Value) (pid, face int) {
	v--
	return int(v / 2), int(v % 2)
}

const (
	unlocked = 0
	locked   = 1
)

// fnc is the paper's func(): atomically read X and overwrite it with our
// identity, returning the previous value, or reporting failure if the
// transaction aborted. Strong progressiveness of M guarantees that
// concurrent callers cannot all fail forever.
func (l *LM) fnc(p *memory.Proc, id tm.Value) (prev tm.Value, ok bool) {
	s0, r0 := p.Steps(), p.RMRs()
	defer func() {
		l.tmSteps[p.ID()] += p.Steps() - s0
		l.tmRMRs[p.ID()] += p.RMRs() - r0
	}()
	tx := l.m.Begin(p)
	v, err := tx.Read(0)
	if err == nil {
		err = tx.Write(0, id)
	}
	if err == nil {
		err = tx.Commit()
	}
	if err != nil {
		if !errors.Is(err, tm.ErrAborted) {
			panic("mutex: unexpected TM error: " + err.Error())
		}
		tx.Abort()
		return 0, false
	}
	return v, true
}

// Enter implements Lock (the paper's Entry section).
func (l *LM) Enter(p *memory.Proc) {
	i := p.ID()
	l.face[i] = 1 - l.face[i]
	f := l.face[i]
	p.Write(l.done[i][f], 0) // Done[p_i, face_i] := false
	p.Write(l.succ[i][f], 0) // Succ[p_i, face_i] := ⊥

	var prev tm.Value
	for {
		v, ok := l.fnc(p, identity(i, f))
		if ok {
			prev = v
			break
		}
	}
	if prev == 0 {
		return // read the initial value ⊥: the queue was empty
	}
	pj, fj := decodeIdentity(prev)
	if pj == i {
		// X still holds our own previous face's identity: since a process
		// issues operations sequentially, that face completed Exit before
		// this Enter began (Done[i][fj] is already true), so we own the
		// critical section immediately. The paper's Lock array has no
		// [p_i][p_i] register for the same reason.
		return
	}
	p.Write(l.lock[i][pj], locked)
	p.Write(l.succ[pj][fj], uint64(i)+1)
	if p.Read(l.done[pj][fj]) == 0 {
		// Predecessor still active: local spin until it hands off.
		for p.Read(l.lock[i][pj]) == locked {
		}
	}
}

// Exit implements Lock (the paper's Exit section). It contains no loops:
// finite exit.
func (l *LM) Exit(p *memory.Proc) {
	i := p.ID()
	f := l.face[i]
	p.Write(l.done[i][f], 1) // Done[p_i, face_i] := true
	s := p.Read(l.succ[i][f])
	if s != 0 {
		p.Write(l.lock[int(s-1)][i], unlocked)
	}
}
