// Package mutex implements the mutual-exclusion side of Section 5: the
// paper's Algorithm 1 — a deadlock-free, finite-exit mutex L(M) built from
// any strictly serializable, strongly progressive TM M that accesses a
// single t-object — together with the classic spin locks (test-and-set,
// test-and-test-and-set, ticket, Anderson array, MCS, CLH) as RMR
// baselines. All algorithms run on the simulated memory, so their RMR
// complexity under the CC and DSM models is measured, not modelled.
package mutex

import (
	"repro/internal/memory"
)

// Lock is a mutual-exclusion object for the processes of one Memory.
// Enter blocks (spins) until the caller holds the critical section; Exit
// releases it. Each implementation documents its per-process local state.
type Lock interface {
	Name() string
	Enter(p *memory.Proc)
	Exit(p *memory.Proc)
}

// TAS is the test-and-set lock: the simplest correct lock and the worst
// RMR citizen — every spin iteration applies a nontrivial primitive, so
// contenders generate unbounded RMRs in every model.
type TAS struct {
	lock *memory.Obj
}

// NewTAS allocates a TAS lock.
func NewTAS(mem *memory.Memory) *TAS {
	return &TAS{lock: mem.Alloc("tas.lock")}
}

// Name implements Lock.
func (*TAS) Name() string { return "tas" }

// Enter implements Lock.
func (l *TAS) Enter(p *memory.Proc) {
	for !p.CAS(l.lock, 0, uint64(p.ID())+1) {
	}
}

// Exit implements Lock.
func (l *TAS) Exit(p *memory.Proc) { p.Write(l.lock, 0) }

// TTAS is the test-and-test-and-set lock: contenders spin on a cached read
// and attempt the CAS only when the lock is observed free. O(1) RMRs per
// handoff while spinning in CC models, but each release still invalidates
// every spinner.
type TTAS struct {
	lock *memory.Obj
}

// NewTTAS allocates a TTAS lock.
func NewTTAS(mem *memory.Memory) *TTAS {
	return &TTAS{lock: mem.Alloc("ttas.lock")}
}

// Name implements Lock.
func (*TTAS) Name() string { return "ttas" }

// Enter implements Lock.
func (l *TTAS) Enter(p *memory.Proc) {
	for {
		if p.Read(l.lock) == 0 && p.CAS(l.lock, 0, uint64(p.ID())+1) {
			return
		}
	}
}

// Exit implements Lock.
func (l *TTAS) Exit(p *memory.Proc) { p.Write(l.lock, 0) }

// Ticket is the ticket lock (fetch-and-add based, FIFO). All waiters spin
// on the single owner word, so every handoff invalidates every waiter's
// cache: Θ(n) RMRs per handoff under contention in CC.
type Ticket struct {
	next  *memory.Obj
	owner *memory.Obj
}

// NewTicket allocates a ticket lock.
func NewTicket(mem *memory.Memory) *Ticket {
	return &Ticket{next: mem.Alloc("ticket.next"), owner: mem.Alloc("ticket.owner")}
}

// Name implements Lock.
func (*Ticket) Name() string { return "ticket" }

// Enter implements Lock.
func (l *Ticket) Enter(p *memory.Proc) {
	t := p.FetchAdd(l.next, 1)
	for p.Read(l.owner) != t {
	}
}

// Exit implements Lock.
func (l *Ticket) Exit(p *memory.Proc) {
	p.Write(l.owner, p.Read(l.owner)+1)
}

// Anderson is the Anderson array lock: each waiter spins on its own slot of
// a circular flag array, giving O(1) RMRs per acquisition in CC models
// (each handoff invalidates exactly one spinner). Slots are in global
// memory, so it is not local-spin under DSM.
type Anderson struct {
	n     int
	tail  *memory.Obj
	flags []*memory.Obj
	pos   []uint64 // per-process slot of the current acquisition
}

// NewAnderson allocates an Anderson lock for all processes of mem.
func NewAnderson(mem *memory.Memory) *Anderson {
	n := mem.NumProcs()
	l := &Anderson{
		n:     n,
		tail:  mem.Alloc("anderson.tail"),
		flags: mem.AllocArray("anderson.flag", n),
		pos:   make([]uint64, n),
	}
	mem.Poke(l.flags[0], 1) // the first ticket proceeds immediately
	return l
}

// Name implements Lock.
func (*Anderson) Name() string { return "anderson" }

// Enter implements Lock.
func (l *Anderson) Enter(p *memory.Proc) {
	pos := p.FetchAdd(l.tail, 1) % uint64(l.n)
	l.pos[p.ID()] = pos
	for p.Read(l.flags[pos]) == 0 {
	}
	p.Write(l.flags[pos], 0)
}

// Exit implements Lock.
func (l *Anderson) Exit(p *memory.Proc) {
	p.Write(l.flags[(l.pos[p.ID()]+1)%uint64(l.n)], 1)
}

// MCS is the Mellor-Crummey–Scott queue lock: each waiter spins on a flag
// in its own queue node, which is allocated with the waiter as its DSM
// home, so MCS is O(1) RMR per acquisition in both CC and DSM models.
type MCS struct {
	mem  *memory.Obj   // tail pointer
	lock []*memory.Obj // qnode[i].locked, home i
	next []*memory.Obj // qnode[i].next, home i
	m    *memory.Memory
}

// NewMCS allocates an MCS lock, with each process's queue node homed at
// that process.
func NewMCS(mem *memory.Memory) *MCS {
	n := mem.NumProcs()
	l := &MCS{mem: mem.Alloc("mcs.tail"), m: mem}
	l.lock = make([]*memory.Obj, n)
	l.next = make([]*memory.Obj, n)
	for i := 0; i < n; i++ {
		l.lock[i] = mem.AllocAt("mcs.qnode.locked", i)
		l.next[i] = mem.AllocAt("mcs.qnode.next", i)
	}
	return l
}

// Name implements Lock.
func (*MCS) Name() string { return "mcs" }

// Enter implements Lock.
func (l *MCS) Enter(p *memory.Proc) {
	i := p.ID()
	p.Write(l.next[i], 0)
	p.Write(l.lock[i], 1)
	prev := p.Swap(l.mem, uint64(i)+1)
	if prev == 0 {
		return
	}
	p.Write(l.next[prev-1], uint64(i)+1)
	for p.Read(l.lock[i]) == 1 {
	}
}

// Exit implements Lock.
func (l *MCS) Exit(p *memory.Proc) {
	i := p.ID()
	if p.Read(l.next[i]) == 0 {
		if p.CAS(l.mem, uint64(i)+1, 0) {
			return
		}
		// A successor is linking in; wait for the link.
		for p.Read(l.next[i]) == 0 {
		}
	}
	succ := p.Read(l.next[i])
	p.Write(l.lock[succ-1], 0)
}

// CLH is the Craig–Landin–Hagersten queue lock: each waiter spins on its
// predecessor's node. O(1) RMR per acquisition in CC models; *not*
// local-spin under DSM (the predecessor's node is remote), which the RMR
// experiment makes visible.
type CLH struct {
	tail     *memory.Obj
	m        *memory.Memory
	node     []uint64 // address of each process's next acquisition node
	exitNode []uint64 // address of the node the current holder must release
}

// NewCLH allocates a CLH lock. The initial tail node is unlocked.
func NewCLH(mem *memory.Memory) *CLH {
	n := mem.NumProcs()
	l := &CLH{tail: mem.Alloc("clh.tail"), m: mem, node: make([]uint64, n), exitNode: make([]uint64, n)}
	sentinel := mem.Alloc("clh.sentinel") // value 0 = unlocked
	mem.Poke(l.tail, sentinel.Addr())
	for i := 0; i < n; i++ {
		nd := mem.AllocAt("clh.node", i)
		l.node[i] = nd.Addr()
	}
	return l
}

// Name implements Lock.
func (*CLH) Name() string { return "clh" }

// Enter implements Lock.
func (l *CLH) Enter(p *memory.Proc) {
	i := p.ID()
	my := l.m.ObjAt(l.node[i])
	p.Write(my, 1) // locked
	prevAddr := p.Swap(l.tail, my.Addr())
	prev := l.m.ObjAt(prevAddr)
	for p.Read(prev) == 1 {
	}
	// Recycle the predecessor's node for our next acquisition, as in the
	// standard CLH protocol.
	l.node[i] = prevAddr
	l.exitNode[i] = my.Addr()
}

// Exit implements Lock.
func (l *CLH) Exit(p *memory.Proc) {
	p.Write(l.m.ObjAt(l.exitNode[p.ID()]), 0)
}
