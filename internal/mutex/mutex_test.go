package mutex_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/mutex"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tm/irtm"
	"repro/internal/tm/norec"
	"repro/internal/tm/sgltm"
)

type lockFactory struct {
	name string
	make func(mem *memory.Memory) mutex.Lock
}

func factories() []lockFactory {
	return []lockFactory{
		{"tas", func(m *memory.Memory) mutex.Lock { return mutex.NewTAS(m) }},
		{"ttas", func(m *memory.Memory) mutex.Lock { return mutex.NewTTAS(m) }},
		{"ticket", func(m *memory.Memory) mutex.Lock { return mutex.NewTicket(m) }},
		{"anderson", func(m *memory.Memory) mutex.Lock { return mutex.NewAnderson(m) }},
		{"mcs", func(m *memory.Memory) mutex.Lock { return mutex.NewMCS(m) }},
		{"clh", func(m *memory.Memory) mutex.Lock { return mutex.NewCLH(m) }},
		{"bakery", func(m *memory.Memory) mutex.Lock { return mutex.NewBakery(m) }},
		{"tournament", func(m *memory.Memory) mutex.Lock { return mutex.NewTournament(m) }},
		{"llsc", func(m *memory.Memory) mutex.Lock { return mutex.NewLLSC(m) }},
		{"lm(irtm)", func(m *memory.Memory) mutex.Lock { return mutex.NewLM(m, irtm.New(m, 1)) }},
		{"lm(norec)", func(m *memory.Memory) mutex.Lock { return mutex.NewLM(m, norec.New(m, 1)) }},
		{"lm(sgltm)", func(m *memory.Memory) mutex.Lock { return mutex.NewLM(m, sgltm.New(m, 1)) }},
	}
}

// TestMutualExclusion model-checks every lock over many seeds and process
// counts: no two processes may be inside the critical section at once, and
// every process completes all its acquisitions (deadlock-freedom under the
// fair random scheduler).
func TestMutualExclusion(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			for _, n := range []int{2, 3, 5} {
				for seed := int64(1); seed <= 8; seed++ {
					testMutex(t, f, n, 5, seed)
				}
			}
		})
	}
}

func testMutex(t *testing.T, f lockFactory, n, k int, seed int64) {
	t.Helper()
	mem := memory.New(n, nil)
	lock := f.make(mem)
	scratch := mem.Alloc("scratch")
	inCS := 0
	completed := make([]int, n)
	s := sched.New(mem)
	for i := 0; i < n; i++ {
		i := i
		s.Go(i, func(p *memory.Proc) {
			for j := 0; j < k; j++ {
				lock.Enter(p)
				inCS++
				if inCS != 1 {
					t.Errorf("%s n=%d seed=%d: %d processes in the critical section", f.name, n, seed, inCS)
				}
				// Take a few steps inside the CS so the scheduler gets
				// chances to interleave a violator.
				p.Write(scratch, uint64(i))
				p.Read(scratch)
				p.Read(scratch)
				inCS--
				lock.Exit(p)
				completed[i]++
			}
		})
	}
	if err := s.Run(sched.NewRandom(seed)); err != nil {
		t.Fatalf("%s n=%d seed=%d: %v", f.name, n, seed, err)
	}
	for i, c := range completed {
		if c != k {
			t.Fatalf("%s n=%d seed=%d: process %d completed %d/%d acquisitions", f.name, n, seed, i, c, k)
		}
	}
}

// TestSoloAcquisition verifies the uncontended fast path of every lock.
func TestSoloAcquisition(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			mem := memory.New(3, nil)
			lock := f.make(mem)
			s := sched.New(mem)
			s.Go(1, func(p *memory.Proc) {
				for j := 0; j < 10; j++ {
					lock.Enter(p)
					lock.Exit(p)
				}
			})
			if err := s.Run(&sched.RoundRobin{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFIFOLocksAreFair verifies that queue-based locks grant the CS in
// arrival order under round-robin scheduling.
func TestFIFOLocksAreFair(t *testing.T) {
	for _, name := range []string{"ticket", "anderson", "mcs", "clh"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var f lockFactory
			for _, c := range factories() {
				if c.name == name {
					f = c
				}
			}
			mem := memory.New(3, nil)
			lock := f.make(mem)
			var order []int
			s := sched.New(mem)
			for i := 0; i < 3; i++ {
				i := i
				s.Go(i, func(p *memory.Proc) {
					for j := 0; j < 3; j++ {
						lock.Enter(p)
						order = append(order, i)
						lock.Exit(p)
					}
				})
			}
			if err := s.Run(&sched.RoundRobin{}); err != nil {
				t.Fatal(err)
			}
			// Under round-robin arrival, consecutive CS grants must cycle
			// through all processes: no process may re-enter while another
			// is queued. Check that between two grants to the same process
			// every other process was granted.
			last := map[int]int{}
			for pos, who := range order {
				if prev, ok := last[who]; ok {
					if pos-prev < 3 {
						t.Fatalf("%s: process %d re-entered after %d grants (order %v): queue lock must be FIFO", name, who, pos-prev, order)
					}
				}
				last[who] = pos
			}
		})
	}
}

// TestLMRejectsWeakTM verifies NewLM's precondition: Algorithm 1 demands a
// strictly serializable, strongly progressive substrate.
func TestLMRejectsWeakTM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLM accepted a non-strongly-progressive TM")
		}
	}()
	mem := memory.New(2, nil)
	mutex.NewLM(mem, weakTM{})
}

// TestLMFiniteExit verifies the finite-exit property: Exit completes in a
// bounded number of steps even when no successor exists.
func TestLMFiniteExit(t *testing.T) {
	mem := memory.New(2, nil)
	lock := mutex.NewLM(mem, irtm.New(mem, 1))
	s := sched.New(mem)
	s.Go(0, func(p *memory.Proc) {
		lock.Enter(p)
		before := p.Steps()
		lock.Exit(p)
		if got := p.Steps() - before; got > 4 {
			t.Errorf("Exit took %d steps, want ≤ 4 (finite exit, no loops)", got)
		}
	})
	if err := s.Run(&sched.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
}

// TestLMTMAccounting verifies that the TM-vs-hand-off split used by
// experiment E4 accounts every step to exactly one side.
func TestLMTMAccounting(t *testing.T) {
	mem := memory.New(2, nil)
	lock := mutex.NewLM(mem, irtm.New(mem, 1))
	s := sched.New(mem)
	for i := 0; i < 2; i++ {
		s.Go(i, func(p *memory.Proc) {
			for j := 0; j < 5; j++ {
				lock.Enter(p)
				lock.Exit(p)
			}
		})
	}
	if err := s.Run(sched.NewRandom(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		p := mem.Proc(i)
		if lock.TMSteps(i) == 0 {
			t.Errorf("process %d: no steps attributed to the TM", i)
		}
		if lock.TMSteps(i) > p.Steps() {
			t.Errorf("process %d: TM steps %d exceed total %d", i, lock.TMSteps(i), p.Steps())
		}
	}
}

// weakTM is a stub TM that declares no useful properties; only NewLM's
// precondition check touches it.
type weakTM struct{}

func (weakTM) Name() string                { return "weak" }
func (weakTM) NumObjects() int             { return 1 }
func (weakTM) Begin(p *memory.Proc) tm.Txn { panic("unused") }
func (weakTM) Props() tm.Props             { return tm.Props{} }
