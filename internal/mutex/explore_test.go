package mutex_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/memory"
	"repro/internal/mutex"
	"repro/internal/sched"
	"repro/internal/tm/irtm"
	"repro/internal/tm/norec"
)

// TestExhaustiveMutualExclusion model-checks mutual exclusion *exhaustively*
// (not just under random seeds) for two processes and one acquisition each,
// over every schedule with at most two preemptions. A violation panics
// inside the critical section, so it is caught even in runs that the
// explorer would otherwise truncate.
func TestExhaustiveMutualExclusion(t *testing.T) {
	type mk struct {
		name string
		make func(mem *memory.Memory) mutex.Lock
	}
	for _, c := range []mk{
		{"lm(irtm)", func(m *memory.Memory) mutex.Lock { return mutex.NewLM(m, irtm.New(m, 1)) }},
		{"lm(norec)", func(m *memory.Memory) mutex.Lock { return mutex.NewLM(m, norec.New(m, 1)) }},
		{"tas", func(m *memory.Memory) mutex.Lock { return mutex.NewTAS(m) }},
		{"mcs", func(m *memory.Memory) mutex.Lock { return mutex.NewMCS(m) }},
		{"tournament", func(m *memory.Memory) mutex.Lock { return mutex.NewTournament(m) }},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			build := func() (*sched.Scheduler, func() error) {
				mem := memory.New(2, nil)
				lock := c.make(mem)
				scratch := mem.Alloc("cs.scratch")
				inCS := 0
				s := sched.New(mem)
				for i := 0; i < 2; i++ {
					s.Go(i, func(p *memory.Proc) {
						lock.Enter(p)
						inCS++
						if inCS > 1 {
							panic(fmt.Sprintf("%s: mutual exclusion violated", c.name))
						}
						p.Read(scratch) // CS interleaving point
						inCS--
						lock.Exit(p)
					})
				}
				return s, func() error { return nil }
			}
			res, err := sched.Explore(build, sched.ExploreOpts{MaxPreemptions: 2, MaxRuns: 60_000})
			if err != nil {
				t.Fatalf("violation found: %v", err)
			}
			t.Logf("%s: %d runs (%d truncated), exhausted=%v", c.name, res.Runs, res.Truncated, res.Exhausted)
			if res.Runs < 10 {
				t.Fatalf("only %d runs; exploration did not branch", res.Runs)
			}
		})
	}
}

// TestExploreFindsBrokenLM plants a bug in the hand-off (skipping the Done
// check, entering without waiting) and verifies the explorer exposes it —
// evidence that the exhaustive pass above is discriminating.
func TestExploreFindsBrokenLM(t *testing.T) {
	build := func() (*sched.Scheduler, func() error) {
		mem := memory.New(2, nil)
		tmi := irtm.New(mem, 1)
		lock := mutex.NewLM(mem, tmi)
		scratch := mem.Alloc("cs.scratch")
		inCS := 0
		s := sched.New(mem)
		for i := 0; i < 2; i++ {
			s.Go(i, func(p *memory.Proc) {
				brokenEnter := func() {
					// Buggy entry: enqueue via the TM but never wait for
					// the predecessor.
					for {
						tx := tmi.Begin(p)
						_, err := tx.Read(0)
						if err == nil {
							err = tx.Write(0, uint64(p.ID())+1)
						}
						if err == nil {
							err = tx.Commit()
						}
						if err == nil {
							return
						}
						tx.Abort()
					}
				}
				brokenEnter()
				inCS++
				if inCS > 1 {
					panic("broken LM: mutual exclusion violated")
				}
				p.Read(scratch)
				inCS--
				lock.Exit(p)
			})
		}
		return s, func() error { return nil }
	}
	_, err := sched.Explore(build, sched.ExploreOpts{MaxPreemptions: 2, MaxRuns: 60_000})
	var ee *sched.ErrExplore
	if !errors.As(err, &ee) {
		t.Fatalf("explorer did not find the planted hand-off bug (err=%v)", err)
	}
}
