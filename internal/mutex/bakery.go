package mutex

import (
	"fmt"

	"repro/internal/memory"
)

// Bakery is Lamport's bakery lock: mutual exclusion from reads and writes
// only (no conditional primitives), with FIFO fairness by ticket. Every
// acquisition scans all n processes' registers, so it incurs Θ(n) RMRs per
// acquisition in every model — the classic register-only reference point
// against which the Ω(n log n) bound for read/write/conditional algorithms
// is read.
type Bakery struct {
	n        int
	choosing []*memory.Obj // choosing[i], home i
	number   []*memory.Obj // number[i], home i
}

// NewBakery allocates a bakery lock for all processes of mem.
func NewBakery(mem *memory.Memory) *Bakery {
	n := mem.NumProcs()
	l := &Bakery{n: n}
	l.choosing = make([]*memory.Obj, n)
	l.number = make([]*memory.Obj, n)
	for i := 0; i < n; i++ {
		l.choosing[i] = mem.AllocAt(fmt.Sprintf("bakery.choosing[%d]", i), i)
		l.number[i] = mem.AllocAt(fmt.Sprintf("bakery.number[%d]", i), i)
	}
	return l
}

// Name implements Lock.
func (*Bakery) Name() string { return "bakery" }

// Enter implements Lock.
func (l *Bakery) Enter(p *memory.Proc) {
	i := p.ID()
	p.Write(l.choosing[i], 1)
	max := uint64(0)
	for j := 0; j < l.n; j++ {
		if v := p.Read(l.number[j]); v > max {
			max = v
		}
	}
	mine := max + 1
	p.Write(l.number[i], mine)
	p.Write(l.choosing[i], 0)
	for j := 0; j < l.n; j++ {
		if j == i {
			continue
		}
		for p.Read(l.choosing[j]) == 1 {
		}
		for {
			nj := p.Read(l.number[j])
			// Proceed when j is not competing or (number, id) orders us
			// first; ties break by process id.
			if nj == 0 || nj > mine || (nj == mine && j > i) {
				break
			}
		}
	}
}

// Exit implements Lock.
func (l *Bakery) Exit(p *memory.Proc) {
	p.Write(l.number[p.ID()], 0)
}
