package mutex

import (
	"fmt"

	"repro/internal/memory"
)

// Tournament is a Peterson tournament-tree lock: a complete binary tree of
// two-process Peterson locks; each process climbs its leaf-to-root path,
// winning one two-way duel per level. Acquisitions cost Θ(log n) RMRs in
// the CC models — the per-acquisition shape matching the amortized
// Ω(log n) of the Attiya–Hendler–Woelfel bound that Theorem 9 inherits.
// It uses reads and writes only.
type Tournament struct {
	n2 int // number of leaves: n rounded up to a power of two
	// Per internal node (heap-indexed 1..n2-1): two flags and a turn word.
	flag [][2]*memory.Obj
	turn []*memory.Obj
}

// NewTournament allocates a tournament lock for all processes of mem.
func NewTournament(mem *memory.Memory) *Tournament {
	n2 := 1
	for n2 < mem.NumProcs() {
		n2 *= 2
	}
	if n2 < 2 {
		n2 = 2
	}
	l := &Tournament{n2: n2}
	l.flag = make([][2]*memory.Obj, n2)
	l.turn = make([]*memory.Obj, n2)
	for node := 1; node < n2; node++ {
		l.flag[node][0] = mem.Alloc(fmt.Sprintf("tournament.flag[%d][0]", node))
		l.flag[node][1] = mem.Alloc(fmt.Sprintf("tournament.flag[%d][1]", node))
		l.turn[node] = mem.Alloc(fmt.Sprintf("tournament.turn[%d]", node))
	}
	return l
}

// Name implements Lock.
func (*Tournament) Name() string { return "tournament" }

// Enter implements Lock: climb from the leaf slot to the root, acquiring
// the Peterson lock at each internal node.
func (l *Tournament) Enter(p *memory.Proc) {
	pos := l.n2 + p.ID()
	for pos > 1 {
		node, side := pos/2, pos%2
		p.Write(l.flag[node][side], 1)
		p.Write(l.turn[node], uint64(side))
		for p.Read(l.flag[node][1-side]) == 1 && p.Read(l.turn[node]) == uint64(side) {
		}
		pos = node
	}
}

// Exit implements Lock: release the path root-to-leaf (reverse acquisition
// order).
func (l *Tournament) Exit(p *memory.Proc) {
	// Recompute the leaf-to-root path, then walk it top-down.
	var path []int
	pos := l.n2 + p.ID()
	for pos > 1 {
		path = append(path, pos)
		pos /= 2
	}
	for i := len(path) - 1; i >= 0; i-- {
		node, side := path[i]/2, path[i]%2
		p.Write(l.flag[node][side], 0)
	}
}
