package backoff

import "testing"

// TestJitterBounds: the jittered draw never leaves [d/2, d] for the
// capped sleep, so the schedule keeps its exponential envelope.
func TestJitterBounds(t *testing.T) {
	SetSeed(1)
	for i := 0; i < 10000; i++ {
		d := Cap
		half := d / 2
		j := uint64(half) + (nextRand() % uint64(half+1))
		if j < uint64(half) || j > uint64(d) {
			t.Fatalf("jittered sleep %d outside [%d, %d]", j, half, d)
		}
	}
}

// TestJitterDeterministicSeed: the same seed replays the same draw
// sequence, and the draws are not constant (there is actual jitter).
func TestJitterDeterministicSeed(t *testing.T) {
	draw := func(seed uint64, n int) []uint64 {
		SetSeed(seed)
		out := make([]uint64, n)
		for i := range out {
			out[i] = nextRand()
		}
		return out
	}
	a, b := draw(42, 64), draw(42, 64)
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs under the same seed: %d vs %d", i, a[i], b[i])
		}
		if i > 0 && a[i] != a[i-1] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter draws are constant")
	}
	c := draw(43, 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

// TestAttemptSpinAndYieldPhases: the early phases must not sleep (they
// are the common transient-conflict path); this just exercises them.
func TestAttemptSpinAndYieldPhases(t *testing.T) {
	SetSeed(7)
	for n := 0; n < 12; n++ {
		Attempt(n)
	}
}
