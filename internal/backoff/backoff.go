// Package backoff provides the capped exponential backoff shared by the
// native STM engines' retry loops (repro/stm and repro/stm/norecstm): the
// contention-management schedule is engine policy, kept in one place so
// the engines cannot silently diverge.
package backoff

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Cap bounds the sleep between conflicting attempts.
const Cap = 64 * time.Microsecond

// rngState drives the jitter PRNG: a shared splitmix64 counter, stepped
// with one atomic add per sleep, so concurrent retriers draw decorrelated
// values without any per-goroutine state.
var rngState atomic.Uint64

// SetSeed resets the jitter PRNG to a deterministic seed. The schedule is
// always jittered; the knob exists so tests that depend on a reproducible
// sleep sequence can pin it. Call it only from quiescent test setup.
func SetSeed(seed uint64) { rngState.Store(seed) }

// nextRand returns the next jitter draw (splitmix64 over a shared
// counter: the add hands every caller a distinct stream position).
func nextRand() uint64 {
	z := rngState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Attempt applies the schedule for the given zero-based retry attempt:
// the first couple of retries spin (most conflicts are transient), the
// next few yield the processor, and beyond that each attempt sleeps a
// jittered duration drawn uniformly from [d/2, d], where d is 1µs doubled
// per attempt up to Cap. The jitter breaks synchronized retry herds: a
// batch of transactions aborted by the same commit would otherwise wake
// on the same schedule and collide again, attempt after attempt.
func Attempt(n int) {
	switch {
	case n < 2:
		// retry immediately
	case n < 8:
		runtime.Gosched()
	default:
		d := time.Microsecond << uint(min(n-8, 20))
		if d > Cap {
			d = Cap
		}
		half := d / 2
		time.Sleep(half + time.Duration(nextRand()%uint64(half+1)))
	}
}
