// Package backoff provides the capped exponential backoff shared by the
// native STM engines' retry loops (repro/stm and repro/stm/norecstm): the
// contention-management schedule is engine policy, kept in one place so
// the engines cannot silently diverge.
package backoff

import (
	"runtime"
	"time"
)

// Cap bounds the sleep between conflicting attempts.
const Cap = 64 * time.Microsecond

// Attempt applies the schedule for the given zero-based retry attempt:
// the first couple of retries spin (most conflicts are transient), the
// next few yield the processor, and beyond that each attempt sleeps 1µs
// doubled per attempt up to Cap, settling contended commits into a
// livelock-free cadence instead of hammering the same words.
func Attempt(n int) {
	switch {
	case n < 2:
		// retry immediately
	case n < 8:
		runtime.Gosched()
	default:
		d := time.Microsecond << uint(min(n-8, 20))
		if d > Cap {
			d = Cap
		}
		time.Sleep(d)
	}
}
