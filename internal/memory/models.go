package memory

// Model classifies each primitive application as local or as a remote memory
// reference (RMR), per Section 5 of the paper. Access reports whether the
// access by process p to object o is an RMR, updating the model's cache
// bookkeeping stored on the object. nontrivial marks write-like primitives
// (write, CAS, fetch-and-add, swap); changed reports whether the primitive
// actually changed the object's value.
type Model interface {
	Name() string
	Access(p int, o *Obj, nontrivial, changed bool) bool
}

// WriteThroughCC is the write-through cache-coherent model: a read is local
// iff the process holds a valid cached copy; a write always goes to main
// memory (RMR) and invalidates all other cached copies, leaving the writer
// with a valid copy. A nontrivial primitive that does not change the value
// (e.g. a failed CAS) still performs the memory round-trip but invalidates
// nothing.
type WriteThroughCC struct{}

// Name implements Model.
func (WriteThroughCC) Name() string { return "cc-wt" }

// Access implements Model.
func (WriteThroughCC) Access(p int, o *Obj, nontrivial, changed bool) bool {
	bit := uint64(1) << uint(p)
	if !nontrivial {
		if o.cached&bit != 0 {
			return false
		}
		o.cached |= bit
		return true
	}
	if changed {
		o.cached = bit // invalidate every other copy
	} else {
		o.cached |= bit
	}
	return true
}

// WriteBackCC is the write-back cache-coherent model: a read is local if the
// process holds the object in shared or exclusive mode; otherwise it incurs
// an RMR that demotes any exclusive holder to shared and installs a shared
// copy. A write (or any nontrivial primitive) is local only in exclusive
// mode; otherwise it incurs an RMR that invalidates all copies and acquires
// exclusive mode.
type WriteBackCC struct{}

// Name implements Model.
func (WriteBackCC) Name() string { return "cc-wb" }

// Access implements Model.
func (WriteBackCC) Access(p int, o *Obj, nontrivial, changed bool) bool {
	bit := uint64(1) << uint(p)
	if !nontrivial {
		if o.excl == p || o.cached&bit != 0 {
			return false
		}
		if o.excl >= 0 {
			o.cached |= uint64(1) << uint(o.excl) // demote to shared
			o.excl = -1
		}
		o.cached |= bit
		return true
	}
	if o.excl == p {
		return false
	}
	o.cached = 0
	o.excl = p
	return true
}

// DSM is the distributed shared memory model: every object is assigned to a
// single process (its home) at allocation time; any access by another
// process is an RMR. Objects allocated in global memory (home -1) are
// remote to every process.
type DSM struct{}

// Name implements Model.
func (DSM) Name() string { return "dsm" }

// Access implements Model.
func (DSM) Access(p int, o *Obj, nontrivial, changed bool) bool {
	return o.home != p
}

// Models returns one instance of every cache model, in the order the paper
// introduces them.
func Models() []Model {
	return []Model{WriteThroughCC{}, WriteBackCC{}, DSM{}}
}

// ModelByName returns the model with the given Name, or nil.
func ModelByName(name string) Model {
	for _, m := range Models() {
		if m.Name() == name {
			return m
		}
	}
	return nil
}
