package memory

import (
	"testing"
	"testing/quick"
)

func TestPrimitivesSemantics(t *testing.T) {
	m := New(2, nil)
	p := m.Proc(0)
	o := m.Alloc("x")

	if v := p.Read(o); v != 0 {
		t.Fatalf("initial Read = %d, want 0", v)
	}
	p.Write(o, 7)
	if v := p.Read(o); v != 7 {
		t.Fatalf("Read after Write = %d, want 7", v)
	}
	if !p.CAS(o, 7, 9) {
		t.Fatal("CAS(7→9) failed with value 7")
	}
	if p.CAS(o, 7, 11) {
		t.Fatal("CAS(7→11) succeeded with value 9")
	}
	if prev := p.FetchAdd(o, 5); prev != 9 {
		t.Fatalf("FetchAdd returned %d, want 9", prev)
	}
	if prev := p.Swap(o, 100); prev != 14 {
		t.Fatalf("Swap returned %d, want 14", prev)
	}
	if v := p.Read(o); v != 100 {
		t.Fatalf("final value %d, want 100", v)
	}
}

func TestStepAccounting(t *testing.T) {
	m := New(2, nil)
	p0, p1 := m.Proc(0), m.Proc(1)
	o := m.Alloc("x")
	p0.Read(o)
	p0.Write(o, 1)
	p1.CAS(o, 1, 2)
	if p0.Steps() != 2 || p1.Steps() != 1 {
		t.Fatalf("steps = %d, %d; want 2, 1", p0.Steps(), p1.Steps())
	}
	if m.TotalSteps() != 3 {
		t.Fatalf("TotalSteps = %d, want 3", m.TotalSteps())
	}
}

func TestSpanAttribution(t *testing.T) {
	m := New(1, nil)
	p := m.Proc(0)
	a, b := m.Alloc("a"), m.Alloc("b")
	sp := p.BeginSpan("op")
	p.Read(a)
	p.Read(a)
	p.Write(b, 1)
	got := p.EndSpan()
	if got != sp {
		t.Fatal("EndSpan returned a different span")
	}
	if sp.Steps != 3 || sp.Nontrivial != 1 {
		t.Fatalf("span steps=%d nontrivial=%d; want 3, 1", sp.Steps, sp.Nontrivial)
	}
	if sp.DistinctObjects() != 2 || !sp.Touched(a) || !sp.Touched(b) {
		t.Fatalf("span distinct=%d touched(a)=%v touched(b)=%v; want 2, true, true",
			sp.DistinctObjects(), sp.Touched(a), sp.Touched(b))
	}
	p.Read(a) // outside any span
	if sp.Steps != 3 {
		t.Fatal("accesses after EndSpan leaked into the span")
	}
}

func TestWriteThroughRMRs(t *testing.T) {
	m := New(2, WriteThroughCC{})
	p0, p1 := m.Proc(0), m.Proc(1)
	o := m.Alloc("x")

	p0.Read(o) // cold: RMR
	p0.Read(o) // cached: local
	if p0.RMRs() != 1 {
		t.Fatalf("after two reads, RMRs = %d, want 1", p0.RMRs())
	}
	p1.Write(o, 1) // RMR, invalidates p0's copy
	if p1.RMRs() != 1 {
		t.Fatalf("writer RMRs = %d, want 1", p1.RMRs())
	}
	p0.Read(o) // invalidated: RMR again
	if p0.RMRs() != 2 {
		t.Fatalf("after invalidation, reader RMRs = %d, want 2", p0.RMRs())
	}
	p1.Write(o, 2) // write-through: always RMR, even by the last writer
	if p1.RMRs() != 2 {
		t.Fatalf("repeat writer RMRs = %d, want 2", p1.RMRs())
	}
}

func TestWriteBackRMRs(t *testing.T) {
	m := New(3, WriteBackCC{})
	p0, p1, p2 := m.Proc(0), m.Proc(1), m.Proc(2)
	o := m.Alloc("x")

	p0.Write(o, 1) // RMR: acquire exclusive
	p0.Write(o, 2) // local: already exclusive
	if p0.RMRs() != 1 {
		t.Fatalf("exclusive writer RMRs = %d, want 1", p0.RMRs())
	}
	p1.Read(o) // RMR: demotes p0 to shared
	p1.Read(o) // local
	if p1.RMRs() != 1 {
		t.Fatalf("reader RMRs = %d, want 1", p1.RMRs())
	}
	p0.Read(o) // local: p0 still holds a shared copy after demotion
	if p0.RMRs() != 1 {
		t.Fatalf("demoted writer read RMRs = %d, want 1", p0.RMRs())
	}
	p2.Write(o, 3) // RMR: invalidates both shared copies
	p0.Read(o)     // RMR
	p1.Read(o)     // RMR
	if p0.RMRs() != 2 || p1.RMRs() != 2 {
		t.Fatalf("post-invalidation RMRs = %d, %d; want 2, 2", p0.RMRs(), p1.RMRs())
	}
}

func TestDSMRMRs(t *testing.T) {
	m := New(2, DSM{})
	p0, p1 := m.Proc(0), m.Proc(1)
	local := m.AllocAt("local0", 0)
	global := m.Alloc("global")

	p0.Read(local)
	p0.Write(local, 1)
	if p0.RMRs() != 0 {
		t.Fatalf("home-process accesses incurred %d RMRs, want 0", p0.RMRs())
	}
	p1.Read(local)
	if p1.RMRs() != 1 {
		t.Fatalf("remote access RMRs = %d, want 1", p1.RMRs())
	}
	p0.Read(global)
	p0.Read(global) // DSM has no caching: every global access is remote
	if p0.RMRs() != 2 {
		t.Fatalf("global-memory RMRs = %d, want 2", p0.RMRs())
	}
}

// TestDSMProperty property-checks the DSM definition: an access is an RMR
// iff the object's home differs from the accessing process.
func TestDSMProperty(t *testing.T) {
	prop := func(homeRaw, procRaw uint8, write bool) bool {
		m := New(4, DSM{})
		home := int(homeRaw%5) - 1 // -1..3
		proc := int(procRaw % 4)
		o := m.AllocAt("o", home)
		p := m.Proc(proc)
		before := p.RMRs()
		if write {
			p.Write(o, 1)
		} else {
			p.Read(o)
		}
		gotRMR := p.RMRs()-before == 1
		return gotRMR == (home != proc)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteThroughReadCachingProperty: under CC-WT, two consecutive reads
// by the same process with no interleaved foreign write cost exactly one
// RMR, for arbitrary prior access sequences.
func TestWriteThroughReadCachingProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		m := New(3, WriteThroughCC{})
		o := m.Alloc("x")
		for _, op := range ops {
			p := m.Proc(int(op % 3))
			if op&4 == 0 {
				p.Read(o)
			} else {
				p.Write(o, uint64(op))
			}
		}
		p := m.Proc(0)
		p.Read(o) // may or may not be an RMR
		before := p.RMRs()
		p.Read(o) // must be local
		return p.RMRs() == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressing(t *testing.T) {
	m := New(1, nil)
	a := m.Alloc("a")
	b := m.Alloc("b")
	if m.ObjAt(a.Addr()) != a || m.ObjAt(b.Addr()) != b {
		t.Fatal("ObjAt(Addr) did not round-trip")
	}
	if m.ObjAt(0) != nil {
		t.Fatal("ObjAt(0) must be the nil pointer")
	}
	p := m.Proc(0)
	p.Write(a, b.Addr()) // store a pointer in memory
	if m.ObjAt(p.Read(a)) != b {
		t.Fatal("pointer stored in memory did not resolve")
	}
}

func TestResetCounters(t *testing.T) {
	m := New(2, WriteThroughCC{})
	o := m.Alloc("x")
	p := m.Proc(0)
	p.Write(o, 5)
	m.ResetCounters()
	if p.Steps() != 0 || p.RMRs() != 0 {
		t.Fatal("counters not reset")
	}
	if m.Peek(o) != 5 {
		t.Fatal("ResetCounters must preserve values")
	}
	p.Read(o)
	if p.RMRs() != 1 {
		t.Fatal("cache state must be cold after reset")
	}
}

func TestLLSCSemantics(t *testing.T) {
	m := New(2, nil)
	p0, p1 := m.Proc(0), m.Proc(1)
	o := m.Alloc("x")

	// Uninterrupted LL/SC succeeds.
	if v := p0.LL(o); v != 0 {
		t.Fatalf("LL = %d, want 0", v)
	}
	if !p0.SC(o, 5) {
		t.Fatal("uninterrupted SC failed")
	}
	// SC without a fresh LL fails (the link was consumed).
	if p0.SC(o, 6) {
		t.Fatal("SC succeeded without a link")
	}
	// An intervening write by another process breaks the link.
	p0.LL(o)
	p1.Write(o, 7)
	if p0.SC(o, 8) {
		t.Fatal("SC succeeded across an intervening write")
	}
	// An intervening *silent* write (same value) preserves the link: the
	// object's value did not change.
	p0.LL(o)
	p1.Write(o, 7)
	if !p0.SC(o, 9) {
		t.Fatal("SC failed although the value never changed")
	}
	// Two linked processes: a successful SC by one breaks the other's link.
	p0.LL(o)
	p1.LL(o)
	if !p1.SC(o, 10) {
		t.Fatal("first SC failed")
	}
	if p0.SC(o, 11) {
		t.Fatal("second SC succeeded after a successful competing SC")
	}
}

// TestLLSCAtomicIncrementProperty: concurrent LL/SC increment loops lose no
// updates, for arbitrary interleavings — the defining property of the
// primitive pair.
func TestLLSCAtomicIncrementProperty(t *testing.T) {
	prop := func(schedule []bool) bool {
		m := New(2, nil)
		o := m.Alloc("ctr")
		// Drive two incrementer state machines step by step according to
		// the schedule bits (true = proc 1).
		type state struct {
			p      *Proc
			linked bool
			seen   uint64
			done   int
		}
		procs := [2]*state{{p: m.Proc(0)}, {p: m.Proc(1)}}
		want := 0
		for _, bit := range schedule {
			s := procs[0]
			if bit {
				s = procs[1]
			}
			if !s.linked {
				s.seen = s.p.LL(o)
				s.linked = true
			} else {
				if s.p.SC(o, s.seen+1) {
					s.done++
					want++
				}
				s.linked = false
			}
		}
		return m.Peek(o) == uint64(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
