// Package memory implements the asynchronous shared-memory substrate of the
// paper: a word-addressed memory of base objects on which processes apply
// read-modify-write primitives (read, write, compare-and-swap, fetch-and-add,
// swap). Every primitive application is accounted as one step of the applying
// process, attributed to the process's current span (a labelled t-operation),
// and classified as local or as a remote memory reference (RMR) by a
// pluggable cache model (write-through CC, write-back CC, or DSM).
//
// The simulator is single-threaded by construction: either primitives are
// invoked sequentially (step contention-free fragments, as in the executions
// of Lemma 2), or a cooperative scheduler grants one process at a time via
// the per-process yield hook. Memory is therefore sequentially consistent,
// matching the paper's model.
package memory

import "fmt"

// MaxProcs bounds the number of processes per Memory. Cache models keep
// per-object process sets as 64-bit masks.
const MaxProcs = 64

// Obj is a base object: one word of simulated shared memory.
type Obj struct {
	id   uint64 // 1-based arena index; doubles as the object's address
	name string
	val  uint64

	// Cache-model state. cached is a bitmask of processes holding a valid
	// copy (shared mode for write-back); excl is the process holding the
	// object in exclusive mode, or -1. home is the DSM home process, or -1
	// for objects in global memory (remote to every process).
	cached uint64
	excl   int
	home   int

	// links is the bitmask of processes holding an intact load-link on
	// this object; any change to the value breaks all links.
	links uint64
}

// Addr returns the object's address: a non-zero word that can itself be
// stored in memory, enabling pointer-based algorithms (queue locks,
// locators) on the simulated heap.
func (o *Obj) Addr() uint64 { return o.id }

// Name returns the diagnostic name given at allocation.
func (o *Obj) Name() string { return o.name }

// Home returns the DSM home process of the object, or -1 if it lives in
// global memory.
func (o *Obj) Home() int { return o.home }

// Memory is an arena of base objects shared by a fixed set of processes.
type Memory struct {
	model  Model
	nprocs int
	objs   []*Obj
	procs  []*Proc
}

// New creates a memory shared by nprocs processes, with RMRs accounted under
// the given cache model. A nil model disables RMR accounting (steps are
// still counted).
func New(nprocs int, model Model) *Memory {
	if nprocs <= 0 || nprocs > MaxProcs {
		panic(fmt.Sprintf("memory: nprocs %d out of range [1,%d]", nprocs, MaxProcs))
	}
	m := &Memory{model: model, nprocs: nprocs}
	m.procs = make([]*Proc, nprocs)
	for i := range m.procs {
		m.procs[i] = &Proc{m: m, id: i}
	}
	return m
}

// NumProcs returns the number of processes sharing this memory.
func (m *Memory) NumProcs() int { return m.nprocs }

// Model returns the cache model, or nil if RMR accounting is disabled.
func (m *Memory) Model() Model { return m.model }

// Proc returns the handle of process i.
func (m *Memory) Proc(i int) *Proc { return m.procs[i] }

// Alloc allocates a fresh base object in global memory (no DSM home) with
// initial value 0.
func (m *Memory) Alloc(name string) *Obj { return m.AllocAt(name, -1) }

// AllocAt allocates a fresh base object whose DSM home is process home
// (-1 for global memory). Under the CC models the home is irrelevant.
func (m *Memory) AllocAt(name string, home int) *Obj {
	if home < -1 || home >= m.nprocs {
		panic(fmt.Sprintf("memory: AllocAt(%q): bad home %d", name, home))
	}
	o := &Obj{id: uint64(len(m.objs) + 1), name: name, excl: -1, home: home}
	m.objs = append(m.objs, o)
	return o
}

// AllocArray allocates n fresh global-memory objects named name[0..n-1].
func (m *Memory) AllocArray(name string, n int) []*Obj {
	objs := make([]*Obj, n)
	for i := range objs {
		objs[i] = m.AllocAt(fmt.Sprintf("%s[%d]", name, i), -1)
	}
	return objs
}

// ObjAt resolves an address previously obtained from Obj.Addr. It returns
// nil for the zero address (the simulated nil pointer).
func (m *Memory) ObjAt(addr uint64) *Obj {
	if addr == 0 {
		return nil
	}
	if addr > uint64(len(m.objs)) {
		panic(fmt.Sprintf("memory: dangling address %d", addr))
	}
	return m.objs[addr-1]
}

// NumObjs returns the number of allocated base objects.
func (m *Memory) NumObjs() int { return len(m.objs) }

// Peek returns the current value of o without accounting a step. It is for
// test assertions and debugging only; algorithms must use Proc primitives.
func (m *Memory) Peek(o *Obj) uint64 { return o.val }

// Poke sets the value of o without accounting a step, for test setup only.
func (m *Memory) Poke(o *Obj, v uint64) { o.val = v }

// ResetCounters zeroes all step and RMR counters and cache state, keeping
// object values. Used to exclude setup cost from measurements.
func (m *Memory) ResetCounters() {
	for _, p := range m.procs {
		p.steps, p.rmrs = 0, 0
		p.span = nil
	}
	for _, o := range m.objs {
		o.cached, o.excl = 0, -1
	}
}

// TotalSteps returns the sum of steps over all processes.
func (m *Memory) TotalSteps() uint64 {
	var s uint64
	for _, p := range m.procs {
		s += p.steps
	}
	return s
}

// TotalRMRs returns the sum of RMRs over all processes.
func (m *Memory) TotalRMRs() uint64 {
	var s uint64
	for _, p := range m.procs {
		s += p.rmrs
	}
	return s
}

// Proc is a process's handle onto the shared memory. All primitives must be
// invoked through a Proc so that steps and RMRs are attributed correctly.
type Proc struct {
	m        *Memory
	id       int
	steps    uint64
	rmrs     uint64
	span     *Span
	yield    func()
	observer func(o *Obj, nontrivial bool)
}

// ID returns the process identifier in [0, NumProcs).
func (p *Proc) ID() int { return p.id }

// Memory returns the shared memory this process operates on.
func (p *Proc) Memory() *Memory { return p.m }

// Steps returns the number of primitive applications by this process.
func (p *Proc) Steps() uint64 { return p.steps }

// RMRs returns the number of remote memory references incurred by this
// process under the memory's cache model.
func (p *Proc) RMRs() uint64 { return p.rmrs }

// SetYield installs a hook invoked before every primitive application; the
// cooperative scheduler uses it to serialize processes. A nil hook (the
// default) runs primitives immediately.
func (p *Proc) SetYield(f func()) { p.yield = f }

// SetObserver installs a hook invoked after every primitive application by
// this process, with the object accessed and whether the primitive was
// nontrivial. The history recorder uses it to attribute base-object
// accesses to t-operations (for the DAP and invisible-reads checkers).
// Observers must not apply primitives themselves.
func (p *Proc) SetObserver(f func(o *Obj, nontrivial bool)) { p.observer = f }

// account charges one step (and possibly one RMR) for an access to o.
func (p *Proc) account(o *Obj, nontrivial, changed bool) {
	p.steps++
	if sp := p.span; sp != nil {
		sp.Steps++
		if nontrivial {
			sp.Nontrivial++
		}
		sp.touch(o)
	}
	if p.m.model != nil {
		if p.m.model.Access(p.id, o, nontrivial, changed) {
			p.rmrs++
			if sp := p.span; sp != nil {
				sp.RMRs++
			}
		}
	}
	if p.observer != nil {
		p.observer(o, nontrivial)
	}
}

func (p *Proc) pre() {
	if p.yield != nil {
		p.yield()
	}
}

// Read applies the trivial read primitive to o and returns its value.
func (p *Proc) Read(o *Obj) uint64 {
	p.pre()
	p.account(o, false, false)
	return o.val
}

// Write applies the write primitive, setting o to v.
func (p *Proc) Write(o *Obj, v uint64) {
	p.pre()
	p.account(o, true, o.val != v)
	if o.val != v {
		o.links = 0
	}
	o.val = v
}

// CAS applies compare-and-swap: if o holds old it is set to new and CAS
// reports true. CAS is a nontrivial conditional primitive in the paper's
// taxonomy.
func (p *Proc) CAS(o *Obj, old, new uint64) bool {
	p.pre()
	ok := o.val == old
	p.account(o, true, ok && old != new)
	if ok {
		if old != new {
			o.links = 0
		}
		o.val = new
	}
	return ok
}

// FetchAdd applies fetch-and-add, returning the previous value. It is a
// nontrivial, non-conditional primitive.
func (p *Proc) FetchAdd(o *Obj, delta uint64) uint64 {
	p.pre()
	prev := o.val
	p.account(o, true, delta != 0)
	if delta != 0 {
		o.links = 0
	}
	o.val = prev + delta
	return prev
}

// Swap applies fetch-and-store, returning the previous value.
func (p *Proc) Swap(o *Obj, v uint64) uint64 {
	p.pre()
	prev := o.val
	p.account(o, true, prev != v)
	if prev != v {
		o.links = 0
	}
	o.val = v
	return prev
}

// LL applies load-linked: a trivial read that additionally links the
// process to o. The link survives until the object's value changes (by
// any process's primitive) or the process's own SC.
func (p *Proc) LL(o *Obj) uint64 {
	p.pre()
	p.account(o, false, false)
	o.links |= uint64(1) << uint(p.id)
	return o.val
}

// SC applies store-conditional: it writes v and reports true iff the
// process's link from its last LL on o is intact. SC consumes the link
// either way; a successful SC that changes the value breaks all links.
// LL/SC is the other nontrivial conditional primitive named by the paper
// alongside compare-and-swap.
func (p *Proc) SC(o *Obj, v uint64) bool {
	p.pre()
	bit := uint64(1) << uint(p.id)
	ok := o.links&bit != 0
	p.account(o, true, ok && o.val != v)
	o.links &^= bit
	if ok {
		if o.val != v {
			o.links = 0
		}
		o.val = v
	}
	return ok
}
