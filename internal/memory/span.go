package memory

// Span attributes steps, RMRs and the set of distinct base objects touched
// to a labelled region of a process's execution — typically one t-operation
// (e.g. "read#7" or "tryC"). Theorem 3(2) is stated in terms of the number
// of distinct base objects accessed during the last t-read and tryCommit,
// which is exactly len(span.Objects).
type Span struct {
	Label      string
	Steps      uint64
	Nontrivial uint64
	RMRs       uint64
	objs       map[uint64]struct{}
}

func (sp *Span) touch(o *Obj) {
	if sp.objs == nil {
		sp.objs = make(map[uint64]struct{})
	}
	sp.objs[o.id] = struct{}{}
}

// DistinctObjects reports how many distinct base objects were accessed
// during the span.
func (sp *Span) DistinctObjects() int { return len(sp.objs) }

// Touched reports whether the span accessed the given object.
func (sp *Span) Touched(o *Obj) bool {
	_, ok := sp.objs[o.id]
	return ok
}

// BeginSpan starts attributing the process's accesses to a new span,
// returning it. Spans do not nest; beginning a span ends the previous one.
func (p *Proc) BeginSpan(label string) *Span {
	sp := &Span{Label: label}
	p.span = sp
	return sp
}

// EndSpan stops span attribution and returns the finished span (nil if none
// was active).
func (p *Proc) EndSpan() *Span {
	sp := p.span
	p.span = nil
	return sp
}

// CurrentSpan returns the active span, or nil.
func (p *Proc) CurrentSpan() *Span { return p.span }
