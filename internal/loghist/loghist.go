// Package loghist is the repo's shared lock-free log2 histogram: bucket
// i counts observations v with bits.Len64(v) == i, so bucket 0 holds
// zeros and bucket i (i ≥ 1) holds v ∈ [2^(i-1), 2^i). Values are
// whatever unit the caller observes — the serving tier records request
// microseconds, the engines record commit-latency microseconds and
// attempts-per-commit — and quantiles come back as the bucket's upper
// bound, an overestimate by at most 2×. That resolution is the price of
// a histogram whose observe path is three atomic adds and no
// allocation, cheap enough for every request and for sampled engine
// commits. Both the serving tier and the engines use this one type so
// bucket semantics cannot drift between them.
package loghist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NBuckets is the fixed bucket count. The top bucket saturates: it
// absorbs every observation of 2^(NBuckets-2) or more.
const NBuckets = 32

// Hist is the live histogram. The zero value is ready to use; all
// methods are safe for concurrent use.
type Hist struct {
	buckets [NBuckets]atomic.Uint64
	count   atomic.Uint64
	errs    atomic.Uint64
	sum     atomic.Uint64
}

// bucketOf maps a value to its bucket index, clamping into the
// saturating top bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v) // 0 → bucket 0, [2^(i-1),2^i) → bucket i
	if b >= NBuckets {
		b = NBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveErr records one value and, when isErr is set, bumps the error
// counter alongside it (the serving tier's per-endpoint failure count).
func (h *Hist) ObserveErr(v uint64, isErr bool) {
	h.Observe(v)
	if isErr {
		h.errs.Add(1)
	}
}

// ObserveDuration records a duration in microseconds.
func (h *Hist) ObserveDuration(d time.Duration, isErr bool) {
	h.ObserveErr(uint64(d.Microseconds()), isErr)
}

// Count returns the number of observations so far.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Errors returns the number of ObserveErr calls with isErr set.
func (h *Hist) Errors() uint64 { return h.errs.Load() }

// Sum returns the running sum of observed values.
func (h *Hist) Sum() uint64 { return h.sum.Load() }

// Quantile returns the upper bound of the bucket holding the q-th
// observation (0 for an empty histogram). q is clamped to [0, 1); a
// rank at or past the last observation resolves to the final
// observation's bucket, so Quantile(1.0) is the max-holding bucket's
// upper bound.
func (h *Hist) Quantile(q float64) uint64 { return h.Snapshot().Quantile(q) }

// Snapshot is a point-in-time copy of a Hist. Counters are read
// per-bucket atomically, not as a consistent cut across buckets — the
// monitoring-read semantics the engines' ReadStats already uses.
type Snapshot struct {
	Count   uint64
	Errors  uint64
	Sum     uint64
	Buckets [NBuckets]uint64
}

// Snapshot copies the current counters.
func (h *Hist) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Errors = h.errs.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the upper bound of the bucket holding the q-th
// observation; see Hist.Quantile.
func (s Snapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, b := range s.Buckets {
		seen += b
		if seen > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NBuckets - 1)
}

// Mean returns the integer mean of the observed values (0 when empty).
func (s Snapshot) Mean() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Sub returns the counter deltas s - t, for interval views over a live
// histogram (tmstat's per-tick rendering).
func (s Snapshot) Sub(t Snapshot) Snapshot {
	d := Snapshot{
		Count:  s.Count - t.Count,
		Errors: s.Errors - t.Errors,
		Sum:    s.Sum - t.Sum,
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - t.Buckets[i]
	}
	return d
}

// BucketUpper returns the quantile upper bound reported for bucket i:
// 1 for the zero bucket, else 2^i. The top bucket saturates, so its
// bound is a floor on the true value, not a ceiling.
func BucketUpper(i int) uint64 {
	if i == 0 {
		return 1
	}
	return 1 << uint(i)
}

// BucketMax returns the largest integer value bucket i can hold
// (2^i - 1), the inclusive "le" bound a Prometheus cumulative bucket
// needs. The saturating top bucket has no finite max; callers render it
// as +Inf and must not ask for its BucketMax.
func BucketMax(i int) uint64 { return 1<<uint(i) - 1 }
