package loghist

import (
	"sync"
	"testing"
	"time"
)

// TestEmpty pins the empty-histogram contract: every accessor is zero
// and every quantile is 0, not a bucket bound.
func TestEmpty(t *testing.T) {
	var h Hist
	if got := h.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty = %d, want 0", q, got)
		}
	}
	s := h.Snapshot()
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot: mean=%d p50=%d, want 0,0", s.Mean(), s.Quantile(0.5))
	}
}

// TestZeroObservation: a 0µs observation lands in bucket 0 and
// quantiles over it report the bucket-0 upper bound (1), never 0 being
// confused with "no data".
func TestZeroObservation(t *testing.T) {
	var h Hist
	h.Observe(0)
	s := h.Snapshot()
	if s.Buckets[0] != 1 {
		t.Fatalf("bucket 0 = %d, want 1", s.Buckets[0])
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("Quantile(0.5) = %d, want 1 (bucket-0 upper bound)", got)
	}
	if s.Sum != 0 || s.Count != 1 {
		t.Fatalf("sum=%d count=%d, want 0,1", s.Sum, s.Count)
	}
}

// TestSaturatingTopBucket: values at and beyond the top bucket's lower
// edge all land in bucket NBuckets-1, and the quantile reports that
// bucket's bound rather than overflowing the shift.
func TestSaturatingTopBucket(t *testing.T) {
	var h Hist
	for _, v := range []uint64{1 << (NBuckets - 1), 1 << 40, ^uint64(0)} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Buckets[NBuckets-1] != 3 {
		t.Fatalf("top bucket = %d, want 3", s.Buckets[NBuckets-1])
	}
	want := BucketUpper(NBuckets - 1)
	for _, q := range []float64{0, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

// TestQuantileRankEqualsCount: q = 1.0 makes the raw rank equal the
// observation count; it must clamp to the last observation instead of
// walking off the end of the buckets.
func TestQuantileRankEqualsCount(t *testing.T) {
	var h Hist
	h.Observe(1) // bucket 1
	h.Observe(7) // bucket 3
	if got, want := h.Quantile(1.0), BucketUpper(3); got != want {
		t.Fatalf("Quantile(1.0) = %d, want %d (max observation's bucket)", got, want)
	}
	// And the degenerate single-observation histogram.
	var h1 Hist
	h1.Observe(5)
	if got, want := h1.Quantile(1.0), BucketUpper(3); got != want {
		t.Fatalf("single-obs Quantile(1.0) = %d, want %d", got, want)
	}
}

// TestBucketBounds pins the bucket placement rule against the bound
// helpers: every value maps into the bucket whose [lower, BucketMax]
// range contains it.
func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		var h Hist
		h.Observe(c.v)
		if got := h.Snapshot().Buckets[c.bucket]; got != 1 {
			t.Fatalf("Observe(%d): bucket %d = %d, want 1", c.v, c.bucket, got)
		}
		if c.bucket > 0 && c.v > BucketMax(c.bucket) {
			t.Fatalf("Observe(%d): exceeds BucketMax(%d) = %d", c.v, c.bucket, BucketMax(c.bucket))
		}
	}
}

// TestErrorsAndDurations covers the serving-tier entry points.
func TestErrorsAndDurations(t *testing.T) {
	var h Hist
	h.ObserveDuration(1500*time.Microsecond, false)
	h.ObserveDuration(3*time.Millisecond, true)
	h.ObserveErr(10, true)
	s := h.Snapshot()
	if s.Count != 3 || s.Errors != 2 {
		t.Fatalf("count=%d errors=%d, want 3,2", s.Count, s.Errors)
	}
	if s.Sum != 1500+3000+10 {
		t.Fatalf("sum = %d, want %d", s.Sum, 1500+3000+10)
	}
}

// TestSnapshotSub: interval deltas subtract per-bucket.
func TestSnapshotSub(t *testing.T) {
	var h Hist
	h.Observe(3)
	before := h.Snapshot()
	h.Observe(3)
	h.Observe(100)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.Buckets[2] != 1 || d.Buckets[7] != 1 {
		t.Fatalf("delta = %+v, want count 2 with one obs each in buckets 2 and 7", d)
	}
}

// TestConcurrentObserve is a smoke for the lock-free claim: concurrent
// observers never lose counts.
func TestConcurrentObserve(t *testing.T) {
	var h Hist
	const (
		workers = 8
		per     = 10_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}
