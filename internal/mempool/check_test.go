//go:build mempoolcheck

package mempool

import "testing"

// TestDoublePutPanics is the checked-mode contract: recycling the same
// object twice without an intervening Get panics at the second Put.
func TestDoublePutPanics(t *testing.T) {
	p := newNodePool()
	n := p.Get(8)
	p.Put(n)
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic under -tags mempoolcheck")
		}
	}()
	p.Put(n)
}

// TestGetClearsRegistry: a Put→Get→Put cycle is legal; only Put of an
// object currently *in* a pool is a bug.
func TestGetClearsRegistry(t *testing.T) {
	p := newNodePool()
	n := p.Get(8)
	for i := 0; i < 3; i++ {
		p.Put(n)
		if got := p.Get(8); got != n {
			t.Skip("sync.Pool dropped the entry; cycle cannot be driven")
		}
	}
}
