package mempool

import "testing"

// node is the test stand-in for a pooled object carrying a buffer.
type node struct {
	buf  []int
	used bool
}

func newNodePool() *ClassPool[node] {
	return NewClassPool(
		func(capacity int) *node { return &node{buf: make([]int, 0, capacity)} },
		func(n *node) int { return cap(n.buf) },
		func(n *node) { n.buf = n.buf[:0]; n.used = false },
	)
}

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 0}, {1, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16}, {100, 128}, {4096, 4096},
	}
	for _, c := range cases {
		p := newNodePool()
		got := p.Get(c.n)
		if cap(got.buf) != c.wantCap {
			t.Errorf("Get(%d): cap=%d, want %d", c.n, cap(got.buf), c.wantCap)
		}
	}
}

func TestRecycle(t *testing.T) {
	p := newNodePool()
	a := p.Get(8)
	a.used = true
	a.buf = a.buf[:3]
	p.Put(a)
	if a.used || len(a.buf) != 0 {
		t.Fatal("Put did not run the reset hook")
	}
	b := p.Get(8)
	if b != a {
		// sync.Pool may drop entries under GC pressure, but a same-goroutine
		// Put→Get with no GC in between must hit the per-P private slot.
		t.Fatalf("Get(8) after Put did not recycle: got %p, put %p", b, a)
	}
	// A smaller request maps to a different class and must not steal it.
	p.Put(b)
	if c := p.Get(2); cap(c.buf) != 4 {
		t.Errorf("Get(2) returned cap %d, want class cap 4", cap(c.buf))
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	p := newNodePool()
	big := p.Get(maxCap + 1)
	if cap(big.buf) != maxCap+1 {
		t.Fatalf("oversize Get: cap=%d, want exactly %d", cap(big.buf), maxCap+1)
	}
	big.used = true
	p.Put(big) // dropped to GC, but the reset hook must still run
	if big.used {
		t.Error("Put of an oversize object skipped the reset hook")
	}
	if again := p.Get(maxCap + 1); again == big {
		t.Error("oversize object was filed in the pool")
	}
}

func TestOffClassDropped(t *testing.T) {
	p := newNodePool()
	// cap 6 is not a class size: Put must drop it rather than file it
	// where a Get(8) would receive a too-small buffer.
	odd := &node{buf: make([]int, 0, 6)}
	p.Put(odd)
	if got := p.Get(8); got == odd {
		t.Error("off-class object was filed in the pool")
	}
}

func TestPutNil(t *testing.T) {
	p := newNodePool()
	p.Put(nil) // must be a no-op, not a panic in the reset hook
}
